// The paper's evaluation workflow (Appendix A.4) on the simulated Lustre
// cluster, end to end:
//
//   1. set up the target system (cluster + write-heavy workload),
//   2. turn on CAPES and run a training session,
//   3. turn CAPES off and measure the baseline,
//   4. turn CAPES on and measure the tuned throughput,
//   5. checkpoint the trained model for the next session.
//
// All of it goes through the core::Experiment facade. Accepts an optional
// conf-file path (the conf.py analogue); see the keys in
// core/config_io.hpp. Example:
//     ./build/examples/lustre_tuning my.conf

#include <cstdio>

#include "core/experiment.hpp"

using namespace capes;

int main(int argc, char** argv) {
  // 1. Target system: the 5-client/4-server cluster with a write-heavy
  //    random workload (the paper's best case). The laptop-scale preset
  //    is the default; a conf file overrides any subset.
  auto builder = core::Experiment::builder().workload("random:0.1");
  if (argc > 1) builder.config_file(argv[1]);

  std::string error;
  auto experiment = builder.build(&error);
  if (!experiment) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (argc > 1) std::printf("loaded overrides from %s\n", argv[1]);

  // 2. Training session ("24 hours" scaled).
  std::printf("training for %lld ticks...\n",
              static_cast<long long>(experiment->preset().train_ticks_long));
  const auto training = experiment->run_training();
  std::printf("  ran %zu training steps; session throughput %s MB/s\n",
              training.result.train_steps,
              training.throughput.to_string().c_str());

  // 3. Baseline: default max_rpcs_in_flight = 8, no rate limit.
  const auto baseline = experiment->run_baseline();
  std::printf("baseline  %s MB/s (default Lustre settings)\n",
              baseline.throughput.to_string().c_str());

  // 4. Tuned: CAPES steering with 5% exploration.
  const auto tuned = experiment->run_tuned();
  std::printf("tuned     %s MB/s  -> %+.1f%%\n",
              tuned.throughput.to_string().c_str(),
              experiment->report().tuned_gain_percent());
  std::printf("  final parameters: max_rpcs_in_flight=%.0f, rate_limit=%.0f/s\n",
              experiment->parameter_values()[0],
              experiment->parameter_values()[1]);

  // 5. Checkpoint for the next session (loaded automatically by
  //    Experiment::load_model).
  const char* ckpt = "capes_lustre_model.bin";
  if (experiment->save_model(ckpt)) {
    std::printf("model checkpointed to %s\n", ckpt);
  }
  return 0;
}
