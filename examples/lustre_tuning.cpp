// The paper's evaluation workflow (Appendix A.4) on the simulated Lustre
// cluster, end to end:
//
//   1. set up the target system (cluster + write-heavy workload),
//   2. turn on CAPES and run a training session,
//   3. turn CAPES off and measure the baseline,
//   4. turn CAPES on and measure the tuned throughput,
//   5. checkpoint the trained model for the next session.
//
// Accepts an optional conf-file path (the conf.py analogue); see the keys
// in core/config_io.hpp. Example:
//     ./build/examples/lustre_tuning my.conf

#include <cstdio>

#include "core/capes_system.hpp"
#include "core/config_io.hpp"
#include "core/presets.hpp"
#include "lustre/cluster.hpp"
#include "workload/random_rw.hpp"

using namespace capes;

int main(int argc, char** argv) {
  // Start from the laptop-scale preset; a conf file overrides any subset.
  core::EvaluationPreset preset = core::fast_preset();
  if (argc > 1) {
    util::Config cfg;
    if (!cfg.parse_file(argv[1])) {
      std::fprintf(stderr, "cannot parse config %s\n", argv[1]);
      return 1;
    }
    preset.capes = core::capes_options_from_config(cfg, preset.capes);
    preset.cluster = core::cluster_options_from_config(cfg, preset.cluster);
    std::printf("loaded overrides from %s\n", argv[1]);
  }

  // 1. Target system: the 5-client/4-server cluster with a write-heavy
  //    random workload (the paper's best case).
  sim::Simulator sim;
  lustre::Cluster cluster(sim, preset.cluster);
  workload::RandomRwOptions wopts;
  wopts.read_fraction = 0.1;
  workload::RandomRw workload(cluster, wopts);
  workload.start();

  core::CapesSystem capes(sim, cluster, preset.capes);
  sim.run_until(sim::seconds(5));  // warm the workload up

  // 2. Training session ("24 hours" scaled).
  std::printf("training for %lld ticks...\n",
              static_cast<long long>(preset.train_ticks_long));
  const auto training = capes.run_training(preset.train_ticks_long);
  std::printf("  ran %zu training steps; session throughput %s MB/s\n",
              training.train_steps, training.analyze().to_string().c_str());

  // 3. Baseline: default max_rpcs_in_flight = 8, no rate limit.
  const auto baseline = capes.run_baseline(preset.eval_ticks).analyze();
  std::printf("baseline  %s MB/s (default Lustre settings)\n",
              baseline.to_string().c_str());

  // 4. Tuned: CAPES steering with 5% exploration.
  const auto tuned = capes.run_tuned(preset.eval_ticks).analyze();
  std::printf("tuned     %s MB/s  -> %+.1f%%\n", tuned.to_string().c_str(),
              (tuned.mean / baseline.mean - 1.0) * 100.0);
  std::printf("  final parameters: max_rpcs_in_flight=%.0f, rate_limit=%.0f/s\n",
              capes.parameter_values()[0], capes.parameter_values()[1]);

  // 5. Checkpoint for the next session (loaded automatically by
  //    CapesSystem::load_model).
  const char* ckpt = "capes_lustre_model.bin";
  if (capes.save_model(ckpt)) {
    std::printf("model checkpointed to %s\n", ckpt);
  }
  return 0;
}
