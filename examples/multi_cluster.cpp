// Multi-cluster control domains: one DRL brain tuning three clusters at
// once. Each .add_cluster() call gives the experiment another simulated
// Lustre cluster (its own control domain) running its own workload; the
// shared DQN sees the concatenated observation of every domain and its
// action space is the concatenation of every domain's parameter
// adjustments, so one brain learns where its next adjustment pays off
// most. Worker threads fan the per-tick sampling/training hot path out
// without changing any result (the fan-in is deterministic).
//
// Build & run:  ./build/examples/multi_cluster [threads]

#include <cstdio>

#include "core/experiment.hpp"
#include "util/parse.hpp"

using namespace capes;

int main(int argc, char** argv) {
  std::int64_t threads_arg = 2;
  if (argc > 1 &&
      (!util::parse_i64(argv[1], &threads_arg) || threads_arg < 0)) {
    std::fprintf(stderr, "usage: multi_cluster [threads >= 0]\n");
    return 2;
  }
  const std::size_t threads = static_cast<std::size_t>(threads_arg);

  std::string error;
  auto experiment = core::Experiment::builder()
                        .seed(7)
                        .workload("random:0.1")   // domain 0: write-heavy
                        .add_cluster("random:0.9")  // domain 1: read-heavy
                        .add_cluster("seqwrite")    // domain 2: streaming
                        .worker_threads(threads)
                        .build(&error);
  if (!experiment) {
    std::fprintf(stderr, "build failed: %s\n", error.c_str());
    return 1;
  }

  auto& system = experiment->system();
  std::printf("tuning %zu clusters with one brain (%zu worker threads)\n",
              experiment->num_domains(), threads);
  std::printf("  observation size %zu (= domains x nodes x PIs x ticks)\n",
              system.replay().observation_size());
  std::printf("  composite action space: %zu actions over %zu parameters\n\n",
              system.action_space().num_actions(),
              system.action_space().num_parameters());

  const auto baseline = experiment->run_baseline(150);
  std::printf("baseline (all domains): %s MB/s\n",
              baseline.throughput.to_string().c_str());

  std::printf("training...\n");
  experiment->run_training(1200);
  const auto tuned = experiment->run_tuned(150);
  std::printf("tuned    (all domains): %s MB/s  (%+.1f%%)\n\n",
              tuned.throughput.to_string().c_str(),
              experiment->report().tuned_gain_percent());

  // Per-domain detail: every domain keeps its last-tick snapshot and its
  // own slice of the composite parameter vector.
  for (std::size_t d = 0; d < system.num_domains(); ++d) {
    const auto& domain = system.domain(d);
    std::printf("domain %zu (%s): last tick %.1f MB/s, reward %.3f,",
                d, experiment->workload_at(d)->name().c_str(),
                domain.last_perf().throughput_mbs(), domain.last_reward());
    const auto& names = experiment->report().parameter_names;
    for (std::size_t p = 0; p < domain.num_parameters(); ++p) {
      std::printf(" %s=%.0f", names[domain.param_offset() + p].c_str(),
                  domain.param_values()[p]);
    }
    std::printf("\n");
  }
  return 0;
}
