// Tuning over a lossy control network: the same one-domain experiment
// run twice, once with a perfect (drop-free, 1-tick-latency) simulated
// control network and once dropping 10% of all agent<->daemon messages.
// The Replay DB's missing-entry tolerance (§3.5) absorbs the holes the
// drops punch into the observation stack — minibatches skip incomplete
// ticks — so CAPES keeps training either way; the per-phase CSVs written
// through csv_phase_sink make the difference easy to plot.
//
// Build & run:  ./build/examples/lossy_network

#include <cstdio>

#include "core/experiment.hpp"

using namespace capes;

namespace {

struct Outcome {
  double tuned_mbs = 0.0;
  double gain_percent = 0.0;
  std::uint64_t dropped = 0;
  std::uint64_t late = 0;
};

bool run_with_drop(double drop, const char* csv_prefix, Outcome* out) {
  char spec[96];
  std::snprintf(spec, sizeof(spec), "sim:latency_ticks=1,jitter=2,drop=%g",
                drop);
  std::string error;
  auto experiment = core::Experiment::builder()
                        .seed(3)
                        .workload("random:0.1")
                        .transport(spec)
                        .on_phase_end(core::csv_phase_sink(csv_prefix))
                        .build(&error);
  if (!experiment) {
    std::fprintf(stderr, "build failed: %s\n", error.c_str());
    return false;
  }
  std::printf("transport %s ...\n", spec);
  experiment->run_training(1200);
  experiment->run_baseline(150);
  const auto tuned = experiment->run_tuned(150);
  out->tuned_mbs = tuned.throughput.mean;
  out->gain_percent = experiment->report().tuned_gain_percent();
  for (const auto& phase : experiment->report().phases) {
    out->dropped += phase.result.messages_dropped;
    out->late += phase.result.messages_late;
  }
  return true;
}

}  // namespace

int main() {
  Outcome clean, lossy;
  if (!run_with_drop(0.0, "lossy_net_drop0", &clean)) return 1;
  if (!run_with_drop(0.1, "lossy_net_drop10", &lossy)) return 1;

  std::printf("\n%-18s %12s %9s %10s %8s\n", "control network", "tuned MB/s",
              "gain", "dropped", "late");
  std::printf("%-18s %12.1f %8.1f%% %10llu %8llu\n", "drop=0", clean.tuned_mbs,
              clean.gain_percent, static_cast<unsigned long long>(clean.dropped),
              static_cast<unsigned long long>(clean.late));
  std::printf("%-18s %12.1f %8.1f%% %10llu %8llu\n", "drop=0.1",
              lossy.tuned_mbs, lossy.gain_percent,
              static_cast<unsigned long long>(lossy.dropped),
              static_cast<unsigned long long>(lossy.late));
  std::printf("\nper-phase CSVs: lossy_net_drop0_*.csv / lossy_net_drop10_*.csv\n");
  return 0;
}
