// Writing an adapter for your own system.
//
// CAPES "assumes little of the target system" (§3): anything with
// runtime-tunable parameters can be tuned by implementing
// core::TargetSystemAdapter. This example wraps a small simulated web
// server farm with two knobs — worker threads and an accept queue bound —
// whose throughput surface has an interior optimum (too few workers
// starves, too many thrashes; similar for the queue).
//
// Run: ./build/examples/custom_adapter

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/experiment.hpp"
#include "util/rng.hpp"

using namespace capes;

namespace {

/// A toy M/M/c-flavoured web-server farm: requests/s served depends on
/// worker count (context-switch thrash beyond the sweet spot) and queue
/// bound (drops when too small, latency when too large).
class WebServerFarm : public core::TargetSystemAdapter {
 public:
  explicit WebServerFarm(std::uint64_t seed) : rng_(seed) {}

  std::size_t num_nodes() const override { return 2; }  // two frontends
  std::size_t pis_per_node() const override { return 4; }

  std::vector<float> collect_observation(std::size_t node) override {
    // PIs: the two knobs, smoothed RPS, and a per-node load wobble.
    return {static_cast<float>(workers_ / 64.0),
            static_cast<float>(queue_bound_ / 1024.0),
            static_cast<float>(smoothed_rps_ / 2000.0),
            static_cast<float>(0.5 + 0.1 * std::sin(0.1 * tick_ + node))};
  }

  std::vector<rl::TunableParameter> tunable_parameters() const override {
    rl::TunableParameter workers;
    workers.name = "worker_threads";
    workers.min_value = 2.0;
    workers.max_value = 64.0;
    workers.step = 2.0;
    workers.initial_value = 8.0;

    rl::TunableParameter queue;
    queue.name = "accept_queue";
    queue.min_value = 16.0;
    queue.max_value = 1024.0;
    queue.step = 32.0;
    queue.initial_value = 128.0;
    return {workers, queue};
  }

  void set_parameters(const std::vector<double>& values) override {
    workers_ = values[0];
    queue_bound_ = values[1];
  }
  std::vector<double> current_parameters() const override {
    return {workers_, queue_bound_};
  }

  core::PerfSample sample_performance() override {
    ++tick_;
    // Requests/s: peak at 24 workers and a 512-deep queue, with noise.
    const double worker_term =
        1.0 - std::pow((workers_ - 24.0) / 40.0, 2.0);
    const double queue_term =
        1.0 - std::pow((queue_bound_ - 512.0) / 900.0, 2.0);
    const double rps = std::max(
        50.0, 2000.0 * worker_term * queue_term * (1.0 + 0.03 * rng_.normal()));
    smoothed_rps_ = 0.8 * smoothed_rps_ + 0.2 * rps;
    core::PerfSample s;
    // Reuse the throughput field for RPS; the objective function decides
    // what the reward means.
    s.write_mbs = rps;
    s.avg_latency_ms = 5.0 + queue_bound_ / 128.0;
    return s;
  }

 private:
  util::Rng rng_;
  double workers_ = 8.0;
  double queue_bound_ = 128.0;
  double smoothed_rps_ = 0.0;
  std::int64_t tick_ = 0;
};

}  // namespace

int main() {
  WebServerFarm farm(42);

  core::CapesOptions options;
  options.replay.ticks_per_observation = 4;
  options.engine.dqn.hidden_size = 32;
  options.engine.dqn.gamma = 0.9f;
  options.engine.dqn.learning_rate = 2e-3f;
  options.engine.train_steps_per_tick = 2;
  options.engine.epsilon.anneal_ticks = 400;
  options.engine.eval_epsilon = 0.0;

  // Multi-objective reward (§3.2): requests/s minus a latency penalty.
  auto experiment = core::Experiment::builder()
                        .adapter(farm)
                        .capes_options(options)
                        .objective([](const core::PerfSample& s) {
                          return s.write_mbs / 2000.0 -
                                 0.02 * (s.avg_latency_ms / 10.0);
                        })
                        .build();

  const auto baseline = experiment->run_baseline(100);
  std::printf("baseline: %.0f req/s at workers=8, queue=128\n",
              baseline.throughput.mean);

  std::printf("training for 1500 ticks...\n");
  experiment->run_training(1500);

  const auto tuned = experiment->run_tuned(100);
  std::printf("tuned:    %.0f req/s (%+.0f%%) at workers=%.0f, queue=%.0f\n",
              tuned.throughput.mean, experiment->report().tuned_gain_percent(),
              experiment->parameter_values()[0],
              experiment->parameter_values()[1]);
  std::printf("(optimum is workers=24, queue=512)\n");
  return 0;
}
