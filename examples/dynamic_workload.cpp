// Dynamic workloads and the epsilon bump (§3.6).
//
// CAPES "can run continuously to adapt to dynamically changing
// workloads". This example trains on a write-heavy random workload, then
// uses Experiment::switch_workload to swap in a read-heavy one mid-run.
// The switch stops the old generator, starts the new one through the
// workload registry, and tells the Interface Daemon about the change —
// which bumps the exploration rate to 0.2 so the agent re-explores around
// the new regime instead of blindly applying the old policy.
//
// Run: ./build/examples/dynamic_workload

#include <cstdio>

#include "core/experiment.hpp"

using namespace capes;

int main() {
  std::string error;
  auto experiment =
      core::Experiment::builder().workload("random:0.1").build(&error);
  if (!experiment) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const auto& preset = experiment->preset();

  // Phase 1: write-heavy workload, train on it.
  std::printf("phase 1: write-heavy (1:9) — training %lld ticks\n",
              static_cast<long long>(preset.train_ticks_short));
  experiment->run_training(preset.train_ticks_short);
  auto& engine = experiment->system().engine();
  std::printf("  epsilon now %.3f, cwnd=%.0f\n",
              engine.current_epsilon(engine.training_ticks(), true),
              experiment->parameter_values()[0]);
  const auto tuned1 = experiment->run_tuned(200);
  std::printf("  tuned throughput: %s MB/s\n\n",
              tuned1.throughput.to_string().c_str());

  // Phase 2: the workload changes — the registry resolves the new spec,
  // the old writers stop, and epsilon jumps to 0.2 (§3.6).
  std::printf("phase 2: switching to read-heavy (9:1)\n");
  if (!experiment->switch_workload("random:0.9,seed=1234", &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("  epsilon bumped to %.3f\n",
              engine.current_epsilon(engine.training_ticks(), true));

  // Keep training through the transition — CAPES runs during normal
  // operation, adapting to the new regime.
  experiment->run_training(preset.train_ticks_short);
  const auto tuned2 = experiment->run_tuned(200);
  std::printf("  after re-training: %s MB/s (read-heavy: tuning gains are\n"
              "  expected to be small — reads are seek-bound)\n",
              tuned2.throughput.to_string().c_str());
  std::printf("  parameters now: cwnd=%.0f rate=%.0f\n",
              experiment->parameter_values()[0],
              experiment->parameter_values()[1]);
  return 0;
}
