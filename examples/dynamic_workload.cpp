// Dynamic workloads and the epsilon bump (§3.6).
//
// CAPES "can run continuously to adapt to dynamically changing
// workloads". This example trains on a write-heavy random workload, then
// switches the cluster to a read-heavy one mid-run. The Interface Daemon
// is told about the change (notify_workload_change), which bumps the
// exploration rate to 0.2 so the agent re-explores around the new regime
// instead of blindly applying the old policy.
//
// Run: ./build/examples/dynamic_workload

#include <cstdio>

#include "core/capes_system.hpp"
#include "core/presets.hpp"
#include "lustre/cluster.hpp"
#include "workload/random_rw.hpp"

using namespace capes;

int main() {
  core::EvaluationPreset preset = core::fast_preset();
  sim::Simulator sim;
  lustre::Cluster cluster(sim, preset.cluster);
  core::CapesSystem capes(sim, cluster, preset.capes);

  // Phase 1: write-heavy workload, train on it.
  workload::RandomRwOptions phase1;
  phase1.read_fraction = 0.1;
  workload::RandomRw wl1(cluster, phase1);
  wl1.start();
  sim.run_until(sim::seconds(5));

  std::printf("phase 1: write-heavy (1:9) — training %lld ticks\n",
              static_cast<long long>(preset.train_ticks_short));
  capes.run_training(preset.train_ticks_short);
  std::printf("  epsilon now %.3f, cwnd=%.0f\n",
              capes.engine().current_epsilon(capes.engine().training_ticks(), true),
              capes.parameter_values()[0]);
  const auto tuned1 = capes.run_tuned(200).analyze();
  std::printf("  tuned throughput: %s MB/s\n\n", tuned1.to_string().c_str());

  // Phase 2: the workload changes — stop the writers, start readers.
  std::printf("phase 2: switching to read-heavy (9:1)\n");
  wl1.request_stop();
  workload::RandomRwOptions phase2;
  phase2.read_fraction = 0.9;
  phase2.seed = 1234;
  workload::RandomRw wl2(cluster, phase2);
  wl2.start();

  // The job scheduler tells the Interface Daemon a new workload started:
  // epsilon jumps to 0.2 so CAPES re-explores (§3.6).
  capes.notify_workload_change();
  std::printf("  epsilon bumped to %.3f\n",
              capes.engine().current_epsilon(capes.engine().training_ticks(), true));

  // Keep training through the transition — CAPES runs during normal
  // operation, adapting to the new regime.
  capes.run_training(preset.train_ticks_short);
  const auto tuned2 = capes.run_tuned(200).analyze();
  std::printf("  after re-training: %s MB/s (read-heavy: tuning gains are\n"
              "  expected to be small — reads are seek-bound)\n",
              tuned2.to_string().c_str());
  std::printf("  parameters now: cwnd=%.0f rate=%.0f\n",
              capes.parameter_values()[0], capes.parameter_values()[1]);
  return 0;
}
