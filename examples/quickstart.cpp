// Quickstart: tune a tiny synthetic system with CAPES in ~100 lines.
//
// The "target system" here is a single knob whose throughput follows an
// inverted V peaking at knob = 80 (the default is 50). CAPES only needs a
// TargetSystemAdapter — a collector for performance indicators and a
// controller for parameter values (Appendix A.3.3) — and finds the peak
// by itself.
//
// Build & run:  ./build/examples/quickstart

#include <cmath>
#include <cstdio>

#include "core/experiment.hpp"

using namespace capes;

namespace {

/// The minimal adapter: one node, three PIs, one tunable parameter.
class ToySystem : public core::TargetSystemAdapter {
 public:
  std::size_t num_nodes() const override { return 1; }
  std::size_t pis_per_node() const override { return 3; }

  // Collector function: normalized floats describing the system state.
  std::vector<float> collect_observation(std::size_t) override {
    return {static_cast<float>(knob_ / 100.0),
            static_cast<float>(throughput() / 100.0),
            static_cast<float>(load_)};
  }

  std::vector<rl::TunableParameter> tunable_parameters() const override {
    rl::TunableParameter p;
    p.name = "toy_knob";
    p.min_value = 0.0;
    p.max_value = 100.0;
    p.step = 5.0;       // each CAPES action moves the knob by +-5
    p.initial_value = 50.0;
    return {p};
  }

  // Controller function: apply the values CAPES broadcasts.
  void set_parameters(const std::vector<double>& values) override {
    knob_ = values[0];
  }
  std::vector<double> current_parameters() const override { return {knob_}; }

  core::PerfSample sample_performance() override {
    load_ = 0.9f * load_ + 0.1f;  // a little state so PIs move
    core::PerfSample s;
    s.write_mbs = throughput();
    return s;
  }

 private:
  double throughput() const { return 100.0 - std::fabs(knob_ - 80.0); }
  double knob_ = 50.0;
  float load_ = 0.0f;
};

}  // namespace

int main() {
  ToySystem system;

  core::CapesOptions options;
  options.replay.ticks_per_observation = 3;  // stack 3 ticks per observation
  options.engine.dqn.hidden_size = 16;       // tiny network for a tiny system
  options.engine.dqn.gamma = 0.9f;
  options.engine.dqn.learning_rate = 2e-3f;
  options.engine.epsilon.anneal_ticks = 200; // explore, then exploit
  options.engine.train_steps_per_tick = 2;
  options.engine.eval_epsilon = 0.0;
  options.reward_scale_mbs = 100.0;

  // The Experiment facade owns the simulated clock and the CAPES control
  // loop; a custom adapter is all it needs to know about the system.
  auto experiment = core::Experiment::builder()
                        .adapter(system)
                        .capes_options(options)
                        .build();

  std::printf("baseline (default knob = 50)...\n");
  const auto baseline = experiment->run_baseline(50);
  std::printf("  throughput %.1f units\n\n", baseline.throughput.mean);

  std::printf("training CAPES for 800 ticks...\n");
  experiment->run_training(800);

  const auto tuned = experiment->run_tuned(50);
  std::printf("\nresults\n");
  std::printf("  baseline: %6.1f units\n", baseline.throughput.mean);
  std::printf("  tuned:    %6.1f units  (%+.0f%%)\n", tuned.throughput.mean,
              experiment->report().tuned_gain_percent());
  std::printf("  knob ended at %.0f (optimum is 80)\n",
              experiment->parameter_values()[0]);
  return 0;
}
