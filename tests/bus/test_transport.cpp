// Transport policies and the spec grammar: sync immediacy, the sim
// model's counter-based determinism, and strict parse rejection.

#include "bus/transport.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace capes::bus {
namespace {

TEST(SyncTransport, DeliversEveryMessageOnItsSendTick) {
  SyncTransport sync;
  for (std::int64_t t : {0, 1, 7, 1000}) {
    const Delivery d = sync.plan(1, 3, t);
    EXPECT_FALSE(d.dropped);
    EXPECT_EQ(d.deliver_tick, t);
  }
}

TEST(SimTransport, FixedLatencyNoJitterNoDrop) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.latency_ticks = 3;
  SimTransport sim(opts);
  for (std::int64_t t = 0; t < 50; ++t) {
    const Delivery d = sim.plan(1, 0, t);
    EXPECT_FALSE(d.dropped);
    EXPECT_EQ(d.deliver_tick, t + 3);
  }
}

TEST(SimTransport, PlanIsPureAndSeedDeterministic) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.jitter = 4.0;
  opts.drop = 0.3;
  opts.seed = 42;
  SimTransport a(opts), b(opts);
  for (std::uint64_t sender = 0; sender < 8; ++sender) {
    for (std::int64_t t = 0; t < 64; ++t) {
      const Delivery da = a.plan(1, sender, t);
      const Delivery db = b.plan(1, sender, t);
      EXPECT_EQ(da.dropped, db.dropped);
      EXPECT_EQ(da.deliver_tick, db.deliver_tick);
      // Repeated calls on one instance agree too (publishers pre-check
      // the drop fate, then publish recomputes it).
      const Delivery da2 = a.plan(1, sender, t);
      EXPECT_EQ(da.dropped, da2.dropped);
      EXPECT_EQ(da.deliver_tick, da2.deliver_tick);
    }
  }
}

TEST(SimTransport, SeedChangesTheRealization) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.drop = 0.5;
  opts.seed = 1;
  SimTransport a(opts);
  opts.seed = 2;
  SimTransport b(opts);
  std::size_t differing = 0;
  for (std::int64_t t = 0; t < 200; ++t) {
    if (a.plan(1, 0, t).dropped != b.plan(1, 0, t).dropped) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(SimTransport, DropRateTracksTheConfiguredProbability) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.drop = 0.2;
  opts.seed = 7;
  SimTransport sim(opts);
  std::size_t drops = 0;
  const std::size_t n = 20000;
  for (std::size_t i = 0; i < n; ++i) {
    if (sim.plan(1, i % 16, static_cast<std::int64_t>(i / 16)).dropped) {
      ++drops;
    }
  }
  const double rate = static_cast<double>(drops) / static_cast<double>(n);
  EXPECT_NEAR(rate, 0.2, 0.02);
}

TEST(SimTransport, JitterStaysWithinItsBound) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.latency_ticks = 1;
  opts.jitter = 3.0;  // extra delay in {0, 1, 2}
  SimTransport sim(opts);
  bool saw_extra = false;
  for (std::int64_t t = 0; t < 500; ++t) {
    const Delivery d = sim.plan(1, 0, t);
    ASSERT_GE(d.deliver_tick, t + 1);
    ASSERT_LE(d.deliver_tick, t + 3);
    if (d.deliver_tick > t + 1) saw_extra = true;
  }
  EXPECT_TRUE(saw_extra);
}

TEST(SimTransport, TopicsSeeIndependentRealizations) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.drop = 0.5;
  opts.seed = 11;
  SimTransport sim(opts);
  std::size_t differing = 0;
  for (std::int64_t t = 0; t < 200; ++t) {
    if (sim.plan(1, 0, t).dropped != sim.plan(2, 0, t).dropped) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

// ---------------------------------------------------------------------------
// Spec grammar
// ---------------------------------------------------------------------------

TEST(TransportSpec, ParsesSync) {
  TransportOptions opts;
  std::string error;
  ASSERT_TRUE(parse_transport_spec("sync", &opts, &error)) << error;
  EXPECT_EQ(opts.kind, TransportKind::kSync);
}

TEST(TransportSpec, ParsesBareSimWithDefaults) {
  TransportOptions opts;
  std::string error;
  ASSERT_TRUE(parse_transport_spec("sim", &opts, &error)) << error;
  EXPECT_EQ(opts.kind, TransportKind::kSim);
  EXPECT_EQ(opts.latency_ticks, 1);
  EXPECT_DOUBLE_EQ(opts.jitter, 0.0);
  EXPECT_DOUBLE_EQ(opts.drop, 0.0);
  EXPECT_FALSE(opts.seed_explicit);
}

TEST(TransportSpec, ParsesFullOptionList) {
  TransportOptions opts;
  std::string error;
  ASSERT_TRUE(parse_transport_spec(
      "sim:latency_ticks=4,jitter=2.5,drop=0.25,seed=99", &opts, &error))
      << error;
  EXPECT_EQ(opts.kind, TransportKind::kSim);
  EXPECT_EQ(opts.latency_ticks, 4);
  EXPECT_DOUBLE_EQ(opts.jitter, 2.5);
  EXPECT_DOUBLE_EQ(opts.drop, 0.25);
  EXPECT_EQ(opts.seed, 99u);
  EXPECT_TRUE(opts.seed_explicit);
}

TEST(TransportSpec, RejectsBadInput) {
  TransportOptions opts;
  std::string error;
  EXPECT_FALSE(parse_transport_spec("udp", &opts, &error));
  EXPECT_NE(error.find("unknown transport"), std::string::npos) << error;
  EXPECT_FALSE(parse_transport_spec("sync:latency_ticks=1", &opts, &error));
  EXPECT_FALSE(parse_transport_spec("sim:bogus=1", &opts, &error));
  EXPECT_NE(error.find("unknown transport option"), std::string::npos) << error;
  EXPECT_FALSE(parse_transport_spec("sim:drop", &opts, &error));
  EXPECT_NE(error.find("key=value"), std::string::npos) << error;
  EXPECT_FALSE(parse_transport_spec("sim:drop=1.5", &opts, &error));
  EXPECT_FALSE(parse_transport_spec("sim:drop=abc", &opts, &error));
  EXPECT_FALSE(parse_transport_spec("sim:latency_ticks=-2", &opts, &error));
  EXPECT_FALSE(parse_transport_spec("sim:jitter=-1", &opts, &error));
  EXPECT_FALSE(parse_transport_spec("sim:seed=-5", &opts, &error));
}

TEST(TransportSpec, RejectionLeavesOutputUntouched) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.latency_ticks = 9;
  EXPECT_FALSE(parse_transport_spec("sim:latency_ticks=3,drop=oops", &opts));
  EXPECT_EQ(opts.latency_ticks, 9);  // not the half-parsed 3
}

TEST(TransportSpec, RoundTripsThroughSpecString) {
  TransportOptions opts;
  std::string error;
  ASSERT_TRUE(parse_transport_spec("sim:latency_ticks=2,jitter=1.5,drop=0.1",
                                   &opts, &error));
  TransportOptions reparsed;
  ASSERT_TRUE(parse_transport_spec(transport_spec_string(opts), &reparsed,
                                   &error))
      << error;
  EXPECT_EQ(reparsed.kind, opts.kind);
  EXPECT_EQ(reparsed.latency_ticks, opts.latency_ticks);
  EXPECT_DOUBLE_EQ(reparsed.jitter, opts.jitter);
  EXPECT_DOUBLE_EQ(reparsed.drop, opts.drop);
  EXPECT_EQ(transport_spec_string(TransportOptions{}), "sync");

  // The round-trip is value-exact even for doubles %g would truncate.
  TransportOptions nasty;
  nasty.kind = TransportKind::kSim;
  nasty.jitter = 2.0 / 3.0;
  nasty.drop = 0.123456789012345678;
  TransportOptions nasty_back;
  ASSERT_TRUE(parse_transport_spec(transport_spec_string(nasty), &nasty_back,
                                   &error))
      << error;
  EXPECT_EQ(nasty_back.jitter, nasty.jitter);
  EXPECT_EQ(nasty_back.drop, nasty.drop);
}

TEST(MakeTransport, BuildsTheRequestedKind) {
  TransportOptions opts;
  EXPECT_STREQ(make_transport(opts)->name(), "sync");
  opts.kind = TransportKind::kSim;
  EXPECT_STREQ(make_transport(opts)->name(), "sim");
}

}  // namespace
}  // namespace capes::bus
