// Transport policies and the spec grammar: sync immediacy, the sim
// model's counter-based determinism, strict parse rejection, and a
// conformance suite every transport kind must pass through bus::Channel
// (per-sender FIFO, drop accounting, late-delivery counting).

#include "bus/transport.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bus/channel.hpp"

namespace capes::bus {
namespace {

TEST(SyncTransport, DeliversEveryMessageOnItsSendTick) {
  SyncTransport sync;
  for (std::int64_t t : {0, 1, 7, 1000}) {
    const Delivery d = sync.plan(1, 3, t);
    EXPECT_FALSE(d.dropped);
    EXPECT_EQ(d.deliver_tick, t);
  }
}

TEST(SimTransport, FixedLatencyNoJitterNoDrop) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.latency_ticks = 3;
  SimTransport sim(opts);
  for (std::int64_t t = 0; t < 50; ++t) {
    const Delivery d = sim.plan(1, 0, t);
    EXPECT_FALSE(d.dropped);
    EXPECT_EQ(d.deliver_tick, t + 3);
  }
}

TEST(SimTransport, PlanIsPureAndSeedDeterministic) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.jitter = 4.0;
  opts.drop = 0.3;
  opts.seed = 42;
  SimTransport a(opts), b(opts);
  for (std::uint64_t sender = 0; sender < 8; ++sender) {
    for (std::int64_t t = 0; t < 64; ++t) {
      const Delivery da = a.plan(1, sender, t);
      const Delivery db = b.plan(1, sender, t);
      EXPECT_EQ(da.dropped, db.dropped);
      EXPECT_EQ(da.deliver_tick, db.deliver_tick);
      // Repeated calls on one instance agree too (publishers pre-check
      // the drop fate, then publish recomputes it).
      const Delivery da2 = a.plan(1, sender, t);
      EXPECT_EQ(da.dropped, da2.dropped);
      EXPECT_EQ(da.deliver_tick, da2.deliver_tick);
    }
  }
}

TEST(SimTransport, SeedChangesTheRealization) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.drop = 0.5;
  opts.seed = 1;
  SimTransport a(opts);
  opts.seed = 2;
  SimTransport b(opts);
  std::size_t differing = 0;
  for (std::int64_t t = 0; t < 200; ++t) {
    if (a.plan(1, 0, t).dropped != b.plan(1, 0, t).dropped) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(SimTransport, DropRateTracksTheConfiguredProbability) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.drop = 0.2;
  opts.seed = 7;
  SimTransport sim(opts);
  std::size_t drops = 0;
  const std::size_t n = 20000;
  for (std::size_t i = 0; i < n; ++i) {
    if (sim.plan(1, i % 16, static_cast<std::int64_t>(i / 16)).dropped) {
      ++drops;
    }
  }
  const double rate = static_cast<double>(drops) / static_cast<double>(n);
  EXPECT_NEAR(rate, 0.2, 0.02);
}

TEST(SimTransport, JitterStaysWithinItsBound) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.latency_ticks = 1;
  opts.jitter = 3.0;  // extra delay in {0, 1, 2}
  SimTransport sim(opts);
  bool saw_extra = false;
  for (std::int64_t t = 0; t < 500; ++t) {
    const Delivery d = sim.plan(1, 0, t);
    ASSERT_GE(d.deliver_tick, t + 1);
    ASSERT_LE(d.deliver_tick, t + 3);
    if (d.deliver_tick > t + 1) saw_extra = true;
  }
  EXPECT_TRUE(saw_extra);
}

TEST(SimTransport, TopicsSeeIndependentRealizations) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.drop = 0.5;
  opts.seed = 11;
  SimTransport sim(opts);
  std::size_t differing = 0;
  for (std::int64_t t = 0; t < 200; ++t) {
    if (sim.plan(1, 0, t).dropped != sim.plan(2, 0, t).dropped) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

// ---------------------------------------------------------------------------
// Spec grammar
// ---------------------------------------------------------------------------

TEST(TransportSpec, ParsesSync) {
  TransportOptions opts;
  std::string error;
  ASSERT_TRUE(parse_transport_spec("sync", &opts, &error)) << error;
  EXPECT_EQ(opts.kind, TransportKind::kSync);
}

TEST(TransportSpec, ParsesBareSimWithDefaults) {
  TransportOptions opts;
  std::string error;
  ASSERT_TRUE(parse_transport_spec("sim", &opts, &error)) << error;
  EXPECT_EQ(opts.kind, TransportKind::kSim);
  EXPECT_EQ(opts.latency_ticks, 1);
  EXPECT_DOUBLE_EQ(opts.jitter, 0.0);
  EXPECT_DOUBLE_EQ(opts.drop, 0.0);
  EXPECT_FALSE(opts.seed_explicit);
}

TEST(TransportSpec, ParsesFullOptionList) {
  TransportOptions opts;
  std::string error;
  ASSERT_TRUE(parse_transport_spec(
      "sim:latency_ticks=4,jitter=2.5,drop=0.25,seed=99", &opts, &error))
      << error;
  EXPECT_EQ(opts.kind, TransportKind::kSim);
  EXPECT_EQ(opts.latency_ticks, 4);
  EXPECT_DOUBLE_EQ(opts.jitter, 2.5);
  EXPECT_DOUBLE_EQ(opts.drop, 0.25);
  EXPECT_EQ(opts.seed, 99u);
  EXPECT_TRUE(opts.seed_explicit);
}

TEST(TransportSpec, RejectsBadInput) {
  TransportOptions opts;
  std::string error;
  EXPECT_FALSE(parse_transport_spec("udp", &opts, &error));
  EXPECT_NE(error.find("unknown transport"), std::string::npos) << error;
  EXPECT_FALSE(parse_transport_spec("sync:latency_ticks=1", &opts, &error));
  EXPECT_FALSE(parse_transport_spec("sim:bogus=1", &opts, &error));
  EXPECT_NE(error.find("unknown transport option"), std::string::npos) << error;
  EXPECT_FALSE(parse_transport_spec("sim:drop", &opts, &error));
  EXPECT_NE(error.find("key=value"), std::string::npos) << error;
  EXPECT_FALSE(parse_transport_spec("sim:drop=1.5", &opts, &error));
  EXPECT_FALSE(parse_transport_spec("sim:drop=abc", &opts, &error));
  EXPECT_FALSE(parse_transport_spec("sim:latency_ticks=-2", &opts, &error));
  EXPECT_FALSE(parse_transport_spec("sim:jitter=-1", &opts, &error));
  EXPECT_FALSE(parse_transport_spec("sim:seed=-5", &opts, &error));
}

TEST(TransportSpec, RejectionLeavesOutputUntouched) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.latency_ticks = 9;
  EXPECT_FALSE(parse_transport_spec("sim:latency_ticks=3,drop=oops", &opts));
  EXPECT_EQ(opts.latency_ticks, 9);  // not the half-parsed 3
}

TEST(TransportSpec, RoundTripsThroughSpecString) {
  TransportOptions opts;
  std::string error;
  ASSERT_TRUE(parse_transport_spec("sim:latency_ticks=2,jitter=1.5,drop=0.1",
                                   &opts, &error));
  TransportOptions reparsed;
  ASSERT_TRUE(parse_transport_spec(transport_spec_string(opts), &reparsed,
                                   &error))
      << error;
  EXPECT_EQ(reparsed.kind, opts.kind);
  EXPECT_EQ(reparsed.latency_ticks, opts.latency_ticks);
  EXPECT_DOUBLE_EQ(reparsed.jitter, opts.jitter);
  EXPECT_DOUBLE_EQ(reparsed.drop, opts.drop);
  EXPECT_EQ(transport_spec_string(TransportOptions{}), "sync");

  // The round-trip is value-exact even for doubles %g would truncate.
  TransportOptions nasty;
  nasty.kind = TransportKind::kSim;
  nasty.jitter = 2.0 / 3.0;
  nasty.drop = 0.123456789012345678;
  TransportOptions nasty_back;
  ASSERT_TRUE(parse_transport_spec(transport_spec_string(nasty), &nasty_back,
                                   &error))
      << error;
  EXPECT_EQ(nasty_back.jitter, nasty.jitter);
  EXPECT_EQ(nasty_back.drop, nasty.drop);
}

TEST(MakeTransport, BuildsTheRequestedKind) {
  TransportOptions opts;
  EXPECT_STREQ(make_transport(opts)->name(), "sync");
  opts.kind = TransportKind::kSim;
  EXPECT_STREQ(make_transport(opts)->name(), "sim");
  opts.kind = TransportKind::kTcp;
  EXPECT_STREQ(make_transport(opts)->name(), "tcp");
}

// ---------------------------------------------------------------------------
// tcp: spec grammar
// ---------------------------------------------------------------------------

TEST(TransportSpec, ParsesTcpWithDefaults) {
  TransportOptions opts;
  std::string error;
  ASSERT_TRUE(parse_transport_spec("tcp:host=10.0.0.7,port=4890", &opts,
                                   &error))
      << error;
  EXPECT_EQ(opts.kind, TransportKind::kTcp);
  EXPECT_EQ(opts.tcp_host, "10.0.0.7");
  EXPECT_EQ(opts.tcp_port, 4890);
  EXPECT_EQ(opts.connect_timeout_ms, 5000);
  EXPECT_EQ(opts.io_threads, 1);
}

TEST(TransportSpec, ParsesFullTcpOptionList) {
  TransportOptions opts;
  std::string error;
  ASSERT_TRUE(parse_transport_spec(
      "tcp:host=localhost,port=19,connect_timeout_ms=250,io_threads=2", &opts,
      &error))
      << error;
  EXPECT_EQ(opts.tcp_host, "localhost");
  EXPECT_EQ(opts.tcp_port, 19);
  EXPECT_EQ(opts.connect_timeout_ms, 250);
  EXPECT_EQ(opts.io_threads, 2);
}

TEST(TransportSpec, TcpRoundTripsThroughSpecString) {
  TransportOptions opts;
  std::string error;
  ASSERT_TRUE(parse_transport_spec(
      "tcp:host=example.org,port=7777,connect_timeout_ms=1,io_threads=8",
      &opts, &error))
      << error;
  TransportOptions reparsed;
  ASSERT_TRUE(
      parse_transport_spec(transport_spec_string(opts), &reparsed, &error))
      << error;
  EXPECT_EQ(reparsed.kind, TransportKind::kTcp);
  EXPECT_EQ(reparsed.tcp_host, opts.tcp_host);
  EXPECT_EQ(reparsed.tcp_port, opts.tcp_port);
  EXPECT_EQ(reparsed.connect_timeout_ms, opts.connect_timeout_ms);
  EXPECT_EQ(reparsed.io_threads, opts.io_threads);
}

TEST(TransportSpec, RejectsMalformedTcpSpecs) {
  TransportOptions opts;
  std::string error;
  // host and port are mandatory; the error names the whole spec.
  EXPECT_FALSE(parse_transport_spec("tcp", &opts, &error));
  EXPECT_NE(error.find("requires host="), std::string::npos) << error;
  EXPECT_FALSE(parse_transport_spec("tcp:port=4890", &opts, &error));
  EXPECT_NE(error.find("requires host="), std::string::npos) << error;
  EXPECT_FALSE(parse_transport_spec("tcp:host=a", &opts, &error));
  EXPECT_NE(error.find("requires port="), std::string::npos) << error;
  EXPECT_FALSE(parse_transport_spec("tcp:host=,port=1", &opts, &error));
  EXPECT_NE(error.find("host must be non-empty"), std::string::npos) << error;
}

TEST(TransportSpec, TcpRejectionEchoesTheOffendingToken) {
  TransportOptions opts;
  std::string error;
  EXPECT_FALSE(parse_transport_spec("tcp:host=a,port=0", &opts, &error));
  EXPECT_NE(error.find("'0'"), std::string::npos) << error;
  EXPECT_FALSE(parse_transport_spec("tcp:host=a,port=70000", &opts, &error));
  EXPECT_NE(error.find("'70000'"), std::string::npos) << error;
  EXPECT_FALSE(parse_transport_spec("tcp:host=a,port=http", &opts, &error));
  EXPECT_NE(error.find("'http'"), std::string::npos) << error;
  EXPECT_FALSE(parse_transport_spec(
      "tcp:host=a,port=1,connect_timeout_ms=-3", &opts, &error));
  EXPECT_NE(error.find("'-3'"), std::string::npos) << error;
  EXPECT_FALSE(
      parse_transport_spec("tcp:host=a,port=1,io_threads=0", &opts, &error));
  EXPECT_NE(error.find("io_threads"), std::string::npos) << error;
  EXPECT_FALSE(parse_transport_spec("tcp:host=a,port=1,nagle=off", &opts,
                                    &error));
  EXPECT_NE(error.find("'nagle'"), std::string::npos) << error;
  // sim keys are not tcp keys and vice versa.
  EXPECT_FALSE(parse_transport_spec("tcp:host=a,port=1,drop=0.1", &opts,
                                    &error));
  EXPECT_NE(error.find("'drop'"), std::string::npos) << error;
  EXPECT_FALSE(parse_transport_spec("sim:host=a", &opts, &error));
  EXPECT_NE(error.find("'host'"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Channel conformance: contracts every transport kind must honor
// ---------------------------------------------------------------------------

class TransportConformance : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Transport> make() {
    TransportOptions opts;
    std::string error;
    EXPECT_TRUE(parse_transport_spec(GetParam(), &opts, &error)) << error;
    return make_transport(opts);
  }
};

TEST_P(TransportConformance, PerSenderFifoHoldsUnderDrain) {
  auto transport = make();
  Channel<int> channel(*transport, 1);
  constexpr std::uint64_t kSenders = 4;
  for (std::int64_t t = 0; t < 64; ++t) {
    for (std::uint64_t s = 0; s < kSenders; ++s) {
      channel.publish(s, t, static_cast<int>(t));
    }
  }
  // Drain far in the future so every surviving message is due; per
  // sender, payloads (the send ticks) must arrive strictly in order.
  std::map<std::uint64_t, int> last;
  channel.drain(1000, [&](Message<int>& msg) {
    const auto it = last.find(msg.sender);
    if (it != last.end()) {
      EXPECT_GT(msg.payload, it->second)
          << "sender " << msg.sender << " reordered";
    }
    last[msg.sender] = msg.payload;
  });
}

TEST_P(TransportConformance, CountsEveryPublishExactlyOnce) {
  auto transport = make();
  Channel<int> channel(*transport, 1);
  constexpr std::uint64_t kAttempts = 500;
  std::uint64_t accepted = 0;
  for (std::uint64_t i = 0; i < kAttempts; ++i) {
    if (channel.publish(i % 8, static_cast<std::int64_t>(i / 8), 0)) {
      ++accepted;
    }
  }
  const ChannelStats stats = channel.stats();
  EXPECT_EQ(stats.published, accepted);
  EXPECT_EQ(stats.published + stats.dropped, kAttempts);
  std::size_t drained = 0;
  while (drained < accepted) {
    const std::size_t n = channel.drain(1000, [](Message<int>&) {});
    if (n == 0) break;
    drained += n;
  }
  EXPECT_EQ(drained, accepted);
  EXPECT_EQ(channel.stats().delivered, accepted);
  EXPECT_EQ(channel.pending(), 0u);
}

TEST_P(TransportConformance, LateCountsOnlyDelayedDeliveries) {
  auto transport = make();
  Channel<int> channel(*transport, 1);
  for (std::int64_t t = 0; t < 128; ++t) channel.publish(0, t, 0);
  std::uint64_t late_seen = 0;
  for (std::int64_t t = 0; t < 256; ++t) {
    channel.drain(t, [&](Message<int>& msg) {
      if (msg.deliver_tick > msg.send_tick) ++late_seen;
      EXPECT_LE(msg.deliver_tick, t);
    });
  }
  EXPECT_EQ(channel.stats().late, late_seen);
  // Same-tick transports must never manufacture lateness.
  const std::string spec = GetParam();
  if (spec.rfind("sim", 0) != 0) {
    EXPECT_EQ(late_seen, 0u);
  }
}

// The tcp: entry exercises only the local Channel staging policy (real
// wire loss is the endpoint's, counted separately) — it must behave
// exactly like sync: reliable, same-tick, in-order.
INSTANTIATE_TEST_SUITE_P(
    AllTransports, TransportConformance,
    ::testing::Values("sync", "sim:latency_ticks=2,jitter=3,seed=5",
                      "sim:drop=0.3,seed=9", "tcp:host=127.0.0.1,port=9"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!(std::isalnum(static_cast<unsigned char>(c)))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace capes::bus
