// Channel semantics: publish/drain ordering, per-sender FIFO under
// jitter, drop and late accounting, bounded capacity, and
// publish-order-independent drains (the worker-thread contract).

#include "bus/channel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bus/transport.hpp"

namespace capes::bus {
namespace {

using IntChannel = Channel<int>;

TEST(Channel, SyncPublishThenDrainDeliversSameTick) {
  SyncTransport sync;
  IntChannel channel(sync, 1);
  EXPECT_TRUE(channel.publish(0, 5, 100));
  EXPECT_TRUE(channel.publish(1, 5, 200));
  EXPECT_EQ(channel.pending(), 2u);

  std::vector<int> seen;
  EXPECT_EQ(channel.drain(5, [&](const Message<int>& m) {
    seen.push_back(m.payload);
    EXPECT_EQ(m.deliver_tick, 5);
    EXPECT_FALSE(m.late());
  }), 2u);
  EXPECT_EQ(seen, (std::vector<int>{100, 200}));  // sender order
  EXPECT_EQ(channel.pending(), 0u);
  EXPECT_EQ(channel.stats().published, 2u);
  EXPECT_EQ(channel.stats().delivered, 2u);
  EXPECT_EQ(channel.stats().late, 0u);
  EXPECT_EQ(channel.stats().dropped, 0u);
}

TEST(Channel, HoldsMessagesUntilTheirDeliveryTick) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.latency_ticks = 2;
  SimTransport sim(opts);
  IntChannel channel(sim, 1);
  channel.publish(0, 10, 7);

  std::size_t delivered = 0;
  EXPECT_EQ(channel.drain(10, [&](const Message<int>&) { ++delivered; }), 0u);
  EXPECT_EQ(channel.drain(11, [&](const Message<int>&) { ++delivered; }), 0u);
  EXPECT_EQ(channel.drain(12, [&](const Message<int>& m) {
    ++delivered;
    EXPECT_EQ(m.send_tick, 10);
    EXPECT_EQ(m.deliver_tick, 12);
    EXPECT_TRUE(m.late());
  }), 1u);
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(channel.stats().late, 1u);
}

TEST(Channel, DrainOrderIsDeliverTickThenSenderThenSendTick) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.latency_ticks = 0;
  SimTransport sim(opts);
  // Payload encodes (sender, tick) so the order is visible.
  Channel<std::string> channel(sim, 1);
  // Published in scrambled sender order (each sender's own stream stays
  // in tick order, as agents publish — the FIFO clamp assumes that).
  channel.publish(2, 1, "s2t1");
  channel.publish(1, 1, "s1t1");
  channel.publish(0, 1, "s0t1");
  channel.publish(0, 2, "s0t2");

  std::vector<std::string> seen;
  channel.drain(2, [&](const Message<std::string>& m) { seen.push_back(m.payload); });
  EXPECT_EQ(seen,
            (std::vector<std::string>{"s0t1", "s1t1", "s2t1", "s0t2"}));
}

TEST(Channel, PerSenderStreamsStayFifoUnderJitter) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.latency_ticks = 1;
  opts.jitter = 6.0;
  opts.seed = 3;
  SimTransport sim(opts);
  Channel<std::int64_t> channel(sim, 1);
  for (std::int64_t t = 0; t < 100; ++t) channel.publish(4, t, t);

  std::int64_t last_seen = -1;
  bool fifo = true;
  channel.drain(1000, [&](const Message<std::int64_t>& m) {
    if (m.payload < last_seen) fifo = false;
    last_seen = m.payload;
    // The clamp never delivers before the raw plan's earliest tick.
    EXPECT_GE(m.deliver_tick, m.send_tick + 1);
  });
  EXPECT_TRUE(fifo);
  EXPECT_EQ(last_seen, 99);
}

TEST(Channel, DropsAreCountedAndNeverDelivered) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.latency_ticks = 0;
  opts.drop = 0.4;
  opts.seed = 5;
  SimTransport sim(opts);
  IntChannel channel(sim, 1);
  std::size_t accepted = 0;
  for (std::int64_t t = 0; t < 200; ++t) {
    // will_drop agrees with what publish is about to decide.
    const bool predicted = channel.will_drop(0, t);
    const bool published = channel.publish(0, t, 1);
    EXPECT_EQ(published, !predicted);
    if (published) ++accepted;
  }
  const ChannelStats stats = channel.stats();
  EXPECT_EQ(stats.published, accepted);
  EXPECT_EQ(stats.dropped, 200u - accepted);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_LT(stats.dropped, 200u);

  std::size_t delivered = 0;
  channel.drain(1000, [&](const Message<int>&) { ++delivered; });
  EXPECT_EQ(delivered, accepted);
}

TEST(Channel, BoundedCapacityDropsTheOverflow) {
  SyncTransport sync;
  IntChannel channel(sync, 1, 2);
  EXPECT_TRUE(channel.publish(0, 0, 1));
  EXPECT_TRUE(channel.publish(1, 0, 2));
  EXPECT_FALSE(channel.publish(2, 0, 3));  // full
  EXPECT_EQ(channel.stats().dropped, 1u);
  std::size_t delivered = 0;
  channel.drain(0, [&](const Message<int>&) { ++delivered; });
  EXPECT_EQ(delivered, 2u);
  // Draining frees the slots again.
  EXPECT_TRUE(channel.publish(2, 1, 4));
}

TEST(Channel, DrainResultIndependentOfPublishOrder) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.latency_ticks = 1;
  opts.jitter = 3.0;
  opts.drop = 0.2;
  opts.seed = 17;
  SimTransport sim(opts);

  auto run = [&](bool reversed) {
    Channel<std::string> channel(sim, 1);
    std::vector<std::pair<std::uint64_t, std::int64_t>> sends;
    for (std::uint64_t sender = 0; sender < 6; ++sender) {
      sends.emplace_back(sender, 3);
    }
    if (reversed) std::reverse(sends.begin(), sends.end());
    for (const auto& [sender, tick] : sends) {
      std::string payload = "s";
      payload += std::to_string(sender);
      channel.publish(sender, tick, std::move(payload));
    }
    std::vector<std::string> seen;
    for (std::int64_t t = 3; t < 10; ++t) {
      channel.drain(t, [&](const Message<std::string>& m) {
        std::string entry = std::to_string(t);
        entry += ':';
        entry += m.payload;
        seen.push_back(std::move(entry));
      });
    }
    return seen;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Channel, ConcurrentPublishersMatchSerialResult) {
  TransportOptions opts;
  opts.kind = TransportKind::kSim;
  opts.latency_ticks = 1;
  opts.jitter = 4.0;
  opts.drop = 0.15;
  opts.seed = 23;
  SimTransport sim(opts);
  constexpr std::uint64_t kSenders = 8;
  constexpr std::int64_t kTicks = 40;

  auto run = [&](bool threaded) {
    Channel<std::uint64_t> channel(sim, 1);
    for (std::int64_t t = 0; t < kTicks; ++t) {
      if (threaded) {
        std::vector<std::thread> threads;
        for (std::uint64_t s = 0; s < kSenders; ++s) {
          threads.emplace_back(
              [&channel, s, t] { channel.publish(s, t, s * 1000 + t); });
        }
        for (auto& thread : threads) thread.join();
      } else {
        for (std::uint64_t s = 0; s < kSenders; ++s) {
          channel.publish(s, t, s * 1000 + t);
        }
      }
    }
    std::vector<std::uint64_t> seen;
    for (std::int64_t t = 0; t < kTicks + 10; ++t) {
      channel.drain(t, [&](const Message<std::uint64_t>& m) {
        seen.push_back(m.payload);
      });
    }
    return seen;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace capes::bus
