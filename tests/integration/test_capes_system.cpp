// CapesSystem integration over the mock adapter: exercises the full
// Figure 1 loop (monitor -> replay DB -> engine -> checker -> control)
// without the Lustre simulator.

#include "core/capes_system.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "../core/mock_adapter.hpp"

namespace capes::core {
namespace {

using testing::MockAdapter;

CapesOptions small_options() {
  CapesOptions o;
  o.replay.ticks_per_observation = 3;
  o.engine.dqn.hidden_size = 16;
  o.engine.minibatch_size = 4;
  o.engine.epsilon.anneal_ticks = 50;
  o.engine.dqn.learning_rate = 1e-3f;
  o.reward_scale_mbs = 100.0;
  return o;
}

TEST(CapesSystem, WiresOneAgentPerNode) {
  sim::Simulator sim;
  MockAdapter adapter(4, 3);
  CapesSystem capes(sim, adapter, small_options());
  EXPECT_EQ(capes.monitoring_agents().size(), 4u);
  EXPECT_EQ(capes.action_space().num_actions(), 3u);  // 1 param
}

TEST(CapesSystem, BaselineCollectsPerTickSamples) {
  sim::Simulator sim;
  MockAdapter adapter(2, 3);
  CapesSystem capes(sim, adapter, small_options());
  const auto result = capes.run_baseline(20);
  EXPECT_EQ(result.throughput.count(), 20u);
  EXPECT_EQ(result.rewards.size(), 20u);
  EXPECT_EQ(result.start_tick, 0);
  EXPECT_EQ(result.end_tick, 20);
  EXPECT_EQ(result.train_steps, 0u);
  // Baseline keeps the initial parameter values.
  EXPECT_DOUBLE_EQ(adapter.current_parameters()[0], 50.0);
  // Mock baseline throughput = 100 - |50 - 80| = 70.
  EXPECT_NEAR(result.analyze().mean, 70.0, 1e-6);
}

TEST(CapesSystem, SamplingTickFeedsReplayDb) {
  sim::Simulator sim;
  MockAdapter adapter(2, 3);
  CapesSystem capes(sim, adapter, small_options());
  capes.run_baseline(10);
  EXPECT_EQ(capes.replay().tick_count(), 10u);
  EXPECT_TRUE(capes.replay().status_at(5, 0).has_value());
  EXPECT_TRUE(capes.replay().reward_at(5).has_value());
  EXPECT_EQ(*capes.replay().action_at(5), 0u);  // NULL actions in baseline
}

TEST(CapesSystem, TrainingRunsTrainSteps) {
  sim::Simulator sim;
  MockAdapter adapter(2, 3);
  CapesSystem capes(sim, adapter, small_options());
  const auto result = capes.run_training(30);
  EXPECT_GT(result.train_steps, 0u);
  EXPECT_GT(capes.engine().total_train_steps(), 0u);
}

TEST(CapesSystem, TrainingChangesParameters) {
  sim::Simulator sim;
  MockAdapter adapter(2, 3);
  CapesSystem capes(sim, adapter, small_options());
  capes.run_training(50);  // epsilon starts at 1.0: random walk
  EXPECT_GT(adapter.set_calls, 0);
}

TEST(CapesSystem, TicksAccumulateAcrossPhases) {
  sim::Simulator sim;
  MockAdapter adapter(2, 3);
  CapesSystem capes(sim, adapter, small_options());
  capes.run_training(10);
  EXPECT_EQ(capes.current_tick(), 10);
  capes.run_baseline(5);
  EXPECT_EQ(capes.current_tick(), 15);
}

TEST(CapesSystem, SimulatedTimeAdvancesOneTickPerSample) {
  sim::Simulator sim;
  MockAdapter adapter(1, 3);
  CapesOptions o = small_options();
  o.sampling_tick_s = 2.0;
  CapesSystem capes(sim, adapter, o);
  capes.run_baseline(5);
  EXPECT_EQ(sim.now(), sim::seconds(10.0));
}

TEST(CapesSystem, MonitoringBytesCounted) {
  sim::Simulator sim;
  MockAdapter adapter(3, 3);
  CapesSystem capes(sim, adapter, small_options());
  capes.run_baseline(10);
  EXPECT_GT(capes.monitoring_bytes_sent(), 0u);
}

TEST(CapesSystem, ResetParametersRestoresDefaults) {
  sim::Simulator sim;
  MockAdapter adapter(2, 3);
  CapesSystem capes(sim, adapter, small_options());
  adapter.set_parameters({95.0});
  capes.reset_parameters();
  EXPECT_DOUBLE_EQ(adapter.current_parameters()[0], 50.0);
}

TEST(CapesSystem, LearnsMockOptimum) {
  // The end-to-end control loop must find the mock's inverted-V optimum at
  // knob = 80 (start 50) and hold near it during tuned evaluation.
  sim::Simulator sim;
  MockAdapter adapter(2, 3);
  CapesOptions o = small_options();
  o.engine.epsilon.anneal_ticks = 200;
  o.engine.train_steps_per_tick = 2;
  o.engine.dqn.gamma = 0.9f;
  o.engine.dqn.learning_rate = 2e-3f;
  o.engine.eval_epsilon = 0.0;
  CapesSystem capes(sim, adapter, o);
  const auto base = capes.run_baseline(30).analyze();
  capes.run_training(800);
  const auto tuned = capes.run_tuned(80).analyze();
  EXPECT_GT(tuned.mean, base.mean + 5.0);
  EXPECT_NEAR(adapter.current_parameters()[0], 80.0, 20.0);
}

TEST(CapesSystem, CheckpointRoundTrip) {
  sim::Simulator sim;
  MockAdapter adapter(2, 3);
  CapesSystem capes(sim, adapter, small_options());
  capes.run_training(40);
  const std::string path =
      (std::filesystem::temp_directory_path() / "capes_sys_ckpt.bin").string();
  ASSERT_TRUE(capes.save_model(path));

  sim::Simulator sim2;
  MockAdapter adapter2(2, 3);
  CapesSystem capes2(sim2, adapter2, small_options());
  ASSERT_TRUE(capes2.load_model(path));
  std::filesystem::remove(path);
}

TEST(CapesSystem, DurableReplayDbWritten) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "capes_sys_db").string();
  std::filesystem::remove_all(dir);
  {
    sim::Simulator sim;
    MockAdapter adapter(2, 3);
    CapesOptions o = small_options();
    o.replay_db_dir = dir;
    CapesSystem capes(sim, adapter, o);
    capes.run_baseline(10);
    ASSERT_NE(capes.database(), nullptr);
    EXPECT_GT(capes.database()->disk_bytes(), 0u);
  }
  // Destructor checkpointed; a fresh DB can load it.
  waldb::Database db;
  ASSERT_TRUE(db.open(dir));
  EXPECT_NE(db.find_table("status"), nullptr);
  std::filesystem::remove_all(dir);
}

TEST(CapesSystem, CustomObjectiveUsed) {
  sim::Simulator sim;
  MockAdapter adapter(1, 3);
  // Latency-only objective: reward should be negative of latency scale.
  CapesSystem capes(sim, adapter, small_options(),
                    [](const PerfSample& s) { return -s.avg_latency_ms; });
  const auto result = capes.run_baseline(5);
  for (double r : result.rewards) EXPECT_LT(r, 0.0);
}

TEST(CapesSystem, WorkloadChangeNotificationBumpsEpsilon) {
  sim::Simulator sim;
  MockAdapter adapter(1, 3);
  CapesOptions o = small_options();
  o.engine.epsilon.anneal_ticks = 10;
  CapesSystem capes(sim, adapter, o);
  capes.run_training(50);  // epsilon fully annealed to 0.05
  capes.notify_workload_change();
  EXPECT_NEAR(capes.engine().current_epsilon(capes.current_tick(), true), 0.2,
              1e-9);
}

}  // namespace
}  // namespace capes::core
