// Distributed control-plane integration: a CapesSystem whose DRL brain
// lives behind a loopback `tcp:` link to an in-process BrainService (the
// capes_daemond session logic) must train bit-identically to the
// in-process `sync` path — same weights fingerprint, same per-tick CSVs
// — and captures from the distributed run must replay through the
// standard trace replayer. Also pinned: neither side hangs when the
// other vanishes mid-phase.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/brain_service.hpp"
#include "core/capes_system.hpp"
#include "core/experiment.hpp"
#include "core/presets.hpp"
#include "core/remote_brain.hpp"
#include "core/trace_replay.hpp"
#include "lustre/cluster.hpp"
#include "net/endpoint.hpp"
#include "net/socket.hpp"
#include "workload/random_rw.hpp"

namespace capes {
namespace {

/// One capes_daemond session on a test thread: listen on an ephemeral
/// loopback port, accept one peer, serve it. kill_link() simulates the
/// daemon dying mid-phase by closing the endpoint under the client.
class ServiceThread {
 public:
  bool start() {
    std::string error;
    listen_fd_ = net::tcp_listen("127.0.0.1", 0, &error);
    if (listen_fd_ < 0) {
      ADD_FAILURE() << "tcp_listen: " << error;
      return false;
    }
    port_ = net::local_port(listen_fd_);
    thread_ = std::thread([this] { run(); });
    return true;
  }

  std::uint16_t port() const { return port_; }

  void kill_link() {
    std::lock_guard<std::mutex> lock(mu_);
    if (endpoint_) endpoint_->close();
  }

  core::BrainServiceReport join() {
    if (thread_.joinable()) thread_.join();
    return report_;
  }

 private:
  void run() {
    std::string error;
    const int fd = net::accept_connection(listen_fd_, 10000, &error);
    net::close_socket(listen_fd_);
    if (fd < 0) {
      report_.error = "accept: " + error;
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      endpoint_ = std::make_unique<net::Endpoint>(fd, net::EndpointOptions{});
    }
    core::BrainService service;
    report_ = service.serve(*endpoint_);
    std::lock_guard<std::mutex> lock(mu_);
    endpoint_->close();
  }

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::mutex mu_;
  std::unique_ptr<net::Endpoint> endpoint_;
  core::BrainServiceReport report_;
  std::thread thread_;
};

core::EvaluationPreset distributed_preset() {
  auto p = core::fast_preset(7);
  p.capes.engine.epsilon.anneal_ticks = 60;
  return p;
}

struct RunOutcome {
  std::uint32_t fingerprint = 0;
  std::size_t train_steps = 0;
  std::string training_csv;
  std::string baseline_csv;
  std::string tuned_csv;
  std::uint64_t messages_dropped = 0;
};

/// The §A.4 workflow against either brain; tcp_port 0 = in-process sync.
RunOutcome run_workflow(std::uint16_t tcp_port,
                        const std::string& capture_path = "") {
  auto preset = distributed_preset();
  if (tcp_port != 0) {
    preset.capes.transport.kind = bus::TransportKind::kTcp;
    preset.capes.transport.tcp_host = "127.0.0.1";
    preset.capes.transport.tcp_port = tcp_port;
  }
  preset.capes.capture_path = capture_path;
  sim::Simulator sim;
  lustre::Cluster cluster(sim, preset.cluster);
  workload::RandomRwOptions wopts;
  wopts.read_fraction = 0.1;
  workload::RandomRw wl(cluster, wopts);
  wl.start();
  core::CapesSystem capes(sim, cluster, preset.capes);
  sim.run_until(sim::seconds(3));

  RunOutcome out;
  const auto training = capes.run_training(80);
  const auto baseline = capes.run_baseline(30);
  const auto tuned = capes.run_tuned(30);
  out.training_csv = core::run_result_csv(training);
  out.baseline_csv = core::run_result_csv(baseline);
  out.tuned_csv = core::run_result_csv(tuned);
  out.messages_dropped = training.messages_dropped +
                         baseline.messages_dropped + tuned.messages_dropped;
  out.fingerprint = capes.training_fingerprint();
  out.train_steps = capes.total_train_steps();
  if (auto* writer = capes.capture_writer()) {
    EXPECT_TRUE(writer->close());
    EXPECT_EQ(writer->records_dropped(), 0u);
  }
  return out;
}

TEST(Distributed, LoopbackTcpMatchesSyncBitExactly) {
  const RunOutcome local = run_workflow(0);
  ASSERT_GT(local.train_steps, 0u);

  ServiceThread service;
  ASSERT_TRUE(service.start());
  const RunOutcome remote = run_workflow(service.port());
  const auto report = service.join();

  ASSERT_TRUE(report.hello_ok) << report.error;
  EXPECT_TRUE(report.clean_shutdown);
  EXPECT_TRUE(report.error.empty()) << report.error;
  EXPECT_EQ(report.decode_errors, 0u);

  // Zero loss on loopback...
  EXPECT_EQ(remote.messages_dropped, 0u);
  // ...means the remote brain is a transparent extension: identical
  // weights, identical step count, identical per-tick phase CSVs.
  EXPECT_EQ(remote.fingerprint, local.fingerprint);
  EXPECT_EQ(remote.train_steps, local.train_steps);
  EXPECT_EQ(report.fingerprint, local.fingerprint);
  EXPECT_EQ(report.train_steps, local.train_steps);
  EXPECT_EQ(remote.training_csv, local.training_csv);
  EXPECT_EQ(remote.baseline_csv, local.baseline_csv);
  EXPECT_EQ(remote.tuned_csv, local.tuned_csv);
}

TEST(Distributed, CaptureFromDistributedRunReplaysIdentically) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("capes_dist_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "dist.cap").string();

  ServiceThread service;
  ASSERT_TRUE(service.start());
  const RunOutcome remote = run_workflow(service.port(), path);
  service.join();
  ASSERT_GT(remote.train_steps, 0u);

  // The capture was written agent-side, from wire traffic — and still
  // replays through the standard single-process replayer, reproducing
  // the daemon's weights exactly.
  core::TraceReplayer replayer;
  core::TraceReplayOptions opts;
  opts.speed = core::ReplaySpeed::kMax;
  std::string error;
  ASSERT_TRUE(replayer.open(path, opts, &error)) << error;
  const auto report = replayer.run();
  EXPECT_EQ(report.decode_errors, 0u);
  EXPECT_EQ(report.action_mismatches, 0u);
  EXPECT_EQ(report.total_train_steps, remote.train_steps);
  EXPECT_EQ(report.weights_fingerprint, remote.fingerprint);
  std::filesystem::remove_all(dir);
}

TEST(Distributed, DaemonDeathMidPhaseDoesNotHangTheAgent) {
  ServiceThread service;
  ASSERT_TRUE(service.start());

  auto preset = distributed_preset();
  preset.capes.transport.kind = bus::TransportKind::kTcp;
  preset.capes.transport.tcp_host = "127.0.0.1";
  preset.capes.transport.tcp_port = service.port();
  sim::Simulator sim;
  lustre::Cluster cluster(sim, preset.cluster);
  workload::RandomRwOptions wopts;
  wopts.read_fraction = 0.1;
  workload::RandomRw wl(cluster, wopts);
  wl.start();
  core::CapesSystem capes(sim, cluster, preset.capes);
  sim.run_until(sim::seconds(3));

  const auto before = capes.run_training(30);
  EXPECT_EQ(before.messages_dropped, 0u);
  ASSERT_NE(capes.brain_client(), nullptr);
  EXPECT_TRUE(capes.brain_client()->alive());

  // The daemon dies between ticks; the agent must finish the phase
  // offline — no actions, loss counted, no hang (enforced by the test
  // timeout) — rather than block in a dead recv().
  service.kill_link();
  const auto after = capes.run_training(30);
  EXPECT_GT(after.messages_dropped, 0u);
  EXPECT_FALSE(capes.brain_client()->alive());
  // No brain means no actions and no training happened after the death.
  EXPECT_EQ(after.train_steps, 0u);
  service.join();
}

TEST(Distributed, AgentVanishingEndsServeWithoutCleanShutdown) {
  std::string error;
  const int listen_fd = net::tcp_listen("127.0.0.1", 0, &error);
  ASSERT_GE(listen_fd, 0) << error;
  const std::uint16_t port = net::local_port(listen_fd);
  const int client_fd = net::tcp_connect("127.0.0.1", port, 5000, &error);
  ASSERT_GE(client_fd, 0) << error;
  const int server_fd = net::accept_connection(listen_fd, 5000, &error);
  ASSERT_GE(server_fd, 0) << error;
  net::close_socket(listen_fd);

  net::Endpoint server(server_fd, net::EndpointOptions{});
  // The "agent" connects and dies without so much as a Hello. serve()
  // must return promptly (EOF), not wait for a Bye that never comes.
  std::thread killer([client_fd] {
    net::Endpoint client(client_fd, net::EndpointOptions{});
    client.close();
  });
  core::BrainService service;
  const auto report = service.serve(server);
  killer.join();
  EXPECT_FALSE(report.hello_ok);
  EXPECT_FALSE(report.clean_shutdown);
  EXPECT_EQ(report.ticks, 0);
  server.close();
}

}  // namespace
}  // namespace capes
