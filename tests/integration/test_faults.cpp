// Fault-regime integration: the acceptance pins for deterministic fault
// injection. A build that never calls faults() (or passes "off") is
// bit-identical to pre-fault behaviour; a seeded faulted run is
// bit-identical run-to-run, at any shard/thread count, under the rate
// shard plan, and composes with the sim transport's own drops; an OST
// crash mid-phase never stalls the sampling-tick barrier (the TSan leg
// runs this suite too); and a captured faulted run replays with exactly
// the live per-phase fault counters and changepoint counts.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/experiment.hpp"
#include "core/trace_replay.hpp"
#include "stats/changepoint.hpp"
#include "util/config.hpp"

namespace capes::core {
namespace {

const char kBusyFaults[] =
    "faults:ost_crash=0.02,restart_ticks=8,straggler=0.05,slow_factor=6,"
    "straggler_ticks=12,partition=0.02,partition_ticks=4";

/// Train + tuned over three heterogeneous bundled domains; every
/// per-tick sample, the fault counters, and the final parameters, so any
/// divergence anywhere in the run shows up in the comparison.
std::vector<double> run_fingerprint(const std::string& faults,
                                    std::size_t sim_shards,
                                    std::size_t threads,
                                    const std::string& shard_plan = "",
                                    const std::string& transport = "") {
  auto builder = Experiment::builder()
                     .seed(7)
                     .workload("random:0.3")
                     .add_cluster("seqwrite")
                     .add_cluster("random:0.7")
                     .warmup_seconds(2)
                     .worker_threads(threads)
                     .sim_shards(sim_shards);
  if (!faults.empty()) builder.faults(faults);
  if (!shard_plan.empty()) builder.shard_plan(shard_plan);
  if (!transport.empty()) builder.transport(transport);
  std::string error;
  auto exp = builder.build(&error);
  EXPECT_NE(exp, nullptr) << error;
  if (!exp) return {};
  const PhaseReport training = exp->run_training(50);
  const PhaseReport tuned = exp->run_tuned(20);

  std::vector<double> out;
  for (const PhaseReport* phase : {&training, &tuned}) {
    const auto& tput = phase->result.throughput.samples();
    const auto& lat = phase->result.latency_ms.samples();
    out.insert(out.end(), tput.begin(), tput.end());
    out.insert(out.end(), lat.begin(), lat.end());
    out.insert(out.end(), phase->result.rewards.begin(),
               phase->result.rewards.end());
    out.push_back(static_cast<double>(phase->result.messages_late));
    out.push_back(static_cast<double>(phase->result.messages_dropped));
    out.push_back(static_cast<double>(phase->result.faults_injected));
    out.push_back(static_cast<double>(phase->result.ost_crashes));
    out.push_back(static_cast<double>(phase->result.stragglers));
    out.push_back(static_cast<double>(phase->result.partitions));
    out.push_back(static_cast<double>(phase->result.ticks_degraded));
    out.push_back(static_cast<double>(phase->result.regime_shifts));
  }
  const std::vector<double> params = exp->parameter_values();
  out.insert(out.end(), params.begin(), params.end());
  return out;
}

TEST(Faults, OffIsBitIdenticalToNeverConfigured) {
  // The first acceptance pin: an explicit "off" spec and a builder that
  // never mentions faults produce identical runs — the fault seam adds
  // no RNG draws, no transport wrap, no float perturbation.
  const std::vector<double> unset = run_fingerprint("", 1, 0);
  const std::vector<double> off = run_fingerprint("off", 1, 0);
  ASSERT_FALSE(unset.empty());
  EXPECT_EQ(unset, off);
}

TEST(Faults, OffReportsZeroCountersAndComputesRegimeShifts) {
  std::string error;
  auto exp = Experiment::builder()
                 .seed(7)
                 .workload("random:0.3")
                 .warmup_seconds(2)
                 .build(&error);
  ASSERT_NE(exp, nullptr) << error;
  const PhaseReport training = exp->run_training(40);
  EXPECT_EQ(training.result.faults_injected, 0u);
  EXPECT_EQ(training.result.ticks_degraded, 0u);
  // regime_shifts is computed unconditionally (live and replay must
  // agree whether or not faults fired) — just not printed when off.
  EXPECT_EQ(training.result.regime_shifts,
            stats::pelt_mean_shift(training.result.throughput.samples())
                .size());
}

TEST(Faults, SeededFaultedRunIsRepeatable) {
  const std::vector<double> first = run_fingerprint(kBusyFaults, 1, 0);
  const std::vector<double> second = run_fingerprint(kBusyFaults, 1, 0);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first, run_fingerprint("", 1, 0));  // the faults actually bite
}

TEST(Faults, FaultedRunBitIdenticalAcrossShardAndThreadCounts) {
  // The core determinism pin: fates are pure hashes of
  // (seed, kind, node, tick), injection runs at the barrier under the
  // domain's shard binding, so partitioning and thread count are
  // invisible.
  const std::vector<double> serial = run_fingerprint(kBusyFaults, 1, 0);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, run_fingerprint(kBusyFaults, 0, 0));
  EXPECT_EQ(serial, run_fingerprint(kBusyFaults, 0, 3));
  EXPECT_EQ(serial, run_fingerprint(kBusyFaults, 2, 2));
}

TEST(Faults, FaultedRunBitIdenticalUnderRateShardPlan) {
  // Injected transitions are scheduled into the domain-tagged queue, so
  // they migrate with the domain when the rate plan re-packs at phase
  // boundaries.
  const std::vector<double> serial =
      run_fingerprint(kBusyFaults, 1, 0, "static");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, run_fingerprint(kBusyFaults, 0, 3, "rate"));
}

TEST(Faults, ComposesWithSimTransportDrops) {
  // Partition windows OR onto the sim transport's own per-message drop
  // fates (FaultingTransport wraps, never replaces) — and the composed
  // run stays bit-identical across shard/thread counts.
  const std::string transport = "sim:latency_ticks=1,jitter=2,drop=0.1";
  const std::vector<double> serial =
      run_fingerprint(kBusyFaults, 1, 0, "", transport);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, run_fingerprint(kBusyFaults, 0, 3, "rate", transport));
  // The partitions drop strictly more messages than the transport alone.
  const std::vector<double> transport_only =
      run_fingerprint("", 1, 0, "", transport);
  EXPECT_NE(serial, transport_only);
}

TEST(Faults, PartitionsSurfaceAsDroppedMessages) {
  // Partition windows on the default (sync) transport: the only message
  // loss possible comes from the fault seam.
  std::string error;
  auto exp = Experiment::builder()
                 .seed(7)
                 .workload("random:0.3")
                 .add_cluster("seqwrite")
                 .warmup_seconds(2)
                 .faults("faults:partition=0.05,partition_ticks=6")
                 .build(&error);
  ASSERT_NE(exp, nullptr) << error;
  const PhaseReport training = exp->run_training(60);
  EXPECT_GT(training.result.partitions, 0u);
  EXPECT_GT(training.result.messages_dropped, 0u);
  EXPECT_EQ(training.result.ost_crashes, 0u);
  EXPECT_EQ(training.result.stragglers, 0u);
}

TEST(Faults, OstCrashMidPhaseNeverStallsTheBarrier) {
  // A harsh crash regime (every server down ~20% of ticks) on the worker
  // pool with sharded queues: the run must complete every tick — queued
  // I/O is rejected, in-flight replies suppressed, and the OSC-side
  // retransmit machinery absorbs the gap without deadlock. The TSan CI
  // leg runs this test too.
  std::string error;
  auto exp = Experiment::builder()
                 .seed(11)
                 .workload("random:0.3")
                 .add_cluster("seqwrite")
                 .warmup_seconds(2)
                 .worker_threads(2)
                 .sim_shards(0)
                 .faults("faults:ost_crash=0.03,restart_ticks=8")
                 .build(&error);
  ASSERT_NE(exp, nullptr) << error;
  const PhaseReport training = exp->run_training(80);
  EXPECT_EQ(training.result.rewards.size(), 80u);
  EXPECT_GT(training.result.ost_crashes, 0u);
  EXPECT_GT(training.result.ticks_degraded, 0u);
  const PhaseReport tuned = exp->run_tuned(30);
  EXPECT_EQ(tuned.result.rewards.size(), 30u);
}

TEST(Faults, CapturedFaultedRunReplaysWithIdenticalCounters) {
  // Capture/replay parity: every kFault record written live lets the
  // replayer rebuild the exact per-phase counters, and the changepoint
  // statistic recomputed from the traced per-tick throughput matches the
  // live run's.
  const std::string path = ::testing::TempDir() + "faulted_trace.cap";
  std::string error;
  auto exp = Experiment::builder()
                 .seed(7)
                 .workload("random:0.3")
                 .warmup_seconds(2)
                 .faults(kBusyFaults)
                 .capture(path)
                 .build(&error);
  ASSERT_NE(exp, nullptr) << error;
  const PhaseReport training = exp->run_training(60);
  const PhaseReport tuned = exp->run_tuned(25);
  ASSERT_GT(training.result.faults_injected, 0u);
  const std::uint32_t live_fingerprint =
      exp->system().training_fingerprint();
  ASSERT_TRUE(exp->system().capture_writer()->close());
  ASSERT_EQ(exp->system().capture_writer()->records_dropped(), 0u);

  TraceReplayer replayer;
  ASSERT_TRUE(replayer.open(path, {}, &error)) << error;
  const TraceReplayReport replay = replayer.run();
  std::remove(path.c_str());

  EXPECT_EQ(replay.weights_fingerprint, live_fingerprint);
  EXPECT_GT(replay.fault_records, 0u);
  ASSERT_EQ(replay.phases.size(), 2u);
  const PhaseReport* live_phases[] = {&training, &tuned};
  for (std::size_t i = 0; i < 2; ++i) {
    const RunResult& live = live_phases[i]->result;
    const ReplayPhaseSummary& traced = replay.phases[i];
    EXPECT_EQ(traced.faults_injected, live.faults_injected) << "phase " << i;
    EXPECT_EQ(traced.ost_crashes, live.ost_crashes) << "phase " << i;
    EXPECT_EQ(traced.stragglers, live.stragglers) << "phase " << i;
    EXPECT_EQ(traced.partitions, live.partitions) << "phase " << i;
    EXPECT_EQ(traced.ticks_degraded, live.ticks_degraded) << "phase " << i;
    EXPECT_EQ(traced.regime_shifts, live.regime_shifts) << "phase " << i;
  }
}

TEST(Faults, MalformedSpecFailsTheBuild) {
  std::string error;
  auto exp = Experiment::builder()
                 .workload("random:0.5")
                 .faults("faults:gremlins=0.1")
                 .build(&error);
  EXPECT_EQ(exp, nullptr);
  EXPECT_NE(error.find("gremlins"), std::string::npos) << error;
}

TEST(Faults, TcpTransportRejectsFaults) {
  // Fault fates are functions of the simulated tick clock; a real
  // control network has none to share. The builder refuses the combo.
  std::string error;
  auto exp = Experiment::builder()
                 .workload("random:0.5")
                 .faults("faults:ost_crash=0.01")
                 .transport("tcp:host=localhost,port=4242")
                 .build(&error);
  EXPECT_EQ(exp, nullptr);
  EXPECT_NE(error.find("tcp"), std::string::npos) << error;
}

TEST(Faults, ConfKeysRoundTripAndClamp) {
  // The overlay path: capes.sim.faults.* keys land in the plan (clamping
  // out-of-range values, like every conf numeric), and an explicit plan
  // emits keys that read back identically.
  const std::string path = ::testing::TempDir() + "faults.conf";
  {
    std::ofstream out(path);
    out << "capes.sim.faults.ost_crash = 0.01\n"
        << "capes.sim.faults.restart_ticks = 9\n"
        << "capes.sim.faults.straggler = 2.0\n"   // clamps to 0.999
        << "capes.sim.faults.slow_factor = 0.5\n" // clamps to 1.0
        << "capes.sim.faults.partition = 0.003\n"
        << "capes.sim.faults.seed = 77\n";
  }
  util::Config cfg;
  ASSERT_TRUE(cfg.parse_file(path));
  std::remove(path.c_str());
  const CapesOptions opts = capes_options_from_config(cfg);
  EXPECT_DOUBLE_EQ(opts.faults.ost_crash, 0.01);
  EXPECT_EQ(opts.faults.restart_ticks, 9);
  EXPECT_DOUBLE_EQ(opts.faults.straggler, 0.999);
  EXPECT_DOUBLE_EQ(opts.faults.slow_factor, 1.0);
  EXPECT_DOUBLE_EQ(opts.faults.partition, 0.003);
  EXPECT_EQ(opts.faults.seed, 77u);
  EXPECT_TRUE(opts.faults.seed_explicit);

  const util::Config dumped = config_from_options(opts, {});
  const CapesOptions reread = capes_options_from_config(dumped);
  EXPECT_DOUBLE_EQ(reread.faults.ost_crash, opts.faults.ost_crash);
  EXPECT_EQ(reread.faults.restart_ticks, opts.faults.restart_ticks);
  EXPECT_DOUBLE_EQ(reread.faults.straggler, opts.faults.straggler);
  EXPECT_DOUBLE_EQ(reread.faults.slow_factor, opts.faults.slow_factor);
  EXPECT_DOUBLE_EQ(reread.faults.partition, opts.faults.partition);
  EXPECT_EQ(reread.faults.seed, opts.faults.seed);

  // A faultless options struct emits no capes.sim.faults.* keys at all:
  // dumped configs from faultless runs stay byte-identical to pre-fault
  // builds.
  const util::Config clean = config_from_options(CapesOptions{}, {});
  EXPECT_FALSE(clean.has("capes.sim.faults.ost_crash"));
  EXPECT_FALSE(clean.has("capes.sim.faults.seed"));
}

}  // namespace
}  // namespace capes::core
