// End-to-end integration on the simulated Lustre cluster: short versions
// of the paper's evaluation workflow (Appendix A.4). These are the
// slowest tests in the suite; they use reduced tick counts and assert
// directional properties, leaving the full-scale numbers to bench/.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/capes_system.hpp"
#include "core/presets.hpp"
#include "lustre/cluster.hpp"
#include "workload/random_rw.hpp"
#include "workload/seq_write.hpp"

namespace capes {
namespace {

core::EvaluationPreset tiny_preset() {
  auto p = core::fast_preset(7);
  p.capes.engine.epsilon.anneal_ticks = 60;
  return p;
}

TEST(EndToEnd, FullLoopRunsOnLustreCluster) {
  auto preset = tiny_preset();
  sim::Simulator sim;
  lustre::Cluster cluster(sim, preset.cluster);
  workload::RandomRwOptions wopts;
  wopts.read_fraction = 0.1;
  workload::RandomRw wl(cluster, wopts);
  wl.start();
  core::CapesSystem capes(sim, cluster, preset.capes);
  sim.run_until(sim::seconds(3));

  const auto result = capes.run_training(80);
  EXPECT_EQ(result.throughput.count(), 80u);
  EXPECT_GT(result.train_steps, 0u);
  // Throughput samples are plausible MB/s numbers.
  const auto r = result.analyze();
  EXPECT_GT(r.mean, 5.0);
  EXPECT_LT(r.mean, 600.0);
  // The replay DB filled up.
  EXPECT_GE(capes.replay().tick_count(), 80u);
  // Observations complete once the stack filled.
  EXPECT_TRUE(capes.replay().has_observation(70));
}

TEST(EndToEnd, PredictionErrorDeclines) {
  auto preset = tiny_preset();
  sim::Simulator sim;
  lustre::Cluster cluster(sim, preset.cluster);
  workload::RandomRwOptions wopts;
  wopts.read_fraction = 0.1;
  workload::RandomRw wl(cluster, wopts);
  wl.start();
  core::CapesSystem capes(sim, cluster, preset.capes);
  sim.run_until(sim::seconds(3));
  capes.run_training(400);

  const auto& log = capes.engine().prediction_error_log();
  ASSERT_GT(log.size(), 100u);
  double early = 0.0, late = 0.0;
  const std::size_t k = log.size() / 5;
  for (std::size_t i = 0; i < k; ++i) {
    early += log[i].second;
    late += log[log.size() - 1 - i].second;
  }
  EXPECT_LT(late, early);  // Figure 5's declining trend
}

TEST(EndToEnd, BaselineIsReproducibleAcrossSystems) {
  auto preset = tiny_preset();
  auto measure = [&] {
    sim::Simulator sim;
    lustre::Cluster cluster(sim, preset.cluster);
    workload::RandomRwOptions wopts;
    wopts.read_fraction = 0.5;
    workload::RandomRw wl(cluster, wopts);
    wl.start();
    core::CapesSystem capes(sim, cluster, preset.capes);
    sim.run_until(sim::seconds(3));
    return capes.run_baseline(60).analyze().mean;
  };
  const double a = measure();
  const double b = measure();
  EXPECT_DOUBLE_EQ(a, b);  // full determinism from seeds
}

TEST(EndToEnd, CheckpointTransfersPolicyAcrossSessions) {
  auto preset = tiny_preset();
  const std::string path =
      (std::filesystem::temp_directory_path() / "capes_e2e_model.bin").string();
  // Session 1: train briefly and checkpoint (§A.4 workflow).
  {
    sim::Simulator sim;
    lustre::Cluster cluster(sim, preset.cluster);
    workload::RandomRwOptions wopts;
    wopts.read_fraction = 0.1;
    workload::RandomRw wl(cluster, wopts);
    wl.start();
    core::CapesSystem capes(sim, cluster, preset.capes);
    sim.run_until(sim::seconds(3));
    capes.run_training(150);
    ASSERT_TRUE(capes.save_model(path));
  }
  // Session 2: load into a fresh system; tuned run must work.
  {
    sim::Simulator sim;
    lustre::Cluster cluster(sim, preset.cluster);
    workload::RandomRwOptions wopts;
    wopts.read_fraction = 0.1;
    workload::RandomRw wl(cluster, wopts);
    wl.start();
    core::CapesSystem capes(sim, cluster, preset.capes);
    ASSERT_TRUE(capes.load_model(path));
    sim.run_until(sim::seconds(3));
    const auto tuned = capes.run_tuned(40);
    EXPECT_EQ(tuned.throughput.count(), 40u);
  }
  std::filesystem::remove(path);
}

TEST(EndToEnd, TunedRunMovesParametersFromDefaults) {
  auto preset = tiny_preset();
  sim::Simulator sim;
  lustre::Cluster cluster(sim, preset.cluster);
  workload::RandomRwOptions wopts;
  wopts.read_fraction = 0.1;
  workload::RandomRw wl(cluster, wopts);
  wl.start();
  core::CapesSystem capes(sim, cluster, preset.capes);
  sim.run_until(sim::seconds(3));
  capes.run_training(300);
  capes.run_baseline(20);  // resets parameters to defaults
  EXPECT_DOUBLE_EQ(capes.parameter_values()[0], 8.0);
  capes.run_tuned(60);
  // With a write-heavy workload the policy should have raised the window.
  EXPECT_NE(capes.parameter_values()[0], 8.0);
}

TEST(EndToEnd, SeqWriteWorkloadRunsUnderCapes) {
  auto preset = tiny_preset();
  sim::Simulator sim;
  lustre::Cluster cluster(sim, preset.cluster);
  workload::SeqWriteOptions wopts;
  workload::SeqWrite wl(cluster, wopts);
  wl.start();
  core::CapesSystem capes(sim, cluster, preset.capes);
  sim.run_until(sim::seconds(3));
  const auto result = capes.run_training(60);
  // Sequential writes should be far faster than random (>100 MB/s).
  EXPECT_GT(result.analyze().mean, 100.0);
}

}  // namespace
}  // namespace capes
