// Sharded simulator event loop: per-domain event queues advanced
// between sampling ticks with a time-synced barrier at every tick.
// Pins the acceptance contract — the sharded loop is bit-identical to
// the serial single-queue loop for a fixed seed, with and without the
// worker pool, under the sim transport (delayed actions landing
// exactly on barrier ticks), and under either shard plan (static
// round-robin vs rate-aware re-packing at phase boundaries) — and the
// barrier edge cases: an empty domain (zero monitored nodes) must not
// stall the barrier. The rate plan must also *do* something: on a
// skewed workload its deterministic barrier-wait counter comes out
// strictly below static's.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "../core/mock_adapter.hpp"
#include "core/experiment.hpp"

namespace capes::core {
namespace {

using testing::MockAdapter;

/// One full train+tuned run over three heterogeneous bundled domains;
/// returns every per-tick sample plus the final parameters, so any
/// divergence anywhere in the run shows up in the comparison.
std::vector<double> run_fingerprint(std::size_t sim_shards,
                                    std::size_t threads,
                                    const std::string& transport,
                                    const std::string& shard_plan = "") {
  auto builder = Experiment::builder()
                     .seed(7)
                     .workload("random:0.3")
                     .add_cluster("seqwrite")
                     .add_cluster("random:0.7")
                     .warmup_seconds(2)
                     .worker_threads(threads)
                     .sim_shards(sim_shards);
  if (!transport.empty()) builder.transport(transport);
  if (!shard_plan.empty()) builder.shard_plan(shard_plan);
  std::string error;
  auto exp = builder.build(&error);
  EXPECT_NE(exp, nullptr) << error;
  if (!exp) return {};
  const PhaseReport training = exp->run_training(50);
  const PhaseReport tuned = exp->run_tuned(20);

  std::vector<double> out;
  for (const PhaseReport* phase : {&training, &tuned}) {
    const auto& tput = phase->result.throughput.samples();
    const auto& lat = phase->result.latency_ms.samples();
    out.insert(out.end(), tput.begin(), tput.end());
    out.insert(out.end(), lat.begin(), lat.end());
    out.insert(out.end(), phase->result.rewards.begin(),
               phase->result.rewards.end());
    out.push_back(static_cast<double>(phase->result.messages_late));
    out.push_back(static_cast<double>(phase->result.messages_dropped));
  }
  const std::vector<double> params = exp->parameter_values();
  out.insert(out.end(), params.begin(), params.end());
  return out;
}

TEST(SimShards, AutoResolvesToOneShardPerDomain) {
  std::string error;
  auto exp = Experiment::builder()
                 .seed(3)
                 .workload("random:0.5")
                 .add_cluster("seqwrite")
                 .sim_shards(0)  // auto
                 .build(&error);
  ASSERT_NE(exp, nullptr) << error;
  EXPECT_EQ(exp->simulator().num_shards(), 2u);
  EXPECT_EQ(exp->preset().capes.sim_shards, 2u);
  // Every domain owns its shard.
  EXPECT_EQ(exp->system().domain(0).sim_shard(), 0u);
  EXPECT_EQ(exp->system().domain(1).sim_shard(), 1u);
}

TEST(SimShards, RequestCapsAtTheDomainCount) {
  std::string error;
  auto exp = Experiment::builder()
                 .seed(3)
                 .workload("random:0.5")
                 .add_cluster("seqwrite")
                 .sim_shards(8)
                 .build(&error);
  ASSERT_NE(exp, nullptr) << error;
  EXPECT_EQ(exp->simulator().num_shards(), 2u);
}

TEST(SimShards, MisspelledConfShardValueFailsTheBuild) {
  // Conf numerics clamp, but a typo'd "auto" must not silently buy the
  // serial loop — the same strictness capes.transport gets.
  const std::string path = ::testing::TempDir() + "bad_shards.conf";
  {
    std::ofstream out(path);
    out << "capes.sim.shards = atuo\n";
  }
  std::string error;
  auto exp = Experiment::builder()
                 .workload("random:0.5")
                 .config_file(path)
                 .build(&error);
  EXPECT_EQ(exp, nullptr);
  EXPECT_NE(error.find("capes.sim.shards"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(SimShards, ShardedLoopBitIdenticalToSerial) {
  // The acceptance pin: same seed, same everything — the only change is
  // the event-loop partitioning.
  const std::vector<double> serial = run_fingerprint(1, 0, "");
  const std::vector<double> sharded = run_fingerprint(0, 0, "");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, sharded);
}

TEST(SimShards, ShardedLoopOnWorkerPoolBitIdenticalToSerial) {
  // Shards advanced concurrently on the pool: still bit-identical (each
  // shard is single-threaded; only distinct shards overlap in time).
  const std::vector<double> serial = run_fingerprint(1, 0, "");
  const std::vector<double> pooled = run_fingerprint(0, 3, "");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, pooled);
}

TEST(SimShards, ShardedLoopUnderSimTransportBitIdenticalToSerial) {
  // latency_ticks=1 makes every checked action land exactly on the next
  // barrier tick; jitter adds late PI arrivals. The sharded barrier must
  // apply them identically to the serial loop.
  const std::string spec = "sim:latency_ticks=1,jitter=2,drop=0.1";
  const std::vector<double> serial = run_fingerprint(1, 0, spec);
  const std::vector<double> sharded = run_fingerprint(0, 3, spec);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, sharded);
}

/// Skewed 8-domain experiment: domain 0 hot (pure random writes, ~3x
/// the executed events of the others' light fileserver load), packed
/// onto `sim_shards` queues. The configuration every rate-plan pin
/// runs on.
std::unique_ptr<Experiment> build_skewed(std::size_t sim_shards,
                                         std::size_t threads,
                                         const std::string& shard_plan) {
  auto builder = Experiment::builder()
                     .seed(7)
                     .workload("random:0.0")
                     .warmup_seconds(2)
                     .worker_threads(threads)
                     .sim_shards(sim_shards)
                     .shard_plan(shard_plan);
  for (int d = 1; d < 8; ++d) {
    builder.add_cluster("fileserver:instances=2,files=2");
  }
  std::string error;
  auto exp = builder.build(&error);
  EXPECT_NE(exp, nullptr) << error;
  return exp;
}

/// Train + tuned on the skewed experiment; same fingerprint contents as
/// run_fingerprint.
std::vector<double> skewed_fingerprint(std::size_t sim_shards,
                                       std::size_t threads,
                                       const std::string& shard_plan) {
  auto exp = build_skewed(sim_shards, threads, shard_plan);
  if (!exp) return {};
  const PhaseReport training = exp->run_training(40);
  const PhaseReport tuned = exp->run_tuned(15);
  std::vector<double> out;
  for (const PhaseReport* phase : {&training, &tuned}) {
    const auto& tput = phase->result.throughput.samples();
    const auto& lat = phase->result.latency_ms.samples();
    out.insert(out.end(), tput.begin(), tput.end());
    out.insert(out.end(), lat.begin(), lat.end());
    out.insert(out.end(), phase->result.rewards.begin(),
               phase->result.rewards.end());
  }
  const std::vector<double> params = exp->parameter_values();
  out.insert(out.end(), params.begin(), params.end());
  return out;
}

TEST(SimShards, RatePlanBitIdenticalToStatic) {
  // The new acceptance pin: placement derives only from deterministic
  // event counts, so re-packing domains between phases must not change
  // a single sample — on a skewed workload, at any shard count, with
  // or without the pool.
  const std::vector<double> serial = skewed_fingerprint(1, 0, "static");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, skewed_fingerprint(2, 0, "static"));
  EXPECT_EQ(serial, skewed_fingerprint(2, 0, "rate"));
  EXPECT_EQ(serial, skewed_fingerprint(2, 3, "rate"));
  EXPECT_EQ(serial, skewed_fingerprint(0, 3, "rate"));
}

TEST(SimShards, RatePlanBitIdenticalUnderSimTransport) {
  const std::string spec = "sim:latency_ticks=1,jitter=2,drop=0.1";
  const std::vector<double> serial = run_fingerprint(1, 0, spec, "static");
  const std::vector<double> rate = run_fingerprint(0, 3, spec, "rate");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, rate);
}

TEST(SimShards, RatePlanReducesBarrierWait) {
  // The plan must also pay for itself: with one hot domain among seven
  // light ones on two shards, static round-robin leaves the hot shard
  // with half the light domains too, while the rate plan isolates it —
  // so the deterministic events-based barrier-wait counter (how many
  // events the idle shards "waited" for across ticks) comes out
  // strictly lower. Counted over train+tuned; the first phase packs
  // from warmup counts, later phases from the previous phase.
  auto run = [](const std::string& plan) {
    auto exp = build_skewed(2, 0, plan);
    std::uint64_t wait = 0;
    if (!exp) return wait;
    wait += exp->run_training(40).result.barrier_wait_events;
    wait += exp->run_tuned(15).result.barrier_wait_events;
    return wait;
  };
  const std::uint64_t wait_static = run("static");
  const std::uint64_t wait_rate = run("rate");
  EXPECT_GT(wait_static, 0u);
  EXPECT_LT(wait_rate, wait_static);
}

TEST(SimShards, RatePlanReportsShardCountersAndReplans) {
  auto exp = build_skewed(2, 0, "rate");
  ASSERT_NE(exp, nullptr);
  EXPECT_EQ(exp->system().shard_plan_kind(), sim::ShardPlanKind::kRate);
  const PhaseReport training = exp->run_training(40);
  ASSERT_EQ(training.result.shard_events.size(), 2u);
  ASSERT_EQ(training.result.shard_barrier_wait_ns.size(), 2u);
  EXPECT_GT(training.result.shard_events[0] + training.result.shard_events[1],
            0u);
  EXPECT_GE(training.result.shard_imbalance(), 1.0);
  // The skew guarantees the warmup-informed first plan differs from
  // round-robin, so at least one replan actually moved domains.
  EXPECT_GE(exp->system().shard_replans(), 1u);
  // The live plan matches where the domains actually are.
  const auto& plan = exp->system().shard_plan();
  for (std::size_t d = 0; d < exp->num_domains(); ++d) {
    EXPECT_EQ(exp->system().domain(d).sim_shard(), plan.shard_of_domain[d]);
  }
}

TEST(SimShards, RatePlanSurvivesSwitchWorkload) {
  // switch_workload rebuilds a domain's generator mid-run; its events
  // must keep landing on the domain's *current* shard (live placement,
  // not the build-time layout) and the run must stay deterministic.
  auto run = [](const std::string& plan) {
    auto exp = build_skewed(2, 0, plan);
    std::vector<double> out;
    if (!exp) return out;
    exp->run_training(30);
    std::string error;
    EXPECT_TRUE(
        exp->switch_workload(0, "fileserver:instances=2,files=2", &error))
        << error;
    EXPECT_TRUE(exp->switch_workload(3, "random:0.0", &error)) << error;
    const PhaseReport tuned = exp->run_tuned(20);
    const auto& tput = tuned.result.throughput.samples();
    out.insert(out.end(), tput.begin(), tput.end());
    out.insert(out.end(), tuned.result.rewards.begin(),
               tuned.result.rewards.end());
    return out;
  };
  const std::vector<double> with_static = run("static");
  const std::vector<double> with_rate = run("rate");
  ASSERT_FALSE(with_static.empty());
  EXPECT_EQ(with_static, with_rate);
}

TEST(SimShards, MisspelledConfShardPlanFailsTheBuild) {
  // Same strictness as capes.sim.shards: a typo'd plan name must not
  // silently buy round-robin.
  const std::string path = ::testing::TempDir() + "bad_shard_plan.conf";
  {
    std::ofstream out(path);
    out << "capes.sim.shard_plan = rat\n";
  }
  std::string error;
  auto exp = Experiment::builder()
                 .workload("random:0.5")
                 .config_file(path)
                 .build(&error);
  EXPECT_EQ(exp, nullptr);
  EXPECT_NE(error.find("capes.sim.shard_plan"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(SimShards, DelayedActionLandsOnBarrierTick) {
  // Barrier-edge satellite: with a 1-tick action latency, a broadcast
  // routed at tick t is due exactly at the t+1 barrier. It must be
  // applied there (the target system sees it late but sees it), and the
  // channel must count it late.
  std::string error;
  auto exp = Experiment::builder()
                 .seed(11)
                 .workload("random:0.5")
                 .add_cluster("random:0.5")
                 .sim_shards(0)
                 .transport("sim:latency_ticks=1")
                 .warmup_seconds(1)
                 .build(&error);
  ASSERT_NE(exp, nullptr) << error;
  const PhaseReport training = exp->run_training(60);
  // Every non-null checked action was delivered one tick late.
  EXPECT_GT(training.result.messages_late, 0u);
  EXPECT_EQ(training.result.messages_dropped, 0u);
  // The delayed broadcasts actually reached the target systems: the
  // clusters' parameters moved off their initial values at some point
  // (epsilon ~1 early in training guarantees non-null actions), which
  // can only happen through drain_actions at a barrier.
  EXPECT_GT(exp->system().interface_daemon().actions_broadcast(), 0u);
}

TEST(SimShards, EmptyDomainDoesNotStallTheBarrier) {
  // Barrier-edge satellite: a domain with zero monitored nodes has an
  // empty event queue and contributes no PI messages; the barrier must
  // treat its shard as trivially done every tick — the run completes
  // and the populated domain still trains.
  sim::Simulator sim;
  sim.configure_shards(2);
  MockAdapter populated(2, 3);
  MockAdapter empty(0, 3);
  ControlDomainSpec first;
  first.adapter = &populated;
  ControlDomainSpec second;
  second.adapter = &empty;
  CapesOptions opts;
  opts.replay.ticks_per_observation = 3;
  opts.engine.dqn.hidden_size = 16;
  opts.engine.minibatch_size = 4;
  opts.worker_threads = 2;  // shards advance on the pool
  opts.sim_shards = 2;
  CapesSystem capes(sim, {first, second}, opts);
  EXPECT_EQ(capes.total_nodes(), 2u);
  EXPECT_EQ(capes.domain(1).monitoring_agents().size(), 0u);
  const RunResult result = capes.run_training(30);
  EXPECT_EQ(result.rewards.size(), 30u);
  EXPECT_EQ(sim.now(), sim::seconds(30.0));
  EXPECT_GT(populated.collect_calls.load(), 0);
}

}  // namespace
}  // namespace capes::core
