// Integration coverage for the asynchronous learner and the
// allocation-free tick path, on the full simulated Lustre stack:
//   * async training is bit-identical to sync (same weights, same
//     per-tick results), with and without a worker pool;
//   * async runs are deterministic run-to-run;
//   * learner checkpoints written mid-phase rebuild a tuner that
//     resumes training with the exact interrupted state;
//   * the steady-state tick path performs zero heap allocations in
//     the audited configuration.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/capes_system.hpp"
#include "core/presets.hpp"
#include "lustre/cluster.hpp"
#include "util/alloc_hook.hpp"
#include "workload/random_rw.hpp"

namespace capes {
namespace {

core::EvaluationPreset learner_preset() {
  auto p = core::fast_preset(11);
  p.capes.engine.epsilon.anneal_ticks = 60;
  return p;
}

/// One full training session; returns the per-tick throughput samples
/// plus the final policy fingerprint and train-step count.
struct SessionResult {
  std::vector<double> throughput;
  std::uint32_t fingerprint = 0;
  std::size_t train_steps = 0;
  std::int64_t training_ticks = 0;
};

SessionResult run_session(const core::EvaluationPreset& preset,
                          std::int64_t ticks) {
  sim::Simulator sim;
  lustre::Cluster cluster(sim, preset.cluster);
  workload::RandomRwOptions wopts;
  wopts.read_fraction = 0.1;
  workload::RandomRw wl(cluster, wopts);
  wl.start();
  core::CapesSystem capes(sim, cluster, preset.capes);
  sim.run_until(sim::seconds(3));
  const auto result = capes.run_training(ticks);
  SessionResult out;
  out.throughput.assign(result.throughput.samples().begin(),
                        result.throughput.samples().end());
  out.fingerprint = capes.engine().weights_fingerprint();
  out.train_steps = capes.engine().total_train_steps();
  out.training_ticks = capes.engine().training_ticks();
  return out;
}

TEST(LearnerIntegration, AsyncPhaseIsBitIdenticalToSync) {
  auto sync_preset = learner_preset();
  sync_preset.capes.engine.learner_mode = core::LearnerMode::kSync;
  auto async_preset = learner_preset();
  async_preset.capes.engine.learner_mode = core::LearnerMode::kAsync;

  const auto s = run_session(sync_preset, 120);
  const auto a = run_session(async_preset, 120);

  ASSERT_GT(s.train_steps, 0u);
  EXPECT_EQ(s.train_steps, a.train_steps);
  EXPECT_EQ(s.fingerprint, a.fingerprint);
  EXPECT_EQ(s.throughput, a.throughput);
}

TEST(LearnerIntegration, AsyncWithWorkerPoolStillMatchesSerialSync) {
  auto sync_preset = learner_preset();
  sync_preset.capes.engine.learner_mode = core::LearnerMode::kSync;
  sync_preset.capes.worker_threads = 0;
  auto async_preset = learner_preset();
  async_preset.capes.engine.learner_mode = core::LearnerMode::kAsync;
  async_preset.capes.worker_threads = 4;

  const auto s = run_session(sync_preset, 100);
  const auto a = run_session(async_preset, 100);

  ASSERT_GT(s.train_steps, 0u);
  EXPECT_EQ(s.train_steps, a.train_steps);
  EXPECT_EQ(s.fingerprint, a.fingerprint);
  EXPECT_EQ(s.throughput, a.throughput);
}

TEST(LearnerIntegration, AsyncRunsAreDeterministicRunToRun) {
  auto preset = learner_preset();
  preset.capes.engine.learner_mode = core::LearnerMode::kAsync;
  preset.capes.worker_threads = 2;

  const auto a = run_session(preset, 100);
  const auto b = run_session(preset, 100);

  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.train_steps, b.train_steps);
  EXPECT_EQ(a.throughput, b.throughput);
}

// Satellite: kill an async training session mid-phase and rebuild the
// tuner from its durable learner checkpoint. With checkpoint_ticks=1
// the last checkpoint captures the exact interrupted state, so the
// rebuilt engine must resume with the same weights, train-step count
// and epsilon clock — and keep training from there.
TEST(LearnerIntegration, CheckpointRebuildsTunerMidTraining) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "capes_learner_ckpt_test";
  std::filesystem::remove_all(dir);

  auto preset = learner_preset();
  preset.capes.engine.learner_mode = core::LearnerMode::kAsync;
  preset.capes.engine.checkpoint_ticks = 1;
  preset.capes.replay_db_dir = dir.string();

  SessionResult interrupted;
  {
    sim::Simulator sim;
    lustre::Cluster cluster(sim, preset.cluster);
    workload::RandomRwOptions wopts;
    wopts.read_fraction = 0.1;
    workload::RandomRw wl(cluster, wopts);
    wl.start();
    core::CapesSystem capes(sim, cluster, preset.capes);
    sim.run_until(sim::seconds(3));
    capes.run_training(90);
    ASSERT_GT(capes.engine().checkpoints_written(), 0u);
    interrupted.fingerprint = capes.engine().weights_fingerprint();
    interrupted.train_steps = capes.engine().total_train_steps();
    interrupted.training_ticks = capes.engine().training_ticks();
    // The system is destroyed here without any explicit save — the
    // durable checkpoint is all a restarted tuner gets.
  }
  ASSERT_GT(interrupted.train_steps, 0u);

  {
    sim::Simulator sim;
    lustre::Cluster cluster(sim, preset.cluster);
    workload::RandomRwOptions wopts;
    wopts.read_fraction = 0.1;
    workload::RandomRw wl(cluster, wopts);
    wl.start();
    core::CapesSystem capes(sim, cluster, preset.capes);
    // Restored in the constructor, before any new training.
    EXPECT_EQ(capes.engine().weights_fingerprint(), interrupted.fingerprint);
    EXPECT_EQ(capes.engine().total_train_steps(), interrupted.train_steps);
    EXPECT_EQ(capes.engine().training_ticks(), interrupted.training_ticks);

    // And the resumed tuner trains onward.
    sim.run_until(sim::seconds(3));
    capes.run_training(40);
    EXPECT_GT(capes.engine().total_train_steps(), interrupted.train_steps);
  }

  std::filesystem::remove_all(dir);
}

// The audited configuration: sync learner, no worker pool, memory-only
// DB, bounded replay retention. After warm-up the per-tick control path
// must not touch the heap at all.
TEST(LearnerIntegration, SteadyStateTickPathIsAllocationFree) {
  if (!util::allocation_hook_active()) {
    GTEST_SKIP() << "counting allocator hook not linked in";
  }
  auto preset = learner_preset();
  preset.capes.engine.learner_mode = core::LearnerMode::kSync;
  preset.capes.worker_threads = 0;
  preset.capes.replay.max_ticks_retained = 64;

  sim::Simulator sim;
  lustre::Cluster cluster(sim, preset.cluster);
  workload::RandomRwOptions wopts;
  wopts.read_fraction = 0.1;
  workload::RandomRw wl(cluster, wopts);
  wl.start();
  core::CapesSystem capes(sim, cluster, preset.capes);
  sim.run_until(sim::seconds(3));

  // Warm up: fill the replay window, trigger retention trimming, grow
  // every scratch buffer and payload pool to its steady-state size.
  capes.run_training(120);
  const std::uint64_t warm = capes.hot_path_allocations();

  capes.run_training(80);
  const std::uint64_t after = capes.hot_path_allocations();
  EXPECT_EQ(after - warm, 0u)
      << "tick path allocated " << (after - warm)
      << " times across 80 steady-state ticks";
}

}  // namespace
}  // namespace capes
