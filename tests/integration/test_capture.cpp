// Flight-recorder integration: a seeded live run captured at the daemon
// boundary, replayed into a fresh daemon + engine, must reproduce the
// live training fingerprint bit-for-bit (the round-trip guarantee).
// Also pinned here: torn-tail tolerance, config-overlay (diff) replays
// on identical traffic, and the capture hot path staying allocation-free
// once warm.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "capture/wire_log_reader.hpp"
#include "core/capes_system.hpp"
#include "core/presets.hpp"
#include "core/trace_replay.hpp"
#include "lustre/cluster.hpp"
#include "util/alloc_hook.hpp"
#include "workload/random_rw.hpp"

namespace capes {
namespace {

class CaptureIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("capes_capint_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "trace.cap").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string path_;
};

core::EvaluationPreset capture_preset() {
  auto p = core::fast_preset(7);
  p.capes.engine.epsilon.anneal_ticks = 60;
  return p;
}

struct LiveRun {
  std::uint32_t fingerprint = 0;
  std::size_t train_steps = 0;
  std::uint64_t records = 0;
};

/// Seeded train + tuned session with the flight recorder on.
LiveRun run_captured(const std::string& path, int train_ticks = 100,
                     int tuned_ticks = 40) {
  auto preset = capture_preset();
  preset.capes.capture_path = path;
  sim::Simulator sim;
  lustre::Cluster cluster(sim, preset.cluster);
  workload::RandomRwOptions wopts;
  wopts.read_fraction = 0.1;
  workload::RandomRw wl(cluster, wopts);
  wl.start();
  core::CapesSystem capes(sim, cluster, preset.capes);
  sim.run_until(sim::seconds(3));
  capes.run_training(train_ticks);
  if (tuned_ticks > 0) capes.run_tuned(tuned_ticks);
  LiveRun live;
  live.fingerprint = capes.engine().weights_fingerprint();
  live.train_steps = capes.engine().total_train_steps();
  auto* writer = capes.capture_writer();
  EXPECT_NE(writer, nullptr);
  EXPECT_TRUE(writer->close());
  EXPECT_EQ(writer->records_dropped(), 0u);
  live.records = writer->records_logged();
  return live;
}

TEST_F(CaptureIntegration, RoundTripFingerprintIsBitIdentical) {
  const LiveRun live = run_captured(path_);
  ASSERT_GT(live.train_steps, 0u);
  ASSERT_GT(live.records, 0u);

  core::TraceReplayer replayer;
  core::TraceReplayOptions opts;
  opts.speed = core::ReplaySpeed::kMax;
  std::string error;
  ASSERT_TRUE(replayer.open(path_, opts, &error)) << error;
  EXPECT_TRUE(replayer.fresh_weights_match());
  const auto report = replayer.run();

  EXPECT_EQ(report.read_stats.valid_records, live.records);
  EXPECT_FALSE(report.tail_truncated);
  EXPECT_EQ(report.decode_errors, 0u);
  // Every traced suggestion is re-derived identically: same seeds, same
  // replay DB contents, same RNG consumption order.
  EXPECT_EQ(report.action_mismatches, 0u);
  EXPECT_EQ(report.total_train_steps, live.train_steps);
  EXPECT_EQ(report.weights_fingerprint, live.fingerprint);
  // Both phases show up in the report with sane tick accounting.
  ASSERT_EQ(report.phases.size(), 2u);
  EXPECT_EQ(report.phases[0].phase, core::RunPhase::kTraining);
  EXPECT_EQ(report.phases[0].ticks, 100);
  EXPECT_GT(report.phases[0].train_steps, 0u);
  EXPECT_EQ(report.phases[1].phase, core::RunPhase::kTuned);
  EXPECT_EQ(report.phases[1].ticks, 40);
}

TEST_F(CaptureIntegration, ReplayIsRepeatable) {
  run_captured(path_, 60, 0);
  auto replay_fp = [&] {
    core::TraceReplayer replayer;
    std::string error;
    EXPECT_TRUE(replayer.open(path_, {}, &error)) << error;
    return replayer.run().weights_fingerprint;
  };
  EXPECT_EQ(replay_fp(), replay_fp());
}

TEST_F(CaptureIntegration, TornTailReplaysValidPrefix) {
  const LiveRun live = run_captured(path_, 60, 0);
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 7);

  core::TraceReplayer replayer;
  std::string error;
  ASSERT_TRUE(replayer.open(path_, {}, &error)) << error;
  const auto report = replayer.run();
  EXPECT_TRUE(report.tail_truncated);
  EXPECT_GE(report.read_stats.truncated_records, 1u);
  EXPECT_EQ(report.read_stats.valid_records, live.records - 1);
  EXPECT_GT(report.total_train_steps, 0u);
}

TEST_F(CaptureIntegration, ConfigOverlayDivergesOnIdenticalTraffic) {
  run_captured(path_, 80, 0);

  core::TraceReplayer base;
  std::string error;
  ASSERT_TRUE(base.open(path_, {}, &error)) << error;
  const auto base_report = base.run();

  // Same capture, harsher learning rate: the policy diverges, the
  // traffic (status/reward records, ticks) cannot.
  auto overlay = capture_preset().capes;
  overlay.engine.dqn.learning_rate = 0.05f;
  core::TraceReplayOptions opts;
  opts.config_overlay = &overlay;
  core::TraceReplayer diff;
  ASSERT_TRUE(diff.open(path_, opts, &error)) << error;
  const auto diff_report = diff.run();

  EXPECT_EQ(diff_report.status_records, base_report.status_records);
  EXPECT_EQ(diff_report.reward_records, base_report.reward_records);
  EXPECT_EQ(diff_report.action_records, base_report.action_records);
  ASSERT_EQ(diff_report.phases.size(), base_report.phases.size());
  for (std::size_t i = 0; i < diff_report.phases.size(); ++i) {
    EXPECT_EQ(diff_report.phases[i].ticks, base_report.phases[i].ticks);
  }
  EXPECT_NE(diff_report.weights_fingerprint, base_report.weights_fingerprint);
}

TEST_F(CaptureIntegration, CaptureFileRecordsAllHops) {
  run_captured(path_, 50, 0);
  capture::WireLogReader reader;
  std::string error;
  ASSERT_TRUE(reader.open(path_, &error)) << error;
  std::uint64_t status = 0, reward = 0, action = 0, broadcast = 0;
  std::uint64_t phase_begin = 0, phase_end = 0;
  capture::WireRecord rec;
  while (reader.next(&rec)) {
    switch (rec.type) {
      case capture::RecordType::kStatus: ++status; break;
      case capture::RecordType::kReward: ++reward; break;
      case capture::RecordType::kAction: ++action; break;
      case capture::RecordType::kBroadcast: ++broadcast; break;
      case capture::RecordType::kPhaseBegin: ++phase_begin; break;
      case capture::RecordType::kPhaseEnd: ++phase_end; break;
      default: break;
    }
  }
  EXPECT_FALSE(reader.tail_truncated());
  // All three bus hops appear: PI status, checked-action broadcasts and
  // per-tick actions, plus the reward stream and phase markers.
  EXPECT_GT(status, 0u);
  EXPECT_EQ(reward, 50u);
  EXPECT_EQ(action, 50u);
  EXPECT_GT(broadcast, 0u);
  EXPECT_EQ(phase_begin, 1u);
  EXPECT_EQ(phase_end, 1u);
}

// With the recorder on, the warm capture path must stay allocation-free:
// records are copied into recycled slot capacity, never fresh heap.
TEST_F(CaptureIntegration, WarmCapturePathIsAllocationFree) {
  if (!util::allocation_hook_active()) {
    GTEST_SKIP() << "counting allocator hook not linked in";
  }
  auto preset = capture_preset();
  preset.capes.capture_path = path_;
  preset.capes.capture_ring = 16;  // tiny pool so every slot warms up
  preset.capes.engine.learner_mode = core::LearnerMode::kSync;
  preset.capes.worker_threads = 0;
  preset.capes.replay.max_ticks_retained = 64;

  sim::Simulator sim;
  lustre::Cluster cluster(sim, preset.cluster);
  workload::RandomRwOptions wopts;
  wopts.read_fraction = 0.1;
  workload::RandomRw wl(cluster, wopts);
  wl.start();
  core::CapesSystem capes(sim, cluster, preset.capes);
  sim.run_until(sim::seconds(3));

  capes.run_training(120);
  const std::uint64_t warm = capes.hot_path_allocations();
  capes.run_training(80);
  const std::uint64_t after = capes.hot_path_allocations();
  EXPECT_EQ(after - warm, 0u)
      << "capture-on tick path allocated " << (after - warm)
      << " times across 80 steady-state ticks";
}

}  // namespace
}  // namespace capes
