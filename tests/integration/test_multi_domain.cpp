// Multi-cluster control domains: one CapesSystem (one DRL brain, one
// Replay DB) driving N MockAdapter domains on a shared simulator.
// Covers the namespace layout end to end, the aggregation semantics,
// single-domain equivalence with the legacy constructor, and the
// worker-pool hot path producing bit-identical results to the
// single-threaded one.

#include <gtest/gtest.h>

#include <vector>

#include "../core/mock_adapter.hpp"
#include "core/capes_system.hpp"

namespace capes::core {
namespace {

using testing::MockAdapter;

CapesOptions small_options() {
  CapesOptions o;
  o.replay.ticks_per_observation = 3;
  o.engine.dqn.hidden_size = 16;
  o.engine.minibatch_size = 4;
  o.engine.epsilon.anneal_ticks = 50;
  o.engine.dqn.learning_rate = 1e-3f;
  o.reward_scale_mbs = 100.0;
  return o;
}

std::vector<ControlDomainSpec> two_domains(MockAdapter& a, MockAdapter& b) {
  ControlDomainSpec first;
  first.adapter = &a;
  ControlDomainSpec second;
  second.adapter = &b;
  return {first, second};
}

TEST(MultiDomain, LaysOutSharedNamespaces) {
  sim::Simulator sim;
  MockAdapter a(2, 3), b(3, 3);
  std::vector<ControlDomainSpec> specs = two_domains(a, b);
  CapesSystem capes(sim, specs, small_options());

  EXPECT_EQ(capes.num_domains(), 2u);
  EXPECT_EQ(capes.total_nodes(), 5u);
  EXPECT_EQ(capes.domain(0).node_offset(), 0u);
  EXPECT_EQ(capes.domain(1).node_offset(), 2u);
  // Composite action space: shared NULL + 2 actions per domain parameter.
  EXPECT_EQ(capes.action_space().num_actions(), 5u);
  EXPECT_EQ(capes.domain(0).action_offset(), 1u);
  EXPECT_EQ(capes.domain(1).action_offset(), 3u);
  // Domain-namespaced parameter names, concatenated parameter values.
  ASSERT_EQ(capes.action_space().num_parameters(), 2u);
  EXPECT_EQ(capes.action_space().parameter(0).name, "c0.knob");
  EXPECT_EQ(capes.action_space().parameter(1).name, "c1.knob");
  EXPECT_EQ(capes.parameter_values(), (std::vector<double>{50.0, 50.0}));
  // One monitoring + control agent per node, per domain.
  EXPECT_EQ(capes.domain(0).monitoring_agents().size(), 2u);
  EXPECT_EQ(capes.domain(1).monitoring_agents().size(), 3u);
  EXPECT_EQ(capes.interface_daemon().num_shards(), 2u);
}

TEST(MultiDomain, ObservationSizeScalesWithDomainCount) {
  // Acceptance shape: observation size =
  // num_domains * num_nodes * pis_per_node * ticks_per_observation.
  sim::Simulator sim;
  MockAdapter a(2, 3), b(2, 3);
  std::vector<ControlDomainSpec> specs = two_domains(a, b);
  CapesSystem capes(sim, specs, small_options());
  EXPECT_EQ(capes.replay().observation_size(), 2u * 2u * 3u * 3u);
  EXPECT_EQ(capes.engine().dqn().options().observation_size, 36u);
  EXPECT_EQ(capes.engine().dqn().options().num_actions, 5u);
}

TEST(MultiDomain, StatusMessagesLandUnderGlobalNodeIds) {
  sim::Simulator sim;
  MockAdapter a(2, 3), b(3, 3);
  std::vector<ControlDomainSpec> specs = two_domains(a, b);
  CapesSystem capes(sim, specs, small_options());
  capes.run_baseline(5);
  for (std::size_t node = 0; node < 5; ++node) {
    EXPECT_TRUE(capes.replay().status_at(3, node).has_value()) << node;
  }
  EXPECT_EQ(capes.interface_daemon().decode_errors(), 0u);
  // Domain 1's node 0 writes under global id 2, with its local node id in
  // the PI payload (MockAdapter PI 1 encodes node/10).
  auto pis = capes.replay().status_at(3, 2);
  ASSERT_TRUE(pis.has_value());
  EXPECT_NEAR((*pis)[1], 0.0f, 1e-4f);
}

TEST(MultiDomain, AggregatesPerformanceAcrossDomains) {
  sim::Simulator sim;
  MockAdapter a(2, 3), b(2, 3);
  std::vector<ControlDomainSpec> specs = two_domains(a, b);
  // Domain 1 gets its own objective; domain 0 uses the system default.
  specs[1].objective = [](const PerfSample& s) { return -s.avg_latency_ms; };
  CapesSystem capes(sim, specs, small_options());
  const RunResult result = capes.run_baseline(10);

  // Mock throughput at knob 50 is 70 MB/s each; latency 2.5 ms each.
  EXPECT_NEAR(result.analyze().mean, 140.0, 1e-9);
  EXPECT_NEAR(result.analyze_latency().mean, 2.5, 1e-9);
  // Reward is the cross-domain mean: (70/100 + -2.5) / 2.
  EXPECT_NEAR(result.rewards.front(), (0.7 - 2.5) / 2.0, 1e-12);
  // Per-domain detail stays observable.
  EXPECT_NEAR(capes.domain(0).last_perf().throughput_mbs(), 70.0, 1e-9);
  EXPECT_NEAR(capes.domain(0).last_reward(), 0.7, 1e-12);
  EXPECT_NEAR(capes.domain(1).last_reward(), -2.5, 1e-12);
}

TEST(MultiDomain, TrainingSteersBothDomains) {
  sim::Simulator sim;
  MockAdapter a(2, 3), b(2, 3);
  std::vector<ControlDomainSpec> specs = two_domains(a, b);
  CapesSystem capes(sim, specs, small_options());
  capes.run_training(150);  // epsilon ~1 early: random walk over both slices
  EXPECT_GT(a.set_calls, 0);
  EXPECT_GT(b.set_calls, 0);
  EXPECT_GT(capes.engine().total_train_steps(), 0u);
}

TEST(MultiDomain, ResetRestoresEveryDomain) {
  sim::Simulator sim;
  MockAdapter a(2, 3), b(2, 3);
  std::vector<ControlDomainSpec> specs = two_domains(a, b);
  CapesSystem capes(sim, specs, small_options());
  a.set_parameters({95.0});
  b.set_parameters({5.0});
  capes.domain(0).param_values()[0] = 95.0;
  capes.domain(1).param_values()[0] = 5.0;
  capes.reset_parameters();
  EXPECT_DOUBLE_EQ(a.current_parameters()[0], 50.0);
  EXPECT_DOUBLE_EQ(b.current_parameters()[0], 50.0);
  EXPECT_EQ(capes.parameter_values(), (std::vector<double>{50.0, 50.0}));
}

TEST(MultiDomain, MonitoringBytesSumAcrossDomains) {
  sim::Simulator sim;
  MockAdapter a(2, 3), b(3, 3);
  std::vector<ControlDomainSpec> specs = two_domains(a, b);
  CapesSystem capes(sim, specs, small_options());
  capes.run_baseline(10);
  EXPECT_EQ(capes.monitoring_bytes_sent(),
            capes.domain(0).monitoring_bytes_sent() +
                capes.domain(1).monitoring_bytes_sent());
  EXPECT_GT(capes.domain(1).monitoring_bytes_sent(), 0u);
}

TEST(MultiDomain, SingleDomainSpecMatchesLegacyConstructor) {
  // One domain through the spec vector must behave exactly like the
  // single-adapter constructor: same rewards, same parameters, same
  // replay contents at the same seed.
  auto run = [](bool via_specs) {
    sim::Simulator sim;
    MockAdapter adapter(2, 3);
    std::unique_ptr<CapesSystem> capes;
    if (via_specs) {
      ControlDomainSpec spec;
      spec.adapter = &adapter;
      capes = std::make_unique<CapesSystem>(
          sim, std::vector<ControlDomainSpec>{spec}, small_options());
    } else {
      capes = std::make_unique<CapesSystem>(sim, adapter, small_options());
    }
    capes->run_training(60);
    RunResult tuned = capes->run_tuned(20);
    tuned.rewards.push_back(capes->parameter_values()[0]);
    return tuned.rewards;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(MultiDomain, WorkerPoolPathIsBitIdentical) {
  // The threaded hot path (parallel collect/encode, pooled minibatch
  // assembly and GEMM panels) is engineered to keep the RNG streams and
  // the arithmetic identical; the whole run must match bit for bit.
  auto run = [](std::size_t threads) {
    sim::Simulator sim;
    MockAdapter a(2, 3), b(2, 3);
    std::vector<ControlDomainSpec> specs = two_domains(a, b);
    CapesOptions opts = small_options();
    opts.worker_threads = threads;
    CapesSystem capes(sim, specs, opts);
    capes.run_training(80);
    RunResult tuned = capes.run_tuned(20);
    std::vector<double> out = tuned.rewards;
    const std::vector<double>& params = capes.parameter_values();
    out.insert(out.end(), params.begin(), params.end());
    return out;
  };
  const std::vector<double> single = run(0);
  const std::vector<double> pooled = run(3);
  EXPECT_EQ(single, pooled);
}

}  // namespace
}  // namespace capes::core
