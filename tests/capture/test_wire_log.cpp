#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "capture/trace_meta.hpp"
#include "capture/wire_log_reader.hpp"
#include "capture/wire_log_writer.hpp"

namespace capes::capture {
namespace {

class WireLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("capes_capture_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "trace.cap").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string path_;
};

std::vector<std::uint8_t> tiny_meta() { return {0xde, 0xad, 0xbe, 0xef}; }

/// Write `n` records with recognizable fields and close the file.
void write_capture(const std::string& path, int n,
                   const std::vector<std::uint8_t>& meta = tiny_meta()) {
  WireLogWriterOptions opts;
  opts.path = path;
  WireLogWriter writer(opts, meta);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < n; ++i) {
    const std::vector<std::uint8_t> payload(static_cast<std::size_t>(i % 7),
                                            static_cast<std::uint8_t>(i));
    writer.record(static_cast<RecordType>(1 + (i % 4)), i, 100u + i, 200u + i,
                  payload.data(), payload.size());
  }
  ASSERT_TRUE(writer.close());
  EXPECT_EQ(writer.records_logged(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(writer.records_dropped(), 0u);
}

TEST_F(WireLogTest, RoundTripPreservesEveryField) {
  write_capture(path_, 25);
  WireLogReader reader;
  std::string error;
  ASSERT_TRUE(reader.open(path_, &error)) << error;
  EXPECT_EQ(reader.meta(), tiny_meta());
  WireRecord rec;
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(reader.next(&rec)) << "record " << i;
    EXPECT_EQ(rec.type, static_cast<RecordType>(1 + (i % 4)));
    EXPECT_EQ(rec.tick, i);
    EXPECT_EQ(rec.topic, 100u + static_cast<std::uint64_t>(i));
    EXPECT_EQ(rec.sender, 200u + static_cast<std::uint64_t>(i));
    EXPECT_EQ(rec.payload,
              std::vector<std::uint8_t>(static_cast<std::size_t>(i % 7),
                                        static_cast<std::uint8_t>(i)));
  }
  EXPECT_FALSE(reader.next(&rec));
  EXPECT_FALSE(reader.tail_truncated());
  EXPECT_EQ(reader.stats().valid_records, 25u);
  EXPECT_EQ(reader.stats().truncated_records, 0u);
  EXPECT_EQ(reader.stats().dropped_records, 0u);
}

TEST_F(WireLogTest, F64PayloadRoundTrips) {
  {
    WireLogWriterOptions opts;
    opts.path = path_;
    WireLogWriter writer(opts, tiny_meta());
    ASSERT_TRUE(writer.ok());
    const double values[3] = {1.25, -7.5e300, 0.0};
    writer.record_f64s(RecordType::kReward, 42, 1, 2, values, 3);
    ASSERT_TRUE(writer.close());
  }
  WireLogReader reader;
  std::string error;
  ASSERT_TRUE(reader.open(path_, &error)) << error;
  WireRecord rec;
  ASSERT_TRUE(reader.next(&rec));
  ASSERT_EQ(rec.payload.size(), 24u);
  double got[3];
  for (int i = 0; i < 3; ++i) {
    std::uint64_t bits = 0;
    for (int b = 7; b >= 0; --b) {
      bits = (bits << 8) | rec.payload[static_cast<std::size_t>(i * 8 + b)];
    }
    std::memcpy(&got[i], &bits, 8);
  }
  EXPECT_EQ(got[0], 1.25);
  EXPECT_EQ(got[1], -7.5e300);
  EXPECT_EQ(got[2], 0.0);
}

TEST_F(WireLogTest, EmptyCaptureIsCleanEof) {
  write_capture(path_, 0);
  WireLogReader reader;
  std::string error;
  ASSERT_TRUE(reader.open(path_, &error)) << error;
  WireRecord rec;
  EXPECT_FALSE(reader.next(&rec));
  EXPECT_FALSE(reader.tail_truncated());
  EXPECT_EQ(reader.stats().valid_records, 0u);
}

TEST_F(WireLogTest, TornTailTruncatesAtLastValidRecord) {
  write_capture(path_, 10);
  // Tear a few bytes off the end — a crash mid-append.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 5);
  WireLogReader reader;
  std::string error;
  ASSERT_TRUE(reader.open(path_, &error)) << error;
  WireRecord rec;
  std::uint64_t valid = 0;
  while (reader.next(&rec)) ++valid;
  EXPECT_EQ(valid, 9u);
  EXPECT_TRUE(reader.tail_truncated());
  EXPECT_EQ(reader.stats().valid_records, 9u);
  EXPECT_EQ(reader.stats().truncated_records, 1u);
  EXPECT_GT(reader.stats().truncated_bytes, 0u);
}

TEST_F(WireLogTest, MidFileCorruptionDropsEverythingAfter) {
  write_capture(path_, 10);
  // Flip a byte inside the 4th record's frame. Records have payload
  // lengths i % 7, so offsets are computable: header 20 + 4 meta bytes,
  // record i is 33 + (i % 7) bytes.
  std::size_t offset = 20 + 4;
  for (int i = 0; i < 3; ++i) offset += 33 + static_cast<std::size_t>(i % 7);
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(offset) + 10);
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(offset) + 10);
    f.put(static_cast<char>(c ^ 0x5a));
  }
  WireLogReader reader;
  std::string error;
  ASSERT_TRUE(reader.open(path_, &error)) << error;
  WireRecord rec;
  std::uint64_t valid = 0;
  while (reader.next(&rec)) ++valid;
  EXPECT_EQ(valid, 3u);
  EXPECT_TRUE(reader.tail_truncated());
  // The length-prefix walk sees the 7 whole records behind the bad CRC.
  EXPECT_EQ(reader.stats().truncated_records, 7u);
}

TEST_F(WireLogTest, ReaderSurfacesHeaderDropCount) {
  write_capture(path_, 3);
  // Patch the header's dropped_records field the way a lossy writer
  // would (offset 8, little-endian u64).
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(kDroppedRecordsOffset);
    f.put(5);
  }
  WireLogReader reader;
  std::string error;
  ASSERT_TRUE(reader.open(path_, &error)) << error;
  EXPECT_EQ(reader.stats().dropped_records, 5u);
}

TEST_F(WireLogTest, RejectsBadMagicAndShortHeader) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "not a capture file";
  }
  WireLogReader reader;
  std::string error;
  EXPECT_FALSE(reader.open(path_, &error));
  EXPECT_FALSE(error.empty());

  {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    f << "CA";  // shorter than any header
  }
  error.clear();
  EXPECT_FALSE(reader.open(path_, &error));
  EXPECT_FALSE(error.empty());

  error.clear();
  EXPECT_FALSE(reader.open((dir_ / "missing.cap").string(), &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(WireLogTest, WriterToUnwritablePathCountsDrops) {
  WireLogWriterOptions opts;
  opts.path = (dir_ / "no_such_subdir" / "trace.cap").string();
  WireLogWriter writer(opts, tiny_meta());
  EXPECT_FALSE(writer.ok());
  const std::uint8_t b = 1;
  writer.record(RecordType::kStatus, 0, 0, 0, &b, 1);
  writer.record(RecordType::kStatus, 1, 0, 0, &b, 1);
  EXPECT_EQ(writer.records_logged(), 0u);
  EXPECT_EQ(writer.records_dropped(), 2u);
  EXPECT_FALSE(writer.close());
}

TEST_F(WireLogTest, CloseIsIdempotent) {
  WireLogWriterOptions opts;
  opts.path = path_;
  WireLogWriter writer(opts, tiny_meta());
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE(writer.close());
  EXPECT_TRUE(writer.close());
}

TEST(TraceMeta, EncodeDecodeRoundTripsEveryField) {
  TraceMeta m;
  m.num_domains = 3;
  m.num_nodes = 12;
  m.pis_per_node = 4;
  m.num_actions = 9;
  m.sampling_tick_s = 0.5;
  m.engine_seed = 0x1122334455667788ull;
  m.dqn_seed = 0x99aabbccddeeff00ull;
  m.use_double_dqn = true;
  m.use_target_network = false;
  m.loss_kind = 2;
  m.activation = 1;
  m.num_hidden_layers = 5;
  m.hidden_size = 640;
  m.gamma = 0.875f;
  m.learning_rate = 3e-3f;
  m.target_update_alpha = 0.125f;
  m.minibatch_size = 64;
  m.train_steps_per_tick = 7;
  m.eval_epsilon = 0.01;
  m.epsilon_initial = 0.9;
  m.epsilon_final = 0.1;
  m.epsilon_anneal_ticks = 12345;
  m.epsilon_bump_value = 0.33;
  m.epsilon_bump_ticks = 777;
  m.ticks_per_observation = 13;
  m.missing_tolerance = 0.45;
  m.max_ticks_retained = 100000;
  m.initial_weights_fingerprint = 0xcafef00du;

  const auto blob = m.encode();
  const auto decoded = TraceMeta::decode(blob);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->num_domains, m.num_domains);
  EXPECT_EQ(decoded->num_nodes, m.num_nodes);
  EXPECT_EQ(decoded->pis_per_node, m.pis_per_node);
  EXPECT_EQ(decoded->num_actions, m.num_actions);
  EXPECT_EQ(decoded->sampling_tick_s, m.sampling_tick_s);
  EXPECT_EQ(decoded->engine_seed, m.engine_seed);
  EXPECT_EQ(decoded->dqn_seed, m.dqn_seed);
  EXPECT_EQ(decoded->use_double_dqn, m.use_double_dqn);
  EXPECT_EQ(decoded->use_target_network, m.use_target_network);
  EXPECT_EQ(decoded->loss_kind, m.loss_kind);
  EXPECT_EQ(decoded->activation, m.activation);
  EXPECT_EQ(decoded->num_hidden_layers, m.num_hidden_layers);
  EXPECT_EQ(decoded->hidden_size, m.hidden_size);
  EXPECT_EQ(decoded->gamma, m.gamma);
  EXPECT_EQ(decoded->learning_rate, m.learning_rate);
  EXPECT_EQ(decoded->target_update_alpha, m.target_update_alpha);
  EXPECT_EQ(decoded->minibatch_size, m.minibatch_size);
  EXPECT_EQ(decoded->train_steps_per_tick, m.train_steps_per_tick);
  EXPECT_EQ(decoded->eval_epsilon, m.eval_epsilon);
  EXPECT_EQ(decoded->epsilon_initial, m.epsilon_initial);
  EXPECT_EQ(decoded->epsilon_final, m.epsilon_final);
  EXPECT_EQ(decoded->epsilon_anneal_ticks, m.epsilon_anneal_ticks);
  EXPECT_EQ(decoded->epsilon_bump_value, m.epsilon_bump_value);
  EXPECT_EQ(decoded->epsilon_bump_ticks, m.epsilon_bump_ticks);
  EXPECT_EQ(decoded->ticks_per_observation, m.ticks_per_observation);
  EXPECT_EQ(decoded->missing_tolerance, m.missing_tolerance);
  EXPECT_EQ(decoded->max_ticks_retained, m.max_ticks_retained);
  EXPECT_EQ(decoded->initial_weights_fingerprint,
            m.initial_weights_fingerprint);
}

TEST(TraceMeta, DecodeRejectsBadMagicAndTruncation) {
  TraceMeta m;
  auto blob = m.encode();
  auto bad = blob;
  bad[0] ^= 0xff;
  EXPECT_FALSE(TraceMeta::decode(bad).has_value());
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, blob.size() - 1}) {
    std::vector<std::uint8_t> truncated(blob.begin(),
                                        blob.begin() + static_cast<long>(cut));
    EXPECT_FALSE(TraceMeta::decode(truncated).has_value()) << cut;
  }
}

}  // namespace
}  // namespace capes::capture
