// Tests for the §6 future-work extensions: server-side monitoring and the
// tunable write-cache limit.

#include <gtest/gtest.h>

#include <cmath>

#include "lustre/cluster.hpp"

namespace capes::lustre {
namespace {

ClusterOptions base_opts() {
  ClusterOptions o;
  o.disk.service_noise = 0.0;
  return o;
}

TEST(ServerMonitoring, AddsServerNodes) {
  ClusterOptions o = base_opts();
  o.monitor_servers = true;
  sim::Simulator sim;
  Cluster cluster(sim, o);
  EXPECT_EQ(cluster.num_nodes(), 9u);  // 5 clients + 4 servers
  EXPECT_EQ(cluster.num_clients(), 5u);
}

TEST(ServerMonitoring, OffByDefault) {
  sim::Simulator sim;
  Cluster cluster(sim, base_opts());
  EXPECT_EQ(cluster.num_nodes(), 5u);
}

TEST(ServerMonitoring, ServerObservationShape) {
  ClusterOptions o = base_opts();
  o.monitor_servers = true;
  sim::Simulator sim;
  Cluster cluster(sim, o);
  cluster.client(0).write(1, 0, 8 << 20, nullptr);
  sim.run_until(sim::seconds(1));
  for (std::size_t node = 5; node < 9; ++node) {
    const auto pis = cluster.collect_observation(node);
    ASSERT_EQ(pis.size(), Cluster::kPisPerNode) << node;
    for (float v : pis) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, -0.01f);
      EXPECT_LE(v, 5.0f);
    }
  }
}

TEST(ServerMonitoring, ServerPisReflectDiskActivity) {
  ClusterOptions o = base_opts();
  o.monitor_servers = true;
  sim::Simulator sim;
  Cluster cluster(sim, o);
  (void)cluster.collect_observation(5);  // reset window for server 0
  // Stripe 0 lands on server 0: its write-rate PI should move.
  cluster.client(0).write(1, 0, 1 << 20, nullptr);
  sim.run_until(sim::seconds(1));
  const auto pis = cluster.collect_observation(5);
  EXPECT_GT(pis[5], 0.001f);  // disk write MB/s
  EXPECT_GT(pis[3], 0.0f);    // busy fraction
}

TEST(ServerMonitoring, IdleServerReportsZeroRates) {
  ClusterOptions o = base_opts();
  o.monitor_servers = true;
  sim::Simulator sim;
  Cluster cluster(sim, o);
  (void)cluster.collect_observation(8);
  sim.run_until(sim::seconds(1));
  const auto pis = cluster.collect_observation(8);
  EXPECT_FLOAT_EQ(pis[4], 0.0f);
  EXPECT_FLOAT_EQ(pis[5], 0.0f);
}

TEST(WriteCacheTuning, ThirdParameterAppears) {
  ClusterOptions o = base_opts();
  o.tune_write_cache = true;
  sim::Simulator sim;
  Cluster cluster(sim, o);
  const auto params = cluster.tunable_parameters();
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params[2].name, "max_dirty_mb");
  EXPECT_DOUBLE_EQ(params[2].initial_value, 32.0);  // 32 MB default
  // 2 * 3 + 1 = 7 actions for the DQN.
  rl::ActionSpace space(params);
  EXPECT_EQ(space.num_actions(), 7u);
}

TEST(WriteCacheTuning, SetParametersAppliesCache) {
  ClusterOptions o = base_opts();
  o.tune_write_cache = true;
  sim::Simulator sim;
  Cluster cluster(sim, o);
  cluster.set_parameters({16.0, 2000.0, 64.0});
  const auto current = cluster.current_parameters();
  ASSERT_EQ(current.size(), 3u);
  EXPECT_DOUBLE_EQ(current[2], 64.0);
  for (std::size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).max_dirty_bytes(), 64ull << 20);
  }
}

TEST(WriteCacheTuning, GrowingCacheUnblocksWriters) {
  ClusterOptions o = base_opts();
  o.max_dirty_bytes = 1 << 20;
  sim::Simulator sim;
  Cluster cluster(sim, o);
  Client& cl = cluster.client(0);
  bool second_done = false;
  cl.write(1, 0, 1 << 20, nullptr);
  cl.write(1, 1 << 20, 1 << 20, [&] { second_done = true; });
  sim.run_until(1000);
  EXPECT_FALSE(second_done);  // throttled at the 1 MB cache
  cl.set_max_dirty_bytes(64ull << 20);
  sim.run_until(2000);
  EXPECT_TRUE(second_done);
}

TEST(WriteCacheTuning, FloorAtOneMb) {
  sim::Simulator sim;
  Cluster cluster(sim, base_opts());
  cluster.client(0).set_max_dirty_bytes(0);
  EXPECT_GE(cluster.client(0).max_dirty_bytes(), 1u << 20);
}

TEST(WriteCacheTuning, TwoParamAdapterUnchangedByDefault) {
  sim::Simulator sim;
  Cluster cluster(sim, base_opts());
  EXPECT_EQ(cluster.tunable_parameters().size(), 2u);
  EXPECT_EQ(cluster.current_parameters().size(), 2u);
}

}  // namespace
}  // namespace capes::lustre
