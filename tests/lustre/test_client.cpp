#include "lustre/client.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace capes::lustre {
namespace {

/// Harness around a Client with a scripted server side.
class ClientHarness {
 public:
  explicit ClientHarness(ClusterOptions opts = ClusterOptions{})
      : opts_(std::move(opts)), client_(sim_, 0, opts_) {
    client_.set_send_request([this](std::size_t server, const RpcRequest& req,
                                    std::uint64_t wire) {
      sent_.push_back({server, req, wire});
    });
  }

  void reply_to(std::size_t index, sim::TimeUs pt = 1000) {
    const auto& [server, req, wire] = sent_[index];
    RpcReply r;
    r.id = req.id;
    r.type = req.type;
    r.bytes = req.type == RpcType::kRead ? req.bytes : 0;
    r.process_time = pt;
    client_.on_reply(r);
  }

  /// Reply to every outstanding request in order (then any new ones).
  void reply_all() {
    std::size_t i = replied_;
    for (; i < sent_.size(); ++i) reply_to(i);
    replied_ = i;
  }

  sim::Simulator sim_;
  ClusterOptions opts_;
  Client client_;
  std::vector<std::tuple<std::size_t, RpcRequest, std::uint64_t>> sent_;
  std::size_t replied_ = 0;
};

TEST(Client, WriteCompletesImmediatelyWhenCacheHasRoom) {
  ClientHarness h;
  bool done = false;
  h.client_.write(1, 0, 4096, [&] { done = true; });
  EXPECT_FALSE(done);  // completion is async (next event)
  h.sim_.run_until(10);
  EXPECT_TRUE(done);
  EXPECT_EQ(h.client_.dirty_bytes(), 4096u);
}

TEST(Client, WriteStripedAcrossServers) {
  ClientHarness h;
  h.client_.write(1, 0, 4ull << 20, nullptr);
  // 4 MB = 4 stripe units -> one RPC per server.
  ASSERT_EQ(h.sent_.size(), 4u);
  std::set<std::size_t> servers;
  for (const auto& [server, req, wire] : h.sent_) servers.insert(server);
  EXPECT_EQ(servers.size(), 4u);
}

TEST(Client, DirtyCacheThrottlesWriters) {
  ClusterOptions opts;
  opts.max_dirty_bytes = 1 << 20;
  ClientHarness h(opts);
  bool first_done = false, second_done = false;
  h.client_.write(1, 0, 1 << 20, [&] { first_done = true; });
  h.client_.write(1, 1 << 20, 1 << 20, [&] { second_done = true; });
  h.sim_.run_until(100);
  EXPECT_TRUE(first_done);
  EXPECT_FALSE(second_done);  // cache over limit: writer throttled
  EXPECT_EQ(h.client_.throttled_writers(), 1u);
  // Draining the cache resumes the writer.
  h.reply_all();
  h.sim_.run_until(200);
  EXPECT_TRUE(second_done);
  EXPECT_EQ(h.client_.throttled_writers(), 0u);
}

TEST(Client, WriteCompletionShrinksDirty) {
  ClientHarness h;
  h.client_.write(1, 0, 65536, nullptr);
  EXPECT_EQ(h.client_.dirty_bytes(), 65536u);
  h.reply_all();
  EXPECT_EQ(h.client_.dirty_bytes(), 0u);
  EXPECT_EQ(h.client_.total_write_bytes(), 65536u);
}

TEST(Client, ReadCompletesAfterAllChunks) {
  ClientHarness h;
  bool done = false;
  h.client_.read(1, 0, 2ull << 20, [&] { done = true; });
  ASSERT_EQ(h.sent_.size(), 2u);
  h.reply_to(0);
  h.sim_.run_until(10);
  EXPECT_FALSE(done);
  h.reply_to(1);
  h.sim_.run_until(20);
  EXPECT_TRUE(done);
  EXPECT_EQ(h.client_.total_read_bytes(), 2ull << 20);
}

TEST(Client, SmallReadSingleRpc) {
  ClientHarness h;
  bool done = false;
  h.client_.read(1, 12345, 4096, [&] { done = true; });
  ASSERT_EQ(h.sent_.size(), 1u);
  EXPECT_EQ(std::get<1>(h.sent_[0]).type, RpcType::kRead);
  h.reply_all();
  h.sim_.run_until(10);
  EXPECT_TRUE(done);
}

TEST(Client, MetadataGoesToMds) {
  ClientHarness h;
  bool done = false;
  h.client_.metadata_op([&] { done = true; });
  ASSERT_EQ(h.sent_.size(), 1u);
  EXPECT_EQ(std::get<0>(h.sent_[0]), 0u);  // MDS = server 0
  EXPECT_EQ(std::get<1>(h.sent_[0]).type, RpcType::kMetadata);
  h.reply_all();
  EXPECT_TRUE(done);
}

TEST(Client, MetadataDoesNotConsumeCwnd) {
  ClusterOptions opts;
  opts.default_cwnd = 1.0;
  ClientHarness h(opts);
  h.client_.write(1, 0, 4096, nullptr);  // occupies server 0's window
  bool done = false;
  h.client_.metadata_op([&] { done = true; });
  // Metadata op was still sent (2 requests total).
  ASSERT_EQ(h.sent_.size(), 2u);
  h.reply_to(1);
  EXPECT_TRUE(done);
}

TEST(Client, RateLimitDelaysSends) {
  ClusterOptions opts;
  opts.default_rate_limit = 10.0;  // 10 requests/second
  opts.default_cwnd = 64.0;        // make the rate limiter the binding cap
  ClientHarness h(opts);
  // Burst capacity is max(8, 0.2) = 8: the 9th+ write must wait.
  for (int i = 0; i < 12; ++i) {
    h.client_.write(1, static_cast<std::uint64_t>(i) << 26, 4096, nullptr);
  }
  const std::size_t sent_now = h.sent_.size();
  EXPECT_LE(sent_now, 9u);
  EXPECT_GE(sent_now, 7u);
  // After a second, ~10 more tokens accrue.
  h.sim_.run_until(sim::seconds(1.0));
  EXPECT_GT(h.sent_.size(), sent_now);
}

TEST(Client, SetParametersPropagatesToOscs) {
  ClientHarness h;
  h.client_.set_cwnd(32.0);
  h.client_.set_rate_limit(500.0);
  EXPECT_DOUBLE_EQ(h.client_.cwnd(), 32.0);
  EXPECT_DOUBLE_EQ(h.client_.rate_limit(), 500.0);
  for (std::size_t s = 0; s < h.client_.num_oscs(); ++s) {
    EXPECT_DOUBLE_EQ(h.client_.osc(s).cwnd(), 32.0);
  }
}

TEST(Client, LatencyAccounting) {
  ClientHarness h;
  h.client_.write(1, 0, 4096, nullptr);
  h.sim_.run_until(5000);  // 5 ms passes before the reply
  h.reply_all();
  EXPECT_EQ(h.client_.latency_count(), 1u);
  EXPECT_NEAR(h.client_.latency_sum_ms(), 5.0, 0.1);
}

TEST(Client, PtRatioAveragedOverOscs) {
  ClientHarness h;
  h.client_.write(1, 0, 4096, nullptr);
  h.reply_to(0, 2000);
  EXPECT_DOUBLE_EQ(h.client_.avg_pt_ratio(), 1.0);  // single sample per OSC
}

TEST(Client, RpcAndRetransmitCountsAggregate) {
  ClusterOptions opts;
  opts.rpc_timeout = sim::seconds(1);
  ClientHarness h(opts);
  h.client_.write(1, 0, 4096, nullptr);
  EXPECT_EQ(h.client_.total_rpcs_sent(), 1u);
  h.sim_.run_until(sim::seconds(1.5));
  EXPECT_EQ(h.client_.total_retransmits(), 1u);
}

}  // namespace
}  // namespace capes::lustre
