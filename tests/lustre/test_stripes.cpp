#include <gtest/gtest.h>

#include <vector>

#include "lustre/types.hpp"

namespace capes::lustre {
namespace {

ClusterOptions four_server_opts() {
  ClusterOptions o;
  o.num_servers = 4;
  o.stripe_size = 1 << 20;
  return o;
}

std::vector<StripeChunk> chunks_of(const ClusterOptions& o, std::uint64_t file,
                                   std::uint64_t off, std::uint64_t len) {
  std::vector<StripeChunk> out;
  map_stripes(o, file, off, len, [&](const StripeChunk& c) { out.push_back(c); });
  return out;
}

TEST(Stripes, SmallWriteSingleChunk) {
  const auto cs = chunks_of(four_server_opts(), 1, 0, 4096);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].server, 0u);
  EXPECT_EQ(cs[0].object_offset, 0u);
  EXPECT_EQ(cs[0].bytes, 4096u);
  EXPECT_EQ(cs[0].object_id, 1u);
}

TEST(Stripes, SecondStripeUnitGoesToNextServer) {
  const auto cs = chunks_of(four_server_opts(), 1, 1 << 20, 4096);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].server, 1u);
  EXPECT_EQ(cs[0].object_offset, 0u);
}

TEST(Stripes, WrapsAroundServers) {
  const auto cs = chunks_of(four_server_opts(), 1, 4ull << 20, 4096);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].server, 0u);
  // Second pass over server 0: object offset advances by one stripe.
  EXPECT_EQ(cs[0].object_offset, 1u << 20);
}

TEST(Stripes, CrossingStripeBoundarySplits) {
  const auto cs =
      chunks_of(four_server_opts(), 1, (1 << 20) - 1000, 3000);
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0].server, 0u);
  EXPECT_EQ(cs[0].bytes, 1000u);
  EXPECT_EQ(cs[1].server, 1u);
  EXPECT_EQ(cs[1].bytes, 2000u);
  EXPECT_EQ(cs[1].object_offset, 0u);
}

TEST(Stripes, LargeWriteCoversAllServers) {
  const auto cs = chunks_of(four_server_opts(), 1, 0, 4ull << 20);
  ASSERT_EQ(cs.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cs[i].server, i);
    EXPECT_EQ(cs[i].bytes, 1u << 20);
    EXPECT_EQ(cs[i].object_offset, 0u);
  }
}

TEST(Stripes, TotalBytesPreserved) {
  const ClusterOptions o = four_server_opts();
  for (std::uint64_t off : {0ull, 12345ull, (1ull << 20) - 1, 5ull << 20}) {
    for (std::uint64_t len : {1ull, 4096ull, 3ull << 20, 10ull << 20}) {
      std::uint64_t total = 0;
      map_stripes(o, 9, off, len, [&](const StripeChunk& c) { total += c.bytes; });
      EXPECT_EQ(total, len) << off << "+" << len;
    }
  }
}

TEST(Stripes, SequentialOffsetsAreContiguousPerServer) {
  // Writing a long sequential range produces per-server object offsets
  // that are themselves sequential (this is what lets the disk model
  // detect streaming writes).
  const ClusterOptions o = four_server_opts();
  std::vector<std::uint64_t> last_end(4, 0);
  bool first[4] = {true, true, true, true};
  map_stripes(o, 3, 0, 32ull << 20, [&](const StripeChunk& c) {
    if (!first[c.server]) {
      EXPECT_EQ(c.object_offset, last_end[c.server]);
    }
    first[c.server] = false;
    last_end[c.server] = c.object_offset + c.bytes;
  });
}

TEST(Stripes, DifferentStripeCounts) {
  ClusterOptions o = four_server_opts();
  o.num_servers = 3;
  const auto cs = chunks_of(o, 1, 0, 3ull << 20);
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs[2].server, 2u);
}

TEST(Stripes, ZeroLengthProducesNothing) {
  EXPECT_TRUE(chunks_of(four_server_opts(), 1, 100, 0).empty());
}

}  // namespace
}  // namespace capes::lustre
