#include "lustre/osc.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace capes::lustre {
namespace {

/// Harness that wires an Osc to a scripted "server": requests are captured
/// and replies are injected manually.
class OscHarness {
 public:
  explicit OscHarness(double cwnd = 8.0, sim::TimeUs timeout = seconds(3)) {
    opts_.default_cwnd = cwnd;
    opts_.rpc_timeout = timeout;
    osc_ = std::make_unique<Osc>(sim_, 0, 0, opts_);
    osc_->set_send_request([this](const RpcRequest& req, std::uint64_t wire) {
      sent_.push_back({req, wire});
    });
    osc_->set_write_completed([this](std::uint64_t bytes, sim::TimeUs) {
      write_completed_bytes_ += bytes;
    });
    osc_->set_read_completed([this](std::uint64_t bytes, sim::TimeUs) {
      read_completed_bytes_ += bytes;
    });
  }

  void reply_to(std::size_t index, sim::TimeUs process_time = 1000) {
    RpcReply r;
    r.id = sent_[index].first.id;
    r.type = sent_[index].first.type;
    r.bytes = sent_[index].first.type == RpcType::kRead
                  ? sent_[index].first.bytes
                  : 0;
    r.process_time = process_time;
    osc_->on_reply(r);
  }

  sim::Simulator sim_;
  ClusterOptions opts_;
  std::unique_ptr<Osc> osc_;
  std::vector<std::pair<RpcRequest, std::uint64_t>> sent_;
  std::uint64_t write_completed_bytes_ = 0;
  std::uint64_t read_completed_bytes_ = 0;

 private:
  static sim::TimeUs seconds(double s) { return sim::seconds(s); }
};

TEST(Osc, WriteSendsImmediatelyUnderCwnd) {
  OscHarness h(4);
  h.osc_->enqueue_write(1, 0, 4096);
  EXPECT_EQ(h.sent_.size(), 1u);
  EXPECT_EQ(h.osc_->in_flight(), 1u);
  EXPECT_EQ(h.sent_[0].first.type, RpcType::kWrite);
  EXPECT_EQ(h.sent_[0].first.bytes, 4096u);
  // Wire bytes include the request header.
  EXPECT_EQ(h.sent_[0].second, h.opts_.request_header + 4096);
}

TEST(Osc, CwndBoundsInFlight) {
  OscHarness h(2);
  for (int i = 0; i < 5; ++i) {
    h.osc_->enqueue_write(1, static_cast<std::uint64_t>(i) << 30, 4096);
  }
  EXPECT_EQ(h.osc_->in_flight(), 2u);
  EXPECT_EQ(h.sent_.size(), 2u);
  h.reply_to(0);
  EXPECT_EQ(h.osc_->in_flight(), 2u);  // backlog refills the window
  EXPECT_EQ(h.sent_.size(), 3u);
}

TEST(Osc, ContiguousWritesCoalesceIntoOneRpc) {
  OscHarness h(1);
  // First write occupies the window; the rest queue up contiguously.
  h.osc_->enqueue_write(1, 0, 4096);
  h.osc_->enqueue_write(1, 4096, 4096);
  h.osc_->enqueue_write(1, 8192, 4096);
  EXPECT_EQ(h.sent_.size(), 1u);
  h.reply_to(0);
  ASSERT_EQ(h.sent_.size(), 2u);
  EXPECT_EQ(h.sent_[1].first.bytes, 8192u);  // merged two chunks
  EXPECT_EQ(h.sent_[1].first.offset, 4096u);
}

TEST(Osc, CoalescingRespectsRpcMax) {
  OscHarness h(1);
  h.opts_.rpc_max_bytes = 8192;
  h.osc_->enqueue_write(1, 0, 4096);
  for (int i = 1; i <= 4; ++i) {
    h.osc_->enqueue_write(1, static_cast<std::uint64_t>(i) * 4096, 4096);
  }
  h.reply_to(0);
  ASSERT_GE(h.sent_.size(), 2u);
  EXPECT_LE(h.sent_[1].first.bytes, 8192u);
}

TEST(Osc, NonContiguousChunksNotMerged) {
  OscHarness h(1);
  h.osc_->enqueue_write(1, 0, 4096);
  h.osc_->enqueue_write(1, 1 << 20, 4096);
  h.osc_->enqueue_write(2, 4096, 4096);  // different object
  h.reply_to(0);
  ASSERT_EQ(h.sent_.size(), 2u);
  EXPECT_EQ(h.sent_[1].first.bytes, 4096u);
}

TEST(Osc, ReadCompletionInvokesCallback) {
  OscHarness h(4);
  bool done = false;
  h.osc_->enqueue_read(1, 0, 65536, [&] { done = true; });
  ASSERT_EQ(h.sent_.size(), 1u);
  EXPECT_EQ(h.sent_[0].first.type, RpcType::kRead);
  h.reply_to(0);
  EXPECT_TRUE(done);
  EXPECT_EQ(h.read_completed_bytes_, 65536u);
}

TEST(Osc, WriteCompletionReportsBytes) {
  OscHarness h(4);
  h.osc_->enqueue_write(1, 0, 10000);
  h.reply_to(0);
  EXPECT_EQ(h.write_completed_bytes_, 10000u);
  EXPECT_EQ(h.osc_->in_flight(), 0u);
}

TEST(Osc, ReadsAndWritesAlternate) {
  OscHarness h(2);
  // Occupy the window, then queue 2 reads and 2 writes.
  h.osc_->enqueue_write(9, 0, 128);
  h.osc_->enqueue_write(9, 1 << 22, 128);
  h.osc_->enqueue_write(1, 1 << 20, 4096);
  h.osc_->enqueue_write(1, 1 << 21, 4096);
  h.osc_->enqueue_read(1, 0, 4096, nullptr);
  h.osc_->enqueue_read(1, 8192, 4096, nullptr);
  h.reply_to(0);
  h.reply_to(1);
  ASSERT_EQ(h.sent_.size(), 4u);
  // Both types got serviced (no starvation of either queue).
  int reads = 0, writes = 0;
  for (std::size_t i = 2; i < 4; ++i) {
    reads += h.sent_[i].first.type == RpcType::kRead;
    writes += h.sent_[i].first.type == RpcType::kWrite;
  }
  EXPECT_EQ(reads, 1);
  EXPECT_EQ(writes, 1);
}

TEST(Osc, TimeoutTriggersRetransmit) {
  OscHarness h(4, sim::seconds(1));
  h.osc_->enqueue_write(1, 0, 4096);
  EXPECT_EQ(h.sent_.size(), 1u);
  h.sim_.run_until(sim::seconds(1.5));
  EXPECT_EQ(h.sent_.size(), 2u);  // retransmitted once
  EXPECT_EQ(h.osc_->retransmits(), 1u);
  EXPECT_EQ(h.sent_[1].first.id, h.sent_[0].first.id);
  // Backoff: the next retransmit happens ~2 s later, not 1 s.
  h.sim_.run_until(sim::seconds(2.8));
  EXPECT_EQ(h.sent_.size(), 2u);
  h.sim_.run_until(sim::seconds(3.8));
  EXPECT_EQ(h.sent_.size(), 3u);
}

TEST(Osc, ReplyCancelsTimeout) {
  OscHarness h(4, sim::seconds(1));
  h.osc_->enqueue_write(1, 0, 4096);
  h.reply_to(0);
  h.sim_.run_until(sim::seconds(5));
  EXPECT_EQ(h.osc_->retransmits(), 0u);
  EXPECT_EQ(h.sent_.size(), 1u);
}

TEST(Osc, DuplicateReplyIgnored) {
  OscHarness h(4);
  h.osc_->enqueue_write(1, 0, 4096);
  h.reply_to(0);
  h.reply_to(0);  // duplicate
  EXPECT_EQ(h.write_completed_bytes_, 4096u);
}

TEST(Osc, RateLimiterBlocksSends) {
  OscHarness h(8);
  bool allow = false;
  h.osc_->set_try_acquire_token([&] { return allow; });
  h.osc_->enqueue_write(1, 0, 4096);
  EXPECT_EQ(h.sent_.size(), 0u);  // token denied
  allow = true;
  h.osc_->maybe_send();
  EXPECT_EQ(h.sent_.size(), 1u);
}

TEST(Osc, AckEwmaTracksReplyGaps) {
  OscHarness h(8);
  h.osc_->enqueue_write(1, 0, 4096);
  h.osc_->enqueue_write(1, 1 << 20, 4096);
  h.osc_->enqueue_write(1, 1 << 21, 4096);
  h.sim_.run_until(1000);
  h.reply_to(0);
  h.sim_.schedule_in(5000, [] {});
  h.sim_.run_until(6000);
  h.reply_to(1);
  EXPECT_GT(h.osc_->ack_ewma_us(), 0.0);
}

TEST(Osc, PtRatioFromReplies) {
  OscHarness h(8);
  EXPECT_DOUBLE_EQ(h.osc_->pt_ratio(), 1.0);  // no data yet
  h.osc_->enqueue_write(1, 0, 4096);
  h.osc_->enqueue_write(1, 1 << 20, 4096);
  h.reply_to(0, 1000);
  h.reply_to(1, 5000);
  EXPECT_DOUBLE_EQ(h.osc_->pt_ratio(), 5.0);  // 5000 / min(1000)
}

TEST(Osc, PendingWriteBytesTracksQueue) {
  OscHarness h(1);
  h.osc_->enqueue_write(1, 0, 4096);          // sent immediately
  h.osc_->enqueue_write(1, 1 << 20, 8192);    // queued
  EXPECT_EQ(h.osc_->pending_write_bytes(), 8192u);
  h.reply_to(0);
  EXPECT_EQ(h.osc_->pending_write_bytes(), 0u);
}

TEST(Osc, CwndChangeTriggersSendOnNextPoke) {
  OscHarness h(1);
  for (int i = 0; i < 4; ++i) {
    h.osc_->enqueue_write(1, static_cast<std::uint64_t>(i) << 25, 4096);
  }
  EXPECT_EQ(h.sent_.size(), 1u);
  h.osc_->set_cwnd(4);
  h.osc_->maybe_send();
  EXPECT_EQ(h.sent_.size(), 4u);
}

}  // namespace
}  // namespace capes::lustre
