#include "lustre/cluster.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace capes::lustre {
namespace {

ClusterOptions quiet_opts() {
  ClusterOptions o;
  o.disk.service_noise = 0.0;
  o.network.jitter_fraction = 0.0;
  return o;
}

TEST(Cluster, TopologyMatchesOptions) {
  sim::Simulator sim;
  Cluster cluster(sim, quiet_opts());
  EXPECT_EQ(cluster.num_clients(), 5u);
  EXPECT_EQ(cluster.num_servers(), 4u);
  EXPECT_EQ(cluster.num_nodes(), 5u);  // monitored nodes = clients
  EXPECT_EQ(cluster.pis_per_node(), Cluster::kPisPerNode);
  EXPECT_EQ(cluster.network().num_nodes(), 9u);
}

TEST(Cluster, TunableParametersMatchPaper) {
  sim::Simulator sim;
  Cluster cluster(sim, quiet_opts());
  const auto params = cluster.tunable_parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "max_rpcs_in_flight");
  EXPECT_EQ(params[1].name, "io_rate_limit");
  EXPECT_DOUBLE_EQ(params[0].initial_value, 8.0);  // Lustre default
}

TEST(Cluster, SetParametersAppliesToAllClients) {
  sim::Simulator sim;
  Cluster cluster(sim, quiet_opts());
  cluster.set_parameters({64.0, 1000.0});
  for (std::size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_DOUBLE_EQ(cluster.client(i).cwnd(), 64.0);
    EXPECT_DOUBLE_EQ(cluster.client(i).rate_limit(), 1000.0);
  }
  const auto current = cluster.current_parameters();
  EXPECT_DOUBLE_EQ(current[0], 64.0);
  EXPECT_DOUBLE_EQ(current[1], 1000.0);
}

TEST(Cluster, WriteFlowsThroughToDisk) {
  sim::Simulator sim;
  Cluster cluster(sim, quiet_opts());
  bool done = false;
  cluster.client(0).write(1, 0, 1 << 20, [&] { done = true; });
  sim.run_until(sim::seconds(2));
  EXPECT_TRUE(done);
  EXPECT_EQ(cluster.total_write_bytes(), 1u << 20);
  // Exactly one server (stripe 0) did the work.
  std::uint64_t disk_bytes = 0;
  for (std::size_t j = 0; j < cluster.num_servers(); ++j) {
    disk_bytes += cluster.server(j).disk().bytes_written();
  }
  EXPECT_EQ(disk_bytes, 1u << 20);
}

TEST(Cluster, ReadRoundTrip) {
  sim::Simulator sim;
  Cluster cluster(sim, quiet_opts());
  bool done = false;
  cluster.client(2).read(7, 0, 2ull << 20, [&] { done = true; });
  sim.run_until(sim::seconds(2));
  EXPECT_TRUE(done);
  EXPECT_EQ(cluster.total_read_bytes(), 2ull << 20);
}

TEST(Cluster, MetadataServedByMds) {
  sim::Simulator sim;
  Cluster cluster(sim, quiet_opts());
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    cluster.client(1).metadata_op([&] { ++done; });
  }
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(done, 10);
  EXPECT_EQ(cluster.server(0).metadata_served(), 10u);
}

TEST(Cluster, ObservationShapeAndRanges) {
  sim::Simulator sim;
  Cluster cluster(sim, quiet_opts());
  cluster.client(0).write(1, 0, 4 << 20, nullptr);
  sim.run_until(sim::seconds(1));
  const auto pis = cluster.collect_observation(0);
  ASSERT_EQ(pis.size(), Cluster::kPisPerNode);
  for (float v : pis) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, -0.01f);
    EXPECT_LE(v, 5.0f);  // log-compressed indicators stay small
  }
}

TEST(Cluster, ObservationThroughputPiReflectsTraffic) {
  sim::Simulator sim;
  Cluster cluster(sim, quiet_opts());
  (void)cluster.collect_observation(0);  // reset the window
  bool done = false;
  cluster.client(0).write(1, 0, 8 << 20, [&] { done = true; });
  sim.run_until(sim::seconds(1));
  const auto pis = cluster.collect_observation(0);
  EXPECT_GT(pis[3], 0.01f);  // write MB/s PI
  const auto idle = cluster.collect_observation(1);
  EXPECT_FLOAT_EQ(idle[3], 0.0f);
  EXPECT_TRUE(done);
}

TEST(Cluster, PerformanceSampleMeasuresWindow) {
  sim::Simulator sim;
  Cluster cluster(sim, quiet_opts());
  (void)cluster.sample_performance();
  cluster.client(0).write(1, 0, 4 << 20, nullptr);
  sim.run_until(sim::seconds(1));
  const auto s = cluster.sample_performance();
  EXPECT_NEAR(s.write_mbs, 4.0 * (1 << 20) / 1e6, 0.8);
  EXPECT_GT(s.avg_latency_ms, 0.0);
  // Next window with no traffic reports ~0.
  sim.run_until(sim::seconds(2));
  const auto s2 = cluster.sample_performance();
  EXPECT_NEAR(s2.write_mbs, 0.0, 0.01);
}

TEST(Cluster, FragmentationSlowsSequentialWrites) {
  auto throughput_with = [](double frag) {
    ClusterOptions o;
    o.disk.service_noise = 0.0;
    o.fragmentation = frag;
    // A single streaming client saturates its gigabit uplink before the
    // disks; lift the network so the disk-side effect is observable.
    o.network.link_bandwidth_mbs = 5000.0;
    o.network.fabric_bandwidth_mbs = 5000.0;
    sim::Simulator sim;
    Cluster cluster(sim, o);
    // Stream sequential writes for 5 simulated seconds.
    std::function<void(std::uint64_t)> loop = [&](std::uint64_t off) {
      cluster.client(0).write(1, off, 1 << 20,
                              [&, off] { loop(off + (1 << 20)); });
    };
    loop(0);
    sim.run_until(sim::seconds(5));
    return cluster.total_write_bytes();
  };
  EXPECT_GT(static_cast<double>(throughput_with(0.0)),
            1.2 * static_cast<double>(throughput_with(0.5)));
}

TEST(Cluster, DiskFullnessSlowsRandomIo) {
  auto bytes_with = [](double fullness) {
    ClusterOptions o;
    o.disk.service_noise = 0.0;
    o.disk_fullness = fullness;
    sim::Simulator sim;
    Cluster cluster(sim, o);
    util::Rng rng(3);
    std::function<void()> loop = [&] {
      cluster.client(0).write(1, (rng.next_u64() % (1 << 12)) << 20, 65536,
                              [&] { loop(); });
    };
    loop();
    sim.run_until(sim::seconds(5));
    return cluster.total_write_bytes();
  };
  EXPECT_GT(bytes_with(0.0), bytes_with(1.0));
}

TEST(Cluster, RetransmitsAfterSustainedOverload) {
  ClusterOptions o = quiet_opts();
  o.rpc_timeout = sim::seconds(1);
  sim::Simulator sim;
  Cluster cluster(sim, o);
  cluster.set_parameters({256.0, 4000.0});
  util::Rng rng(5);
  // Saturating random writes from all clients.
  for (std::size_t c = 0; c < cluster.num_clients(); ++c) {
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [&cluster, c, loop, &rng] {
      cluster.client(c).write(c + 1, (rng.next_u64() % (1 << 14)) << 16, 65536,
                              [loop] { (*loop)(); });
    };
    for (int i = 0; i < 50; ++i) (*loop)();
  }
  sim.run_until(sim::seconds(20));
  EXPECT_GT(cluster.total_retransmits(), 0u);
}

TEST(Cluster, CumulativeThroughput) {
  sim::Simulator sim;
  Cluster cluster(sim, quiet_opts());
  cluster.client(0).write(1, 0, 10 << 20, nullptr);
  sim.run_until(sim::seconds(2));
  EXPECT_GT(cluster.cumulative_throughput_mbs(), 0.0);
}

}  // namespace
}  // namespace capes::lustre
