#include "waldb/wal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

namespace capes::waldb {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("capes_wal_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "wal.log").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string path_;
};

WalRecord make_record(std::uint32_t table, std::int64_t key,
                      std::vector<std::uint8_t> payload) {
  WalRecord r;
  r.table_id = table;
  r.key = key;
  r.payload = std::move(payload);
  return r;
}

TEST_F(WalTest, AppendAndReplay) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.open(path_));
    ASSERT_TRUE(wal.append(make_record(0, 1, {1, 2, 3})));
    ASSERT_TRUE(wal.append(make_record(1, 2, {4})));
    ASSERT_TRUE(wal.flush());
  }
  std::vector<WalRecord> got;
  auto n = WriteAheadLog::replay(path_, [&](const WalRecord& r) {
    got.push_back(r);
  });
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 2u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].table_id, 0u);
  EXPECT_EQ(got[0].key, 1);
  EXPECT_EQ(got[0].payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(got[1].key, 2);
}

TEST_F(WalTest, EmptyPayloadAllowed) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.open(path_));
    ASSERT_TRUE(wal.append(make_record(3, -7, {})));
    wal.flush();
  }
  std::size_t count = 0;
  WriteAheadLog::replay(path_, [&](const WalRecord& r) {
    EXPECT_EQ(r.key, -7);
    EXPECT_TRUE(r.payload.empty());
    ++count;
  });
  EXPECT_EQ(count, 1u);
}

TEST_F(WalTest, MissingFileReplaysZero) {
  auto n = WriteAheadLog::replay((dir_ / "nope.log").string(),
                                 [](const WalRecord&) { FAIL(); });
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 0u);
}

TEST_F(WalTest, TornTailDropped) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.open(path_));
    ASSERT_TRUE(wal.append(make_record(0, 1, {9, 9})));
    ASSERT_TRUE(wal.append(make_record(0, 2, {8, 8})));
    wal.flush();
  }
  // Truncate mid-record (simulate a crash during the last append).
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 3);
  std::vector<std::int64_t> keys;
  auto n = WriteAheadLog::replay(path_, [&](const WalRecord& r) {
    keys.push_back(r.key);
  });
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 1u);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], 1);
}

TEST_F(WalTest, TornTailSurfacesStats) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.open(path_));
    ASSERT_TRUE(wal.append(make_record(0, 1, {9, 9})));
    ASSERT_TRUE(wal.append(make_record(0, 2, {8, 8, 8})));
    wal.flush();
  }
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 3);
  WriteAheadLog::ReplayStats stats;
  auto n = WriteAheadLog::replay(path_, [](const WalRecord&) {}, &stats);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 1u);
  EXPECT_EQ(stats.truncated_records, 1u);
  // record 2 = 20 fixed bytes + 3 payload, minus the 3 torn off the end.
  EXPECT_EQ(stats.truncated_bytes, 20u);
}

TEST_F(WalTest, CleanReplayReportsZeroStats) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.open(path_));
    ASSERT_TRUE(wal.append(make_record(0, 1, {1})));
    wal.flush();
  }
  WriteAheadLog::ReplayStats stats;
  stats.truncated_records = 99;  // must be reset even when nothing is torn
  auto n = WriteAheadLog::replay(path_, [](const WalRecord&) {}, &stats);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 1u);
  EXPECT_EQ(stats.truncated_records, 0u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
}

TEST_F(WalTest, MidFileCorruptionCountsAllDroppedRecords) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.open(path_));
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(wal.append(make_record(0, i, {1, 2})));
    }
    wal.flush();
  }
  // Corrupt the second record's payload: records 2..4 are all discarded
  // (replay cannot trust frame boundaries past a bad CRC).
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    const auto one = 20 + 2;  // fixed header + payload
    f.seekp(one + 20, std::ios::beg);
    f.put('\x7f');
  }
  WriteAheadLog::ReplayStats stats;
  auto n = WriteAheadLog::replay(path_, [](const WalRecord&) {}, &stats);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 1u);
  EXPECT_EQ(stats.truncated_records, 3u);
  EXPECT_EQ(stats.truncated_bytes, 3u * 22u);
}

TEST_F(WalTest, CorruptedPayloadDetected) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.open(path_));
    ASSERT_TRUE(wal.append(make_record(0, 1, {1, 2, 3, 4, 5})));
    wal.flush();
  }
  // Flip one payload byte in the middle of the file.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-2, std::ios::end);
    char c;
    f.seekg(-2, std::ios::end);
    f.get(c);
    f.seekp(-2, std::ios::end);
    f.put(static_cast<char>(c ^ 0xFF));
  }
  auto n = WriteAheadLog::replay(path_, [&](const WalRecord&) {});
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 0u);
}

TEST_F(WalTest, ReopenAppends) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.open(path_));
    ASSERT_TRUE(wal.append(make_record(0, 1, {1})));
  }
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.open(path_));
    EXPECT_GT(wal.size_bytes(), 0u);
    ASSERT_TRUE(wal.append(make_record(0, 2, {2})));
  }
  std::size_t count = 0;
  WriteAheadLog::replay(path_, [&](const WalRecord&) { ++count; });
  EXPECT_EQ(count, 2u);
}

TEST_F(WalTest, ResetTruncates) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.open(path_));
  ASSERT_TRUE(wal.append(make_record(0, 1, {1, 2, 3})));
  wal.flush();
  EXPECT_GT(wal.size_bytes(), 0u);
  ASSERT_TRUE(wal.reset());
  EXPECT_EQ(wal.size_bytes(), 0u);
  wal.close();
  std::size_t count = 0;
  WriteAheadLog::replay(path_, [&](const WalRecord&) { ++count; });
  EXPECT_EQ(count, 0u);
}

TEST_F(WalTest, SizeTracksWrites) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.open(path_));
  const auto s0 = wal.size_bytes();
  ASSERT_TRUE(wal.append(make_record(0, 1, std::vector<std::uint8_t>(100, 7))));
  EXPECT_GE(wal.size_bytes(), s0 + 100);
}

TEST_F(WalTest, AppendWithoutOpenFails) {
  WriteAheadLog wal;
  EXPECT_FALSE(wal.append(make_record(0, 1, {1})));
  EXPECT_FALSE(wal.is_open());
}

TEST_F(WalTest, ManyRecordsRoundTrip) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.open(path_));
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(wal.append(make_record(static_cast<std::uint32_t>(i % 3), i,
                                         {static_cast<std::uint8_t>(i & 0xff)})));
    }
  }
  std::int64_t expected = 0;
  auto n = WriteAheadLog::replay(path_, [&](const WalRecord& r) {
    EXPECT_EQ(r.key, expected);
    EXPECT_EQ(r.table_id, static_cast<std::uint32_t>(expected % 3));
    ++expected;
  });
  EXPECT_EQ(*n, 500u);
}

}  // namespace
}  // namespace capes::waldb
