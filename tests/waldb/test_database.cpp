#include "waldb/database.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace capes::waldb {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> v) {
  return std::vector<std::uint8_t>(v);
}

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("capes_db_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(DatabaseTest, InMemoryPutGet) {
  Database db = Database::in_memory();
  EXPECT_FALSE(db.is_durable());
  ASSERT_TRUE(db.put("status", 1, bytes({1, 2})));
  auto v = db.get("status", 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, bytes({1, 2}));
  EXPECT_FALSE(db.get("status", 2).has_value());
  EXPECT_FALSE(db.get("other", 1).has_value());
}

TEST_F(DatabaseTest, TablePointersStable) {
  Database db = Database::in_memory();
  Table* t1 = db.table("a");
  db.table("b");
  db.table("c");
  EXPECT_EQ(db.table("a"), t1);
  EXPECT_EQ(db.table_count(), 3u);
}

TEST_F(DatabaseTest, DurableRecoversFromWal) {
  {
    Database db;
    ASSERT_TRUE(db.open(dir_));
    EXPECT_TRUE(db.is_durable());
    ASSERT_TRUE(db.put("status", 1, bytes({1})));
    ASSERT_TRUE(db.put("action", 1, bytes({2})));
    ASSERT_TRUE(db.put("status", 2, bytes({3})));
    ASSERT_TRUE(db.flush());
  }
  Database db2;
  ASSERT_TRUE(db2.open(dir_));
  EXPECT_EQ(*db2.get("status", 1), bytes({1}));
  EXPECT_EQ(*db2.get("action", 1), bytes({2}));
  EXPECT_EQ(*db2.get("status", 2), bytes({3}));
}

TEST_F(DatabaseTest, CheckpointThenRecover) {
  {
    Database db;
    ASSERT_TRUE(db.open(dir_));
    ASSERT_TRUE(db.put("t", 1, bytes({1})));
    ASSERT_TRUE(db.checkpoint());
    // Post-checkpoint writes land in the fresh WAL.
    ASSERT_TRUE(db.put("t", 2, bytes({2})));
    ASSERT_TRUE(db.flush());
  }
  Database db2;
  ASSERT_TRUE(db2.open(dir_));
  EXPECT_EQ(*db2.get("t", 1), bytes({1}));
  EXPECT_EQ(*db2.get("t", 2), bytes({2}));
}

TEST_F(DatabaseTest, CheckpointTruncatesWal) {
  Database db;
  ASSERT_TRUE(db.open(dir_));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.put("t", i, std::vector<std::uint8_t>(50, 1)));
  }
  db.flush();
  const auto before = std::filesystem::file_size(dir_ + "/wal.log");
  EXPECT_GT(before, 5000u);
  ASSERT_TRUE(db.checkpoint());
  const auto after = std::filesystem::file_size(dir_ + "/wal.log");
  EXPECT_EQ(after, 0u);
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/snapshot.db"));
}

TEST_F(DatabaseTest, TornWalTailSurvivable) {
  {
    Database db;
    ASSERT_TRUE(db.open(dir_));
    ASSERT_TRUE(db.put("t", 1, bytes({1})));
    ASSERT_TRUE(db.put("t", 2, bytes({2})));
    db.flush();
  }
  const std::string wal = dir_ + "/wal.log";
  std::filesystem::resize_file(wal, std::filesystem::file_size(wal) - 2);
  Database db2;
  ASSERT_TRUE(db2.open(dir_));
  EXPECT_TRUE(db2.get("t", 1).has_value());
  EXPECT_FALSE(db2.get("t", 2).has_value());  // torn record dropped
  // The database remains writable after recovery.
  EXPECT_TRUE(db2.put("t", 3, bytes({3})));
}

TEST_F(DatabaseTest, CorruptSnapshotFallsBackToEmpty) {
  {
    Database db;
    ASSERT_TRUE(db.open(dir_));
    ASSERT_TRUE(db.put("t", 1, bytes({1})));
    ASSERT_TRUE(db.checkpoint());
  }
  {
    std::ofstream f(dir_ + "/snapshot.db",
                    std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(10);
    f.put('\xFF');
  }
  Database db2;
  ASSERT_TRUE(db2.open(dir_));  // opens, but the snapshot was rejected
  EXPECT_FALSE(db2.get("t", 1).has_value());
}

TEST_F(DatabaseTest, DiskBytesReported) {
  Database db;
  ASSERT_TRUE(db.open(dir_));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.put("t", i, std::vector<std::uint8_t>(100, 9)));
  }
  db.flush();
  EXPECT_GE(db.disk_bytes(), 5000u);
}

TEST_F(DatabaseTest, MemoryBytesGrowWithData) {
  Database db = Database::in_memory();
  const auto before = db.memory_bytes();
  for (int i = 0; i < 100; ++i) {
    db.put("t", i, std::vector<std::uint8_t>(64, 1));
  }
  EXPECT_GE(db.memory_bytes(), before + 100 * 64);
}

TEST_F(DatabaseTest, ManyTablesRecover) {
  {
    Database db;
    ASSERT_TRUE(db.open(dir_));
    for (int t = 0; t < 5; ++t) {
      for (int k = 0; k < 20; ++k) {
        ASSERT_TRUE(db.put("table" + std::to_string(t), k,
                           bytes({static_cast<std::uint8_t>(t * 20 + k)})));
      }
    }
    ASSERT_TRUE(db.checkpoint());
  }
  Database db2;
  ASSERT_TRUE(db2.open(dir_));
  EXPECT_EQ(db2.table_count(), 5u);
  EXPECT_EQ(*db2.get("table3", 10), bytes({70}));
}

TEST_F(DatabaseTest, FindTableConst) {
  Database db = Database::in_memory();
  EXPECT_EQ(db.find_table("missing"), nullptr);
  db.table("exists");
  EXPECT_NE(db.find_table("exists"), nullptr);
}

}  // namespace
}  // namespace capes::waldb
