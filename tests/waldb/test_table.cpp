#include "waldb/table.hpp"

#include <gtest/gtest.h>

namespace capes::waldb {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> v) {
  return std::vector<std::uint8_t>(v);
}

TEST(Table, PutGet) {
  Table t(0, "status");
  t.put(10, bytes({1, 2}));
  auto v = t.get(10);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, bytes({1, 2}));
  EXPECT_FALSE(t.get(11).has_value());
}

TEST(Table, IdAndName) {
  Table t(7, "actions");
  EXPECT_EQ(t.id(), 7u);
  EXPECT_EQ(t.name(), "actions");
}

TEST(Table, OverwriteReplaces) {
  Table t(0, "t");
  t.put(1, bytes({1}));
  t.put(1, bytes({2, 3}));
  EXPECT_EQ(t.count(), 1u);
  EXPECT_EQ(*t.get(1), bytes({2, 3}));
}

TEST(Table, ContainsAndErase) {
  Table t(0, "t");
  t.put(5, bytes({1}));
  EXPECT_TRUE(t.contains(5));
  EXPECT_TRUE(t.erase(5));
  EXPECT_FALSE(t.contains(5));
  EXPECT_FALSE(t.erase(5));
}

TEST(Table, MinMaxKeys) {
  Table t(0, "t");
  EXPECT_EQ(t.min_key(), 0);
  EXPECT_EQ(t.max_key(), 0);
  t.put(-5, {});
  t.put(100, {});
  t.put(3, {});
  EXPECT_EQ(t.min_key(), -5);
  EXPECT_EQ(t.max_key(), 100);
}

TEST(Table, RangeIterationOrdered) {
  Table t(0, "t");
  for (std::int64_t k : {5, 1, 9, 3, 7}) {
    t.put(k, bytes({static_cast<std::uint8_t>(k)}));
  }
  std::vector<std::int64_t> seen;
  t.for_range(2, 8, [&](std::int64_t k, const std::vector<std::uint8_t>&) {
    seen.push_back(k);
  });
  EXPECT_EQ(seen, (std::vector<std::int64_t>{3, 5, 7}));
}

TEST(Table, RangeBoundsInclusive) {
  Table t(0, "t");
  t.put(1, {});
  t.put(2, {});
  t.put(3, {});
  std::size_t count = 0;
  t.for_range(1, 3, [&](std::int64_t, const auto&) { ++count; });
  EXPECT_EQ(count, 3u);
}

TEST(Table, TrimBelowRemovesOldRows) {
  Table t(0, "t");
  for (std::int64_t k = 0; k < 10; ++k) t.put(k, bytes({1}));
  EXPECT_EQ(t.trim_below(5), 5u);
  EXPECT_EQ(t.count(), 5u);
  EXPECT_EQ(t.min_key(), 5);
}

TEST(Table, TrimBelowNoopWhenAllNewer) {
  Table t(0, "t");
  t.put(10, {});
  EXPECT_EQ(t.trim_below(5), 0u);
  EXPECT_EQ(t.count(), 1u);
}

TEST(Table, MemoryBytesTracksPayloads) {
  Table t(0, "t");
  const auto base = t.memory_bytes();
  t.put(1, std::vector<std::uint8_t>(1000, 0));
  EXPECT_GE(t.memory_bytes(), base + 1000);
  t.put(1, std::vector<std::uint8_t>(10, 0));  // overwrite smaller
  EXPECT_LT(t.memory_bytes(), base + 1000);
  t.erase(1);
  EXPECT_EQ(t.memory_bytes(), base);
}

}  // namespace
}  // namespace capes::waldb
