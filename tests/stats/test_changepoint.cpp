#include "stats/changepoint.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace capes::stats {
namespace {

std::vector<double> steps(const std::vector<std::pair<double, std::size_t>>& segs,
                          double noise, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs;
  for (const auto& [level, len] : segs) {
    for (std::size_t i = 0; i < len; ++i) {
      xs.push_back(level + noise * rng.normal());
    }
  }
  return xs;
}

TEST(Pelt, NoChangeOnConstantSeries) {
  const auto xs = steps({{5.0, 200}}, 0.1, 1);
  EXPECT_TRUE(pelt_mean_shift(xs).empty());
}

TEST(Pelt, TooShortReturnsEmpty) {
  EXPECT_TRUE(pelt_mean_shift({1.0, 2.0}).empty());
}

TEST(Pelt, DetectsSingleShift) {
  const auto xs = steps({{0.0, 100}, {10.0, 100}}, 0.5, 2);
  const auto cps = pelt_mean_shift(xs);
  ASSERT_EQ(cps.size(), 1u);
  EXPECT_NEAR(static_cast<double>(cps[0]), 100.0, 3.0);
}

TEST(Pelt, DetectsMultipleShifts) {
  const auto xs = steps({{0.0, 150}, {8.0, 150}, {-4.0, 150}}, 0.5, 3);
  const auto cps = pelt_mean_shift(xs);
  ASSERT_EQ(cps.size(), 2u);
  EXPECT_NEAR(static_cast<double>(cps[0]), 150.0, 4.0);
  EXPECT_NEAR(static_cast<double>(cps[1]), 300.0, 4.0);
}

TEST(Pelt, ChangepointsStrictlyIncreasing) {
  const auto xs = steps({{0.0, 80}, {5.0, 80}, {0.0, 80}, {5.0, 80}}, 0.4, 4);
  const auto cps = pelt_mean_shift(xs);
  for (std::size_t i = 1; i < cps.size(); ++i) {
    EXPECT_LT(cps[i - 1], cps[i]);
  }
  for (std::size_t cp : cps) {
    EXPECT_GT(cp, 0u);
    EXPECT_LT(cp, xs.size());
  }
}

TEST(Pelt, HighPenaltySuppressesDetection) {
  const auto xs = steps({{0.0, 100}, {1.0, 100}}, 0.5, 5);
  const auto cps = pelt_mean_shift(xs, 1e9);
  EXPECT_TRUE(cps.empty());
}

TEST(Pelt, IgnoresPureNoise) {
  util::Rng rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 400; ++i) xs.push_back(rng.normal());
  // BIC-like default penalty should not hallucinate many changepoints.
  EXPECT_LE(pelt_mean_shift(xs).size(), 2u);
}

TEST(Trim, KeepsEverythingWhenStable) {
  const auto xs = steps({{50.0, 400}}, 1.0, 7);
  const auto t = trim_warmup_cooldown(xs);
  EXPECT_EQ(t.begin, 0u);
  EXPECT_EQ(t.end, xs.size());
}

TEST(Trim, RemovesWarmup) {
  // Short low warm-up ramp then a long stable phase.
  auto xs = steps({{10.0, 40}, {50.0, 400}}, 1.0, 8);
  const auto t = trim_warmup_cooldown(xs);
  EXPECT_GE(t.begin, 30u);
  EXPECT_LE(t.begin, 50u);
  EXPECT_EQ(t.end, xs.size());
}

TEST(Trim, RemovesCooldown) {
  auto xs = steps({{50.0, 400}, {5.0, 40}}, 1.0, 9);
  const auto t = trim_warmup_cooldown(xs);
  EXPECT_EQ(t.begin, 0u);
  EXPECT_GE(t.end, 390u);
  EXPECT_LE(t.end, 410u);
}

TEST(Trim, RemovesBothEnds) {
  auto xs = steps({{5.0, 50}, {50.0, 500}, {10.0, 50}}, 1.0, 10);
  const auto t = trim_warmup_cooldown(xs);
  EXPECT_GT(t.begin, 30u);
  EXPECT_LT(t.end, xs.size() - 30u);
  EXPECT_LT(t.begin, t.end);
}

TEST(Trim, NeverTrimsMoreThanQuarterPerSide) {
  auto xs = steps({{0.0, 300}, {50.0, 300}}, 1.0, 11);
  const auto t = trim_warmup_cooldown(xs);
  EXPECT_LE(t.begin, xs.size() / 4);
  EXPECT_GE(t.end, xs.size() - xs.size() / 4);
}

TEST(Trim, ShortSeriesUntouched) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const auto t = trim_warmup_cooldown(xs);
  EXPECT_EQ(t.begin, 0u);
  EXPECT_EQ(t.end, xs.size());
}

}  // namespace
}  // namespace capes::stats
