#include "stats/autocorrelation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace capes::stats {
namespace {

TEST(Autocorrelation, TooShortReturnsZero) {
  EXPECT_DOUBLE_EQ(autocorrelation({}, 1), 0.0);
  EXPECT_DOUBLE_EQ(autocorrelation({1.0}, 1), 0.0);
  EXPECT_DOUBLE_EQ(autocorrelation({1.0, 2.0}, 1), 0.0);
}

TEST(Autocorrelation, ConstantSeriesIsZero) {
  std::vector<double> xs(100, 3.14);
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 1), 0.0);
}

TEST(Autocorrelation, WhiteNoiseNearZero) {
  util::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal());
  EXPECT_NEAR(autocorrelation(xs, 1), 0.0, 0.02);
  EXPECT_NEAR(autocorrelation(xs, 5), 0.0, 0.02);
}

TEST(Autocorrelation, Ar1ProcessMatchesPhi) {
  // AR(1): x_t = phi x_{t-1} + e_t has lag-1 autocorrelation phi.
  util::Rng rng(17);
  const double phi = 0.7;
  std::vector<double> xs{0.0};
  for (int i = 1; i < 50000; ++i) {
    xs.push_back(phi * xs.back() + rng.normal());
  }
  EXPECT_NEAR(autocorrelation(xs, 1), phi, 0.02);
  EXPECT_NEAR(autocorrelation(xs, 2), phi * phi, 0.03);
}

TEST(Autocorrelation, AlternatingSeriesIsNegative) {
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_NEAR(autocorrelation(xs, 1), -1.0, 0.01);
}

TEST(Autocorrelation, LinearTrendIsHighlyCorrelated) {
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(i);
  EXPECT_GT(autocorrelation(xs, 1), 0.95);
}

TEST(Autocorrelation, BoundedByOne) {
  util::Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.uniform());
  for (std::size_t lag = 1; lag < 10; ++lag) {
    const double r = autocorrelation(xs, lag);
    EXPECT_LE(std::fabs(r), 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace capes::stats
