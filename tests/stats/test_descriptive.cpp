#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace capes::stats {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MatchesBatchFormulaOnRandomData) {
  util::Rng rng(5);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 7.0);
    xs.push_back(x);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(s.variance(), variance(xs), 1e-6);
}

TEST(RunningStats, NumericallyStableWithLargeOffset) {
  RunningStats s;
  const double offset = 1e12;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-3);
}

TEST(RunningStats, ClearResets) {
  RunningStats s;
  s.add(1.0);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma e(0.2);
  EXPECT_FALSE(e.initialized());
  e.add(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, UpdateRule) {
  Ewma e(0.25);
  e.add(0.0);
  e.add(8.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);  // 0.75*0 + 0.25*8
  e.add(8.0);
  EXPECT_DOUBLE_EQ(e.value(), 3.5);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.1);
  for (int i = 0; i < 500; ++i) e.add(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

TEST(Ewma, AlphaOneTracksExactly) {
  Ewma e(1.0);
  e.add(1.0);
  e.add(-3.0);
  EXPECT_DOUBLE_EQ(e.value(), -3.0);
}

TEST(Ewma, ResetClears) {
  Ewma e(0.5);
  e.add(4.0);
  e.reset();
  EXPECT_FALSE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

TEST(BatchHelpers, EmptyAndSmall) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(mean({3.0}), 3.0);
}

}  // namespace
}  // namespace capes::stats
