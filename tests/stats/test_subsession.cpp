#include "stats/subsession.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/autocorrelation.hpp"
#include "util/rng.hpp"

namespace capes::stats {
namespace {

std::vector<double> ar1(double phi, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs{0.0};
  for (std::size_t i = 1; i < n; ++i) {
    xs.push_back(phi * xs.back() + rng.normal());
  }
  return xs;
}

TEST(Subsession, IidDataUnmerged) {
  util::Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.normal());
  const auto r = subsession_merge(xs);
  EXPECT_EQ(r.merge_factor, 1u);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.samples.size(), xs.size());
}

TEST(Subsession, CorrelatedDataGetsMerged) {
  const auto xs = ar1(0.9, 20000, 5);
  ASSERT_GT(std::fabs(autocorrelation(xs, 1)), 0.1);
  const auto r = subsession_merge(xs);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.merge_factor, 1u);
  EXPECT_LT(std::fabs(r.autocorr), 0.1);
}

TEST(Subsession, MergePreservesMean) {
  const auto xs = ar1(0.8, 16384, 7);
  double m0 = 0.0;
  for (double x : xs) m0 += x;
  m0 /= static_cast<double>(xs.size());
  const auto r = subsession_merge(xs);
  double m1 = 0.0;
  for (double x : r.samples) m1 += x;
  m1 /= static_cast<double>(r.samples.size());
  EXPECT_NEAR(m1, m0, 0.05);
}

TEST(Subsession, MergeFactorIsPowerOfTwo) {
  const auto xs = ar1(0.95, 30000, 9);
  const auto r = subsession_merge(xs);
  EXPECT_EQ(r.merge_factor & (r.merge_factor - 1), 0u);
}

TEST(Subsession, GivesUpOnShortVeryCorrelatedSeries) {
  // A short, strongly trending series can't be merged enough.
  std::vector<double> xs;
  for (int i = 0; i < 64; ++i) xs.push_back(i);
  const auto r = subsession_merge(xs, 0.1, 8);
  EXPECT_FALSE(r.converged);
  EXPECT_GE(r.samples.size(), 8u);
}

TEST(Subsession, RespectsMinSamples) {
  const auto xs = ar1(0.99, 512, 11);
  const auto r = subsession_merge(xs, 0.1, 32);
  EXPECT_GE(r.samples.size(), 32u);
}

TEST(Subsession, ThresholdHonored) {
  const auto xs = ar1(0.6, 40000, 13);
  const auto strict = subsession_merge(xs, 0.05);
  const auto loose = subsession_merge(xs, 0.5);
  EXPECT_GE(strict.merge_factor, loose.merge_factor);
  if (strict.converged) {
    EXPECT_LT(std::fabs(strict.autocorr), 0.05);
  }
}

class SubsessionPhiSweep : public ::testing::TestWithParam<double> {};

TEST_P(SubsessionPhiSweep, AlwaysEndsBelowThresholdWhenConverged) {
  const auto xs = ar1(GetParam(), 32768, 17);
  const auto r = subsession_merge(xs);
  if (r.converged) {
    EXPECT_LT(std::fabs(r.autocorr), 0.1);
  }
  // Merged count * factor never exceeds the input size.
  EXPECT_LE(r.samples.size() * r.merge_factor, xs.size());
}

INSTANTIATE_TEST_SUITE_P(Phis, SubsessionPhiSweep,
                         ::testing::Values(0.0, 0.3, 0.5, 0.7, 0.9, 0.97));

}  // namespace
}  // namespace capes::stats
