#include "stats/measurement.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace capes::stats {
namespace {

TEST(Measurement, EmptySessionIsZero) {
  MeasurementSession s;
  const auto r = s.analyze();
  EXPECT_EQ(r.raw_samples, 0u);
  EXPECT_DOUBLE_EQ(r.mean, 0.0);
}

TEST(Measurement, MeanAndCiOnIidData) {
  util::Rng rng(1);
  MeasurementSession s;
  for (int i = 0; i < 2000; ++i) s.add(rng.normal(100.0, 10.0));
  const auto r = s.analyze();
  EXPECT_NEAR(r.mean, 100.0, 1.0);
  EXPECT_TRUE(r.iid_validated);
  // Theoretical CI half width: 1.96 * 10 / sqrt(n used).
  const double expected =
      1.96 * 10.0 / std::sqrt(static_cast<double>(r.used_samples));
  EXPECT_NEAR(r.ci_half_width, expected, expected * 0.35);
}

TEST(Measurement, AutocorrelatedDataWidensCi) {
  util::Rng rng(2);
  MeasurementSession::Options opts;
  opts.trim_edges = false;
  MeasurementSession iid(opts), corr(opts);
  double x = 0.0;
  for (int i = 0; i < 4096; ++i) {
    iid.add(rng.normal(0.0, 1.0));
    x = 0.9 * x + rng.normal();
    corr.add(x);
  }
  const auto ri = iid.analyze();
  const auto rc = corr.analyze();
  EXPECT_EQ(ri.merge_factor, 1u);
  EXPECT_GT(rc.merge_factor, 1u);
  // The correlated series has larger effective variance; its CI must be
  // wider than a naive i.i.d. CI of the same data would be.
  EXPECT_GT(rc.ci_half_width, ri.ci_half_width);
}

TEST(Measurement, TrimsWarmup) {
  util::Rng rng(3);
  MeasurementSession s;
  for (int i = 0; i < 60; ++i) s.add(rng.normal(10.0, 1.0));   // warm-up
  for (int i = 0; i < 600; ++i) s.add(rng.normal(100.0, 1.0)); // stable
  const auto r = s.analyze();
  EXPECT_GT(r.trimmed_head, 30u);
  EXPECT_NEAR(r.mean, 100.0, 1.0);
}

TEST(Measurement, NoTrimWhenDisabled) {
  util::Rng rng(4);
  MeasurementSession::Options opts;
  opts.trim_edges = false;
  MeasurementSession s(opts);
  for (int i = 0; i < 50; ++i) s.add(rng.normal(10.0, 1.0));
  for (int i = 0; i < 500; ++i) s.add(rng.normal(100.0, 1.0));
  const auto r = s.analyze();
  EXPECT_EQ(r.trimmed_head, 0u);
  EXPECT_LT(r.mean, 98.0);  // warm-up drags the mean down
}

TEST(Measurement, SignificantlyAbove) {
  MeasurementResult a, b;
  a.mean = 100.0;
  a.ci_half_width = 2.0;
  b.mean = 90.0;
  b.ci_half_width = 2.0;
  EXPECT_TRUE(a.significantly_above(b));
  EXPECT_FALSE(b.significantly_above(a));
  b.mean = 97.0;
  EXPECT_FALSE(a.significantly_above(b));  // CIs overlap
}

TEST(Measurement, ToStringFormat) {
  MeasurementResult r;
  r.mean = 12.345;
  r.ci_half_width = 0.678;
  EXPECT_EQ(r.to_string(1), "12.3 ± 0.7");
  EXPECT_EQ(r.to_string(2), "12.35 ± 0.68");
}

TEST(Measurement, AddAllAppends) {
  MeasurementSession s;
  s.add_all({1.0, 2.0, 3.0});
  s.add(4.0);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.samples()[3], 4.0);
}

TEST(Measurement, ClearEmpties) {
  MeasurementSession s;
  s.add(1.0);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Measurement, ConfidenceLevelPropagates) {
  MeasurementSession::Options opts;
  opts.confidence_level = 0.99;
  util::Rng rng(5);
  MeasurementSession s(opts);
  for (int i = 0; i < 500; ++i) s.add(rng.normal());
  const auto r = s.analyze();
  EXPECT_DOUBLE_EQ(r.confidence_level, 0.99);
}

TEST(Measurement, HigherConfidenceWiderInterval) {
  util::Rng rng(6);
  std::vector<double> data;
  for (int i = 0; i < 500; ++i) data.push_back(rng.normal());
  MeasurementSession::Options o95, o99;
  o99.confidence_level = 0.99;
  MeasurementSession s95(o95), s99(o99);
  s95.add_all(data);
  s99.add_all(data);
  EXPECT_GT(s99.analyze().ci_half_width, s95.analyze().ci_half_width);
}

}  // namespace
}  // namespace capes::stats
