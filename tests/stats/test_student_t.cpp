#include "stats/student_t.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace capes::stats {
namespace {

TEST(IncompleteBeta, Boundaries) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetricCase) {
  // I_0.5(a, a) = 0.5 for any a.
  for (double a : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(incomplete_beta(a, a, 0.5), 0.5, 1e-10) << a;
  }
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.25, 0.7, 0.99}) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(IncompleteBeta, KnownValue) {
  // I_x(2, 2) = x^2 (3 - 2x).
  const double x = 0.3;
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, x), x * x * (3 - 2 * x), 1e-10);
}

TEST(StudentT, CdfAtZeroIsHalf) {
  for (double df : {1.0, 2.0, 5.0, 30.0, 100.0}) {
    EXPECT_NEAR(student_t_cdf(0.0, df), 0.5, 1e-12) << df;
  }
}

TEST(StudentT, CdfSymmetry) {
  for (double t : {0.5, 1.0, 2.5}) {
    EXPECT_NEAR(student_t_cdf(t, 7.0) + student_t_cdf(-t, 7.0), 1.0, 1e-10);
  }
}

TEST(StudentT, CdfMonotone) {
  double prev = 0.0;
  for (double t = -5.0; t <= 5.0; t += 0.25) {
    const double c = student_t_cdf(t, 4.0);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(StudentT, Df1IsCauchy) {
  // For df=1 (Cauchy), CDF(1) = 0.75.
  EXPECT_NEAR(student_t_cdf(1.0, 1.0), 0.75, 1e-8);
}

TEST(StudentT, KnownQuantiles) {
  // Classic t-table values (two-sided 95% -> p = 0.975).
  EXPECT_NEAR(student_t_ppf(0.975, 1.0), 12.706, 1e-2);
  EXPECT_NEAR(student_t_ppf(0.975, 5.0), 2.571, 1e-3);
  EXPECT_NEAR(student_t_ppf(0.975, 10.0), 2.228, 1e-3);
  EXPECT_NEAR(student_t_ppf(0.975, 30.0), 2.042, 1e-3);
  EXPECT_NEAR(student_t_ppf(0.95, 10.0), 1.812, 1e-3);
}

TEST(StudentT, LargeDfApproachesNormal) {
  // z_{0.975} = 1.95996.
  EXPECT_NEAR(student_t_ppf(0.975, 10000.0), 1.95996, 5e-3);
}

TEST(StudentT, PpfIsInverseOfCdf) {
  for (double p : {0.05, 0.2, 0.5, 0.8, 0.99}) {
    const double t = student_t_ppf(p, 8.0);
    EXPECT_NEAR(student_t_cdf(t, 8.0), p, 1e-7) << p;
  }
}

TEST(StudentT, PpfHalfIsZero) {
  EXPECT_DOUBLE_EQ(student_t_ppf(0.5, 3.0), 0.0);
}

TEST(StudentT, PpfInvalidInputsNan) {
  EXPECT_TRUE(std::isnan(student_t_ppf(0.0, 5.0)));
  EXPECT_TRUE(std::isnan(student_t_ppf(1.0, 5.0)));
  EXPECT_TRUE(std::isnan(student_t_ppf(0.5, 0.0)));
}

TEST(CiHalfWidth, MatchesManualFormula) {
  // n=16, sd=4 => hw = t_{0.975,15} * 4 / 4 = t = 2.131.
  EXPECT_NEAR(ci_half_width(4.0, 16.0), 2.131, 1e-2);
}

TEST(CiHalfWidth, ZeroForTinySamples) {
  EXPECT_DOUBLE_EQ(ci_half_width(5.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(ci_half_width(5.0, 0.0), 0.0);
}

TEST(CiHalfWidth, ShrinksWithN) {
  const double w10 = ci_half_width(2.0, 10.0);
  const double w100 = ci_half_width(2.0, 100.0);
  const double w1000 = ci_half_width(2.0, 1000.0);
  EXPECT_GT(w10, w100);
  EXPECT_GT(w100, w1000);
}

TEST(CiHalfWidth, WiderAtHigherConfidence) {
  EXPECT_GT(ci_half_width(1.0, 20.0, 0.99), ci_half_width(1.0, 20.0, 0.95));
  EXPECT_GT(ci_half_width(1.0, 20.0, 0.95), ci_half_width(1.0, 20.0, 0.90));
}

}  // namespace
}  // namespace capes::stats
