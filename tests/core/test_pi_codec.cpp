#include "core/pi_codec.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/varint.hpp"

namespace capes::core {
namespace {

void expect_decoded(const PiMessage& msg, std::size_t node, std::int64_t tick,
                    const std::vector<float>& pis, float tol = 1e-4f) {
  EXPECT_EQ(msg.node, node);
  EXPECT_EQ(msg.tick, tick);
  ASSERT_EQ(msg.pis.size(), pis.size());
  for (std::size_t i = 0; i < pis.size(); ++i) {
    EXPECT_NEAR(msg.pis[i], pis[i], tol) << "pi " << i;
  }
}

TEST(PiCodec, FirstMessageCarriesEverything) {
  PiEncoder enc(3, 4);
  PiDecoder dec(4);
  const std::vector<float> pis{0.5f, -0.25f, 1.0f, 0.0f};
  const auto msg = enc.encode(0, pis);
  auto out = dec.decode(msg);
  ASSERT_TRUE(out.has_value());
  expect_decoded(*out, 3, 0, pis);
}

TEST(PiCodec, UnchangedValuesNotRetransmitted) {
  PiEncoder enc(0, 8);
  const std::vector<float> pis(8, 0.75f);
  const auto first = enc.encode(0, pis);
  const auto second = enc.encode(1, pis);
  // Second message is just the header (node, tick, count=0).
  EXPECT_LT(second.size(), first.size());
  EXPECT_LE(second.size(), 3u);
}

TEST(PiCodec, OnlyChangedEntriesSent) {
  PiEncoder enc(0, 16);
  PiDecoder dec(16);
  std::vector<float> pis(16, 0.1f);
  dec.decode(enc.encode(0, pis));
  pis[7] = 0.9f;
  const auto msg = enc.encode(1, pis);
  // Header (~3 bytes) + one entry (gap + delta), far less than 16 entries.
  EXPECT_LE(msg.size(), 8u);
  auto out = dec.decode(msg);
  ASSERT_TRUE(out.has_value());
  expect_decoded(*out, 0, 1, pis);
}

TEST(PiCodec, StreamReconstructionOverManyTicks) {
  PiEncoder enc(2, 9);
  PiDecoder dec(9);
  util::Rng rng(1);
  std::vector<float> pis(9, 0.0f);
  for (std::int64_t t = 0; t < 200; ++t) {
    // Random walk on a random subset of PIs.
    for (std::size_t i = 0; i < pis.size(); ++i) {
      if (rng.chance(0.4)) {
        pis[i] += static_cast<float>(rng.uniform(-0.05, 0.05));
      }
    }
    auto out = dec.decode(enc.encode(t, pis));
    ASSERT_TRUE(out.has_value()) << t;
    expect_decoded(*out, 2, t, pis, 2e-4f);
  }
}

TEST(PiCodec, QuantizationErrorBounded) {
  PiEncoder enc(0, 1);
  PiDecoder dec(1);
  for (float v : {0.123456f, -0.999999f, 3.14159f}) {
    PiEncoder e(0, 1);
    PiDecoder d(1);
    auto out = d.decode(e.encode(0, {v}));
    ASSERT_TRUE(out.has_value());
    EXPECT_NEAR(out->pis[0], v, 0.5f / static_cast<float>(kPiQuantScale) + 1e-6f);
  }
}

TEST(PiCodec, SubQuantumChangesSuppressed) {
  PiEncoder enc(0, 2);
  std::vector<float> pis{0.5f, 0.5f};
  enc.encode(0, pis);
  pis[0] += 1e-6f;  // below the quantization step
  const auto msg = enc.encode(1, pis);
  EXPECT_LE(msg.size(), 3u);
}

TEST(PiCodec, BytesAccounting) {
  PiEncoder enc(0, 4);
  EXPECT_EQ(enc.total_bytes(), 0u);
  EXPECT_EQ(enc.messages(), 0u);
  const auto m1 = enc.encode(0, {1, 2, 3, 4});
  const auto m2 = enc.encode(1, {1, 2, 3, 4});
  EXPECT_EQ(enc.total_bytes(), m1.size() + m2.size());
  EXPECT_EQ(enc.messages(), 2u);
}

TEST(PiCodec, DecodeRejectsGarbage) {
  PiDecoder dec(4);
  EXPECT_FALSE(dec.decode({0x80, 0x80, 0x80}).has_value());  // truncated varint
}

TEST(PiCodec, DecodeRejectsOutOfRangeIndex) {
  // Hand-build a message claiming an entry at index 100 of a 4-wide vector.
  std::vector<std::uint8_t> msg;
  util::put_varint(msg, 0);    // node
  util::put_varint(msg, 0);    // tick
  util::put_varint(msg, 1);    // count
  util::put_varint(msg, 100);  // index gap
  util::put_svarint(msg, 5);
  PiDecoder dec(4);
  EXPECT_FALSE(dec.decode(msg).has_value());
}

TEST(PiCodec, DecodeRejectsExcessCount) {
  std::vector<std::uint8_t> msg;
  util::put_varint(msg, 0);
  util::put_varint(msg, 0);
  util::put_varint(msg, 50);  // count exceeds vector width
  PiDecoder dec(4);
  EXPECT_FALSE(dec.decode(msg).has_value());
}

TEST(PiCodec, SteadyStateMessageSmall) {
  // Table 2: ~186 B/s for 44 PIs. With slowly-drifting normalized PIs the
  // per-tick message must stay well under 4.2 B/PI.
  PiEncoder enc(0, 44);
  PiDecoder dec(44);
  util::Rng rng(7);
  std::vector<float> pis(44);
  for (auto& v : pis) v = static_cast<float>(rng.uniform(0, 1));
  enc.encode(0, pis);
  std::uint64_t bytes = 0;
  const int ticks = 100;
  for (int t = 1; t <= ticks; ++t) {
    for (auto& v : pis) v += static_cast<float>(rng.uniform(-0.01, 0.01));
    bytes += enc.encode(t, pis).size();
  }
  const double per_tick = static_cast<double>(bytes) / ticks;
  EXPECT_LT(per_tick, 200.0);
  EXPECT_GT(per_tick, 40.0);  // sanity: actually carrying data
}

}  // namespace
}  // namespace capes::core
