// Table 1 fidelity test: the paper preset must encode every hyperparameter
// row verbatim (this is the reproduction of Table 1).

#include "core/presets.hpp"

#include <gtest/gtest.h>

namespace capes::core {
namespace {

TEST(PaperPreset, Table1Hyperparameters) {
  const auto p = paper_preset();
  // action tick length: 1 (one action per second)
  EXPECT_EQ(p.capes.action_ticks_per_sample, 1u);
  // sampling tick length: 1 s
  EXPECT_DOUBLE_EQ(p.capes.sampling_tick_s, 1.0);
  // epsilon initial value: 1
  EXPECT_DOUBLE_EQ(p.capes.engine.epsilon.initial, 1.0);
  // epsilon final value: 0.05
  EXPECT_DOUBLE_EQ(p.capes.engine.epsilon.final_value, 0.05);
  // discount rate gamma: 0.99
  EXPECT_FLOAT_EQ(p.capes.engine.dqn.gamma, 0.99f);
  // initial exploration period: 2 h
  EXPECT_EQ(p.capes.engine.epsilon.anneal_ticks, 7200);
  // minibatch size: 32
  EXPECT_EQ(p.capes.engine.minibatch_size, 32u);
  // missing entry tolerance: 20%
  EXPECT_DOUBLE_EQ(p.capes.replay.missing_tolerance, 0.2);
  // number of hidden layers: 2, sized like the input
  EXPECT_EQ(p.capes.engine.dqn.num_hidden_layers, 2u);
  EXPECT_EQ(p.capes.engine.dqn.hidden_size, 0u);  // 0 = same as input
  // Adam learning rate: 0.0001
  EXPECT_FLOAT_EQ(p.capes.engine.dqn.learning_rate, 1e-4f);
  // sampling ticks per observation: 10
  EXPECT_EQ(p.capes.replay.ticks_per_observation, 10u);
  // target network update rate alpha: 0.01
  EXPECT_FLOAT_EQ(p.capes.engine.dqn.target_update_alpha, 0.01f);
}

TEST(PaperPreset, TestbedTopology) {
  const auto p = paper_preset();
  // §4.2: 4 servers, 5 clients, stripe count 4, 1 MB stripe size.
  EXPECT_EQ(p.cluster.num_clients, 5u);
  EXPECT_EQ(p.cluster.num_servers, 4u);
  EXPECT_EQ(p.cluster.stripe_size, 1u << 20);
  // ~500 MB/s measured aggregate network.
  EXPECT_DOUBLE_EQ(p.cluster.network.fabric_bandwidth_mbs, 500.0);
  // 113 / 106 MB/s disk.
  EXPECT_DOUBLE_EQ(p.cluster.disk.seq_read_mbs, 113.0);
  EXPECT_DOUBLE_EQ(p.cluster.disk.seq_write_mbs, 106.0);
}

TEST(PaperPreset, TrainingDurations) {
  const auto p = paper_preset();
  EXPECT_EQ(p.train_ticks_short, 12 * 3600);  // 12 h at 1 Hz
  EXPECT_EQ(p.train_ticks_long, 24 * 3600);   // 24 h
  EXPECT_EQ(p.eval_ticks, 2 * 3600);          // 2 h measurement phases
}

TEST(FastPreset, PreservesStructure) {
  const auto p = fast_preset();
  const auto paper = paper_preset();
  // Structure-preserving scaling: same epsilon endpoints, same minibatch,
  // same architecture depth, same tick semantics.
  EXPECT_DOUBLE_EQ(p.capes.engine.epsilon.initial,
                   paper.capes.engine.epsilon.initial);
  EXPECT_DOUBLE_EQ(p.capes.engine.epsilon.final_value,
                   paper.capes.engine.epsilon.final_value);
  EXPECT_EQ(p.capes.engine.minibatch_size, paper.capes.engine.minibatch_size);
  EXPECT_EQ(p.capes.engine.dqn.num_hidden_layers, 2u);
  EXPECT_DOUBLE_EQ(p.capes.sampling_tick_s, 1.0);
  EXPECT_EQ(p.cluster.num_clients, 5u);
  EXPECT_EQ(p.cluster.num_servers, 4u);
}

TEST(FastPreset, TimeAxisScaled) {
  const auto p = fast_preset();
  // "24 h" is twice "12 h"; exploration fits inside the short session.
  EXPECT_EQ(p.train_ticks_long, 2 * p.train_ticks_short);
  EXPECT_LT(p.capes.engine.epsilon.anneal_ticks, p.train_ticks_short);
  EXPECT_GT(p.eval_ticks, 100);
}

TEST(FastPreset, SeedChangesClusterSeed) {
  const auto a = fast_preset(1);
  const auto b = fast_preset(2);
  EXPECT_NE(a.cluster.seed, b.cluster.seed);
  EXPECT_NE(a.capes.engine.dqn.seed, b.capes.engine.dqn.seed);
}

}  // namespace
}  // namespace capes::core
