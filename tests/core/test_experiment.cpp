// The Experiment facade: builder validation, observer hooks, CSV sink,
// the §A.4 run() workflow, and — most importantly — equivalence with a
// hand-wired Simulator + Cluster + CapesSystem stack at the same seed.

#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "../core/mock_adapter.hpp"
#include "workload/random_rw.hpp"

namespace capes::core {
namespace {

using testing::MockAdapter;

CapesOptions tiny_options() {
  CapesOptions o;
  o.replay.ticks_per_observation = 3;
  o.engine.dqn.hidden_size = 16;
  o.engine.minibatch_size = 4;
  o.engine.epsilon.anneal_ticks = 50;
  o.reward_scale_mbs = 100.0;
  return o;
}

EvaluationPreset tiny_preset() {
  auto p = fast_preset(7);
  p.capes.engine.epsilon.anneal_ticks = 60;
  return p;
}

// ---------------------------------------------------------------------------
// Builder validation
// ---------------------------------------------------------------------------

TEST(ExperimentBuilder, RejectsUnknownWorkload) {
  std::string error;
  auto exp = Experiment::builder().workload("not_a_workload").build(&error);
  EXPECT_EQ(exp, nullptr);
  EXPECT_NE(error.find("unknown workload"), std::string::npos) << error;
}

TEST(ExperimentBuilder, RejectsInvalidWorkloadSpec) {
  std::string error;
  auto exp = Experiment::builder().workload("random:2.0").build(&error);
  EXPECT_EQ(exp, nullptr);
  EXPECT_NE(error.find("[0, 1]"), std::string::npos) << error;
}

TEST(ExperimentBuilder, RequiresWorkloadOrAdapter) {
  std::string error;
  auto exp = Experiment::builder().build(&error);
  EXPECT_EQ(exp, nullptr);
  EXPECT_NE(error.find("no target system"), std::string::npos) << error;
}

TEST(ExperimentBuilder, RejectsWorkloadCombinedWithAdapter) {
  MockAdapter adapter(2, 3);
  std::string error;
  auto exp = Experiment::builder()
                 .adapter(adapter)
                 .workload("random:0.5")
                 .build(&error);
  EXPECT_EQ(exp, nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(ExperimentBuilder, RejectsLustreFlagsWithAdapter) {
  MockAdapter adapter(2, 3);
  std::string error;
  auto exp = Experiment::builder()
                 .adapter(adapter)
                 .tune_write_cache()
                 .build(&error);
  EXPECT_EQ(exp, nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(ExperimentBuilder, RemainsUsableAfterFailedBuild) {
  std::size_t phases = 0;
  auto builder = Experiment::builder()
                     .workload("random:9")  // invalid read fraction
                     .on_phase_end([&](const PhaseReport&) { ++phases; });
  std::string error;
  EXPECT_EQ(builder.build(&error), nullptr);
  // Correct the spec and retry with the same builder: the observers must
  // have survived the failed attempt.
  builder.workload("random:0.9");
  auto exp = builder.build(&error);
  ASSERT_NE(exp, nullptr) << error;
  exp->run_baseline(3);
  EXPECT_EQ(phases, 1u);
}

TEST(ExperimentBuilder, ReusableAfterSuccessfulBuild) {
  std::size_t ticks = 0;
  auto builder = Experiment::builder()
                     .workload("random:0.5")
                     .warmup_seconds(1)
                     .on_tick([&](const TickEvent&) { ++ticks; });
  auto first = builder.build();
  ASSERT_NE(first, nullptr);
  first->run_baseline(3);
  EXPECT_EQ(ticks, 3u);
  // Observers are copied into each build, not consumed by the first one.
  auto second = builder.build();
  ASSERT_NE(second, nullptr);
  second->run_baseline(3);
  EXPECT_EQ(ticks, 6u);
}

TEST(ExperimentBuilder, SeedWinsOverCapesOptions) {
  MockAdapter adapter(2, 3);
  auto exp = Experiment::builder()
                 .adapter(adapter)
                 .capes_options(tiny_options())
                 .seed(5)
                 .build();
  ASSERT_NE(exp, nullptr);
  EXPECT_EQ(exp->preset().capes.engine.dqn.seed, 5u);
  EXPECT_EQ(exp->preset().capes.engine.seed, 5u ^ 0x5eedf00d);
}

TEST(ExperimentBuilder, RejectsMismatchedPisPerNode) {
  // The shared replay DB needs uniform PI rows; disagreement must be a
  // build() error (Release builds skip CapesSystem's asserts).
  MockAdapter a(2, 3), b(2, 4);
  std::string error;
  auto exp = Experiment::builder()
                 .adapter(a)
                 .add_cluster(b)
                 .capes_options(tiny_options())
                 .build(&error);
  EXPECT_EQ(exp, nullptr);
  EXPECT_NE(error.find("pis_per_node"), std::string::npos) << error;
  // Bundled clusters (9 PIs) vs. a 3-PI custom adapter: same rejection.
  auto mixed = Experiment::builder()
                   .workload("random:0.5")
                   .add_cluster(a)
                   .build(&error);
  EXPECT_EQ(mixed, nullptr);
  EXPECT_NE(error.find("pis_per_node"), std::string::npos) << error;
}

TEST(ExperimentBuilder, RejectsSharedAdapterAcrossDomains) {
  // One target system per domain: a shared adapter would double-read the
  // per-tick sampling deltas (and race under worker threads).
  MockAdapter a(2, 3);
  std::string error;
  auto exp = Experiment::builder()
                 .adapter(a)
                 .add_cluster(a)
                 .capes_options(tiny_options())
                 .build(&error);
  EXPECT_EQ(exp, nullptr);
  EXPECT_NE(error.find("adapter"), std::string::npos) << error;
}

TEST(ExperimentBuilder, RejectsMissingConfigFile) {
  std::string error;
  auto exp = Experiment::builder()
                 .workload("random:0.5")
                 .config_file("/nonexistent/capes.conf")
                 .build(&error);
  EXPECT_EQ(exp, nullptr);
  EXPECT_NE(error.find("config"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Observers and sinks
// ---------------------------------------------------------------------------

TEST(Experiment, ObserversFireWithPhaseAndTick) {
  MockAdapter adapter(2, 3);
  std::vector<TickEvent> ticks;
  std::vector<PhaseReport> phases;
  auto exp = Experiment::builder()
                 .adapter(adapter)
                 .capes_options(tiny_options())
                 .on_tick([&](const TickEvent& e) { ticks.push_back(e); })
                 .on_phase_end([&](const PhaseReport& r) { phases.push_back(r); })
                 .build();
  ASSERT_NE(exp, nullptr);

  exp->run_baseline(5);
  ASSERT_EQ(ticks.size(), 5u);
  EXPECT_EQ(ticks[0].phase, RunPhase::kBaseline);
  EXPECT_EQ(ticks[0].tick, 0);
  EXPECT_EQ(ticks[4].tick, 4);
  // MockAdapter baseline: knob 50 -> throughput 100 - |50-80| = 70.
  EXPECT_NEAR(ticks[0].throughput_mbs, 70.0, 1e-9);
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].phase, RunPhase::kBaseline);
  EXPECT_EQ(phases[0].label, "baseline");
  EXPECT_EQ(phases[0].result.throughput.count(), 5u);
}

TEST(Experiment, TrainStepObserverFiresDuringTrainingOnly) {
  MockAdapter adapter(2, 3);
  std::size_t events = 0;
  std::size_t last_total = 0;
  auto exp = Experiment::builder()
                 .adapter(adapter)
                 .capes_options(tiny_options())
                 .on_train_step([&](const TrainStepEvent& e) {
                   ++events;
                   last_total = e.total_steps;
                 })
                 .build();
  ASSERT_NE(exp, nullptr);
  exp->run_baseline(10);
  EXPECT_EQ(events, 0u);
  const auto training = exp->run_training(30);
  EXPECT_GT(events, 0u);
  EXPECT_EQ(last_total, training.result.train_steps);
}

TEST(Experiment, CsvSinkWritesOneFilePerPhase) {
  const auto prefix =
      (std::filesystem::temp_directory_path() / "capes_exp_csv").string();
  MockAdapter adapter(2, 3);
  auto exp = Experiment::builder()
                 .adapter(adapter)
                 .capes_options(tiny_options())
                 .on_phase_end(csv_phase_sink(prefix))
                 .build();
  ASSERT_NE(exp, nullptr);
  exp->run_baseline(4);

  const std::string path = prefix + "_baseline.csv";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "tick,throughput_mbs,latency_ms,reward");
  std::size_t rows = 0;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 4u);
  std::filesystem::remove(path);
}

TEST(RunResultCsv, FormatsOneRowPerTick) {
  RunResult result;
  result.start_tick = 10;
  result.throughput.add(1.5);
  result.throughput.add(2.5);
  result.latency_ms.add(3.0);
  result.latency_ms.add(4.0);
  result.rewards = {0.1, 0.2};
  EXPECT_EQ(run_result_csv(result),
            "tick,throughput_mbs,latency_ms,reward\n"
            "10,1.5,3,0.1\n"
            "11,2.5,4,0.2\n");
}

// ---------------------------------------------------------------------------
// Workflow + equivalence with the hand-wired stack
// ---------------------------------------------------------------------------

TEST(Experiment, RunExecutesFullWorkflow) {
  MockAdapter adapter(2, 3);
  auto exp = Experiment::builder()
                 .adapter(adapter)
                 .capes_options(tiny_options())
                 .train_ticks(40)
                 .eval_ticks(15)
                 .build();
  ASSERT_NE(exp, nullptr);
  const auto report = exp->run();
  ASSERT_EQ(report.phases.size(), 3u);
  EXPECT_EQ(report.phases[0].phase, RunPhase::kTraining);
  EXPECT_EQ(report.phases[1].phase, RunPhase::kBaseline);
  EXPECT_EQ(report.phases[2].phase, RunPhase::kTuned);
  EXPECT_EQ(report.phases[0].result.throughput.count(), 40u);
  EXPECT_EQ(report.phases[1].result.throughput.count(), 15u);
  ASSERT_EQ(report.parameter_names.size(), 1u);
  EXPECT_EQ(report.parameter_names[0], "knob");
  ASSERT_EQ(report.final_parameters.size(), 1u);
  // find() returns the latest phase of each kind.
  EXPECT_EQ(report.find(RunPhase::kBaseline), &report.phases[1]);
  EXPECT_EQ(report.find(RunPhase::kIdle), nullptr);

  // take_report() drains the history but keeps the parameter state.
  const auto taken = exp->take_report();
  EXPECT_EQ(taken.phases.size(), 3u);
  EXPECT_TRUE(exp->report().phases.empty());
  EXPECT_EQ(exp->report().parameter_names.size(), 1u);
  EXPECT_EQ(exp->report().final_parameters.size(), 1u);
}

TEST(Experiment, MatchesHandWiredStackAtSameSeed) {
  const auto preset = tiny_preset();

  // Hand-wired reference: the exact pre-facade incantation.
  double ref_baseline = 0.0, ref_tuned = 0.0, ref_param = 0.0;
  {
    sim::Simulator sim;
    lustre::Cluster cluster(sim, preset.cluster);
    workload::RandomRwOptions wopts;
    wopts.read_fraction = 0.1;
    workload::RandomRw wl(cluster, wopts);
    wl.start();
    CapesSystem capes(sim, cluster, preset.capes);
    sim.run_until(sim::seconds(3));
    capes.run_training(80);
    ref_baseline = capes.run_baseline(40).analyze().mean;
    ref_tuned = capes.run_tuned(40).analyze().mean;
    ref_param = capes.parameter_values()[0];
  }

  auto exp = Experiment::builder()
                 .preset(preset)
                 .workload("random:0.1")
                 .warmup_seconds(3)
                 .build();
  ASSERT_NE(exp, nullptr);
  exp->run_training(80);
  const auto baseline = exp->run_baseline(40);
  const auto tuned = exp->run_tuned(40);

  // Simulation and DRL are fully seed-deterministic, so the facade must
  // reproduce the hand-wired numbers exactly, not approximately.
  EXPECT_DOUBLE_EQ(baseline.throughput.mean, ref_baseline);
  EXPECT_DOUBLE_EQ(tuned.throughput.mean, ref_tuned);
  EXPECT_DOUBLE_EQ(exp->parameter_values()[0], ref_param);
}

TEST(Experiment, SeedAppliesOnTopOfExplicitPreset) {
  // .preset(fast_preset()).seed(9) must equal fast_preset(9).
  auto measure = [](ExperimentBuilder builder) {
    auto exp = builder.workload("random:0.5").warmup_seconds(2).build();
    EXPECT_NE(exp, nullptr);
    return exp->run_baseline(25).throughput.mean;
  };
  const double via_seed_call =
      measure(Experiment::builder().preset(fast_preset()).seed(9));
  const double via_preset = measure(Experiment::builder().preset(fast_preset(9)));
  const double default_seed = measure(Experiment::builder().preset(fast_preset()));
  EXPECT_DOUBLE_EQ(via_seed_call, via_preset);
  EXPECT_NE(via_seed_call, default_seed);
}

// ---------------------------------------------------------------------------
// Multi-cluster control domains
// ---------------------------------------------------------------------------

TEST(Experiment, OldApiSingleClusterBitIdenticalToOneDomainBuild) {
  // The acceptance pin for the control-domain refactor: a single-cluster
  // experiment built through the pre-domain API must produce bit-identical
  // PhaseReports to the equivalent explicit one-domain build at the same
  // seed. (The old-API-vs-pre-refactor identity is additionally pinned by
  // MatchesHandWiredStackAtSameSeed above.)
  auto run = [](ExperimentBuilder builder) {
    auto exp = builder.warmup_seconds(2).build();
    EXPECT_NE(exp, nullptr);
    exp->run_training(80);
    const auto baseline = exp->run_baseline(30);
    const auto tuned = exp->run_tuned(30);
    std::vector<double> out = baseline.result.rewards;
    out.insert(out.end(), tuned.result.rewards.begin(),
               tuned.result.rewards.end());
    out.push_back(baseline.throughput.mean);
    out.push_back(tuned.throughput.mean);
    const auto& params = exp->parameter_values();
    out.insert(out.end(), params.begin(), params.end());
    return out;
  };
  const auto via_old_api =
      run(Experiment::builder().preset(tiny_preset()).workload("random:0.1"));
  const auto via_add_cluster =
      run(Experiment::builder().preset(tiny_preset()).add_cluster("random:0.1"));
  EXPECT_EQ(via_old_api, via_add_cluster);
}

TEST(Experiment, FourDomainsTrainOneSharedBrain) {
  auto preset = tiny_preset();
  auto exp = Experiment::builder()
                 .preset(preset)
                 .workload("random:0.3")
                 .add_cluster("random:0.3")
                 .add_cluster("random:0.3")
                 .add_cluster("random:0.3")
                 .warmup_seconds(2)
                 .build();
  ASSERT_NE(exp, nullptr);
  EXPECT_EQ(exp->num_domains(), 4u);

  // Acceptance: observation size =
  // num_domains * num_nodes * pis_per_node * ticks_per_observation.
  auto& system = exp->system();
  const std::size_t nodes_per_domain = system.domain(0).num_nodes();
  EXPECT_EQ(system.replay().observation_size(),
            4u * nodes_per_domain * lustre::Cluster::kPisPerNode *
                preset.capes.replay.ticks_per_observation);
  // One shared DQN sized to the concatenated observation and the
  // composite action space (NULL + 2 per parameter per domain).
  EXPECT_EQ(system.engine().dqn().options().observation_size,
            system.replay().observation_size());
  EXPECT_EQ(system.action_space().num_actions(),
            1 + 4 * system.domain(0).num_slice_actions());

  const auto training = exp->run_training(60);
  EXPECT_GT(training.result.train_steps, 0u);
  // Replicated clusters derive distinct seeds, so the domains do not
  // evolve in lockstep even with identical workload specs.
  EXPECT_NE(system.domain(0).last_perf().throughput_mbs(),
            system.domain(1).last_perf().throughput_mbs());
  // Reports carry the namespaced composite parameter vector.
  EXPECT_EQ(exp->report().parameter_names.size(), 8u);
  EXPECT_EQ(exp->report().parameter_names[0], "c0.max_rpcs_in_flight");
  EXPECT_EQ(exp->report().parameter_names[2], "c1.max_rpcs_in_flight");
  EXPECT_EQ(exp->report().final_parameters.size(), 8u);
  EXPECT_EQ(exp->workload_name(),
            "random_rw(r=0.3)+random_rw(r=0.3)+random_rw(r=0.3)+random_rw(r=0.3)");
}

TEST(Experiment, AddClusterAcceptsCustomAdapterDomains) {
  MockAdapter a(2, 3), b(2, 3);
  auto exp = Experiment::builder()
                 .adapter(a)
                 .add_cluster(b)
                 .capes_options(tiny_options())
                 .build();
  ASSERT_NE(exp, nullptr);
  EXPECT_EQ(exp->num_domains(), 2u);
  EXPECT_EQ(exp->cluster(), nullptr);
  EXPECT_EQ(exp->workload_name(), "custom+custom");
  exp->run_baseline(5);
  EXPECT_GT(a.collect_calls, 0);
  EXPECT_GT(b.collect_calls, 0);
}

TEST(Experiment, WorkerThreadsMatchSingleThreadedRun) {
  auto run = [](std::size_t threads) {
    auto exp = Experiment::builder()
                   .preset(tiny_preset())
                   .workload("random:0.2")
                   .add_cluster("seqwrite")
                   .worker_threads(threads)
                   .warmup_seconds(2)
                   .build();
    EXPECT_NE(exp, nullptr);
    exp->run_training(60);
    auto tuned = exp->run_tuned(20);
    std::vector<double> out = tuned.result.rewards;
    const auto& params = exp->parameter_values();
    out.insert(out.end(), params.begin(), params.end());
    return out;
  };
  EXPECT_EQ(run(0), run(3));
}

// ---------------------------------------------------------------------------
// Control-network transports
// ---------------------------------------------------------------------------

TEST(ExperimentBuilder, RejectsMalformedTransportSpec) {
  std::string error;
  auto exp = Experiment::builder()
                 .workload("random:0.5")
                 .transport("carrier-pigeon")
                 .build(&error);
  EXPECT_EQ(exp, nullptr);
  EXPECT_NE(error.find("unknown transport"), std::string::npos) << error;
  auto exp2 = Experiment::builder()
                  .workload("random:0.5")
                  .transport("sim:drop=1.5")
                  .build(&error);
  EXPECT_EQ(exp2, nullptr);
  EXPECT_NE(error.find("drop"), std::string::npos) << error;
}

namespace {

/// Everything seed-deterministic a run produces, flattened for equality
/// comparison: per-tick rewards, throughput means, final parameters.
std::vector<double> run_fingerprint(ExperimentBuilder builder) {
  auto exp = builder.warmup_seconds(2).build();
  EXPECT_NE(exp, nullptr);
  exp->run_training(80);
  const auto baseline = exp->run_baseline(30);
  const auto tuned = exp->run_tuned(30);
  std::vector<double> out = baseline.result.rewards;
  out.insert(out.end(), tuned.result.rewards.begin(),
             tuned.result.rewards.end());
  out.push_back(baseline.throughput.mean);
  out.push_back(tuned.throughput.mean);
  const auto& params = exp->parameter_values();
  out.insert(out.end(), params.begin(), params.end());
  return out;
}

}  // namespace

TEST(Experiment, SyncTransportBitIdenticalToDefaultBuild) {
  // The refactor's acceptance pin: an explicit .transport("sync") — and
  // therefore the bus-channel plumbing as a whole — must reproduce the
  // no-.transport() build exactly. (That build in turn equals the
  // pre-facade hand-wired stack via MatchesHandWiredStackAtSameSeed, so
  // the chain pins sync mode to the pre-refactor goldens.)
  const auto via_default = run_fingerprint(
      Experiment::builder().preset(tiny_preset()).workload("random:0.1"));
  const auto via_sync = run_fingerprint(Experiment::builder()
                                            .preset(tiny_preset())
                                            .workload("random:0.1")
                                            .transport("sync"));
  EXPECT_EQ(via_default, via_sync);
}

TEST(Experiment, SimTransportDeterministicAcrossRunsAndThreads) {
  auto builder = [](std::size_t threads) {
    return Experiment::builder()
        .preset(tiny_preset())
        .workload("random:0.2")
        .add_cluster("seqwrite")
        .transport("sim:latency_ticks=2,jitter=3,drop=0.1")
        .worker_threads(threads);
  };
  const auto first = run_fingerprint(builder(0));
  const auto second = run_fingerprint(builder(0));
  const auto pooled = run_fingerprint(builder(4));
  EXPECT_EQ(first, second);  // deterministic across runs
  EXPECT_EQ(first, pooled);  // and across worker-thread counts
}

TEST(Experiment, SimTransportSeedSelectsTheNetworkRealization) {
  auto fingerprint = [](const std::string& spec) {
    return run_fingerprint(Experiment::builder()
                               .preset(tiny_preset())
                               .workload("random:0.2")
                               .transport(spec));
  };
  EXPECT_NE(fingerprint("sim:drop=0.2,seed=1"),
            fingerprint("sim:drop=0.2,seed=2"));
}

TEST(Experiment, SimTransportWithSustainedDropStillTrainsAndReportsIt) {
  // The ReplayDb missing-tolerance satellite: under sustained drop the
  // observation stack has holes, minibatches skip incomplete ticks, and
  // training must still make steps — with the loss visible in the
  // PhaseReport counters.
  auto exp = Experiment::builder()
                 .preset(tiny_preset())
                 .workload("random:0.1")
                 .transport("sim:latency_ticks=1,jitter=2,drop=0.15")
                 .warmup_seconds(2)
                 .build();
  ASSERT_NE(exp, nullptr);
  const auto training = exp->run_training(120);
  EXPECT_GT(training.result.train_steps, 0u);  // still trains
  EXPECT_GT(training.result.messages_dropped, 0u);
  EXPECT_GT(training.result.messages_late, 0u);
  const auto baseline = exp->run_baseline(30);
  EXPECT_GT(baseline.result.messages_dropped, 0u);  // counters are per phase
  // The sync default reports clean channels.
  auto sync_exp = Experiment::builder()
                      .preset(tiny_preset())
                      .workload("random:0.1")
                      .warmup_seconds(2)
                      .build();
  ASSERT_NE(sync_exp, nullptr);
  const auto sync_training = sync_exp->run_training(30);
  EXPECT_EQ(sync_training.result.messages_dropped, 0u);
  EXPECT_EQ(sync_training.result.messages_late, 0u);
}

TEST(ExperimentBuilder, RejectsUnknownTransportSchemeInConfigFile) {
  // A typo'd scheme in a conf file must be a build() error, not a
  // silent perfect-network fallback (same bar as the --transport path).
  const auto path =
      (std::filesystem::temp_directory_path() / "capes_transport.conf")
          .string();
  {
    std::ofstream out(path);
    out << "capes.transport = simulated\n";
  }
  std::string error;
  auto exp = Experiment::builder()
                 .workload("random:0.5")
                 .config_file(path)
                 .build(&error);
  EXPECT_EQ(exp, nullptr);
  EXPECT_NE(error.find("capes.transport"), std::string::npos) << error;
  // The valid schemes still pass through the same file.
  {
    std::ofstream out(path);
    out << "capes.transport = sim\ncapes.transport.drop = 0.1\n";
  }
  auto sim_exp = Experiment::builder()
                     .workload("random:0.5")
                     .config_file(path)
                     .build(&error);
  ASSERT_NE(sim_exp, nullptr) << error;
  EXPECT_EQ(sim_exp->preset().capes.transport.kind, bus::TransportKind::kSim);
  EXPECT_DOUBLE_EQ(sim_exp->preset().capes.transport.drop, 0.1);
  std::filesystem::remove(path);
}

TEST(Experiment, SwitchWorkloadOnSpecificDomain) {
  auto exp = Experiment::builder()
                 .preset(tiny_preset())
                 .workload("random:0.1")
                 .add_cluster("random:0.9")
                 .warmup_seconds(2)
                 .build();
  ASSERT_NE(exp, nullptr);
  exp->run_training(30);

  std::string error;
  EXPECT_FALSE(exp->switch_workload(5, "seqwrite", &error));  // no such domain
  ASSERT_TRUE(exp->switch_workload(1, "seqwrite", &error)) << error;
  EXPECT_EQ(exp->workload_name(), "random_rw(r=0.1)+seq_write");
  const auto after = exp->run_training(20);
  EXPECT_EQ(after.result.throughput.count(), 20u);
}

TEST(Experiment, SwitchWorkloadRejectsAdapterDomain) {
  MockAdapter a(2, 3), b(2, 3);
  auto exp = Experiment::builder()
                 .adapter(a)
                 .add_cluster(b)
                 .capes_options(tiny_options())
                 .build();
  ASSERT_NE(exp, nullptr);
  std::string error;
  EXPECT_FALSE(exp->switch_workload(1, "seqwrite", &error));
  EXPECT_NE(error.find("bundled"), std::string::npos) << error;
}

TEST(Experiment, SwitchWorkloadSwapsGeneratorAndBumpsEpsilon) {
  auto exp = Experiment::builder()
                 .preset(tiny_preset())
                 .workload("random:0.1")
                 .warmup_seconds(2)
                 .build();
  ASSERT_NE(exp, nullptr);
  exp->run_training(80);
  const std::string before = exp->workload_name();

  std::string error;
  EXPECT_FALSE(exp->switch_workload("nope", &error));
  EXPECT_EQ(exp->workload_name(), before);  // failed switch keeps the old one

  ASSERT_TRUE(exp->switch_workload("random:0.9,seed=5", &error)) << error;
  EXPECT_NE(exp->workload_name(), before);
  auto& engine = exp->system().engine();
  // §3.6: the bump pushes evaluation-time epsilon to the bump value.
  EXPECT_GT(engine.current_epsilon(engine.training_ticks(), true), 0.1);
  // The swapped-in workload keeps the run going.
  const auto after = exp->run_training(30);
  EXPECT_EQ(after.result.throughput.count(), 30u);
}

}  // namespace
}  // namespace capes::core
