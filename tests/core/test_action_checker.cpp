#include "core/action_checker.hpp"

#include <gtest/gtest.h>

namespace capes::core {
namespace {

rl::ActionSpace make_space() {
  rl::TunableParameter cwnd{"cwnd", 1.0, 256.0, 8.0, 8.0};
  rl::TunableParameter rate{"rate", 100.0, 4000.0, 100.0, 4000.0};
  return rl::ActionSpace({cwnd, rate});
}

TEST(ActionChecker, NullActionAlwaysPasses) {
  auto space = make_space();
  ActionChecker checker(space);
  checker.add_rule("deny all", [](const std::vector<double>&) { return false; });
  std::vector<double> values{8.0, 4000.0};
  EXPECT_TRUE(checker.check(space.decode(0), values));
  EXPECT_EQ(checker.vetoed_actions(), 0u);
}

TEST(ActionChecker, NoRulesPassesEverything) {
  auto space = make_space();
  ActionChecker checker(space);
  std::vector<double> values{8.0, 4000.0};
  for (std::size_t a = 0; a < space.num_actions(); ++a) {
    EXPECT_TRUE(checker.check(space.decode(a), values));
  }
}

TEST(ActionChecker, RuleSeesPostActionValues) {
  auto space = make_space();
  ActionChecker checker(space);
  std::vector<double> observed;
  checker.add_rule("capture", [&](const std::vector<double>& v) {
    observed = v;
    return true;
  });
  std::vector<double> values{8.0, 4000.0};
  checker.check(space.decode(1), values);  // +cwnd
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_DOUBLE_EQ(observed[0], 16.0);
  // check() must not mutate the caller's values.
  EXPECT_DOUBLE_EQ(values[0], 8.0);
}

TEST(ActionChecker, VetoCountsAndBlocks) {
  auto space = make_space();
  ActionChecker checker(space);
  // The paper's example: the congestion window should never go below 8.
  checker.add_rule("cwnd >= 8", [](const std::vector<double>& v) {
    return v[0] >= 8.0;
  });
  std::vector<double> values{8.0, 4000.0};
  EXPECT_FALSE(checker.check(space.decode(2), values));  // -cwnd -> 1 (clamped)
  EXPECT_EQ(checker.vetoed_actions(), 1u);
  EXPECT_TRUE(checker.check(space.decode(1), values));   // +cwnd -> 16
}

TEST(ActionChecker, MultipleRulesAllMustPass) {
  auto space = make_space();
  ActionChecker checker(space);
  checker.add_rule("r1", [](const std::vector<double>& v) { return v[0] <= 200; });
  checker.add_rule("r2", [](const std::vector<double>& v) { return v[1] >= 200; });
  EXPECT_EQ(checker.num_rules(), 2u);
  std::vector<double> values{8.0, 250.0};
  EXPECT_TRUE(checker.check(space.decode(1), values));
  // -rate would land at 150 < 200 -> vetoed by r2.
  EXPECT_FALSE(checker.check(space.decode(4), values));
}

}  // namespace
}  // namespace capes::core
