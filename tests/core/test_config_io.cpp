#include "core/config_io.hpp"

#include <gtest/gtest.h>

namespace capes::core {
namespace {

TEST(ConfigIo, EmptyConfigKeepsDefaults) {
  util::Config cfg;
  const CapesOptions o = capes_options_from_config(cfg);
  const CapesOptions d;
  EXPECT_DOUBLE_EQ(o.sampling_tick_s, d.sampling_tick_s);
  EXPECT_EQ(o.engine.minibatch_size, d.engine.minibatch_size);
  EXPECT_FLOAT_EQ(o.engine.dqn.gamma, d.engine.dqn.gamma);
}

TEST(ConfigIo, CapesKeysApplied) {
  util::Config cfg;
  ASSERT_TRUE(cfg.parse_string(R"(
capes.sampling_tick_s = 0.5
capes.reward_scale_mbs = 150
drl.minibatch_size = 64
drl.gamma = 0.9
drl.learning_rate = 0.001
drl.epsilon_anneal_ticks = 1234
drl.use_target_network = false
replay.ticks_per_observation = 7
replay.missing_tolerance = 0.3
)"));
  const CapesOptions o = capes_options_from_config(cfg);
  EXPECT_DOUBLE_EQ(o.sampling_tick_s, 0.5);
  EXPECT_DOUBLE_EQ(o.reward_scale_mbs, 150.0);
  EXPECT_EQ(o.engine.minibatch_size, 64u);
  EXPECT_FLOAT_EQ(o.engine.dqn.gamma, 0.9f);
  EXPECT_FLOAT_EQ(o.engine.dqn.learning_rate, 1e-3f);
  EXPECT_EQ(o.engine.epsilon.anneal_ticks, 1234);
  EXPECT_FALSE(o.engine.dqn.use_target_network);
  EXPECT_EQ(o.replay.ticks_per_observation, 7u);
  EXPECT_DOUBLE_EQ(o.replay.missing_tolerance, 0.3);
}

TEST(ConfigIo, ClusterKeysApplied) {
  util::Config cfg;
  ASSERT_TRUE(cfg.parse_string(R"(
lustre.num_clients = 3
lustre.num_servers = 2
lustre.default_cwnd = 16
lustre.fragmentation = 0.25
disk.seq_write_mbs = 90
disk.write_queue_gain = 1.5
network.fabric_bandwidth_mbs = 250
network.base_latency_us = 500
)"));
  const auto o = cluster_options_from_config(cfg);
  EXPECT_EQ(o.num_clients, 3u);
  EXPECT_EQ(o.num_servers, 2u);
  EXPECT_DOUBLE_EQ(o.default_cwnd, 16.0);
  EXPECT_DOUBLE_EQ(o.fragmentation, 0.25);
  EXPECT_DOUBLE_EQ(o.disk.seq_write_mbs, 90.0);
  EXPECT_DOUBLE_EQ(o.disk.write_queue_gain, 1.5);
  EXPECT_DOUBLE_EQ(o.network.fabric_bandwidth_mbs, 250.0);
  EXPECT_EQ(o.network.base_latency, 500);
}

TEST(ConfigIo, TransportKeysApplied) {
  util::Config cfg;
  ASSERT_TRUE(cfg.parse_string(R"(
capes.transport = sim
capes.transport.latency_ticks = 3
capes.transport.jitter = 2.5
capes.transport.drop = 0.1
capes.transport.seed = 77
)"));
  const CapesOptions o = capes_options_from_config(cfg);
  EXPECT_EQ(o.transport.kind, bus::TransportKind::kSim);
  EXPECT_EQ(o.transport.latency_ticks, 3);
  EXPECT_DOUBLE_EQ(o.transport.jitter, 2.5);
  EXPECT_DOUBLE_EQ(o.transport.drop, 0.1);
  EXPECT_EQ(o.transport.seed, 77u);
  EXPECT_TRUE(o.transport.seed_explicit);
  // Absent keys keep the sync default with no explicit seed.
  const CapesOptions d = capes_options_from_config(util::Config{});
  EXPECT_EQ(d.transport.kind, bus::TransportKind::kSync);
  EXPECT_FALSE(d.transport.seed_explicit);
}

TEST(ConfigIo, TransportKeysRoundTrip) {
  CapesOptions capes;
  capes.transport.kind = bus::TransportKind::kSim;
  capes.transport.latency_ticks = 5;
  capes.transport.jitter = 1.5;
  capes.transport.drop = 0.05;
  capes.transport.seed = 9;
  capes.transport.seed_explicit = true;
  const util::Config cfg = config_from_options(capes, lustre::ClusterOptions{});
  const CapesOptions back = capes_options_from_config(cfg);
  EXPECT_EQ(back.transport.kind, bus::TransportKind::kSim);
  EXPECT_EQ(back.transport.latency_ticks, 5);
  EXPECT_DOUBLE_EQ(back.transport.jitter, 1.5);
  EXPECT_DOUBLE_EQ(back.transport.drop, 0.05);
  EXPECT_EQ(back.transport.seed, 9u);
  EXPECT_TRUE(back.transport.seed_explicit);
}

TEST(ConfigIo, CaptureKeysAppliedAndRoundTrip) {
  util::Config cfg;
  ASSERT_TRUE(cfg.parse_string(R"(
capes.capture.path = /tmp/trace.cap
capes.capture.ring = 1024
)"));
  const CapesOptions o = capes_options_from_config(cfg);
  EXPECT_EQ(o.capture_path, "/tmp/trace.cap");
  EXPECT_EQ(o.capture_ring, 1024u);

  const util::Config dumped = config_from_options(o, lustre::ClusterOptions{});
  const CapesOptions back = capes_options_from_config(dumped);
  EXPECT_EQ(back.capture_path, "/tmp/trace.cap");
  EXPECT_EQ(back.capture_ring, 1024u);

  // Defaults: capture off, ring floor of 2 enforced.
  const CapesOptions d = capes_options_from_config(util::Config{});
  EXPECT_TRUE(d.capture_path.empty());
  util::Config tiny;
  ASSERT_TRUE(tiny.parse_string("capes.capture.ring = 0\n"));
  EXPECT_EQ(capes_options_from_config(tiny).capture_ring, 2u);
}

TEST(ConfigIo, BaseOverridesPreserved) {
  CapesOptions base;
  base.reward_scale_mbs = 123.0;
  util::Config cfg;
  const CapesOptions o = capes_options_from_config(cfg, base);
  EXPECT_DOUBLE_EQ(o.reward_scale_mbs, 123.0);
}

TEST(ConfigIo, RoundTripThroughConfig) {
  CapesOptions capes;
  capes.engine.minibatch_size = 48;
  capes.engine.dqn.gamma = 0.93f;
  lustre::ClusterOptions cluster;
  cluster.num_clients = 7;
  cluster.default_cwnd = 24.0;

  const util::Config cfg = config_from_options(capes, cluster);
  const CapesOptions c2 = capes_options_from_config(cfg);
  const auto cl2 = cluster_options_from_config(cfg);
  EXPECT_EQ(c2.engine.minibatch_size, 48u);
  EXPECT_NEAR(c2.engine.dqn.gamma, 0.93f, 1e-6f);
  EXPECT_EQ(cl2.num_clients, 7u);
  EXPECT_DOUBLE_EQ(cl2.default_cwnd, 24.0);
}

TEST(ConfigIo, ConfigFromOptionsDumpsParsable) {
  const auto cfg = config_from_options(CapesOptions{}, lustre::ClusterOptions{});
  util::Config reparsed;
  EXPECT_TRUE(reparsed.parse_string(cfg.dump()));
  EXPECT_GT(reparsed.size(), 10u);
}

}  // namespace
}  // namespace capes::core
