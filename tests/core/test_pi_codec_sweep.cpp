// Property sweep for the differential PI codec: for any vector width and
// change density, an encoder/decoder pair must reconstruct the stream
// within quantization error, and the wire cost must scale with the number
// of *changed* entries, not the vector width.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/pi_codec.hpp"
#include "util/rng.hpp"

namespace capes::core {
namespace {

class PiCodecSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(PiCodecSweep, LosslessUpToQuantization) {
  const auto [width, change_prob] = GetParam();
  PiEncoder enc(1, width);
  PiDecoder dec(width);
  util::Rng rng(width * 131 + static_cast<std::uint64_t>(change_prob * 97));

  std::vector<float> pis(width, 0.0f);
  std::uint64_t total_bytes = 0;
  constexpr int kTicks = 120;
  for (int t = 0; t < kTicks; ++t) {
    for (auto& v : pis) {
      if (rng.chance(change_prob)) {
        v += static_cast<float>(rng.uniform(-0.2, 0.2));
      }
    }
    const auto msg = enc.encode(t, pis);
    total_bytes += msg.size();
    auto out = dec.decode(msg);
    ASSERT_TRUE(out.has_value()) << "tick " << t;
    ASSERT_EQ(out->pis.size(), width);
    for (std::size_t i = 0; i < width; ++i) {
      ASSERT_NEAR(out->pis[i], pis[i], 2e-4f) << "tick " << t << " pi " << i;
    }
  }
  // Wire cost: header ~3B plus ~<=4B per changed entry on average.
  const double expected_upper =
      (4.0 + 4.5 * change_prob * static_cast<double>(width)) * kTicks +
      4.0 * static_cast<double>(width);  // first full message
  EXPECT_LT(static_cast<double>(total_bytes), expected_upper);
}

INSTANTIATE_TEST_SUITE_P(
    WidthAndDensity, PiCodecSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 4, 9, 44, 128),
                       ::testing::Values(0.05, 0.3, 1.0)));

class PiCodecValueRange : public ::testing::TestWithParam<float> {};

TEST_P(PiCodecValueRange, ExtremeValuesRoundTrip) {
  const float v = GetParam();
  PiEncoder enc(0, 2);
  PiDecoder dec(2);
  auto out = dec.decode(enc.encode(0, {v, -v}));
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(out->pis[0], v, std::fabs(v) * 1e-6f + 1e-4f);
  EXPECT_NEAR(out->pis[1], -v, std::fabs(v) * 1e-6f + 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Values, PiCodecValueRange,
                         ::testing::Values(0.0f, 1e-5f, 0.5f, 1.0f, 100.0f,
                                           15000.0f));

}  // namespace
}  // namespace capes::core
