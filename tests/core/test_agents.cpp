// Tests for MonitoringAgent, ControlAgent and InterfaceDaemon working over
// a mock target system.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "bus/transport.hpp"
#include "core/control_agent.hpp"
#include "util/varint.hpp"
#include "core/interface_daemon.hpp"
#include "core/monitoring_agent.hpp"
#include "mock_adapter.hpp"

namespace capes::core {
namespace {

using testing::MockAdapter;

struct DaemonFixture : public ::testing::Test {
  DaemonFixture()
      : adapter(3, 4),
        space(adapter.tunable_parameters()),
        replay(make_replay_options(), nullptr),
        daemon(replay, space, 3, 4) {}

  static rl::ReplayDbOptions make_replay_options() {
    rl::ReplayDbOptions o;
    o.num_nodes = 3;
    o.pis_per_node = 4;
    o.ticks_per_observation = 2;
    return o;
  }

  MockAdapter adapter;
  rl::ActionSpace space;
  rl::ReplayDb replay;
  InterfaceDaemon daemon;
};

TEST_F(DaemonFixture, MonitoringAgentDeliversToReplayDb) {
  MonitoringAgent agent(1, adapter, [this](const std::vector<std::uint8_t>& m) {
    daemon.on_status_message(m);
  });
  agent.sample(0);
  agent.sample(1);
  EXPECT_EQ(daemon.status_messages(), 2u);
  EXPECT_EQ(daemon.decode_errors(), 0u);
  auto pis = replay.status_at(1, 1);
  ASSERT_TRUE(pis.has_value());
  EXPECT_NEAR((*pis)[0], 0.5f, 1e-3f);  // value 50 / 100
  EXPECT_NEAR((*pis)[1], 0.1f, 1e-3f);  // node 1 / 10
}

TEST_F(DaemonFixture, AgentTracksBytesAndMessages) {
  MonitoringAgent agent(0, adapter, nullptr);
  agent.sample(0);
  agent.sample(1);
  EXPECT_EQ(agent.messages_sent(), 2u);
  EXPECT_GT(agent.bytes_sent(), 0u);
}

TEST_F(DaemonFixture, AllAgentsShareOneDaemon) {
  std::vector<std::unique_ptr<MonitoringAgent>> agents;
  for (std::size_t n = 0; n < 3; ++n) {
    agents.push_back(std::make_unique<MonitoringAgent>(
        n, adapter, [this](const std::vector<std::uint8_t>& m) {
          daemon.on_status_message(m);
        }));
  }
  for (auto& a : agents) a->sample(0);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_TRUE(replay.status_at(0, n).has_value()) << n;
  }
}

TEST_F(DaemonFixture, MalformedMessageCounted) {
  daemon.on_status_message({0xFF, 0xFF, 0xFF, 0xFF, 0xFF});
  EXPECT_EQ(daemon.decode_errors(), 1u);
}

TEST_F(DaemonFixture, UnknownNodeRejected) {
  std::vector<std::uint8_t> msg;
  util::put_varint(msg, 99);  // node 99 of 3
  util::put_varint(msg, 0);
  util::put_varint(msg, 0);
  daemon.on_status_message(msg);
  EXPECT_EQ(daemon.decode_errors(), 1u);
}

TEST_F(DaemonFixture, RewardRecorded) {
  daemon.on_reward(7, 0.42);
  EXPECT_DOUBLE_EQ(*replay.reward_at(7), 0.42);
}

TEST_F(DaemonFixture, SuggestedActionAppliesAndBroadcasts) {
  ControlAgent ca0(0, adapter), ca1(1, adapter);
  daemon.register_control_agent(&ca0);
  daemon.register_control_agent(&ca1);
  std::vector<double> values{50.0};
  const std::size_t recorded = daemon.on_suggested_action(3, 1, values);
  EXPECT_EQ(recorded, 1u);
  EXPECT_DOUBLE_EQ(values[0], 55.0);
  EXPECT_DOUBLE_EQ(adapter.current_parameters()[0], 55.0);
  EXPECT_EQ(ca0.actions_applied(), 1u);
  EXPECT_EQ(ca1.actions_applied(), 1u);
  EXPECT_EQ(*replay.action_at(3), 1u);
  EXPECT_EQ(daemon.actions_broadcast(), 1u);
}

TEST_F(DaemonFixture, NullActionRecordedNotBroadcast) {
  ControlAgent ca(0, adapter);
  daemon.register_control_agent(&ca);
  std::vector<double> values{50.0};
  daemon.on_suggested_action(4, 0, values);
  EXPECT_EQ(*replay.action_at(4), 0u);
  EXPECT_EQ(ca.actions_applied(), 0u);
  EXPECT_EQ(daemon.actions_broadcast(), 0u);
}

TEST_F(DaemonFixture, VetoedActionDegradesToNull) {
  daemon.action_checker().add_rule(
      "knob <= 52", [](const std::vector<double>& v) { return v[0] <= 52.0; });
  ControlAgent ca(0, adapter);
  daemon.register_control_agent(&ca);
  std::vector<double> values{50.0};
  const std::size_t recorded = daemon.on_suggested_action(5, 1, values);
  EXPECT_EQ(recorded, 0u);                   // vetoed -> NULL
  EXPECT_DOUBLE_EQ(values[0], 50.0);         // unchanged
  EXPECT_EQ(ca.actions_applied(), 0u);
  EXPECT_EQ(*replay.action_at(5), 0u);
  EXPECT_EQ(daemon.action_checker().vetoed_actions(), 1u);
}

TEST_F(DaemonFixture, ControlAgentAppliesDirectly) {
  ControlAgent ca(2, adapter);
  EXPECT_EQ(ca.node(), 2u);
  ca.on_action_message({33.0});
  EXPECT_DOUBLE_EQ(adapter.current_parameters()[0], 33.0);
}

// ---------------------------------------------------------------------------
// Decode-error accounting
// ---------------------------------------------------------------------------

TEST_F(DaemonFixture, EmptyMessageCounted) {
  daemon.on_status_message({});
  EXPECT_EQ(daemon.decode_errors(), 1u);
  EXPECT_EQ(daemon.status_messages(), 1u);
}

TEST_F(DaemonFixture, TruncatedPayloadCounted) {
  // A valid header (node 1, tick 0) claiming 3 entries but carrying none.
  std::vector<std::uint8_t> msg;
  util::put_varint(msg, 1);  // node
  util::put_varint(msg, 0);  // tick
  util::put_varint(msg, 3);  // count, then nothing
  daemon.on_status_message(msg);
  EXPECT_EQ(daemon.decode_errors(), 1u);
  // Nothing reached the replay DB.
  EXPECT_FALSE(replay.status_at(0, 1).has_value());
}

TEST_F(DaemonFixture, DecodeErrorsDoNotPoisonLaterMessages) {
  MonitoringAgent agent(2, adapter, [this](const std::vector<std::uint8_t>& m) {
    daemon.on_status_message(m);
  });
  daemon.on_status_message({0xFF, 0xFF, 0xFF, 0xFF, 0xFF});
  agent.sample(0);
  EXPECT_EQ(daemon.decode_errors(), 1u);
  EXPECT_TRUE(replay.status_at(0, 2).has_value());
}

// ---------------------------------------------------------------------------
// Sharded fan-in (multi-domain daemon)
// ---------------------------------------------------------------------------

struct ShardedDaemonFixture : public ::testing::Test {
  ShardedDaemonFixture()
      : adapter_a(2, 4),
        adapter_b(3, 4),
        // Domain layout: a = nodes [0,2) actions [1,3), b = nodes [2,5)
        // actions [3,5); both have one "knob" parameter.
        domain_a(0, "", adapter_a, throughput_objective(), 0, 1, 0),
        domain_b(1, "", adapter_b, throughput_objective(), 2, 3, 1),
        replay(make_replay_options(), nullptr),
        daemon(replay, {&domain_a, &domain_b}, 4) {}

  static rl::ReplayDbOptions make_replay_options() {
    rl::ReplayDbOptions o;
    o.num_nodes = 5;  // both domains
    o.pis_per_node = 4;
    o.ticks_per_observation = 2;
    return o;
  }

  MockAdapter adapter_a;
  MockAdapter adapter_b;
  ControlDomain domain_a;
  ControlDomain domain_b;
  rl::ReplayDb replay;
  InterfaceDaemon daemon;
};

TEST_F(ShardedDaemonFixture, RoutesStatusByGlobalNode) {
  // A monitoring agent for domain b's local node 1 ships as global node 3.
  MonitoringAgent agent(1, 3, adapter_b,
                        [this](const std::vector<std::uint8_t>& m) {
                          daemon.on_status_message(m);
                        });
  agent.sample(0);
  EXPECT_EQ(daemon.decode_errors(), 0u);
  auto pis = replay.status_at(0, 3);
  ASSERT_TRUE(pis.has_value());
  EXPECT_NEAR((*pis)[1], 0.1f, 1e-3f);  // local node 1 / 10 in the payload
  EXPECT_FALSE(replay.status_at(0, 1).has_value());
}

TEST_F(ShardedDaemonFixture, RejectsNodesBeyondEveryShard) {
  std::vector<std::uint8_t> msg;
  util::put_varint(msg, 5);  // first id past domain b's slice
  util::put_varint(msg, 0);
  util::put_varint(msg, 0);
  daemon.on_status_message(msg);
  EXPECT_EQ(daemon.decode_errors(), 1u);
}

TEST_F(ShardedDaemonFixture, RoutesActionToOwningDomainSlice) {
  ControlAgent ca_a(0, adapter_a);
  ControlAgent ca_b(0, adapter_b);
  daemon.register_control_agent(0, &ca_a);
  daemon.register_control_agent(1, &ca_b);

  // Global action 3 = domain b's local action 1 (+step on its knob).
  const std::size_t recorded = daemon.route_suggested_action(7, 3);
  EXPECT_EQ(recorded, 3u);
  EXPECT_DOUBLE_EQ(domain_b.param_values()[0], 55.0);
  EXPECT_DOUBLE_EQ(domain_a.param_values()[0], 50.0);  // untouched
  EXPECT_EQ(ca_b.actions_applied(), 1u);
  EXPECT_EQ(ca_a.actions_applied(), 0u);
  EXPECT_DOUBLE_EQ(adapter_b.current_parameters()[0], 55.0);
  EXPECT_DOUBLE_EQ(adapter_a.current_parameters()[0], 50.0);
  EXPECT_EQ(*replay.action_at(7), 3u);  // recorded under the composite index
}

TEST_F(ShardedDaemonFixture, NullActionRecordedForShardZero) {
  const std::size_t recorded = daemon.route_suggested_action(2, 0);
  EXPECT_EQ(recorded, 0u);
  EXPECT_EQ(*replay.action_at(2), 0u);
  EXPECT_EQ(daemon.actions_broadcast(), 0u);
}

TEST_F(ShardedDaemonFixture, RejectsOutOfRangeShardIndices) {
  // Indexing another domain's checker or agent list out of range used to
  // read shards_ unchecked; now it must throw with the shard count.
  ControlAgent ca(0, adapter_a);
  EXPECT_THROW(daemon.action_checker(2), std::out_of_range);
  EXPECT_THROW(daemon.register_control_agent(7, &ca), std::out_of_range);
  try {
    daemon.action_checker(9);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 9"), std::string::npos) << what;
    EXPECT_NE(what.find("2 shards"), std::string::npos) << what;
  }
  // In-range indices still work.
  daemon.register_control_agent(1, &ca);
  EXPECT_NO_THROW(daemon.action_checker(1));
}

TEST_F(ShardedDaemonFixture, VetoIsPerDomain) {
  // Domain b's checker vetoes everything; domain a stays tunable.
  daemon.action_checker(1).add_rule(
      "frozen", [](const std::vector<double>&) { return false; });
  EXPECT_EQ(daemon.route_suggested_action(1, 3), 0u);  // b's slice -> vetoed
  EXPECT_DOUBLE_EQ(domain_b.param_values()[0], 50.0);
  EXPECT_EQ(*replay.action_at(1), 0u);
  EXPECT_EQ(daemon.route_suggested_action(2, 1), 1u);  // a's slice passes
  EXPECT_DOUBLE_EQ(domain_a.param_values()[0], 55.0);
  EXPECT_EQ(daemon.action_checker(1).vetoed_actions(), 1u);
  EXPECT_EQ(daemon.action_checker(0).vetoed_actions(), 0u);
}

// ---------------------------------------------------------------------------
// Control-network mode (daemon + agents over a bus transport)
// ---------------------------------------------------------------------------

/// One domain (2 nodes) behind a configurable transport; agents publish
/// into the daemon's inbox and action broadcasts ride a shard channel.
struct TransportedDaemonFixture : public ::testing::Test {
  void wire(const bus::TransportOptions& topts) {
    transport = bus::make_transport(topts);
    daemon = std::make_unique<InterfaceDaemon>(
        replay, std::vector<ControlDomain*>{&domain}, 4, transport.get());
    for (std::size_t n = 0; n < 2; ++n) {
      agents.push_back(std::make_unique<MonitoringAgent>(
          n, n, adapter, *daemon->inbox()));
      controls.push_back(std::make_unique<ControlAgent>(n, adapter));
      daemon->register_control_agent(0, controls.back().get());
    }
  }

  static rl::ReplayDbOptions make_replay_options() {
    rl::ReplayDbOptions o;
    o.num_nodes = 2;
    o.pis_per_node = 4;
    o.ticks_per_observation = 2;
    return o;
  }

  MockAdapter adapter{2, 4};
  ControlDomain domain{0, "", adapter, throughput_objective(), 0, 1, 0};
  rl::ReplayDb replay{make_replay_options(), nullptr};
  std::unique_ptr<bus::Transport> transport;
  std::unique_ptr<InterfaceDaemon> daemon;
  std::vector<std::unique_ptr<MonitoringAgent>> agents;
  std::vector<std::unique_ptr<ControlAgent>> controls;
};

TEST_F(TransportedDaemonFixture, SyncChannelMatchesDirectDelivery) {
  wire(bus::TransportOptions{});  // sync
  for (std::int64_t t = 0; t < 3; ++t) {
    for (auto& agent : agents) agent->sample(t);
    EXPECT_EQ(daemon->drain_status(t), 2u);
    EXPECT_TRUE(replay.status_at(t, 0).has_value());
    EXPECT_TRUE(replay.status_at(t, 1).has_value());
  }
  const bus::ChannelStats stats = daemon->bus_stats();
  EXPECT_EQ(stats.published, 6u);
  EXPECT_EQ(stats.delivered, 6u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.late, 0u);
}

TEST_F(TransportedDaemonFixture, LatePiMessagesSurfaceWhenTheyArrive) {
  bus::TransportOptions topts;
  topts.kind = bus::TransportKind::kSim;
  topts.latency_ticks = 2;
  wire(topts);
  for (auto& agent : agents) agent->sample(0);
  EXPECT_EQ(daemon->drain_status(0), 0u);  // still in flight
  EXPECT_FALSE(replay.status_at(0, 0).has_value());
  EXPECT_EQ(daemon->drain_status(1), 0u);
  EXPECT_EQ(daemon->drain_status(2), 2u);  // lands two ticks late
  EXPECT_TRUE(replay.status_at(0, 0).has_value());  // recorded under send tick
  EXPECT_TRUE(replay.status_at(0, 1).has_value());
  EXPECT_EQ(daemon->bus_stats().late, 2u);
}

TEST_F(TransportedDaemonFixture, DroppedPiMessagesNeverReachTheReplayDb) {
  bus::TransportOptions topts;
  topts.kind = bus::TransportKind::kSim;
  topts.latency_ticks = 0;
  topts.drop = 0.5;
  topts.seed = 13;
  wire(topts);
  const std::int64_t ticks = 40;
  for (std::int64_t t = 0; t < ticks; ++t) {
    for (auto& agent : agents) agent->sample(t);
    daemon->drain_status(t);
  }
  const bus::ChannelStats stats = daemon->bus_stats();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_EQ(stats.published, 2u * ticks - stats.dropped);
  // Every delivered message decoded cleanly: skipping the encode on a
  // dropped tick keeps the differential codec in sync across the gap.
  EXPECT_EQ(daemon->decode_errors(), 0u);
  std::size_t present = 0;
  for (std::int64_t t = 0; t < ticks; ++t) {
    for (std::size_t n = 0; n < 2; ++n) {
      if (replay.status_at(t, n).has_value()) ++present;
    }
  }
  EXPECT_EQ(present, static_cast<std::size_t>(stats.delivered));
}

TEST_F(TransportedDaemonFixture, DelayedActionLandsOnALaterTick) {
  bus::TransportOptions topts;
  topts.kind = bus::TransportKind::kSim;
  topts.latency_ticks = 2;
  wire(topts);
  // Action 1 = +step on the knob. The domain-side (daemon's view)
  // parameter vector updates immediately; the target system only sees it
  // when the broadcast lands two ticks later.
  EXPECT_EQ(daemon->route_suggested_action(5, 1), 1u);
  EXPECT_DOUBLE_EQ(domain.param_values()[0], 55.0);
  EXPECT_DOUBLE_EQ(adapter.current_parameters()[0], 50.0);
  EXPECT_EQ(daemon->drain_actions(5), 0u);
  EXPECT_EQ(daemon->drain_actions(6), 0u);
  EXPECT_DOUBLE_EQ(adapter.current_parameters()[0], 50.0);
  EXPECT_EQ(daemon->drain_actions(7), 1u);
  EXPECT_DOUBLE_EQ(adapter.current_parameters()[0], 55.0);
  EXPECT_EQ(controls[0]->actions_applied(), 1u);
  EXPECT_EQ(controls[1]->actions_applied(), 1u);
}

}  // namespace
}  // namespace capes::core
