// Tests for MonitoringAgent, ControlAgent and InterfaceDaemon working over
// a mock target system.

#include <gtest/gtest.h>

#include <memory>

#include "core/control_agent.hpp"
#include "util/varint.hpp"
#include "core/interface_daemon.hpp"
#include "core/monitoring_agent.hpp"
#include "mock_adapter.hpp"

namespace capes::core {
namespace {

using testing::MockAdapter;

struct DaemonFixture : public ::testing::Test {
  DaemonFixture()
      : adapter(3, 4),
        space(adapter.tunable_parameters()),
        replay(make_replay_options(), nullptr),
        daemon(replay, space, 3, 4) {}

  static rl::ReplayDbOptions make_replay_options() {
    rl::ReplayDbOptions o;
    o.num_nodes = 3;
    o.pis_per_node = 4;
    o.ticks_per_observation = 2;
    return o;
  }

  MockAdapter adapter;
  rl::ActionSpace space;
  rl::ReplayDb replay;
  InterfaceDaemon daemon;
};

TEST_F(DaemonFixture, MonitoringAgentDeliversToReplayDb) {
  MonitoringAgent agent(1, adapter, [this](const std::vector<std::uint8_t>& m) {
    daemon.on_status_message(m);
  });
  agent.sample(0);
  agent.sample(1);
  EXPECT_EQ(daemon.status_messages(), 2u);
  EXPECT_EQ(daemon.decode_errors(), 0u);
  auto pis = replay.status_at(1, 1);
  ASSERT_TRUE(pis.has_value());
  EXPECT_NEAR((*pis)[0], 0.5f, 1e-3f);  // value 50 / 100
  EXPECT_NEAR((*pis)[1], 0.1f, 1e-3f);  // node 1 / 10
}

TEST_F(DaemonFixture, AgentTracksBytesAndMessages) {
  MonitoringAgent agent(0, adapter, nullptr);
  agent.sample(0);
  agent.sample(1);
  EXPECT_EQ(agent.messages_sent(), 2u);
  EXPECT_GT(agent.bytes_sent(), 0u);
}

TEST_F(DaemonFixture, AllAgentsShareOneDaemon) {
  std::vector<std::unique_ptr<MonitoringAgent>> agents;
  for (std::size_t n = 0; n < 3; ++n) {
    agents.push_back(std::make_unique<MonitoringAgent>(
        n, adapter, [this](const std::vector<std::uint8_t>& m) {
          daemon.on_status_message(m);
        }));
  }
  for (auto& a : agents) a->sample(0);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_TRUE(replay.status_at(0, n).has_value()) << n;
  }
}

TEST_F(DaemonFixture, MalformedMessageCounted) {
  daemon.on_status_message({0xFF, 0xFF, 0xFF, 0xFF, 0xFF});
  EXPECT_EQ(daemon.decode_errors(), 1u);
}

TEST_F(DaemonFixture, UnknownNodeRejected) {
  std::vector<std::uint8_t> msg;
  util::put_varint(msg, 99);  // node 99 of 3
  util::put_varint(msg, 0);
  util::put_varint(msg, 0);
  daemon.on_status_message(msg);
  EXPECT_EQ(daemon.decode_errors(), 1u);
}

TEST_F(DaemonFixture, RewardRecorded) {
  daemon.on_reward(7, 0.42);
  EXPECT_DOUBLE_EQ(*replay.reward_at(7), 0.42);
}

TEST_F(DaemonFixture, SuggestedActionAppliesAndBroadcasts) {
  ControlAgent ca0(0, adapter), ca1(1, adapter);
  daemon.register_control_agent(&ca0);
  daemon.register_control_agent(&ca1);
  std::vector<double> values{50.0};
  const std::size_t recorded = daemon.on_suggested_action(3, 1, values);
  EXPECT_EQ(recorded, 1u);
  EXPECT_DOUBLE_EQ(values[0], 55.0);
  EXPECT_DOUBLE_EQ(adapter.current_parameters()[0], 55.0);
  EXPECT_EQ(ca0.actions_applied(), 1u);
  EXPECT_EQ(ca1.actions_applied(), 1u);
  EXPECT_EQ(*replay.action_at(3), 1u);
  EXPECT_EQ(daemon.actions_broadcast(), 1u);
}

TEST_F(DaemonFixture, NullActionRecordedNotBroadcast) {
  ControlAgent ca(0, adapter);
  daemon.register_control_agent(&ca);
  std::vector<double> values{50.0};
  daemon.on_suggested_action(4, 0, values);
  EXPECT_EQ(*replay.action_at(4), 0u);
  EXPECT_EQ(ca.actions_applied(), 0u);
  EXPECT_EQ(daemon.actions_broadcast(), 0u);
}

TEST_F(DaemonFixture, VetoedActionDegradesToNull) {
  daemon.action_checker().add_rule(
      "knob <= 52", [](const std::vector<double>& v) { return v[0] <= 52.0; });
  ControlAgent ca(0, adapter);
  daemon.register_control_agent(&ca);
  std::vector<double> values{50.0};
  const std::size_t recorded = daemon.on_suggested_action(5, 1, values);
  EXPECT_EQ(recorded, 0u);                   // vetoed -> NULL
  EXPECT_DOUBLE_EQ(values[0], 50.0);         // unchanged
  EXPECT_EQ(ca.actions_applied(), 0u);
  EXPECT_EQ(*replay.action_at(5), 0u);
  EXPECT_EQ(daemon.action_checker().vetoed_actions(), 1u);
}

TEST_F(DaemonFixture, ControlAgentAppliesDirectly) {
  ControlAgent ca(2, adapter);
  EXPECT_EQ(ca.node(), 2u);
  ca.on_action_message({33.0});
  EXPECT_DOUBLE_EQ(adapter.current_parameters()[0], 33.0);
}

}  // namespace
}  // namespace capes::core
