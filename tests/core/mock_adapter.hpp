#pragma once
// A scriptable TargetSystemAdapter for core-layer tests: performance is a
// deterministic function of the current parameter value, so tests can
// verify the full control loop without the Lustre simulator.

#include <atomic>
#include <cmath>
#include <vector>

#include "core/adapter.hpp"

namespace capes::core::testing {

class MockAdapter : public TargetSystemAdapter {
 public:
  MockAdapter(std::size_t nodes, std::size_t pis)
      : nodes_(nodes), pis_(pis), values_{50.0} {}

  std::size_t num_nodes() const override { return nodes_; }
  std::size_t pis_per_node() const override { return pis_; }

  std::vector<float> collect_observation(std::size_t node) override {
    ++collect_calls;
    std::vector<float> out(pis_, 0.0f);
    out[0] = static_cast<float>(values_[0] / 100.0);
    if (pis_ > 1) out[1] = static_cast<float>(node) / 10.0f;
    if (pis_ > 2) out[2] = static_cast<float>(throughput() / 100.0);
    return out;
  }

  std::vector<rl::TunableParameter> tunable_parameters() const override {
    rl::TunableParameter p;
    p.name = "knob";
    p.min_value = 0.0;
    p.max_value = 100.0;
    p.step = 5.0;
    p.initial_value = 50.0;
    return {p};
  }

  void set_parameters(const std::vector<double>& values) override {
    values_ = values;
    ++set_calls;
  }

  std::vector<double> current_parameters() const override { return values_; }

  PerfSample sample_performance() override {
    PerfSample s;
    s.write_mbs = throughput();
    s.read_mbs = 0.0;
    s.avg_latency_ms = 1.0 + std::fabs(values_[0] - optimum) / 20.0;
    return s;
  }

  /// Inverted-V response: peak `peak_mbs` at `optimum`.
  double throughput() const {
    return peak_mbs - std::fabs(values_[0] - optimum);
  }

  double optimum = 80.0;
  double peak_mbs = 100.0;
  /// Atomic: collect_observation may run concurrently for distinct nodes
  /// when the system samples through a worker pool.
  std::atomic<int> collect_calls{0};
  int set_calls = 0;

 private:
  std::size_t nodes_;
  std::size_t pis_;
  std::vector<double> values_;
};

}  // namespace capes::core::testing
