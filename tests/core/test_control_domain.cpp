// ControlDomain: the node/action/parameter namespace arithmetic that lets
// N domains share one Replay DB and one composite action space, plus the
// per-domain parameter lifecycle.

#include "core/control_domain.hpp"

#include <gtest/gtest.h>

#include "../core/mock_adapter.hpp"

namespace capes::core {
namespace {

using testing::MockAdapter;

TEST(ControlDomain, DefaultsNameFromIndex) {
  MockAdapter adapter(2, 3);
  ControlDomain domain(3, "", adapter, throughput_objective(), 0, 1, 0);
  EXPECT_EQ(domain.name(), "c3");

  ControlDomain named(0, "edge", adapter, throughput_objective(), 0, 1, 0);
  EXPECT_EQ(named.name(), "edge");
}

TEST(ControlDomain, NodeNamespaceMapsThroughOffset) {
  MockAdapter adapter(4, 3);
  ControlDomain domain(1, "", adapter, throughput_objective(), /*node_offset=*/4,
                       /*action_offset=*/3, /*param_offset=*/1);
  EXPECT_EQ(domain.num_nodes(), 4u);
  EXPECT_EQ(domain.node_offset(), 4u);
  EXPECT_EQ(domain.global_node(0), 4u);
  EXPECT_EQ(domain.global_node(3), 7u);
  EXPECT_FALSE(domain.owns_global_node(3));
  EXPECT_TRUE(domain.owns_global_node(4));
  EXPECT_TRUE(domain.owns_global_node(7));
  EXPECT_FALSE(domain.owns_global_node(8));
  EXPECT_EQ(domain.local_node(6), 2u);
}

TEST(ControlDomain, ActionNamespaceSharesGlobalNull) {
  // MockAdapter has one tunable parameter: local actions 0 (NULL), 1, 2.
  MockAdapter adapter(2, 3);
  // Second domain of two identical ones: its slice starts at global 3.
  ControlDomain domain(1, "", adapter, throughput_objective(), 2, 3, 1);
  EXPECT_EQ(domain.num_slice_actions(), 2u);
  EXPECT_FALSE(domain.owns_global_action(0));  // shared NULL
  EXPECT_FALSE(domain.owns_global_action(2));  // first domain's slice
  EXPECT_TRUE(domain.owns_global_action(3));
  EXPECT_TRUE(domain.owns_global_action(4));
  EXPECT_FALSE(domain.owns_global_action(5));
  EXPECT_EQ(domain.local_action(3), 1u);
  EXPECT_EQ(domain.local_action(4), 2u);
  EXPECT_EQ(domain.global_action(1), 3u);
  EXPECT_EQ(domain.global_action(2), 4u);
  // Local NULL maps to the shared global NULL.
  EXPECT_EQ(domain.global_action(0), 0u);
}

TEST(ControlDomain, FirstDomainNamespaceIsIdentity) {
  // Domain 0's slices must reduce to the single-cluster indices, the
  // invariant behind the bit-identical single-cluster guarantee.
  MockAdapter adapter(2, 3);
  ControlDomain domain(0, "", adapter, throughput_objective(), 0, 1, 0);
  for (std::size_t a = 1; a < 3; ++a) {
    EXPECT_EQ(domain.global_action(a), a);
    EXPECT_EQ(domain.local_action(a), a);
  }
  EXPECT_EQ(domain.global_node(1), 1u);
}

TEST(ControlDomain, ResetParametersPushesInitialValues) {
  MockAdapter adapter(2, 3);
  ControlDomain domain(0, "", adapter, throughput_objective(), 0, 1, 0);
  ASSERT_EQ(domain.param_values().size(), 1u);
  EXPECT_DOUBLE_EQ(domain.param_values()[0], 50.0);

  domain.param_values()[0] = 95.0;
  adapter.set_parameters({95.0});
  domain.reset_parameters();
  EXPECT_DOUBLE_EQ(domain.param_values()[0], 50.0);
  EXPECT_DOUBLE_EQ(adapter.current_parameters()[0], 50.0);
}

TEST(ControlDomain, TracksLastSample) {
  MockAdapter adapter(1, 3);
  ControlDomain domain(0, "", adapter, throughput_objective(), 0, 1, 0);
  PerfSample perf;
  perf.read_mbs = 12.0;
  perf.write_mbs = 30.0;
  domain.set_last_sample(perf, 0.42);
  EXPECT_DOUBLE_EQ(domain.last_perf().throughput_mbs(), 42.0);
  EXPECT_DOUBLE_EQ(domain.last_reward(), 0.42);
}

}  // namespace
}  // namespace capes::core
