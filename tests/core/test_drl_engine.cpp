#include "core/drl_engine.hpp"

#include <gtest/gtest.h>

namespace capes::core {
namespace {

rl::ReplayDbOptions replay_options() {
  rl::ReplayDbOptions o;
  o.num_nodes = 2;
  o.pis_per_node = 3;
  o.ticks_per_observation = 3;
  return o;
}

DrlEngineOptions engine_options() {
  DrlEngineOptions o;
  o.dqn.num_actions = 3;
  o.dqn.hidden_size = 8;
  o.dqn.learning_rate = 1e-3f;
  o.minibatch_size = 4;
  o.train_steps_per_tick = 2;
  o.epsilon.anneal_ticks = 100;
  return o;
}

void fill_replay(rl::ReplayDb& db, std::int64_t ticks) {
  for (std::int64_t t = 0; t < ticks; ++t) {
    for (std::size_t n = 0; n < 2; ++n) {
      db.record_status(t, n, {0.1f * static_cast<float>(t), 0.2f, 0.3f});
    }
    db.record_action(t, static_cast<std::size_t>(t) % 3);
    db.record_reward(t, 0.5);
  }
}

TEST(DrlEngine, ObservationSizeInferredFromReplay) {
  rl::ReplayDb replay(replay_options());
  DrlEngine engine(engine_options(), replay);
  EXPECT_EQ(engine.dqn().options().observation_size, 2u * 3u * 3u);
}

TEST(DrlEngine, TrainSkipsWhenReplayEmpty) {
  rl::ReplayDb replay(replay_options());
  DrlEngine engine(engine_options(), replay);
  EXPECT_EQ(engine.train_tick(), 0u);
  EXPECT_EQ(engine.total_train_steps(), 0u);
}

TEST(DrlEngine, TrainRunsConfiguredSteps) {
  rl::ReplayDb replay(replay_options());
  fill_replay(replay, 30);
  DrlEngine engine(engine_options(), replay);
  EXPECT_EQ(engine.train_tick(), 2u);
  EXPECT_EQ(engine.total_train_steps(), 2u);
  EXPECT_EQ(engine.prediction_error_log().size(), 2u);
  EXPECT_EQ(engine.loss_log().size(), 2u);
}

TEST(DrlEngine, EpsilonAnnealing) {
  rl::ReplayDb replay(replay_options());
  DrlEngine engine(engine_options(), replay);
  EXPECT_DOUBLE_EQ(engine.current_epsilon(0, true), 1.0);
  EXPECT_NEAR(engine.current_epsilon(100, true), 0.05, 1e-9);
  EXPECT_DOUBLE_EQ(engine.current_epsilon(100, false), 0.05);  // eval epsilon
}

TEST(DrlEngine, WorkloadChangeBumpsEpsilon) {
  rl::ReplayDb replay(replay_options());
  DrlEngine engine(engine_options(), replay);
  // Advance past the anneal (100 ticks) so the base epsilon is 0.05.
  for (int i = 0; i < 200; ++i) engine.compute_action(i, true);
  EXPECT_EQ(engine.training_ticks(), 200);
  engine.notify_workload_change();
  EXPECT_NEAR(engine.current_epsilon(engine.training_ticks(), true), 0.2, 1e-9);
}

TEST(DrlEngine, EpsilonClockOnlyAdvancesInTraining) {
  rl::ReplayDb replay(replay_options());
  DrlEngine engine(engine_options(), replay);
  // Measurement-mode calls must not consume exploration budget.
  for (int i = 0; i < 500; ++i) engine.compute_action(i, false);
  EXPECT_EQ(engine.training_ticks(), 0);
  EXPECT_DOUBLE_EQ(engine.current_epsilon(engine.training_ticks(), true), 1.0);
  engine.compute_action(500, true);
  EXPECT_EQ(engine.training_ticks(), 1);
}

TEST(DrlEngine, ActionInRangeWithObservation) {
  rl::ReplayDb replay(replay_options());
  fill_replay(replay, 10);
  DrlEngine engine(engine_options(), replay);
  for (int i = 0; i < 10; ++i) {
    const std::size_t a = engine.compute_action(9, false);
    EXPECT_LT(a, 3u);
  }
}

TEST(DrlEngine, NoObservationEvalReturnsNull) {
  rl::ReplayDb replay(replay_options());
  DrlEngine engine(engine_options(), replay);
  EXPECT_EQ(engine.compute_action(5, false), 0u);
}

TEST(DrlEngine, NoObservationTrainingStillExplores) {
  rl::ReplayDb replay(replay_options());
  DrlEngineOptions o = engine_options();
  o.epsilon.initial = 1.0;
  DrlEngine engine(o, replay);
  // With epsilon 1.0 the engine should produce random (not always NULL)
  // actions even before observations exist.
  int non_null = 0;
  for (int i = 0; i < 50; ++i) {
    non_null += engine.compute_action(0, true) != 0;
  }
  EXPECT_GT(non_null, 10);
}

TEST(DrlEngine, GreedyEvalIsDeterministic) {
  rl::ReplayDb replay(replay_options());
  fill_replay(replay, 10);
  DrlEngineOptions o = engine_options();
  o.eval_epsilon = 0.0;
  DrlEngine engine(o, replay);
  const std::size_t first = engine.compute_action(9, false);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(engine.compute_action(9, false), first);
  }
}

TEST(DrlEngine, PredictionErrorLogGrowsMonotonically) {
  rl::ReplayDb replay(replay_options());
  fill_replay(replay, 30);
  DrlEngine engine(engine_options(), replay);
  engine.train_tick();
  engine.train_tick();
  const auto& log = engine.prediction_error_log();
  ASSERT_EQ(log.size(), 4u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_GT(log[i].first, log[i - 1].first);
  }
}

}  // namespace
}  // namespace capes::core
