#include "core/drl_engine.hpp"

#include <gtest/gtest.h>

#include "waldb/database.hpp"

namespace capes::core {
namespace {

rl::ReplayDbOptions replay_options() {
  rl::ReplayDbOptions o;
  o.num_nodes = 2;
  o.pis_per_node = 3;
  o.ticks_per_observation = 3;
  return o;
}

DrlEngineOptions engine_options() {
  DrlEngineOptions o;
  o.dqn.num_actions = 3;
  o.dqn.hidden_size = 8;
  o.dqn.learning_rate = 1e-3f;
  o.minibatch_size = 4;
  o.train_steps_per_tick = 2;
  o.epsilon.anneal_ticks = 100;
  return o;
}

void fill_replay(rl::ReplayDb& db, std::int64_t ticks) {
  for (std::int64_t t = 0; t < ticks; ++t) {
    for (std::size_t n = 0; n < 2; ++n) {
      db.record_status(t, n, {0.1f * static_cast<float>(t), 0.2f, 0.3f});
    }
    db.record_action(t, static_cast<std::size_t>(t) % 3);
    db.record_reward(t, 0.5);
  }
}

TEST(DrlEngine, ObservationSizeInferredFromReplay) {
  rl::ReplayDb replay(replay_options());
  DrlEngine engine(engine_options(), replay);
  EXPECT_EQ(engine.dqn().options().observation_size, 2u * 3u * 3u);
}

TEST(DrlEngine, TrainSkipsWhenReplayEmpty) {
  rl::ReplayDb replay(replay_options());
  DrlEngine engine(engine_options(), replay);
  EXPECT_EQ(engine.train_tick(), 0u);
  EXPECT_EQ(engine.total_train_steps(), 0u);
}

TEST(DrlEngine, TrainRunsConfiguredSteps) {
  rl::ReplayDb replay(replay_options());
  fill_replay(replay, 30);
  DrlEngine engine(engine_options(), replay);
  EXPECT_EQ(engine.train_tick(), 2u);
  EXPECT_EQ(engine.total_train_steps(), 2u);
  EXPECT_EQ(engine.prediction_error_log().size(), 2u);
  EXPECT_EQ(engine.loss_log().size(), 2u);
}

TEST(DrlEngine, EpsilonAnnealing) {
  rl::ReplayDb replay(replay_options());
  DrlEngine engine(engine_options(), replay);
  EXPECT_DOUBLE_EQ(engine.current_epsilon(0, true), 1.0);
  EXPECT_NEAR(engine.current_epsilon(100, true), 0.05, 1e-9);
  EXPECT_DOUBLE_EQ(engine.current_epsilon(100, false), 0.05);  // eval epsilon
}

TEST(DrlEngine, WorkloadChangeBumpsEpsilon) {
  rl::ReplayDb replay(replay_options());
  DrlEngine engine(engine_options(), replay);
  // Advance past the anneal (100 ticks) so the base epsilon is 0.05.
  for (int i = 0; i < 200; ++i) engine.compute_action(i, true);
  EXPECT_EQ(engine.training_ticks(), 200);
  engine.notify_workload_change();
  EXPECT_NEAR(engine.current_epsilon(engine.training_ticks(), true), 0.2, 1e-9);
}

TEST(DrlEngine, EpsilonClockOnlyAdvancesInTraining) {
  rl::ReplayDb replay(replay_options());
  DrlEngine engine(engine_options(), replay);
  // Measurement-mode calls must not consume exploration budget.
  for (int i = 0; i < 500; ++i) engine.compute_action(i, false);
  EXPECT_EQ(engine.training_ticks(), 0);
  EXPECT_DOUBLE_EQ(engine.current_epsilon(engine.training_ticks(), true), 1.0);
  engine.compute_action(500, true);
  EXPECT_EQ(engine.training_ticks(), 1);
}

TEST(DrlEngine, ActionInRangeWithObservation) {
  rl::ReplayDb replay(replay_options());
  fill_replay(replay, 10);
  DrlEngine engine(engine_options(), replay);
  for (int i = 0; i < 10; ++i) {
    const std::size_t a = engine.compute_action(9, false);
    EXPECT_LT(a, 3u);
  }
}

TEST(DrlEngine, NoObservationEvalReturnsNull) {
  rl::ReplayDb replay(replay_options());
  DrlEngine engine(engine_options(), replay);
  EXPECT_EQ(engine.compute_action(5, false), 0u);
}

TEST(DrlEngine, NoObservationTrainingStillExplores) {
  rl::ReplayDb replay(replay_options());
  DrlEngineOptions o = engine_options();
  o.epsilon.initial = 1.0;
  DrlEngine engine(o, replay);
  // With epsilon 1.0 the engine should produce random (not always NULL)
  // actions even before observations exist.
  int non_null = 0;
  for (int i = 0; i < 50; ++i) {
    non_null += engine.compute_action(0, true) != 0;
  }
  EXPECT_GT(non_null, 10);
}

TEST(DrlEngine, GreedyEvalIsDeterministic) {
  rl::ReplayDb replay(replay_options());
  fill_replay(replay, 10);
  DrlEngineOptions o = engine_options();
  o.eval_epsilon = 0.0;
  DrlEngine engine(o, replay);
  const std::size_t first = engine.compute_action(9, false);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(engine.compute_action(9, false), first);
  }
}

TEST(DrlEngine, PredictionErrorLogGrowsMonotonically) {
  rl::ReplayDb replay(replay_options());
  fill_replay(replay, 30);
  DrlEngine engine(engine_options(), replay);
  engine.train_tick();
  engine.train_tick();
  const auto& log = engine.prediction_error_log();
  ASSERT_EQ(log.size(), 4u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_GT(log[i].first, log[i - 1].first);
  }
}

TEST(DrlEngine, AsyncLearnerMatchesSyncBitExactly) {
  // The tentpole invariant: minibatch sampling stays on the control
  // thread and compute_action waits for published weights, so the async
  // learner replays exactly the sync training trajectory.
  rl::ReplayDb replay_sync(replay_options());
  rl::ReplayDb replay_async(replay_options());
  fill_replay(replay_sync, 30);
  fill_replay(replay_async, 30);

  DrlEngineOptions sync_opts = engine_options();
  DrlEngineOptions async_opts = engine_options();
  async_opts.learner_mode = LearnerMode::kAsync;

  DrlEngine sync_engine(sync_opts, replay_sync);
  DrlEngine async_engine(async_opts, replay_async);

  for (int tick = 0; tick < 12; ++tick) {
    const std::size_t a = sync_engine.compute_action(20 + tick % 5, true);
    const std::size_t b = async_engine.compute_action(20 + tick % 5, true);
    EXPECT_EQ(a, b) << "tick " << tick;
    EXPECT_EQ(sync_engine.train_tick(), async_engine.train_tick());
  }
  EXPECT_TRUE(async_engine.learner_thread_running());
  EXPECT_EQ(sync_engine.total_train_steps(), async_engine.total_train_steps());
  EXPECT_EQ(sync_engine.weights_fingerprint(),
            async_engine.weights_fingerprint());
  ASSERT_EQ(sync_engine.loss_log().size(), async_engine.loss_log().size());
  for (std::size_t i = 0; i < sync_engine.loss_log().size(); ++i) {
    EXPECT_EQ(sync_engine.loss_log()[i], async_engine.loss_log()[i]) << i;
  }
}

TEST(DrlEngine, AsyncLearnerRunToRunDeterministic) {
  std::uint32_t fingerprints[2];
  for (int run = 0; run < 2; ++run) {
    rl::ReplayDb replay(replay_options());
    fill_replay(replay, 30);
    DrlEngineOptions opts = engine_options();
    opts.learner_mode = LearnerMode::kAsync;
    DrlEngine engine(opts, replay);
    for (int tick = 0; tick < 10; ++tick) {
      engine.compute_action(25, true);
      engine.train_tick();
    }
    fingerprints[run] = engine.weights_fingerprint();
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

TEST(DrlEngine, LearnerThreadStartsLazilyAndStopsOnDestruction) {
  rl::ReplayDb replay(replay_options());
  fill_replay(replay, 30);
  DrlEngineOptions opts = engine_options();
  opts.learner_mode = LearnerMode::kAsync;
  DrlEngine engine(opts, replay);
  EXPECT_EQ(engine.learner_mode(), LearnerMode::kAsync);
  EXPECT_FALSE(engine.learner_thread_running());
  engine.train_tick();
  EXPECT_TRUE(engine.learner_thread_running());
  // Destructor joins the learner; the test passing (no hang, no TSan
  // report) is the assertion.
}

TEST(DrlEngine, SyncModeNeverStartsLearnerThread) {
  rl::ReplayDb replay(replay_options());
  fill_replay(replay, 30);
  DrlEngine engine(engine_options(), replay);
  engine.train_tick();
  EXPECT_FALSE(engine.learner_thread_running());
}

TEST(DrlEngine, CheckpointWrittenAtCadenceAndRestoredExactly) {
  auto db = waldb::Database::in_memory();
  rl::ReplayDb replay(replay_options());
  fill_replay(replay, 30);

  DrlEngineOptions opts = engine_options();
  opts.checkpoint_ticks = 3;
  DrlEngine engine(opts, replay);
  engine.set_checkpoint_store(&db);
  for (int tick = 0; tick < 7; ++tick) {
    engine.compute_action(25, true);
    engine.train_tick();
  }
  EXPECT_EQ(engine.checkpoints_written(), 2u);  // after ticks 3 and 6

  // A fresh engine restored from the store resumes with the checkpointed
  // weights, optimizer state and epsilon clock.
  rl::ReplayDb replay2(replay_options());
  fill_replay(replay2, 30);
  DrlEngine resumed(opts, replay2);
  EXPECT_TRUE(resumed.restore_checkpoint(db));
  EXPECT_EQ(resumed.training_ticks(), 6);
  EXPECT_EQ(resumed.total_train_steps(),
            6u * engine_options().train_steps_per_tick);

  // And restoring garbage fails without touching the engine.
  auto empty_db = waldb::Database::in_memory();
  const auto before = resumed.weights_fingerprint();
  EXPECT_FALSE(resumed.restore_checkpoint(empty_db));
  EXPECT_EQ(resumed.weights_fingerprint(), before);
}

TEST(DrlEngine, AsyncCheckpointMatchesSyncCheckpoint) {
  // The checkpoint job rides the work ring behind the batches of its
  // tick, so the persisted state equals what sync mode persists.
  std::vector<std::uint8_t> blobs[2];
  for (int mode = 0; mode < 2; ++mode) {
    auto db = waldb::Database::in_memory();
    rl::ReplayDb replay(replay_options());
    fill_replay(replay, 30);
    DrlEngineOptions opts = engine_options();
    opts.checkpoint_ticks = 4;
    opts.learner_mode = mode == 0 ? LearnerMode::kSync : LearnerMode::kAsync;
    DrlEngine engine(opts, replay);
    engine.set_checkpoint_store(&db);
    for (int tick = 0; tick < 9; ++tick) {
      engine.compute_action(25, true);
      engine.train_tick();
    }
    engine.drain_learner();
    auto blob = db.get("learner", 0);
    ASSERT_TRUE(blob.has_value()) << "mode " << mode;
    blobs[mode] = *blob;
  }
  EXPECT_EQ(blobs[0], blobs[1]);
}

}  // namespace
}  // namespace capes::core
