#include <gtest/gtest.h>

#include "lustre/cluster.hpp"
#include "workload/file_server.hpp"
#include "workload/random_rw.hpp"
#include "workload/seq_write.hpp"

namespace capes::workload {
namespace {

lustre::ClusterOptions small_cluster() {
  lustre::ClusterOptions o;
  o.num_clients = 2;
  o.num_servers = 2;
  o.disk.service_noise = 0.0;
  return o;
}

TEST(RandomRw, GeneratesTraffic) {
  sim::Simulator sim;
  lustre::Cluster cluster(sim, small_cluster());
  RandomRwOptions opts;
  opts.read_fraction = 0.5;
  opts.threads_per_client = 2;
  RandomRw wl(cluster, opts);
  wl.start();
  sim.run_until(sim::seconds(5));
  EXPECT_GT(wl.ops_completed(), 10u);
  EXPECT_GT(cluster.total_read_bytes(), 0u);
  EXPECT_GT(cluster.total_write_bytes(), 0u);
}

TEST(RandomRw, RatioShapesTraffic) {
  auto ratio_of = [](double read_fraction) {
    sim::Simulator sim;
    lustre::Cluster cluster(sim, small_cluster());
    RandomRwOptions opts;
    opts.read_fraction = read_fraction;
    RandomRw wl(cluster, opts);
    wl.start();
    sim.run_until(sim::seconds(10));
    const double r = static_cast<double>(cluster.total_read_bytes());
    const double w = static_cast<double>(cluster.total_write_bytes());
    return r / (r + w + 1.0);
  };
  // Read *byte share* is shaped by op mix but skewed by the fact that
  // writes are buffered and reads are synchronous: just check ordering.
  const double heavy_read = ratio_of(0.9);
  const double heavy_write = ratio_of(0.1);
  EXPECT_GT(heavy_read, heavy_write);
  EXPECT_GT(heavy_read, 0.5);
  EXPECT_LT(heavy_write, 0.5);
}

TEST(RandomRw, PureWriteNeverReads) {
  sim::Simulator sim;
  lustre::Cluster cluster(sim, small_cluster());
  RandomRwOptions opts;
  opts.read_fraction = 0.0;
  RandomRw wl(cluster, opts);
  wl.start();
  sim.run_until(sim::seconds(3));
  EXPECT_EQ(cluster.total_read_bytes(), 0u);
  EXPECT_GT(cluster.total_write_bytes(), 0u);
}

TEST(RandomRw, StopHaltsNewOps) {
  sim::Simulator sim;
  lustre::Cluster cluster(sim, small_cluster());
  RandomRw wl(cluster, RandomRwOptions{});
  wl.start();
  sim.run_until(sim::seconds(2));
  wl.request_stop();
  const auto ops_at_stop = wl.ops_completed();
  sim.run_until(sim::seconds(4));
  // A few in-flight ops may land, but the stream must die out.
  EXPECT_LE(wl.ops_completed(), ops_at_stop + 60);
  const auto after_drain = wl.ops_completed();
  sim.run_until(sim::seconds(6));
  EXPECT_EQ(wl.ops_completed(), after_drain);
}

TEST(RandomRw, NameIncludesRatio) {
  sim::Simulator sim;
  lustre::Cluster cluster(sim, small_cluster());
  RandomRwOptions opts;
  opts.read_fraction = 0.25;
  RandomRw wl(cluster, opts);
  EXPECT_NE(wl.name().find("0.25"), std::string::npos);
}

TEST(SeqWrite, StreamsAreSequentialOnDisk) {
  sim::Simulator sim;
  lustre::ClusterOptions copts = small_cluster();
  copts.num_clients = 1;
  lustre::Cluster cluster(sim, copts);
  SeqWriteOptions opts;
  opts.streams_per_client = 1;
  SeqWrite wl(cluster, opts);
  wl.start();
  sim.run_until(sim::seconds(10));
  EXPECT_GT(wl.ops_completed(), 20u);
  // Sequential streams should achieve near sequential-bandwidth service:
  // aggregate >> random-write throughput (which would be ~5 MB/s/disk).
  const double mbs = static_cast<double>(cluster.total_write_bytes()) / 1e6 / 10.0;
  EXPECT_GT(mbs, 50.0);
}

TEST(SeqWrite, MultipleStreamsAllProgress) {
  sim::Simulator sim;
  lustre::Cluster cluster(sim, small_cluster());
  SeqWriteOptions opts;
  opts.streams_per_client = 5;
  SeqWrite wl(cluster, opts);
  wl.start();
  sim.run_until(sim::seconds(5));
  EXPECT_GT(wl.ops_completed(), 10u);
}

TEST(FileServer, MixesDataAndMetadata) {
  sim::Simulator sim;
  lustre::Cluster cluster(sim, small_cluster());
  FileServerOptions opts;
  opts.instances_per_client = 4;
  opts.mean_file_bytes = 2 << 20;
  FileServer wl(cluster, opts);
  wl.start();
  sim.run_until(sim::seconds(20));
  EXPECT_GT(wl.ops_completed(), 20u);
  EXPECT_GT(cluster.total_write_bytes(), 0u);
  EXPECT_GT(cluster.total_read_bytes(), 0u);
  std::uint64_t metadata = 0;
  for (std::size_t j = 0; j < cluster.num_servers(); ++j) {
    metadata += cluster.server(j).metadata_served();
  }
  EXPECT_GT(metadata, 0u);
}

TEST(FileServer, FileSetNeverEmpties) {
  sim::Simulator sim;
  lustre::Cluster cluster(sim, small_cluster());
  FileServerOptions opts;
  opts.instances_per_client = 2;
  opts.files_per_instance = 2;
  opts.mean_file_bytes = 1 << 20;
  FileServer wl(cluster, opts);
  wl.start();
  // If the delete op could empty the set, a later read would crash;
  // surviving a long run is the property.
  sim.run_until(sim::seconds(60));
  EXPECT_GT(wl.ops_completed(), 50u);
}

TEST(FileServer, StopHalts) {
  sim::Simulator sim;
  lustre::Cluster cluster(sim, small_cluster());
  FileServerOptions opts;
  opts.instances_per_client = 2;
  opts.mean_file_bytes = 1 << 20;
  FileServer wl(cluster, opts);
  wl.start();
  sim.run_until(sim::seconds(10));
  wl.request_stop();
  sim.run_until(sim::seconds(30));
  const auto after_drain = wl.ops_completed();
  sim.run_until(sim::seconds(40));
  EXPECT_EQ(wl.ops_completed(), after_drain);
}

TEST(MakeFileId, DisjointAcrossClients) {
  EXPECT_NE(make_file_id(0, 5), make_file_id(1, 5));
  EXPECT_EQ(make_file_id(2, 7), make_file_id(2, 7));
}

}  // namespace
}  // namespace capes::workload
