// Workload registry: built-in registration, spec parsing/validation, and
// the self-registration macro for workloads defined outside the library.

#include "workload/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "lustre/cluster.hpp"
#include "sim/simulator.hpp"

namespace capes::workload {
namespace {

lustre::ClusterOptions tiny_cluster_options() {
  lustre::ClusterOptions opts;
  opts.num_clients = 2;
  opts.num_servers = 2;
  return opts;
}

struct RegistryFixture : ::testing::Test {
  sim::Simulator sim;
  lustre::Cluster cluster{sim, tiny_cluster_options()};
  Registry& registry = Registry::instance();
};

using RegistryTest = RegistryFixture;

TEST_F(RegistryTest, BuiltinsAreRegistered) {
  const auto names = registry.names();
  for (const char* expected : {"fileserver", "random", "seqwrite"}) {
    EXPECT_TRUE(registry.contains(expected)) << expected;
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end());
    EXPECT_FALSE(registry.spec_help(expected).empty());
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST_F(RegistryTest, CreatesRandomWithFraction) {
  std::string error;
  auto wl = registry.create("random:0.3", cluster, &error);
  ASSERT_NE(wl, nullptr) << error;
  EXPECT_EQ(wl->name(), "random_rw(r=0.3)");
}

TEST_F(RegistryTest, CreatesBareNamesWithDefaults) {
  for (const char* spec : {"random", "fileserver", "seqwrite"}) {
    std::string error;
    EXPECT_NE(registry.create(spec, cluster, &error), nullptr)
        << spec << ": " << error;
  }
}

TEST_F(RegistryTest, UnknownNameFailsWithError) {
  std::string error;
  EXPECT_EQ(registry.create("bogus:1", cluster, &error), nullptr);
  EXPECT_NE(error.find("unknown workload"), std::string::npos);
  EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST_F(RegistryTest, RandomRejectsOutOfRangeOrGarbageFraction) {
  for (const char* spec : {"random:1.5", "random:-0.1", "random:abc"}) {
    std::string error;
    EXPECT_EQ(registry.create(spec, cluster, &error), nullptr) << spec;
    EXPECT_NE(error.find("[0, 1]"), std::string::npos) << error;
  }
}

TEST_F(RegistryTest, NamedArgsParse) {
  std::string error;
  EXPECT_NE(registry.create("random:0.5,seed=9,threads=2", cluster, &error),
            nullptr)
      << error;
  EXPECT_NE(registry.create("fileserver:seed=3,instances=2,files=2", cluster,
                            &error),
            nullptr)
      << error;
  EXPECT_NE(registry.create("seqwrite:streams=3", cluster, &error), nullptr)
      << error;
}

TEST_F(RegistryTest, UnknownOrMalformedArgsFail) {
  std::string error;
  EXPECT_EQ(registry.create("random:0.5,bogus=1", cluster, &error), nullptr);
  EXPECT_NE(error.find("bogus"), std::string::npos);
  // fileserver takes no positional args.
  EXPECT_EQ(registry.create("fileserver:0.5", cluster, &error), nullptr);
  // Zero-sized knobs are rejected, not silently accepted.
  EXPECT_EQ(registry.create("seqwrite:streams=0", cluster, &error), nullptr);
  // Trailing comma / empty argument.
  EXPECT_EQ(registry.create("random:0.5,", cluster, &error), nullptr);
  // Malformed key=value.
  EXPECT_EQ(registry.create("random:seed=", cluster, &error), nullptr);
}

TEST(RegistrySpecArgs, SplitsPositionalAndNamed) {
  SpecArgs args;
  std::string error;
  ASSERT_TRUE(parse_spec_args("0.3,seed=7,threads=2", &args, &error)) << error;
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "0.3");
  EXPECT_EQ(args.named.at("seed"), "7");
  EXPECT_EQ(args.named.at("threads"), "2");
}

// A minimal workload defined and registered entirely outside the library,
// the way a downstream binary would plug one in.
class NullWorkload : public Workload {
 public:
  void start() override {}
  void request_stop() override {}
  std::string name() const override { return "null"; }
  std::uint64_t ops_completed() const override { return 0; }
};

CAPES_REGISTER_WORKLOAD(null_workload, "null", "null — does nothing",
                        [](lustre::Cluster&, const SpecArgs&, std::string*) {
                          return std::make_unique<NullWorkload>();
                        })

TEST_F(RegistryTest, MacroSelfRegistrationWorks) {
  ASSERT_TRUE(registry.contains("null"));
  auto wl = registry.create("null", cluster);
  ASSERT_NE(wl, nullptr);
  EXPECT_EQ(wl->name(), "null");
}

TEST_F(RegistryTest, DuplicateNameIsRejected) {
  EXPECT_FALSE(registry.add(
      "random", "dup", [](lustre::Cluster&, const SpecArgs&, std::string*) {
        return std::unique_ptr<Workload>();
      }));
}

}  // namespace
}  // namespace capes::workload
