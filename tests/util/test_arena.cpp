#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "util/alloc_hook.hpp"

namespace capes::util {
namespace {

TEST(Arena, AllocationsAreDistinctAndWritable) {
  Arena arena(1024);
  auto* a = arena.alloc_array<std::uint64_t>(10);
  auto* b = arena.alloc_array<std::uint64_t>(10);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  for (int i = 0; i < 10; ++i) {
    a[i] = 1;
    b[i] = 2;
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a[i], 1u);
    EXPECT_EQ(b[i], 2u);
  }
}

TEST(Arena, RespectsAlignment) {
  Arena arena(1024);
  arena.allocate(1, 1);
  void* p = arena.allocate(16, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  arena.allocate(3, 1);
  void* q = arena.allocate(8, 32);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % 32, 0u);
}

TEST(Arena, ResetReusesTheSameStorage) {
  Arena arena(1024);
  void* first = arena.allocate(100);
  arena.reset();
  void* second = arena.allocate(100);
  EXPECT_EQ(first, second);
  EXPECT_EQ(arena.overflow_blocks(), 0u);
}

TEST(Arena, OverflowServesAllocationAndGrowsOnReset) {
  Arena arena(64);
  void* small = arena.allocate(32);
  ASSERT_NE(small, nullptr);
  // Does not fit: must still be served, tracked as overflow.
  void* big = arena.allocate(1024);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(arena.overflow_blocks(), 1u);
  std::memset(big, 0xab, 1024);
  arena.reset();
  EXPECT_EQ(arena.overflow_blocks(), 0u);
  // After the growth fold-in the same demand fits in the main buffer.
  void* again = arena.allocate(1024);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(arena.overflow_blocks(), 0u);
}

TEST(Arena, SteadyStateIsAllocationFree) {
  Arena arena(16);  // deliberately small: warmup must grow
  for (int warm = 0; warm < 3; ++warm) {
    arena.reset();
    arena.alloc_array<float>(200);
    arena.alloc_array<std::int64_t>(50);
  }
  // Steady state: same per-tick demand, zero heap traffic.
  AllocTally tally;
  for (int tick = 0; tick < 100; ++tick) {
    arena.reset();
    auto* f = arena.alloc_array<float>(200);
    auto* i = arena.alloc_array<std::int64_t>(50);
    f[199] = 1.0f;
    i[49] = 7;
  }
  EXPECT_EQ(tally.delta(), 0u);
}

TEST(Arena, HighWaterTracksPeakUse) {
  Arena arena(4096);
  arena.allocate(100, 1);
  arena.reset();
  arena.allocate(300, 1);
  EXPECT_GE(arena.high_water(), 300u);
  EXPECT_LE(arena.high_water(), arena.capacity());
}

// N3664 lets the compiler elide unobserved new-*expressions* (which -O2
// did to a naive `new int` here), but direct calls to the allocation
// functions are real calls and always hit the hook.

TEST(AllocHook, CountsHeapAllocations) {
  ASSERT_TRUE(allocation_hook_active());
  AllocTally tally;
  for (int i = 0; i < 10; ++i) {
    void* p = ::operator new(16);
    ::operator delete(p);
  }
  EXPECT_GE(tally.delta(), 10u);
}

TEST(AllocHook, TallyRestartsCleanly) {
  AllocTally tally;
  void* p = ::operator new(16);
  ::operator delete(p);
  EXPECT_GE(tally.delta(), 1u);
  tally.restart();
  // No allocations after restart() from this thread; other test threads
  // do not run concurrently, so the delta stays zero.
  EXPECT_EQ(tally.delta(), 0u);
}

}  // namespace
}  // namespace capes::util
