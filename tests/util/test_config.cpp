#include "util/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace capes::util {
namespace {

TEST(Config, ParseBasicKeyValue) {
  Config c;
  ASSERT_TRUE(c.parse_string("a = 1\nb = hello\n"));
  EXPECT_EQ(c.get_int("a", 0), 1);
  EXPECT_EQ(c.get("b", ""), "hello");
}

TEST(Config, CommentsAndBlanksIgnored) {
  Config c;
  ASSERT_TRUE(c.parse_string("# comment\n\n  # indented comment\nx = 2\n"));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.get_int("x", 0), 2);
}

TEST(Config, WhitespaceTrimmed) {
  Config c;
  ASSERT_TRUE(c.parse_string("  key.with.dots   =   some value  \n"));
  EXPECT_EQ(c.get("key.with.dots", ""), "some value");
}

TEST(Config, MalformedLineFails) {
  Config c;
  EXPECT_FALSE(c.parse_string("novalue\n"));
  EXPECT_FALSE(c.parse_string("= novalue\n"));
}

TEST(Config, LaterKeysOverride) {
  Config c;
  ASSERT_TRUE(c.parse_string("k = 1\nk = 2\n"));
  EXPECT_EQ(c.get_int("k", 0), 2);
}

TEST(Config, EmptyValueAllowed) {
  Config c;
  ASSERT_TRUE(c.parse_string("k =\n"));
  EXPECT_TRUE(c.has("k"));
  EXPECT_EQ(c.get("k", "x"), "");
}

TEST(Config, TypedGettersFallBackOnMissing) {
  Config c;
  EXPECT_EQ(c.get_int("nope", 42), 42);
  EXPECT_DOUBLE_EQ(c.get_double("nope", 2.5), 2.5);
  EXPECT_TRUE(c.get_bool("nope", true));
  EXPECT_EQ(c.get("nope", "d"), "d");
}

TEST(Config, TypedGettersFallBackOnUnparsable) {
  Config c;
  c.set("k", "not_a_number");
  EXPECT_EQ(c.get_int("k", 9), 9);
  EXPECT_DOUBLE_EQ(c.get_double("k", 1.5), 1.5);
}

TEST(Config, IntRejectsTrailingGarbage) {
  Config c;
  c.set("k", "12abc");
  EXPECT_EQ(c.get_int("k", -1), -1);
}

TEST(Config, DoubleParsesScientific) {
  Config c;
  c.set("k", "1e-4");
  EXPECT_DOUBLE_EQ(c.get_double("k", 0.0), 1e-4);
}

TEST(Config, NegativeNumbers) {
  Config c;
  c.set("k", "-17");
  EXPECT_EQ(c.get_int("k", 0), -17);
  EXPECT_DOUBLE_EQ(c.get_double("k", 0.0), -17.0);
}

TEST(Config, BoolVariants) {
  Config c;
  for (const char* t : {"true", "1", "yes", "on", "TRUE", "Yes"}) {
    c.set("k", t);
    EXPECT_TRUE(c.get_bool("k", false)) << t;
  }
  for (const char* f : {"false", "0", "no", "off", "FALSE"}) {
    c.set("k", f);
    EXPECT_FALSE(c.get_bool("k", true)) << f;
  }
  c.set("k", "maybe");
  EXPECT_TRUE(c.get_bool("k", true));
}

TEST(Config, SettersRoundTrip) {
  Config c;
  c.set_int("i", -5);
  c.set_double("d", 0.125);
  c.set_bool("b", true);
  EXPECT_EQ(c.get_int("i", 0), -5);
  EXPECT_DOUBLE_EQ(c.get_double("d", 0.0), 0.125);
  EXPECT_TRUE(c.get_bool("b", false));
}

TEST(Config, StrictGetReturnsNullopt) {
  Config c;
  EXPECT_FALSE(c.get("missing").has_value());
  c.set("k", "v");
  ASSERT_TRUE(c.get("k").has_value());
  EXPECT_EQ(*c.get("k"), "v");
}

TEST(Config, KeysSorted) {
  Config c;
  c.set("zebra", "1");
  c.set("apple", "2");
  c.set("mango", "3");
  const auto keys = c.keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "apple");
  EXPECT_EQ(keys[2], "zebra");
}

TEST(Config, DumpParsesBack) {
  Config c;
  c.set_int("a.b", 7);
  c.set("s", "text value");
  Config c2;
  ASSERT_TRUE(c2.parse_string(c.dump()));
  EXPECT_EQ(c2.get_int("a.b", 0), 7);
  EXPECT_EQ(c2.get("s", ""), "text value");
}

TEST(Config, MergeOtherWins) {
  Config a, b;
  a.set("k", "old");
  a.set("only_a", "1");
  b.set("k", "new");
  a.merge(b);
  EXPECT_EQ(a.get("k", ""), "new");
  EXPECT_EQ(a.get("only_a", ""), "1");
}

TEST(Config, ParseFileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "capes_cfg_test.conf").string();
  {
    std::ofstream out(path);
    out << "# test\nlustre.num_clients = 3\ndrl.gamma = 0.9\n";
  }
  Config c;
  ASSERT_TRUE(c.parse_file(path));
  EXPECT_EQ(c.get_int("lustre.num_clients", 0), 3);
  EXPECT_DOUBLE_EQ(c.get_double("drl.gamma", 0.0), 0.9);
  std::remove(path.c_str());
}

TEST(Config, ParseFileMissingFails) {
  Config c;
  EXPECT_FALSE(c.parse_file("/nonexistent/capes.conf"));
}

}  // namespace
}  // namespace capes::util
