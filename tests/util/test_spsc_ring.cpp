#include "util/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace capes::util {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(9).capacity(), 16u);
}

TEST(SpscRing, PushPopFifoOrder) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_EQ(ring.size(), 4u);
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, TryPushFailsWhenFull) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));
  int v = 0;
  EXPECT_TRUE(ring.try_pop(v));
  EXPECT_TRUE(ring.try_push(3));  // room again after a pop
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ring.try_push(std::uint64_t(i)));
    std::uint64_t v = 0;
    EXPECT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, expect++);
  }
}

TEST(SpscRing, CloseUnblocksConsumerAndDrains) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  ring.close();
  EXPECT_FALSE(ring.try_push(3));  // closed refuses new work
  int v = 0;
  EXPECT_TRUE(ring.pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ring.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(ring.pop(v));  // drained + closed
}

TEST(SpscRing, BlockingPopWaitsForProducer) {
  SpscRing<int> ring(2);
  int got = 0;
  std::thread consumer([&] {
    int v = 0;
    if (ring.pop(v)) got = v;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(ring.push(42));
  consumer.join();
  EXPECT_EQ(got, 42);
}

TEST(SpscRing, BlockingPushWaitsForConsumer) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  std::thread producer([&] { EXPECT_TRUE(ring.push(3)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  int v = 0;
  EXPECT_TRUE(ring.pop(v));
  producer.join();
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ring.try_pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(ring.try_pop(v));
  EXPECT_EQ(v, 3);
}

TEST(SpscRing, CloseUnblocksWaitingConsumer) {
  SpscRing<int> ring(2);
  bool returned_false = false;
  std::thread consumer([&] {
    int v = 0;
    returned_false = !ring.pop(v);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ring.close();
  consumer.join();
  EXPECT_TRUE(returned_false);
}

// The learner-shaped stress: one producer streams a million values, one
// consumer sums them; every value arrives exactly once, in order.
TEST(SpscRing, ProducerConsumerStressPreservesOrderAndCount) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kN = 1000000;
  std::uint64_t sum = 0;
  bool ordered = true;
  std::thread consumer([&] {
    std::uint64_t expect = 0;
    std::uint64_t v = 0;
    while (ring.pop(v)) {
      if (v != expect++) ordered = false;
      sum += v;
    }
  });
  for (std::uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(ring.push(std::uint64_t(i)));
  ring.close();
  consumer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

// Tiny ring, fast producer: try_push fails constantly (full-ring
// backpressure) and the producer spins — yet nothing is lost or
// reordered across the thousands of forced wraparounds.
TEST(SpscRing, BackpressureStressLosesNothing) {
  SpscRing<std::uint32_t> ring(2);
  constexpr std::uint32_t kN = 200000;
  std::uint64_t rejected = 0;
  bool ordered = true;
  std::thread consumer([&] {
    std::uint32_t expect = 0;
    std::uint32_t v = 0;
    while (ring.pop(v)) {
      if (v != expect++) ordered = false;
    }
    if (expect != kN) ordered = false;
  });
  for (std::uint32_t i = 0; i < kN; ++i) {
    while (!ring.try_push(std::uint32_t(i))) ++rejected;
  }
  ring.close();
  consumer.join();
  EXPECT_TRUE(ordered);
  // A capacity-2 ring against a spinning producer must have pushed back.
  EXPECT_GT(rejected, 0u);
}

// close() while records are still queued: the consumer drains every
// buffered value before pop() reports shutdown, so an async sink (the
// capture writer, the learner) never drops the tail on exit.
TEST(SpscRing, ShutdownDrainStressDeliversEveryBufferedValue) {
  for (int round = 0; round < 50; ++round) {
    SpscRing<int> ring(16);
    std::uint64_t delivered = 0;
    std::thread consumer([&] {
      int v = 0;
      while (ring.pop(v)) ++delivered;
    });
    std::uint64_t pushed = 0;
    for (int i = 0; i < 1000; ++i) {
      if (ring.try_push(int(i))) ++pushed;
    }
    ring.close();  // races against the consumer's drain
    consumer.join();
    EXPECT_EQ(delivered, pushed) << "round " << round;
  }
}

// The capture-writer shape: a pool of slots circulating through two
// rings (free: consumer->producer, work: producer->consumer). Slots are
// conserved — the producer only ever drops when the pool is exhausted,
// and every slot pushed to the work ring comes back.
TEST(SpscRing, TwoRingSlotRecyclingConservesSlots) {
  constexpr std::size_t kSlots = 8;
  SpscRing<int> free_ring(kSlots);
  SpscRing<int> work_ring(kSlots);
  for (std::size_t i = 0; i < kSlots; ++i) {
    ASSERT_TRUE(free_ring.try_push(int(i)));
  }
  std::uint64_t consumed = 0;
  std::thread consumer([&] {
    int slot = -1;
    while (work_ring.pop(slot)) {
      ++consumed;
      free_ring.try_push(int(slot));  // recycle
    }
    free_ring.close();
  });
  std::uint64_t sent = 0;
  std::uint64_t dropped = 0;
  for (int i = 0; i < 100000; ++i) {
    int slot = -1;
    if (!free_ring.try_pop(slot)) {
      ++dropped;  // pool exhausted: shed, never block
      continue;
    }
    ASSERT_TRUE(work_ring.try_push(int(slot)));  // never full while conserved
    ++sent;
  }
  work_ring.close();
  consumer.join();
  EXPECT_EQ(consumed, sent);
  EXPECT_EQ(sent + dropped, 100000u);
  // Every slot is back in exactly one place: the (closed) free ring.
  std::uint64_t recovered = free_ring.size();
  EXPECT_EQ(recovered, kSlots);
}

TEST(SpscRing, MovesNonTrivialPayloads) {
  SpscRing<std::vector<int>> ring(4);
  std::vector<int> payload(100);
  std::iota(payload.begin(), payload.end(), 0);
  const int* data = payload.data();
  EXPECT_TRUE(ring.try_push(std::move(payload)));
  std::vector<int> out;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(out.data(), data);  // moved, not copied
}

}  // namespace
}  // namespace capes::util
