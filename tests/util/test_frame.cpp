// Little-endian frame field helpers: exact byte layout, round trips, and
// f64 bit preservation (the capture log and tcp wire format both lean on
// these for cross-machine byte identity).

#include "util/frame.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace capes::util {
namespace {

TEST(Frame, PutLe32WritesLittleEndianBytes) {
  std::uint8_t buf[4] = {};
  put_le32(buf, 0x04030201u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
  EXPECT_EQ(buf[2], 0x03);
  EXPECT_EQ(buf[3], 0x04);
}

TEST(Frame, PutLe64WritesLittleEndianBytes) {
  std::uint8_t buf[8] = {};
  put_le64(buf, 0x0807060504030201ull);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(buf[i], static_cast<std::uint8_t>(i + 1));
  }
}

TEST(Frame, RoundTrips32) {
  std::uint8_t buf[4];
  for (std::uint32_t v : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    put_le32(buf, v);
    EXPECT_EQ(get_le32(buf), v);
  }
}

TEST(Frame, RoundTrips64) {
  std::uint8_t buf[8];
  const std::uint64_t values[] = {0, 1, 0x0123456789abcdefull,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : values) {
    put_le64(buf, v);
    EXPECT_EQ(get_le64(buf), v);
  }
}

TEST(Frame, RoundTripsF64BitExactly) {
  std::uint8_t buf[8];
  for (double v : {0.0, -0.0, 1.5, -3.14159265358979, 1e-300, 1e300,
                   std::numeric_limits<double>::infinity()}) {
    put_le_f64(buf, v);
    const double back = get_le_f64(buf);
    EXPECT_EQ(std::memcmp(&back, &v, sizeof(v)), 0);
  }
  put_le_f64(buf, std::nan(""));
  EXPECT_TRUE(std::isnan(get_le_f64(buf)));
}

}  // namespace
}  // namespace capes::util
