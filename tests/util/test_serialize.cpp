#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>

namespace capes::util {
namespace {

TEST(Serialize, PrimitivesRoundTrip) {
  BinaryWriter w;
  w.put_u8(0xAB);
  w.put_u16(0x1234);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_i64(-42);
  w.put_f32(3.25f);
  w.put_f64(-1e300);

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_EQ(r.get_f32(), 3.25f);
  EXPECT_EQ(r.get_f64(), -1e300);
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, LittleEndianLayout) {
  BinaryWriter w;
  w.put_u32(0x01020304);
  const auto& b = w.buffer();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[3], 0x01);
}

TEST(Serialize, FloatSpecialValues) {
  BinaryWriter w;
  w.put_f32(std::numeric_limits<float>::infinity());
  w.put_f32(-0.0f);
  w.put_f64(std::numeric_limits<double>::quiet_NaN());
  BinaryReader r(w.buffer());
  EXPECT_TRUE(std::isinf(*r.get_f32()));
  EXPECT_EQ(*r.get_f32(), 0.0f);
  EXPECT_TRUE(std::isnan(*r.get_f64()));
}

TEST(Serialize, StringRoundTrip) {
  BinaryWriter w;
  w.put_string("");
  w.put_string("hello world");
  std::string binary("\x00\x01\x02", 3);
  w.put_string(binary);
  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.get_string(), "");
  EXPECT_EQ(*r.get_string(), "hello world");
  EXPECT_EQ(*r.get_string(), binary);
}

TEST(Serialize, F32VectorRoundTrip) {
  BinaryWriter w;
  w.put_f32_vector({1.0f, -2.5f, 0.0f});
  w.put_f32_vector({});
  BinaryReader r(w.buffer());
  auto v = r.get_f32_vector();
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->size(), 3u);
  EXPECT_EQ((*v)[1], -2.5f);
  auto empty = r.get_f32_vector();
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(Serialize, TruncationReturnsNullopt) {
  BinaryWriter w;
  w.put_u64(1);
  std::vector<std::uint8_t> buf = w.take();
  buf.pop_back();
  BinaryReader r(buf);
  EXPECT_FALSE(r.get_u64().has_value());
}

TEST(Serialize, TruncatedStringFails) {
  BinaryWriter w;
  w.put_u32(100);  // claims a 100-byte string
  w.put_raw("abc", 3);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.get_string().has_value());
}

TEST(Serialize, TruncatedVectorFails) {
  BinaryWriter w;
  w.put_u64(1000);  // claims 1000 floats
  w.put_f32(1.0f);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.get_f32_vector().has_value());
}

TEST(Serialize, RawBytes) {
  BinaryWriter w;
  const std::uint8_t data[] = {9, 8, 7};
  w.put_raw(data, 3);
  BinaryReader r(w.buffer());
  std::uint8_t out[3];
  ASSERT_TRUE(r.get_raw(out, 3));
  EXPECT_EQ(out[1], 8);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "capes_ser_test.bin").string();
  std::vector<std::uint8_t> data{1, 2, 3, 255, 0};
  ASSERT_TRUE(write_file(path, data));
  auto back = read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
  std::remove(path.c_str());
}

TEST(Serialize, EmptyFileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "capes_ser_empty.bin").string();
  ASSERT_TRUE(write_file(path, {}));
  auto back = read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
  std::remove(path.c_str());
}

TEST(Serialize, ReadMissingFileFails) {
  EXPECT_FALSE(read_file("/nonexistent/capes.bin").has_value());
}

}  // namespace
}  // namespace capes::util
