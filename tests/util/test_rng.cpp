#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace capes::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 50; ++i) values.insert(r.next_u64());
  EXPECT_GT(values.size(), 45u);  // not stuck
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformU64Bounded) {
  Rng r(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniform_u64(7), 7u);
  }
}

TEST(Rng, UniformU64CoversAllResidues) {
  Rng r(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_u64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(23);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng r(29);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaledMeanStddev) {
  Rng r(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(37);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ExponentialIsPositive) {
  Rng r(41);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.exponential(3.0), 0.0);
}

TEST(Rng, ChanceExtremes) {
  Rng r(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng r(47);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(53);
  Rng child = a.split();
  // Child should not replay the parent sequence.
  Rng b(53);
  b.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == a.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(59);
  std::vector<std::size_t> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
  std::vector<std::size_t> orig = v;
  r.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
  EXPECT_NE(v, orig);  // overwhelmingly likely
}

TEST(Rng, PickIndexWithinBounds) {
  Rng r(61);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.pick_index(13), 13u);
}

class RngChiSquared : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngChiSquared, BucketsAreRoughlyUniform) {
  Rng r(GetParam());
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[static_cast<int>(r.uniform() * kBuckets)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // df = 15; 0.999 quantile ~ 37.7. Very loose bound.
  EXPECT_LT(chi2, 45.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngChiSquared,
                         ::testing::Values(1, 2, 3, 42, 1234, 99999));

}  // namespace
}  // namespace capes::util
