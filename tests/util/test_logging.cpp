#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace capes::util {
namespace {

/// Capture the logger's output in a temp file and return its lines.
class SinkCapture {
 public:
  SinkCapture() : file_(std::tmpfile()) { Logger::instance().set_sink(file_); }
  ~SinkCapture() {
    Logger::instance().set_sink(nullptr);
    std::fclose(file_);
  }

  std::vector<std::string> lines() {
    Logger::instance().flush();
    std::fflush(file_);
    std::rewind(file_);
    std::vector<std::string> out;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), file_) != nullptr) {
      std::string line(buf);
      if (!line.empty() && line.back() == '\n') line.pop_back();
      out.push_back(std::move(line));
    }
    return out;
  }

 private:
  std::FILE* file_;
};

TEST(Logging, LevelFilterDropsBelowThreshold) {
  SinkCapture capture;
  Logger::instance().set_level(LogLevel::kWarn);
  CAPES_LOG_DEBUG("t") << "dropped";
  CAPES_LOG_INFO("t") << "dropped too";
  CAPES_LOG_WARN("t") << "kept";
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[WARN] t: kept");
}

TEST(Logging, AsyncDrainDeliversEveryLineUntorn) {
  SinkCapture capture;
  Logger::instance().set_level(LogLevel::kInfo);
  Logger::instance().enable_async();
  ASSERT_TRUE(Logger::instance().async());

  // Hammer the logger from the worker pool — the satellite's failure
  // mode was torn/interleaved lines once workers logged concurrently.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  ThreadPool pool(kThreads);
  pool.parallel_for(kThreads * kPerThread, [](std::size_t i) {
    CAPES_LOG_INFO("worker") << "line payload " << i << " tail";
  });

  const auto lines = capture.lines();
  std::size_t ours = 0;
  for (const auto& line : lines) {
    if (line.find("worker") == std::string::npos) continue;
    ++ours;
    // Untorn: every line is exactly the shape one log call produced.
    EXPECT_EQ(line.rfind("[INFO] worker: line payload ", 0), 0u) << line;
    EXPECT_EQ(line.substr(line.size() - 5), " tail") << line;
  }
  EXPECT_EQ(ours, static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(Logging, FlushWaitsForQueuedLines) {
  SinkCapture capture;
  Logger::instance().set_level(LogLevel::kInfo);
  Logger::instance().enable_async();
  const std::uint64_t before = Logger::instance().lines_written();
  for (int i = 0; i < 100; ++i) CAPES_LOG_INFO("flush") << "n=" << i;
  Logger::instance().flush();
  EXPECT_GE(Logger::instance().lines_written() - before, 100u);
}

}  // namespace
}  // namespace capes::util
