#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace capes::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, DefaultSizeNonZero) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(4);
  int value = 0;
  pool.parallel_for(1, [&](std::size_t i) { value = static_cast<int>(i) + 5; });
  EXPECT_EQ(value, 5);
}

TEST(ThreadPool, ParallelForComputesCorrectSum) {
  ThreadPool pool(4);
  std::vector<long> out(5000);
  pool.parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<long>(i) * 2;
  });
  const long sum = std::accumulate(out.begin(), out.end(), 0L);
  EXPECT_EQ(sum, 2L * 4999 * 5000 / 2);
}

TEST(ThreadPool, ParallelForRethrowsWorkerChunkException) {
  ThreadPool pool(3);
  // Only indices handled by worker chunks throw (the caller handles the
  // first chunk); the exception must surface at the synchronization
  // point instead of silently terminating a worker.
  EXPECT_THROW(pool.parallel_for(1000,
                                 [](std::size_t i) {
                                   if (i >= 900) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsCallerChunkException) {
  ThreadPool pool(3);
  // The caller's own chunk (index 0) throwing must not unwind past the
  // in-flight worker chunks — that left workers holding a dangling
  // reference to the body. Every *worker* chunk still completes (the
  // throw only aborts the caller's own chunk of 250); the exception
  // surfaces after the join.
  std::atomic<int> visited{0};
  EXPECT_THROW(pool.parallel_for(1000,
                                 [&](std::size_t i) {
                                   if (i == 0) throw std::runtime_error("early");
                                   visited.fetch_add(1);
                                 }),
               std::runtime_error);
  EXPECT_EQ(visited.load(), 750);  // 3 worker chunks of 250
}

TEST(ThreadPool, PoolUsableAfterParallelForException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DestructionDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace capes::util
