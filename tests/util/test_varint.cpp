#include "util/varint.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace capes::util {
namespace {

TEST(Zigzag, SmallValuesMapSmall) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  EXPECT_EQ(zigzag_encode(2), 4u);
}

TEST(Zigzag, RoundTripExtremes) {
  for (std::int64_t v : {std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max(),
                         std::int64_t{0}, std::int64_t{-123456789}}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(Varint, SingleByteValues) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 0);
  put_varint(buf, 127);
  EXPECT_EQ(buf.size(), 2u);
  VarintReader r(buf);
  EXPECT_EQ(r.read_varint(), 0u);
  EXPECT_EQ(r.read_varint(), 127u);
  EXPECT_TRUE(r.at_end());
}

TEST(Varint, TwoByteBoundary) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  VarintReader r(buf);
  EXPECT_EQ(r.read_varint(), 128u);
}

TEST(Varint, MaxU64RoundTrip) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(buf.size(), 10u);
  VarintReader r(buf);
  EXPECT_EQ(r.read_varint(), std::numeric_limits<std::uint64_t>::max());
}

TEST(Varint, TruncatedReadFails) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 1u << 20);
  buf.pop_back();
  VarintReader r(buf);
  EXPECT_FALSE(r.read_varint().has_value());
}

TEST(Varint, EmptyBufferFails) {
  VarintReader r(nullptr, 0);
  EXPECT_FALSE(r.read_varint().has_value());
  EXPECT_TRUE(r.at_end());
}

TEST(Varint, OverlongEncodingRejected) {
  // 11 continuation bytes exceed 64 bits of payload.
  std::vector<std::uint8_t> buf(11, 0x80);
  buf.push_back(0x01);
  VarintReader r(buf);
  EXPECT_FALSE(r.read_varint().has_value());
}

TEST(Varint, SignedRoundTrip) {
  std::vector<std::uint8_t> buf;
  for (std::int64_t v : {0LL, -1LL, 1LL, -300LL, 300LL, -123456789LL}) {
    put_svarint(buf, v);
  }
  VarintReader r(buf);
  for (std::int64_t v : {0LL, -1LL, 1LL, -300LL, 300LL, -123456789LL}) {
    auto got = r.read_svarint();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }
}

TEST(Varint, ReadBytes) {
  std::vector<std::uint8_t> buf{1, 2, 3, 4, 5};
  VarintReader r(buf);
  std::uint8_t out[3];
  ASSERT_TRUE(r.read_bytes(out, 3));
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[2], 3);
  EXPECT_FALSE(r.read_bytes(out, 3));  // only 2 left
}

class VarintSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintSweep, RoundTripsAndIsCompact) {
  const std::uint64_t v = GetParam();
  std::vector<std::uint8_t> buf;
  put_varint(buf, v);
  // Expected size: ceil(bits/7).
  std::size_t bits = 1;
  for (std::uint64_t x = v; x > 1; x >>= 1) ++bits;
  const std::size_t expected = (bits + 6) / 7;
  EXPECT_EQ(buf.size(), expected);
  VarintReader r(buf);
  EXPECT_EQ(r.read_varint(), v);
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintSweep,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                      (1ull << 21) - 1, 1ull << 21, 1ull << 32, 1ull << 56,
                      ~0ull));

}  // namespace
}  // namespace capes::util
