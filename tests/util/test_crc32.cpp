#include "util/crc32.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace capes::util {
namespace {

TEST(Crc32, KnownVector) {
  // Standard IEEE CRC-32 of "123456789" is 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, std::strlen(s)), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32(nullptr, 0), 0u); }

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc32(data.data(), data.size());
  std::uint32_t inc = 0;
  for (std::size_t i = 0; i < data.size(); i += 5) {
    const std::size_t n = std::min<std::size_t>(5, data.size() - i);
    inc = crc32_update(inc, data.data() + i, n);
  }
  EXPECT_EQ(inc, whole);
}

TEST(Crc32, SingleBitFlipDetected) {
  std::string data(64, 'x');
  const std::uint32_t orig = crc32(data.data(), data.size());
  for (std::size_t i = 0; i < data.size(); i += 7) {
    std::string mutated = data;
    mutated[i] ^= 0x01;
    EXPECT_NE(crc32(mutated.data(), mutated.size()), orig) << "bit " << i;
  }
}

TEST(Crc32, OrderSensitive) {
  const char a[] = {'a', 'b'};
  const char b[] = {'b', 'a'};
  EXPECT_NE(crc32(a, 2), crc32(b, 2));
}

}  // namespace
}  // namespace capes::util
