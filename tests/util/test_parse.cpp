// Strict numeric parsing: the whole string must be a valid number; the
// atoll-style "garbage becomes 0" behaviour these helpers replace must
// never come back.

#include "util/parse.hpp"

#include <gtest/gtest.h>

namespace capes::util {
namespace {

TEST(ParseI64, AcceptsPlainIntegers) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_i64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_i64("-17", &v));
  EXPECT_EQ(v, -17);
  EXPECT_TRUE(parse_i64("0", &v));
  EXPECT_EQ(v, 0);
}

TEST(ParseI64, RejectsGarbage) {
  std::int64_t v = 99;
  EXPECT_FALSE(parse_i64("abc", &v));
  EXPECT_FALSE(parse_i64("12abc", &v));
  EXPECT_FALSE(parse_i64("", &v));
  EXPECT_FALSE(parse_i64("1.5", &v));
  EXPECT_FALSE(parse_i64(" 3", &v));  // no silent whitespace trimming
  EXPECT_FALSE(parse_i64("99999999999999999999999", &v));  // overflow
  EXPECT_EQ(v, 99);  // failures leave the output untouched
}

TEST(ParseU64, AcceptsAndRejects) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("18446744073709551615", &v));  // UINT64_MAX
  EXPECT_EQ(v, 18446744073709551615ull);
  EXPECT_FALSE(parse_u64("-1", &v));  // strtoull would wrap this silently
  EXPECT_FALSE(parse_u64("1e3", &v));
  EXPECT_FALSE(parse_u64("", &v));
}

TEST(ParseDouble, AcceptsDecimalForms) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("0.3", &v));
  EXPECT_DOUBLE_EQ(v, 0.3);
  EXPECT_TRUE(parse_double("-2.5e-3", &v));
  EXPECT_DOUBLE_EQ(v, -2.5e-3);
  EXPECT_TRUE(parse_double("7", &v));
  EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(ParseDouble, RejectsNonDecimalForms) {
  double v = 1.0;
  EXPECT_FALSE(parse_double("abc", &v));
  EXPECT_FALSE(parse_double("0.3x", &v));
  EXPECT_FALSE(parse_double("nan", &v));
  EXPECT_FALSE(parse_double("inf", &v));
  EXPECT_FALSE(parse_double("0x10", &v));
  EXPECT_FALSE(parse_double("", &v));
  EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(ParseFlag, SplitsNameValueArguments) {
  std::string value;
  EXPECT_TRUE(parse_flag("--ticks=150", "--ticks", &value));
  EXPECT_EQ(value, "150");
  EXPECT_TRUE(parse_flag("--json=", "--json", &value));
  EXPECT_EQ(value, "");
  value = "untouched";
  EXPECT_FALSE(parse_flag("--ticks", "--ticks", &value));     // no '='
  EXPECT_FALSE(parse_flag("--ticksx=1", "--ticks", &value));  // wrong name
  EXPECT_FALSE(parse_flag("--tick=1", "--ticks", &value));
  EXPECT_EQ(value, "untouched");
}

}  // namespace
}  // namespace capes::util
