#include "rl/action_space.hpp"

#include <gtest/gtest.h>

namespace capes::rl {
namespace {

ActionSpace two_param_space() {
  TunableParameter cwnd{"cwnd", 1.0, 256.0, 8.0, 8.0};
  TunableParameter rate{"rate", 100.0, 4000.0, 100.0, 4000.0};
  return ActionSpace({cwnd, rate});
}

TEST(ActionSpace, CountFormula) {
  // 2 * number_of_tunable_parameters + 1 (paper §3.7).
  EXPECT_EQ(two_param_space().num_actions(), 5u);
  TunableParameter p{"x", 0.0, 1.0, 0.1, 0.5};
  EXPECT_EQ(ActionSpace({p}).num_actions(), 3u);
  EXPECT_EQ(ActionSpace({p, p, p}).num_actions(), 7u);
}

TEST(ActionSpace, NullActionIsIndexZero) {
  const auto space = two_param_space();
  const auto a = space.decode(0);
  EXPECT_TRUE(a.null_action);
}

TEST(ActionSpace, DecodeMapping) {
  const auto space = two_param_space();
  // 1: +param0, 2: -param0, 3: +param1, 4: -param1.
  auto a1 = space.decode(1);
  EXPECT_FALSE(a1.null_action);
  EXPECT_EQ(a1.parameter, 0u);
  EXPECT_DOUBLE_EQ(a1.delta, 8.0);
  auto a2 = space.decode(2);
  EXPECT_EQ(a2.parameter, 0u);
  EXPECT_DOUBLE_EQ(a2.delta, -8.0);
  auto a3 = space.decode(3);
  EXPECT_EQ(a3.parameter, 1u);
  EXPECT_DOUBLE_EQ(a3.delta, 100.0);
  auto a4 = space.decode(4);
  EXPECT_EQ(a4.parameter, 1u);
  EXPECT_DOUBLE_EQ(a4.delta, -100.0);
}

TEST(ActionSpace, ApplyMovesValue) {
  const auto space = two_param_space();
  auto values = space.initial_values();
  EXPECT_TRUE(space.apply(space.decode(1), values));
  EXPECT_DOUBLE_EQ(values[0], 16.0);
  EXPECT_TRUE(space.apply(space.decode(2), values));
  EXPECT_DOUBLE_EQ(values[0], 8.0);
}

TEST(ActionSpace, ApplyClampsAtBounds) {
  const auto space = two_param_space();
  std::vector<double> values{256.0, 100.0};
  EXPECT_FALSE(space.apply(space.decode(1), values));  // already at max
  EXPECT_DOUBLE_EQ(values[0], 256.0);
  EXPECT_FALSE(space.apply(space.decode(4), values));  // already at min
  EXPECT_DOUBLE_EQ(values[1], 100.0);
}

TEST(ActionSpace, ApplyPartialStepAtBoundary) {
  const auto space = two_param_space();
  std::vector<double> values{250.0, 4000.0};
  EXPECT_TRUE(space.apply(space.decode(1), values));
  EXPECT_DOUBLE_EQ(values[0], 256.0);  // clamped, but changed
}

TEST(ActionSpace, NullApplyChangesNothing) {
  const auto space = two_param_space();
  auto values = space.initial_values();
  EXPECT_FALSE(space.apply(space.decode(0), values));
  EXPECT_EQ(values, space.initial_values());
}

TEST(ActionSpace, InitialValues) {
  const auto space = two_param_space();
  const auto v = space.initial_values();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 8.0);
  EXPECT_DOUBLE_EQ(v[1], 4000.0);
}

TEST(ActionSpace, ClampVector) {
  const auto space = two_param_space();
  std::vector<double> v{1000.0, -5.0};
  space.clamp(v);
  EXPECT_DOUBLE_EQ(v[0], 256.0);
  EXPECT_DOUBLE_EQ(v[1], 100.0);
}

TEST(ActionSpace, ParameterAccess) {
  const auto space = two_param_space();
  EXPECT_EQ(space.num_parameters(), 2u);
  EXPECT_EQ(space.parameter(0).name, "cwnd");
  EXPECT_EQ(space.parameter(1).name, "rate");
}

TEST(ActionSpace, EveryNonNullActionRoundTrips) {
  const auto space = two_param_space();
  for (std::size_t i = 1; i < space.num_actions(); ++i) {
    const auto a = space.decode(i);
    EXPECT_FALSE(a.null_action) << i;
    EXPECT_LT(a.parameter, space.num_parameters()) << i;
    EXPECT_NE(a.delta, 0.0) << i;
    // Reconstruct the index from the decoded action.
    const std::size_t rebuilt = 1 + 2 * a.parameter + (a.delta > 0 ? 0 : 1);
    EXPECT_EQ(rebuilt, i);
  }
}

}  // namespace
}  // namespace capes::rl
