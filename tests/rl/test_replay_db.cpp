#include "rl/replay_db.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/alloc_hook.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace capes::rl {
namespace {

ReplayDbOptions small_options() {
  ReplayDbOptions o;
  o.num_nodes = 2;
  o.pis_per_node = 3;
  o.ticks_per_observation = 4;
  o.missing_tolerance = 0.2;
  return o;
}

std::vector<float> pis(float base) { return {base, base + 0.1f, base + 0.2f}; }

/// Fill ticks [0, n) completely with per-node data, actions and rewards.
void fill(ReplayDb& db, std::int64_t n) {
  for (std::int64_t t = 0; t < n; ++t) {
    for (std::size_t node = 0; node < db.options().num_nodes; ++node) {
      db.record_status(t, node, pis(static_cast<float>(t + node * 100)));
    }
    db.record_action(t, static_cast<std::size_t>(t % 3));
    db.record_reward(t, static_cast<double>(t) * 0.1);
  }
}

TEST(ReplayDb, ObservationSize) {
  ReplayDb db(small_options());
  EXPECT_EQ(db.observation_size(), 2u * 3u * 4u);
}

TEST(ReplayDb, RecordAndFetch) {
  ReplayDb db(small_options());
  db.record_status(5, 1, pis(2.0f));
  auto v = db.status_at(5, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_FLOAT_EQ((*v)[0], 2.0f);
  EXPECT_FALSE(db.status_at(5, 0).has_value());
  EXPECT_FALSE(db.status_at(6, 1).has_value());
}

TEST(ReplayDb, RecordStatusOverwritesSameTickAndNode) {
  // Domain-namespaced node ids: with two domains of 2 nodes each sharing
  // one DB, global ids 0..1 belong to domain 0 and 2..3 to domain 1.
  ReplayDbOptions o = small_options();
  o.num_nodes = 4;
  ReplayDb db(o);
  db.record_status(7, 1, pis(1.0f));   // domain 0, local node 1
  db.record_status(7, 3, pis(30.0f));  // domain 1, local node 1 (offset 2)

  // Re-recording the same (t, global node) overwrites in place...
  db.record_status(7, 3, pis(99.0f));
  auto v = db.status_at(7, 3);
  ASSERT_TRUE(v.has_value());
  EXPECT_FLOAT_EQ((*v)[0], 99.0f);
  // ...and never bleeds into the same local node of another domain.
  auto other = db.status_at(7, 1);
  ASSERT_TRUE(other.has_value());
  EXPECT_FLOAT_EQ((*other)[0], 1.0f);
  EXPECT_EQ(db.tick_count(), 1u);
}

TEST(ReplayDb, PooledMinibatchAssemblyMatchesSerial) {
  // The pool only parallelizes observation-row assembly; the RNG draws
  // stay serial, so the same seed must yield the same batch either way.
  ReplayDb db(small_options());
  fill(db, 40);
  util::Rng rng_serial(11), rng_pool(11);
  util::ThreadPool pool(3);
  auto serial = db.construct_minibatch(8, rng_serial, 64, nullptr);
  auto pooled = db.construct_minibatch(8, rng_pool, 64, &pool);
  ASSERT_TRUE(serial.has_value());
  ASSERT_TRUE(pooled.has_value());
  EXPECT_EQ(serial->actions, pooled->actions);
  EXPECT_EQ(serial->rewards, pooled->rewards);
  for (std::size_t i = 0; i < serial->size(); ++i) {
    for (std::size_t j = 0; j < db.observation_size(); ++j) {
      ASSERT_EQ(serial->states.row(i)[j], pooled->states.row(i)[j]);
      ASSERT_EQ(serial->next_states.row(i)[j], pooled->next_states.row(i)[j]);
    }
  }
}

TEST(ReplayDb, ActionsAndRewards) {
  ReplayDb db(small_options());
  db.record_action(3, 2);
  db.record_reward(4, 0.7);
  EXPECT_EQ(db.action_at(3), 2u);
  EXPECT_FALSE(db.action_at(4).has_value());
  EXPECT_DOUBLE_EQ(*db.reward_at(4), 0.7);
  EXPECT_FALSE(db.reward_at(3).has_value());
}

TEST(ReplayDb, TickBounds) {
  ReplayDb db(small_options());
  EXPECT_EQ(db.tick_count(), 0u);
  db.record_reward(10, 1.0);
  db.record_reward(3, 1.0);
  db.record_reward(7, 1.0);
  EXPECT_EQ(db.min_tick(), 3);
  EXPECT_EQ(db.max_tick(), 10);
  EXPECT_EQ(db.tick_count(), 3u);
}

TEST(ReplayDb, HasObservationRequiresFullWindow) {
  ReplayDb db(small_options());
  fill(db, 10);
  EXPECT_TRUE(db.has_observation(3));   // ticks 0..3
  EXPECT_TRUE(db.has_observation(9));
  EXPECT_FALSE(db.has_observation(2));  // window would start at -1
  EXPECT_FALSE(db.has_observation(10)); // tick 10 absent
}

TEST(ReplayDb, ObservationLayoutTickMajor) {
  ReplayDb db(small_options());
  fill(db, 6);
  std::vector<float> obs(db.observation_size());
  ASSERT_TRUE(db.build_observation(5, obs.data()));
  // First row is tick 2 (= t - S + 1): node0 then node1.
  EXPECT_FLOAT_EQ(obs[0], 2.0f);          // tick2 node0 pi0
  EXPECT_FLOAT_EQ(obs[3], 102.0f);        // tick2 node1 pi0
  // Last row is tick 5.
  EXPECT_FLOAT_EQ(obs[3 * 6 + 0], 5.0f);  // tick5 node0 pi0
  EXPECT_FLOAT_EQ(obs[3 * 6 + 5], 105.2f);
}

TEST(ReplayDb, MissingToleranceAccepted) {
  ReplayDb db(small_options());
  fill(db, 8);
  // Drop one node-tick out of 8 (12.5% < 20%): still acceptable. Rebuild
  // a fresh DB without node 1 at tick 6.
  ReplayDb db2(small_options());
  for (std::int64_t t = 4; t < 8; ++t) {
    db2.record_status(t, 0, pis(static_cast<float>(t)));
    if (t != 6) db2.record_status(t, 1, pis(static_cast<float>(t + 100)));
  }
  EXPECT_TRUE(db2.has_observation(7));
  std::vector<float> obs(db2.observation_size());
  ASSERT_TRUE(db2.build_observation(7, obs.data()));
  // Missing (tick6, node1) filled with last known value (tick5 node1).
  const std::size_t row = 2 * 3;
  const std::size_t tick6_node1 = 2 * row + 3;
  EXPECT_FLOAT_EQ(obs[tick6_node1], 105.0f);
}

TEST(ReplayDb, TooMuchMissingRejected) {
  ReplayDb db(small_options());
  // Only node 0 reports: 50% missing > 20%.
  for (std::int64_t t = 0; t < 8; ++t) {
    db.record_status(t, 0, pis(static_cast<float>(t)));
  }
  EXPECT_FALSE(db.has_observation(7));
  std::vector<float> obs(db.observation_size());
  EXPECT_FALSE(db.build_observation(7, obs.data()));
}

TEST(ReplayDb, MissingFilledWithZeroWhenNoHistory) {
  ReplayDbOptions o = small_options();
  o.missing_tolerance = 0.5;
  ReplayDb db(o);
  // node1 missing at the FIRST tick of the window: no last-known value.
  for (std::int64_t t = 0; t < 4; ++t) {
    db.record_status(t, 0, pis(static_cast<float>(t)));
    if (t > 0) db.record_status(t, 1, pis(static_cast<float>(t + 100)));
  }
  std::vector<float> obs(db.observation_size());
  ASSERT_TRUE(db.build_observation(3, obs.data()));
  EXPECT_FLOAT_EQ(obs[3], 0.0f);  // tick0 node1 pi0 -> zero fill
}

TEST(ReplayDb, MinibatchShapeAndContents) {
  ReplayDb db(small_options());
  fill(db, 50);
  util::Rng rng(1);
  auto batch = db.construct_minibatch(8, rng);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 8u);
  EXPECT_EQ(batch->states.rows(), 8u);
  EXPECT_EQ(batch->states.cols(), db.observation_size());
  EXPECT_EQ(batch->next_states.cols(), db.observation_size());
  EXPECT_EQ(batch->actions.size(), 8u);
  EXPECT_EQ(batch->rewards.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    // next_state's first PI of the last tick row equals state's + 1.
    const float s_last = batch->states.at(i, 3 * 6);
    const float ns_last = batch->next_states.at(i, 3 * 6);
    EXPECT_FLOAT_EQ(ns_last, s_last + 1.0f);
    // Reward recorded at t+1 is 0.1 * (t + 1).
    EXPECT_NEAR(batch->rewards[i], 0.1f * (s_last + 1.0f), 1e-4f);
    // Action recorded at t is t % 3.
    EXPECT_EQ(batch->actions[i],
              static_cast<std::size_t>(static_cast<std::int64_t>(s_last)) % 3);
  }
}

TEST(ReplayDb, MinibatchFailsOnEmptyDb) {
  ReplayDb db(small_options());
  util::Rng rng(2);
  EXPECT_FALSE(db.construct_minibatch(4, rng).has_value());
}

TEST(ReplayDb, MinibatchFailsWhenTooSparse) {
  ReplayDb db(small_options());
  fill(db, 4);  // only ticks 0..3: need obs at t and t+1 -> t=3 lacks t+1
  util::Rng rng(3);
  EXPECT_FALSE(db.construct_minibatch(4, rng).has_value());
}

TEST(ReplayDb, MinibatchSkipsGaps) {
  ReplayDb db(small_options());
  fill(db, 30);
  // Punch a hole: no action at tick 15 in a fresh DB.
  ReplayDb db2(small_options());
  for (std::int64_t t = 0; t < 30; ++t) {
    for (std::size_t node = 0; node < 2; ++node) {
      db2.record_status(t, node, pis(static_cast<float>(t)));
    }
    if (t != 15) db2.record_action(t, 0);
    db2.record_reward(t, 1.0);
  }
  util::Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    auto batch = db2.construct_minibatch(16, rng);
    ASSERT_TRUE(batch.has_value());
    for (std::size_t i = 0; i < batch->size(); ++i) {
      const float t_last = batch->states.at(i, 3 * 6);
      EXPECT_NE(static_cast<std::int64_t>(t_last), 15);
    }
  }
}

TEST(ReplayDb, UsableTransitionsCount) {
  ReplayDb db(small_options());
  fill(db, 20);
  // t in [3, 18]: needs obs at t (t>=3) and t+1 (t+1<=19) -> 16.
  EXPECT_EQ(db.usable_transitions(), 16u);
}

TEST(ReplayDb, RetentionTrimsOldTicks) {
  ReplayDbOptions o = small_options();
  o.max_ticks_retained = 10;
  ReplayDb db(o);
  fill(db, 50);
  EXPECT_LE(db.tick_count(), 10u);
  EXPECT_EQ(db.max_tick(), 49);
  EXPECT_GE(db.min_tick(), 40);
}

TEST(ReplayDb, PersistsToWaldb) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "capes_replay_persist").string();
  std::filesystem::remove_all(dir);
  {
    waldb::Database db;
    ASSERT_TRUE(db.open(dir));
    ReplayDb replay(small_options(), &db);
    fill(replay, 10);
    db.flush();
  }
  waldb::Database db2;
  ASSERT_TRUE(db2.open(dir));
  EXPECT_NE(db2.find_table("status"), nullptr);
  EXPECT_NE(db2.find_table("action"), nullptr);
  EXPECT_NE(db2.find_table("reward"), nullptr);
  EXPECT_EQ(db2.find_table("status")->count(), 20u);  // 10 ticks x 2 nodes
  EXPECT_EQ(db2.find_table("action")->count(), 10u);
  std::filesystem::remove_all(dir);
}

TEST(ReplayDb, MemoryBytesScaleWithTicks) {
  ReplayDb db(small_options());
  const auto m0 = db.memory_bytes();
  fill(db, 100);
  EXPECT_GT(db.memory_bytes(), m0);
}

TEST(ReplayDb, MinibatchIntoMatchesAllocatingVariant) {
  ReplayDb db(small_options());
  fill(db, 30);
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  const auto batch = db.construct_minibatch(8, rng_a);
  ASSERT_TRUE(batch.has_value());
  Minibatch into;
  ASSERT_TRUE(db.construct_minibatch_into(into, 8, rng_b));
  EXPECT_EQ(into.actions, batch->actions);
  EXPECT_EQ(into.rewards, batch->rewards);
  ASSERT_EQ(into.states.size(), batch->states.size());
  for (std::size_t i = 0; i < into.states.size(); ++i) {
    EXPECT_EQ(into.states.data()[i], batch->states.data()[i]);
    EXPECT_EQ(into.next_states.data()[i], batch->next_states.data()[i]);
  }
}

TEST(ReplayDb, MinibatchIntoIsAllocationFreeWhenWarm) {
  ReplayDb db(small_options());
  fill(db, 30);
  util::Rng rng(7);
  Minibatch batch;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(db.construct_minibatch_into(batch, 8, rng));
  }
  util::AllocTally tally;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db.construct_minibatch_into(batch, 8, rng));
  }
  EXPECT_EQ(tally.delta(), 0u);
}

TEST(ReplayDb, DrainMinibatchesFillsSlotsLikeRepeatedCalls) {
  ReplayDb db(small_options());
  fill(db, 30);
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  Minibatch a0, a1, a2;
  Minibatch* slots[] = {&a0, &a1, &a2};
  EXPECT_EQ(db.drain_minibatches(slots, 3, 4, rng_a), 3u);
  for (Minibatch* m : {&a0, &a1, &a2}) {
    Minibatch want;
    ASSERT_TRUE(db.construct_minibatch_into(want, 4, rng_b));
    EXPECT_EQ(m->actions, want.actions);
    EXPECT_EQ(m->rewards, want.rewards);
  }
}

TEST(ReplayDb, DrainMinibatchesStopsWhenDbTooSparse) {
  ReplayDb db(small_options());
  util::Rng rng(1);
  Minibatch a0, a1;
  Minibatch* slots[] = {&a0, &a1};
  EXPECT_EQ(db.drain_minibatches(slots, 2, 4, rng), 0u);
}

TEST(ReplayDb, RetentionBoundedRecordingIsAllocationFreeWhenWarm) {
  ReplayDbOptions o = small_options();
  o.max_ticks_retained = 12;
  ReplayDb db(o);  // memory-only: no waldb persistence on this path
  fill(db, 40);    // warm: retention trimming and node recycling active
  const std::vector<float> p{1.0f, 2.0f, 3.0f};
  util::AllocTally tally;
  for (std::int64_t t = 40; t < 80; ++t) {
    for (std::size_t node = 0; node < o.num_nodes; ++node) {
      db.record_status(t, node, p);
    }
    db.record_action(t, 1);
    db.record_reward(t, 0.5);
  }
  EXPECT_EQ(tally.delta(), 0u);
  EXPECT_EQ(db.tick_count(), 12u);
}

}  // namespace
}  // namespace capes::rl
