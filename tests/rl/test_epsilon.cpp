#include "rl/epsilon.hpp"

#include <gtest/gtest.h>

namespace capes::rl {
namespace {

EpsilonSchedule::Options table1_options() {
  EpsilonSchedule::Options o;
  o.initial = 1.0;
  o.final_value = 0.05;
  o.anneal_ticks = 7200;
  o.bump_value = 0.2;
  o.bump_ticks = 600;
  return o;
}

TEST(Epsilon, StartsAtInitial) {
  EpsilonSchedule e(table1_options());
  EXPECT_DOUBLE_EQ(e.value(0), 1.0);
  EXPECT_DOUBLE_EQ(e.value(-5), 1.0);
}

TEST(Epsilon, EndsAtFinal) {
  EpsilonSchedule e(table1_options());
  EXPECT_DOUBLE_EQ(e.value(7200), 0.05);
  EXPECT_DOUBLE_EQ(e.value(100000), 0.05);
}

TEST(Epsilon, LinearMidpoint) {
  EpsilonSchedule e(table1_options());
  EXPECT_NEAR(e.value(3600), (1.0 + 0.05) / 2.0, 1e-9);
}

TEST(Epsilon, MonotoneNonIncreasing) {
  EpsilonSchedule e(table1_options());
  double prev = 2.0;
  for (std::int64_t t = 0; t <= 8000; t += 100) {
    const double v = e.value(t);
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }
}

TEST(Epsilon, WorkloadBumpRaisesEpsilon) {
  EpsilonSchedule e(table1_options());
  // Far past annealing: base is 0.05.
  e.notify_workload_change(10000);
  EXPECT_NEAR(e.value(10000), 0.2, 1e-9);
  EXPECT_GT(e.value(10300), 0.05);
  // After bump_ticks the bump has decayed back.
  EXPECT_NEAR(e.value(10600), 0.05, 1e-9);
}

TEST(Epsilon, BumpDecaysLinearly) {
  EpsilonSchedule e(table1_options());
  e.notify_workload_change(20000);
  const double mid = e.value(20300);
  EXPECT_NEAR(mid, (0.2 + 0.05) / 2.0, 1e-9);
}

TEST(Epsilon, BumpNeverLowersEpsilon) {
  // During early annealing the base epsilon exceeds the bump value; the
  // bump must not reduce exploration.
  EpsilonSchedule e(table1_options());
  e.notify_workload_change(100);
  EXPECT_DOUBLE_EQ(e.value(100), e.value(100));
  EXPECT_GE(e.value(150), 0.9);  // still near the annealing line
}

TEST(Epsilon, BumpBeforeItsTickHasNoEffect) {
  EpsilonSchedule e(table1_options());
  e.notify_workload_change(5000);
  EXPECT_NEAR(e.value(4000), 1.0 - 4000.0 / 7200.0 * 0.95, 1e-9);
}

TEST(Epsilon, RepeatedBumpsRestart) {
  EpsilonSchedule e(table1_options());
  e.notify_workload_change(10000);
  e.notify_workload_change(10500);
  EXPECT_NEAR(e.value(10500), 0.2, 1e-9);
}

TEST(Epsilon, DefaultConstructible) {
  EpsilonSchedule e;
  EXPECT_DOUBLE_EQ(e.value(0), 1.0);
}

}  // namespace
}  // namespace capes::rl
