#include "rl/dqn.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "util/alloc_hook.hpp"
#include "util/rng.hpp"

namespace capes::rl {
namespace {

DqnOptions small_options() {
  DqnOptions o;
  o.observation_size = 4;
  o.num_actions = 3;
  o.num_hidden_layers = 2;
  o.hidden_size = 16;
  o.gamma = 0.9f;
  o.learning_rate = 1e-3f;
  o.seed = 7;
  return o;
}

Minibatch make_batch(std::size_t n, std::size_t obs, std::size_t actions,
                     util::Rng& rng) {
  Minibatch b;
  b.states.resize(n, obs);
  b.next_states.resize(n, obs);
  for (std::size_t i = 0; i < b.states.size(); ++i) {
    b.states.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    b.next_states.data()[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  for (std::size_t i = 0; i < n; ++i) {
    b.actions.push_back(rng.pick_index(actions));
    b.rewards.push_back(static_cast<float>(rng.uniform(0, 1)));
  }
  return b;
}

TEST(Dqn, NetworkShapeFromTable1Defaults) {
  DqnOptions o;
  o.observation_size = 100;
  o.num_actions = 5;
  // hidden_size 0 -> "the size of the hidden layers is the same as the
  // input" (Table 1).
  Dqn dqn(o);
  EXPECT_EQ(dqn.hidden_size(), 100u);
  const auto& sizes = dqn.online_network().layer_sizes();
  ASSERT_EQ(sizes.size(), 4u);  // input, 2 hidden, output
  EXPECT_EQ(sizes[0], 100u);
  EXPECT_EQ(sizes[1], 100u);
  EXPECT_EQ(sizes[2], 100u);
  EXPECT_EQ(sizes[3], 5u);
}

TEST(Dqn, QValuesSizeMatchesActions) {
  Dqn dqn(small_options());
  const auto q = dqn.q_values({0.1f, 0.2f, 0.3f, 0.4f});
  EXPECT_EQ(q.size(), 3u);
}

TEST(Dqn, TargetStartsAsCopyOfOnline) {
  Dqn dqn(small_options());
  const auto on = dqn.online_network().parameters();
  const auto tg = dqn.target_network().parameters();
  for (std::size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i]->value, tg[i]->value);
  }
}

TEST(Dqn, GreedyMatchesArgmax) {
  Dqn dqn(small_options());
  const std::vector<float> obs{0.5f, -0.5f, 0.25f, 0.0f};
  const auto q = dqn.q_values(obs);
  const auto greedy = dqn.greedy_action(obs);
  EXPECT_EQ(greedy, static_cast<std::size_t>(
                        std::max_element(q.begin(), q.end()) - q.begin()));
}

TEST(Dqn, EpsilonZeroAlwaysGreedy) {
  Dqn dqn(small_options());
  util::Rng rng(1);
  const std::vector<float> obs{0.1f, 0.1f, 0.1f, 0.1f};
  const auto greedy = dqn.greedy_action(obs);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(dqn.select_action(obs, 0.0, rng), greedy);
  }
}

TEST(Dqn, EpsilonOneIsUniformRandom) {
  Dqn dqn(small_options());
  util::Rng rng(2);
  const std::vector<float> obs{0.1f, 0.1f, 0.1f, 0.1f};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) {
    ++counts[dqn.select_action(obs, 1.0, rng)];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(Dqn, TrainStepReducesLossOnFixedBatch) {
  Dqn dqn(small_options());
  util::Rng rng(3);
  const Minibatch batch = make_batch(16, 4, 3, rng);
  const float first = dqn.train_step(batch).loss;
  float last = first;
  for (int i = 0; i < 200; ++i) last = dqn.train_step(batch).loss;
  EXPECT_LT(last, first);
}

TEST(Dqn, TrainStepCountsSteps) {
  Dqn dqn(small_options());
  util::Rng rng(4);
  const Minibatch batch = make_batch(8, 4, 3, rng);
  EXPECT_EQ(dqn.train_steps(), 0u);
  dqn.train_step(batch);
  dqn.train_step(batch);
  EXPECT_EQ(dqn.train_steps(), 2u);
}

TEST(Dqn, SoftUpdateMovesTargetSlowly) {
  DqnOptions o = small_options();
  o.target_update_alpha = 0.01f;
  Dqn dqn(o);
  util::Rng rng(5);
  const Minibatch batch = make_batch(8, 4, 3, rng);
  dqn.train_step(batch);
  // After one step the target differs from online but only slightly.
  const auto on = dqn.online_network().parameters();
  const auto tg = dqn.target_network().parameters();
  double online_target_gap = 0.0;
  for (std::size_t p = 0; p < on.size(); ++p) {
    for (std::size_t i = 0; i < on[p]->value.size(); ++i) {
      online_target_gap +=
          std::abs(on[p]->value[i] - tg[p]->value[i]);
    }
  }
  EXPECT_GT(online_target_gap, 0.0);
}

TEST(Dqn, NoTargetNetworkModeBootstrapsFromOnline) {
  DqnOptions o = small_options();
  o.use_target_network = false;
  Dqn dqn(o);
  util::Rng rng(6);
  const Minibatch batch = make_batch(8, 4, 3, rng);
  dqn.train_step(batch);
  // Target network stays frozen at its initial copy in this mode.
  Dqn fresh(o);
  const auto tg = dqn.target_network().parameters();
  const auto fresh_tg = fresh.target_network().parameters();
  for (std::size_t p = 0; p < tg.size(); ++p) {
    EXPECT_EQ(tg[p]->value, fresh_tg[p]->value);
  }
}

TEST(Dqn, PredictionErrorReported) {
  Dqn dqn(small_options());
  util::Rng rng(7);
  const Minibatch batch = make_batch(8, 4, 3, rng);
  const auto r = dqn.train_step(batch);
  EXPECT_GE(r.prediction_error, 0.0f);
  EXPECT_GE(r.loss, 0.0f);
}

TEST(Dqn, CheckpointRoundTrip) {
  Dqn dqn(small_options());
  util::Rng rng(8);
  const Minibatch batch = make_batch(8, 4, 3, rng);
  for (int i = 0; i < 20; ++i) dqn.train_step(batch);
  const std::string path =
      (std::filesystem::temp_directory_path() / "capes_dqn_ckpt.bin").string();
  ASSERT_TRUE(dqn.save_checkpoint(path));

  Dqn restored(small_options());
  ASSERT_TRUE(restored.load_checkpoint(path));
  const std::vector<float> obs{0.3f, -0.2f, 0.9f, 0.0f};
  const auto q1 = dqn.q_values(obs);
  const auto q2 = restored.q_values(obs);
  for (std::size_t i = 0; i < q1.size(); ++i) EXPECT_EQ(q1[i], q2[i]);
  std::remove(path.c_str());
}

TEST(Dqn, LoadRejectsWrongShape) {
  Dqn dqn(small_options());
  const std::string path =
      (std::filesystem::temp_directory_path() / "capes_dqn_shape.bin").string();
  ASSERT_TRUE(dqn.save_checkpoint(path));
  DqnOptions other = small_options();
  other.observation_size = 5;
  Dqn incompatible(other);
  EXPECT_FALSE(incompatible.load_checkpoint(path));
  std::remove(path.c_str());
}

TEST(Dqn, MemoryBytesPositive) {
  Dqn dqn(small_options());
  EXPECT_GT(dqn.memory_bytes(), 0u);
}

/// End-to-end sanity: a contextual bandit where action 1 is always best.
/// After training on random transitions, the greedy policy should pick it.
TEST(Dqn, LearnsContextualBandit) {
  DqnOptions o = small_options();
  o.gamma = 0.0f;  // bandit: no bootstrapping
  o.learning_rate = 3e-3f;
  Dqn dqn(o);
  util::Rng rng(9);
  for (int step = 0; step < 400; ++step) {
    Minibatch b;
    const std::size_t n = 16;
    b.states.resize(n, 4);
    b.next_states.resize(n, 4);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        b.states.at(i, j) = static_cast<float>(rng.uniform(-1, 1));
        b.next_states.at(i, j) = static_cast<float>(rng.uniform(-1, 1));
      }
      const std::size_t a = rng.pick_index(3);
      b.actions.push_back(a);
      b.rewards.push_back(a == 1 ? 1.0f : 0.0f);
    }
    dqn.train_step(b);
  }
  int picked_best = 0;
  for (int i = 0; i < 50; ++i) {
    std::vector<float> obs(4);
    for (auto& v : obs) v = static_cast<float>(rng.uniform(-1, 1));
    picked_best += dqn.greedy_action(obs) == 1;
  }
  EXPECT_GE(picked_best, 45);
}

TEST(Dqn, FingerprintTracksWeightChanges) {
  Dqn a(small_options());
  Dqn b(small_options());
  EXPECT_EQ(a.weights_fingerprint(), b.weights_fingerprint());
  util::Rng rng(3);
  a.train_step(make_batch(8, 4, 3, rng));
  EXPECT_NE(a.weights_fingerprint(), b.weights_fingerprint());
}

TEST(Dqn, ActingSnapshotServesPublishedWeights) {
  Dqn dqn(small_options());
  const std::vector<float> obs{0.1f, -0.2f, 0.3f, 0.4f};
  const auto q0 = dqn.q_values(obs);

  // Publish, then keep training the learning set: the acting path must
  // keep answering with the published snapshot, not the moving online
  // network.
  dqn.publish_acting();
  ASSERT_TRUE(dqn.has_acting_snapshot());
  util::Rng rng(5);
  for (int i = 0; i < 5; ++i) dqn.train_step(make_batch(8, 4, 3, rng));
  EXPECT_EQ(dqn.q_values(obs), q0);

  // Re-publish: the acting set catches up with the trained weights.
  dqn.publish_acting();
  const auto q_trained = dqn.q_values(obs);
  EXPECT_NE(q_trained, q0);

  // Clearing falls back to reading the online network directly.
  dqn.clear_acting();
  EXPECT_FALSE(dqn.has_acting_snapshot());
  EXPECT_EQ(dqn.q_values(obs), q_trained);
}

TEST(Dqn, StateRoundTripResumesBitIdentically) {
  Dqn a(small_options());
  util::Rng rng(11);
  for (int i = 0; i < 6; ++i) a.train_step(make_batch(8, 4, 3, rng));

  util::BinaryWriter w;
  a.save_state(w);
  const auto bytes = w.take();

  Dqn b(small_options());
  util::BinaryReader r(bytes);
  ASSERT_TRUE(b.load_state(r));
  EXPECT_EQ(b.train_steps(), 6u);
  EXPECT_EQ(b.weights_fingerprint(), a.weights_fingerprint());

  // The restored engine must continue training exactly like the original
  // (same Adam moments, same target network).
  util::Rng rng_a(13);
  util::Rng rng_b(13);
  for (int i = 0; i < 4; ++i) {
    const auto ra = a.train_step(make_batch(8, 4, 3, rng_a));
    const auto rb = b.train_step(make_batch(8, 4, 3, rng_b));
    EXPECT_EQ(ra.loss, rb.loss);
  }
  EXPECT_EQ(a.weights_fingerprint(), b.weights_fingerprint());
}

TEST(Dqn, LoadStateRejectsGarbageAndShapeMismatch) {
  Dqn dqn(small_options());
  const auto before = dqn.weights_fingerprint();
  std::vector<std::uint8_t> garbage{1, 2, 3, 4};
  util::BinaryReader r(garbage);
  EXPECT_FALSE(dqn.load_state(r));

  DqnOptions big = small_options();
  big.hidden_size = 32;
  Dqn other(big);
  util::BinaryWriter w;
  other.save_state(w);
  const auto bytes = w.take();
  util::BinaryReader r2(bytes);
  EXPECT_FALSE(dqn.load_state(r2));
  EXPECT_EQ(dqn.weights_fingerprint(), before);
  EXPECT_EQ(dqn.train_steps(), 0u);
}

TEST(Dqn, SteadyStateActingAndTrainingAreAllocationFree) {
  Dqn dqn(small_options());
  util::Rng rng(17);
  Minibatch batch = make_batch(8, 4, 3, rng);
  const std::vector<float> obs{0.1f, 0.2f, 0.3f, 0.4f};
  // Warm up every scratch buffer (forward caches, targets, grads).
  for (int i = 0; i < 3; ++i) {
    dqn.q_values(obs);  // returns by value: that copy is the caller's
    dqn.greedy_action(obs);
    dqn.train_step(batch);
  }
  util::AllocTally tally;
  for (int i = 0; i < 50; ++i) {
    dqn.greedy_action(obs);
    dqn.train_step(batch);
  }
  EXPECT_EQ(tally.delta(), 0u);
}

}  // namespace
}  // namespace capes::rl
