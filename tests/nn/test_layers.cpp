#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace capes::nn {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, util::Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return m;
}

TEST(Dense, OutputShape) {
  util::Rng rng(1);
  Dense d(4, 3, "d");
  d.init_xavier(rng);
  Matrix x = random_matrix(5, 4, rng);
  const Matrix& y = d.forward(x);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 3u);
}

TEST(Dense, ZeroWeightsGiveBias) {
  Dense d(3, 2, "d");
  d.bias().value = {1.5f, -0.5f};
  util::Rng rng(2);
  Matrix x = random_matrix(4, 3, rng);
  const Matrix& y = d.forward(x);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(y.at(i, 0), 1.5f);
    EXPECT_FLOAT_EQ(y.at(i, 1), -0.5f);
  }
}

TEST(Dense, KnownLinearMap) {
  Dense d(2, 1, "d");
  d.weights().value = {2.0f, -3.0f};  // W is [1, 2]
  d.bias().value = {0.5f};
  Matrix x(1, 2);
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = 2.0f;
  const Matrix& y = d.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.0f - 6.0f + 0.5f);
}

TEST(Dense, XavierInitRange) {
  util::Rng rng(3);
  Dense d(100, 50, "d");
  d.init_xavier(rng);
  const double limit = std::sqrt(6.0 / 150.0);
  for (float w : d.weights().value) {
    EXPECT_LE(std::fabs(w), limit + 1e-6);
  }
  for (float b : d.bias().value) EXPECT_EQ(b, 0.0f);
  // Not all identical.
  EXPECT_NE(d.weights().value[0], d.weights().value[1]);
}

TEST(Dense, ZeroGradClears) {
  util::Rng rng(4);
  Dense d(3, 3, "d");
  d.init_xavier(rng);
  Matrix x = random_matrix(2, 3, rng);
  d.forward(x);
  Matrix g = random_matrix(2, 3, rng);
  d.backward(g);
  bool any_nonzero = false;
  for (float v : d.weights().grad) any_nonzero |= v != 0.0f;
  EXPECT_TRUE(any_nonzero);
  d.zero_grad();
  for (float v : d.weights().grad) EXPECT_EQ(v, 0.0f);
  for (float v : d.bias().grad) EXPECT_EQ(v, 0.0f);
}

TEST(Dense, GradientsAccumulateAcrossBackwardCalls) {
  util::Rng rng(5);
  Dense d(2, 2, "d");
  d.init_xavier(rng);
  Matrix x = random_matrix(3, 2, rng);
  Matrix g = random_matrix(3, 2, rng);
  d.forward(x);
  d.backward(g);
  const auto once = d.weights().grad;
  d.forward(x);
  d.backward(g);
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(d.weights().grad[i], 2.0f * once[i], 1e-5f);
  }
}

/// Numerical gradient check of a Dense layer through a scalar loss
/// L = sum(forward(x)).
TEST(Dense, NumericalGradientCheck) {
  util::Rng rng(6);
  Dense d(4, 3, "d");
  d.init_xavier(rng);
  Matrix x = random_matrix(2, 4, rng);

  // Analytic gradients: dL/dY = 1.
  d.zero_grad();
  d.forward(x);
  Matrix ones(2, 3, 1.0f);
  const Matrix& dx = d.backward(ones);

  const float eps = 1e-3f;
  // Check dL/dW for a few entries.
  for (std::size_t idx : {0u, 5u, 11u}) {
    auto& w = d.weights().value;
    const float orig = w[idx];
    w[idx] = orig + eps;
    float lp = 0.0f;
    {
      const Matrix& y = d.forward(x);
      for (std::size_t i = 0; i < y.size(); ++i) lp += y.data()[i];
    }
    w[idx] = orig - eps;
    float lm = 0.0f;
    {
      const Matrix& y = d.forward(x);
      for (std::size_t i = 0; i < y.size(); ++i) lm += y.data()[i];
    }
    w[idx] = orig;
    const float numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(d.weights().grad[idx], numeric, 5e-2f) << "w index " << idx;
  }
  // Check dL/dX entry 0: equals sum over outputs of W[:, 0].
  float expected_dx = 0.0f;
  for (std::size_t o = 0; o < 3; ++o) expected_dx += d.weights().value[o * 4];
  EXPECT_NEAR(dx.at(0, 0), expected_dx, 1e-4f);
}

TEST(Tanh, ForwardValues) {
  Tanh t;
  Matrix x(1, 3);
  x.at(0, 0) = 0.0f;
  x.at(0, 1) = 100.0f;
  x.at(0, 2) = -100.0f;
  const Matrix& y = t.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_NEAR(y.at(0, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(y.at(0, 2), -1.0f, 1e-6f);
}

TEST(Tanh, BackwardDerivative) {
  Tanh t;
  Matrix x(1, 2);
  x.at(0, 0) = 0.5f;
  x.at(0, 1) = -1.2f;
  t.forward(x);
  Matrix g(1, 2, 1.0f);
  const Matrix& dx = t.backward(g);
  for (std::size_t j = 0; j < 2; ++j) {
    const float y = std::tanh(x.at(0, j));
    EXPECT_NEAR(dx.at(0, j), 1.0f - y * y, 1e-6f);
  }
}

TEST(Tanh, SaturatedGradientVanishes) {
  Tanh t;
  Matrix x(1, 1, 50.0f);
  t.forward(x);
  Matrix g(1, 1, 1.0f);
  EXPECT_NEAR(t.backward(g).at(0, 0), 0.0f, 1e-6f);
}

TEST(Relu, ForwardClampsNegative) {
  Relu r;
  Matrix x(1, 3);
  x.at(0, 0) = -2.0f;
  x.at(0, 1) = 0.0f;
  x.at(0, 2) = 3.0f;
  const Matrix& y = r.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 3.0f);
}

TEST(Relu, BackwardMasksNegative) {
  Relu r;
  Matrix x(1, 2);
  x.at(0, 0) = -1.0f;
  x.at(0, 1) = 2.0f;
  r.forward(x);
  Matrix g(1, 2, 5.0f);
  const Matrix& dx = r.backward(g);
  EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 1), 5.0f);
}

}  // namespace
}  // namespace capes::nn
