#include "nn/matrix.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace capes::nn {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, util::Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return m;
}

/// Reference triple-loop GEMM.
Matrix reference_nn(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += a.at(i, k) * b.at(k, j);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

void expect_matrix_near(const Matrix& a, const Matrix& b, float tol = 1e-4f) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a.data()[i], b.data()[i], tol) << "index " << i;
  }
}

TEST(Matrix, BasicAccessors) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_EQ(m.at(1, 2), 1.5f);
  m.at(0, 1) = -2.0f;
  EXPECT_EQ(m.row(0)[1], -2.0f);
}

TEST(Matrix, FillAndResize) {
  Matrix m(2, 2, 1.0f);
  m.fill(3.0f);
  EXPECT_EQ(m.at(1, 1), 3.0f);
  m.resize(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.at(2, 3), 0.0f);
}

TEST(MatMul, IdentityNn) {
  util::Rng rng(1);
  Matrix a = random_matrix(4, 4, rng);
  Matrix eye(4, 4);
  for (std::size_t i = 0; i < 4; ++i) eye.at(i, i) = 1.0f;
  Matrix c;
  matmul_nn(a, eye, c);
  expect_matrix_near(c, a);
}

TEST(MatMul, KnownSmallProduct) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Matrix b(2, 2);
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  Matrix c;
  matmul_nn(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50);
}

TEST(MatMul, NnMatchesReference) {
  util::Rng rng(2);
  Matrix a = random_matrix(7, 13, rng);
  Matrix b = random_matrix(13, 5, rng);
  Matrix c;
  matmul_nn(a, b, c);
  expect_matrix_near(c, reference_nn(a, b));
}

TEST(MatMul, NtMatchesReference) {
  util::Rng rng(3);
  Matrix a = random_matrix(6, 9, rng);
  Matrix bt = random_matrix(4, 9, rng);  // b = bt^T is 9x4
  Matrix b(9, 4);
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 4; ++j) b.at(i, j) = bt.at(j, i);
  }
  Matrix c;
  matmul_nt(a, bt, c);
  expect_matrix_near(c, reference_nn(a, b));
}

TEST(MatMul, TnMatchesReference) {
  util::Rng rng(4);
  Matrix at = random_matrix(9, 6, rng);  // a = at^T is 6x9
  Matrix a(6, 9);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 9; ++j) a.at(i, j) = at.at(j, i);
  }
  Matrix b = random_matrix(9, 3, rng);
  Matrix c;
  matmul_tn(at, b, c);
  expect_matrix_near(c, reference_nn(a, b));
}

TEST(MatMul, ThreadPoolMatchesSerial) {
  util::Rng rng(5);
  util::ThreadPool pool(3);
  Matrix a = random_matrix(64, 48, rng);
  Matrix b = random_matrix(48, 32, rng);
  Matrix serial, parallel;
  matmul_nn(a, b, serial);
  matmul_nn(a, b, parallel, &pool);
  expect_matrix_near(parallel, serial, 1e-6f);
}

TEST(MatMul, OutputOverwritesPreviousContents) {
  util::Rng rng(6);
  Matrix a = random_matrix(3, 3, rng);
  Matrix b = random_matrix(3, 3, rng);
  Matrix c(10, 10, 99.0f);
  matmul_nn(a, b, c);
  EXPECT_EQ(c.rows(), 3u);
  expect_matrix_near(c, reference_nn(a, b));
}

TEST(MatrixHelpers, AddRowVector) {
  Matrix m(2, 3, 1.0f);
  add_row_vector(m, {1.0f, 2.0f, 3.0f});
  EXPECT_FLOAT_EQ(m.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m.at(1, 2), 4.0f);
}

TEST(MatrixHelpers, ColumnSums) {
  Matrix m(3, 2);
  m.at(0, 0) = 1;
  m.at(1, 0) = 2;
  m.at(2, 0) = 3;
  m.at(0, 1) = -1;
  std::vector<float> sums;
  column_sums(m, sums);
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_FLOAT_EQ(sums[0], 6.0f);
  EXPECT_FLOAT_EQ(sums[1], -1.0f);
}

class GemmShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeSweep, AllVariantsAgree) {
  const auto [n, k, m] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n * 1000 + k * 10 + m));
  Matrix a = random_matrix(n, k, rng);
  Matrix b = random_matrix(k, m, rng);
  const Matrix ref = reference_nn(a, b);

  Matrix c_nn;
  matmul_nn(a, b, c_nn);
  expect_matrix_near(c_nn, ref, 1e-3f);

  Matrix bt(m, k);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < m; ++j) bt.at(j, i) = b.at(i, j);
  }
  Matrix c_nt;
  matmul_nt(a, bt, c_nt);
  expect_matrix_near(c_nt, ref, 1e-3f);

  Matrix at(k, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) at.at(j, i) = a.at(i, j);
  }
  Matrix c_tn;
  matmul_tn(at, b, c_tn);
  expect_matrix_near(c_tn, ref, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 8, 1),
                      std::make_tuple(2, 3, 4), std::make_tuple(16, 16, 16),
                      std::make_tuple(32, 7, 9), std::make_tuple(5, 64, 3),
                      std::make_tuple(33, 17, 65)));

}  // namespace
}  // namespace capes::nn
