#include "nn/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "util/rng.hpp"

namespace capes::nn {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, util::Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return m;
}

TEST(Mlp, ShapesAndParameterCount) {
  util::Rng rng(1);
  Mlp mlp({10, 20, 20, 5}, rng);
  EXPECT_EQ(mlp.input_size(), 10u);
  EXPECT_EQ(mlp.output_size(), 5u);
  // Params: 10*20+20 + 20*20+20 + 20*5+5 = 220 + 420 + 105.
  EXPECT_EQ(mlp.parameter_count(), 745u);
  EXPECT_EQ(mlp.parameters().size(), 6u);
  EXPECT_EQ(mlp.memory_bytes(), 2 * 745 * sizeof(float));
}

TEST(Mlp, ForwardShape) {
  util::Rng rng(2);
  Mlp mlp({6, 8, 3}, rng);
  Matrix x = random_matrix(4, 6, rng);
  const Matrix& y = mlp.forward(x);
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.cols(), 3u);
}

TEST(Mlp, DeterministicForward) {
  util::Rng rng(3);
  Mlp mlp({5, 7, 2}, rng);
  Matrix x = random_matrix(2, 5, rng);
  const Matrix y1 = mlp.forward(x);
  const Matrix y2 = mlp.forward(x);
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_EQ(y1.data()[i], y2.data()[i]);
  }
}

TEST(Mlp, SameSeedSameNetwork) {
  util::Rng rng1(42), rng2(42);
  Mlp a({4, 6, 2}, rng1), b({4, 6, 2}, rng2);
  util::Rng xr(5);
  Matrix x = random_matrix(3, 4, xr);
  const Matrix ya = a.forward(x);
  const Matrix yb = b.forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_EQ(ya.data()[i], yb.data()[i]);
  }
}

/// Whole-network numerical gradient check (the key correctness test for
/// the from-scratch backprop).
TEST(Mlp, NumericalGradientCheck) {
  util::Rng rng(7);
  Mlp mlp({4, 6, 6, 2}, rng);
  Matrix x = random_matrix(3, 4, rng);

  auto loss_of = [&]() {
    const Matrix& y = mlp.forward(x);
    float l = 0.0f;
    for (std::size_t i = 0; i < y.size(); ++i) l += y.data()[i] * y.data()[i];
    return 0.5f * l;
  };

  mlp.zero_grad();
  const Matrix& y = mlp.forward(x);
  Matrix grad(y.rows(), y.cols());
  for (std::size_t i = 0; i < y.size(); ++i) grad.data()[i] = y.data()[i];
  mlp.backward(grad);

  const float eps = 1e-2f;
  for (auto* param : mlp.parameters()) {
    for (std::size_t idx = 0; idx < param->value.size();
         idx += std::max<std::size_t>(1, param->value.size() / 4)) {
      const float orig = param->value[idx];
      param->value[idx] = orig + eps;
      const float lp = loss_of();
      param->value[idx] = orig - eps;
      const float lm = loss_of();
      param->value[idx] = orig;
      const float numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(param->grad[idx], numeric,
                  5e-2f * std::max(1.0f, std::fabs(numeric)))
          << param->name << "[" << idx << "]";
    }
  }
}

TEST(Mlp, CopyWeightsMakesIdentical) {
  util::Rng rng(8);
  Mlp a({3, 5, 2}, rng);
  Mlp b({3, 5, 2}, rng);  // different init (rng advanced)
  Matrix x = random_matrix(2, 3, rng);
  b.copy_weights_from(a);
  const Matrix ya = a.forward(x);
  const Matrix yb = b.forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST(Mlp, CloneIsIndependentDeepCopy) {
  util::Rng rng(21);
  Mlp a({3, 4, 2}, rng, Activation::kRelu);
  auto b = a.clone();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->layer_sizes(), a.layer_sizes());
  EXPECT_EQ(b->activation(), a.activation());
  Matrix x = random_matrix(2, 3, rng);
  {
    const Matrix& ya = a.forward(x);
    const Matrix& yb = b->forward(x);
    for (std::size_t i = 0; i < ya.size(); ++i) {
      EXPECT_EQ(ya.data()[i], yb.data()[i]);
    }
  }
  // Mutating the clone must not touch the original.
  b->parameters()[0]->value[0] += 1.0f;
  EXPECT_NE(a.parameters()[0]->value[0], b->parameters()[0]->value[0]);
}

TEST(Mlp, SoftUpdateInterpolates) {
  util::Rng rng(9);
  Mlp a({2, 3, 1}, rng);
  Mlp b({2, 3, 1}, rng);
  const float a0 = a.parameters()[0]->value[0];
  const float b0 = b.parameters()[0]->value[0];
  b.soft_update_from(a, 0.25f);
  EXPECT_NEAR(b.parameters()[0]->value[0], 0.75f * b0 + 0.25f * a0, 1e-6f);
}

TEST(Mlp, SoftUpdateAlphaOneCopies) {
  util::Rng rng(10);
  Mlp a({2, 3, 1}, rng);
  Mlp b({2, 3, 1}, rng);
  b.soft_update_from(a, 1.0f);
  for (std::size_t p = 0; p < a.parameters().size(); ++p) {
    EXPECT_EQ(a.parameters()[p]->value, b.parameters()[p]->value);
  }
}

TEST(Mlp, SerializeDeserializeRoundTrip) {
  util::Rng rng(11);
  Mlp a({5, 8, 8, 3}, rng);
  const auto bytes = a.serialize();
  auto b = Mlp::deserialize(bytes);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->layer_sizes(), a.layer_sizes());
  Matrix x = random_matrix(2, 5, rng);
  const Matrix ya = a.forward(x);
  const Matrix yb = b->forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST(Mlp, DeserializeRejectsGarbage) {
  EXPECT_EQ(Mlp::deserialize({}), nullptr);
  EXPECT_EQ(Mlp::deserialize({1, 2, 3, 4}), nullptr);
  util::Rng rng(12);
  Mlp a({3, 4, 2}, rng);
  auto bytes = a.serialize();
  bytes[0] ^= 0xFF;  // corrupt magic
  EXPECT_EQ(Mlp::deserialize(bytes), nullptr);
}

TEST(Mlp, DeserializeRejectsTruncation) {
  util::Rng rng(13);
  Mlp a({3, 4, 2}, rng);
  auto bytes = a.serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_EQ(Mlp::deserialize(bytes), nullptr);
}

TEST(Mlp, CheckpointFileRoundTrip) {
  util::Rng rng(14);
  Mlp a({4, 4, 2}, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "capes_mlp_ckpt.bin").string();
  ASSERT_TRUE(a.save_checkpoint(path));
  auto b = Mlp::load_checkpoint(path);
  ASSERT_NE(b, nullptr);
  Matrix x = random_matrix(1, 4, rng);
  EXPECT_EQ(a.forward(x).at(0, 0), b->forward(x).at(0, 0));
  std::remove(path.c_str());
}

TEST(Mlp, LoadMissingCheckpointFails) {
  EXPECT_EQ(Mlp::load_checkpoint("/nonexistent/model.bin"), nullptr);
}

TEST(Mlp, ReluVariantRuns) {
  util::Rng rng(15);
  Mlp mlp({4, 8, 2}, rng, Activation::kRelu);
  Matrix x = random_matrix(2, 4, rng);
  const Matrix& y = mlp.forward(x);
  EXPECT_EQ(y.cols(), 2u);
  // Serialization preserves the activation.
  auto b = Mlp::deserialize(mlp.serialize());
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->activation(), Activation::kRelu);
}

}  // namespace
}  // namespace capes::nn
