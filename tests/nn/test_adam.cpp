#include "nn/adam.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/mlp.hpp"
#include "util/rng.hpp"

namespace capes::nn {
namespace {

TEST(Adam, FirstStepMovesByLearningRate) {
  // With a constant gradient g, the first Adam step is ~ -lr * sign(g).
  Parameter p;
  p.name = "p";
  p.value = {1.0f};
  p.grad = {0.5f};
  Adam::Options opts;
  opts.learning_rate = 0.1f;
  Adam adam({&p}, opts);
  adam.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f, 1e-5f);
}

TEST(Adam, NegativeGradientMovesUp) {
  Parameter p;
  p.value = {0.0f};
  p.grad = {-2.0f};
  Adam::Options opts;
  opts.learning_rate = 0.01f;
  Adam adam({&p}, opts);
  adam.step();
  EXPECT_NEAR(p.value[0], 0.01f, 1e-6f);
}

TEST(Adam, ZeroGradientNoMove) {
  Parameter p;
  p.value = {3.0f};
  p.grad = {0.0f};
  Adam adam({&p});
  adam.step();
  EXPECT_FLOAT_EQ(p.value[0], 3.0f);
}

TEST(Adam, StepCounterIncrements) {
  Parameter p;
  p.value = {0.0f};
  p.grad = {1.0f};
  Adam adam({&p});
  EXPECT_EQ(adam.steps(), 0u);
  adam.step();
  adam.step();
  EXPECT_EQ(adam.steps(), 2u);
}

TEST(Adam, MinimizesQuadratic) {
  // f(x) = (x - 3)^2, df/dx = 2 (x - 3).
  Parameter p;
  p.value = {-5.0f};
  p.grad = {0.0f};
  Adam::Options opts;
  opts.learning_rate = 0.05f;
  Adam adam({&p}, opts);
  for (int i = 0; i < 2000; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    adam.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(Adam, MinimizesRosenbrockish2d) {
  // f(x,y) = (1-x)^2 + 10 (y - x^2)^2 — a mildly hard valley.
  Parameter p;
  p.value = {-1.0f, 1.0f};
  p.grad = {0.0f, 0.0f};
  Adam::Options opts;
  opts.learning_rate = 0.02f;
  Adam adam({&p}, opts);
  for (int i = 0; i < 20000; ++i) {
    const float x = p.value[0], y = p.value[1];
    p.grad[0] = -2.0f * (1.0f - x) - 40.0f * x * (y - x * x);
    p.grad[1] = 20.0f * (y - x * x);
    adam.step();
  }
  EXPECT_NEAR(p.value[0], 1.0f, 0.1f);
  EXPECT_NEAR(p.value[1], 1.0f, 0.15f);
}

TEST(Adam, MultipleParametersUpdatedIndependently) {
  Parameter a, b;
  a.value = {0.0f};
  a.grad = {1.0f};
  b.value = {0.0f};
  b.grad = {-1.0f};
  Adam::Options opts;
  opts.learning_rate = 0.1f;
  Adam adam({&a, &b}, opts);
  adam.step();
  EXPECT_LT(a.value[0], 0.0f);
  EXPECT_GT(b.value[0], 0.0f);
}

TEST(Adam, TrainsMlpOnXor) {
  // The paper notes an MLP "can represent boolean functions such as ...
  // XOR" — verify our stack actually learns XOR.
  util::Rng rng(21);
  Mlp mlp({2, 8, 1}, rng);
  Adam::Options opts;
  opts.learning_rate = 0.01f;
  Adam adam(mlp.parameters(), opts);

  const float inputs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const float targets[4] = {0, 1, 1, 0};
  Matrix x(4, 2);
  for (int i = 0; i < 4; ++i) {
    x.at(i, 0) = inputs[i][0];
    x.at(i, 1) = inputs[i][1];
  }

  for (int epoch = 0; epoch < 4000; ++epoch) {
    mlp.zero_grad();
    const Matrix& y = mlp.forward(x);
    Matrix grad(4, 1);
    for (int i = 0; i < 4; ++i) {
      grad.at(i, 0) = 2.0f * (y.at(i, 0) - targets[i]) / 4.0f;
    }
    mlp.backward(grad);
    adam.step();
  }
  const Matrix& y = mlp.forward(x);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(y.at(i, 0), targets[i], 0.2f) << "case " << i;
  }
}

TEST(Adam, StateRoundTripResumesIdentically) {
  // Two optimizers over identical parameters; after transplanting the
  // moment state mid-run, further steps must match exactly.
  Parameter pa;
  pa.value = {1.0f, -2.0f, 3.0f};
  Parameter pb;
  pb.value = pa.value;
  Adam a({&pa});
  Adam b({&pb});
  for (int s = 0; s < 5; ++s) {
    pa.grad = {0.1f * (s + 1), -0.2f, 0.05f};
    a.step();
  }
  util::BinaryWriter w;
  a.serialize_state(w);
  const auto bytes = w.take();
  util::BinaryReader r(bytes);
  ASSERT_TRUE(b.restore_state(r));
  EXPECT_EQ(b.steps(), 5u);
  pb.value = pa.value;
  for (int s = 0; s < 3; ++s) {
    pa.grad = {-0.3f, 0.4f * (s + 1), 0.0f};
    pb.grad = pa.grad;
    a.step();
    b.step();
  }
  for (std::size_t i = 0; i < pa.value.size(); ++i) {
    EXPECT_EQ(pa.value[i], pb.value[i]) << i;
  }
}

TEST(Adam, RestoreStateRejectsShapeMismatch) {
  Parameter small;
  small.value = {1.0f};
  small.grad = {0.1f};
  Adam donor({&small});
  donor.step();
  util::BinaryWriter w;
  donor.serialize_state(w);
  const auto bytes = w.take();

  Parameter big;
  big.value = {1.0f, 2.0f};
  Adam target({&big});
  util::BinaryReader r(bytes);
  EXPECT_FALSE(target.restore_state(r));
  EXPECT_EQ(target.steps(), 0u);  // untouched on failure

  util::BinaryReader truncated(bytes.data(), 3);
  EXPECT_FALSE(target.restore_state(truncated));
}

TEST(Adam, LearningRateSetter) {
  Parameter p;
  p.value = {0.0f};
  p.grad = {1.0f};
  Adam adam({&p});
  adam.set_learning_rate(0.5f);
  EXPECT_FLOAT_EQ(adam.options().learning_rate, 0.5f);
  adam.step();
  EXPECT_NEAR(p.value[0], -0.5f, 1e-4f);
}

}  // namespace
}  // namespace capes::nn
