#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace capes::nn {
namespace {

TEST(MseLoss, ZeroWhenEqual) {
  Matrix pred(2, 2, 1.0f);
  Matrix target(2, 2, 1.0f);
  Matrix grad;
  EXPECT_FLOAT_EQ(mse_loss(pred, target, grad), 0.0f);
  for (std::size_t i = 0; i < grad.size(); ++i) EXPECT_EQ(grad.data()[i], 0.0f);
}

TEST(MseLoss, KnownValueAndGradient) {
  Matrix pred(1, 2);
  pred.at(0, 0) = 3.0f;
  pred.at(0, 1) = 1.0f;
  Matrix target(1, 2);
  target.at(0, 0) = 1.0f;
  target.at(0, 1) = 1.0f;
  Matrix grad;
  // MSE = (4 + 0) / 2 = 2; grad = 2 diff / n.
  EXPECT_FLOAT_EQ(mse_loss(pred, target, grad), 2.0f);
  EXPECT_FLOAT_EQ(grad.at(0, 0), 2.0f * 2.0f / 2.0f);
  EXPECT_FLOAT_EQ(grad.at(0, 1), 0.0f);
}

TEST(MaskedMse, OnlySelectedColumnContributes) {
  Matrix pred(2, 3, 5.0f);
  std::vector<std::size_t> actions{1, 2};
  std::vector<float> targets{5.0f, 3.0f};
  Matrix grad;
  // Row 0: pred 5 target 5 -> 0. Row 1: pred 5 target 3 -> 4. Mean = 2.
  EXPECT_FLOAT_EQ(masked_mse_loss(pred, actions, targets, grad), 2.0f);
  EXPECT_FLOAT_EQ(grad.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(grad.at(1, 2), 2.0f * 2.0f / 2.0f);
  // All unselected entries have zero gradient.
  EXPECT_FLOAT_EQ(grad.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grad.at(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(grad.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(grad.at(1, 1), 0.0f);
}

TEST(MaskedMse, GradientSignPointsTowardTarget) {
  Matrix pred(1, 2);
  pred.at(0, 0) = 1.0f;
  Matrix grad;
  masked_mse_loss(pred, {0}, {2.0f}, grad);
  EXPECT_LT(grad.at(0, 0), 0.0f);  // pred < target: gradient negative
  masked_mse_loss(pred, {0}, {0.0f}, grad);
  EXPECT_GT(grad.at(0, 0), 0.0f);
}

TEST(MaskedHuber, QuadraticRegionMatchesMseHalf) {
  Matrix pred(1, 1);
  pred.at(0, 0) = 0.5f;
  Matrix grad;
  // |diff| = 0.5 <= delta=1: loss = 0.5 * 0.25.
  const float l = masked_huber_loss(pred, {0}, {0.0f}, grad, 1.0f);
  EXPECT_FLOAT_EQ(l, 0.125f);
  EXPECT_FLOAT_EQ(grad.at(0, 0), 0.5f);
}

TEST(MaskedHuber, LinearRegionClampsGradient) {
  Matrix pred(1, 1);
  pred.at(0, 0) = 10.0f;
  Matrix grad;
  const float l = masked_huber_loss(pred, {0}, {0.0f}, grad, 1.0f);
  // delta*(|diff| - delta/2) = 1*(10 - 0.5) = 9.5.
  EXPECT_FLOAT_EQ(l, 9.5f);
  EXPECT_FLOAT_EQ(grad.at(0, 0), 1.0f);
  pred.at(0, 0) = -10.0f;
  masked_huber_loss(pred, {0}, {0.0f}, grad, 1.0f);
  EXPECT_FLOAT_EQ(grad.at(0, 0), -1.0f);
}

TEST(MaskedHuber, ContinuousAtDelta) {
  Matrix grad;
  Matrix pred(1, 1);
  pred.at(0, 0) = 0.999f;
  const float below = masked_huber_loss(pred, {0}, {0.0f}, grad, 1.0f);
  pred.at(0, 0) = 1.001f;
  const float above = masked_huber_loss(pred, {0}, {0.0f}, grad, 1.0f);
  EXPECT_NEAR(below, above, 1e-2f);
}

TEST(Losses, BatchAveraging) {
  // Loss and gradient scale as 1/batch.
  Matrix pred1(1, 1);
  pred1.at(0, 0) = 2.0f;
  Matrix pred4(4, 1, 2.0f);
  Matrix g1, g4;
  const float l1 = masked_mse_loss(pred1, {0}, {0.0f}, g1);
  const float l4 =
      masked_mse_loss(pred4, {0, 0, 0, 0}, {0.0f, 0.0f, 0.0f, 0.0f}, g4);
  EXPECT_FLOAT_EQ(l1, l4);  // mean is the same
  EXPECT_FLOAT_EQ(g4.at(0, 0), g1.at(0, 0) / 4.0f);
}

}  // namespace
}  // namespace capes::nn
