// The tcp wire format: encode/parse round trips, torn (byte-at-a-time)
// delivery, and sticky corruption on CRC or length damage.

#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/frame.hpp"

namespace capes::net {
namespace {

Frame make_frame(std::uint8_t type, std::int64_t tick, std::uint64_t topic,
                 std::uint64_t sender, std::size_t payload_size) {
  Frame f;
  f.type = type;
  f.tick = tick;
  f.topic = topic;
  f.sender = sender;
  f.payload.resize(payload_size);
  for (std::size_t i = 0; i < payload_size; ++i) {
    f.payload[i] = static_cast<std::uint8_t>(i * 37 + type);
  }
  return f;
}

void expect_same(const Frame& a, const Frame& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.tick, b.tick);
  EXPECT_EQ(a.topic, b.topic);
  EXPECT_EQ(a.sender, b.sender);
  EXPECT_EQ(a.payload, b.payload);
}

TEST(NetFrame, RoundTripsSingleFrame) {
  const Frame sent = make_frame(3, -17, 42, 7, 100);
  std::vector<std::uint8_t> wire;
  encode_frame(sent, &wire);
  ASSERT_EQ(wire.size(), kFrameFixedBytes + 100);

  FrameParser parser;
  parser.feed(wire.data(), wire.size());
  Frame got;
  ASSERT_EQ(parser.next(&got), ParseResult::kOk);
  expect_same(sent, got);
  EXPECT_EQ(parser.next(&got), ParseResult::kNeedMore);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(NetFrame, RoundTripsEmptyPayload) {
  const Frame sent = make_frame(16, 0, 0, 0, 0);
  std::vector<std::uint8_t> wire;
  encode_frame(sent, &wire);
  ASSERT_EQ(wire.size(), kFrameFixedBytes);
  FrameParser parser;
  parser.feed(wire.data(), wire.size());
  Frame got;
  ASSERT_EQ(parser.next(&got), ParseResult::kOk);
  expect_same(sent, got);
}

TEST(NetFrame, RawFieldEncodeMatchesFrameEncode) {
  const Frame sent = make_frame(4, 1234, 2, 1, 64);
  std::vector<std::uint8_t> via_frame;
  encode_frame(sent, &via_frame);
  std::vector<std::uint8_t> via_fields;
  encode_frame(sent.type, sent.tick, sent.topic, sent.sender,
               sent.payload.data(), sent.payload.size(), &via_fields);
  EXPECT_EQ(via_frame, via_fields);
}

TEST(NetFrame, EncodeAppendsSeveralFramesIntoOneBuffer) {
  std::vector<Frame> sent;
  std::vector<std::uint8_t> wire;
  for (int i = 0; i < 5; ++i) {
    sent.push_back(make_frame(static_cast<std::uint8_t>(i + 1), i * 10,
                              static_cast<std::uint64_t>(i), 0,
                              static_cast<std::size_t>(i * 31)));
    encode_frame(sent.back(), &wire);
  }
  FrameParser parser;
  parser.feed(wire.data(), wire.size());
  Frame got;
  for (const Frame& expected : sent) {
    ASSERT_EQ(parser.next(&got), ParseResult::kOk);
    expect_same(expected, got);
  }
  EXPECT_EQ(parser.next(&got), ParseResult::kNeedMore);
}

TEST(NetFrame, SurvivesTornByteAtATimeDelivery) {
  const Frame sent = make_frame(2, 99, 1, 3, 57);
  std::vector<std::uint8_t> wire;
  encode_frame(sent, &wire);
  FrameParser parser;
  Frame got;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    parser.feed(&wire[i], 1);
    ASSERT_EQ(parser.next(&got), ParseResult::kNeedMore)
        << "frame complete after " << (i + 1) << " of " << wire.size()
        << " bytes";
  }
  parser.feed(&wire[wire.size() - 1], 1);
  ASSERT_EQ(parser.next(&got), ParseResult::kOk);
  expect_same(sent, got);
}

TEST(NetFrame, PayloadVectorIsReusedAcrossFrames) {
  std::vector<std::uint8_t> wire;
  encode_frame(make_frame(1, 0, 0, 0, 200), &wire);
  encode_frame(make_frame(2, 1, 0, 0, 50), &wire);
  FrameParser parser;
  parser.feed(wire.data(), wire.size());
  Frame got;
  ASSERT_EQ(parser.next(&got), ParseResult::kOk);
  const std::uint8_t* const data_before = got.payload.data();
  const std::size_t cap_before = got.payload.capacity();
  ASSERT_EQ(parser.next(&got), ParseResult::kOk);
  EXPECT_EQ(got.payload.size(), 50u);
  // The second, smaller payload reuses the first frame's allocation.
  EXPECT_EQ(got.payload.data(), data_before);
  EXPECT_EQ(got.payload.capacity(), cap_before);
}

TEST(NetFrame, CorruptPayloadByteIsSticky) {
  const Frame sent = make_frame(5, 7, 1, 1, 40);
  std::vector<std::uint8_t> wire;
  encode_frame(sent, &wire);
  wire[kFrameFixedBytes + 10] ^= 0x01;  // flip one payload bit

  FrameParser parser;
  parser.feed(wire.data(), wire.size());
  Frame got;
  EXPECT_EQ(parser.next(&got), ParseResult::kCorrupt);
  // Sticky: even after feeding a pristine frame, the stream stays dead.
  std::vector<std::uint8_t> clean;
  encode_frame(sent, &clean);
  parser.feed(clean.data(), clean.size());
  EXPECT_EQ(parser.next(&got), ParseResult::kCorrupt);
}

TEST(NetFrame, CorruptHeaderFieldFailsTheCrc) {
  const Frame sent = make_frame(5, 7, 1, 1, 8);
  std::vector<std::uint8_t> wire;
  encode_frame(sent, &wire);
  wire[8] ^= 0xFF;  // the type byte, inside the CRC'd region
  FrameParser parser;
  parser.feed(wire.data(), wire.size());
  Frame got;
  EXPECT_EQ(parser.next(&got), ParseResult::kCorrupt);
}

TEST(NetFrame, InsaneLengthPrefixIsCorruptNotAnAllocation) {
  std::vector<std::uint8_t> wire;
  encode_frame(make_frame(1, 0, 0, 0, 4), &wire);
  // Overwrite the length prefix with something past the sanity bound: the
  // parser must refuse immediately instead of waiting for 4 GB of input.
  util::put_le32(wire.data(), 0xFFFFFFFFu);
  FrameParser parser;
  parser.feed(wire.data(), wire.size());
  Frame got;
  EXPECT_EQ(parser.next(&got), ParseResult::kCorrupt);
}

TEST(NetFrame, StoredCrcMatchesFrameCrc) {
  const Frame sent = make_frame(6, 123, 9, 2, 16);
  std::vector<std::uint8_t> wire;
  encode_frame(sent, &wire);
  EXPECT_EQ(util::get_le32(wire.data() + 4), frame_crc(sent));
}

}  // namespace
}  // namespace capes::net
