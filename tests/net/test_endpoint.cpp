// net::Endpoint over a real loopback socket pair: FIFO delivery, EOF
// wake-up, non-blocking shed on overflow, and heartbeat filtering.

#include "net/endpoint.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace capes::net {
namespace {

struct Loopback {
  std::unique_ptr<Endpoint> client;    ///< the connect() side
  std::unique_ptr<Endpoint> accepted;  ///< the accept() side
};

Loopback make_loopback(EndpointOptions client_opts = {},
                       EndpointOptions accepted_opts = {}) {
  std::string error;
  const int listen_fd = tcp_listen("127.0.0.1", 0, &error);
  EXPECT_GE(listen_fd, 0) << error;
  const std::uint16_t port = local_port(listen_fd);
  EXPECT_NE(port, 0);
  const int client_fd = tcp_connect("127.0.0.1", port, 5000, &error);
  EXPECT_GE(client_fd, 0) << error;
  const int accepted_fd = accept_connection(listen_fd, 5000, &error);
  EXPECT_GE(accepted_fd, 0) << error;
  close_socket(listen_fd);
  Loopback pair;
  pair.client = std::make_unique<Endpoint>(client_fd, client_opts);
  pair.accepted = std::make_unique<Endpoint>(accepted_fd, accepted_opts);
  return pair;
}

TEST(Endpoint, DeliversFramesInFifoOrder) {
  Loopback pair = make_loopback();
  constexpr int kFrames = 200;
  for (int i = 0; i < kFrames; ++i) {
    const std::uint8_t payload[4] = {static_cast<std::uint8_t>(i),
                                     static_cast<std::uint8_t>(i >> 8), 0, 7};
    ASSERT_TRUE(pair.client->send(3, i, 42, 9, payload, sizeof(payload)));
  }
  for (int i = 0; i < kFrames; ++i) {
    InSlot* slot = pair.accepted->recv();
    ASSERT_NE(slot, nullptr) << "link died after " << i << " frames";
    EXPECT_EQ(slot->frame.type, 3);
    EXPECT_EQ(slot->frame.tick, i);
    EXPECT_EQ(slot->frame.topic, 42u);
    EXPECT_EQ(slot->frame.sender, 9u);
    ASSERT_EQ(slot->frame.payload.size(), 4u);
    EXPECT_EQ(slot->frame.payload[0], static_cast<std::uint8_t>(i));
    pair.accepted->recycle(slot);
  }
  EXPECT_TRUE(pair.client->alive());
  EXPECT_TRUE(pair.accepted->alive());
  EXPECT_EQ(pair.client->send_dropped(), 0u);
}

TEST(Endpoint, RoundTripsBothDirections) {
  Loopback pair = make_loopback();
  const std::uint8_t ping[] = {1, 2, 3};
  ASSERT_TRUE(pair.client->send(16, 1, 0, 0, ping, sizeof(ping)));
  InSlot* slot = pair.accepted->recv();
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->frame.type, 16);
  pair.accepted->recycle(slot);

  const std::uint8_t pong[] = {4, 5};
  ASSERT_TRUE(pair.accepted->send(17, 2, 0, 0, pong, sizeof(pong)));
  slot = pair.client->recv();
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->frame.type, 17);
  ASSERT_EQ(slot->frame.payload.size(), 2u);
  EXPECT_EQ(slot->frame.payload[1], 5);
  pair.client->recycle(slot);
}

TEST(Endpoint, LargePayloadSurvivesTheRing) {
  Loopback pair = make_loopback();
  std::vector<std::uint8_t> big(1u << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 131);
  }
  ASSERT_TRUE(pair.client->send(4, 7, 2, 1, big.data(), big.size()));
  InSlot* slot = pair.accepted->recv();
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->frame.payload, big);
  pair.accepted->recycle(slot);
}

TEST(Endpoint, PeerCloseDrainsThenWakesRecvWithNull) {
  Loopback pair = make_loopback();
  const std::uint8_t payload[] = {9};
  ASSERT_TRUE(pair.client->send(1, 1, 0, 0, payload, sizeof(payload)));
  // The frame must be readable before the close lands (the endpoint
  // lingers to flush on clean close, so this is deterministic).
  InSlot* slot = pair.accepted->recv();
  ASSERT_NE(slot, nullptr);
  pair.accepted->recycle(slot);

  pair.client->close();
  // EOF: the blocked recv() must wake with nullptr, not hang.
  EXPECT_EQ(pair.accepted->recv(), nullptr);
  EXPECT_FALSE(pair.accepted->alive());
}

TEST(Endpoint, QueuedFramesFlushBeforeCleanClose) {
  Loopback pair = make_loopback();
  constexpr int kFrames = 50;
  const std::uint8_t payload[] = {1, 2, 3, 4};
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(pair.client->send(1, i, 0, 0, payload, sizeof(payload)));
  }
  pair.client->close();  // the linger flush must get all 50 out
  int received = 0;
  while (InSlot* slot = pair.accepted->recv()) {
    EXPECT_EQ(slot->frame.tick, received);
    ++received;
    pair.accepted->recycle(slot);
  }
  EXPECT_EQ(received, kFrames);
}

TEST(Endpoint, SendAfterCloseShedsInsteadOfBlocking) {
  Loopback pair = make_loopback();
  pair.client->close();
  const std::uint8_t payload[] = {1};
  EXPECT_FALSE(pair.client->send(1, 0, 0, 0, payload, sizeof(payload)));
  EXPECT_GE(pair.client->send_dropped(), 1u);
}

TEST(Endpoint, SlowPeerShedsAtTheSenderNotTheControlThread) {
  // A tiny outbound ring against a peer that never consumes: once the
  // socket and the peer's inbound ring are full, send() must shed and
  // count, never block the control thread.
  EndpointOptions small;
  small.ring_capacity = 8;
  EndpointOptions stalled;
  stalled.ring_capacity = 2;
  Loopback pair = make_loopback(small, stalled);

  std::vector<std::uint8_t> chunk(256u << 10, 0xAB);
  bool shed = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!shed && std::chrono::steady_clock::now() < deadline) {
    if (!pair.client->send(2, 0, 0, 0, chunk.data(), chunk.size())) {
      shed = true;
    }
  }
  EXPECT_TRUE(shed);
  EXPECT_GE(pair.client->send_dropped(), 1u);
  EXPECT_TRUE(pair.client->alive());  // shedding is not link death
}

TEST(Endpoint, HeartbeatsAreFilteredAndKeepTheLinkAlive) {
  EndpointOptions chatty;
  chatty.heartbeat_ms = 20;
  EndpointOptions strict;
  strict.heartbeat_ms = 20;
  strict.idle_timeout_ms = 2000;
  Loopback pair = make_loopback(chatty, strict);

  // Neither side sends real traffic; heartbeats must flow underneath
  // (keeping alive() true on the strict side) without ever surfacing.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(pair.accepted->try_recv(), nullptr);
  EXPECT_TRUE(pair.accepted->alive());
  EXPECT_GT(pair.accepted->bytes_received(), 0u);

  // Real traffic still gets through after the idle stretch.
  const std::uint8_t payload[] = {5};
  ASSERT_TRUE(pair.client->send(1, 1, 0, 0, payload, sizeof(payload)));
  InSlot* slot = pair.accepted->recv();
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->frame.type, 1);
  pair.accepted->recycle(slot);
}

TEST(Endpoint, IdleTimeoutDeclaresASilentPeerDead) {
  EndpointOptions silent;
  silent.heartbeat_ms = 0;  // never send keepalives
  EndpointOptions impatient;
  impatient.idle_timeout_ms = 100;
  Loopback pair = make_loopback(silent, impatient);
  // The silent peer never writes; the impatient side must give up and
  // wake its consumer instead of waiting forever.
  EXPECT_EQ(pair.accepted->recv(), nullptr);
  EXPECT_FALSE(pair.accepted->alive());
}

TEST(Socket, ConnectToClosedPortFailsWithinBudget) {
  std::string error;
  // Grab an ephemeral port, then close it so nothing is listening.
  const int listen_fd = tcp_listen("127.0.0.1", 0, &error);
  ASSERT_GE(listen_fd, 0) << error;
  const std::uint16_t port = local_port(listen_fd);
  close_socket(listen_fd);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_LT(tcp_connect("127.0.0.1", port, 300, &error), 0);
  EXPECT_FALSE(error.empty());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(Socket, ListenRejectsUnresolvableHost) {
  std::string error;
  EXPECT_LT(tcp_listen("no.such.host.invalid", 0, &error), 0);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace capes::net
