#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace capes::sim {
namespace {

NetworkOptions default_opts() {
  NetworkOptions o;
  o.link_bandwidth_mbs = 100.0;  // 10 us per KB
  o.fabric_bandwidth_mbs = 400.0;
  o.base_latency = 200;
  o.jitter_fraction = 0.0;
  return o;
}

TEST(Network, SmallMessageLatencyDominated) {
  Simulator sim;
  Network net(sim, 2, default_opts(), util::Rng(1));
  TimeUs delivered = -1;
  net.send(0, 1, 100, [&] { delivered = sim.now(); });
  sim.run_until(seconds(1));
  // ~1us uplink + ~1us fabric + ~1us downlink + 200us latency.
  EXPECT_GE(delivered, 200);
  EXPECT_LE(delivered, 220);
}

TEST(Network, TransferTimeScalesWithSize) {
  Simulator sim;
  Network net(sim, 2, default_opts(), util::Rng(2));
  TimeUs t_small = 0, t_large = 0;
  net.send(0, 1, 1000, [&] { t_small = sim.now(); });
  sim.run_until(seconds(1));
  Simulator sim2;
  Network net2(sim2, 2, default_opts(), util::Rng(2));
  net2.send(0, 1, 10'000'000, [&] { t_large = sim2.now(); });
  sim2.run_until(seconds(10));
  // 10 MB at 100 MB/s uplink+downlink = 2 * 0.1 s plus fabric 25 ms.
  EXPECT_GT(t_large, t_small + 100000);
}

TEST(Network, BandwidthApproximatelyCorrect) {
  Simulator sim;
  Network net(sim, 2, default_opts(), util::Rng(3));
  TimeUs done = 0;
  const std::uint64_t bytes = 10'000'000;  // 10 MB
  net.send(0, 1, bytes, [&] { done = sim.now(); });
  sim.run_until(seconds(10));
  // Serial path: 100ms uplink + 25ms fabric + 100ms downlink + latency.
  EXPECT_NEAR(static_cast<double>(done), 225200.0, 5000.0);
}

TEST(Network, UplinkSerializesSameSender) {
  Simulator sim;
  Network net(sim, 3, default_opts(), util::Rng(4));
  TimeUs first = 0, second = 0;
  net.send(0, 1, 1'000'000, [&] { first = sim.now(); });
  net.send(0, 2, 1'000'000, [&] { second = sim.now(); });
  sim.run_until(seconds(5));
  // The second transfer waits for the first on the shared uplink.
  EXPECT_GT(second, first + 5000);
}

TEST(Network, DistinctSendersShareOnlyFabric) {
  Simulator sim;
  NetworkOptions opts = default_opts();
  opts.fabric_bandwidth_mbs = 1e9;  // effectively infinite fabric
  Network net(sim, 4, opts, util::Rng(5));
  TimeUs a = 0, b = 0;
  net.send(0, 2, 1'000'000, [&] { a = sim.now(); });
  net.send(1, 3, 1'000'000, [&] { b = sim.now(); });
  sim.run_until(seconds(5));
  // Disjoint paths: both complete at nearly the same time.
  EXPECT_NEAR(static_cast<double>(a), static_cast<double>(b), 2000.0);
}

TEST(Network, FabricCapsAggregate) {
  Simulator sim;
  NetworkOptions opts = default_opts();
  opts.link_bandwidth_mbs = 1e9;     // infinite links
  opts.fabric_bandwidth_mbs = 100.0; // 100 MB/s shared
  Network net(sim, 6, opts, util::Rng(6));
  int done = 0;
  // 3 disjoint pairs send 10 MB each = 30 MB total.
  net.send(0, 3, 10'000'000, [&] { ++done; });
  net.send(1, 4, 10'000'000, [&] { ++done; });
  net.send(2, 5, 10'000'000, [&] { ++done; });
  sim.run_until(seconds(0.25));
  EXPECT_LT(done, 3);  // 30 MB at 100 MB/s needs 0.3 s
  sim.run_until(seconds(0.5));
  EXPECT_EQ(done, 3);
}

TEST(Network, EstimateLatencyIdle) {
  Simulator sim;
  Network net(sim, 2, default_opts(), util::Rng(7));
  EXPECT_EQ(net.estimate_latency(0, 1), 200);
}

TEST(Network, EstimateLatencyGrowsWithBacklog) {
  Simulator sim;
  Network net(sim, 2, default_opts(), util::Rng(8));
  net.send(0, 1, 50'000'000, [] {});
  // Estimate includes the receiver downlink backlog.
  EXPECT_GT(net.estimate_latency(0, 1), 200);
}

TEST(Network, TotalBytesAccumulate) {
  Simulator sim;
  Network net(sim, 2, default_opts(), util::Rng(9));
  net.send(0, 1, 1000, [] {});
  net.send(1, 0, 500, [] {});
  EXPECT_EQ(net.total_bytes_sent(), 1500u);
}

TEST(Network, JitterVariesLatency) {
  Simulator sim;
  NetworkOptions opts = default_opts();
  opts.jitter_fraction = 0.5;
  Network net(sim, 2, opts, util::Rng(10));
  std::vector<TimeUs> arrivals;
  TimeUs prev_end = 0;
  for (int i = 0; i < 20; ++i) {
    net.send(0, 1, 10, [&, i] { arrivals.push_back(sim.now()); });
  }
  (void)prev_end;
  sim.run_until(seconds(1));
  ASSERT_EQ(arrivals.size(), 20u);
  // Gaps between consecutive arrivals should not all be identical.
  std::set<TimeUs> gaps;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    gaps.insert(arrivals[i] - arrivals[i - 1]);
  }
  EXPECT_GT(gaps.size(), 3u);
}

}  // namespace
}  // namespace capes::sim
