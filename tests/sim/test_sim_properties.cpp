// Property/stress tests on the simulation substrate: conservation laws
// and monotonicity that must hold for any parameterization.

#include <gtest/gtest.h>

#include <vector>

#include "sim/disk.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace capes::sim {
namespace {

class DiskQueueDepthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DiskQueueDepthSweep, WriteThroughputMonotoneInDepth) {
  // Random-write service rate must be non-decreasing in queue depth
  // (merging/elevator can only help) — the Figure 2 mechanism.
  auto bytes_at_depth = [](std::size_t depth) {
    Simulator sim;
    DiskOptions opts;
    opts.service_noise = 0.0;
    Disk disk(sim, opts, util::Rng(1));
    util::Rng rng(2);
    std::function<void()> refill = [&] {
      while (disk.queue_depth() < depth) {
        DiskRequest r;
        r.is_write = true;
        r.object_id = 1;
        r.offset = rng.next_u64() % (1ull << 36);
        r.bytes = 65536;
        r.done = [&](TimeUs) { refill(); };
        disk.enqueue(std::move(r));
      }
    };
    refill();
    sim.run_until(seconds(10));
    return disk.bytes_written();
  };
  const std::size_t depth = GetParam();
  EXPECT_GE(bytes_at_depth(depth * 2) + (1 << 20), bytes_at_depth(depth));
}

INSTANTIATE_TEST_SUITE_P(Depths, DiskQueueDepthSweep,
                         ::testing::Values(1, 4, 16, 64, 256));

TEST(DiskConservation, EveryEnqueuedRequestCompletesOnce) {
  Simulator sim;
  DiskOptions opts;
  Disk disk(sim, opts, util::Rng(3));
  util::Rng rng(4);
  int completions = 0;
  constexpr int kRequests = 500;
  for (int i = 0; i < kRequests; ++i) {
    DiskRequest r;
    r.is_write = rng.chance(0.5);
    r.object_id = rng.uniform_u64(4);
    r.offset = rng.next_u64() % (1ull << 32);
    r.bytes = 4096 + rng.uniform_u64(1 << 16);
    r.done = [&](TimeUs) { ++completions; };
    disk.enqueue(std::move(r));
  }
  sim.run_until(seconds(600));
  EXPECT_EQ(completions, kRequests);
  EXPECT_EQ(disk.completed_ops(), static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(disk.queue_depth(), 0u);
}

TEST(NetworkConservation, EveryMessageDeliveredExactlyOnce) {
  Simulator sim;
  NetworkOptions opts;
  Network net(sim, 6, opts, util::Rng(5));
  util::Rng rng(6);
  int delivered = 0;
  constexpr int kMessages = 1000;
  std::uint64_t sent_bytes = 0;
  for (int i = 0; i < kMessages; ++i) {
    const NodeId src = rng.pick_index(6);
    NodeId dst = rng.pick_index(6);
    if (dst == src) dst = (dst + 1) % 6;
    const std::uint64_t bytes = 64 + rng.uniform_u64(1 << 20);
    sent_bytes += bytes;
    net.send(src, dst, bytes, [&] { ++delivered; });
  }
  sim.run_until(seconds(600));
  EXPECT_EQ(delivered, kMessages);
  EXPECT_EQ(net.total_bytes_sent(), sent_bytes);
}

TEST(NetworkCausality, DeliveryNeverBeforeMinimumLatency) {
  Simulator sim;
  NetworkOptions opts;
  opts.base_latency = 500;
  opts.jitter_fraction = 0.0;
  Network net(sim, 2, opts, util::Rng(7));
  std::vector<TimeUs> deliveries;
  for (int i = 0; i < 50; ++i) {
    net.send(0, 1, 1000, [&] { deliveries.push_back(sim.now()); });
  }
  sim.run_until(seconds(10));
  ASSERT_EQ(deliveries.size(), 50u);
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    EXPECT_GE(deliveries[i], 500);
    if (i > 0) {
      EXPECT_GE(deliveries[i], deliveries[i - 1]);  // FIFO per link
    }
  }
}

TEST(SimulatorStress, ManyInterleavedTimersStayOrdered) {
  Simulator sim;
  util::Rng rng(8);
  TimeUs last_seen = -1;
  bool ordered = true;
  for (int i = 0; i < 20000; ++i) {
    sim.schedule_at(static_cast<TimeUs>(rng.uniform_u64(1000000)), [&] {
      if (sim.now() < last_seen) ordered = false;
      last_seen = sim.now();
    });
  }
  sim.run_until(1000000);
  EXPECT_TRUE(ordered);
  EXPECT_EQ(sim.executed_events(), 20000u);
}

}  // namespace
}  // namespace capes::sim
