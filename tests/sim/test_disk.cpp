#include "sim/disk.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace capes::sim {
namespace {

DiskOptions quiet_opts() {
  DiskOptions o;
  o.service_noise = 0.0;
  return o;
}

DiskRequest request(bool write, std::uint64_t obj, std::uint64_t off,
                    std::uint64_t bytes,
                    std::function<void(TimeUs)> done = nullptr) {
  DiskRequest r;
  r.is_write = write;
  r.object_id = obj;
  r.offset = off;
  r.bytes = bytes;
  r.done = std::move(done);
  return r;
}

TEST(Disk, SequentialWriteAtFullBandwidth) {
  Simulator sim;
  Disk disk(sim, quiet_opts(), util::Rng(1));
  TimeUs t1 = 0, t2 = 0;
  disk.enqueue(request(true, 1, 0, 1 << 20, [&](TimeUs) { t1 = sim.now(); }));
  disk.enqueue(
      request(true, 1, 1 << 20, 1 << 20, [&](TimeUs) { t2 = sim.now(); }));
  sim.run_until(seconds(10));
  // First request pays positioning; the second is sequential: only
  // transfer time (1 MB / 106 MB/s ~ 9.9 ms).
  const TimeUs second_service = t2 - t1;
  EXPECT_NEAR(static_cast<double>(second_service), 1e6 * (1 << 20) / 106e6,
              500.0);
}

TEST(Disk, RandomAccessPaysPositioning) {
  Simulator sim;
  Disk disk(sim, quiet_opts(), util::Rng(2));
  TimeUs t1 = 0, t2 = 0;
  disk.enqueue(request(true, 1, 0, 4096, [&](TimeUs) { t1 = sim.now(); }));
  disk.enqueue(
      request(true, 1, 1 << 30, 4096, [&](TimeUs) { t2 = sim.now(); }));
  sim.run_until(seconds(10));
  // Non-contiguous: second also pays positioning (write queue of 1-2:
  // factor close to 1). Should be on the order of 10+ ms.
  EXPECT_GT(t2 - t1, 5000);
}

TEST(Disk, BackwardOffsetIsNotSequential) {
  Simulator sim;
  Disk disk(sim, quiet_opts(), util::Rng(3));
  TimeUs t1 = 0, t2 = 0;
  disk.enqueue(request(false, 1, 1 << 24, 4096, [&](TimeUs) { t1 = sim.now(); }));
  disk.enqueue(request(false, 1, 0, 4096, [&](TimeUs) { t2 = sim.now(); }));
  sim.run_until(seconds(10));
  EXPECT_GT(t2 - t1, 5000);
}

TEST(Disk, DeepWriteQueueServicesFaster) {
  // The core mechanism behind Figure 2: random writes are serviced faster
  // per request when many are queued (merging/elevator).
  auto run = [](std::size_t queue_depth) {
    Simulator sim;
    Disk disk(sim, quiet_opts(), util::Rng(4));
    util::Rng rng(5);
    std::vector<TimeUs> services;
    // Keep the queue at the given depth for 200 completions.
    std::function<void()> refill = [&] {
      while (disk.queue_depth() < queue_depth) {
        disk.enqueue(request(true, 1, rng.next_u64() % (1ull << 36), 65536,
                             [&](TimeUs) { refill(); }));
      }
    };
    refill();
    sim.run_until(seconds(20));
    return disk.bytes_written();
  };
  const auto shallow = run(4);
  const auto deep = run(200);
  EXPECT_GT(static_cast<double>(deep), 1.5 * static_cast<double>(shallow));
}

TEST(Disk, ReadQueueDepthBarelyMatters) {
  auto run = [](std::size_t queue_depth) {
    Simulator sim;
    Disk disk(sim, quiet_opts(), util::Rng(6));
    util::Rng rng(7);
    std::function<void()> refill = [&] {
      while (disk.queue_depth() < queue_depth) {
        disk.enqueue(request(false, 1, rng.next_u64() % (1ull << 36), 65536,
                             [&](TimeUs) { refill(); }));
      }
    };
    refill();
    sim.run_until(seconds(20));
    return disk.bytes_read();
  };
  const auto shallow = run(4);
  const auto deep = run(200);
  // Reads gain a little from the elevator but stay seek-bound: < 40%.
  EXPECT_LT(static_cast<double>(deep), 1.4 * static_cast<double>(shallow));
  EXPECT_GE(static_cast<double>(deep), 0.95 * static_cast<double>(shallow));
}

TEST(Disk, ReadsPreemptQueuedWrites) {
  Simulator sim;
  Disk disk(sim, quiet_opts(), util::Rng(8));
  util::Rng rng(9);
  // Stuff a deep write queue, then submit one read.
  for (int i = 0; i < 100; ++i) {
    disk.enqueue(request(true, 1, rng.next_u64() % (1ull << 36), 65536));
  }
  TimeUs read_done = -1;
  disk.enqueue(request(false, 2, 0, 4096, [&](TimeUs) { read_done = sim.now(); }));
  sim.run_until(seconds(30));
  // The read should complete after ~2 service times (current write +
  // read), not after draining 100 writes.
  EXPECT_GT(read_done, 0);
  EXPECT_LT(read_done, 100000);
}

TEST(Disk, WritesNotStarvedByReads) {
  Simulator sim;
  DiskOptions opts = quiet_opts();
  opts.max_consecutive_reads = 4;
  Disk disk(sim, opts, util::Rng(10));
  util::Rng rng(11);
  // Sustain a read flood and one queued write.
  std::function<void()> read_flood = [&] {
    while (disk.queued_reads() < 20) {
      disk.enqueue(request(false, 1, rng.next_u64() % (1ull << 36), 4096,
                           [&](TimeUs) { read_flood(); }));
    }
  };
  read_flood();
  TimeUs write_done = -1;
  disk.enqueue(request(true, 2, 0, 4096, [&](TimeUs) { write_done = sim.now(); }));
  sim.run_until(seconds(10));
  EXPECT_GT(write_done, 0);
  EXPECT_LT(write_done, seconds(1));
}

TEST(Disk, StatsAccumulate) {
  Simulator sim;
  Disk disk(sim, quiet_opts(), util::Rng(12));
  disk.enqueue(request(true, 1, 0, 1000));
  disk.enqueue(request(false, 1, 1 << 20, 2000));
  sim.run_until(seconds(5));
  EXPECT_EQ(disk.bytes_written(), 1000u);
  EXPECT_EQ(disk.bytes_read(), 2000u);
  EXPECT_EQ(disk.completed_ops(), 2u);
  EXPECT_GT(disk.busy_time(), 0);
}

TEST(Disk, ProcessTimeIncludesQueueWait) {
  Simulator sim;
  Disk disk(sim, quiet_opts(), util::Rng(13));
  std::vector<TimeUs> pts;
  for (int i = 0; i < 5; ++i) {
    disk.enqueue(request(true, 1, i * (1ull << 30), 4096,
                         [&](TimeUs pt) { pts.push_back(pt); }));
  }
  sim.run_until(seconds(10));
  ASSERT_EQ(pts.size(), 5u);
  // Later requests waited behind earlier ones.
  EXPECT_GT(pts[4], pts[0]);
  EXPECT_EQ(disk.min_process_time(), pts[0]);
  EXPECT_EQ(disk.last_process_time(), pts[4]);
}

TEST(Disk, NoiseChangesServiceTimes) {
  DiskOptions opts;
  opts.service_noise = 0.2;
  Simulator sim;
  Disk disk(sim, opts, util::Rng(14));
  std::vector<TimeUs> completions;
  for (int i = 0; i < 10; ++i) {
    disk.enqueue(request(true, 1, i * (1ull << 30), 4096,
                         [&](TimeUs) { completions.push_back(sim.now()); }));
  }
  sim.run_until(seconds(10));
  std::set<TimeUs> gaps;
  for (std::size_t i = 1; i < completions.size(); ++i) {
    gaps.insert(completions[i] - completions[i - 1]);
  }
  EXPECT_GT(gaps.size(), 5u);
}

TEST(Disk, QueueDepthCounts) {
  Simulator sim;
  Disk disk(sim, quiet_opts(), util::Rng(15));
  disk.enqueue(request(true, 1, 0, 4096));
  disk.enqueue(request(true, 1, 1 << 25, 4096));
  disk.enqueue(request(false, 1, 1 << 26, 4096));
  // One dispatched (busy), two queued.
  EXPECT_EQ(disk.queue_depth(), 3u);
  EXPECT_EQ(disk.queued_writes() + disk.queued_reads(), 2u);
  sim.run_until(seconds(5));
  EXPECT_EQ(disk.queue_depth(), 0u);
}

}  // namespace
}  // namespace capes::sim
