#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace capes::sim {
namespace {

TEST(Simulator, TimeStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulator, SecondsHelper) {
  EXPECT_EQ(seconds(1.0), 1000000);
  EXPECT_EQ(seconds(0.5), 500000);
  EXPECT_EQ(kUsPerSec, 1000000);
  EXPECT_EQ(kUsPerMs, 1000);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run_until(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(100, [&] { order.push_back(2); });
  sim.schedule_at(100, [&] { order.push_back(3); });
  sim.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator sim;
  TimeUs seen = -1;
  sim.schedule_at(5000, [&] { seen = sim.now(); });
  sim.run_until(10000);
  EXPECT_EQ(seen, 5000);
  EXPECT_EQ(sim.now(), 10000);  // clock advances to the horizon
}

TEST(Simulator, RunUntilDoesNotRunLaterEvents) {
  Simulator sim;
  bool late_fired = false;
  sim.schedule_at(2000, [&] { late_fired = true; });
  sim.run_until(1000);
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(2000);  // boundary inclusive
  EXPECT_TRUE(late_fired);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  TimeUs fired_at = 0;
  sim.schedule_at(100, [&] {
    sim.schedule_in(50, [&] { fired_at = sim.now(); });
  });
  sim.run_until(1000);
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, PastScheduleClampsToNow) {
  Simulator sim;
  sim.run_until(500);
  TimeUs fired_at = -1;
  sim.schedule_at(100, [&] { fired_at = sim.now(); });
  sim.run_until(600);
  EXPECT_EQ(fired_at, 500);
}

TEST(Simulator, NegativeDelayClamps) {
  Simulator sim;
  TimeUs fired_at = -1;
  sim.schedule_in(-100, [&] { fired_at = sim.now(); });
  sim.run_until(10);
  EXPECT_EQ(fired_at, 0);
}

TEST(Simulator, HandlersCanChainEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) sim.schedule_in(10, chain);
  };
  sim.schedule_at(0, chain);
  sim.run_until(1000);
  EXPECT_EQ(count, 10);
}

TEST(Simulator, StepRunsExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] { ++fired; });
  sim.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ExecutedEventCount) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run_until(10);
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulator, EveryFiresPeriodically) {
  Simulator sim;
  std::vector<std::int64_t> indices;
  std::vector<TimeUs> times;
  sim.every(100, 50, [&](std::int64_t i) {
    indices.push_back(i);
    times.push_back(sim.now());
  });
  sim.run_until(300);
  ASSERT_EQ(indices.size(), 5u);  // 100,150,200,250,300
  EXPECT_EQ(indices, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(times[0], 100);
  EXPECT_EQ(times[4], 300);
}

TEST(Simulator, RunUntilReturnsEventCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i * 10, [] {});
  EXPECT_EQ(sim.run_until(30), 4u);  // t=0,10,20,30
  EXPECT_EQ(sim.run_until(100), 3u);
}

}  // namespace
}  // namespace capes::sim
