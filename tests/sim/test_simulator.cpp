#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "util/thread_pool.hpp"

namespace capes::sim {
namespace {

TEST(Simulator, TimeStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulator, SecondsHelper) {
  EXPECT_EQ(seconds(1.0), 1000000);
  EXPECT_EQ(seconds(0.5), 500000);
  EXPECT_EQ(kUsPerSec, 1000000);
  EXPECT_EQ(kUsPerMs, 1000);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run_until(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(100, [&] { order.push_back(2); });
  sim.schedule_at(100, [&] { order.push_back(3); });
  sim.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator sim;
  TimeUs seen = -1;
  sim.schedule_at(5000, [&] { seen = sim.now(); });
  sim.run_until(10000);
  EXPECT_EQ(seen, 5000);
  EXPECT_EQ(sim.now(), 10000);  // clock advances to the horizon
}

TEST(Simulator, RunUntilDoesNotRunLaterEvents) {
  Simulator sim;
  bool late_fired = false;
  sim.schedule_at(2000, [&] { late_fired = true; });
  sim.run_until(1000);
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(2000);  // boundary inclusive
  EXPECT_TRUE(late_fired);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  TimeUs fired_at = 0;
  sim.schedule_at(100, [&] {
    sim.schedule_in(50, [&] { fired_at = sim.now(); });
  });
  sim.run_until(1000);
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, PastScheduleClampsToNow) {
  Simulator sim;
  sim.run_until(500);
  TimeUs fired_at = -1;
  sim.schedule_at(100, [&] { fired_at = sim.now(); });
  sim.run_until(600);
  EXPECT_EQ(fired_at, 500);
}

TEST(Simulator, NegativeDelayClamps) {
  Simulator sim;
  TimeUs fired_at = -1;
  sim.schedule_in(-100, [&] { fired_at = sim.now(); });
  sim.run_until(10);
  EXPECT_EQ(fired_at, 0);
}

TEST(Simulator, HandlersCanChainEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) sim.schedule_in(10, chain);
  };
  sim.schedule_at(0, chain);
  sim.run_until(1000);
  EXPECT_EQ(count, 10);
}

TEST(Simulator, StepRunsExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] { ++fired; });
  sim.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ExecutedEventCount) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run_until(10);
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulator, EveryFiresPeriodically) {
  Simulator sim;
  std::vector<std::int64_t> indices;
  std::vector<TimeUs> times;
  sim.every(100, 50, [&](std::int64_t i) {
    indices.push_back(i);
    times.push_back(sim.now());
  });
  sim.run_until(300);
  ASSERT_EQ(indices.size(), 5u);  // 100,150,200,250,300
  EXPECT_EQ(indices, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(times[0], 100);
  EXPECT_EQ(times[4], 300);
}

TEST(Simulator, RunUntilReturnsEventCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i * 10, [] {});
  EXPECT_EQ(sim.run_until(30), 4u);  // t=0,10,20,30
  EXPECT_EQ(sim.run_until(100), 3u);
}

// ---------------------------------------------------------------------------
// Sharded event loop
// ---------------------------------------------------------------------------

TEST(SimulatorShards, DefaultIsSingleShard) {
  Simulator sim;
  EXPECT_EQ(sim.num_shards(), 1u);
}

TEST(SimulatorShards, BindShardRoutesOutOfEventSchedules) {
  Simulator sim;
  sim.configure_shards(3);
  {
    const auto binding = sim.bind_shard(2);
    sim.schedule_at(10, [] {});
    sim.schedule_at(20, [] {});
  }
  sim.schedule_at(30, [] {});  // binding restored -> shard 0
  EXPECT_EQ(sim.shard(0).pending_events(), 1u);
  EXPECT_EQ(sim.shard(1).pending_events(), 0u);
  EXPECT_EQ(sim.shard(2).pending_events(), 2u);
  EXPECT_EQ(sim.pending_events(), 3u);
}

TEST(SimulatorShards, BindingsNest) {
  Simulator sim;
  sim.configure_shards(2);
  const auto outer = sim.bind_shard(1);
  {
    const auto inner = sim.bind_shard(0);
    sim.schedule_at(1, [] {});
  }
  sim.schedule_at(2, [] {});  // back to the outer binding
  EXPECT_EQ(sim.shard(0).pending_events(), 1u);
  EXPECT_EQ(sim.shard(1).pending_events(), 1u);
}

TEST(SimulatorShards, FollowUpsStayInTheExecutingShard) {
  // An event's own schedules must land in its shard even with no
  // binding active — this is what keeps a domain's event chain inside
  // its queue across ticks.
  Simulator sim;
  sim.configure_shards(2);
  {
    const auto binding = sim.bind_shard(1);
    sim.schedule_at(10, [&] { sim.schedule_in(5000, [] {}); });
  }
  sim.run_until(1000);
  EXPECT_EQ(sim.shard(0).pending_events(), 0u);
  EXPECT_EQ(sim.shard(1).pending_events(), 1u);
}

TEST(SimulatorShards, RunUntilIsABarrierForEveryShard) {
  // Empty shards advance too: the barrier leaves every clock on t_end,
  // so a shard with no events (an idle domain) can never stall or skew
  // the others.
  Simulator sim;
  sim.configure_shards(3);
  {
    const auto binding = sim.bind_shard(1);
    sim.schedule_at(400, [] {});
  }
  EXPECT_EQ(sim.run_until(1000), 1u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(sim.shard(s).now(), 1000) << s;
  }
  EXPECT_EQ(sim.now(), 1000);
}

TEST(SimulatorShards, NowInsideAnEventReadsTheShardClock) {
  Simulator sim;
  sim.configure_shards(2);
  TimeUs seen0 = -1, seen1 = -1;
  {
    const auto binding = sim.bind_shard(0);
    sim.schedule_at(100, [&] { seen0 = sim.now(); });
  }
  {
    const auto binding = sim.bind_shard(1);
    sim.schedule_at(700, [&] { seen1 = sim.now(); });
  }
  sim.run_until(1000);
  EXPECT_EQ(seen0, 100);
  EXPECT_EQ(seen1, 700);
}

TEST(SimulatorShards, StepPicksTheGloballyEarliestEvent) {
  Simulator sim;
  sim.configure_shards(2);
  std::vector<int> order;
  {
    const auto binding = sim.bind_shard(1);
    sim.schedule_at(10, [&] { order.push_back(1); });
  }
  {
    const auto binding = sim.bind_shard(0);
    sim.schedule_at(20, [&] { order.push_back(2); });
  }
  EXPECT_TRUE(sim.step());
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorShards, StepKeepsNowMonotonicAcrossShards) {
  // A bare step() advances only the chosen shard's clock; now() must
  // still report the latest clock so a following run_for never rewinds
  // time past an already-executed event.
  Simulator sim;
  sim.configure_shards(2);
  bool follow_up_ran = false;
  {
    const auto binding = sim.bind_shard(1);
    sim.schedule_at(700, [&] {
      sim.schedule_in(50, [&] { follow_up_ran = true; });
    });
  }
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(sim.now(), 700);  // the latest shard clock, not shard 0's 0
  sim.run_for(100);           // t_end = 800: the 750 follow-up must run
  EXPECT_TRUE(follow_up_ran);
  EXPECT_EQ(sim.shard(0).now(), 800);
  EXPECT_EQ(sim.shard(1).now(), 800);
}

TEST(SimulatorShards, ExecutingQueueOfAnotherSimulatorIsNotAdopted) {
  // An event running in simulator A's shard that calls into simulator B
  // must schedule into B's queues (and read B's clock), not push into
  // the queue currently executing on this thread.
  Simulator a;
  Simulator b;
  TimeUs b_now_seen = -1;
  a.schedule_at(250, [&] {
    b.schedule_at(40, [] {});
    b_now_seen = b.now();
  });
  a.run_until(1000);
  EXPECT_EQ(b_now_seen, 0);  // B's clock, not A's 250
  EXPECT_EQ(a.pending_events(), 0u);
  EXPECT_EQ(b.pending_events(), 1u);
  EXPECT_EQ(b.run_until(100), 1u);
}

TEST(SimulatorShards, ParallelAdvanceMatchesSerialAdvance) {
  // Same event plan, advanced with and without a worker pool: per-shard
  // execution traces must be identical (each shard is single-threaded
  // either way; the pool only overlaps different shards in time).
  auto run = [](util::ThreadPool* pool) {
    Simulator sim;
    sim.configure_shards(4);
    std::vector<std::vector<TimeUs>> trace(4);
    for (std::size_t s = 0; s < 4; ++s) {
      // A periodic chain per shard with a shard-specific phase; every()
      // reschedules from inside event execution, so the whole chain
      // lives in shard s.
      const auto binding = sim.bind_shard(s);
      sim.every(10 + static_cast<TimeUs>(s), 40,
                [&trace, &sim, s](std::int64_t) {
                  trace[s].push_back(sim.now());
                });
    }
    std::size_t total = 0;
    for (int tick = 0; tick < 5; ++tick) {
      total += sim.run_for(1000, pool);
    }
    return std::make_pair(total, trace);
  };
  util::ThreadPool pool(4);
  const auto serial = run(nullptr);
  const auto pooled = run(&pool);
  EXPECT_EQ(serial.first, pooled.first);
  EXPECT_EQ(serial.second, pooled.second);
  EXPECT_GT(serial.first, 0u);
}

}  // namespace
}  // namespace capes::sim
