// Deterministic fault injection: the strict spec grammar (parse /
// reject / canonical echo), fate purity (order- and thread-count-
// independence of the crash/straggler/partition hashes), the injector's
// exact restart scheduling against the pure window predicates, and the
// zero-rate plan being a true no-op object.

#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace capes::sim {
namespace {

// ---- spec grammar ---------------------------------------------------------

TEST(FaultSpec, OffParsesToDisabledPlan) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(parse_fault_spec("off", &plan, &error)) << error;
  EXPECT_FALSE(plan.enabled());
  EXPECT_EQ(fault_spec_string(plan), "off");
}

TEST(FaultSpec, FullSpecRoundTrips) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(parse_fault_spec(
      "faults:ost_crash=0.001,restart_ticks=12,straggler=0.01,"
      "slow_factor=8.5,straggler_ticks=30,partition=0.002,"
      "partition_ticks=7,seed=99",
      &plan, &error))
      << error;
  EXPECT_TRUE(plan.enabled());
  EXPECT_DOUBLE_EQ(plan.ost_crash, 0.001);
  EXPECT_EQ(plan.restart_ticks, 12);
  EXPECT_DOUBLE_EQ(plan.straggler, 0.01);
  EXPECT_DOUBLE_EQ(plan.slow_factor, 8.5);
  EXPECT_EQ(plan.straggler_ticks, 30);
  EXPECT_DOUBLE_EQ(plan.partition, 0.002);
  EXPECT_EQ(plan.partition_ticks, 7);
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_TRUE(plan.seed_explicit);

  // The canonical echo re-parses to an identical plan (%.17g keeps every
  // double value-lossless).
  FaultPlan reparsed;
  ASSERT_TRUE(parse_fault_spec(fault_spec_string(plan), &reparsed, &error))
      << error;
  EXPECT_DOUBLE_EQ(reparsed.ost_crash, plan.ost_crash);
  EXPECT_EQ(reparsed.restart_ticks, plan.restart_ticks);
  EXPECT_DOUBLE_EQ(reparsed.straggler, plan.straggler);
  EXPECT_DOUBLE_EQ(reparsed.slow_factor, plan.slow_factor);
  EXPECT_EQ(reparsed.straggler_ticks, plan.straggler_ticks);
  EXPECT_DOUBLE_EQ(reparsed.partition, plan.partition);
  EXPECT_EQ(reparsed.partition_ticks, plan.partition_ticks);
  EXPECT_EQ(reparsed.seed, plan.seed);
  EXPECT_TRUE(reparsed.seed_explicit);
}

TEST(FaultSpec, BareFaultsSchemeIsValidButDisabled) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(parse_fault_spec("faults", &plan, &error)) << error;
  EXPECT_FALSE(plan.enabled());
}

TEST(FaultSpec, RejectsMalformedAndOutOfRange) {
  FaultPlan plan;
  std::string error;
  // Unknown scheme.
  EXPECT_FALSE(parse_fault_spec("gremlins", &plan, &error));
  EXPECT_NE(error.find("gremlins"), std::string::npos);
  // Unknown option key.
  EXPECT_FALSE(parse_fault_spec("faults:gremlins=0.1", &plan, &error));
  EXPECT_NE(error.find("gremlins"), std::string::npos);
  // Rates must sit in [0, 1).
  EXPECT_FALSE(parse_fault_spec("faults:ost_crash=1.0", &plan, &error));
  EXPECT_NE(error.find("[0, 1)"), std::string::npos);
  EXPECT_FALSE(parse_fault_spec("faults:straggler=-0.1", &plan, &error));
  EXPECT_FALSE(parse_fault_spec("faults:partition=2", &plan, &error));
  // Windows must be >= 1, the multiplier >= 1.
  EXPECT_FALSE(parse_fault_spec("faults:restart_ticks=0", &plan, &error));
  EXPECT_FALSE(parse_fault_spec("faults:straggler_ticks=-3", &plan, &error));
  EXPECT_FALSE(parse_fault_spec("faults:slow_factor=0.5", &plan, &error));
  // Malformed tokens.
  EXPECT_FALSE(parse_fault_spec("faults:ost_crash", &plan, &error));
  EXPECT_FALSE(parse_fault_spec("faults:=0.1", &plan, &error));
  EXPECT_FALSE(parse_fault_spec("faults:ost_crash=abc", &plan, &error));
  EXPECT_FALSE(parse_fault_spec("faults:seed=xyz", &plan, &error));
  EXPECT_FALSE(parse_fault_spec("", &plan, &error));
}

TEST(FaultSpec, RejectionLeavesOutputUntouched) {
  FaultPlan plan;
  plan.ost_crash = 0.25;
  std::string error;
  EXPECT_FALSE(parse_fault_spec("faults:ost_crash=7", &plan, &error));
  EXPECT_DOUBLE_EQ(plan.ost_crash, 0.25);  // failed parse never writes
}

TEST(FaultSpec, SeedOnlyEchoesExplicitly) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(parse_fault_spec("faults:ost_crash=0.01", &plan, &error));
  EXPECT_EQ(fault_spec_string(plan).find("seed="), std::string::npos);
  ASSERT_TRUE(parse_fault_spec("faults:ost_crash=0.01,seed=5", &plan, &error));
  EXPECT_NE(fault_spec_string(plan).find("seed=5"), std::string::npos);
}

// ---- pure fates -----------------------------------------------------------

FaultPlan busy_plan() {
  FaultPlan plan;
  plan.ost_crash = 0.05;
  plan.restart_ticks = 7;
  plan.straggler = 0.08;
  plan.slow_factor = 4.0;
  plan.straggler_ticks = 11;
  plan.partition = 0.04;
  plan.partition_ticks = 5;
  plan.seed = 42;
  return plan;
}

TEST(FaultFates, AreOrderIndependent) {
  const FaultPlan plan = busy_plan();
  // Forward sweep...
  std::vector<bool> forward;
  for (std::int64_t t = 0; t < 200; ++t) {
    for (std::uint32_t n = 0; n < 8; ++n) {
      forward.push_back(crash_starts(plan, fault_node_key(0, n), t));
      forward.push_back(straggle_starts(plan, fault_node_key(0, n), t));
      forward.push_back(partition_starts(plan, n, t));
    }
  }
  // ...must equal the reverse sweep bit for bit: no hidden stream state.
  std::vector<bool> reverse;
  for (std::int64_t t = 199; t >= 0; --t) {
    for (std::uint32_t n = 8; n-- > 0;) {
      std::vector<bool> triple = {
          crash_starts(plan, fault_node_key(0, n), t),
          straggle_starts(plan, fault_node_key(0, n), t),
          partition_starts(plan, n, t)};
      reverse.insert(reverse.end(), triple.rbegin(), triple.rend());
    }
  }
  std::vector<bool> reversed(reverse.rbegin(), reverse.rend());
  EXPECT_EQ(forward, reversed);
}

TEST(FaultFates, AreThreadCountIndependent) {
  const FaultPlan plan = busy_plan();
  const std::int64_t ticks = 400;
  const std::uint32_t nodes = 8;
  auto serial = [&] {
    std::vector<char> fates(static_cast<std::size_t>(ticks) * nodes * 3);
    for (std::int64_t t = 0; t < ticks; ++t) {
      for (std::uint32_t n = 0; n < nodes; ++n) {
        const std::size_t base =
            (static_cast<std::size_t>(t) * nodes + n) * 3;
        fates[base + 0] = crash_starts(plan, fault_node_key(0, n), t);
        fates[base + 1] = ost_down(plan, fault_node_key(0, n), t);
        fates[base + 2] = domain_partitioned(plan, n, t);
      }
    }
    return fates;
  }();
  // The same grid evaluated by 4 threads, each striding the tick range,
  // must agree entry for entry (and TSan sees no races).
  std::vector<char> parallel(serial.size());
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      for (std::int64_t t = w; t < ticks; t += 4) {
        for (std::uint32_t n = 0; n < nodes; ++n) {
          const std::size_t base =
              (static_cast<std::size_t>(t) * nodes + n) * 3;
          parallel[base + 0] = crash_starts(plan, fault_node_key(0, n), t);
          parallel[base + 1] = ost_down(plan, fault_node_key(0, n), t);
          parallel[base + 2] = domain_partitioned(plan, n, t);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(serial, parallel);
}

TEST(FaultFates, KindsAndNodesDrawIndependentStreams) {
  const FaultPlan plan = busy_plan();
  // Distinct kinds and distinct nodes must not mirror each other: over a
  // long window the fates cannot be identical across any pairing.
  int crash_vs_straggle = 0, node0_vs_node1 = 0;
  for (std::int64_t t = 0; t < 5000; ++t) {
    crash_vs_straggle += crash_starts(plan, fault_node_key(0, 0), t) !=
                         straggle_starts(plan, fault_node_key(0, 0), t);
    node0_vs_node1 += crash_starts(plan, fault_node_key(0, 0), t) !=
                      crash_starts(plan, fault_node_key(0, 1), t);
  }
  EXPECT_GT(crash_vs_straggle, 0);
  EXPECT_GT(node0_vs_node1, 0);
}

TEST(FaultFates, WindowIsUnionOfStarts) {
  const FaultPlan plan = busy_plan();
  const std::uint64_t key = fault_node_key(0, 3);
  // ost_down(t) must equal "some crash start within the last
  // restart_ticks ticks" — the documented until-extension semantics.
  for (std::int64_t t = 0; t < 1000; ++t) {
    bool expected = false;
    for (std::int64_t s = t - plan.restart_ticks + 1; s <= t; ++s) {
      expected = expected || crash_starts(plan, key, s);
    }
    EXPECT_EQ(ost_down(plan, key, t), expected) << "tick " << t;
  }
}

TEST(FaultFates, NegativeTicksAndZeroRatesNeverFire) {
  const FaultPlan plan = busy_plan();
  EXPECT_FALSE(crash_starts(plan, fault_node_key(0, 0), -1));
  EXPECT_FALSE(ost_down(plan, fault_node_key(0, 0), -1));
  FaultPlan zero;
  zero.seed = 42;
  for (std::int64_t t = 0; t < 500; ++t) {
    EXPECT_FALSE(crash_starts(zero, fault_node_key(0, 0), t));
    EXPECT_FALSE(straggle_starts(zero, fault_node_key(0, 0), t));
    EXPECT_FALSE(partition_starts(zero, 0, t));
  }
}

// ---- injector -------------------------------------------------------------

/// Records every actuator call and mirrors the applied state.
class RecordingTarget : public FaultTarget {
 public:
  explicit RecordingTarget(std::size_t nodes)
      : down_(nodes, false), slow_(nodes, 1.0) {}

  std::size_t num_fault_nodes() const override { return down_.size(); }
  void apply_node_down(std::size_t node, bool down) override {
    down_[node] = down;
    ++transitions_;
  }
  void apply_node_slow(std::size_t node, double factor) override {
    slow_[node] = factor;
    ++transitions_;
  }

  std::vector<bool> down_;
  std::vector<double> slow_;
  int transitions_ = 0;
};

/// Drive `injector` through tick `t` the way CapesSystem does: on_tick at
/// the barrier, then the scheduled transition events execute in the next
/// simulator advance.
void step(Simulator& sim, FaultInjector& injector, std::int64_t t) {
  injector.on_tick(t);
  sim.run_until(sim.now() + 1);
}

TEST(FaultInjector, AppliedStateTracksPureFatesExactly) {
  const FaultPlan plan = busy_plan();
  Simulator sim;
  RecordingTarget target(4);
  FaultInjector injector(sim, plan, 0, &target);
  int crashes_seen = 0;
  for (std::int64_t t = 0; t < 300; ++t) {
    step(sim, injector, t);
    for (std::uint32_t n = 0; n < 4; ++n) {
      const std::uint64_t key = fault_node_key(0, n);
      // After the transition events run, the target's state must equal
      // the pure window predicate at this tick — which pins restart
      // scheduling to the exact tick: the restore lands on the first
      // tick ost_down turns false, restart_ticks after the last start.
      EXPECT_EQ(target.down_[n], ost_down(plan, key, t))
          << "node " << n << " tick " << t;
      const double expected_slow =
          disk_straggling(plan, key, t) ? plan.slow_factor : 1.0;
      EXPECT_EQ(target.slow_[n], expected_slow)
          << "node " << n << " tick " << t;
      crashes_seen += crash_starts(plan, key, t);
    }
    EXPECT_EQ(injector.partitioned(t), domain_partitioned(plan, 0, t));
  }
  ASSERT_GT(crashes_seen, 0) << "rate too low to exercise the window";
  EXPECT_EQ(injector.counters().ost_crashes,
            static_cast<std::uint64_t>(crashes_seen));
}

TEST(FaultInjector, RestartLandsOnExactTick) {
  // A plan whose hash fires at least one crash in 200 ticks on node 0;
  // find an isolated start (no second start inside its window) and pin
  // the restore to start + restart_ticks exactly.
  const FaultPlan plan = busy_plan();
  const std::uint64_t key = fault_node_key(0, 0);
  std::int64_t start = -1;
  for (std::int64_t t = 0; t < 2000; ++t) {
    if (!crash_starts(plan, key, t)) continue;
    bool isolated = true;
    for (std::int64_t s = t + 1; s < t + plan.restart_ticks; ++s) {
      isolated = isolated && !crash_starts(plan, key, s);
    }
    if (isolated) {
      start = t;
      break;
    }
  }
  ASSERT_GE(start, 0) << "no isolated crash in 2000 ticks";

  Simulator sim;
  RecordingTarget target(1);
  FaultInjector injector(sim, plan, 0, &target);
  for (std::int64_t t = 0; t <= start + plan.restart_ticks; ++t) {
    step(sim, injector, t);
    if (t >= start && t < start + plan.restart_ticks) {
      EXPECT_TRUE(target.down_[0]) << "tick " << t;
    }
  }
  // The restore landed on exactly start + restart_ticks, not one late.
  EXPECT_FALSE(target.down_[0]);
}

TEST(FaultInjector, CountersAndEventsMatchStarts) {
  const FaultPlan plan = busy_plan();
  Simulator sim;
  RecordingTarget target(4);
  FaultInjector injector(sim, plan, 2, &target);
  FaultCounters expected;
  for (std::int64_t t = 0; t < 200; ++t) {
    step(sim, injector, t);
    bool any_active = injector.partitioned(t);
    std::size_t starts = 0;
    for (std::uint32_t n = 0; n < 4; ++n) {
      const std::uint64_t key = fault_node_key(2, n);
      expected.ost_crashes += crash_starts(plan, key, t);
      expected.stragglers += straggle_starts(plan, key, t);
      starts += crash_starts(plan, key, t) + straggle_starts(plan, key, t);
      any_active = any_active || ost_down(plan, key, t) ||
                   disk_straggling(plan, key, t);
    }
    expected.partitions += partition_starts(plan, 2, t);
    starts += partition_starts(plan, 2, t);
    expected.faults_injected += starts;
    expected.ticks_degraded += any_active;
    // last_events carries every start plus the kDegraded marker.
    EXPECT_EQ(injector.last_events().size(), starts + (any_active ? 1 : 0));
  }
  EXPECT_EQ(injector.counters().faults_injected, expected.faults_injected);
  EXPECT_EQ(injector.counters().ost_crashes, expected.ost_crashes);
  EXPECT_EQ(injector.counters().stragglers, expected.stragglers);
  EXPECT_EQ(injector.counters().partitions, expected.partitions);
  EXPECT_EQ(injector.counters().ticks_degraded, expected.ticks_degraded);
}

TEST(FaultInjector, ZeroRatePlanIsANoOp) {
  FaultPlan zero;
  zero.seed = 7;
  EXPECT_FALSE(zero.enabled());
  Simulator sim;
  RecordingTarget target(4);
  FaultInjector injector(sim, zero, 0, &target);
  for (std::int64_t t = 0; t < 100; ++t) step(sim, injector, t);
  EXPECT_EQ(target.transitions_, 0);
  EXPECT_EQ(injector.counters().faults_injected, 0u);
  EXPECT_EQ(injector.counters().ticks_degraded, 0u);
  EXPECT_TRUE(injector.last_events().empty());
}

TEST(FaultInjector, NullTargetAppliesOnlyPartitions) {
  const FaultPlan plan = busy_plan();
  Simulator sim;
  FaultInjector injector(sim, plan, 0, nullptr);
  for (std::int64_t t = 0; t < 100; ++t) step(sim, injector, t);
  EXPECT_EQ(injector.counters().ost_crashes, 0u);
  EXPECT_EQ(injector.counters().stragglers, 0u);
  EXPECT_GT(injector.counters().partitions, 0u);
}

}  // namespace
}  // namespace capes::sim
