// ShardPlanner: deterministic domain-to-shard placement. Pins the LPT
// packing (weight = events + 1, heaviest first onto the least-loaded
// shard), the tie-breaking on lower domain / shard index (so equal
// weights reproduce the static round-robin exactly), and the fallbacks
// that keep placement a pure function of the simulated history.

#include "sim/shard_planner.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace capes::sim {
namespace {

TEST(ShardPlanner, StaticPlanIsRoundRobin) {
  const ShardPlanner planner(ShardPlanKind::kStatic, 6, 2);
  const ShardPlan plan = planner.static_plan();
  EXPECT_EQ(plan.shard_of_domain,
            (std::vector<std::size_t>{0, 1, 0, 1, 0, 1}));
  EXPECT_EQ(plan.shard_load, (std::vector<std::uint64_t>{3, 3}));
  EXPECT_DOUBLE_EQ(plan.max_over_mean(), 1.0);
}

TEST(ShardPlanner, StaticPlannerIgnoresRates) {
  const ShardPlanner planner(ShardPlanKind::kStatic, 4, 2);
  const ShardPlan plan = planner.plan({1000, 1, 1, 1});
  EXPECT_EQ(plan.shard_of_domain, planner.static_plan().shard_of_domain);
}

TEST(ShardPlanner, LptPacksByRate) {
  // One hot domain: LPT must give it a shard of its own and pile the
  // light domains onto the other, instead of round-robin's 1.5x skew.
  const ShardPlanner planner(ShardPlanKind::kRate, 4, 2);
  const ShardPlan plan = planner.plan({900, 100, 100, 100});
  EXPECT_EQ(plan.shard_of_domain[0], 0u);
  EXPECT_EQ(plan.shard_of_domain[1], 1u);
  EXPECT_EQ(plan.shard_of_domain[2], 1u);
  EXPECT_EQ(plan.shard_of_domain[3], 1u);
  EXPECT_EQ(plan.shard_load, (std::vector<std::uint64_t>{901, 303}));
  EXPECT_GT(plan.max_over_mean(), 1.0);
}

TEST(ShardPlanner, EqualRatesReproduceRoundRobin) {
  // Ties break on the lower domain index (sort order) and the lower
  // shard index (target choice), which is exactly d % num_shards.
  const ShardPlanner planner(ShardPlanKind::kRate, 8, 3);
  const ShardPlan plan = planner.plan({50, 50, 50, 50, 50, 50, 50, 50});
  EXPECT_EQ(plan.shard_of_domain, planner.static_plan().shard_of_domain);
}

TEST(ShardPlanner, IdleDomainsSpreadInsteadOfPiling) {
  // Zero-event domains weigh (0 + 1), not 0: they must still spread
  // across shards rather than all landing on whichever shard looked
  // lightest after the busy domains were placed.
  const ShardPlanner planner(ShardPlanKind::kRate, 6, 2);
  const ShardPlan plan = planner.plan({10, 10, 0, 0, 0, 0});
  std::vector<std::size_t> domains_per_shard(2, 0);
  for (const std::size_t shard : plan.shard_of_domain) {
    ++domains_per_shard[shard];
  }
  EXPECT_EQ(domains_per_shard[0], 3u);
  EXPECT_EQ(domains_per_shard[1], 3u);
}

TEST(ShardPlanner, AllZeroRatesFallBackToStatic) {
  const ShardPlanner planner(ShardPlanKind::kRate, 5, 2);
  const ShardPlan plan = planner.plan({0, 0, 0, 0, 0});
  EXPECT_EQ(plan.shard_of_domain, planner.static_plan().shard_of_domain);
}

TEST(ShardPlanner, OneShardTakesEverything) {
  const ShardPlanner planner(ShardPlanKind::kRate, 4, 1);
  const ShardPlan plan = planner.plan({7, 2, 9, 1});
  EXPECT_EQ(plan.shard_of_domain, (std::vector<std::size_t>{0, 0, 0, 0}));
  EXPECT_DOUBLE_EQ(plan.max_over_mean(), 1.0);
}

TEST(ShardPlanner, MoreShardsThanDomainsLeavesShardsEmpty) {
  const ShardPlanner planner(ShardPlanKind::kRate, 2, 4);
  const ShardPlan plan = planner.plan({5, 500});
  // Heaviest first: domain 1 -> shard 0, domain 0 -> shard 1.
  EXPECT_EQ(plan.shard_of_domain, (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(plan.shard_load[2], 0u);
  EXPECT_EQ(plan.shard_load[3], 0u);
}

TEST(ShardPlanner, ShortRateVectorTreatsMissingDomainsAsIdle) {
  // A caller may hand fewer counts than domains (e.g. a domain added
  // late); the missing tail weighs like an idle domain.
  const ShardPlanner planner(ShardPlanKind::kRate, 4, 2);
  const ShardPlan plan = planner.plan({100, 100});
  std::vector<std::size_t> domains_per_shard(2, 0);
  for (const std::size_t shard : plan.shard_of_domain) {
    ++domains_per_shard[shard];
  }
  EXPECT_EQ(domains_per_shard[0], 2u);
  EXPECT_EQ(domains_per_shard[1], 2u);
}

TEST(ShardPlanner, ParseSpec) {
  ShardPlanKind kind = ShardPlanKind::kRate;
  std::string error;
  EXPECT_TRUE(parse_shard_plan_spec("static", &kind, &error));
  EXPECT_EQ(kind, ShardPlanKind::kStatic);
  EXPECT_TRUE(parse_shard_plan_spec("rate", &kind, &error));
  EXPECT_EQ(kind, ShardPlanKind::kRate);
  EXPECT_FALSE(parse_shard_plan_spec("roulette", &kind, &error));
  EXPECT_NE(error.find("roulette"), std::string::npos);
  EXPECT_FALSE(parse_shard_plan_spec("", &kind, &error));
  EXPECT_STREQ(shard_plan_name(ShardPlanKind::kStatic), "static");
  EXPECT_STREQ(shard_plan_name(ShardPlanKind::kRate), "rate");
}

TEST(ShardPlanner, MaxOverMean) {
  ShardPlan plan;
  EXPECT_DOUBLE_EQ(plan.max_over_mean(), 1.0);  // empty
  plan.shard_load = {0, 0};
  EXPECT_DOUBLE_EQ(plan.max_over_mean(), 1.0);  // zero load
  plan.shard_load = {30, 10};
  EXPECT_DOUBLE_EQ(plan.max_over_mean(), 1.5);
}

}  // namespace
}  // namespace capes::sim
