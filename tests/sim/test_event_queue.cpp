// sim::EventQueue: the single-shard event loop extracted from the
// monolithic Simulator. Ordering, clock, periodic, and the thread-local
// current() pointer the sharded Simulator routes scheduling through.

#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace capes::sim {
namespace {

TEST(EventQueue, TimeStartsAtZero) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0);
  EXPECT_EQ(q.pending_events(), 0u);
  EXPECT_EQ(q.next_event_time(), EventQueue::kNoEvent);
}

TEST(EventQueue, EventsFireInTimeOrderWithInsertionTieBreak) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(300, [&] { order.push_back(3); });
  q.schedule_at(100, [&] { order.push_back(1); });
  q.schedule_at(100, [&] { order.push_back(2); });
  EXPECT_EQ(q.next_event_time(), 100);
  q.run_until(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.executed_events(), 3u);
}

TEST(EventQueue, RunUntilLandsOnTargetTimeEvenWhenDrained) {
  // The barrier contract: every shard's clock reaches t_end, with or
  // without events, so all shards agree on "now" at each sampling tick.
  EventQueue q;
  q.schedule_at(50, [] {});
  q.run_until(1000);
  EXPECT_EQ(q.now(), 1000);
  EventQueue empty;
  EXPECT_EQ(empty.run_until(777), 0u);
  EXPECT_EQ(empty.now(), 777);
}

TEST(EventQueue, PastSchedulesClampToNow) {
  EventQueue q;
  q.run_until(500);
  bool ran = false;
  q.schedule_at(100, [&] { ran = true; });  // in the past -> fires "now"
  q.run_until(500);
  EXPECT_TRUE(ran);
  q.schedule_in(-25, [] {});  // negative delay -> fires "now"
  EXPECT_EQ(q.next_event_time(), 500);
}

TEST(EventQueue, StepRunsOneEvent) {
  EventQueue q;
  int runs = 0;
  q.schedule_at(10, [&] { ++runs; });
  q.schedule_at(20, [&] { ++runs; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(q.now(), 10);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
  EXPECT_EQ(runs, 2);
}

TEST(EventQueue, EveryFiresPeriodicallyWithTickIndex) {
  EventQueue q;
  std::vector<std::int64_t> ticks;
  q.every(100, 50, [&](std::int64_t i) { ticks.push_back(i); });
  q.run_until(250);
  EXPECT_EQ(ticks, (std::vector<std::int64_t>{0, 1, 2, 3}));
}

TEST(EventQueue, CurrentIsSetWhileExecuting) {
  // Simulator::schedule_* routes through current(), so an event's
  // follow-ups always land in the queue that ran it.
  EventQueue q;
  EXPECT_EQ(EventQueue::current(), nullptr);
  EventQueue* seen = nullptr;
  q.schedule_at(10, [&] { seen = EventQueue::current(); });
  q.run_until(100);
  EXPECT_EQ(seen, &q);
  EXPECT_EQ(EventQueue::current(), nullptr);
}

TEST(EventQueue, FollowUpsScheduledByEventsStayInQueue) {
  EventQueue q;
  int runs = 0;
  q.schedule_at(10, [&] {
    ++runs;
    EventQueue::current()->schedule_in(5, [&] { ++runs; });
  });
  q.run_until(100);
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(q.executed_events(), 2u);
}

}  // namespace
}  // namespace capes::sim
