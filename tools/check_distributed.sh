#!/usr/bin/env bash
# End-to-end smoke of the distributed control plane, run from CTest and
# every CI leg (including TSan):
#
#   check_distributed.sh <capes_daemond> <capes_agentd> <capes_run> <workdir>
#
# 1. Equivalence: launch capes_daemond on an ephemeral loopback port,
#    drive a short train/baseline/tuned workflow through capes_agentd,
#    and require the training fingerprint AND the per-phase CSVs to be
#    byte-identical to an in-process `capes_run --transport=sync` run at
#    the same seed (the tcp: wire must be a transparent brain extension).
# 2. Robustness: kill -9 the agent mid-run and require the daemon to
#    exit on its own (link death must never hang it).
set -euo pipefail

# Absolute paths: the script cds into the scratch dir before launching.
DAEMOND="$(readlink -f "$1")"
AGENTD="$(readlink -f "$2")"
CAPES_RUN="$(readlink -f "$3")"
WORK="$4"

RUN_ARGS="--workload=random:0.2 --train-ticks=40 --eval-ticks=30 --seed=1"

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

wait_for_port() {
  # The daemon prints "listening on HOST:PORT" (flushed) before accept.
  local log="$1" i
  for i in $(seq 1 100); do
    if grep -q "listening on" "$log" 2>/dev/null; then
      sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' "$log" | head -n1
      return 0
    fi
    sleep 0.1
  done
  echo "daemon never printed its port" >&2
  cat "$log" >&2
  return 1
}

echo "== equivalence: loopback tcp vs in-process sync =="
"$DAEMOND" --port=0 > daemon.log 2>&1 &
DAEMON_PID=$!
PORT=$(wait_for_port daemon.log)

# shellcheck disable=SC2086
"$AGENTD" --daemon=127.0.0.1:"$PORT" $RUN_ARGS --csv=tcp | tee agent.log
wait "$DAEMON_PID"
cat daemon.log

# shellcheck disable=SC2086
"$CAPES_RUN" --transport=sync $RUN_ARGS --csv=sync | tee sync.log

TCP_FP=$(grep "training fingerprint" agent.log)
SYNC_FP=$(grep "training fingerprint" sync.log)
DAEMON_FP=$(grep "training fingerprint" daemon.log)
echo "agent : $TCP_FP"
echo "daemon: $DAEMON_FP"
echo "sync  : $SYNC_FP"
if [ "$TCP_FP" != "$SYNC_FP" ] || [ "$DAEMON_FP" != "$SYNC_FP" ]; then
  echo "FAIL: tcp loopback fingerprint differs from in-process sync" >&2
  exit 1
fi
for phase in training baseline tuned; do
  cmp "tcp_${phase}.csv" "sync_${phase}.csv" || {
    echo "FAIL: ${phase} CSV differs between tcp and sync" >&2
    exit 1
  }
done
if ! grep -q "control network (tcp): 0 messages dropped" agent.log; then
  echo "FAIL: loopback run reported message loss" >&2
  exit 1
fi

echo "== robustness: kill -9 the agent mid-run, daemon must exit =="
"$DAEMOND" --port=0 --idle-timeout-ms=5000 > daemon_kill.log 2>&1 &
DAEMON_PID=$!
PORT=$(wait_for_port daemon_kill.log)
"$AGENTD" --daemon=127.0.0.1:"$PORT" --workload=random:0.2 \
  --train-ticks=100000 --eval-ticks=10 --seed=1 > agent_kill.log 2>&1 &
AGENT_PID=$!
# Let the session get well into the training phase before the kill.
sleep 2
kill -9 "$AGENT_PID" 2>/dev/null || true
wait "$AGENT_PID" 2>/dev/null || true

# The daemon must notice the dead link (EOF) and exit by itself.
for i in $(seq 1 150); do
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then break; fi
  sleep 0.1
done
if kill -0 "$DAEMON_PID" 2>/dev/null; then
  echo "FAIL: daemon still running 15s after its agent was killed" >&2
  kill -9 "$DAEMON_PID"
  exit 1
fi
wait "$DAEMON_PID" 2>/dev/null || true
if ! grep -q "link death" daemon_kill.log; then
  echo "FAIL: daemon did not report link death" >&2
  cat daemon_kill.log >&2
  exit 1
fi
cat daemon_kill.log

echo "distributed smoke OK"
