#!/usr/bin/env sh
# Runs the sharded-event-loop bench and emits BENCH_simshards.json
# (training ticks/sec at 1/2/4/8 domains: serial single-queue simulator
# vs per-domain sharded queues on the worker pool).
#
#   tools/run_simshards_bench.sh [build_dir] [output.json]
#
# Tunables via environment:
#   CAPES_BENCH_TICKS    training ticks per measured point (default 150)
#   CAPES_BENCH_THREADS  worker threads (default: bench picks
#                        min(8, hardware threads))
set -eu

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_simshards.json}"
BENCH="$BUILD_DIR/bench/ext_sim_shards"

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built (cmake --build $BUILD_DIR --target ext_sim_shards)" >&2
  exit 1
fi

set -- --ticks="${CAPES_BENCH_TICKS:-150}" --json="$OUT"
if [ -n "${CAPES_BENCH_THREADS:-}" ]; then
  set -- "$@" --threads="$CAPES_BENCH_THREADS"
fi
"$BENCH" "$@"
