#!/usr/bin/env sh
# Runs the fault-injection bench and emits BENCH_faults.json (training
# ticks/sec at 1/4/8 domains: injector off vs a busy fault regime —
# OST crashes, straggler disks and partition windows all firing).
#
#   tools/run_faults_bench.sh [build_dir] [output.json]
#
# Tunables via environment:
#   CAPES_BENCH_TICKS    training ticks per measured point (default 150)
#   CAPES_BENCH_THREADS  worker threads (default: bench picks
#                        min(8, hardware threads))
set -eu

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_faults.json}"
BENCH="$BUILD_DIR/bench/ext_faults"

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built (cmake --build $BUILD_DIR --target ext_faults)" >&2
  exit 1
fi

set -- --ticks="${CAPES_BENCH_TICKS:-150}" --json="$OUT"
if [ -n "${CAPES_BENCH_THREADS:-}" ]; then
  set -- "$@" --threads="$CAPES_BENCH_THREADS"
fi
"$BENCH" "$@"
