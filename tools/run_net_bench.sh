#!/usr/bin/env sh
# Runs the distributed control-plane bench and emits BENCH_net.json
# (training ticks/sec + bytes/tick: in-process sync vs loopback tcp to
# an in-process BrainService, so the delta is pure wire cost).
#
#   tools/run_net_bench.sh [build_dir] [output.json]
#
# Tunables via environment:
#   CAPES_BENCH_TICKS    training ticks per measured point (default 400)
set -eu

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_net.json}"
BENCH="$BUILD_DIR/bench/ext_net"

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built (cmake --build $BUILD_DIR --target ext_net)" >&2
  exit 1
fi

"$BENCH" --ticks="${CAPES_BENCH_TICKS:-400}" --json="$OUT"
