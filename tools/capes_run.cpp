// capes_run — command-line driver for the simulated evaluation workflow.
//
// The C++ analogue of the prototype's service scripts (§A.3): pick a
// workload from the registry, optionally load a conf file, run the §A.4
// evaluation workflow (train -> baseline -> tuned) through the
// core::Experiment facade, and optionally dump per-tick CSVs and a model
// checkpoint. `--list-workloads` prints every registered workload with
// its spec syntax.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "bus/transport.hpp"
#include "core/experiment.hpp"
#include "sim/fault.hpp"
#include "sim/shard_planner.hpp"
#include "util/parse.hpp"
#include "workload/registry.hpp"

using namespace capes;

namespace {

struct Args {
  /// Repeatable --workload=: one control domain per spec, in flag order.
  /// Empty means the default single "random:0.1" domain.
  std::vector<std::string> workloads;
  /// --clusters=N replicates a single workload spec into N domains.
  std::int64_t clusters = 1;
  /// --threads=N: worker threads for the per-tick hot path (0 = off).
  /// Unset means "the preset/conf decides", so an explicit --threads=0
  /// can force the single-threaded path over a conf file's setting.
  std::optional<std::int64_t> threads;
  /// --transport=sync|sim[:latency_ticks=..,jitter=..,drop=..,seed=..].
  /// Unset means "the preset/conf decides" (sync by default).
  std::optional<std::string> transport;
  /// --learner=sync|async: where DRL training steps run. Unset means
  /// "the preset/conf decides" (sync by default).
  std::optional<std::string> learner;
  /// --sim-shards=auto|N: per-domain simulator event queues (0 = auto =
  /// one per control domain). Unset means "the preset/conf decides"
  /// (the serial single-queue loop by default).
  std::optional<std::size_t> sim_shards;
  /// --shard-plan=static|rate: how control domains are packed onto the
  /// simulator shards. Unset means "the preset/conf decides" (static
  /// round-robin by default).
  std::optional<std::string> shard_plan;
  /// --faults=off|faults[:ost_crash=..,...]: deterministic fault
  /// injection. Unset means "the preset/conf decides" (off by default).
  std::optional<std::string> faults;
  std::string conf;
  std::string csv_prefix;
  std::string model_out;
  std::string model_in;
  /// --capture=FILE: flight-record every daemon-boundary message for
  /// offline replay with capes_replay ("" = off).
  std::string capture;
  std::int64_t train_ticks = -1;
  std::int64_t eval_ticks = -1;
  /// Unset means "the preset/conf decides"; an explicit --seed wins over
  /// a conf file's seed keys (ExperimentBuilder::seed semantics).
  std::optional<std::uint64_t> seed;
  bool monitor_servers = false;
  bool tune_write_cache = false;
  bool list_workloads = false;
};

using util::parse_flag;

/// Strict numeric flag: "--train-ticks=abc" is an error, not 0.
template <typename T, bool (*Parse)(std::string_view, T*)>
bool parse_numeric_flag(const char* flag_name, const std::string& value,
                        T* out) {
  if (Parse(value, out)) return true;
  std::fprintf(stderr, "invalid value for %s: '%s'\n", flag_name,
               value.c_str());
  return false;
}

/// Tick-count flag: strict and non-negative (-1 stays an internal
/// "use the preset default" sentinel, never a user input).
bool parse_ticks_flag(const char* flag_name, const std::string& value,
                      std::int64_t* out) {
  if (!parse_numeric_flag<std::int64_t, util::parse_i64>(flag_name, value, out))
    return false;
  if (*out < 0) {
    std::fprintf(stderr, "%s must be >= 0, got %s\n", flag_name, value.c_str());
    return false;
  }
  return true;
}

enum class ParseOutcome { kOk, kError, kHelp };

ParseOutcome parse_args(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (parse_flag(argv[i], "--workload", &value)) {
      args->workloads.push_back(value);
    } else if (parse_flag(argv[i], "--clusters", &value)) {
      if (!parse_numeric_flag<std::int64_t, util::parse_i64>("--clusters",
                                                             value,
                                                             &args->clusters))
        return ParseOutcome::kError;
      if (args->clusters < 1) {
        std::fprintf(stderr, "--clusters must be >= 1, got %s\n",
                     value.c_str());
        return ParseOutcome::kError;
      }
    } else if (parse_flag(argv[i], "--threads", &value)) {
      std::int64_t threads = 0;
      if (!parse_numeric_flag<std::int64_t, util::parse_i64>("--threads",
                                                             value, &threads))
        return ParseOutcome::kError;
      if (threads < 0) {
        std::fprintf(stderr, "--threads must be >= 0, got %s\n",
                     value.c_str());
        return ParseOutcome::kError;
      }
      args->threads = threads;
    } else if (parse_flag(argv[i], "--transport", &value)) {
      // Validate eagerly so an unknown scheme or malformed option list is
      // a usage error (exit 2) before any experiment work starts.
      bus::TransportOptions parsed;
      std::string transport_error;
      if (!bus::parse_transport_spec(value, &parsed, &transport_error)) {
        std::fprintf(stderr, "invalid value for --transport: %s\n",
                     transport_error.c_str());
        return ParseOutcome::kError;
      }
      args->transport = value;
    } else if (parse_flag(argv[i], "--learner", &value)) {
      if (value != "sync" && value != "async") {
        std::fprintf(stderr,
                     "invalid value for --learner: '%s' (expected sync or "
                     "async)\n",
                     value.c_str());
        return ParseOutcome::kError;
      }
      args->learner = value;
    } else if (parse_flag(argv[i], "--sim-shards", &value)) {
      if (value == "auto") {
        args->sim_shards = 0;  // ExperimentBuilder: one shard per domain
      } else {
        std::uint64_t shards = 0;
        if (!parse_numeric_flag<std::uint64_t, util::parse_u64>(
                "--sim-shards", value, &shards))
          return ParseOutcome::kError;
        if (shards < 1) {
          std::fprintf(stderr, "--sim-shards must be >= 1 or 'auto', got %s\n",
                       value.c_str());
          return ParseOutcome::kError;
        }
        args->sim_shards = static_cast<std::size_t>(shards);
      }
    } else if (parse_flag(argv[i], "--shard-plan", &value)) {
      sim::ShardPlanKind kind;
      std::string plan_error;
      if (!sim::parse_shard_plan_spec(value, &kind, &plan_error)) {
        std::fprintf(stderr, "invalid value for --shard-plan: %s\n",
                     plan_error.c_str());
        return ParseOutcome::kError;
      }
      args->shard_plan = value;
    } else if (parse_flag(argv[i], "--faults", &value)) {
      // Validate eagerly, like --transport: an unknown fault kind or an
      // out-of-range rate is a usage error (exit 2) before any
      // experiment work starts.
      sim::FaultPlan parsed;
      std::string fault_error;
      if (!sim::parse_fault_spec(value, &parsed, &fault_error)) {
        std::fprintf(stderr, "invalid value for --faults: %s\n",
                     fault_error.c_str());
        return ParseOutcome::kError;
      }
      args->faults = value;
    } else if (parse_flag(argv[i], "--conf", &value)) {
      args->conf = value;
    } else if (parse_flag(argv[i], "--csv", &value)) {
      args->csv_prefix = value;
    } else if (parse_flag(argv[i], "--capture", &value)) {
      if (value.empty()) {
        std::fprintf(stderr, "--capture needs a file path\n");
        return ParseOutcome::kError;
      }
      args->capture = value;
    } else if (parse_flag(argv[i], "--model", &value)) {
      args->model_out = value;
    } else if (parse_flag(argv[i], "--load-model", &value)) {
      args->model_in = value;
    } else if (parse_flag(argv[i], "--train-ticks", &value)) {
      if (!parse_ticks_flag("--train-ticks", value, &args->train_ticks))
        return ParseOutcome::kError;
    } else if (parse_flag(argv[i], "--eval-ticks", &value)) {
      if (!parse_ticks_flag("--eval-ticks", value, &args->eval_ticks))
        return ParseOutcome::kError;
    } else if (parse_flag(argv[i], "--seed", &value)) {
      std::uint64_t seed = 0;
      if (!parse_numeric_flag<std::uint64_t, util::parse_u64>("--seed", value,
                                                              &seed))
        return ParseOutcome::kError;
      args->seed = seed;
    } else if (std::strcmp(argv[i], "--monitor-servers") == 0) {
      args->monitor_servers = true;
    } else if (std::strcmp(argv[i], "--tune-write-cache") == 0) {
      args->tune_write_cache = true;
    } else if (std::strcmp(argv[i], "--list-workloads") == 0) {
      args->list_workloads = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return ParseOutcome::kHelp;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return ParseOutcome::kError;
    }
  }
  return ParseOutcome::kOk;
}

std::string registered_names_joined() {
  std::string joined;
  for (const auto& name : workload::Registry::instance().names()) {
    if (!joined.empty()) joined += '|';
    joined += name;
  }
  return joined;
}

void print_usage() {
  std::printf(
      "usage: capes_run [--workload=%s (with optional :spec args)]...\n"
      "                 [--clusters=N] [--threads=N] [--sim-shards=auto|N]\n"
      "                 [--shard-plan=static|rate]\n"
      "                 [--faults=off|faults[:ost_crash=P,restart_ticks=N,"
      "straggler=P,\n"
      "                           slow_factor=X,straggler_ticks=N,partition=P,"
      "\n"
      "                           partition_ticks=N,seed=N]]\n"
      "                 [--transport=sync|sim[:latency_ticks=N,jitter=X,"
      "drop=P,seed=N]\n"
      "                              |tcp:host=H,port=N[,connect_timeout_ms=N,"
      "io_threads=N]]\n"
      "                 [--learner=sync|async]\n"
      "                 [--conf=FILE] [--train-ticks=N] [--eval-ticks=N]\n"
      "                 [--csv=PREFIX] [--model=FILE] [--load-model=FILE]\n"
      "                 [--capture=FILE]\n"
      "                 [--seed=N] [--monitor-servers] [--tune-write-cache]\n"
      "                 [--list-workloads] [--help]\n"
      "\n"
      "Repeat --workload to tune several clusters (one control domain each)\n"
      "with one shared DRL brain, or use --clusters=N to replicate a single\n"
      "spec across N identically configured clusters. --threads=N fans the\n"
      "per-tick sampling/training hot path out over N worker threads.\n"
      "--sim-shards shards the simulator event loop itself: auto gives\n"
      "every control domain its own event queue, N caps the queue count\n"
      "(1 = the serial loop), and the queues advance concurrently on the\n"
      "--threads pool between sampling ticks — same results, faster on\n"
      "multi-core hosts. --shard-plan picks the domain placement:\n"
      "static round-robins domains over the queues (the default); rate\n"
      "re-packs them at every phase boundary by last-phase observed event\n"
      "rate (greedy LPT), which evens out skewed workloads. Placement\n"
      "derives only from deterministic event counts, so results stay\n"
      "bit-identical across plans, shard counts and thread counts\n"
      "(conf: capes.sim.shard_plan).\n"
      "--transport=sync delivers every agent<->daemon message within its\n"
      "tick (the default). --transport=sim puts the hops on a simulated\n"
      "control network with seeded latency/jitter/drop, e.g.\n"
      "  --transport=sim:latency_ticks=2,jitter=2,drop=0.05,seed=7\n"
      "(drop in [0,1); latency_ticks/jitter >= 0; seed pins the network\n"
      "realization independently of --seed). --transport=tcp connects the\n"
      "agents to a separate capes_daemond process hosting the DRL brain\n"
      "(capes_agentd wraps this spec behind a --daemon=HOST:PORT flag).\n"
      "--faults injects deterministic failures into the simulated target\n"
      "systems: ost_crash crashes an OST per tick with probability P (it\n"
      "restarts after restart_ticks; queued and in-flight I/O is rejected\n"
      "while down), straggler slows a disk by slow_factor for\n"
      "straggler_ticks, and partition silently drops a control domain's\n"
      "agent traffic for partition_ticks (surfacing as dropped messages),\n"
      "e.g.\n"
      "  --faults=faults:ost_crash=0.001,straggler=0.01,slow_factor=8\n"
      "(rates in [0,1); windows >= 1; seed pins the fault realization\n"
      "independently of --seed). Every fate is a pure hash of (seed, kind,\n"
      "node, tick), so a seeded faulted run is bit-identical at any\n"
      "--sim-shards/--threads count and under --shard-plan=rate; faults\n"
      "compose with --transport=sim drops. Rejected with --transport=tcp\n"
      "(conf: capes.sim.faults.*).\n"
      "--learner=async moves DRL training to a dedicated learner thread\n"
      "that overlaps the next tick's simulation; actions and weights stay\n"
      "bit-identical to --learner=sync (the default) at the same seed.\n"
      "--capture=FILE flight-records every daemon-boundary message (PI\n"
      "status, actions, broadcasts) plus rewards and phase markers; replay\n"
      "the capture offline with capes_replay (conf: capes.capture.path).\n"
      "See docs/CONFIG.md for the full flag and conf-key reference.\n",
      registered_names_joined().c_str());
}

void print_workloads() {
  const auto& registry = workload::Registry::instance();
  std::printf("registered workloads:\n");
  for (const auto& name : registry.names()) {
    std::printf("  %-12s %s\n", name.c_str(),
                registry.spec_help(name).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  switch (parse_args(argc, argv, &args)) {
    case ParseOutcome::kOk:
      break;
    case ParseOutcome::kHelp:
      print_usage();
      return 0;
    case ParseOutcome::kError:
      print_usage();
      return 2;
  }
  if (args.list_workloads) {
    print_workloads();
    return 0;
  }

  if (args.clusters > 1 && args.workloads.size() > 1) {
    std::fprintf(stderr,
                 "--clusters replicates a single --workload spec; pass either "
                 "--clusters=N or repeated --workload flags, not both\n");
    return 2;
  }
  std::vector<std::string> specs =
      args.workloads.empty() ? std::vector<std::string>{"random:0.1"}
                             : args.workloads;
  if (args.clusters > 1) {
    // Copy before assign: passing specs[0] itself would hand assign() a
    // reference into the container it is rewriting.
    const std::string replicated = specs[0];
    specs.assign(static_cast<std::size_t>(args.clusters), replicated);
  }

  auto builder = core::Experiment::builder()
                     .workload(specs[0])
                     .monitor_servers(args.monitor_servers)
                     .tune_write_cache(args.tune_write_cache)
                     .train_ticks(args.train_ticks)
                     .eval_ticks(args.eval_ticks);
  for (std::size_t i = 1; i < specs.size(); ++i) builder.add_cluster(specs[i]);
  if (args.threads) {
    builder.worker_threads(static_cast<std::size_t>(*args.threads));
  }
  if (args.sim_shards) builder.sim_shards(*args.sim_shards);
  if (args.shard_plan) builder.shard_plan(*args.shard_plan);
  if (args.faults) builder.faults(*args.faults);
  if (args.transport) builder.transport(*args.transport);
  if (args.learner) builder.learner(*args.learner);
  if (args.seed) builder.seed(*args.seed);
  if (!args.capture.empty()) builder.capture(args.capture);
  if (!args.conf.empty()) builder.config_file(args.conf);
  if (!args.csv_prefix.empty()) {
    // Like core::csv_phase_sink, but confirming each file on stdout — and
    // only when it was actually written.
    builder.on_phase_end([&args](const core::PhaseReport& report) {
      const std::string path =
          args.csv_prefix + "_" + report.label + ".csv";
      std::ofstream out(path);
      out << core::run_result_csv(report.result);
      if (out) {
        std::printf("  wrote %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "  cannot write %s\n", path.c_str());
      }
    });
  }

  std::string error;
  auto experiment = builder.build(&error);
  if (!experiment) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (!args.model_in.empty()) {
    if (!experiment->load_model(args.model_in)) {
      std::fprintf(stderr, "cannot load model %s\n", args.model_in.c_str());
      return 1;
    }
    std::printf("loaded model from %s\n", args.model_in.c_str());
  }

  const std::int64_t train = experiment->default_train_ticks();
  std::printf("workload %s, %lld training ticks, %lld eval ticks, seed %llu\n",
              experiment->workload_name().c_str(),
              static_cast<long long>(train),
              static_cast<long long>(experiment->default_eval_ticks()),
              static_cast<unsigned long long>(
                  experiment->preset().capes.engine.dqn.seed));
  if (experiment->num_domains() > 1 && !experiment->system().remote_brain()) {
    std::printf("%zu control domains, observation size %zu, %zu actions\n",
                experiment->num_domains(),
                experiment->system().replay().observation_size(),
                experiment->system().action_space().num_actions());
  }
  if (experiment->simulator().num_shards() > 1) {
    std::printf("simulator event loop sharded into %zu queues across %zu "
                "domains\n",
                experiment->simulator().num_shards(),
                experiment->num_domains());
    const auto& plan = experiment->system().shard_plan();
    std::printf("shard plan: %s -- %zu domains -> %zu queues, "
                "max/mean load %.2f\n",
                sim::shard_plan_name(experiment->system().shard_plan_kind()),
                experiment->num_domains(),
                experiment->simulator().num_shards(), plan.max_over_mean());
  }

  if (train > 0) {
    std::printf("training...\n");
    const auto training = experiment->run_training();
    std::printf("  %zu train steps, session throughput %s MB/s\n",
                training.result.train_steps,
                training.throughput.to_string().c_str());
  }

  const auto baseline = experiment->run_baseline();
  std::printf("baseline: %s MB/s, latency %s ms\n",
              baseline.throughput.to_string().c_str(),
              baseline.latency.to_string().c_str());

  const auto tuned = experiment->run_tuned();
  const auto& report = experiment->report();
  std::printf("tuned:    %s MB/s, latency %s ms  (%+.1f%%)\n",
              tuned.throughput.to_string().c_str(),
              tuned.latency.to_string().c_str(),
              report.tuned_gain_percent());

  std::printf("final parameters:");
  for (std::size_t i = 0; i < report.parameter_names.size(); ++i) {
    std::printf(" %s=%.0f", report.parameter_names[i].c_str(),
                report.final_parameters[i]);
  }
  std::printf("\n");

  if (experiment->preset().capes.transport.kind == bus::TransportKind::kSim) {
    std::uint64_t dropped = 0, late = 0;
    for (const auto& phase : report.phases) {
      dropped += phase.result.messages_dropped;
      late += phase.result.messages_late;
    }
    std::printf("control network (sim): %llu messages dropped, %llu late\n",
                static_cast<unsigned long long>(dropped),
                static_cast<unsigned long long>(late));
  }

  if (experiment->simulator().num_shards() > 1) {
    // Event-count based (deterministic), so CI can compare this line
    // across runs; the strip lists only drop it when comparing static
    // against rate placements.
    std::printf("shard imbalance (events, max/mean):");
    for (const auto& phase : report.phases) {
      std::printf(" %s %.2f", phase.label.c_str(),
                  phase.result.shard_imbalance());
    }
    std::printf(" -- %zu replans\n", experiment->system().shard_replans());
  }

  // Gated on the plan, not on whether anything fired: faults-off output
  // stays byte-identical to pre-fault builds, and a quiet faulted run
  // still reports its zeros.
  if (experiment->preset().capes.faults.enabled()) {
    std::uint64_t injected = 0, crashes = 0, stragglers = 0, partitions = 0,
                  degraded = 0;
    for (const auto& phase : report.phases) {
      injected += phase.result.faults_injected;
      crashes += phase.result.ost_crashes;
      stragglers += phase.result.stragglers;
      partitions += phase.result.partitions;
      degraded += phase.result.ticks_degraded;
    }
    std::printf("faults: %llu injected (%llu ost crashes, %llu stragglers, "
                "%llu partitions), %llu degraded domain-ticks\n",
                static_cast<unsigned long long>(injected),
                static_cast<unsigned long long>(crashes),
                static_cast<unsigned long long>(stragglers),
                static_cast<unsigned long long>(partitions),
                static_cast<unsigned long long>(degraded));
    std::printf("regime shifts:");
    for (const auto& phase : report.phases) {
      std::printf(" %s %zu", phase.label.c_str(), phase.result.regime_shifts);
    }
    std::printf("\n");
  }

  if (experiment->preset().capes.transport.kind == bus::TransportKind::kTcp) {
    std::uint64_t dropped = 0;
    for (const auto& phase : report.phases) {
      dropped += phase.result.messages_dropped;
    }
    std::printf("control network (tcp): %llu messages dropped\n",
                static_cast<unsigned long long>(dropped));
  }

  // Always printed: the determinism handle the capture/replay round trip
  // (and the CI cmp smokes) compare across runs. Remote-safe: under a
  // tcp: transport these come from the daemon's phase-end ack.
  std::printf("training fingerprint %08x (%zu train steps)\n",
              experiment->system().training_fingerprint(),
              experiment->system().total_train_steps());

  if (auto* writer = experiment->system().capture_writer()) {
    // Close first so the byte count reflects the fully drained sink (and
    // the header's drop count is patched before anyone reads the file).
    writer->close();
    std::printf("capture: %llu records (%llu dropped, %llu bytes) -> %s\n",
                static_cast<unsigned long long>(writer->records_logged()),
                static_cast<unsigned long long>(writer->records_dropped()),
                static_cast<unsigned long long>(writer->bytes_written()),
                experiment->preset().capes.capture_path.c_str());
  }

  if (!args.model_out.empty() && experiment->save_model(args.model_out)) {
    std::printf("model saved to %s\n", args.model_out.c_str());
  }
  return 0;
}
