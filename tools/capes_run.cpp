// capes_run — command-line driver for the simulated evaluation workflow.
//
// The C++ analogue of the prototype's service scripts (§A.3): pick a
// workload, optionally load a conf file, run the §A.4 evaluation workflow
// (train -> baseline -> tuned), and optionally dump per-tick CSVs and a
// model checkpoint.
//
// Usage:
//   capes_run [--workload=random:0.1|fileserver|seqwrite]
//             [--conf=FILE] [--train-ticks=N] [--eval-ticks=N]
//             [--csv=PREFIX] [--model=FILE] [--load-model=FILE]
//             [--seed=N] [--monitor-servers] [--tune-write-cache]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/capes_system.hpp"
#include "core/config_io.hpp"
#include "core/presets.hpp"
#include "lustre/cluster.hpp"
#include "workload/file_server.hpp"
#include "workload/random_rw.hpp"
#include "workload/seq_write.hpp"

using namespace capes;

namespace {

struct Args {
  std::string workload = "random:0.1";
  std::string conf;
  std::string csv_prefix;
  std::string model_out;
  std::string model_in;
  std::int64_t train_ticks = -1;
  std::int64_t eval_ticks = -1;
  std::uint64_t seed = 42;
  bool monitor_servers = false;
  bool tune_write_cache = false;
};

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

bool parse_args(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (parse_flag(argv[i], "--workload", &value)) {
      args->workload = value;
    } else if (parse_flag(argv[i], "--conf", &value)) {
      args->conf = value;
    } else if (parse_flag(argv[i], "--csv", &value)) {
      args->csv_prefix = value;
    } else if (parse_flag(argv[i], "--model", &value)) {
      args->model_out = value;
    } else if (parse_flag(argv[i], "--load-model", &value)) {
      args->model_in = value;
    } else if (parse_flag(argv[i], "--train-ticks", &value)) {
      args->train_ticks = std::atoll(value.c_str());
    } else if (parse_flag(argv[i], "--eval-ticks", &value)) {
      args->eval_ticks = std::atoll(value.c_str());
    } else if (parse_flag(argv[i], "--seed", &value)) {
      args->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--monitor-servers") == 0) {
      args->monitor_servers = true;
    } else if (std::strcmp(argv[i], "--tune-write-cache") == 0) {
      args->tune_write_cache = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

std::unique_ptr<workload::Workload> make_workload(const std::string& spec,
                                                  lustre::Cluster& cluster) {
  if (spec.rfind("random:", 0) == 0) {
    workload::RandomRwOptions o;
    o.read_fraction = std::atof(spec.c_str() + 7);
    return std::make_unique<workload::RandomRw>(cluster, o);
  }
  if (spec == "fileserver") {
    return std::make_unique<workload::FileServer>(cluster,
                                                  workload::FileServerOptions{});
  }
  if (spec == "seqwrite") {
    return std::make_unique<workload::SeqWrite>(cluster,
                                                workload::SeqWriteOptions{});
  }
  return nullptr;
}

void maybe_write_csv(const std::string& prefix, const std::string& phase,
                     const core::RunResult& result) {
  if (prefix.empty()) return;
  const std::string path = prefix + "_" + phase + ".csv";
  std::ofstream out(path);
  out << result.to_csv();
  std::printf("  wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) {
    std::printf(
        "usage: capes_run [--workload=random:<read_frac>|fileserver|seqwrite]\n"
        "                 [--conf=FILE] [--train-ticks=N] [--eval-ticks=N]\n"
        "                 [--csv=PREFIX] [--model=FILE] [--load-model=FILE]\n"
        "                 [--seed=N] [--monitor-servers] [--tune-write-cache]\n");
    return 2;
  }

  core::EvaluationPreset preset = core::fast_preset(args.seed);
  if (!args.conf.empty()) {
    util::Config cfg;
    if (!cfg.parse_file(args.conf)) {
      std::fprintf(stderr, "cannot parse %s\n", args.conf.c_str());
      return 1;
    }
    preset.capes = core::capes_options_from_config(cfg, preset.capes);
    preset.cluster = core::cluster_options_from_config(cfg, preset.cluster);
  }
  preset.cluster.monitor_servers = args.monitor_servers;
  preset.cluster.tune_write_cache = args.tune_write_cache;
  const std::int64_t train =
      args.train_ticks >= 0 ? args.train_ticks : preset.train_ticks_long;
  const std::int64_t eval =
      args.eval_ticks >= 0 ? args.eval_ticks : preset.eval_ticks;

  sim::Simulator sim;
  lustre::Cluster cluster(sim, preset.cluster);
  auto workload = make_workload(args.workload, cluster);
  if (!workload) {
    std::fprintf(stderr, "unknown workload: %s\n", args.workload.c_str());
    return 1;
  }
  workload->start();
  core::CapesSystem capes(sim, cluster, preset.capes);
  if (!args.model_in.empty()) {
    if (!capes.load_model(args.model_in)) {
      std::fprintf(stderr, "cannot load model %s\n", args.model_in.c_str());
      return 1;
    }
    std::printf("loaded model from %s\n", args.model_in.c_str());
  }
  sim.run_until(sim::seconds(5));

  std::printf("workload %s, %lld training ticks, %lld eval ticks, seed %llu\n",
              workload->name().c_str(), static_cast<long long>(train),
              static_cast<long long>(eval),
              static_cast<unsigned long long>(args.seed));

  if (train > 0) {
    std::printf("training...\n");
    const auto tr = capes.run_training(train);
    std::printf("  %zu train steps, session throughput %s MB/s\n",
                tr.train_steps, tr.analyze().to_string().c_str());
    maybe_write_csv(args.csv_prefix, "training", tr);
  }

  const auto baseline = capes.run_baseline(eval);
  const auto base = baseline.analyze();
  std::printf("baseline: %s MB/s, latency %s ms\n", base.to_string().c_str(),
              baseline.analyze_latency().to_string().c_str());
  maybe_write_csv(args.csv_prefix, "baseline", baseline);

  const auto tuned_run = capes.run_tuned(eval);
  const auto tuned = tuned_run.analyze();
  std::printf("tuned:    %s MB/s, latency %s ms  (%+.1f%%)\n",
              tuned.to_string().c_str(),
              tuned_run.analyze_latency().to_string().c_str(),
              base.mean > 0 ? (tuned.mean / base.mean - 1.0) * 100.0 : 0.0);
  maybe_write_csv(args.csv_prefix, "tuned", tuned_run);

  std::printf("final parameters:");
  const auto params = capes.action_space().parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::printf(" %s=%.0f", params[i].name.c_str(), capes.parameter_values()[i]);
  }
  std::printf("\n");

  if (!args.model_out.empty() && capes.save_model(args.model_out)) {
    std::printf("model saved to %s\n", args.model_out.c_str());
  }
  return 0;
}
