#!/usr/bin/env sh
# Runs the control-network transport bench and emits BENCH_transport.json
# (training ticks/sec: sync vs sim at drop=0, so the delta is pure bus
# overhead).
#
#   tools/run_transport_bench.sh [build_dir] [output.json]
#
# Tunables via environment:
#   CAPES_BENCH_TICKS    training ticks per measured point (default 400)
#   CAPES_BENCH_THREADS  worker threads (default 0 = single-threaded)
set -eu

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_transport.json}"
BENCH="$BUILD_DIR/bench/ext_transport"

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built (cmake --build $BUILD_DIR --target ext_transport)" >&2
  exit 1
fi

set -- --ticks="${CAPES_BENCH_TICKS:-400}" --json="$OUT"
if [ -n "${CAPES_BENCH_THREADS:-}" ]; then
  set -- "$@" --threads="$CAPES_BENCH_THREADS"
fi
"$BENCH" "$@"
