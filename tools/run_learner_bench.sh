#!/usr/bin/env sh
# Runs the async-learner bench and emits BENCH_learner.json (training
# ticks/sec with the DQN trained inline vs on the dedicated learner
# thread, plus steady-state heap allocations per tick on the audited
# allocation-free path).
#
#   tools/run_learner_bench.sh [build_dir] [output.json]
#
# Tunables via environment:
#   CAPES_BENCH_TICKS  training ticks per measured point (default 200)
set -eu

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_learner.json}"
BENCH="$BUILD_DIR/bench/ext_learner"

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built (cmake --build $BUILD_DIR --target ext_learner)" >&2
  exit 1
fi

"$BENCH" --ticks="${CAPES_BENCH_TICKS:-200}" --json="$OUT"
