// capes_replay — feed a flight-recorder capture (capes_run --capture=)
// back into a fresh InterfaceDaemon + DrlEngine, offline.
//
// Three uses: train-from-trace (the replayed PI stream drives real
// train_ticks, at --speed=realtime|fast|max), deterministic incident
// repro (a seeded capture replayed at max speed reproduces the live
// run's training fingerprint bit-for-bit), and regression diffs
// (--diff=CONF replays the same traffic under a second configuration and
// compares the per-phase outcomes side by side).
//
// Torn/corrupt capture tails are tolerated: replay truncates at the last
// valid record and reports the loss; only a capture with zero valid
// records exits nonzero.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/config_io.hpp"
#include "core/trace_replay.hpp"
#include "util/config.hpp"
#include "util/parse.hpp"

using namespace capes;

namespace {

struct Args {
  std::string capture;  ///< required
  core::ReplaySpeed speed = core::ReplaySpeed::kMax;
  std::string conf;  ///< optional overlay for the (first) replay
  std::string diff;  ///< second conf: replay twice and compare phases
};

enum class ParseOutcome { kOk, kError, kHelp };

ParseOutcome parse_args(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (util::parse_flag(argv[i], "--capture", &value)) {
      args->capture = value;
    } else if (util::parse_flag(argv[i], "--speed", &value)) {
      if (!core::parse_replay_speed(value, &args->speed)) {
        std::fprintf(stderr,
                     "invalid value for --speed: '%s' (expected realtime, "
                     "fast or max)\n",
                     value.c_str());
        return ParseOutcome::kError;
      }
    } else if (util::parse_flag(argv[i], "--conf", &value)) {
      args->conf = value;
    } else if (util::parse_flag(argv[i], "--diff", &value)) {
      args->diff = value;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return ParseOutcome::kHelp;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return ParseOutcome::kError;
    }
  }
  if (args->capture.empty()) {
    std::fprintf(stderr, "--capture=FILE is required\n");
    return ParseOutcome::kError;
  }
  return ParseOutcome::kOk;
}

void print_usage() {
  std::printf(
      "usage: capes_replay --capture=FILE [--speed=realtime|fast|max]\n"
      "                    [--conf=FILE] [--diff=FILE] [--help]\n"
      "\n"
      "Replays a capes_run --capture= flight recording into a fresh\n"
      "Interface Daemon + DRL Engine: the traced PI bytes hit fresh\n"
      "decoders in delivery order and training-phase action records drive\n"
      "real train steps (train-from-trace). At --speed=max (the default) a\n"
      "seeded capture reproduces the live run's training fingerprint\n"
      "bit-for-bit; realtime paces one sampling tick per trace tick and\n"
      "fast runs 20x that.\n"
      "--conf=FILE overlays engine/replay hyperparameters (core conf keys)\n"
      "onto the traced configuration — same traffic, different tuner.\n"
      "--diff=FILE replays twice, the second time under FILE's keys, and\n"
      "prints the per-phase outcomes side by side.\n"
      "Torn/corrupt tails truncate at the last valid record (reported);\n"
      "only a capture with zero valid records fails.\n");
}

bool load_overlay(const std::string& path, core::CapesOptions* out) {
  util::Config cfg;
  if (!cfg.parse_file(path)) {
    std::fprintf(stderr, "cannot parse config file '%s'\n", path.c_str());
    return false;
  }
  *out = core::capes_options_from_config(cfg);
  return true;
}

const char* speed_name(core::ReplaySpeed speed) {
  switch (speed) {
    case core::ReplaySpeed::kRealtime: return "realtime";
    case core::ReplaySpeed::kFast: return "fast";
    case core::ReplaySpeed::kMax: break;
  }
  return "max";
}

void print_report(const core::TraceReplayReport& report) {
  for (const auto& phase : report.phases) {
    std::printf(
        "  %-8s ticks %lld..%lld (%lld): reward %.4f, %.1f MB/s, %.2f ms, "
        "%zu train steps, %llu actions (%llu diverged)\n",
        core::phase_name(phase.phase), static_cast<long long>(phase.begin_tick),
        static_cast<long long>(phase.end_tick),
        static_cast<long long>(phase.ticks), phase.mean_reward,
        phase.mean_throughput_mbs, phase.mean_latency_ms, phase.train_steps,
        static_cast<unsigned long long>(phase.action_records),
        static_cast<unsigned long long>(phase.action_mismatches));
  }
  std::printf(
      "  %llu status / %llu reward / %llu action / %llu broadcast records, "
      "%llu workload changes, %llu decode errors\n",
      static_cast<unsigned long long>(report.status_records),
      static_cast<unsigned long long>(report.reward_records),
      static_cast<unsigned long long>(report.action_records),
      static_cast<unsigned long long>(report.broadcast_records),
      static_cast<unsigned long long>(report.workload_changes),
      static_cast<unsigned long long>(report.decode_errors));
  // Gated on traced fault records so faultless captures print exactly
  // what they always did. The format matches capes_run's fault lines, so
  // live-vs-replay parity is a plain grep + cmp between the two outputs.
  if (report.fault_records > 0) {
    std::uint64_t injected = 0, crashes = 0, stragglers = 0, partitions = 0,
                  degraded = 0;
    for (const auto& phase : report.phases) {
      injected += phase.faults_injected;
      crashes += phase.ost_crashes;
      stragglers += phase.stragglers;
      partitions += phase.partitions;
      degraded += phase.ticks_degraded;
    }
    std::printf("faults: %llu injected (%llu ost crashes, %llu stragglers, "
                "%llu partitions), %llu degraded domain-ticks\n",
                static_cast<unsigned long long>(injected),
                static_cast<unsigned long long>(crashes),
                static_cast<unsigned long long>(stragglers),
                static_cast<unsigned long long>(partitions),
                static_cast<unsigned long long>(degraded));
    std::printf("regime shifts:");
    for (const auto& phase : report.phases) {
      std::printf(" %s %zu", core::phase_name(phase.phase),
                  phase.regime_shifts);
    }
    std::printf("\n");
  }
}

/// One replay pass. Returns false only on open failure.
bool replay_once(const Args& args, const core::CapesOptions* overlay,
                 core::TraceReplayReport* out) {
  core::TraceReplayOptions opts;
  opts.speed = args.speed;
  opts.config_overlay = overlay;
  core::TraceReplayer replayer;
  std::string error;
  if (!replayer.open(args.capture, opts, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return false;
  }
  if (!replayer.fresh_weights_match() && overlay == nullptr) {
    std::printf(
        "warning: the live run started from restored weights; replayed "
        "fingerprints will not match it\n");
  }
  *out = replayer.run();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  switch (parse_args(argc, argv, &args)) {
    case ParseOutcome::kOk:
      break;
    case ParseOutcome::kHelp:
      print_usage();
      return 0;
    case ParseOutcome::kError:
      print_usage();
      return 2;
  }

  core::CapesOptions conf_overlay;
  const bool have_conf = !args.conf.empty();
  if (have_conf && !load_overlay(args.conf, &conf_overlay)) return 2;
  core::CapesOptions diff_overlay;
  const bool have_diff = !args.diff.empty();
  if (have_diff && !load_overlay(args.diff, &diff_overlay)) return 2;

  core::TraceReplayReport report;
  if (!replay_once(args, have_conf ? &conf_overlay : nullptr, &report)) {
    return 1;
  }

  std::printf("replayed %s at %s speed%s\n", args.capture.c_str(),
              speed_name(args.speed),
              have_conf ? (" with overlay " + args.conf).c_str() : "");
  if (report.read_stats.dropped_records > 0) {
    std::printf(
        "warning: lossy capture — the live run shed %llu record(s); "
        "differential PI decoding may have diverged\n",
        static_cast<unsigned long long>(report.read_stats.dropped_records));
  }
  if (report.tail_truncated) {
    std::printf(
        "warning: torn/corrupt tail — truncated at the last valid record, "
        "~%llu record(s) / %llu bytes discarded\n",
        static_cast<unsigned long long>(report.read_stats.truncated_records),
        static_cast<unsigned long long>(report.read_stats.truncated_bytes));
  }
  if (report.read_stats.valid_records == 0) {
    std::fprintf(stderr, "no valid records in %s\n", args.capture.c_str());
    return 1;
  }
  print_report(report);

  if (have_diff) {
    core::TraceReplayReport other;
    if (!replay_once(args, &diff_overlay, &other)) return 1;
    std::printf("diff against %s on identical traffic:\n", args.diff.c_str());
    print_report(other);
    const std::size_t phases =
        report.phases.size() < other.phases.size() ? report.phases.size()
                                                   : other.phases.size();
    for (std::size_t i = 0; i < phases; ++i) {
      const auto& a = report.phases[i];
      const auto& b = other.phases[i];
      std::printf(
          "  %-8s reward %.4f -> %.4f (%+.4f), diverging actions "
          "%llu -> %llu\n",
          core::phase_name(a.phase), a.mean_reward, b.mean_reward,
          b.mean_reward - a.mean_reward,
          static_cast<unsigned long long>(a.action_mismatches),
          static_cast<unsigned long long>(b.action_mismatches));
    }
    std::printf("diff fingerprints %08x vs %08x (%zu vs %zu train steps)\n",
                report.weights_fingerprint, other.weights_fingerprint,
                report.total_train_steps, other.total_train_steps);
  }

  // Same format as capes_run's closing line, so the round-trip check is a
  // plain grep + cmp between the two outputs.
  std::printf("training fingerprint %08x (%zu train steps)\n",
              report.weights_fingerprint, report.total_train_steps);
  return 0;
}
