// capes_agentd — the standalone agent-side process of the distributed
// control plane: hosts the simulated cluster plus its Monitoring and
// Control Agents, and connects out to a capes_daemond that hosts the
// Interface Daemon + DRL Engine (§3.3's deployment split).
//
// A thin wrapper over the same core::Experiment facade capes_run drives:
// the only mandatory flag is --daemon=HOST:PORT, which becomes the
// `tcp:` transport spec, flipping core::CapesSystem into remote-brain
// mode. Workload, tick counts, seeds and CSV output all behave exactly
// like capes_run, so a loopback pair is directly comparable to an
// in-process run — down to the training fingerprint.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "bus/transport.hpp"
#include "core/experiment.hpp"
#include "core/remote_brain.hpp"
#include "util/parse.hpp"
#include "workload/registry.hpp"

using namespace capes;

namespace {

struct Args {
  /// Required --daemon=HOST:PORT: where capes_daemond is listening.
  std::string daemon_host;
  std::int64_t daemon_port = 0;
  /// Connect-retry budget (the daemon may still be binding).
  std::int64_t connect_timeout_ms = 5000;
  std::vector<std::string> workloads;
  std::int64_t clusters = 1;
  std::optional<std::int64_t> threads;
  std::optional<std::size_t> sim_shards;
  std::string conf;
  std::string csv_prefix;
  std::string capture;
  std::int64_t train_ticks = -1;
  std::int64_t eval_ticks = -1;
  std::optional<std::uint64_t> seed;
};

using util::parse_flag;

enum class ParseOutcome { kOk, kError, kHelp };

ParseOutcome parse_args(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (parse_flag(argv[i], "--daemon", &value)) {
      const auto colon = value.rfind(':');
      std::int64_t port = 0;
      if (colon == std::string::npos || colon == 0 ||
          !util::parse_i64(value.substr(colon + 1), &port) || port < 1 ||
          port > 65535) {
        std::fprintf(stderr,
                     "invalid value for --daemon: '%s' (expected HOST:PORT "
                     "with port in [1, 65535])\n",
                     value.c_str());
        return ParseOutcome::kError;
      }
      args->daemon_host = value.substr(0, colon);
      args->daemon_port = port;
    } else if (parse_flag(argv[i], "--connect-timeout-ms", &value)) {
      if (!util::parse_i64(value, &args->connect_timeout_ms) ||
          args->connect_timeout_ms < 0) {
        std::fprintf(stderr, "--connect-timeout-ms must be >= 0, got '%s'\n",
                     value.c_str());
        return ParseOutcome::kError;
      }
    } else if (parse_flag(argv[i], "--workload", &value)) {
      args->workloads.push_back(value);
    } else if (parse_flag(argv[i], "--clusters", &value)) {
      if (!util::parse_i64(value, &args->clusters) || args->clusters < 1) {
        std::fprintf(stderr, "--clusters must be >= 1, got '%s'\n",
                     value.c_str());
        return ParseOutcome::kError;
      }
    } else if (parse_flag(argv[i], "--threads", &value)) {
      std::int64_t threads = 0;
      if (!util::parse_i64(value, &threads) || threads < 0) {
        std::fprintf(stderr, "--threads must be >= 0, got '%s'\n",
                     value.c_str());
        return ParseOutcome::kError;
      }
      args->threads = threads;
    } else if (parse_flag(argv[i], "--sim-shards", &value)) {
      if (value == "auto") {
        args->sim_shards = 0;
      } else {
        std::uint64_t shards = 0;
        if (!util::parse_u64(value, &shards) || shards < 1) {
          std::fprintf(stderr, "--sim-shards must be >= 1 or 'auto', got "
                       "'%s'\n", value.c_str());
          return ParseOutcome::kError;
        }
        args->sim_shards = static_cast<std::size_t>(shards);
      }
    } else if (parse_flag(argv[i], "--conf", &value)) {
      args->conf = value;
    } else if (parse_flag(argv[i], "--csv", &value)) {
      args->csv_prefix = value;
    } else if (parse_flag(argv[i], "--capture", &value)) {
      if (value.empty()) {
        std::fprintf(stderr, "--capture needs a file path\n");
        return ParseOutcome::kError;
      }
      args->capture = value;
    } else if (parse_flag(argv[i], "--train-ticks", &value)) {
      if (!util::parse_i64(value, &args->train_ticks) ||
          args->train_ticks < 0) {
        std::fprintf(stderr, "--train-ticks must be >= 0, got '%s'\n",
                     value.c_str());
        return ParseOutcome::kError;
      }
    } else if (parse_flag(argv[i], "--eval-ticks", &value)) {
      if (!util::parse_i64(value, &args->eval_ticks) || args->eval_ticks < 0) {
        std::fprintf(stderr, "--eval-ticks must be >= 0, got '%s'\n",
                     value.c_str());
        return ParseOutcome::kError;
      }
    } else if (parse_flag(argv[i], "--seed", &value)) {
      std::uint64_t seed = 0;
      if (!util::parse_u64(value, &seed)) {
        std::fprintf(stderr, "invalid value for --seed: '%s'\n",
                     value.c_str());
        return ParseOutcome::kError;
      }
      args->seed = seed;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return ParseOutcome::kHelp;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return ParseOutcome::kError;
    }
  }
  return ParseOutcome::kOk;
}

void print_usage() {
  std::printf(
      "usage: capes_agentd --daemon=HOST:PORT [--connect-timeout-ms=N]\n"
      "                    [--workload=SPEC]... [--clusters=N] [--threads=N]\n"
      "                    [--sim-shards=auto|N] [--conf=FILE]\n"
      "                    [--train-ticks=N] [--eval-ticks=N] [--csv=PREFIX]\n"
      "                    [--capture=FILE] [--seed=N] [--help]\n"
      "\n"
      "Runs the agent-side half of a distributed CAPES deployment: the\n"
      "simulated cluster with its Monitoring and Control Agents, connected\n"
      "over TCP to a capes_daemond that hosts the Interface Daemon and DRL\n"
      "Engine. --daemon names that process (required); the connection\n"
      "retries with capped backoff for --connect-timeout-ms, so either\n"
      "process may start first. Every other flag matches capes_run: the\n"
      "workflow is the same train -> baseline -> tuned sequence, CSV and\n"
      "capture output are byte-compatible, and over loopback with zero\n"
      "loss the printed training fingerprint is bit-identical to\n"
      "'capes_run --transport=sync' at the same seed. If the daemon dies\n"
      "mid-run the agent finishes the phase offline (actions stop, loss is\n"
      "counted in the messages_dropped column) and exits cleanly.\n"
      "See docs/CONFIG.md for the distributed-run reference.\n");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  switch (parse_args(argc, argv, &args)) {
    case ParseOutcome::kOk:
      break;
    case ParseOutcome::kHelp:
      print_usage();
      return 0;
    case ParseOutcome::kError:
      print_usage();
      return 2;
  }
  if (args.daemon_host.empty()) {
    std::fprintf(stderr, "--daemon=HOST:PORT is required\n");
    print_usage();
    return 2;
  }
  if (args.clusters > 1 && args.workloads.size() > 1) {
    std::fprintf(stderr,
                 "--clusters replicates a single --workload spec; pass either "
                 "--clusters=N or repeated --workload flags, not both\n");
    return 2;
  }

  std::vector<std::string> specs =
      args.workloads.empty() ? std::vector<std::string>{"random:0.1"}
                             : args.workloads;
  if (args.clusters > 1) {
    const std::string replicated = specs[0];
    specs.assign(static_cast<std::size_t>(args.clusters), replicated);
  }

  const std::string transport_spec =
      "tcp:host=" + args.daemon_host +
      ",port=" + std::to_string(args.daemon_port) +
      ",connect_timeout_ms=" + std::to_string(args.connect_timeout_ms);

  auto builder = core::Experiment::builder()
                     .workload(specs[0])
                     .transport(transport_spec)
                     .train_ticks(args.train_ticks)
                     .eval_ticks(args.eval_ticks);
  for (std::size_t i = 1; i < specs.size(); ++i) builder.add_cluster(specs[i]);
  if (args.threads) {
    builder.worker_threads(static_cast<std::size_t>(*args.threads));
  }
  if (args.sim_shards) builder.sim_shards(*args.sim_shards);
  if (args.seed) builder.seed(*args.seed);
  if (!args.capture.empty()) builder.capture(args.capture);
  if (!args.conf.empty()) builder.config_file(args.conf);
  if (!args.csv_prefix.empty()) {
    builder.on_phase_end([&args](const core::PhaseReport& report) {
      const std::string path = args.csv_prefix + "_" + report.label + ".csv";
      std::ofstream out(path);
      out << core::run_result_csv(report.result);
      if (out) {
        std::printf("  wrote %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "  cannot write %s\n", path.c_str());
      }
    });
  }

  std::string error;
  auto experiment = builder.build(&error);
  if (!experiment) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  const std::int64_t train = experiment->default_train_ticks();
  std::printf("daemon %s:%lld, workload %s, %lld training ticks, %lld eval "
              "ticks, seed %llu\n",
              args.daemon_host.c_str(),
              static_cast<long long>(args.daemon_port),
              experiment->workload_name().c_str(),
              static_cast<long long>(train),
              static_cast<long long>(experiment->default_eval_ticks()),
              static_cast<unsigned long long>(
                  experiment->preset().capes.engine.dqn.seed));
  std::fflush(stdout);

  if (train > 0) {
    std::printf("training...\n");
    const auto training = experiment->run_training();
    std::printf("  %zu train steps, session throughput %s MB/s\n",
                training.result.train_steps,
                training.throughput.to_string().c_str());
  }

  const auto baseline = experiment->run_baseline();
  std::printf("baseline: %s MB/s, latency %s ms\n",
              baseline.throughput.to_string().c_str(),
              baseline.latency.to_string().c_str());

  const auto tuned = experiment->run_tuned();
  const auto& report = experiment->report();
  std::printf("tuned:    %s MB/s, latency %s ms  (%+.1f%%)\n",
              tuned.throughput.to_string().c_str(),
              tuned.latency.to_string().c_str(),
              report.tuned_gain_percent());

  std::printf("final parameters:");
  for (std::size_t i = 0; i < report.parameter_names.size(); ++i) {
    std::printf(" %s=%.0f", report.parameter_names[i].c_str(),
                report.final_parameters[i]);
  }
  std::printf("\n");

  // Link-loss accounting: anything shed at the endpoint, dropped because
  // the link died, or lost to a daemon crash shows up here — a healthy
  // loopback run prints zeros.
  std::uint64_t dropped = 0;
  for (const auto& phase : report.phases) {
    dropped += phase.result.messages_dropped;
  }
  std::printf("control network (tcp): %llu messages dropped, link %s\n",
              static_cast<unsigned long long>(dropped),
              experiment->system().brain_client() &&
                      experiment->system().brain_client()->alive()
                  ? "alive"
                  : "dead");

  std::printf("training fingerprint %08x (%zu train steps)\n",
              experiment->system().training_fingerprint(),
              experiment->system().total_train_steps());

  if (auto* writer = experiment->system().capture_writer()) {
    writer->close();
    std::printf("capture: %llu records (%llu dropped, %llu bytes) -> %s\n",
                static_cast<unsigned long long>(writer->records_logged()),
                static_cast<unsigned long long>(writer->records_dropped()),
                static_cast<unsigned long long>(writer->bytes_written()),
                experiment->preset().capes.capture_path.c_str());
  }
  return 0;
}
