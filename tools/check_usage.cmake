# Asserts that a CLI tool's --help mentions every flag its strict parser
# accepts. The flag list is extracted from the tool's source itself (the
# parse_flag / strcmp call sites), so adding a flag without updating the
# usage text fails this check instead of drifting silently. Run as:
#
#   cmake -DCAPES_RUN=<binary> -DCAPES_RUN_SOURCE=<tool.cpp> \
#         [-DCAPES_MIN_FLAGS=<n>] -P tools/check_usage.cmake
#
# CAPES_MIN_FLAGS (default 10, sized for capes_run) is the extraction
# sanity floor: finding fewer flags than this means the regexes broke,
# not that the tool shrank. Smaller tools (capes_replay) pass their own.

if(NOT CAPES_RUN OR NOT CAPES_RUN_SOURCE)
  message(FATAL_ERROR
    "usage: cmake -DCAPES_RUN=<binary> -DCAPES_RUN_SOURCE=<capes_run.cpp> "
    "-P check_usage.cmake")
endif()

execute_process(COMMAND ${CAPES_RUN} --help
  OUTPUT_VARIABLE usage
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${CAPES_RUN} --help exited with ${rc}")
endif()

file(READ ${CAPES_RUN_SOURCE} source)
# Value flags: parse_flag(argv[i], "--name", ...); boolean flags:
# std::strcmp(argv[i], "--name").
string(REGEX MATCHALL "parse_flag\\(argv\\[i\\], \"--[a-z0-9-]+\"" value_flags
  "${source}")
string(REGEX MATCHALL "strcmp\\(argv\\[i\\], \"--[a-z0-9-]+\"" bool_flags
  "${source}")

set(flags "")
foreach(match IN LISTS value_flags bool_flags)
  string(REGEX REPLACE ".*\"(--[a-z0-9-]+)\".*" "\\1" flag "${match}")
  list(APPEND flags "${flag}")
endforeach()
list(REMOVE_DUPLICATES flags)
list(LENGTH flags flag_count)
if(NOT CAPES_MIN_FLAGS)
  set(CAPES_MIN_FLAGS 10)
endif()
if(flag_count LESS CAPES_MIN_FLAGS)
  message(FATAL_ERROR
    "flag extraction looks broken: only found ${flag_count} flags "
    "(${flags}) in ${CAPES_RUN_SOURCE}")
endif()

set(missing "")
foreach(flag IN LISTS flags)
  string(FIND "${usage}" "${flag}" position)
  if(position EQUAL -1)
    list(APPEND missing "${flag}")
  endif()
endforeach()

if(missing)
  message(FATAL_ERROR
    "usage text omits flag(s) the parser accepts: ${missing} — "
    "update print_usage() in ${CAPES_RUN_SOURCE} (and docs/CONFIG.md)")
endif()
message(STATUS "usage text mentions all ${flag_count} parser flags")
