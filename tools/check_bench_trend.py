#!/usr/bin/env python3
"""Compare bench JSON artifacts and flag throughput regressions.

Usage:
    tools/check_bench_trend.py BASELINE.json CURRENT.json
        [--threshold=0.20] [--strict]
    tools/check_bench_trend.py BASELINE_DIR/ CURRENT_DIR/
        [--threshold=0.20] [--strict]

File mode compares two artifacts directly. Directory mode scans
CURRENT_DIR for every BENCH_*.json and compares each against the
same-named file in BASELINE_DIR, so one invocation covers every bench
job; a current artifact with no baseline counterpart is reported as new
and skipped.

The artifacts are the BENCH_*.json emitted by the bench runners
(tools/run_*_bench.sh): a top-level "results" list of rows, each row a
flat object mixing key fields (threads, domains, scenario, ...) with
measured metrics. "ticks_per_sec*" metrics are higher-is-better: a drop
beyond the threshold (default 20%) is reported. "*imbalance*" metrics
(max/mean shard load from the sharded event loop) are lower-is-better:
a rise beyond the same threshold is reported. Rows are matched across
files by their remaining key fields.

Warn-only by default: regressions are printed but the exit code stays 0,
so CI surfaces the trend without going red on a noisy shared runner.
--strict exits 1 on any regression instead (for local gating runs).
Missing baselines (first run, renamed bench) exit 0 with a notice.
"""

import argparse
import json
import os
import sys

METRIC_PREFIX = "ticks_per_sec"
LOWER_IS_BETTER = "imbalance"


def is_metric(key):
    return key.startswith(METRIC_PREFIX) or LOWER_IS_BETTER in key


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as e:
        sys.exit(f"error: {path} is not valid JSON: {e}")


def row_key(row):
    """Identity of a results row: every non-metric, non-derived field."""
    return tuple(
        sorted(
            (k, v)
            for k, v in row.items()
            if not is_metric(k) and k != "speedup"
        )
    )


def metrics(row):
    return {k: v for k, v in row.items() if is_metric(k)}


def compare(baseline, current, current_name, threshold):
    """Compare one artifact pair; return the number of regressions."""
    base_rows = {row_key(r): metrics(r) for r in baseline.get("results", [])}
    regressions = []
    compared = 0
    for row in current.get("results", []):
        base = base_rows.get(row_key(row))
        if base is None:
            continue
        for name, value in metrics(row).items():
            old = base.get(name)
            if not isinstance(old, (int, float)) or old <= 0:
                continue
            compared += 1
            if LOWER_IS_BETTER in name:
                # Imbalance: a rise is the regression.
                change = (value - old) / old
            else:
                change = (old - value) / old
            if change > threshold:
                label = ", ".join(
                    f"{k}={v}" for k, v in row.items()
                    if not is_metric(k) and k != "speedup"
                )
                direction = "rose" if LOWER_IS_BETTER in name else "dropped"
                regressions.append(
                    f"  {name} [{label}]: {direction} {old:.2f} -> "
                    f"{value:.2f} ({change:+.0%})"
                )

    bench = current.get("bench", current_name)
    if not compared:
        print(f"{bench}: no comparable metrics between the two artifacts")
        return 0
    if regressions:
        print(
            f"WARNING: {bench}: {len(regressions)} metric(s) regressed "
            f"more than {threshold:.0%}:"
        )
        print("\n".join(regressions))
        return len(regressions)
    print(f"{bench}: {compared} metric(s) within {threshold:.0%} "
          "of baseline")
    return 0


def compare_dirs(baseline_dir, current_dir, threshold):
    """Compare every BENCH_*.json in current_dir against baseline_dir."""
    names = sorted(
        f for f in os.listdir(current_dir)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not names:
        print(f"no BENCH_*.json artifacts in {current_dir}; "
              "nothing to compare")
        return 0
    total = 0
    for name in names:
        current = load(os.path.join(current_dir, name))
        if current is None:
            sys.exit(f"error: cannot read {os.path.join(current_dir, name)}")
        baseline = load(os.path.join(baseline_dir, name))
        if baseline is None:
            print(f"{name}: no baseline in {baseline_dir}; skipping "
                  "(new bench or first run)")
            continue
        total += compare(baseline, current, name, threshold)
    return total


def main():
    parser = argparse.ArgumentParser(
        description="warn on bench throughput regressions between two "
        "BENCH_*.json artifacts or two artifact directories"
    )
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="fractional drop that counts as a regression (default 0.20)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on regression instead of warn-only",
    )
    args = parser.parse_args()

    if os.path.isdir(args.current):
        if not os.path.isdir(args.baseline):
            # First run of the aggregate check: no cached baseline dir.
            print(f"no baseline directory at {args.baseline}; "
                  "nothing to compare")
            return 0
        regressions = compare_dirs(args.baseline, args.current,
                                   args.threshold)
        return 1 if (regressions and args.strict) else 0

    baseline = load(args.baseline)
    if baseline is None:
        print(f"no baseline at {args.baseline}; nothing to compare")
        return 0
    current = load(args.current)
    if current is None:
        sys.exit(f"error: current artifact {args.current} not found")

    regressions = compare(baseline, current, args.current, args.threshold)
    return 1 if (regressions and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
