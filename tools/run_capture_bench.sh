#!/usr/bin/env sh
# Runs the flight-recorder bench and emits BENCH_capture.json (training
# ticks/sec with the capture wire log off vs on, the recorder's record
# and byte counts, and steady-state heap allocations per tick on the
# audited allocation-free path with capture enabled).
#
#   tools/run_capture_bench.sh [build_dir] [output.json]
#
# Tunables via environment:
#   CAPES_BENCH_TICKS  training ticks per measured point (default 200)
set -eu

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_capture.json}"
BENCH="$BUILD_DIR/bench/ext_capture"

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built (cmake --build $BUILD_DIR --target ext_capture)" >&2
  exit 1
fi

"$BENCH" --ticks="${CAPES_BENCH_TICKS:-200}" \
  --capture-file="$BUILD_DIR/bench_capture.cap" --json="$OUT"
