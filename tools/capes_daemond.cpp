// capes_daemond — the standalone Interface Daemon + DRL Engine process
// of the distributed control plane (§3.3's deployment: Monitoring Agents
// feed a central daemon that hosts the Replay DB and the DRL brain).
//
// The daemon listens on a TCP endpoint, accepts one capes_agentd
// connection, and runs a core::BrainService session over it: the entire
// run topology (workload meta, per-domain action spaces) arrives in the
// client's Hello, exactly the way a capture file's header rebuilds a run
// in capes_replay — the daemon needs no workload flags of its own.
// With --port=0 the kernel picks an ephemeral port and the daemon prints
// it on stdout (flushed before accepting), so scripts can launch the
// pair without coordinating port numbers.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/brain_service.hpp"
#include "net/endpoint.hpp"
#include "net/socket.hpp"
#include "util/parse.hpp"

using namespace capes;

namespace {

struct Args {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks, the daemon prints the real port.
  std::int64_t port = 4890;
  /// How long to wait for the agent to connect (-1 = forever).
  std::int64_t accept_timeout_ms = 30000;
  /// Declare a silent peer dead after this long (heartbeats keep a
  /// healthy but idle link well under it).
  std::int64_t idle_timeout_ms = 30000;
};

using util::parse_flag;

enum class ParseOutcome { kOk, kError, kHelp };

ParseOutcome parse_args(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (parse_flag(argv[i], "--host", &value)) {
      args->host = value;
    } else if (parse_flag(argv[i], "--port", &value)) {
      std::int64_t port = 0;
      if (!util::parse_i64(value, &port) || port < 0 || port > 65535) {
        std::fprintf(stderr, "--port must be in [0, 65535], got '%s'\n",
                     value.c_str());
        return ParseOutcome::kError;
      }
      args->port = port;
    } else if (parse_flag(argv[i], "--accept-timeout-ms", &value)) {
      if (!util::parse_i64(value, &args->accept_timeout_ms)) {
        std::fprintf(stderr, "invalid value for --accept-timeout-ms: '%s'\n",
                     value.c_str());
        return ParseOutcome::kError;
      }
    } else if (parse_flag(argv[i], "--idle-timeout-ms", &value)) {
      if (!util::parse_i64(value, &args->idle_timeout_ms) ||
          args->idle_timeout_ms < 0) {
        std::fprintf(stderr, "--idle-timeout-ms must be >= 0, got '%s'\n",
                     value.c_str());
        return ParseOutcome::kError;
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return ParseOutcome::kHelp;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return ParseOutcome::kError;
    }
  }
  return ParseOutcome::kOk;
}

void print_usage() {
  std::printf(
      "usage: capes_daemond [--host=ADDR] [--port=N] [--accept-timeout-ms=N]\n"
      "                     [--idle-timeout-ms=N] [--help]\n"
      "\n"
      "Hosts the Interface Daemon + DRL Engine half of a distributed CAPES\n"
      "run: listens on --host:--port (default 127.0.0.1:4890), accepts one\n"
      "capes_agentd connection, and serves its training session — the run\n"
      "topology arrives in the agent's handshake, so the daemon needs no\n"
      "workload configuration of its own. --port=0 lets the kernel pick an\n"
      "ephemeral port; the daemon prints 'listening on HOST:PORT' (flushed)\n"
      "before accepting, so scripts can read the port back. The process\n"
      "exits after the session: 0 on a clean agent Bye or link death (loss\n"
      "is the agent's to report), 1 on a setup or protocol error.\n"
      "--accept-timeout-ms bounds the wait for the agent (-1 = forever);\n"
      "--idle-timeout-ms declares a silent peer dead (0 = never).\n"
      "See docs/CONFIG.md for the distributed-run reference.\n");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  switch (parse_args(argc, argv, &args)) {
    case ParseOutcome::kOk:
      break;
    case ParseOutcome::kHelp:
      print_usage();
      return 0;
    case ParseOutcome::kError:
      print_usage();
      return 2;
  }

  std::string error;
  const int listen_fd = net::tcp_listen(
      args.host, static_cast<std::uint16_t>(args.port), &error);
  if (listen_fd < 0) {
    std::fprintf(stderr, "capes_daemond: %s\n", error.c_str());
    return 1;
  }
  const std::uint16_t port = net::local_port(listen_fd);
  // Flush before blocking in accept: launcher scripts parse this line to
  // learn an ephemeral port.
  std::printf("capes_daemond listening on %s:%u\n", args.host.c_str(),
              static_cast<unsigned>(port));
  std::fflush(stdout);

  const int conn_fd =
      net::accept_connection(listen_fd, args.accept_timeout_ms, &error);
  net::close_socket(listen_fd);
  if (conn_fd < 0) {
    std::fprintf(stderr, "capes_daemond: %s\n", error.c_str());
    return 1;
  }

  net::EndpointOptions ep_opts;
  ep_opts.idle_timeout_ms = args.idle_timeout_ms;
  net::Endpoint endpoint(conn_fd, ep_opts);

  core::BrainService service;
  const auto report = service.serve(endpoint);
  endpoint.close();

  if (!report.hello_ok) {
    std::fprintf(stderr, "capes_daemond: session failed before handshake%s%s\n",
                 report.error.empty() ? "" : ": ",
                 report.error.c_str());
    return 1;
  }
  std::printf("session: %lld ticks, %zu domains, %llu status / %llu reward "
              "records, %llu actions broadcast, %llu vetoed\n",
              static_cast<long long>(report.ticks), report.num_domains,
              static_cast<unsigned long long>(report.status_records),
              static_cast<unsigned long long>(report.reward_records),
              static_cast<unsigned long long>(report.actions_broadcast),
              static_cast<unsigned long long>(report.actions_vetoed));
  if (report.decode_errors > 0) {
    std::printf("  %llu malformed PI payloads dropped\n",
                static_cast<unsigned long long>(report.decode_errors));
  }
  std::printf("shutdown: %s\n",
              report.clean_shutdown ? "clean (agent Bye)" : "link death");
  // The same determinism handle capes_run prints: CI compares this line
  // against the in-process run's.
  std::printf("training fingerprint %08x (%zu train steps)\n",
              report.fingerprint, report.train_steps);
  if (!report.error.empty()) {
    std::fprintf(stderr, "capes_daemond: %s\n", report.error.c_str());
    return 1;
  }
  return 0;
}
