# Record → replay determinism smoke. Runs a short seeded capes_run with
# --capture=, replays the wire log with capes_replay --speed=max, and
# asserts both print the same "training fingerprint XXXXXXXX (N train
# steps)" line — the round-trip guarantee, checked from the CLI surface.
# Run as:
#
#   cmake -DCAPES_RUN=<capes_run> -DCAPES_REPLAY=<capes_replay> \
#         -DWORK_DIR=<scratch dir> -P tools/check_replay.cmake

if(NOT CAPES_RUN OR NOT CAPES_REPLAY OR NOT WORK_DIR)
  message(FATAL_ERROR
    "usage: cmake -DCAPES_RUN=<binary> -DCAPES_REPLAY=<binary> "
    "-DWORK_DIR=<dir> -P check_replay.cmake")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})
set(capture_file ${WORK_DIR}/smoke.cap)
file(REMOVE ${capture_file})

execute_process(
  COMMAND ${CAPES_RUN} --workload=random:0.2 --train-ticks=60 --eval-ticks=30
          --seed=7 --capture=${capture_file}
  OUTPUT_VARIABLE run_out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "capes_run --capture exited with ${rc}:\n${run_out}")
endif()
if(NOT EXISTS ${capture_file})
  message(FATAL_ERROR "capes_run did not write ${capture_file}")
endif()

execute_process(
  COMMAND ${CAPES_REPLAY} --capture=${capture_file} --speed=max
  OUTPUT_VARIABLE replay_out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "capes_replay exited with ${rc}:\n${replay_out}")
endif()

foreach(pair "run_out;live" "replay_out;replayed")
  list(GET pair 0 var)
  list(GET pair 1 label)
  string(REGEX MATCH "training fingerprint [0-9a-f]+ \\([0-9]+ train steps\\)"
    ${label}_line "${${var}}")
  if(NOT ${label}_line)
    message(FATAL_ERROR
      "no training-fingerprint line in the ${label} output:\n${${var}}")
  endif()
endforeach()

if(NOT live_line STREQUAL replayed_line)
  message(FATAL_ERROR
    "round-trip fingerprint mismatch:\n  live:     ${live_line}\n"
    "  replayed: ${replayed_line}")
endif()
message(STATUS "round trip reproduced '${live_line}'")
