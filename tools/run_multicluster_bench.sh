#!/usr/bin/env sh
# Runs the multi-cluster scaling bench and emits BENCH_multicluster.json
# (ticks/sec vs. domain count, single-threaded vs. worker pool).
#
#   tools/run_multicluster_bench.sh [build_dir] [output.json]
#
# Tunables via environment:
#   CAPES_BENCH_TICKS    training ticks per measured point (default 150)
#   CAPES_BENCH_THREADS  worker-pool size (default: bench's hardware pick)
set -eu

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_multicluster.json}"
BENCH="$BUILD_DIR/bench/ext_multi_cluster"

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built (cmake --build $BUILD_DIR --target ext_multi_cluster)" >&2
  exit 1
fi

set -- --ticks="${CAPES_BENCH_TICKS:-150}" --json="$OUT"
if [ -n "${CAPES_BENCH_THREADS:-}" ]; then
  set -- "$@" --threads="$CAPES_BENCH_THREADS"
fi
"$BENCH" "$@"
