#pragma once
// Losses for DQN training. The Bellman regression (paper Eq. 1) is a mean
// square error over the minibatch, applied only at the output unit of the
// action actually taken; the masked variants implement exactly that.

#include <cstddef>
#include <vector>

#include "nn/matrix.hpp"

namespace capes::nn {

/// Plain MSE between prediction and target (same shape). Returns the mean
/// over all elements and writes d(loss)/d(pred) into `grad` (resized).
float mse_loss(const Matrix& pred, const Matrix& target, Matrix& grad);

/// Masked MSE used for Q-learning: for each row i only column
/// `action[i]` contributes, with target value `target[i]`. The gradient of
/// all other columns is zero. Returns mean squared error over the batch.
float masked_mse_loss(const Matrix& pred, const std::vector<std::size_t>& action,
                      const std::vector<float>& target, Matrix& grad);

/// Masked Huber (smooth-L1) loss with threshold `delta`; a drop-in,
/// outlier-robust alternative evaluated in the ablation benches.
float masked_huber_loss(const Matrix& pred, const std::vector<std::size_t>& action,
                        const std::vector<float>& target, Matrix& grad,
                        float delta = 1.0f);

}  // namespace capes::nn
