#include "nn/mlp.hpp"

#include <cassert>

#include "util/serialize.hpp"

namespace capes::nn {

namespace {
constexpr std::uint32_t kMagic = 0x4341504eu;  // "CAPN"
constexpr std::uint32_t kVersion = 1;
}  // namespace

Mlp::Mlp(const std::vector<std::size_t>& sizes, util::Rng& rng,
         Activation activation)
    : Mlp(sizes, activation, RawTag{}) {
  for (auto& d : dense_) d.init_xavier(rng);
}

Mlp::Mlp(const std::vector<std::size_t>& sizes, Activation activation, RawTag)
    : sizes_(sizes), activation_(activation) {
  assert(sizes_.size() >= 2);
  dense_.reserve(sizes_.size() - 1);
  for (std::size_t i = 0; i + 1 < sizes_.size(); ++i) {
    dense_.emplace_back(sizes_[i], sizes_[i + 1],
                        "layer" + std::to_string(i));
  }
  const std::size_t hidden = dense_.size() - 1;
  tanh_.resize(hidden);
  relu_.resize(hidden);
}

const Matrix& Mlp::forward(const Matrix& x, util::ThreadPool* pool) {
  const Matrix* cur = &x;
  for (std::size_t i = 0; i < dense_.size(); ++i) {
    cur = &dense_[i].forward(*cur, pool);
    if (i + 1 < dense_.size()) {
      cur = activation_ == Activation::kTanh ? &tanh_[i].forward(*cur)
                                             : &relu_[i].forward(*cur);
    }
  }
  return *cur;
}

void Mlp::backward(const Matrix& grad_out, util::ThreadPool* pool) {
  const Matrix* grad = &grad_out;
  for (std::size_t i = dense_.size(); i-- > 0;) {
    if (i + 1 < dense_.size()) {
      grad = activation_ == Activation::kTanh ? &tanh_[i].backward(*grad)
                                              : &relu_[i].backward(*grad);
    }
    grad = &dense_[i].backward(*grad, pool);
  }
}

void Mlp::zero_grad() {
  for (auto& d : dense_) d.zero_grad();
}

std::vector<Parameter*> Mlp::parameters() {
  std::vector<Parameter*> params;
  for (auto& d : dense_) {
    params.push_back(&d.weights());
    params.push_back(&d.bias());
  }
  return params;
}

std::vector<const Parameter*> Mlp::parameters() const {
  std::vector<const Parameter*> params;
  for (const auto& d : dense_) {
    params.push_back(&d.weights());
    params.push_back(&d.bias());
  }
  return params;
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const auto* p : parameters()) n += p->value.size();
  return n;
}

std::size_t Mlp::memory_bytes() const {
  std::size_t n = 0;
  for (const auto* p : parameters()) {
    n += (p->value.size() + p->grad.size()) * sizeof(float);
  }
  return n;
}

void Mlp::copy_weights_from(const Mlp& other) {
  auto dst = parameters();
  auto src = other.parameters();
  assert(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) {
    assert(dst[i]->value.size() == src[i]->value.size());
    dst[i]->value = src[i]->value;
  }
}

std::unique_ptr<Mlp> Mlp::clone() const {
  auto copy = std::unique_ptr<Mlp>(new Mlp(sizes_, activation_, RawTag{}));
  copy->copy_weights_from(*this);
  auto dst = copy->parameters();
  auto src = parameters();
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i]->name = src[i]->name;
  return copy;
}

void Mlp::soft_update_from(const Mlp& other, float alpha) {
  // Walks the layers directly (no parameters() vector) — this runs every
  // train step and must stay off the heap.
  assert(dense_.size() == other.dense_.size());
  const auto blend = [alpha](std::vector<float>& d, const std::vector<float>& s) {
    assert(d.size() == s.size());
    for (std::size_t j = 0; j < d.size(); ++j) {
      d[j] = (1.0f - alpha) * d[j] + alpha * s[j];
    }
  };
  for (std::size_t i = 0; i < dense_.size(); ++i) {
    blend(dense_[i].weights().value, other.dense_[i].weights().value);
    blend(dense_[i].bias().value, other.dense_[i].bias().value);
  }
}

std::vector<std::uint8_t> Mlp::serialize() const {
  util::BinaryWriter w;
  w.put_u32(kMagic);
  w.put_u32(kVersion);
  w.put_u8(activation_ == Activation::kTanh ? 0 : 1);
  w.put_u32(static_cast<std::uint32_t>(sizes_.size()));
  for (std::size_t s : sizes_) w.put_u64(s);
  for (const auto* p : parameters()) {
    w.put_string(p->name);
    w.put_f32_vector(p->value);
  }
  return w.take();
}

std::unique_ptr<Mlp> Mlp::deserialize(const std::vector<std::uint8_t>& data) {
  util::BinaryReader r(data);
  auto magic = r.get_u32();
  auto version = r.get_u32();
  if (!magic || *magic != kMagic || !version || *version != kVersion) {
    return nullptr;
  }
  auto act = r.get_u8();
  auto nsizes = r.get_u32();
  if (!act || !nsizes || *nsizes < 2) return nullptr;
  std::vector<std::size_t> sizes;
  for (std::uint32_t i = 0; i < *nsizes; ++i) {
    auto s = r.get_u64();
    if (!s || *s == 0) return nullptr;
    sizes.push_back(static_cast<std::size_t>(*s));
  }
  auto mlp = std::unique_ptr<Mlp>(new Mlp(
      sizes, *act == 0 ? Activation::kTanh : Activation::kRelu, RawTag{}));
  for (auto* p : mlp->parameters()) {
    auto name = r.get_string();
    auto values = r.get_f32_vector();
    if (!name || !values || values->size() != p->value.size()) return nullptr;
    p->name = *name;
    p->value = std::move(*values);
  }
  return mlp;
}

bool Mlp::save_checkpoint(const std::string& path) const {
  return util::write_file(path, serialize());
}

std::unique_ptr<Mlp> Mlp::load_checkpoint(const std::string& path) {
  auto data = util::read_file(path);
  if (!data) return nullptr;
  return deserialize(*data);
}

}  // namespace capes::nn
