#pragma once
// Dense row-major float matrices and the small set of GEMM kernels needed
// by a multi-layer perceptron. Written for clarity first and reasonable
// single-core performance second (ikj loop order, contiguous accumulation,
// optional thread-pool row partitioning).

#include <cassert>
#include <cstddef>
#include <vector>

namespace capes::util {
class ThreadPool;
}

namespace capes::nn {

/// Row-major float matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  float& at(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  void fill(float v) { data_.assign(data_.size(), v); }
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// C = A[n,k] * B[k,m]. C is resized. `pool` may be null (single-threaded).
void matmul_nn(const Matrix& a, const Matrix& b, Matrix& c,
               util::ThreadPool* pool = nullptr);

/// C = A[n,k] * B[m,k]^T -> [n,m].
void matmul_nt(const Matrix& a, const Matrix& b, Matrix& c,
               util::ThreadPool* pool = nullptr);

/// C = A[k,n]^T * B[k,m] -> [n,m].
void matmul_tn(const Matrix& a, const Matrix& b, Matrix& c,
               util::ThreadPool* pool = nullptr);

/// Add row vector `bias` (length = c.cols()) to each row of `c`.
void add_row_vector(Matrix& c, const std::vector<float>& bias);

/// Column-wise sums of `m` into `out` (resized to m.cols()).
void column_sums(const Matrix& m, std::vector<float>& out);

}  // namespace capes::nn
