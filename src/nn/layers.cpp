#include "nn/layers.hpp"

#include <cmath>

namespace capes::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, std::string name)
    : in_(in_features), out_(out_features) {
  w_.name = name + ".weight";
  w_.value.assign(in_ * out_, 0.0f);
  w_.grad.assign(in_ * out_, 0.0f);
  b_.name = name + ".bias";
  b_.value.assign(out_, 0.0f);
  b_.grad.assign(out_, 0.0f);
  w_view_.resize(out_, in_);
}

void Dense::init_xavier(util::Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(in_ + out_));
  for (auto& w : w_.value) {
    w = static_cast<float>(rng.uniform(-limit, limit));
  }
  for (auto& b : b_.value) b = 0.0f;
}

const Matrix& Dense::forward(const Matrix& x, util::ThreadPool* pool) {
  assert(x.cols() == in_);
  cached_input_ = x;
  w_view_.storage() = w_.value;
  matmul_nt(x, w_view_, output_, pool);
  add_row_vector(output_, b_.value);
  return output_;
}

const Matrix& Dense::backward(const Matrix& grad_out, util::ThreadPool* pool) {
  assert(grad_out.cols() == out_);
  assert(grad_out.rows() == cached_input_.rows());

  // dW += grad_out^T * X  ([out, batch] x [batch, in] -> [out, in])
  matmul_tn(grad_out, cached_input_, dw_scratch_, pool);
  for (std::size_t i = 0; i < dw_scratch_.size(); ++i) {
    w_.grad[i] += dw_scratch_.data()[i];
  }

  // db += column sums of grad_out
  column_sums(grad_out, db_scratch_);
  for (std::size_t i = 0; i < out_; ++i) b_.grad[i] += db_scratch_[i];

  // dX = grad_out * W ([batch, out] x [out, in] -> [batch, in])
  w_view_.storage() = w_.value;
  matmul_nn(grad_out, w_view_, grad_input_, pool);
  return grad_input_;
}

void Dense::zero_grad() {
  w_.grad.assign(w_.grad.size(), 0.0f);
  b_.grad.assign(b_.grad.size(), 0.0f);
}

const Matrix& Tanh::forward(const Matrix& x) {
  output_.resize(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    output_.data()[i] = std::tanh(x.data()[i]);
  }
  return output_;
}

const Matrix& Tanh::backward(const Matrix& grad_out) {
  assert(grad_out.rows() == output_.rows() && grad_out.cols() == output_.cols());
  grad_input_.resize(grad_out.rows(), grad_out.cols());
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    const float y = output_.data()[i];
    grad_input_.data()[i] = grad_out.data()[i] * (1.0f - y * y);
  }
  return grad_input_;
}

const Matrix& Relu::forward(const Matrix& x) {
  output_.resize(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float v = x.data()[i];
    output_.data()[i] = v > 0.0f ? v : 0.0f;
  }
  return output_;
}

const Matrix& Relu::backward(const Matrix& grad_out) {
  grad_input_.resize(grad_out.rows(), grad_out.cols());
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    grad_input_.data()[i] = output_.data()[i] > 0.0f ? grad_out.data()[i] : 0.0f;
  }
  return grad_input_;
}

}  // namespace capes::nn
