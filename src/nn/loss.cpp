#include "nn/loss.hpp"

#include <cassert>
#include <cmath>

namespace capes::nn {

float mse_loss(const Matrix& pred, const Matrix& target, Matrix& grad) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  grad.resize(pred.rows(), pred.cols());
  const float n = static_cast<float>(pred.size());
  float loss = 0.0f;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float diff = pred.data()[i] - target.data()[i];
    loss += diff * diff;
    grad.data()[i] = 2.0f * diff / n;
  }
  return loss / n;
}

float masked_mse_loss(const Matrix& pred, const std::vector<std::size_t>& action,
                      const std::vector<float>& target, Matrix& grad) {
  assert(action.size() == pred.rows());
  assert(target.size() == pred.rows());
  grad.resize(pred.rows(), pred.cols());
  grad.fill(0.0f);
  const float n = static_cast<float>(pred.rows());
  float loss = 0.0f;
  for (std::size_t i = 0; i < pred.rows(); ++i) {
    assert(action[i] < pred.cols());
    const float diff = pred.at(i, action[i]) - target[i];
    loss += diff * diff;
    grad.at(i, action[i]) = 2.0f * diff / n;
  }
  return loss / n;
}

float masked_huber_loss(const Matrix& pred, const std::vector<std::size_t>& action,
                        const std::vector<float>& target, Matrix& grad,
                        float delta) {
  assert(action.size() == pred.rows());
  assert(target.size() == pred.rows());
  grad.resize(pred.rows(), pred.cols());
  grad.fill(0.0f);
  const float n = static_cast<float>(pred.rows());
  float loss = 0.0f;
  for (std::size_t i = 0; i < pred.rows(); ++i) {
    const float diff = pred.at(i, action[i]) - target[i];
    const float abs_diff = std::fabs(diff);
    if (abs_diff <= delta) {
      loss += 0.5f * diff * diff;
      grad.at(i, action[i]) = diff / n;
    } else {
      loss += delta * (abs_diff - 0.5f * delta);
      grad.at(i, action[i]) = (diff > 0.0f ? delta : -delta) / n;
    }
  }
  return loss / n;
}

}  // namespace capes::nn
