#pragma once
// Layers for the CAPES Q-network: fully connected (dense) layers and the
// tanh nonlinearity the paper uses (§3.4). Each layer owns its parameters
// and accumulated gradients; training code zeroes gradients, runs
// forward/backward, then hands parameter/gradient pairs to the optimizer.

#include <cstddef>
#include <string>
#include <vector>

#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace capes::util {
class ThreadPool;
}

namespace capes::nn {

/// A named parameter tensor: flat values plus same-shape gradient.
struct Parameter {
  std::string name;
  std::vector<float> value;
  std::vector<float> grad;
};

/// Fully connected layer: Y = X * W^T + b, W is [out, in].
class Dense {
 public:
  Dense(std::size_t in_features, std::size_t out_features, std::string name);

  /// Xavier/Glorot uniform initialization: U(-limit, limit) with
  /// limit = sqrt(6 / (fan_in + fan_out)). Biases start at zero.
  void init_xavier(util::Rng& rng);

  /// X: [batch, in] -> returns [batch, out]. Caches X for backward.
  const Matrix& forward(const Matrix& x, util::ThreadPool* pool = nullptr);

  /// grad_out: [batch, out] -> returns grad wrt input [batch, in].
  /// Accumulates into weight/bias gradients.
  const Matrix& backward(const Matrix& grad_out, util::ThreadPool* pool = nullptr);

  void zero_grad();

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  Parameter& weights() { return w_; }
  Parameter& bias() { return b_; }
  const Parameter& weights() const { return w_; }
  const Parameter& bias() const { return b_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Parameter w_;  // [out, in] row-major
  Parameter b_;  // [out]
  Matrix cached_input_;
  Matrix output_;
  Matrix grad_input_;
  // Scratch reused across calls so steady-state forward/backward perform
  // no heap allocation (the hot-path contract of the async learner).
  Matrix w_view_;
  Matrix dw_scratch_;
  std::vector<float> db_scratch_;
};

/// Elementwise hyperbolic tangent.
class Tanh {
 public:
  const Matrix& forward(const Matrix& x);
  const Matrix& backward(const Matrix& grad_out);

 private:
  Matrix output_;
  Matrix grad_input_;
};

/// Elementwise rectified linear unit (optional alternative activation).
class Relu {
 public:
  const Matrix& forward(const Matrix& x);
  const Matrix& backward(const Matrix& grad_out);

 private:
  Matrix output_;
  Matrix grad_input_;
};

}  // namespace capes::nn
