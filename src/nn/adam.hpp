#pragma once
// Adam optimizer (Kingma & Ba) — the optimizer the paper uses for the
// Q-network, with the Table 1 learning rate of 1e-4 as the default.

#include <cstddef>
#include <vector>

#include "nn/layers.hpp"
#include "util/serialize.hpp"

namespace capes::nn {

/// Adam over a fixed set of Parameter tensors. The parameter set is
/// captured at construction; per-tensor first/second moment buffers are
/// kept internally.
class Adam {
 public:
  struct Options {
    float learning_rate = 1e-4f;  // Table 1: "Adam learning rate"
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
  };

  explicit Adam(std::vector<Parameter*> params);
  Adam(std::vector<Parameter*> params, Options opts);

  /// Apply one update using each parameter's accumulated gradient.
  /// Does not zero gradients (caller's responsibility).
  void step();

  /// Number of step() calls so far (Adam's bias-correction t).
  std::size_t steps() const { return t_; }

  const Options& options() const { return opts_; }
  void set_learning_rate(float lr) { opts_.learning_rate = lr; }

  /// Append the moment buffers and step counter (not the hyperparameters
  /// or the parameter values themselves — those live with the model).
  void serialize_state(util::BinaryWriter& w) const;

  /// Restore state written by serialize_state. Returns false (state
  /// untouched) on malformed data or a moment-shape mismatch with the
  /// captured parameter set.
  bool restore_state(util::BinaryReader& r);

 private:
  std::vector<Parameter*> params_;
  Options opts_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  std::size_t t_ = 0;
};

}  // namespace capes::nn
