#include "nn/matrix.hpp"

#include "util/thread_pool.hpp"

namespace capes::nn {

namespace {

/// Run fn(row) over [0, n), via the pool when given. Templated (not
/// std::function) so the serial path stays allocation-free — the closure
/// would exceed std::function's inline buffer and hit the heap per call.
template <typename Fn>
void for_rows(std::size_t n, util::ThreadPool* pool, const Fn& fn) {
  if (pool != nullptr && n >= 16) {
    pool->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

void matmul_nn(const Matrix& a, const Matrix& b, Matrix& c,
               util::ThreadPool* pool) {
  assert(a.cols() == b.rows());
  const std::size_t n = a.rows();
  const std::size_t k = a.cols();
  const std::size_t m = b.cols();
  c.resize(n, m);
  for_rows(n, pool, [&](std::size_t i) {
    float* crow = c.row(i);
    const float* arow = a.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (std::size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  });
}

void matmul_nt(const Matrix& a, const Matrix& b, Matrix& c,
               util::ThreadPool* pool) {
  assert(a.cols() == b.cols());
  const std::size_t n = a.rows();
  const std::size_t k = a.cols();
  const std::size_t m = b.rows();
  c.resize(n, m);
  for_rows(n, pool, [&](std::size_t i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (std::size_t j = 0; j < m; ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  });
}

void matmul_tn(const Matrix& a, const Matrix& b, Matrix& c,
               util::ThreadPool* pool) {
  assert(a.rows() == b.rows());
  const std::size_t k = a.rows();
  const std::size_t n = a.cols();
  const std::size_t m = b.cols();
  c.resize(n, m);
  // Accumulate outer products row by row of A/B; parallelize over output
  // rows to avoid write conflicts.
  for_rows(n, pool, [&](std::size_t i) {
    float* crow = c.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const float av = a.at(p, i);
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (std::size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  });
}

void add_row_vector(Matrix& c, const std::vector<float>& bias) {
  assert(bias.size() == c.cols());
  for (std::size_t i = 0; i < c.rows(); ++i) {
    float* crow = c.row(i);
    for (std::size_t j = 0; j < c.cols(); ++j) crow[j] += bias[j];
  }
}

void column_sums(const Matrix& m, std::vector<float>& out) {
  out.assign(m.cols(), 0.0f);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* row = m.row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) out[j] += row[j];
  }
}

}  // namespace capes::nn
