#pragma once
// The multi-layer perceptron the paper uses as its Q-network (§3.4): a
// stack of Dense layers with tanh between them and a linear output layer
// (one output per action). Supports forward/backward, checkpointing, hard
// copies and the soft target-network update theta- = (1-a)theta- + a*theta.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layers.hpp"
#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace capes::nn {

enum class Activation { kTanh, kRelu };

/// Feed-forward MLP. Construct with layer sizes
/// {input, hidden..., output}; the last layer is always linear.
class Mlp {
 public:
  /// `sizes` must have at least 2 entries. Weights are Xavier-initialized
  /// from `rng`.
  Mlp(const std::vector<std::size_t>& sizes, util::Rng& rng,
      Activation activation = Activation::kTanh);

  /// X: [batch, input] -> [batch, output]. Caches activations for backward.
  const Matrix& forward(const Matrix& x, util::ThreadPool* pool = nullptr);

  /// grad wrt output: [batch, output]. Accumulates parameter gradients.
  void backward(const Matrix& grad_out, util::ThreadPool* pool = nullptr);

  void zero_grad();

  /// All parameter tensors, in a stable order (for the optimizer and for
  /// checkpoints).
  std::vector<Parameter*> parameters();
  std::vector<const Parameter*> parameters() const;

  /// Total number of scalar parameters.
  std::size_t parameter_count() const;

  /// In-memory size of the model in bytes (values + gradients), the
  /// quantity Table 2 reports as "size of the DNN model".
  std::size_t memory_bytes() const;

  std::size_t input_size() const { return sizes_.front(); }
  std::size_t output_size() const { return sizes_.back(); }
  const std::vector<std::size_t>& layer_sizes() const { return sizes_; }
  Activation activation() const { return activation_; }

  /// Copy all parameter values from another MLP of identical shape.
  void copy_weights_from(const Mlp& other);

  /// Deep copy of shape + parameter values (gradients start zeroed).
  std::unique_ptr<Mlp> clone() const;

  /// Soft update: theta_this = (1 - alpha) * theta_this + alpha * theta_other.
  void soft_update_from(const Mlp& other, float alpha);

  /// Serialize weights (shape header + all parameter values).
  std::vector<std::uint8_t> serialize() const;

  /// Reconstruct from serialize() output. Returns nullptr on malformed or
  /// shape-incompatible data.
  static std::unique_ptr<Mlp> deserialize(const std::vector<std::uint8_t>& data);

  /// Convenience: save/load checkpoints to a file. Return false on error.
  bool save_checkpoint(const std::string& path) const;
  static std::unique_ptr<Mlp> load_checkpoint(const std::string& path);

 private:
  /// Private raw constructor used by deserialize (no init).
  struct RawTag {};
  Mlp(const std::vector<std::size_t>& sizes, Activation activation, RawTag);

  std::vector<std::size_t> sizes_;
  Activation activation_;
  std::vector<Dense> dense_;
  std::vector<Tanh> tanh_;
  std::vector<Relu> relu_;
};

}  // namespace capes::nn
