#include "nn/adam.hpp"

#include <cmath>

namespace capes::nn {

Adam::Adam(std::vector<Parameter*> params)
    : Adam(std::move(params), Options{}) {}

Adam::Adam(std::vector<Parameter*> params, Options opts)
    : params_(std::move(params)), opts_(opts) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto* p : params_) {
    m_.emplace_back(p->value.size(), 0.0f);
    v_.emplace_back(p->value.size(), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float b1 = opts_.beta1;
  const float b2 = opts_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  const float lr = opts_.learning_rate;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& value = params_[i]->value;
    const auto& grad = params_[i]->grad;
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < value.size(); ++j) {
      const float g = grad[j];
      m[j] = b1 * m[j] + (1.0f - b1) * g;
      v[j] = b2 * v[j] + (1.0f - b2) * g * g;
      const float mhat = m[j] / bias1;
      const float vhat = v[j] / bias2;
      value[j] -= lr * mhat / (std::sqrt(vhat) + opts_.epsilon);
    }
  }
}

void Adam::serialize_state(util::BinaryWriter& w) const {
  w.put_u64(static_cast<std::uint64_t>(t_));
  w.put_u32(static_cast<std::uint32_t>(params_.size()));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    w.put_f32_vector(m_[i]);
    w.put_f32_vector(v_[i]);
  }
}

bool Adam::restore_state(util::BinaryReader& r) {
  auto t = r.get_u64();
  auto count = r.get_u32();
  if (!t || !count || *count != params_.size()) return false;
  std::vector<std::vector<float>> m;
  std::vector<std::vector<float>> v;
  m.reserve(params_.size());
  v.reserve(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto mi = r.get_f32_vector();
    auto vi = r.get_f32_vector();
    if (!mi || !vi || mi->size() != params_[i]->value.size() ||
        vi->size() != params_[i]->value.size()) {
      return false;
    }
    m.push_back(std::move(*mi));
    v.push_back(std::move(*vi));
  }
  t_ = static_cast<std::size_t>(*t);
  m_ = std::move(m);
  v_ = std::move(v);
  return true;
}

}  // namespace capes::nn
