#include "nn/adam.hpp"

#include <cmath>

namespace capes::nn {

Adam::Adam(std::vector<Parameter*> params)
    : Adam(std::move(params), Options{}) {}

Adam::Adam(std::vector<Parameter*> params, Options opts)
    : params_(std::move(params)), opts_(opts) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto* p : params_) {
    m_.emplace_back(p->value.size(), 0.0f);
    v_.emplace_back(p->value.size(), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float b1 = opts_.beta1;
  const float b2 = opts_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  const float lr = opts_.learning_rate;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& value = params_[i]->value;
    const auto& grad = params_[i]->grad;
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < value.size(); ++j) {
      const float g = grad[j];
      m[j] = b1 * m[j] + (1.0f - b1) * g;
      v[j] = b2 * v[j] + (1.0f - b2) * g * g;
      const float mhat = m[j] / bias1;
      const float vhat = v[j] / bias2;
      value[j] -= lr * mhat / (std::sqrt(vhat) + opts_.epsilon);
    }
  }
}

}  // namespace capes::nn
