#pragma once
// capes::bus — the control-network transport abstraction (§3.3). In the
// paper, Monitoring Agents ship PI messages to the Interface Daemon and
// the daemon broadcasts checked actions to Control Agents over a real
// control network: messages arrive late, out of order, or not at all,
// and the Replay DB's missing-entry tolerance exists precisely to absorb
// that. A bus::Transport decides every message's fate; bus::Channel
// (channel.hpp) queues accepted messages until their delivery tick.
//
// Three implementations:
//  * SyncTransport — every message delivered on its send tick. Draining a
//    sync channel inside the same tick is bit-identical to the direct
//    function calls it replaced (the default, and the reproduction mode).
//  * SimTransport — seeded latency / jitter / drop model driven by the
//    simulator's tick clock. Per-message fates are *counter-based*: a
//    fate is a pure hash of (seed, topic, sender, send tick), never a
//    draw from a shared RNG stream, so results are identical no matter
//    how many worker threads publish concurrently or in what order.
//  * TcpTransport — the real control network. The local channel policy is
//    sync-like (nothing dropped, delivered on the send tick: TCP is a
//    reliable FIFO per peer, so local drain order matches sync order);
//    the socket machinery lives in src/net/ and the remote-brain wiring
//    in src/core/, keyed off TransportKind::kTcp and the host/port
//    fields here. Loss only happens when a peer dies, and is surfaced
//    through PhaseReport::messages_dropped.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace capes::bus {

/// A transport's verdict for one message.
struct Delivery {
  bool dropped = false;
  /// Earliest tick the message may be drained (>= send tick). Channels
  /// additionally clamp this so each sender's stream stays FIFO.
  std::int64_t deliver_tick = 0;
};

enum class TransportKind { kSync, kSim, kTcp };

/// Parsed form of a transport spec. The CLI / config grammar:
///   sync
///   sim[:latency_ticks=N,jitter=X,drop=P,seed=N]
///   tcp:host=H,port=N[,connect_timeout_ms=N,io_threads=N]
struct TransportOptions {
  TransportKind kind = TransportKind::kSync;
  /// Fixed delivery delay in sampling ticks (sim only).
  std::int64_t latency_ticks = 1;
  /// Extra random delay: per message, uniform in [0, jitter) ticks
  /// (floored; 0 disables). A jitter of 2.0 adds 0 or 1 extra ticks.
  double jitter = 0.0;
  /// Per-message drop probability in [0, 1).
  double drop = 0.0;
  /// Seed for the per-message fate hash. When not explicitly set (via
  /// spec/config/code), CapesSystem derives one from the experiment seed
  /// so a seeded run fixes its network realization too.
  std::uint64_t seed = 0;
  bool seed_explicit = false;
  /// Daemon address (tcp only; host is required, port in [1, 65535] —
  /// port 0 is reserved for "ephemeral, print what you got" in the
  /// daemon binary and rejected in specs).
  std::string tcp_host;
  std::int64_t tcp_port = 0;
  /// Connect retry budget: capes_agentd retries with capped backoff until
  /// this deadline (tcp only).
  std::int64_t connect_timeout_ms = 5000;
  /// Reserved for multi-endpoint daemons; today each endpoint owns
  /// exactly one I/O thread, so only 1..64 is accepted and values > 1
  /// change nothing yet.
  std::int64_t io_threads = 1;
};

/// Transport policy: decides each message's fate. Implementations must be
/// pure per (topic, sender, send_tick) — plan() may be called more than
/// once for one message (publishers pre-check the drop fate before paying
/// for encoding) and from concurrent worker threads.
class Transport {
 public:
  virtual ~Transport();

  /// The fate of the message `sender` sends on `topic` at `send_tick`.
  virtual Delivery plan(std::uint64_t topic, std::uint64_t sender,
                        std::int64_t send_tick) const = 0;

  /// "sync", "sim", or "tcp" (the spec scheme).
  virtual const char* name() const = 0;
};

/// Immediate delivery: deliver_tick == send_tick, nothing dropped.
class SyncTransport final : public Transport {
 public:
  Delivery plan(std::uint64_t topic, std::uint64_t sender,
                std::int64_t send_tick) const override;
  const char* name() const override { return "sync"; }
};

/// Seeded latency / jitter / drop model (see TransportOptions fields).
class SimTransport final : public Transport {
 public:
  explicit SimTransport(const TransportOptions& opts);

  Delivery plan(std::uint64_t topic, std::uint64_t sender,
                std::int64_t send_tick) const override;
  const char* name() const override { return "sim"; }

  const TransportOptions& options() const { return opts_; }

 private:
  TransportOptions opts_;
};

/// Local channel policy for the tcp control network: reliable FIFO, so
/// nothing dropped and delivery on the send tick (identical to sync —
/// which is what makes loopback tcp bit-identical to sync). The actual
/// socket I/O lives in net::Endpoint; this object only carries the
/// parsed connection options through the bus seam.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(const TransportOptions& opts);

  Delivery plan(std::uint64_t topic, std::uint64_t sender,
                std::int64_t send_tick) const override;
  const char* name() const override { return "tcp"; }

  const TransportOptions& options() const { return opts_; }

 private:
  TransportOptions opts_;
};

/// Fault-injection seam: wraps any inner transport and additionally
/// drops the messages a predicate condemns (control-network partition
/// windows), composing with — never replacing — the inner policy's own
/// latency / jitter / drop fates. The predicate must satisfy the same
/// contract as plan() itself: pure per (topic, sender, send_tick) and
/// safe to call from concurrent worker threads (the fault predicates in
/// sim/fault.hpp are pure hashes, so they qualify). name() forwards to
/// the inner transport: the wrapper changes fates, not the scheme.
class FaultingTransport final : public Transport {
 public:
  using DropFn = std::function<bool(std::uint64_t topic, std::uint64_t sender,
                                    std::int64_t send_tick)>;

  FaultingTransport(std::unique_ptr<Transport> inner, DropFn drop);

  Delivery plan(std::uint64_t topic, std::uint64_t sender,
                std::int64_t send_tick) const override;
  const char* name() const override { return inner_->name(); }

  Transport& inner() { return *inner_; }

 private:
  std::unique_ptr<Transport> inner_;
  DropFn drop_;
};

/// Build the transport `opts` describes.
std::unique_ptr<Transport> make_transport(const TransportOptions& opts);

/// Parse "sync" / "sim[:k=v,...]" / "tcp:host=..,port=..[,...]" into
/// *out. Returns false (with a human-readable *error echoing the
/// offending key or token, if non-null) on an unknown scheme, an unknown
/// option key, a malformed value, or an out-of-range value
/// (latency_ticks < 0, jitter < 0, drop outside [0, 1), port outside
/// [1, 65535], connect_timeout_ms < 0, io_threads outside [1, 64], or a
/// tcp spec missing host or port).
bool parse_transport_spec(std::string_view spec, TransportOptions* out,
                          std::string* error = nullptr);

/// Canonical spec string for `opts` ("sync", "sim:latency_ticks=..."
/// listing every sim knob with seed only when explicitly set, or
/// "tcp:host=..,port=..,connect_timeout_ms=..,io_threads=..").
/// Round-trips through parse_transport_spec.
std::string transport_spec_string(const TransportOptions& opts);

}  // namespace capes::bus
