#pragma once
// One message on a control-network channel: topic + payload + tick
// stamps. The payload type is the channel's: encoded PI bytes on the
// monitoring hop, absolute parameter vectors on the action hop.

#include <cstdint>

namespace capes::bus {

template <typename T>
struct Message {
  std::uint64_t topic = 0;
  std::uint64_t sender = 0;
  std::int64_t send_tick = 0;     ///< sampling tick the sender published at
  std::int64_t deliver_tick = 0;  ///< tick the transport delivers it
  T payload{};

  /// True when the transport delivered this message after its send tick
  /// (it spent at least one full sampling tick on the control network).
  bool late() const { return deliver_tick > send_tick; }
};

}  // namespace capes::bus
