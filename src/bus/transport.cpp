#include "bus/transport.hpp"

#include <cmath>
#include <cstdio>

#include "util/parse.hpp"

namespace capes::bus {

Transport::~Transport() = default;

Delivery SyncTransport::plan(std::uint64_t, std::uint64_t,
                             std::int64_t send_tick) const {
  return {false, send_tick};
}

SimTransport::SimTransport(const TransportOptions& opts) : opts_(opts) {}

namespace {

/// splitmix64 finalizer: the per-message fate hash. Statistically strong
/// enough for a drop/jitter model and, unlike a shared RNG stream,
/// order-independent: the fate of (topic, sender, tick) never depends on
/// which other messages were planned before it.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Map a 64-bit hash to a uniform double in [0, 1).
double to_unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

Delivery SimTransport::plan(std::uint64_t topic, std::uint64_t sender,
                            std::int64_t send_tick) const {
  // Two independent draws from one message key: advance the key through
  // the mixer once per draw (counter mode).
  std::uint64_t key = opts_.seed;
  key = mix64(key ^ mix64(topic ^ 0x746f706963ULL));
  key = mix64(key ^ mix64(sender ^ 0x73656e646572ULL));
  key = mix64(key ^ static_cast<std::uint64_t>(send_tick));

  const std::uint64_t drop_draw = mix64(key);
  if (opts_.drop > 0.0 && to_unit(drop_draw) < opts_.drop) {
    return {true, send_tick};
  }
  std::int64_t delay = opts_.latency_ticks;
  if (opts_.jitter > 0.0) {
    const std::uint64_t jitter_draw = mix64(key ^ 0x6a69747465ULL);
    delay += static_cast<std::int64_t>(
        std::floor(to_unit(jitter_draw) * opts_.jitter));
  }
  return {false, send_tick + delay};
}

TcpTransport::TcpTransport(const TransportOptions& opts) : opts_(opts) {}

Delivery TcpTransport::plan(std::uint64_t, std::uint64_t,
                            std::int64_t send_tick) const {
  // TCP is a reliable per-peer FIFO: the local channel never drops or
  // delays. Peer-death loss is counted at the endpoint, not planned here.
  return {false, send_tick};
}

FaultingTransport::FaultingTransport(std::unique_ptr<Transport> inner,
                                     DropFn drop)
    : inner_(std::move(inner)), drop_(std::move(drop)) {}

Delivery FaultingTransport::plan(std::uint64_t topic, std::uint64_t sender,
                                 std::int64_t send_tick) const {
  Delivery delivery = inner_->plan(topic, sender, send_tick);
  if (!delivery.dropped && drop_ && drop_(topic, sender, send_tick)) {
    delivery.dropped = true;
  }
  return delivery;
}

std::unique_ptr<Transport> make_transport(const TransportOptions& opts) {
  if (opts.kind == TransportKind::kSim) {
    return std::make_unique<SimTransport>(opts);
  }
  if (opts.kind == TransportKind::kTcp) {
    return std::make_unique<TcpTransport>(opts);
  }
  return std::make_unique<SyncTransport>();
}

namespace {

bool spec_fail(std::string* error, std::string message) {
  if (error) *error = std::move(message);
  return false;
}

}  // namespace

bool parse_transport_spec(std::string_view spec, TransportOptions* out,
                          std::string* error) {
  TransportOptions parsed;
  std::string_view scheme = spec;
  std::string_view opts_part;
  const std::size_t colon = spec.find(':');
  if (colon != std::string_view::npos) {
    scheme = spec.substr(0, colon);
    opts_part = spec.substr(colon + 1);
  }

  if (scheme == "sync") {
    parsed.kind = TransportKind::kSync;
    if (colon != std::string_view::npos) {
      return spec_fail(error, "transport 'sync' takes no options");
    }
  } else if (scheme == "sim") {
    parsed.kind = TransportKind::kSim;
  } else if (scheme == "tcp") {
    parsed.kind = TransportKind::kTcp;
  } else {
    return spec_fail(error, "unknown transport '" + std::string(scheme) +
                                "' (expected sync, sim, or tcp)");
  }

  bool saw_host = false;
  bool saw_port = false;
  while (!opts_part.empty()) {
    const std::size_t comma = opts_part.find(',');
    std::string_view item = opts_part.substr(0, comma);
    opts_part = comma == std::string_view::npos
                    ? std::string_view{}
                    : opts_part.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return spec_fail(error, "malformed transport option '" +
                                  std::string(item) + "' (expected key=value)");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (parsed.kind == TransportKind::kTcp) {
      if (key == "host") {
        if (value.empty()) {
          return spec_fail(error, "host must be non-empty");
        }
        parsed.tcp_host = std::string(value);
        saw_host = true;
      } else if (key == "port") {
        if (!util::parse_i64(value, &parsed.tcp_port) || parsed.tcp_port < 1 ||
            parsed.tcp_port > 65535) {
          return spec_fail(error, "port must be an integer in [1, 65535], "
                                  "got '" + std::string(value) + "'");
        }
        saw_port = true;
      } else if (key == "connect_timeout_ms") {
        if (!util::parse_i64(value, &parsed.connect_timeout_ms) ||
            parsed.connect_timeout_ms < 0) {
          return spec_fail(error, "connect_timeout_ms must be an integer "
                                  ">= 0, got '" + std::string(value) + "'");
        }
      } else if (key == "io_threads") {
        if (!util::parse_i64(value, &parsed.io_threads) ||
            parsed.io_threads < 1 || parsed.io_threads > 64) {
          return spec_fail(error, "io_threads must be an integer in [1, 64], "
                                  "got '" + std::string(value) + "'");
        }
      } else {
        return spec_fail(error, "unknown tcp transport option '" +
                                    std::string(key) + "' (expected host, "
                                    "port, connect_timeout_ms, or io_threads)");
      }
      continue;
    }
    if (key == "latency_ticks") {
      if (!util::parse_i64(value, &parsed.latency_ticks) ||
          parsed.latency_ticks < 0) {
        return spec_fail(error, "latency_ticks must be an integer >= 0, got '" +
                                    std::string(value) + "'");
      }
    } else if (key == "jitter") {
      if (!util::parse_double(value, &parsed.jitter) || parsed.jitter < 0.0) {
        return spec_fail(error, "jitter must be a number >= 0, got '" +
                                    std::string(value) + "'");
      }
    } else if (key == "drop") {
      if (!util::parse_double(value, &parsed.drop) || parsed.drop < 0.0 ||
          parsed.drop >= 1.0) {
        return spec_fail(error, "drop must be a probability in [0, 1), got '" +
                                    std::string(value) + "'");
      }
    } else if (key == "seed") {
      if (!util::parse_u64(value, &parsed.seed)) {
        return spec_fail(error, "seed must be an unsigned integer, got '" +
                                    std::string(value) + "'");
      }
      parsed.seed_explicit = true;
    } else {
      return spec_fail(error, "unknown transport option '" + std::string(key) +
                                  "' (expected latency_ticks, jitter, drop, "
                                  "or seed)");
    }
  }
  if (parsed.kind == TransportKind::kTcp) {
    if (!saw_host) {
      return spec_fail(error, "tcp transport requires host=.. in '" +
                                  std::string(spec) + "'");
    }
    if (!saw_port) {
      return spec_fail(error, "tcp transport requires port=.. in '" +
                                  std::string(spec) + "'");
    }
  }
  *out = parsed;
  return true;
}

std::string transport_spec_string(const TransportOptions& opts) {
  if (opts.kind == TransportKind::kSync) return "sync";
  if (opts.kind == TransportKind::kTcp) {
    return "tcp:host=" + opts.tcp_host + ",port=" +
           std::to_string(opts.tcp_port) +
           ",connect_timeout_ms=" + std::to_string(opts.connect_timeout_ms) +
           ",io_threads=" + std::to_string(opts.io_threads);
  }
  std::string spec = "sim:latency_ticks=" + std::to_string(opts.latency_ticks);
  // %.17g is the shortest printf precision that reproduces any double
  // exactly, keeping the documented round-trip value-lossless.
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), ",jitter=%.17g,drop=%.17g",
                opts.jitter, opts.drop);
  spec += buffer;
  if (opts.seed_explicit) spec += ",seed=" + std::to_string(opts.seed);
  return spec;
}

}  // namespace capes::bus
