#pragma once
// bus::Channel — a bounded in-flight queue for one control-network hop.
// Publishers enqueue messages whose fate (drop / delivery tick) the
// channel's Transport decides; the owning endpoint drains everything due
// at the current sampling tick. One channel per topic: the Interface
// Daemon's PI inbox, and one action channel per control-domain shard.
//
// Concurrency contract: publish() is thread-safe (the monitoring fan-out
// publishes from worker threads); drain() and the counters are meant for
// the owning endpoint's serial tick loop, though they also lock so TSan
// stays clean if they race a straggling publisher. Determinism does not
// depend on publish order: fates are pure per-message hashes and drain
// sorts by (deliver tick, sender, send tick) — unique per message, since
// a sender publishes at most once per tick on a topic.
//
// Per-sender FIFO: a sender's messages never reorder with each other
// (each agent holds one connection to the daemon), so the stateful
// differential PI codec stays valid; messages from *different* senders
// reorder freely under jitter. The clamp lives here, not in the
// Transport, because it is per-(topic, sender) history.

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "bus/message.hpp"
#include "bus/transport.hpp"

namespace capes::bus {

/// Counter snapshot; deltas between snapshots give per-phase numbers.
struct ChannelStats {
  std::uint64_t published = 0;  ///< accepted into the queue
  std::uint64_t dropped = 0;    ///< transport drops + capacity overflows
  std::uint64_t delivered = 0;
  std::uint64_t late = 0;       ///< delivered with deliver_tick > send_tick

  ChannelStats& operator+=(const ChannelStats& other) {
    published += other.published;
    dropped += other.dropped;
    delivered += other.delivered;
    late += other.late;
    return *this;
  }
};

template <typename T>
class Channel {
 public:
  /// `capacity` bounds the in-flight queue; 0 = unbounded. A full channel
  /// drops new messages (counted). Publishers that must not lose encoder
  /// sync on an overflow (the differential PI hop) use unbounded
  /// channels; overflow-droppable hops carry absolute state. Note that
  /// under concurrent publishers *which* message overflows depends on
  /// arrival order — bound only serially-published channels when
  /// determinism matters.
  Channel(Transport& transport, std::uint64_t topic, std::size_t capacity = 0)
      : transport_(&transport), topic_(topic), capacity_(capacity) {}

  std::uint64_t topic() const { return topic_; }

  /// The transport's drop verdict for (sender, send_tick) — pure and
  /// lock-free, so a publisher can skip paying for encoding a message the
  /// transport will refuse (publish() then recomputes the same verdict).
  bool will_drop(std::uint64_t sender, std::int64_t send_tick) const {
    return transport_->plan(topic_, sender, send_tick).dropped;
  }

  /// Publish one message. Returns true when the message was accepted
  /// (queued for delivery at its transport-planned tick), false when the
  /// transport dropped it or the channel was full. Thread-safe.
  bool publish(std::uint64_t sender, std::int64_t send_tick, T payload) {
    Delivery fate = transport_->plan(topic_, sender, send_tick);
    std::lock_guard<std::mutex> lock(mu_);
    if (fate.dropped || (capacity_ > 0 && pending_.size() >= capacity_)) {
      ++stats_.dropped;
      return false;
    }
    if (last_deliver_.size() <= sender) last_deliver_.resize(sender + 1, 0);
    // FIFO clamp: never deliver before this sender's previous message.
    fate.deliver_tick = std::max(fate.deliver_tick, last_deliver_[sender]);
    last_deliver_[sender] = fate.deliver_tick;
    Message<T> msg;
    msg.topic = topic_;
    msg.sender = sender;
    msg.send_tick = send_tick;
    msg.deliver_tick = fate.deliver_tick;
    msg.payload = std::move(payload);
    pending_.push_back(std::move(msg));
    ++stats_.published;
    return true;
  }

  /// Deliver every message due at `now_tick` (deliver_tick <= now_tick)
  /// to `fn(Message<T>&)`, in (deliver tick, sender, send tick) order.
  /// The reference is mutable so an endpoint may move the payload out
  /// (e.g. to recycle its buffer); the ticks are still valid afterwards.
  /// Returns the number delivered. Must only be called by the owning
  /// endpoint's single tick thread — the due-message scratch is a member
  /// so the steady-state drain reuses its capacity instead of
  /// allocating.
  template <typename Fn>
  std::size_t drain(std::int64_t now_tick, Fn&& fn) {
    return drain_batch(now_tick, [&fn](std::vector<Message<T>>& due) {
      for (Message<T>& msg : due) fn(msg);
    });
  }

  /// Like drain(), but hands the whole due batch — already in
  /// (deliver tick, sender, send tick) order — to
  /// `fn(std::vector<Message<T>>&)` in one call, so an endpoint can fan
  /// independent per-message work out across threads before a serial
  /// in-order commit (the daemon's parallel PI decode). Same ordering,
  /// counters, and threading contract as drain().
  template <typename Fn>
  std::size_t drain_batch(std::int64_t now_tick, Fn&& fn) {
    std::vector<Message<T>>& due = drain_scratch_;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = std::partition(
          pending_.begin(), pending_.end(),
          [now_tick](const Message<T>& m) { return m.deliver_tick > now_tick; });
      due.assign(std::make_move_iterator(it),
                 std::make_move_iterator(pending_.end()));
      pending_.erase(it, pending_.end());
    }
    std::sort(due.begin(), due.end(), [](const Message<T>& a, const Message<T>& b) {
      if (a.deliver_tick != b.deliver_tick) return a.deliver_tick < b.deliver_tick;
      if (a.sender != b.sender) return a.sender < b.sender;
      return a.send_tick < b.send_tick;
    });
    fn(due);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.delivered += due.size();
      for (const Message<T>& msg : due) {
        if (msg.late()) ++stats_.late;
      }
    }
    return due.size();
  }

  /// Messages accepted but not yet drained.
  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
  }

  ChannelStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  Transport* transport_;
  std::uint64_t topic_;
  std::size_t capacity_;

  mutable std::mutex mu_;
  std::vector<Message<T>> pending_;
  std::vector<Message<T>> drain_scratch_;   ///< due messages; owner-thread only
  std::vector<std::int64_t> last_deliver_;  ///< per-sender FIFO clamp
  ChannelStats stats_;
};

}  // namespace capes::bus
