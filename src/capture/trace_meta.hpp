#pragma once
// The capture file's meta blob: everything a replayer needs to rebuild a
// bit-identical Replay DB + DRL Engine from the trace alone. Kept as
// plain scalars (no core types) so the capture module stays util-only;
// core converts CapesOptions <-> TraceMeta at the boundary.
//
// This is a dedicated binary section rather than a conf-key dump on
// purpose: several fields that bit-identical replay depends on (the
// engine and DQN seeds, double-DQN, the epsilon bump schedule, replay
// retention) have no conf key today, and the meta must never silently
// lose one of them.

#include <cstdint>
#include <optional>
#include <vector>

namespace capes::capture {

struct TraceMeta {
  // --- topology ----------------------------------------------------------
  std::uint32_t num_domains = 1;
  std::uint32_t num_nodes = 0;
  std::uint32_t pis_per_node = 0;
  std::uint32_t num_actions = 0;
  double sampling_tick_s = 1.0;  ///< realtime pacing unit for replay

  // --- engine + DQN (everything that shapes the RNG/weight streams) ------
  std::uint64_t engine_seed = 0;
  std::uint64_t dqn_seed = 0;
  bool use_double_dqn = false;
  bool use_target_network = true;
  std::uint8_t loss_kind = 0;   ///< rl::LossKind value
  std::uint8_t activation = 0;  ///< nn::Activation value
  std::uint32_t num_hidden_layers = 2;
  std::uint32_t hidden_size = 0;
  float gamma = 0.99f;
  float learning_rate = 1e-4f;
  float target_update_alpha = 0.01f;
  std::uint32_t minibatch_size = 32;
  std::uint32_t train_steps_per_tick = 1;
  double eval_epsilon = 0.05;
  double epsilon_initial = 1.0;
  double epsilon_final = 0.05;
  std::int64_t epsilon_anneal_ticks = 7200;
  double epsilon_bump_value = 0.2;
  std::int64_t epsilon_bump_ticks = 600;

  // --- replay DB ----------------------------------------------------------
  std::uint32_t ticks_per_observation = 10;
  double missing_tolerance = 0.2;
  std::uint64_t max_ticks_retained = 0;

  /// Fingerprint of the online network at capture start. A replayed
  /// engine whose fresh weights do not match started from a different
  /// state (e.g. the live run restored a learner checkpoint first) —
  /// the round-trip guarantee does not hold and tools should warn.
  std::uint32_t initial_weights_fingerprint = 0;

  std::vector<std::uint8_t> encode() const;
  /// nullopt on a bad magic/version or a truncated blob.
  static std::optional<TraceMeta> decode(const std::vector<std::uint8_t>& blob);
};

}  // namespace capes::capture
