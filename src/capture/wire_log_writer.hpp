#pragma once
// Asynchronous capture sink for the flight recorder. The control thread
// calls record() at the daemon boundary; a dedicated writer thread frames
// and appends records to the capture file. The hand-off mirrors the async
// learner's slot-recycling scheme (src/core/drl_engine.cpp): a fixed pool
// of record slots circulates between a free ring and a work ring, so the
// warm tick path copies bytes into recycled capacity and performs no
// allocation. The producer NEVER blocks — when the pool is exhausted the
// record is shed and counted, and the final drop count is patched into
// the file header on close so the reader can tell a lossy capture apart
// from a faithful one.
//
// Concurrency contract: record() is single-producer — all bus drains run
// on the control thread, so every capture point already serializes there.
// close() (and the destructor) must also run on the producer thread.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "capture/wire_format.hpp"
#include "util/spsc_ring.hpp"

namespace capes::capture {

struct WireLogWriterOptions {
  std::string path;
  /// Slots in flight between the control thread and the writer thread.
  /// Rounded up to a power of two. The default absorbs multi-second file
  /// sink stalls at paper-scale traffic (~50 records/tick) before
  /// shedding anything.
  std::size_t ring_capacity = 8192;
  /// fflush() cadence on the writer thread, in records. 0 = only on close.
  std::size_t flush_every_records = 256;
  /// Initial payload capacity reserved per slot, so the warm tick path
  /// never grows a cold slot's buffer. Sized above any record the daemon
  /// emits at paper scale (PI status frames are the largest).
  std::size_t payload_reserve = 512;
};

class WireLogWriter {
 public:
  /// Opens `opts.path`, writes the file header (with `meta` embedded) and
  /// starts the writer thread. Check ok() afterwards — a writer that
  /// failed to open turns every record() into a counted drop.
  WireLogWriter(WireLogWriterOptions opts, const std::vector<std::uint8_t>& meta);
  ~WireLogWriter();

  WireLogWriter(const WireLogWriter&) = delete;
  WireLogWriter& operator=(const WireLogWriter&) = delete;

  /// True when the file opened and no write has failed since.
  bool ok() const {
    return opened_ && !write_failed_.load(std::memory_order_acquire);
  }

  /// Enqueue one record (producer thread only). Never blocks: sheds and
  /// counts the record when no slot is free.
  void record(RecordType type, std::int64_t tick, std::uint64_t topic,
              std::uint64_t sender, const void* payload, std::size_t size);

  /// Convenience: payload = `count` little-endian f64 values.
  void record_f64s(RecordType type, std::int64_t tick, std::uint64_t topic,
                   std::uint64_t sender, const double* values,
                   std::size_t count);

  std::uint64_t records_logged() const {
    return records_logged_.load(std::memory_order_relaxed);
  }
  std::uint64_t records_dropped() const {
    return records_dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

  /// Drain the work ring, join the writer thread, patch the drop count
  /// into the header and close the file. Idempotent. Returns ok().
  bool close();

 private:
  struct Slot {
    WireRecord rec;
  };

  void writer_loop();
  bool write_record(const WireRecord& rec);

  WireLogWriterOptions opts_;
  std::FILE* file_ = nullptr;
  bool opened_ = false;
  bool closed_ = false;

  std::vector<std::unique_ptr<Slot>> pool_;
  util::SpscRing<Slot*> free_ring_;  ///< writer thread -> control thread
  util::SpscRing<Slot*> work_ring_;  ///< control thread -> writer thread
  std::thread writer_thread_;

  std::vector<std::uint8_t> f64_scratch_;  ///< producer-side, recycled

  std::atomic<std::uint64_t> records_logged_{0};
  std::atomic<std::uint64_t> records_dropped_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<bool> write_failed_{false};
};

}  // namespace capes::capture
