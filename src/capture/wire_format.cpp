#include "capture/wire_format.hpp"

#include "util/crc32.hpp"
#include "util/frame.hpp"

namespace capes::capture {

void encode_record_fixed(const WireRecord& record, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(record.type);
  util::put_le64(out + 1, static_cast<std::uint64_t>(record.tick));
  util::put_le64(out + 9, record.topic);
  util::put_le64(out + 17, record.sender);
}

std::uint32_t record_crc(const WireRecord& record) {
  std::uint8_t fixed[kRecordCrcFixedBytes];
  encode_record_fixed(record, fixed);
  std::uint32_t crc = util::crc32(fixed, sizeof(fixed));
  if (!record.payload.empty()) {
    crc = util::crc32_update(crc, record.payload.data(), record.payload.size());
  }
  return crc;
}

}  // namespace capes::capture
