#include "capture/wire_format.hpp"

#include "util/crc32.hpp"

namespace capes::capture {

namespace {

void put_le64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

}  // namespace

void encode_record_fixed(const WireRecord& record, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(record.type);
  put_le64(out + 1, static_cast<std::uint64_t>(record.tick));
  put_le64(out + 9, record.topic);
  put_le64(out + 17, record.sender);
}

std::uint32_t record_crc(const WireRecord& record) {
  std::uint8_t fixed[kRecordCrcFixedBytes];
  encode_record_fixed(record, fixed);
  std::uint32_t crc = util::crc32(fixed, sizeof(fixed));
  if (!record.payload.empty()) {
    crc = util::crc32_update(crc, record.payload.data(), record.payload.size());
  }
  return crc;
}

}  // namespace capes::capture
