#pragma once
// Validate-before-use reader for flight-recorder captures. Mirrors the
// WAL recovery contract (src/waldb/wal.cpp): every record's CRC is
// checked before its payload is surfaced, and the first torn or corrupt
// frame truncates the capture there — everything before it replays,
// everything from it onward is counted and reported, never delivered.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "capture/wire_format.hpp"

namespace capes::capture {

struct ReadStats {
  std::uint64_t valid_records = 0;
  /// Frames lost to a torn/corrupt tail. Counted by walking the length
  /// prefixes of the dead region, so for genuinely scrambled bytes this
  /// is an estimate (always >= 1 when any tail was cut).
  std::uint64_t truncated_records = 0;
  std::uint64_t truncated_bytes = 0;
  /// Records the live run's capture ring shed (from the file header). A
  /// nonzero count means the capture is lossy and differential PI
  /// decoding may desynchronize — replay tools should warn.
  std::uint64_t dropped_records = 0;
};

class WireLogReader {
 public:
  /// Load and validate `path`'s header. On failure returns false and
  /// describes the problem in `*error` (never partially usable).
  bool open(const std::string& path, std::string* error);

  /// The meta blob embedded at capture time (TraceMeta::decode it).
  const std::vector<std::uint8_t>& meta() const { return meta_; }

  /// Read the next valid record. Returns false at end of capture — clean
  /// EOF or torn tail alike; stats() tells them apart.
  bool next(WireRecord* out);

  /// True once next() has returned false because of a torn/corrupt tail
  /// (as opposed to a clean end of file).
  bool tail_truncated() const { return tail_truncated_; }

  const ReadStats& stats() const { return stats_; }

 private:
  void truncate_tail_here();

  std::vector<std::uint8_t> data_;
  std::vector<std::uint8_t> meta_;
  std::size_t cursor_ = 0;
  bool tail_truncated_ = false;
  bool done_ = false;
  ReadStats stats_;
};

}  // namespace capes::capture
