#include "capture/trace_meta.hpp"

#include "util/serialize.hpp"

namespace capes::capture {

namespace {
constexpr std::uint32_t kMetaMagic = 0x4d545043u;  // "CPTM"
constexpr std::uint32_t kMetaVersion = 1;
}  // namespace

std::vector<std::uint8_t> TraceMeta::encode() const {
  util::BinaryWriter w;
  w.put_u32(kMetaMagic);
  w.put_u32(kMetaVersion);
  w.put_u32(num_domains);
  w.put_u32(num_nodes);
  w.put_u32(pis_per_node);
  w.put_u32(num_actions);
  w.put_f64(sampling_tick_s);
  w.put_u64(engine_seed);
  w.put_u64(dqn_seed);
  w.put_u8(use_double_dqn ? 1 : 0);
  w.put_u8(use_target_network ? 1 : 0);
  w.put_u8(loss_kind);
  w.put_u8(activation);
  w.put_u32(num_hidden_layers);
  w.put_u32(hidden_size);
  w.put_f32(gamma);
  w.put_f32(learning_rate);
  w.put_f32(target_update_alpha);
  w.put_u32(minibatch_size);
  w.put_u32(train_steps_per_tick);
  w.put_f64(eval_epsilon);
  w.put_f64(epsilon_initial);
  w.put_f64(epsilon_final);
  w.put_i64(epsilon_anneal_ticks);
  w.put_f64(epsilon_bump_value);
  w.put_i64(epsilon_bump_ticks);
  w.put_u32(ticks_per_observation);
  w.put_f64(missing_tolerance);
  w.put_u64(max_ticks_retained);
  w.put_u32(initial_weights_fingerprint);
  return w.take();
}

std::optional<TraceMeta> TraceMeta::decode(
    const std::vector<std::uint8_t>& blob) {
  util::BinaryReader r(blob);
  const auto magic = r.get_u32();
  const auto version = r.get_u32();
  if (!magic || *magic != kMetaMagic || !version || *version != kMetaVersion) {
    return std::nullopt;
  }
  TraceMeta m;
  auto u32 = [&r](std::uint32_t* out) {
    const auto v = r.get_u32();
    if (v) *out = *v;
    return v.has_value();
  };
  auto u64 = [&r](std::uint64_t* out) {
    const auto v = r.get_u64();
    if (v) *out = *v;
    return v.has_value();
  };
  auto i64 = [&r](std::int64_t* out) {
    const auto v = r.get_i64();
    if (v) *out = *v;
    return v.has_value();
  };
  auto f32 = [&r](float* out) {
    const auto v = r.get_f32();
    if (v) *out = *v;
    return v.has_value();
  };
  auto f64 = [&r](double* out) {
    const auto v = r.get_f64();
    if (v) *out = *v;
    return v.has_value();
  };
  auto boolean = [&r](bool* out) {
    const auto v = r.get_u8();
    if (v) *out = *v != 0;
    return v.has_value();
  };
  auto u8 = [&r](std::uint8_t* out) {
    const auto v = r.get_u8();
    if (v) *out = *v;
    return v.has_value();
  };
  const bool ok =
      u32(&m.num_domains) && u32(&m.num_nodes) && u32(&m.pis_per_node) &&
      u32(&m.num_actions) && f64(&m.sampling_tick_s) && u64(&m.engine_seed) &&
      u64(&m.dqn_seed) && boolean(&m.use_double_dqn) &&
      boolean(&m.use_target_network) && u8(&m.loss_kind) && u8(&m.activation) &&
      u32(&m.num_hidden_layers) && u32(&m.hidden_size) && f32(&m.gamma) &&
      f32(&m.learning_rate) && f32(&m.target_update_alpha) &&
      u32(&m.minibatch_size) && u32(&m.train_steps_per_tick) &&
      f64(&m.eval_epsilon) && f64(&m.epsilon_initial) && f64(&m.epsilon_final) &&
      i64(&m.epsilon_anneal_ticks) && f64(&m.epsilon_bump_value) &&
      i64(&m.epsilon_bump_ticks) && u32(&m.ticks_per_observation) &&
      f64(&m.missing_tolerance) && u64(&m.max_ticks_retained) &&
      u32(&m.initial_weights_fingerprint);
  if (!ok) return std::nullopt;
  return m;
}

}  // namespace capes::capture
