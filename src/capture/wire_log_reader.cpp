#include "capture/wire_log_reader.hpp"

#include "util/frame.hpp"
#include "util/serialize.hpp"

namespace capes::capture {

using util::get_le32;
using util::get_le64;

bool WireLogReader::open(const std::string& path, std::string* error) {
  auto bytes = util::read_file(path);
  if (!bytes) {
    if (error) *error = "cannot read capture file " + path;
    return false;
  }
  data_ = std::move(*bytes);

  // Header: magic + version + dropped_records + meta_len + meta.
  if (data_.size() < 20) {
    if (error) *error = "capture file too short for header: " + path;
    return false;
  }
  if (get_le32(data_.data()) != kWireMagic) {
    if (error) *error = "not a capture file (bad magic): " + path;
    return false;
  }
  const std::uint32_t version = get_le32(data_.data() + 4);
  if (version != kWireVersion) {
    if (error) {
      *error = "unsupported capture version " + std::to_string(version) +
               ": " + path;
    }
    return false;
  }
  stats_.dropped_records = get_le64(data_.data() + kDroppedRecordsOffset);
  const std::uint32_t meta_len = get_le32(data_.data() + 16);
  if (data_.size() - 20 < meta_len) {
    if (error) *error = "capture meta truncated: " + path;
    return false;
  }
  meta_.assign(data_.begin() + 20, data_.begin() + 20 + meta_len);
  cursor_ = 20 + meta_len;
  return true;
}

bool WireLogReader::next(WireRecord* out) {
  if (done_) return false;
  const std::size_t remaining = data_.size() - cursor_;
  if (remaining == 0) {
    done_ = true;
    return false;  // clean EOF
  }
  if (remaining < kRecordFixedBytes) {
    truncate_tail_here();
    return false;
  }
  const std::uint8_t* frame = data_.data() + cursor_;
  const std::uint32_t payload_len = get_le32(frame);
  if (remaining - kRecordFixedBytes < payload_len) {
    truncate_tail_here();
    return false;
  }
  const std::uint32_t stored_crc = get_le32(frame + 4);
  out->type = static_cast<RecordType>(frame[8]);
  out->tick = static_cast<std::int64_t>(get_le64(frame + 9));
  out->topic = get_le64(frame + 17);
  out->sender = get_le64(frame + 25);
  const std::uint8_t* payload = frame + kRecordFixedBytes;
  out->payload.assign(payload, payload + payload_len);
  if (record_crc(*out) != stored_crc) {
    out->payload.clear();  // validate-before-use: never surface bad bytes
    truncate_tail_here();
    return false;
  }
  cursor_ += kRecordFixedBytes + payload_len;
  ++stats_.valid_records;
  return true;
}

void WireLogReader::truncate_tail_here() {
  done_ = true;
  tail_truncated_ = true;
  stats_.truncated_bytes = data_.size() - cursor_;
  // Estimate how many frames the dead region held by walking its length
  // prefixes. The bytes are untrusted, so cap each stride at the region
  // end; a trailing partial frame counts as one.
  std::size_t pos = cursor_;
  while (pos < data_.size()) {
    ++stats_.truncated_records;
    if (data_.size() - pos < kRecordFixedBytes) break;
    const std::uint32_t len = get_le32(data_.data() + pos);
    const std::size_t stride = kRecordFixedBytes + len;
    if (stride > data_.size() - pos) break;
    pos += stride;
  }
}

}  // namespace capes::capture
