#pragma once
// Flight-recorder wire format: the on-disk framing shared by the capture
// writer and reader. A capture file is
//
//   [file header][record][record]...[record]
//
// File header: [u32 magic "CAPW"][u32 version][u64 dropped_records]
// [u32 meta_len][meta bytes]. `dropped_records` is written as 0 on open
// and patched in place on close with the number of records the capture
// ring had to shed (a lossy capture still replays, but the differential
// PI decoders may desynchronize — the reader surfaces the count so tools
// can warn).
//
// Record framing (the WAL idiom from src/waldb/wal.cpp): [u32 payload_len]
// [u32 crc][u8 type][i64 tick][u64 topic][u64 sender][payload bytes], all
// little-endian; crc covers type, tick, topic, sender and payload. A torn
// or corrupt record is detected by its CRC and everything from it onward
// is dropped during replay — validate-before-use, like the WAL.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace capes::capture {

inline constexpr std::uint32_t kWireMagic = 0x57504143u;    // "CAPW"
inline constexpr std::uint32_t kWireVersion = 1;
/// Byte offset of the dropped_records field inside the file header
/// (after magic + version), patched in place by WireLogWriter::close.
inline constexpr long kDroppedRecordsOffset = 8;
/// Fixed bytes per record before the payload: len + crc + type + tick +
/// topic + sender.
inline constexpr std::size_t kRecordFixedBytes = 4 + 4 + 1 + 8 + 8 + 8;
/// Bytes of the fixed part the CRC covers (type + tick + topic + sender).
inline constexpr std::size_t kRecordCrcFixedBytes = 1 + 8 + 8 + 8;

/// What one record captures. Values are the wire encoding — append only.
enum class RecordType : std::uint8_t {
  kStatus = 1,          ///< one PI message as delivered to the daemon
  kReward = 2,          ///< payload: f64 reward, f64 throughput, f64 latency
  kAction = 3,          ///< payload: u32 suggested, u32 recorded (post-veto)
  kBroadcast = 4,       ///< one checked-action broadcast (f64 parameters)
  kPhaseBegin = 5,      ///< payload: u8 RunPhase value
  kPhaseEnd = 6,        ///< payload: u8 RunPhase value
  kWorkloadChange = 7,  ///< §3.6 epsilon-bump marker, empty payload
  /// One fault-injection observation: sender is the fault node key (or
  /// the domain index for partition/degraded records), payload is one u8
  /// sim::FaultKind value. Start records (kinds 1..3) count a fault
  /// injected; the kDegraded marker (kind 0) counts one (domain, tick)
  /// with any fault active — together they let a replay rebuild the live
  /// run's per-phase fault counters exactly.
  kFault = 8,
};

/// One decoded record. The payload's meaning depends on `type`; tick is
/// the delivery tick (records appear in the file in delivery order, which
/// is exactly the order the daemon consumed them in the live run).
struct WireRecord {
  RecordType type = RecordType::kStatus;
  std::int64_t tick = 0;
  std::uint64_t topic = 0;
  std::uint64_t sender = 0;
  std::vector<std::uint8_t> payload;
};

/// Encode the CRC-covered fixed fields of a record into `out` (at least
/// kRecordCrcFixedBytes bytes), little-endian.
void encode_record_fixed(const WireRecord& record, std::uint8_t* out);

/// CRC32 over the fixed fields and payload of `record` (what the frame's
/// crc field stores).
std::uint32_t record_crc(const WireRecord& record);

}  // namespace capes::capture
