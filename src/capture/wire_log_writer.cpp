#include "capture/wire_log_writer.hpp"

#include <cstring>

#include "util/frame.hpp"
#include "util/logging.hpp"
#include "util/serialize.hpp"

namespace capes::capture {

using util::put_le32;
using util::put_le64;

WireLogWriter::WireLogWriter(WireLogWriterOptions opts,
                             const std::vector<std::uint8_t>& meta)
    : opts_(std::move(opts)),
      free_ring_(opts_.ring_capacity),
      work_ring_(opts_.ring_capacity) {
  file_ = std::fopen(opts_.path.c_str(), "wb");
  if (file_ == nullptr) {
    CAPES_LOG_ERROR("capture") << "cannot open capture file " << opts_.path;
    write_failed_.store(true, std::memory_order_release);
    closed_ = true;
    return;
  }

  util::BinaryWriter header;
  header.put_u32(kWireMagic);
  header.put_u32(kWireVersion);
  header.put_u64(0);  // dropped_records, patched in close()
  header.put_u32(static_cast<std::uint32_t>(meta.size()));
  header.put_raw(meta.data(), meta.size());
  if (std::fwrite(header.buffer().data(), 1, header.size(), file_) !=
      header.size()) {
    CAPES_LOG_ERROR("capture") << "cannot write capture header to "
                               << opts_.path;
    std::fclose(file_);
    file_ = nullptr;
    write_failed_.store(true, std::memory_order_release);
    closed_ = true;
    return;
  }
  bytes_written_.store(header.size(), std::memory_order_relaxed);

  // Populate the slot pool. free_ring_ capacity was rounded up to a power
  // of two, so every slot fits and the pushes cannot fail.
  pool_.reserve(free_ring_.capacity());
  for (std::size_t i = 0; i < free_ring_.capacity(); ++i) {
    pool_.push_back(std::make_unique<Slot>());
    // Pre-size every payload buffer: slots recycle in FIFO order, so
    // without this a cold slot meeting a large record would still
    // allocate mid-run. One record() payload above the reserve only ever
    // grows that slot once.
    pool_.back()->rec.payload.reserve(opts_.payload_reserve);
    free_ring_.try_push(pool_.back().get());
  }
  f64_scratch_.reserve(opts_.payload_reserve);

  opened_ = true;
  writer_thread_ = std::thread([this] { writer_loop(); });
}

WireLogWriter::~WireLogWriter() { close(); }

void WireLogWriter::record(RecordType type, std::int64_t tick,
                           std::uint64_t topic, std::uint64_t sender,
                           const void* payload, std::size_t size) {
  if (!opened_ || closed_) {
    records_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot* slot = nullptr;
  if (!free_ring_.try_pop(slot)) {
    // Pool exhausted: the file sink is behind. Shed rather than stall the
    // control thread; the reader learns the count from the header.
    records_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot->rec.type = type;
  slot->rec.tick = tick;
  slot->rec.topic = topic;
  slot->rec.sender = sender;
  const auto* bytes = static_cast<const std::uint8_t*>(payload);
  slot->rec.payload.assign(bytes, bytes + size);  // reuses slot capacity
  if (!work_ring_.try_push(std::move(slot))) {
    // Unreachable while slots are conserved (both rings hold the whole
    // pool), but never leak a slot if the invariant breaks.
    free_ring_.try_push(std::move(slot));
    records_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  records_logged_.fetch_add(1, std::memory_order_relaxed);
}

void WireLogWriter::record_f64s(RecordType type, std::int64_t tick,
                                std::uint64_t topic, std::uint64_t sender,
                                const double* values, std::size_t count) {
  f64_scratch_.resize(count * 8);  // capacity retained across calls
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &values[i], sizeof(bits));
    put_le64(f64_scratch_.data() + i * 8, bits);
  }
  record(type, tick, topic, sender, f64_scratch_.data(), f64_scratch_.size());
}

bool WireLogWriter::close() {
  if (closed_) return ok();
  closed_ = true;
  work_ring_.close();
  if (writer_thread_.joinable()) writer_thread_.join();
  free_ring_.close();
  if (file_ != nullptr) {
    // Patch the final drop count into the header so the reader can tell
    // a lossy capture from a faithful one.
    std::uint8_t dropped_le[8];
    put_le64(dropped_le, records_dropped_.load(std::memory_order_relaxed));
    if (std::fseek(file_, kDroppedRecordsOffset, SEEK_SET) != 0 ||
        std::fwrite(dropped_le, 1, sizeof(dropped_le), file_) !=
            sizeof(dropped_le)) {
      write_failed_.store(true, std::memory_order_release);
    }
    if (std::fclose(file_) != 0) {
      write_failed_.store(true, std::memory_order_release);
    }
    file_ = nullptr;
  }
  return ok();
}

void WireLogWriter::writer_loop() {
  std::size_t since_flush = 0;
  Slot* slot = nullptr;
  while (work_ring_.pop(slot)) {
    if (!write_record(slot->rec)) {
      write_failed_.store(true, std::memory_order_release);
    }
    free_ring_.try_push(std::move(slot));  // recycle; capacity is conserved
    if (opts_.flush_every_records != 0 &&
        ++since_flush >= opts_.flush_every_records) {
      std::fflush(file_);
      since_flush = 0;
    }
  }
  std::fflush(file_);
}

bool WireLogWriter::write_record(const WireRecord& rec) {
  if (write_failed_.load(std::memory_order_relaxed)) return false;
  std::uint8_t fixed[kRecordFixedBytes];
  put_le32(fixed, static_cast<std::uint32_t>(rec.payload.size()));
  put_le32(fixed + 4, record_crc(rec));
  encode_record_fixed(rec, fixed + 8);
  if (std::fwrite(fixed, 1, sizeof(fixed), file_) != sizeof(fixed)) {
    return false;
  }
  if (!rec.payload.empty() &&
      std::fwrite(rec.payload.data(), 1, rec.payload.size(), file_) !=
          rec.payload.size()) {
    return false;
  }
  bytes_written_.fetch_add(sizeof(fixed) + rec.payload.size(),
                           std::memory_order_relaxed);
  return true;
}

}  // namespace capes::capture
