#pragma once
// DRL Engine (§3.4): owns the deep Q-network and runs training steps
// against random minibatches from the Replay DB, concurrently with (in
// simulation: interleaved with) action computation. Also keeps the
// prediction-error history that Figure 5 plots.
//
// Training can run inline (kSync, the historical behaviour) or on a
// dedicated learner thread (kAsync): train_tick packs minibatches into
// pooled jobs and pushes them through a bounded SPSC ring; the learner
// trains, publishes an immutable acting-weight snapshot, and recycles the
// job. Minibatch sampling stays on the caller's thread in both modes, so
// the RNG stream — and therefore every weight update — is bit-identical
// between sync and async.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "rl/dqn.hpp"
#include "rl/epsilon.hpp"
#include "rl/replay_db.hpp"
#include "util/rng.hpp"
#include "util/spsc_ring.hpp"

namespace capes::util {
class ThreadPool;
}

namespace capes::waldb {
class Database;
}

namespace capes::core {

/// Where train_step runs: inline on the control thread, or on the
/// dedicated learner thread.
enum class LearnerMode { kSync, kAsync };

struct DrlEngineOptions {
  rl::DqnOptions dqn;
  rl::EpsilonSchedule::Options epsilon;
  std::size_t minibatch_size = 32;      // Table 1
  std::size_t train_steps_per_tick = 1;
  double eval_epsilon = 0.05;           ///< exploration when frozen/tuning
  std::uint64_t seed = 97;
  LearnerMode learner_mode = LearnerMode::kSync;
  /// Every N training ticks the learner persists its full state (weights,
  /// optimizer moments, step counter) through the checkpoint store. 0
  /// disables checkpointing. Applies to both learner modes.
  std::size_t checkpoint_ticks = 0;
  /// Capacity of the learner work/free rings (rounded up to a power of
  /// two, and to at least train_steps_per_tick + 1 so one tick's batches
  /// plus a checkpoint job always fit).
  std::size_t learner_queue_depth = 8;
};

class DrlEngine {
 public:
  explicit DrlEngine(DrlEngineOptions opts, rl::ReplayDb& replay);
  ~DrlEngine();

  DrlEngine(const DrlEngine&) = delete;
  DrlEngine& operator=(const DrlEngine&) = delete;

  /// Pick the action for tick `t` from the observation ending at `t`.
  /// Uses the annealing epsilon while training, `eval_epsilon` otherwise.
  /// Returns the NULL action when the observation is incomplete.
  /// The epsilon anneal advances one step per *training-mode* call, so
  /// baseline/tuned measurement phases never consume exploration budget.
  /// In async mode this first waits for all enqueued training to publish,
  /// so the acting weights match what sync mode would have used.
  std::size_t compute_action(std::int64_t t, bool training,
                             util::ThreadPool* pool = nullptr);

  /// Training-mode ticks seen so far (the epsilon schedule's clock).
  std::int64_t training_ticks() const { return training_ticks_; }

  /// Run up to `train_steps_per_tick` training steps (skipped while the
  /// replay DB cannot fill a minibatch). Returns steps actually run
  /// (async: enqueued — they are guaranteed to run before the next
  /// compute_action or sync point). With a pool, minibatch assembly and
  /// the sync-mode GEMM panels fan out; the RNG stream and the resulting
  /// weights are pool-independent. The async learner always trains
  /// pool-less, which by that same property yields identical weights.
  std::size_t train_tick(util::ThreadPool* pool = nullptr);

  /// §3.6: the Interface Daemon calls this when a new workload starts.
  /// The bump applies from the current training tick.
  void notify_workload_change();

  /// Block until every enqueued learner job has been trained and its
  /// weights published. No-op in sync mode or when idle.
  void sync_with_learner() const;

  /// End-of-phase barrier: sync_with_learner(), so reports and
  /// fingerprints taken after a phase reflect all of its training.
  void drain_learner() const { sync_with_learner(); }

  LearnerMode learner_mode() const { return opts_.learner_mode; }
  bool learner_thread_running() const { return learner_.joinable(); }

  /// Install the durable store for periodic learner checkpoints (waldb
  /// table "learner", key 0, CRC-framed by the WAL like every put). Must
  /// outlive the engine. Null detaches.
  void set_checkpoint_store(waldb::Database* db);

  /// Load the most recent checkpoint written through the store, restoring
  /// weights, optimizer state, train-step counter and the epsilon clock.
  /// Returns false (engine untouched) when no checkpoint exists or it is
  /// malformed. Call before training resumes — not concurrency-safe.
  bool restore_checkpoint(waldb::Database& db);

  std::size_t checkpoints_written() const {
    return checkpoints_written_.load(std::memory_order_acquire);
  }

  rl::Dqn& dqn() { return *dqn_; }
  const rl::Dqn& dqn() const { return *dqn_; }
  const rl::EpsilonSchedule& epsilon() const { return epsilon_; }
  double current_epsilon(std::int64_t t, bool training) const;

  /// (train_step index, |prediction error|) samples, one per step.
  /// Async-safe: waits for in-flight training first.
  const std::vector<std::pair<std::size_t, float>>& prediction_error_log() const {
    sync_with_learner();
    return prediction_errors_;
  }
  const std::vector<std::pair<std::size_t, float>>& loss_log() const {
    sync_with_learner();
    return losses_;
  }
  std::size_t total_train_steps() const {
    sync_with_learner();
    return dqn_->train_steps();
  }

  /// CRC32 of the online-network weights after all in-flight training.
  std::uint32_t weights_fingerprint() const {
    sync_with_learner();
    return dqn_->weights_fingerprint();
  }

  const DrlEngineOptions& options() const { return opts_; }

  /// Heap allocations observed inside the engine's per-tick hot region
  /// (minibatch assembly + inline training; the bounded log appends stay
  /// outside the bracket). The counter is process-wide during the
  /// bracketed window, so it is meaningful in the audited configuration
  /// (sync learner, no worker pool) and always 0 when the counting
  /// allocator hook is not linked into the binary.
  std::uint64_t hot_path_allocations() const { return hot_path_allocs_; }

 private:
  /// One unit of learner work, pooled and recycled through the free ring.
  struct TrainJob {
    enum class Kind { kTrain, kCheckpoint };
    Kind kind = Kind::kTrain;
    rl::Minibatch batch;
    /// Epsilon clock captured at enqueue time (checkpoint jobs persist it;
    /// the learner must not read the live counter).
    std::int64_t training_ticks = 0;
  };

  void start_learner();
  void stop_learner();
  void learner_loop();
  /// Grab a recycled job slot (the main-thread spare or the free ring),
  /// waiting on the learner if every slot is in flight.
  TrainJob* acquire_job();
  std::size_t train_tick_sync(util::ThreadPool* pool);
  std::size_t train_tick_async(util::ThreadPool* pool);
  void maybe_checkpoint_sync();
  void write_checkpoint(std::int64_t ticks_at_capture);

  DrlEngineOptions opts_;
  rl::ReplayDb& replay_;
  std::unique_ptr<rl::Dqn> dqn_;
  rl::EpsilonSchedule epsilon_;
  std::int64_t training_ticks_ = 0;
  util::Rng rng_;
  std::vector<float> obs_buffer_;
  rl::Minibatch sync_batch_;  ///< sync-mode minibatch scratch, capacity reused
  std::uint64_t hot_path_allocs_ = 0;
  /// Appended by whichever thread trains (main in sync, learner in
  /// async); readers go through sync_with_learner() first.
  std::vector<std::pair<std::size_t, float>> prediction_errors_;
  std::vector<std::pair<std::size_t, float>> losses_;

  // --- async learner state ---------------------------------------------
  std::vector<std::unique_ptr<TrainJob>> jobs_;
  std::unique_ptr<util::SpscRing<TrainJob*>> work_ring_;  ///< main -> learner
  std::unique_ptr<util::SpscRing<TrainJob*>> free_ring_;  ///< learner -> main
  /// Main-thread-local recycled slot: an acquired job that was not
  /// enqueued cannot go back on the free ring (main is its consumer, not
  /// its producer), so it is parked here instead.
  TrainJob* spare_job_ = nullptr;
  std::thread learner_;
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> completed_{0};

  // --- checkpointing -----------------------------------------------------
  waldb::Database* checkpoint_db_ = nullptr;
  std::size_t ticks_since_checkpoint_ = 0;
  std::atomic<std::size_t> checkpoints_written_{0};
};

}  // namespace capes::core
