#pragma once
// DRL Engine (§3.4): owns the deep Q-network and runs training steps
// against random minibatches from the Replay DB, concurrently with (in
// simulation: interleaved with) action computation. Also keeps the
// prediction-error history that Figure 5 plots.

#include <cstdint>
#include <memory>
#include <vector>

#include "rl/dqn.hpp"
#include "rl/epsilon.hpp"
#include "rl/replay_db.hpp"
#include "util/rng.hpp"

namespace capes::util {
class ThreadPool;
}

namespace capes::core {

struct DrlEngineOptions {
  rl::DqnOptions dqn;
  rl::EpsilonSchedule::Options epsilon;
  std::size_t minibatch_size = 32;      // Table 1
  std::size_t train_steps_per_tick = 1;
  double eval_epsilon = 0.05;           ///< exploration when frozen/tuning
  std::uint64_t seed = 97;
};

class DrlEngine {
 public:
  explicit DrlEngine(DrlEngineOptions opts, rl::ReplayDb& replay);

  /// Pick the action for tick `t` from the observation ending at `t`.
  /// Uses the annealing epsilon while training, `eval_epsilon` otherwise.
  /// Returns the NULL action when the observation is incomplete.
  /// The epsilon anneal advances one step per *training-mode* call, so
  /// baseline/tuned measurement phases never consume exploration budget.
  std::size_t compute_action(std::int64_t t, bool training,
                             util::ThreadPool* pool = nullptr);

  /// Training-mode ticks seen so far (the epsilon schedule's clock).
  std::int64_t training_ticks() const { return training_ticks_; }

  /// Run up to `train_steps_per_tick` training steps (skipped while the
  /// replay DB cannot fill a minibatch). Returns steps actually run. With
  /// a pool, minibatch assembly and the GEMM panels fan out; the RNG
  /// stream and the resulting weights are pool-independent.
  std::size_t train_tick(util::ThreadPool* pool = nullptr);

  /// §3.6: the Interface Daemon calls this when a new workload starts.
  /// The bump applies from the current training tick.
  void notify_workload_change();

  rl::Dqn& dqn() { return *dqn_; }
  const rl::Dqn& dqn() const { return *dqn_; }
  const rl::EpsilonSchedule& epsilon() const { return epsilon_; }
  double current_epsilon(std::int64_t t, bool training) const;

  /// (train_step index, |prediction error|) samples, one per step.
  const std::vector<std::pair<std::size_t, float>>& prediction_error_log() const {
    return prediction_errors_;
  }
  const std::vector<std::pair<std::size_t, float>>& loss_log() const {
    return losses_;
  }
  std::size_t total_train_steps() const { return dqn_->train_steps(); }

  const DrlEngineOptions& options() const { return opts_; }

 private:
  DrlEngineOptions opts_;
  rl::ReplayDb& replay_;
  std::unique_ptr<rl::Dqn> dqn_;
  rl::EpsilonSchedule epsilon_;
  std::int64_t training_ticks_ = 0;
  util::Rng rng_;
  std::vector<float> obs_buffer_;
  std::vector<std::pair<std::size_t, float>> prediction_errors_;
  std::vector<std::pair<std::size_t, float>> losses_;
};

}  // namespace capes::core
