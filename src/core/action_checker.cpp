#include "core/action_checker.hpp"

namespace capes::core {

void ActionChecker::add_rule(std::string name, Rule rule) {
  rules_.emplace_back(std::move(name), std::move(rule));
}

bool ActionChecker::check(const rl::DecodedAction& action,
                          const std::vector<double>& current_values) {
  if (action.null_action) return true;
  next_scratch_.assign(current_values.begin(), current_values.end());
  // apply() clamps into range, so the range check is implicit; rules see
  // the values that would actually be set.
  space_.apply(action, next_scratch_);
  for (const auto& [name, rule] : rules_) {
    if (!rule(next_scratch_)) {
      ++vetoed_;
      return false;
    }
  }
  return true;
}

}  // namespace capes::core
