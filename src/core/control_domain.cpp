#include "core/control_domain.hpp"

namespace capes::core {

ControlDomain::ControlDomain(std::size_t index, std::string name,
                             TargetSystemAdapter& adapter,
                             ObjectiveFunction objective,
                             std::size_t node_offset,
                             std::size_t action_offset,
                             std::size_t param_offset)
    : index_(index),
      name_(std::move(name)),
      adapter_(adapter),
      objective_(std::move(objective)),
      space_(adapter.tunable_parameters()),
      num_nodes_(adapter.num_nodes()),
      node_offset_(node_offset),
      action_offset_(action_offset),
      param_offset_(param_offset),
      param_values_(space_.initial_values()) {
  if (name_.empty()) {
    name_ = std::to_string(index_);
    name_.insert(name_.begin(), 'c');
  }
}

void ControlDomain::reset_parameters() {
  param_values_ = space_.initial_values();
  // set_parameters may schedule (e.g. a rate-limit change re-arming a
  // cluster's send loop) — keep those events in this domain's shard.
  const auto binding = bind_sim_shard();
  adapter_.set_parameters(param_values_);
}

void ControlDomain::add_monitoring_agent(std::unique_ptr<MonitoringAgent> agent) {
  monitoring_agents_.push_back(std::move(agent));
}

void ControlDomain::add_control_agent(std::unique_ptr<ControlAgent> agent) {
  control_agents_.push_back(std::move(agent));
}

std::uint64_t ControlDomain::monitoring_bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& agent : monitoring_agents_) total += agent->bytes_sent();
  return total;
}

}  // namespace capes::core
