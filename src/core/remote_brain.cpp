#include "core/remote_brain.hpp"

#include <cstdio>

#include "capture/wire_log_writer.hpp"
#include "core/control_agent.hpp"
#include "core/interface_daemon.hpp"
#include "net/socket.hpp"
#include "util/frame.hpp"
#include "util/serialize.hpp"

namespace capes::core {

std::vector<std::uint8_t> encode_hello(const HelloPayload& hello) {
  util::BinaryWriter w;
  w.put_u32(kWireProtoVersion);
  const std::vector<std::uint8_t> meta = hello.meta.encode();
  w.put_u32(static_cast<std::uint32_t>(meta.size()));
  w.put_raw(meta.data(), meta.size());
  w.put_u32(static_cast<std::uint32_t>(hello.domains.size()));
  for (const RemoteDomain& d : hello.domains) {
    w.put_u64(d.action_offset);
    w.put_u32(static_cast<std::uint32_t>(d.params.size()));
    for (const rl::TunableParameter& p : d.params) {
      w.put_string(p.name);
      w.put_f64(p.min_value);
      w.put_f64(p.max_value);
      w.put_f64(p.step);
      w.put_f64(p.initial_value);
    }
  }
  return w.take();
}

std::optional<HelloPayload> decode_hello(const std::vector<std::uint8_t>& blob) {
  util::BinaryReader r(blob);
  const auto version = r.get_u32();
  if (!version || *version != kWireProtoVersion) return std::nullopt;
  const auto meta_len = r.get_u32();
  if (!meta_len || *meta_len > r.remaining()) return std::nullopt;
  std::vector<std::uint8_t> meta_blob(*meta_len);
  if (!r.get_raw(meta_blob.data(), meta_blob.size())) return std::nullopt;
  const auto meta = capture::TraceMeta::decode(meta_blob);
  if (!meta) return std::nullopt;
  HelloPayload hello;
  hello.meta = *meta;
  const auto num_domains = r.get_u32();
  if (!num_domains || *num_domains == 0) return std::nullopt;
  hello.domains.reserve(*num_domains);
  for (std::uint32_t d = 0; d < *num_domains; ++d) {
    RemoteDomain domain;
    const auto offset = r.get_u64();
    const auto num_params = r.get_u32();
    if (!offset || !num_params) return std::nullopt;
    domain.action_offset = *offset;
    domain.params.reserve(*num_params);
    for (std::uint32_t p = 0; p < *num_params; ++p) {
      rl::TunableParameter param;
      auto name = r.get_string();
      const auto min_value = r.get_f64();
      const auto max_value = r.get_f64();
      const auto step = r.get_f64();
      const auto initial = r.get_f64();
      if (!name || !min_value || !max_value || !step || !initial) {
        return std::nullopt;
      }
      param.name = std::move(*name);
      param.min_value = *min_value;
      param.max_value = *max_value;
      param.step = *step;
      param.initial_value = *initial;
      domain.params.push_back(std::move(param));
    }
    hello.domains.push_back(std::move(domain));
  }
  return hello;
}

BrainClient::BrainClient(bus::Transport& transport, bus::TransportOptions opts,
                         net::EndpointOptions endpoint_opts)
    : opts_(std::move(opts)),
      endpoint_opts_(endpoint_opts),
      // Unbounded like the daemon's inbox: capacity drops would
      // desynchronize the differential PI codec. The tcp shed point is
      // the endpoint's outbound ring, where absolute framing and the
      // replay DB's missing-entry tolerance absorb the loss.
      inbox_(transport, kStatusTopic) {}

BrainClient::~BrainClient() { bye(0); }

bool BrainClient::connect(const capture::TraceMeta& meta,
                          std::vector<ControlDomain*> domains,
                          std::string* error) {
  domains_ = std::move(domains);
  std::string sock_error;
  const int fd =
      net::tcp_connect(opts_.tcp_host, static_cast<std::uint16_t>(opts_.tcp_port),
                       opts_.connect_timeout_ms, &sock_error);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot reach capes_daemond at " + opts_.tcp_host + ":" +
               std::to_string(opts_.tcp_port) + ": " + sock_error;
    }
    return false;
  }
  endpoint_ = std::make_unique<net::Endpoint>(fd, endpoint_opts_);

  HelloPayload hello;
  hello.meta = meta;
  hello.domains.reserve(domains_.size());
  for (const ControlDomain* domain : domains_) {
    RemoteDomain rd;
    rd.action_offset = domain->action_offset();
    rd.params = domain->space().parameters();
    hello.domains.push_back(std::move(rd));
  }
  const std::vector<std::uint8_t> blob = encode_hello(hello);
  if (!endpoint_->send(kFrameHello, 0, 0, 0, blob.data(), blob.size())) {
    if (error != nullptr) *error = "handshake send failed (link dead)";
    return false;
  }
  for (;;) {
    net::InSlot* slot = endpoint_->recv();
    if (slot == nullptr) {
      if (error != nullptr) {
        *error = "capes_daemond closed the connection during the handshake "
                 "(protocol-version mismatch or rejected Hello?)";
      }
      return false;
    }
    const net::Frame& f = slot->frame;
    if (f.type != kFrameHelloAck) {
      endpoint_->recycle(slot);
      continue;  // tolerate strays; the ack is next
    }
    if (f.payload.size() < 8 ||
        util::get_le32(f.payload.data()) != kWireProtoVersion) {
      endpoint_->recycle(slot);
      if (error != nullptr) {
        *error = "capes_daemond speaks a different protocol version";
      }
      return false;
    }
    fingerprint_ = util::get_le32(f.payload.data() + 4);
    endpoint_->recycle(slot);
    return true;
  }
}

void BrainClient::set_payload_recycler(PayloadRecycler recycler) {
  payload_recycler_ = std::move(recycler);
}

bool BrainClient::send_frame(std::uint8_t type, std::int64_t tick,
                             std::uint64_t topic, std::uint64_t sender,
                             const std::uint8_t* payload,
                             std::size_t payload_size) {
  if (endpoint_ == nullptr) {
    ++dead_drops_;
    return false;
  }
  return endpoint_->send(type, tick, topic, sender, payload, payload_size);
}

std::size_t BrainClient::flush_status(std::int64_t t) {
  return inbox_.drain(t, [this, t](bus::Message<std::vector<std::uint8_t>>& msg) {
    // Capture before the send, mirroring the daemon's drain: the record
    // carries the raw wire bytes under the same topic/sender/tick.
    if (capture_ != nullptr) {
      capture_->record(capture::RecordType::kStatus, t, kStatusTopic,
                       msg.sender, msg.payload.data(), msg.payload.size());
    }
    send_frame(frame_type(capture::RecordType::kStatus), t, kStatusTopic,
               msg.sender, msg.payload.data(), msg.payload.size());
    if (payload_recycler_) {
      payload_recycler_(msg.sender, std::move(msg.payload));
    }
  });
}

void BrainClient::send_reward(std::int64_t t, double reward,
                              double throughput_sum, double latency_mean) {
  std::uint8_t payload[24];
  util::put_le_f64(payload, reward);
  util::put_le_f64(payload + 8, throughput_sum);
  util::put_le_f64(payload + 16, latency_mean);
  send_frame(frame_type(capture::RecordType::kReward), t, 0, 0, payload,
             sizeof(payload));
}

void BrainClient::stash_broadcast(const net::Frame& frame) {
  const std::size_t domain =
      frame.topic >= kActionTopicBase
          ? static_cast<std::size_t>(frame.topic - kActionTopicBase)
          : domains_.size();
  if (domain >= domains_.size()) return;  // garbled topic: drop
  if (stash_count_ == stash_.size()) stash_.emplace_back();
  PendingBroadcast& pending = stash_[stash_count_++];
  pending.domain = domain;
  const std::size_t n = frame.payload.size() / 8;
  pending.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    pending.values[i] = util::get_le_f64(frame.payload.data() + 8 * i);
  }
}

void BrainClient::apply_broadcasts(std::int64_t t) {
  for (std::size_t i = 0; i < stash_count_; ++i) {
    PendingBroadcast& pending = stash_[i];
    ControlDomain* domain = domains_[pending.domain];
    if (capture_ != nullptr) {
      capture_->record_f64s(capture::RecordType::kBroadcast, t,
                            kActionTopicBase + domain->index(),
                            domain->index(), pending.values.data(),
                            pending.values.size());
    }
    domain->param_values().assign(pending.values.begin(),
                                  pending.values.end());
    // Applying parameters runs the target system's setters, which may
    // schedule simulator events — bind the owning domain's shard, as
    // the daemon's drain_actions does.
    const auto binding = domain->bind_sim_shard();
    for (const auto& agent : domain->control_agents()) {
      agent->on_action_message(domain->param_values());
    }
  }
  stash_count_ = 0;
}

TickOutcome BrainClient::end_tick(std::int64_t t, std::uint8_t mode) {
  TickOutcome out;
  send_frame(kFrameTickDone, t, 0, 0, &mode, 1);
  if (endpoint_ == nullptr) {
    out.link_alive = false;
    return out;
  }
  stash_count_ = 0;
  for (;;) {
    net::InSlot* slot = endpoint_->recv();
    if (slot == nullptr) {
      // The daemon vanished mid-tick: finish the tick with no action and
      // surface the loss through stats().dropped — never hang the loop.
      stash_count_ = 0;
      out.link_alive = false;
      ++dead_drops_;
      return out;
    }
    const net::Frame& f = slot->frame;
    if (f.type == frame_type(capture::RecordType::kBroadcast)) {
      stash_broadcast(f);
      endpoint_->recycle(slot);
      continue;
    }
    if (f.type == kFrameActionsDone && f.payload.size() >= 20) {
      out.suggested = util::get_le32(f.payload.data());
      out.recorded = util::get_le32(f.payload.data() + 4);
      out.train_steps = util::get_le32(f.payload.data() + 8);
      out.total_train_steps =
          static_cast<std::size_t>(util::get_le64(f.payload.data() + 12));
      endpoint_->recycle(slot);
      break;
    }
    endpoint_->recycle(slot);  // stray: ignore
  }
  total_train_steps_ = out.total_train_steps;
  if (capture_ != nullptr) {
    // Mirror apply_checked_action's record: the suggestion routes to the
    // shard whose action slice contains it (NULL belongs to shard 0).
    std::size_t shard = 0;
    if (out.suggested != 0) {
      while (shard + 1 < domains_.size() &&
             out.suggested >= domains_[shard + 1]->action_offset()) {
        ++shard;
      }
    }
    std::uint8_t payload[8];
    util::put_le32(payload, static_cast<std::uint32_t>(out.suggested));
    util::put_le32(payload + 4, static_cast<std::uint32_t>(out.recorded));
    capture_->record(capture::RecordType::kAction, t,
                     kActionTopicBase + domains_[shard]->index(), shard,
                     payload, sizeof(payload));
  }
  apply_broadcasts(t);
  return out;
}

void BrainClient::begin_phase(std::int64_t t, std::uint8_t phase) {
  send_frame(frame_type(capture::RecordType::kPhaseBegin), t, 0, 0, &phase, 1);
}

bool BrainClient::end_phase(std::int64_t t, std::uint8_t phase) {
  send_frame(frame_type(capture::RecordType::kPhaseEnd), t, 0, 0, &phase, 1);
  if (endpoint_ == nullptr) return false;
  for (;;) {
    net::InSlot* slot = endpoint_->recv();
    if (slot == nullptr) return false;
    const net::Frame& f = slot->frame;
    if (f.type == kFramePhaseEndAck && f.payload.size() >= 12) {
      fingerprint_ = util::get_le32(f.payload.data());
      total_train_steps_ =
          static_cast<std::size_t>(util::get_le64(f.payload.data() + 4));
      endpoint_->recycle(slot);
      return true;
    }
    endpoint_->recycle(slot);
  }
}

void BrainClient::reset_params(std::int64_t t) {
  send_frame(kFrameParamsReset, t, 0, 0, nullptr, 0);
}

void BrainClient::workload_change(std::int64_t t) {
  send_frame(frame_type(capture::RecordType::kWorkloadChange), t, 0, 0,
             nullptr, 0);
}

void BrainClient::bye(std::int64_t t) {
  if (endpoint_ == nullptr) return;
  send_frame(kFrameBye, t, 0, 0, nullptr, 0);
  endpoint_->close();  // lingers briefly so the Bye flushes
}

bus::ChannelStats BrainClient::stats() const {
  bus::ChannelStats stats = inbox_.stats();
  if (endpoint_ != nullptr) stats.dropped += endpoint_->send_dropped();
  stats.dropped += dead_drops_;
  return stats;
}

}  // namespace capes::core
