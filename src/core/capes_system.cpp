#include "core/capes_system.hpp"

#include <cassert>
#include <sstream>

namespace capes::core {

std::string RunResult::to_csv() const {
  std::ostringstream out;
  out << "tick,throughput_mbs,latency_ms,reward\n";
  const auto& tput = throughput.samples();
  const auto& lat = latency_ms.samples();
  for (std::size_t i = 0; i < tput.size(); ++i) {
    out << (start_tick + static_cast<std::int64_t>(i)) << ',' << tput[i] << ','
        << (i < lat.size() ? lat[i] : 0.0) << ','
        << (i < rewards.size() ? rewards[i] : 0.0) << '\n';
  }
  return out.str();
}

CapesSystem::CapesSystem(sim::Simulator& sim, TargetSystemAdapter& adapter,
                         CapesOptions opts, ObjectiveFunction objective)
    : sim_(sim), adapter_(adapter), opts_(std::move(opts)),
      objective_(objective ? std::move(objective)
                           : throughput_objective(opts.reward_scale_mbs)) {
  space_ = std::make_unique<rl::ActionSpace>(adapter_.tunable_parameters());
  param_values_ = space_->initial_values();

  opts_.replay.num_nodes = adapter_.num_nodes();
  opts_.replay.pis_per_node = adapter_.pis_per_node();
  if (!opts_.replay_db_dir.empty()) {
    db_ = std::make_unique<waldb::Database>();
    if (!db_->open(opts_.replay_db_dir)) db_.reset();
  }
  replay_ = std::make_unique<rl::ReplayDb>(opts_.replay, db_.get());

  daemon_ = std::make_unique<InterfaceDaemon>(*replay_, *space_,
                                              adapter_.num_nodes(),
                                              adapter_.pis_per_node());
  opts_.engine.dqn.num_actions = space_->num_actions();
  engine_ = std::make_unique<DrlEngine>(opts_.engine, *replay_);

  for (std::size_t n = 0; n < adapter_.num_nodes(); ++n) {
    monitoring_agents_.push_back(std::make_unique<MonitoringAgent>(
        n, adapter_, [this](const std::vector<std::uint8_t>& msg) {
          daemon_->on_status_message(msg);
        }));
    control_agents_.push_back(std::make_unique<ControlAgent>(n, adapter_));
    daemon_->register_control_agent(control_agents_.back().get());
  }
}

CapesSystem::~CapesSystem() {
  if (db_) db_->checkpoint();
}

void CapesSystem::reset_parameters() {
  param_values_ = space_->initial_values();
  adapter_.set_parameters(param_values_);
}

void CapesSystem::notify_workload_change() {
  engine_->notify_workload_change();
}

void CapesSystem::on_sampling_tick(RunResult& result, Mode mode) {
  const std::int64_t t = tick_;

  // 1. Monitoring Agents sample and ship PIs (stored in the replay DB).
  for (auto& agent : monitoring_agents_) agent->sample(t);

  // 2. Reward: objective-function output over the last tick's performance.
  const PerfSample perf = adapter_.sample_performance();
  const double reward = objective_(perf);
  daemon_->on_reward(t, reward);
  result.throughput.add(perf.throughput_mbs());
  result.latency_ms.add(perf.avg_latency_ms);
  result.rewards.push_back(reward);

  // 3. Action tick: the engine suggests, the daemon checks + broadcasts.
  if (mode == Mode::kTraining || mode == Mode::kTuned) {
    const std::size_t suggested =
        engine_->compute_action(t, mode == Mode::kTraining);
    daemon_->on_suggested_action(t, suggested, param_values_);
  } else {
    daemon_->on_suggested_action(t, 0, param_values_);  // NULL action
  }

  // 4. Training steps (the DRL Engine trains continuously, §3.4).
  if (mode == Mode::kTraining) {
    result.train_steps += engine_->train_tick();
  }
  ++tick_;
}

RunResult CapesSystem::run_phase(std::int64_t ticks, Mode mode) {
  RunResult result;
  result.start_tick = tick_;
  const auto tick_us = sim::seconds(opts_.sampling_tick_s);
  for (std::int64_t i = 0; i < ticks; ++i) {
    sim_.run_until(sim_.now() + tick_us);
    on_sampling_tick(result, mode);
  }
  result.end_tick = tick_;
  return result;
}

RunResult CapesSystem::run_training(std::int64_t ticks) {
  return run_phase(ticks, Mode::kTraining);
}

RunResult CapesSystem::run_baseline(std::int64_t ticks) {
  reset_parameters();
  return run_phase(ticks, Mode::kBaseline);
}

RunResult CapesSystem::run_tuned(std::int64_t ticks) {
  return run_phase(ticks, Mode::kTuned);
}

std::uint64_t CapesSystem::monitoring_bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& agent : monitoring_agents_) total += agent->bytes_sent();
  return total;
}

bool CapesSystem::save_model(const std::string& path) const {
  return engine_->dqn().save_checkpoint(path);
}

bool CapesSystem::load_model(const std::string& path) {
  return engine_->dqn().load_checkpoint(path);
}

}  // namespace capes::core
