#include "core/capes_system.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "capture/trace_meta.hpp"
#include "core/remote_brain.hpp"
#include "stats/changepoint.hpp"
#include "util/alloc_hook.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace capes::core {

namespace {

/// Everything a replayer needs to rebuild a bit-identical Replay DB + DRL
/// Engine, snapshotted at capture start. The fingerprint is taken after
/// any checkpoint restore, so a replay from fresh weights can detect (and
/// warn about) a live run that resumed mid-training.
capture::TraceMeta trace_meta_from(const CapesOptions& opts,
                                   std::size_t num_domains,
                                   std::size_t num_actions,
                                   std::uint32_t weights_fingerprint) {
  capture::TraceMeta meta;
  meta.num_domains = static_cast<std::uint32_t>(num_domains);
  meta.num_nodes = static_cast<std::uint32_t>(opts.replay.num_nodes);
  meta.pis_per_node = static_cast<std::uint32_t>(opts.replay.pis_per_node);
  meta.num_actions = static_cast<std::uint32_t>(num_actions);
  meta.sampling_tick_s = opts.sampling_tick_s;
  meta.engine_seed = opts.engine.seed;
  meta.dqn_seed = opts.engine.dqn.seed;
  meta.use_double_dqn = opts.engine.dqn.use_double_dqn;
  meta.use_target_network = opts.engine.dqn.use_target_network;
  meta.loss_kind = static_cast<std::uint8_t>(opts.engine.dqn.loss);
  meta.activation = static_cast<std::uint8_t>(opts.engine.dqn.activation);
  meta.num_hidden_layers =
      static_cast<std::uint32_t>(opts.engine.dqn.num_hidden_layers);
  meta.hidden_size = static_cast<std::uint32_t>(opts.engine.dqn.hidden_size);
  meta.gamma = opts.engine.dqn.gamma;
  meta.learning_rate = opts.engine.dqn.learning_rate;
  meta.target_update_alpha = opts.engine.dqn.target_update_alpha;
  meta.minibatch_size = static_cast<std::uint32_t>(opts.engine.minibatch_size);
  meta.train_steps_per_tick =
      static_cast<std::uint32_t>(opts.engine.train_steps_per_tick);
  meta.eval_epsilon = opts.engine.eval_epsilon;
  meta.epsilon_initial = opts.engine.epsilon.initial;
  meta.epsilon_final = opts.engine.epsilon.final_value;
  meta.epsilon_anneal_ticks = opts.engine.epsilon.anneal_ticks;
  meta.epsilon_bump_value = opts.engine.epsilon.bump_value;
  meta.epsilon_bump_ticks = opts.engine.epsilon.bump_ticks;
  meta.ticks_per_observation =
      static_cast<std::uint32_t>(opts.replay.ticks_per_observation);
  meta.missing_tolerance = opts.replay.missing_tolerance;
  meta.max_ticks_retained = opts.replay.max_ticks_retained;
  meta.initial_weights_fingerprint = weights_fingerprint;
  return meta;
}

}  // namespace

const char* phase_name(RunPhase phase) {
  switch (phase) {
    case RunPhase::kTraining: return "training";
    case RunPhase::kBaseline: return "baseline";
    case RunPhase::kTuned: return "tuned";
    case RunPhase::kIdle: break;
  }
  return "idle";
}

CapesSystem::CapesSystem(sim::Simulator& sim, TargetSystemAdapter& adapter,
                         CapesOptions opts, ObjectiveFunction objective)
    : CapesSystem(sim, std::vector<ControlDomainSpec>{{&adapter, nullptr, ""}},
                  std::move(opts), std::move(objective)) {}

CapesSystem::CapesSystem(sim::Simulator& sim,
                         const std::vector<ControlDomainSpec>& specs,
                         CapesOptions opts, ObjectiveFunction default_objective)
    : sim_(sim), opts_(std::move(opts)),
      objective_(default_objective
                     ? std::move(default_objective)
                     : throughput_objective(opts_.reward_scale_mbs)) {
  // Constructor preconditions fail fast in every build mode: a domain
  // with a missing adapter or a disagreeing PI width would otherwise
  // silently train on garbage observations (the codebase is
  // exception-free, so misuse aborts instead of throwing).
  if (specs.empty()) {
    std::fprintf(stderr, "CapesSystem: at least one ControlDomainSpec required\n");
    std::abort();
  }
  for (std::size_t d = 0; d < specs.size(); ++d) {
    if (specs[d].adapter == nullptr) {
      std::fprintf(stderr, "CapesSystem: spec %zu has a null adapter\n", d);
      std::abort();
    }
    if (specs[d].adapter->pis_per_node() != specs[0].adapter->pis_per_node()) {
      std::fprintf(stderr,
                   "CapesSystem: all domains must agree on pis_per_node "
                   "(domain %zu has %zu, domain 0 has %zu)\n",
                   d, specs[d].adapter->pis_per_node(),
                   specs[0].adapter->pis_per_node());
      std::abort();
    }
    for (std::size_t e = 0; e < d; ++e) {
      if (specs[e].adapter == specs[d].adapter) {
        std::fprintf(stderr,
                     "CapesSystem: specs %zu and %zu share one adapter; each "
                     "domain needs its own target system (shared sampling "
                     "state would double-read the per-tick deltas)\n",
                     e, d);
        std::abort();
      }
    }
  }
  const std::size_t pis = specs[0].adapter->pis_per_node();

  // Lay out the shared namespaces: each domain takes a contiguous slice
  // of the node, action, and parameter axes, in spec order.
  std::size_t node_offset = 0;
  std::size_t action_offset = 1;  // composite index 0 is the shared NULL
  std::size_t param_offset = 0;
  std::vector<rl::TunableParameter> composite_params;
  for (std::size_t d = 0; d < specs.size(); ++d) {
    const ControlDomainSpec& spec = specs[d];
    auto domain = std::make_unique<ControlDomain>(
        d, spec.name, *spec.adapter,
        spec.objective ? spec.objective : objective_, node_offset,
        action_offset, param_offset);
    node_offset += domain->num_nodes();
    action_offset += domain->num_slice_actions();
    param_offset += domain->num_parameters();
    for (const rl::TunableParameter& p : domain->space().parameters()) {
      rl::TunableParameter named = p;
      // Namespace parameter names only when there is something to
      // disambiguate, so single-domain reports stay as before.
      if (specs.size() > 1) named.name = domain->name() + "." + p.name;
      composite_params.push_back(std::move(named));
    }
    domains_.push_back(std::move(domain));
  }
  total_nodes_ = node_offset;
  space_ = std::make_unique<rl::ActionSpace>(std::move(composite_params));

  opts_.replay.num_nodes = total_nodes_;
  opts_.replay.pis_per_node = pis;
  opts_.engine.dqn.num_actions = space_->num_actions();

  // The control network: one transport behind every hop. A sim transport
  // without an explicit seed derives one from the engine seed, so a
  // seeded experiment fixes its network realization too.
  bus::TransportOptions transport_opts = opts_.transport;
  if (!transport_opts.seed_explicit) {
    transport_opts.seed = opts_.engine.seed ^ 0xb0575eedULL;
  }
  transport_ = bus::make_transport(transport_opts);
  const bool remote = transport_opts.kind == bus::TransportKind::kTcp;

  // The fault plan: seeded like the transport (one experiment seed fixes
  // the fault realization too), enforced partly here (partition windows
  // at the bus seam) and partly by the per-domain injectors below.
  fault_plan_ = opts_.faults;
  if (!fault_plan_.seed_explicit) {
    fault_plan_.seed = opts_.engine.seed ^ 0xfa0175eedULL;
  }
  if (fault_plan_.enabled() && remote) {
    // The builder rejects this combination with a proper error; reaching
    // here means a direct caller skipped validation — fail fast like the
    // other constructor preconditions.
    std::fprintf(stderr,
                 "CapesSystem: fault injection is not supported under the "
                 "tcp transport\n");
    std::abort();
  }
  if (fault_plan_.enabled() && fault_plan_.partition > 0.0) {
    // Partition windows drop a domain's control-plane messages at the
    // transport seam, composing with (never replacing) the inner
    // policy's latency / jitter / drop fates and surfacing in the same
    // ChannelStats::dropped -> messages_dropped accounting. The
    // predicate is a pure hash per (topic, sender, tick), so it obeys
    // the Transport contract under concurrent worker-thread publishes.
    std::vector<std::uint64_t> node_end;
    node_end.reserve(domains_.size());
    for (const auto& domain : domains_) {
      node_end.push_back(domain->node_offset() + domain->num_nodes());
    }
    const sim::FaultPlan plan = fault_plan_;
    transport_ = std::make_unique<bus::FaultingTransport>(
        std::move(transport_),
        [plan, node_end = std::move(node_end)](
            std::uint64_t topic, std::uint64_t sender, std::int64_t tick) {
          std::uint32_t domain = 0;
          if (topic == kStatusTopic) {
            // PI senders are global node ids; domains own contiguous
            // ranges in layout order.
            const auto it =
                std::upper_bound(node_end.begin(), node_end.end(), sender);
            if (it == node_end.end()) return false;
            domain = static_cast<std::uint32_t>(it - node_end.begin());
          } else if (topic >= kActionTopicBase &&
                     topic < kActionTopicBase + node_end.size()) {
            // One action-broadcast channel per daemon shard == domain.
            domain = static_cast<std::uint32_t>(topic - kActionTopicBase);
          } else {
            return false;
          }
          return sim::domain_partitioned(plan, domain, tick);
        });
  }

  std::vector<ControlDomain*> domain_ptrs;
  domain_ptrs.reserve(domains_.size());
  for (auto& domain : domains_) domain_ptrs.push_back(domain.get());

  if (!remote) {
    if (!opts_.replay_db_dir.empty()) {
      db_ = std::make_unique<waldb::Database>();
      if (!db_->open(opts_.replay_db_dir)) db_.reset();
    }
    replay_ = std::make_unique<rl::ReplayDb>(opts_.replay, db_.get());
    daemon_ = std::make_unique<InterfaceDaemon>(*replay_, domain_ptrs, pis,
                                                transport_.get());
    engine_ = std::make_unique<DrlEngine>(opts_.engine, *replay_);
    if (db_) {
      // Durable learner checkpoints ride the same WAL-framed store as the
      // replay tables; a restarted tuner resumes mid-training. The replay
      // cache itself is rebuilt from fresh samples, not reloaded.
      engine_->set_checkpoint_store(db_.get());
      engine_->restore_checkpoint(*db_);
    }
  } else {
    // tcp transport: the brain (Replay DB, Interface Daemon, DRL Engine)
    // lives in a capes_daemond; this process keeps the cluster, the
    // Monitoring/Control Agents, and a BrainClient connection. The Hello
    // ships the same TraceMeta snapshot a capture leads with, so the
    // daemon rebuilds the brain bit-identically to the in-process one.
    if (!opts_.replay_db_dir.empty()) {
      CAPES_LOG_WARN("capes") << "replay_db_dir is ignored under the tcp "
                                 "transport (the replay DB lives in "
                                 "capes_daemond)";
    }
    client_ = std::make_unique<BrainClient>(*transport_, transport_opts);
    std::string error;
    if (!client_->connect(trace_meta_from(opts_, domains_.size(),
                                          space_->num_actions(), 0),
                          domain_ptrs, &error)) {
      // Like the other constructor preconditions this fails fast: every
      // run method would dereference a half-connected control plane.
      std::fprintf(stderr, "CapesSystem: %s\n", error.c_str());
      std::exit(1);
    }
  }

  if (!opts_.capture_path.empty()) {
    capture::WireLogWriterOptions wopts;
    wopts.path = opts_.capture_path;
    wopts.ring_capacity = opts_.capture_ring;
    // The meta fingerprint is the engine's post-restore starting state —
    // under tcp that engine is remote, and the HelloAck reported it.
    const std::uint32_t fingerprint =
        remote ? client_->weights_fingerprint() : engine_->weights_fingerprint();
    capture_ = std::make_unique<capture::WireLogWriter>(
        wopts, trace_meta_from(opts_, domains_.size(), space_->num_actions(),
                               fingerprint)
                   .encode());
    if (!capture_->ok()) {
      CAPES_LOG_WARN("capture")
          << "capture disabled: cannot write " << opts_.capture_path;
      capture_.reset();
    } else if (remote) {
      client_->set_capture(capture_.get());
    } else {
      daemon_->set_capture(capture_.get());
    }
  }

  if (opts_.worker_threads > 0) {
    pool_ = std::make_unique<util::ThreadPool>(opts_.worker_threads);
  }
  if (opts_.worker_threads > 0 ||
      opts_.engine.learner_mode == LearnerMode::kAsync) {
    // Multiple threads may log (workers, the learner): route lines
    // through the async drain so they are never torn.
    util::Logger::instance().enable_async();
  }

  // CapesOptions::sim_shards is a request the hosting context satisfies
  // by sharding the simulator *before* constructing the system (the
  // builder does; direct callers use Simulator::configure_shards). A
  // request that was never honored would silently run the serial loop,
  // so fail fast like the other constructor preconditions.
  const std::size_t shards_requested =
      opts_.sim_shards == 0 ? domains_.size() : opts_.sim_shards;
  if (shards_requested > 1 && sim_.num_shards() == 1) {
    std::fprintf(stderr,
                 "CapesSystem: sim_shards = %zu requested but the simulator "
                 "has one shard; call Simulator::configure_shards first\n",
                 shards_requested);
    std::abort();
  }

  // Every domain owns one shard of the (possibly sharded) simulator
  // event loop, so barrier-time calls into its target system route their
  // scheduling to the right queue. The planner is the single source of
  // placement: runs start on its round-robin static plan (there is no
  // rate signal yet) and a kRate planner re-packs at phase boundaries.
  // With an unsharded simulator this binds everything to shard 0 — the
  // original behavior.
  planner_ =
      sim::ShardPlanner(opts_.shard_plan, domains_.size(), sim_.num_shards());
  shard_plan_ = planner_.static_plan();
  for (auto& domain : domains_) {
    domain->attach_sim_shard(&sim_, shard_plan_.shard_of_domain[domain->index()]);
  }
  domain_perf_scratch_.resize(domains_.size());
  domain_reward_scratch_.resize(domains_.size());

  // One fault injector per domain (only when the plan injects anything:
  // a disabled plan leaves the tick loop untouched). Adapters without a
  // fault surface still get an injector — their partition fate and the
  // counters apply; there are just no nodes to crash or slow.
  if (fault_plan_.enabled()) {
    injectors_.reserve(domains_.size());
    for (auto& domain : domains_) {
      injectors_.push_back(std::make_unique<sim::FaultInjector>(
          sim_, fault_plan_, static_cast<std::uint32_t>(domain->index()),
          domain->adapter().fault_target()));
    }
  }

  // The PI inbox the Monitoring Agents publish into: the daemon's under
  // an in-process brain, the BrainClient's (which forwards over tcp)
  // under a remote one. Control Agents register with whichever side
  // delivers the checked broadcasts.
  PiChannel& inbox = remote ? client_->inbox() : *daemon_->inbox();
  for (auto& domain : domains_) {
    for (std::size_t n = 0; n < domain->num_nodes(); ++n) {
      auto agent = std::make_unique<MonitoringAgent>(
          n, domain->global_node(n), domain->adapter(), inbox);
      agents_flat_.push_back(agent.get());
      domain->add_monitoring_agent(std::move(agent));
      auto control = std::make_unique<ControlAgent>(n, domain->adapter());
      if (!remote) {
        daemon_->register_control_agent(domain->index(), control.get());
      }
      // Remote: the BrainClient applies broadcasts through the domain's
      // own agent list, so ownership below is registration enough.
      domain->add_control_agent(std::move(control));
    }
  }

  // Close the allocation-free status loop: drained PI payload buffers
  // flow back to the agent that encoded them (keyed by global node id).
  agent_by_node_.assign(total_nodes_, nullptr);
  for (MonitoringAgent* agent : agents_flat_) {
    agent_by_node_[agent->node()] = agent;
  }
  auto recycler = [this](std::uint64_t sender,
                         std::vector<std::uint8_t>&& payload) {
    if (sender < agent_by_node_.size() && agent_by_node_[sender] != nullptr) {
      agent_by_node_[sender]->recycle_payload(std::move(payload));
    }
  };
  if (remote) {
    client_->set_payload_recycler(std::move(recycler));
  } else {
    daemon_->set_payload_recycler(std::move(recycler));
  }
}

CapesSystem::~CapesSystem() {
  // A remote brain gets a polite Bye so capes_daemond reports a clean
  // session (vs. inferring loss from a dead link).
  if (client_) client_->bye(tick_);
  if (db_) db_->checkpoint();
}

void CapesSystem::reset_parameters() {
  for (auto& domain : domains_) domain->reset_parameters();
  // Keep the daemon-side parameter mirrors (what vetoes are checked
  // against) in step with the reset.
  if (client_) client_->reset_params(tick_);
}

void CapesSystem::notify_workload_change() {
  if (capture_) {
    capture_->record(capture::RecordType::kWorkloadChange, tick_, 0, 0,
                     nullptr, 0);
  }
  if (client_) {
    client_->workload_change(tick_);
  } else {
    engine_->notify_workload_change();
  }
}

void CapesSystem::add_tick_listener(
    std::function<void(const TickEvent&)> listener) {
  if (listener) tick_listeners_.push_back(std::move(listener));
}

void CapesSystem::add_train_step_listener(
    std::function<void(const TrainStepEvent&)> listener) {
  if (listener) train_step_listeners_.push_back(std::move(listener));
}

std::uint64_t CapesSystem::hot_path_allocations() const {
  return hot_path_allocs_ +
         (engine_ != nullptr ? engine_->hot_path_allocations() : 0);
}

namespace {

[[noreturn]] void abort_remote_accessor(const char* what) {
  std::fprintf(stderr,
               "CapesSystem: %s lives in capes_daemond under the tcp "
               "transport; use training_fingerprint() / total_train_steps() "
               "or brain_client()\n",
               what);
  std::abort();
}

}  // namespace

DrlEngine& CapesSystem::engine() {
  if (engine_ == nullptr) abort_remote_accessor("engine()");
  return *engine_;
}

rl::ReplayDb& CapesSystem::replay() {
  if (replay_ == nullptr) abort_remote_accessor("replay()");
  return *replay_;
}

InterfaceDaemon& CapesSystem::interface_daemon() {
  if (daemon_ == nullptr) abort_remote_accessor("interface_daemon()");
  return *daemon_;
}

std::uint32_t CapesSystem::training_fingerprint() const {
  return client_ != nullptr ? client_->weights_fingerprint()
                            : engine_->weights_fingerprint();
}

std::size_t CapesSystem::total_train_steps() const {
  return client_ != nullptr ? client_->total_train_steps()
                            : engine_->total_train_steps();
}

std::vector<double> CapesSystem::parameter_values() const {
  std::vector<double> flat;
  flat.reserve(space_->num_parameters());
  for (const auto& domain : domains_) {
    flat.insert(flat.end(), domain->param_values().begin(),
                domain->param_values().end());
  }
  return flat;
}

void CapesSystem::sample_all_agents(std::int64_t t) {
  if (pool_ == nullptr) {
    for (MonitoringAgent* agent : agents_flat_) agent->sample(t);
  } else {
    // Fan collection/encoding/publishing out across all nodes of all
    // domains (collectors touch per-node state only, and the channel is
    // thread-safe). Worker count and publish order cannot change results:
    // message fates are pure per-message hashes and the daemon's drain
    // sorts by (deliver tick, sender) — so the replay DB sees exactly
    // the writes of the single-threaded path, in the same order.
    pool_->parallel_for(agents_flat_.size(),
                        [&](std::size_t i) { agents_flat_[i]->sample(t); });
  }
  // The daemon's sampling-tick drain: write whatever has arrived by now
  // (this tick's messages under sync; under sim whichever earlier sends
  // are due). Stragglers surface on a later tick; drops never do — the
  // replay DB's missing-entry tolerance absorbs them. With a pool the
  // daemon decodes per-node message runs in parallel and commits them
  // serially in delivery order — same replay writes, same counters.
  // Under a remote brain the drain instead ships each message as a
  // kStatus frame, in the same deterministic order the daemon would
  // have ingested them.
  if (client_) {
    client_->flush_status(t);
  } else {
    daemon_->drain_status(t, pool_.get());
  }
}

double RunResult::shard_imbalance() const {
  if (shard_events.empty()) return 1.0;
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (const std::uint64_t e : shard_events) {
    total += e;
    if (e > max) max = e;
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(shard_events.size());
  return static_cast<double>(max) / mean;
}

void CapesSystem::replan_shards() {
  if (sim_.num_shards() <= 1 ||
      planner_.kind() == sim::ShardPlanKind::kStatic) {
    return;
  }
  // Window the counts: plan from events executed since the last plan, so
  // each phase is packed by the most recent behavior, not run history.
  sim_.domain_executed(domain_events_scratch_, domains_.size());
  if (domain_events_baseline_.size() != domain_events_scratch_.size()) {
    domain_events_baseline_.assign(domain_events_scratch_.size(), 0);
  }
  bool any = false;
  for (std::size_t d = 0; d < domain_events_scratch_.size(); ++d) {
    const std::uint64_t delta =
        domain_events_scratch_[d] - domain_events_baseline_[d];
    domain_events_baseline_[d] = domain_events_scratch_[d];
    domain_events_scratch_[d] = delta;
    if (delta > 0) any = true;
  }
  // First boundary with no events yet (no warmup ran): stay on the
  // deterministic round-robin fallback.
  if (!any) return;
  const sim::ShardPlan next = planner_.plan(domain_events_scratch_);
  bool moved = false;
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    const std::size_t from = shard_plan_.shard_of_domain[d];
    const std::size_t to = next.shard_of_domain[d];
    if (from == to) continue;
    sim_.migrate_domain(static_cast<std::uint32_t>(d), from, to);
    domains_[d]->attach_sim_shard(&sim_, to);
    moved = true;
  }
  shard_plan_ = next;
  if (moved) ++shard_replans_;
}

sim::FaultCounters CapesSystem::fault_counters() const {
  sim::FaultCounters total;
  for (const auto& injector : injectors_) {
    const sim::FaultCounters& c = injector->counters();
    total.faults_injected += c.faults_injected;
    total.ost_crashes += c.ost_crashes;
    total.stragglers += c.stragglers;
    total.partitions += c.partitions;
    total.ticks_degraded += c.ticks_degraded;
  }
  return total;
}

void CapesSystem::inject_faults() {
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    ControlDomain& domain = *domains_[d];
    // Bind the domain's shard: the injector schedules its apply/restore
    // transitions as events at the current time, and the binding routes
    // them into the domain's tagged queue — so they execute first in the
    // next advance, count against the domain, and migrate with it under
    // the rate shard plan.
    const auto binding = domain.bind_sim_shard();
    sim::FaultInjector& injector = *injectors_[d];
    injector.on_tick(tick_);
    if (capture_ != nullptr) {
      for (const sim::FaultEvent& event : injector.last_events()) {
        const std::uint8_t kind = static_cast<std::uint8_t>(event.kind);
        capture_->record(capture::RecordType::kFault, tick_, 0,
                         event.node_key, &kind, 1);
      }
    }
  }
}

void CapesSystem::accumulate_shard_stats(RunResult& result) {
  const auto& events = sim_.last_advance_events();
  const auto& busy = sim_.last_advance_busy_ns();
  if (events.empty()) return;
  std::size_t max_events = 0;
  std::uint64_t max_busy = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i] > max_events) max_events = events[i];
    if (busy[i] > max_busy) max_busy = busy[i];
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    result.shard_events[i] += events[i];
    result.barrier_wait_events += max_events - events[i];
    result.shard_barrier_wait_ns[i] += max_busy - busy[i];
  }
}

void CapesSystem::on_sampling_tick(RunResult& result, RunPhase mode) {
  const std::int64_t t = tick_;

  // Allocation audit: tally brackets cover the CAPES control path only
  // (see hot_path_allocations()); the bits between brackets — domain
  // performance sampling, result appends, listeners — are excluded.
  util::AllocTally alloc_tally;

  // 1. Monitoring Agents sample and ship PIs (stored in the replay DB).
  sample_all_agents(t);
  hot_path_allocs_ += alloc_tally.delta();

  // 2. Reward: each domain's objective over its own last-tick
  //    performance; the shared brain trains on the cross-domain mean
  //    (scale-stable in the domain count). Throughput aggregates.
  //    With a pool, performance sampling and the objective fan out per
  //    domain — each worker touches only its own domain's adapter (the
  //    same isolation the monitoring fan-out relies on) and writes to
  //    its own scratch slot; the reduction below runs serially in domain
  //    order, so sums match the serial path bit for bit. At 128 domains
  //    this loop was the next serial cost at the barrier.
  if (pool_ != nullptr && domains_.size() > 1) {
    pool_->parallel_for(domains_.size(), [&](std::size_t d) {
      ControlDomain& domain = *domains_[d];
      // Bind the domain's shard: sampling is read-only today, but any
      // event an adapter ever schedules from here belongs in its queue.
      const auto binding = domain.bind_sim_shard();
      domain_perf_scratch_[d] = domain.adapter().sample_performance();
      domain_reward_scratch_[d] = domain.objective()(domain_perf_scratch_[d]);
    });
  } else {
    for (std::size_t d = 0; d < domains_.size(); ++d) {
      ControlDomain& domain = *domains_[d];
      const auto binding = domain.bind_sim_shard();
      domain_perf_scratch_[d] = domain.adapter().sample_performance();
      domain_reward_scratch_[d] = domain.objective()(domain_perf_scratch_[d]);
    }
  }
  double throughput_sum = 0.0;
  double latency_sum = 0.0;
  double reward_sum = 0.0;
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    domains_[d]->set_last_sample(domain_perf_scratch_[d],
                                 domain_reward_scratch_[d]);
    throughput_sum += domain_perf_scratch_[d].throughput_mbs();
    latency_sum += domain_perf_scratch_[d].avg_latency_ms;
    reward_sum += domain_reward_scratch_[d];
  }
  const double num_domains = static_cast<double>(domains_.size());
  const double reward = reward_sum / num_domains;
  const double latency = latency_sum / num_domains;
  alloc_tally.restart();
  if (client_) {
    client_->send_reward(t, reward, throughput_sum, latency);
  } else {
    daemon_->on_reward(t, reward);
  }
  hot_path_allocs_ += alloc_tally.delta();
  if (capture_) {
    const double values[3] = {reward, throughput_sum, latency};
    capture_->record_f64s(capture::RecordType::kReward, t, 0, 0, values, 3);
  }
  result.throughput.add(throughput_sum);
  result.latency_ms.add(latency);
  result.rewards.push_back(reward);

  // 3. Action tick: the engine suggests one composite action, the daemon
  //    checks it and broadcasts it to the owning domain's slice.
  //    4. follows: training steps (the DRL Engine trains continuously,
  //    §3.4). Under a remote brain both steps run in capes_daemond
  //    behind one tick barrier: end_tick ships kFrameTickDone, blocks
  //    for the checked broadcasts + kFrameActionsDone, and applies the
  //    broadcasts to the domains' Control Agents. Outside the
  //    allocation bracket, like drain_actions: applying parameters runs
  //    the target system's setters, which may schedule simulator events.
  if (client_) {
    const TickOutcome outcome =
        client_->end_tick(t, static_cast<std::uint8_t>(mode));
    if (mode == RunPhase::kTraining && outcome.train_steps > 0) {
      result.train_steps += outcome.train_steps;
      total_train_steps_ = outcome.total_train_steps;
      TrainStepEvent event;
      event.tick = t;
      event.steps = outcome.train_steps;
      event.total_steps = total_train_steps_;
      for (const auto& listener : train_step_listeners_) listener(event);
    }
  } else {
    alloc_tally.restart();
    if (mode == RunPhase::kTraining || mode == RunPhase::kTuned) {
      const std::size_t suggested =
          engine_->compute_action(t, mode == RunPhase::kTraining, pool_.get());
      daemon_->route_suggested_action(t, suggested);
    } else {
      daemon_->route_suggested_action(t, 0);  // NULL action
    }
    hot_path_allocs_ += alloc_tally.delta();
    // Deliver checked-action broadcasts due by this tick (the one just
    // routed under sync; under sim possibly earlier delayed ones — a
    // delayed action reaches the target system on the tick it lands).
    // Outside the allocation bracket: applying parameters runs the target
    // system's setters, which may schedule simulator events (excluded from
    // the audit like the rest of event execution).
    daemon_->drain_actions(t);

    // 4. Training steps (the DRL Engine trains continuously, §3.4).
    if (mode == RunPhase::kTraining) {
      const std::size_t steps = engine_->train_tick(pool_.get());
      result.train_steps += steps;
      if (steps > 0) {
        total_train_steps_ += steps;
        TrainStepEvent event;
        event.tick = t;
        event.steps = steps;
        event.total_steps = total_train_steps_;
        for (const auto& listener : train_step_listeners_) listener(event);
      }
    }
  }

  if (!tick_listeners_.empty()) {
    TickEvent event;
    event.phase = mode;
    event.tick = t;
    event.throughput_mbs = throughput_sum;
    event.latency_ms = latency;
    event.reward = reward;
    for (const auto& listener : tick_listeners_) listener(event);
  }
  ++tick_;
}

RunResult CapesSystem::run_phase(std::int64_t ticks, RunPhase mode) {
  // Phase boundary: the rate planner re-packs domains onto shards by the
  // counts of the window since the last plan (and migrates the moved
  // domains' pending events) before any of this phase's ticks run.
  replan_shards();
  RunResult result;
  result.start_tick = tick_;
  const std::size_t num_shards = sim_.num_shards();
  if (num_shards > 1) {
    result.shard_events.assign(num_shards, 0);
    result.shard_barrier_wait_ns.assign(num_shards, 0);
  }
  if (capture_) {
    const std::uint8_t phase = static_cast<std::uint8_t>(mode);
    capture_->record(capture::RecordType::kPhaseBegin, tick_, 0, 0, &phase, 1);
  }
  if (client_) client_->begin_phase(tick_, static_cast<std::uint8_t>(mode));
  const bus::ChannelStats bus_before =
      client_ ? client_->stats() : daemon_->bus_stats();
  const sim::FaultCounters faults_before = fault_counters();
  const auto tick_us = sim::seconds(opts_.sampling_tick_s);
  for (std::int64_t i = 0; i < ticks; ++i) {
    // Fault schedule first (serial, at the barrier): transitions due
    // this tick are queued as events at the current time, so the advance
    // below executes them before any simulated time passes.
    if (!injectors_.empty()) inject_faults();
    // One sampling tick: every simulator shard advances to the tick
    // boundary (concurrently when there is a pool and more than one
    // shard), and run_for returns only at the time-synced barrier —
    // after which the daemon drains, the engine acts, and delayed
    // broadcasts land, all single-threaded again.
    sim_.run_for(tick_us, pool_.get());
    if (num_shards > 1) accumulate_shard_stats(result);
    on_sampling_tick(result, mode);
  }
  // Async learner barrier: phase results and anything read after this
  // (fingerprints, logs, train-step counts) reflect all of the phase's
  // training. Remotely that barrier is the kPhaseEnd round trip, whose
  // ack refreshes the cached fingerprint/step count.
  if (client_) {
    client_->end_phase(tick_, static_cast<std::uint8_t>(mode));
  } else {
    engine_->drain_learner();
  }
  result.end_tick = tick_;
  if (capture_) {
    const std::uint8_t phase = static_cast<std::uint8_t>(mode);
    capture_->record(capture::RecordType::kPhaseEnd, tick_, 0, 0, &phase, 1);
  }
  const bus::ChannelStats bus_after =
      client_ ? client_->stats() : daemon_->bus_stats();
  result.messages_dropped = bus_after.dropped - bus_before.dropped;
  result.messages_late = bus_after.late - bus_before.late;
  const sim::FaultCounters faults_after = fault_counters();
  result.faults_injected = faults_after.faults_injected - faults_before.faults_injected;
  result.ost_crashes = faults_after.ost_crashes - faults_before.ost_crashes;
  result.stragglers = faults_after.stragglers - faults_before.stragglers;
  result.partitions = faults_after.partitions - faults_before.partitions;
  result.ticks_degraded = faults_after.ticks_degraded - faults_before.ticks_degraded;
  // Regime shifts over the phase's throughput series: computed for every
  // phase (replay recomputes it from the captured per-tick rewards, so
  // live and replay reports agree whether or not faults fired).
  result.regime_shifts =
      stats::pelt_mean_shift(result.throughput.samples()).size();
  return result;
}

RunResult CapesSystem::run_training(std::int64_t ticks) {
  return run_phase(ticks, RunPhase::kTraining);
}

RunResult CapesSystem::run_baseline(std::int64_t ticks) {
  reset_parameters();
  return run_phase(ticks, RunPhase::kBaseline);
}

RunResult CapesSystem::run_tuned(std::int64_t ticks) {
  return run_phase(ticks, RunPhase::kTuned);
}

std::uint64_t CapesSystem::monitoring_bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& domain : domains_) total += domain->monitoring_bytes_sent();
  return total;
}

bool CapesSystem::save_model(const std::string& path) const {
  if (engine_ == nullptr) {
    CAPES_LOG_WARN("capes") << "save_model unavailable under the tcp "
                               "transport (the model lives in capes_daemond)";
    return false;
  }
  return engine_->dqn().save_checkpoint(path);
}

bool CapesSystem::load_model(const std::string& path) {
  if (engine_ == nullptr) {
    CAPES_LOG_WARN("capes") << "load_model unavailable under the tcp "
                               "transport (the model lives in capes_daemond)";
    return false;
  }
  return engine_->dqn().load_checkpoint(path);
}

}  // namespace capes::core
