#include "core/capes_system.hpp"

#include <cassert>

namespace capes::core {

const char* phase_name(RunPhase phase) {
  switch (phase) {
    case RunPhase::kTraining: return "training";
    case RunPhase::kBaseline: return "baseline";
    case RunPhase::kTuned: return "tuned";
    case RunPhase::kIdle: break;
  }
  return "idle";
}

CapesSystem::CapesSystem(sim::Simulator& sim, TargetSystemAdapter& adapter,
                         CapesOptions opts, ObjectiveFunction objective)
    : sim_(sim), adapter_(adapter), opts_(std::move(opts)),
      objective_(objective ? std::move(objective)
                           : throughput_objective(opts.reward_scale_mbs)) {
  space_ = std::make_unique<rl::ActionSpace>(adapter_.tunable_parameters());
  param_values_ = space_->initial_values();

  opts_.replay.num_nodes = adapter_.num_nodes();
  opts_.replay.pis_per_node = adapter_.pis_per_node();
  if (!opts_.replay_db_dir.empty()) {
    db_ = std::make_unique<waldb::Database>();
    if (!db_->open(opts_.replay_db_dir)) db_.reset();
  }
  replay_ = std::make_unique<rl::ReplayDb>(opts_.replay, db_.get());

  daemon_ = std::make_unique<InterfaceDaemon>(*replay_, *space_,
                                              adapter_.num_nodes(),
                                              adapter_.pis_per_node());
  opts_.engine.dqn.num_actions = space_->num_actions();
  engine_ = std::make_unique<DrlEngine>(opts_.engine, *replay_);

  for (std::size_t n = 0; n < adapter_.num_nodes(); ++n) {
    monitoring_agents_.push_back(std::make_unique<MonitoringAgent>(
        n, adapter_, [this](const std::vector<std::uint8_t>& msg) {
          daemon_->on_status_message(msg);
        }));
    control_agents_.push_back(std::make_unique<ControlAgent>(n, adapter_));
    daemon_->register_control_agent(control_agents_.back().get());
  }
}

CapesSystem::~CapesSystem() {
  if (db_) db_->checkpoint();
}

void CapesSystem::reset_parameters() {
  param_values_ = space_->initial_values();
  adapter_.set_parameters(param_values_);
}

void CapesSystem::notify_workload_change() {
  engine_->notify_workload_change();
}

void CapesSystem::add_tick_listener(
    std::function<void(const TickEvent&)> listener) {
  if (listener) tick_listeners_.push_back(std::move(listener));
}

void CapesSystem::add_train_step_listener(
    std::function<void(const TrainStepEvent&)> listener) {
  if (listener) train_step_listeners_.push_back(std::move(listener));
}

void CapesSystem::on_sampling_tick(RunResult& result, RunPhase mode) {
  const std::int64_t t = tick_;

  // 1. Monitoring Agents sample and ship PIs (stored in the replay DB).
  for (auto& agent : monitoring_agents_) agent->sample(t);

  // 2. Reward: objective-function output over the last tick's performance.
  const PerfSample perf = adapter_.sample_performance();
  const double reward = objective_(perf);
  daemon_->on_reward(t, reward);
  result.throughput.add(perf.throughput_mbs());
  result.latency_ms.add(perf.avg_latency_ms);
  result.rewards.push_back(reward);

  // 3. Action tick: the engine suggests, the daemon checks + broadcasts.
  if (mode == RunPhase::kTraining || mode == RunPhase::kTuned) {
    const std::size_t suggested =
        engine_->compute_action(t, mode == RunPhase::kTraining);
    daemon_->on_suggested_action(t, suggested, param_values_);
  } else {
    daemon_->on_suggested_action(t, 0, param_values_);  // NULL action
  }

  // 4. Training steps (the DRL Engine trains continuously, §3.4).
  if (mode == RunPhase::kTraining) {
    const std::size_t steps = engine_->train_tick();
    result.train_steps += steps;
    if (steps > 0) {
      total_train_steps_ += steps;
      TrainStepEvent event;
      event.tick = t;
      event.steps = steps;
      event.total_steps = total_train_steps_;
      for (const auto& listener : train_step_listeners_) listener(event);
    }
  }

  if (!tick_listeners_.empty()) {
    TickEvent event;
    event.phase = mode;
    event.tick = t;
    event.throughput_mbs = perf.throughput_mbs();
    event.latency_ms = perf.avg_latency_ms;
    event.reward = reward;
    for (const auto& listener : tick_listeners_) listener(event);
  }
  ++tick_;
}

RunResult CapesSystem::run_phase(std::int64_t ticks, RunPhase mode) {
  RunResult result;
  result.start_tick = tick_;
  const auto tick_us = sim::seconds(opts_.sampling_tick_s);
  for (std::int64_t i = 0; i < ticks; ++i) {
    sim_.run_until(sim_.now() + tick_us);
    on_sampling_tick(result, mode);
  }
  result.end_tick = tick_;
  return result;
}

RunResult CapesSystem::run_training(std::int64_t ticks) {
  return run_phase(ticks, RunPhase::kTraining);
}

RunResult CapesSystem::run_baseline(std::int64_t ticks) {
  reset_parameters();
  return run_phase(ticks, RunPhase::kBaseline);
}

RunResult CapesSystem::run_tuned(std::int64_t ticks) {
  return run_phase(ticks, RunPhase::kTuned);
}

std::uint64_t CapesSystem::monitoring_bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& agent : monitoring_agents_) total += agent->bytes_sent();
  return total;
}

bool CapesSystem::save_model(const std::string& path) const {
  return engine_->dqn().save_checkpoint(path);
}

bool CapesSystem::load_model(const std::string& path) {
  return engine_->dqn().load_checkpoint(path);
}

}  // namespace capes::core
