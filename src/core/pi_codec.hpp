#pragma once
// The differential PI wire protocol (§3.3): a Monitoring Agent only sends
// a performance indicator when its value changed since the previous
// sampling tick, and the message is compressed. Here "compression" is
// delta + quantized zigzag-varint coding: values are fixed-point-quantized
// (4 decimal digits — PIs are pre-normalized O(1) floats), and each entry
// stores an index gap + value delta, both as small varints. Table 2
// measures the resulting bytes/client/second.

#include <cstdint>
#include <optional>
#include <vector>

namespace capes::core {

/// Stateful encoder, one per (Monitoring Agent) node.
class PiEncoder {
 public:
  explicit PiEncoder(std::size_t node, std::size_t num_pis);

  /// Encode the PI vector for tick `t`. Emits only entries that changed
  /// (after quantization) since the previous call. Message layout:
  /// varint(node) varint(t) varint(count) { varint(index_gap)
  /// svarint(value_delta_quantized) }*.
  std::vector<std::uint8_t> encode(std::int64_t t, const std::vector<float>& pis);

  /// Allocation-free form: encode `n` PIs (n == num_pis()) into `out`,
  /// which is cleared first and reuses its capacity — the hot path hands
  /// in a recycled payload buffer and no heap allocation happens once the
  /// buffer has grown to the message working set.
  void encode_into(std::int64_t t, const float* pis, std::size_t n,
                   std::vector<std::uint8_t>& out);

  std::size_t node() const { return node_; }
  std::size_t num_pis() const { return prev_quantized_.size(); }
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t messages() const { return messages_; }

 private:
  std::size_t node_;
  std::vector<std::int64_t> prev_quantized_;
  std::vector<std::uint8_t> staging_;  ///< changed-entry scratch, capacity reused
  bool first_ = true;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t messages_ = 0;
};

/// Decoded message.
struct PiMessage {
  std::size_t node = 0;
  std::int64_t tick = 0;
  std::vector<float> pis;  ///< full reconstructed vector
};

/// Stateful decoder (one per sender) living in the Interface Daemon.
class PiDecoder {
 public:
  explicit PiDecoder(std::size_t num_pis);

  /// Decode one message; nullopt on malformed input.
  std::optional<PiMessage> decode(const std::vector<std::uint8_t>& msg);

  /// Allocation-free form: reconstruct into `out` (whose pis vector
  /// reuses its capacity). Returns false on malformed input, leaving
  /// `out` untouched.
  bool decode_into(const std::vector<std::uint8_t>& msg, PiMessage& out);

 private:
  std::vector<std::int64_t> quantized_;
};

/// Quantization scale: 1e4 (4 decimal digits of the normalized PIs).
constexpr double kPiQuantScale = 1e4;

}  // namespace capes::core
