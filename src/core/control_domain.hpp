#pragma once
// Control domain: one target cluster under CAPES control. The Figure 1
// architecture deliberately separates per-node agents from the central
// Interface Daemon + DRL Engine; a ControlDomain bundles everything that
// is per-cluster — the adapter, its workload-facing objective, the
// Monitoring/Control Agents, the local action space, and the current
// parameter vector — so one CapesSystem (one brain) can tune N clusters.
//
// Namespacing: domains share one Replay DB and one composite action
// space. A domain owns a contiguous slice of each namespace:
//   global node index   = node_offset()   + local node
//   global action index = action_offset() + local action - 1
//     (global/local index 0 is the shared NULL action; a domain's
//      non-null local actions 1..2P map onto its slice)
//   global parameter    = param_offset()  + local parameter

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/adapter.hpp"
#include "core/control_agent.hpp"
#include "core/monitoring_agent.hpp"
#include "core/objective.hpp"
#include "rl/action_space.hpp"
#include "sim/simulator.hpp"

namespace capes::core {

/// What a caller hands to CapesSystem to add one domain. The adapter must
/// outlive the system; `objective` empty means "use the system default".
struct ControlDomainSpec {
  TargetSystemAdapter* adapter = nullptr;
  ObjectiveFunction objective;
  std::string name;  ///< label for reports; "" -> "c<index>"
};

class ControlDomain {
 public:
  ControlDomain(std::size_t index, std::string name,
                TargetSystemAdapter& adapter, ObjectiveFunction objective,
                std::size_t node_offset, std::size_t action_offset,
                std::size_t param_offset);

  std::size_t index() const { return index_; }
  const std::string& name() const { return name_; }
  TargetSystemAdapter& adapter() { return adapter_; }
  const ObjectiveFunction& objective() const { return objective_; }

  /// The domain-local action space (NULL + 2 actions per local parameter).
  const rl::ActionSpace& space() const { return space_; }

  // ---- node namespace ----------------------------------------------------
  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t node_offset() const { return node_offset_; }
  std::size_t global_node(std::size_t local) const {
    return node_offset_ + local;
  }
  bool owns_global_node(std::size_t global) const {
    return global >= node_offset_ && global < node_offset_ + num_nodes_;
  }
  std::size_t local_node(std::size_t global) const {
    return global - node_offset_;
  }

  // ---- action namespace --------------------------------------------------
  std::size_t action_offset() const { return action_offset_; }
  /// Non-null actions this domain contributes to the composite space.
  std::size_t num_slice_actions() const { return space_.num_actions() - 1; }
  bool owns_global_action(std::size_t global) const {
    return global >= action_offset_ &&
           global < action_offset_ + num_slice_actions();
  }
  /// Precondition: owns_global_action(global). Result is in [1, 2P].
  std::size_t local_action(std::size_t global) const {
    return global - action_offset_ + 1;
  }
  std::size_t global_action(std::size_t local) const {
    return local == 0 ? 0 : action_offset_ + local - 1;
  }

  // ---- parameter namespace -----------------------------------------------
  std::size_t param_offset() const { return param_offset_; }
  std::size_t num_parameters() const { return space_.num_parameters(); }
  std::vector<double>& param_values() { return param_values_; }
  const std::vector<double>& param_values() const { return param_values_; }
  /// Reset to initial values and push them into the target system.
  void reset_parameters();

  // ---- simulator shard (wired by CapesSystem) ----------------------------
  /// This domain's shard of the sharded simulator event loop. Barrier-time
  /// calls into the domain's target system (parameter application,
  /// workload restarts) can schedule follow-up events from outside any
  /// executing event; binding the owned shard routes them into this
  /// domain's queue instead of shard 0.
  void attach_sim_shard(const sim::Simulator* sim, std::size_t shard) {
    sim_ = sim;
    sim_shard_ = shard;
  }
  std::size_t sim_shard() const { return sim_shard_; }
  /// Scoped binding of the owned shard, tagged with this domain's index
  /// so events scheduled at barrier time are counted against (and migrate
  /// with) the domain; inactive (a no-op) when no shard was attached.
  sim::Simulator::ShardBinding bind_sim_shard() const {
    if (sim_ == nullptr) return sim::Simulator::no_binding();
    return sim_->bind_shard(sim_shard_, static_cast<std::uint32_t>(index_));
  }

  // ---- agents (wired by CapesSystem) -------------------------------------
  void add_monitoring_agent(std::unique_ptr<MonitoringAgent> agent);
  void add_control_agent(std::unique_ptr<ControlAgent> agent);
  const std::vector<std::unique_ptr<MonitoringAgent>>& monitoring_agents() const {
    return monitoring_agents_;
  }
  const std::vector<std::unique_ptr<ControlAgent>>& control_agents() const {
    return control_agents_;
  }
  std::uint64_t monitoring_bytes_sent() const;

  // ---- last-tick snapshot (per-domain observability) ---------------------
  void set_last_sample(const PerfSample& perf, double reward) {
    last_perf_ = perf;
    last_reward_ = reward;
  }
  const PerfSample& last_perf() const { return last_perf_; }
  double last_reward() const { return last_reward_; }

 private:
  std::size_t index_;
  std::string name_;
  const sim::Simulator* sim_ = nullptr;
  std::size_t sim_shard_ = 0;
  TargetSystemAdapter& adapter_;
  ObjectiveFunction objective_;
  rl::ActionSpace space_;
  std::size_t num_nodes_;
  std::size_t node_offset_;
  std::size_t action_offset_;
  std::size_t param_offset_;
  std::vector<double> param_values_;
  std::vector<std::unique_ptr<MonitoringAgent>> monitoring_agents_;
  std::vector<std::unique_ptr<ControlAgent>> control_agents_;
  PerfSample last_perf_;
  double last_reward_ = 0.0;
};

}  // namespace capes::core
