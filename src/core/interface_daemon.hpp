#pragma once
// Interface Daemon (§3.3): the hub between Monitoring Agents, the Replay
// DB, the DRL Engine and the Control Agents. It is the only component
// that writes to the Replay DB; it decodes incoming PI messages, stores
// them, relays rewards, and broadcasts checked actions.
//
// The daemon is a sharded fan-in: one shard per control domain. Incoming
// PI messages carry global (domain-namespaced) node ids and route to the
// owning shard's stateful decoder; a suggested composite action index
// routes to the shard whose action slice contains it, is validated by
// that shard's Action Checker, and — when it passes — is applied to that
// domain's parameter vector and broadcast to that domain's Control
// Agents only. With one shard this degenerates exactly to the original
// single-cluster daemon.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/action_checker.hpp"
#include "core/control_agent.hpp"
#include "core/control_domain.hpp"
#include "core/pi_codec.hpp"
#include "rl/action_space.hpp"
#include "rl/replay_db.hpp"

namespace capes::core {

class InterfaceDaemon {
 public:
  /// Single-shard daemon over an externally managed parameter vector (the
  /// pre-domain construction, still used by agent-level tests).
  InterfaceDaemon(rl::ReplayDb& replay, const rl::ActionSpace& space,
                  std::size_t num_nodes, std::size_t pis_per_node);

  /// Sharded daemon: one shard per domain, in order. Domains must outlive
  /// the daemon; their node/action offsets define the routing table.
  InterfaceDaemon(rl::ReplayDb& replay, std::vector<ControlDomain*> domains,
                  std::size_t pis_per_node);

  /// Incoming PI message from a Monitoring Agent; the leading global node
  /// id picks the shard decoder, and the decoded PIs are written to the
  /// replay DB under that global node id.
  void on_status_message(const std::vector<std::uint8_t>& msg);

  /// Record the objective-function output for tick t.
  void on_reward(std::int64_t t, double reward);

  /// An action suggested by the DRL Engine for tick t, applied to the
  /// caller's parameter vector (single-shard daemons only). Runs the
  /// action checker; if it passes, records the action and broadcasts the
  /// resulting parameter values to the shard's Control Agents. Returns the
  /// action actually recorded (vetoed actions degrade to the NULL action,
  /// which is what reaches the replay DB — the system did nothing that
  /// tick).
  std::size_t on_suggested_action(std::int64_t t, std::size_t action_index,
                                  std::vector<double>& parameter_values);

  /// Sharded form: route the composite `action_index` to its owning
  /// domain and apply it to that domain's parameter vector. Same veto /
  /// record semantics as on_suggested_action.
  std::size_t route_suggested_action(std::int64_t t, std::size_t action_index);

  void register_control_agent(ControlAgent* agent);  ///< shard 0
  void register_control_agent(std::size_t shard, ControlAgent* agent);
  ActionChecker& action_checker() { return *shards_[0].checker; }
  ActionChecker& action_checker(std::size_t shard) {
    return *shards_[shard].checker;
  }
  std::size_t num_shards() const { return shards_.size(); }

  std::uint64_t status_messages() const { return status_messages_; }
  std::uint64_t decode_errors() const { return decode_errors_; }
  std::uint64_t actions_broadcast() const { return actions_broadcast_; }

 private:
  /// Routing state for one domain's slice of the action namespace (node
  /// routing needs no per-shard state: decoders_ is indexed by the global
  /// node id directly).
  struct Shard {
    ControlDomain* domain = nullptr;  ///< null for the single-shard ctor
    const rl::ActionSpace* space = nullptr;
    std::unique_ptr<ActionChecker> checker;
    std::size_t action_offset = 1;  ///< global index of local action 1
    std::vector<ControlAgent*> control_agents;
  };

  std::size_t apply_checked_action(std::int64_t t, Shard& shard,
                                   std::size_t local_action,
                                   std::size_t global_action,
                                   std::vector<double>& parameter_values);

  rl::ReplayDb& replay_;
  std::vector<Shard> shards_;
  std::vector<PiDecoder> decoders_;  // one per global node

  std::uint64_t status_messages_ = 0;
  std::uint64_t decode_errors_ = 0;
  std::uint64_t actions_broadcast_ = 0;
};

}  // namespace capes::core
