#pragma once
// Interface Daemon (§3.3): the hub between Monitoring Agents, the Replay
// DB, the DRL Engine and the Control Agents. It is the only component
// that writes to the Replay DB; it decodes incoming PI messages, stores
// them, relays rewards, and broadcasts checked actions.
//
// The daemon is a sharded fan-in: one shard per control domain. Incoming
// PI messages carry global (domain-namespaced) node ids and route to the
// owning shard's stateful decoder; a suggested composite action index
// routes to the shard whose action slice contains it, is validated by
// that shard's Action Checker, and — when it passes — is applied to that
// domain's parameter vector and broadcast to that domain's Control
// Agents only. With one shard this degenerates exactly to the original
// single-cluster daemon.
//
// Control-network mode: constructed with a bus::Transport, the daemon
// owns its PI inbox channel (which Monitoring Agents publish into) and
// one action channel per shard (which checked actions are broadcast
// through). The tick loop drains both once per sampling tick: whatever
// has arrived is written / applied, late messages surface on the tick
// they arrive, dropped ones never do — the Replay DB's missing-entry
// tolerance absorbs the gaps. Without a transport the daemon keeps the
// original direct-call behavior (agent-level tests, hop-free wiring).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "bus/channel.hpp"
#include "core/action_checker.hpp"
#include "core/control_agent.hpp"
#include "core/control_domain.hpp"
#include "core/monitoring_agent.hpp"
#include "core/pi_codec.hpp"
#include "rl/action_space.hpp"
#include "rl/replay_db.hpp"

namespace capes::capture {
class WireLogWriter;
}  // namespace capes::capture

namespace capes::util {
class ThreadPool;
}  // namespace capes::util

namespace capes::core {

/// The action hop's channel: absolute parameter vectors, sender = shard.
/// Absolute payloads make action drops self-healing (the next delivered
/// broadcast carries the full state), so a bounded queue is safe here.
using ActionChannel = bus::Channel<std::vector<double>>;

/// Channel topics: one inbox for all PI traffic, one action topic per
/// shard. Topic ids feed the per-message fate hash, so distinct topics
/// see independent network realizations. Public because the distributed
/// control plane (remote_brain / brain_service) puts the same topic ids
/// on the tcp wire, keeping captures from distributed runs replayable.
inline constexpr std::uint64_t kStatusTopic = 1;
inline constexpr std::uint64_t kActionTopicBase = 2;

/// Bounded action queues: one publish per tick and a per-tick drain keep
/// the in-flight count near the transport delay, so this bound only
/// guards against a pathological transport configuration.
inline constexpr std::size_t kActionChannelCapacity = 1024;

class InterfaceDaemon {
 public:
  /// Single-shard daemon over an externally managed parameter vector (the
  /// pre-domain construction, still used by agent-level tests). Always
  /// direct-call: no control network between the agents and the daemon.
  InterfaceDaemon(rl::ReplayDb& replay, const rl::ActionSpace& space,
                  std::size_t num_nodes, std::size_t pis_per_node);

  /// Sharded daemon: one shard per domain, in order. Domains must outlive
  /// the daemon; their node/action offsets define the routing table. A
  /// non-null `transport` (which must outlive the daemon) puts the PI
  /// inbox and the per-shard action broadcasts on the control network.
  InterfaceDaemon(rl::ReplayDb& replay, std::vector<ControlDomain*> domains,
                  std::size_t pis_per_node,
                  bus::Transport* transport = nullptr);

  /// Incoming PI message from a Monitoring Agent; the leading global node
  /// id picks the shard decoder, and the decoded PIs are written to the
  /// replay DB under that global node id.
  void on_status_message(const std::vector<std::uint8_t>& msg);

  /// Record the objective-function output for tick t.
  void on_reward(std::int64_t t, double reward);

  /// An action suggested by the DRL Engine for tick t, applied to the
  /// caller's parameter vector (single-shard daemons only). Runs the
  /// action checker; if it passes, records the action and broadcasts the
  /// resulting parameter values to the shard's Control Agents. Returns the
  /// action actually recorded (vetoed actions degrade to the NULL action,
  /// which is what reaches the replay DB — the system did nothing that
  /// tick).
  std::size_t on_suggested_action(std::int64_t t, std::size_t action_index,
                                  std::vector<double>& parameter_values);

  /// Sharded form: route the composite `action_index` to its owning
  /// domain and apply it to that domain's parameter vector. Same veto /
  /// record semantics as on_suggested_action. In control-network mode the
  /// domain-side parameter vector updates immediately (the daemon's view)
  /// but the broadcast to the Control Agents rides the shard's action
  /// channel — a delayed action reaches the target system on a later
  /// tick, exactly as in a real deployment.
  std::size_t route_suggested_action(std::int64_t t, std::size_t action_index);

  // ---- control network -----------------------------------------------------
  /// The PI inbox Monitoring Agents publish into (null without a
  /// transport).
  PiChannel* inbox() { return inbox_.get(); }

  /// Write every PI message that has arrived by tick `t` to the Replay
  /// DB. No-op without a transport. Returns messages delivered. With a
  /// pool, decoding fans out one worker per sender node — a node's
  /// messages stay with its stateful decoder in arrival order — and the
  /// replay-DB writes, error counters, and payload recycling then run
  /// serially in delivery order, so the pooled drain is bit-identical to
  /// the serial one. At 64/128 domains the single-threaded decode was
  /// the dominant serial cost at the sampling-tick barrier.
  std::size_t drain_status(std::int64_t t, util::ThreadPool* pool = nullptr);

  /// Optional hook: after a PI message is consumed by drain_status, its
  /// payload buffer is handed here (keyed by the sender's global node id)
  /// so the owning Monitoring Agent can reuse the capacity — the last
  /// link in the allocation-free status round trip. Runs on the drain
  /// (control) thread.
  using PayloadRecycler =
      std::function<void(std::uint64_t sender, std::vector<std::uint8_t>&& payload)>;
  void set_payload_recycler(PayloadRecycler recycler);

  /// Deliver every checked action broadcast due by tick `t` to its
  /// shard's Control Agents. No-op without a transport. Returns messages
  /// delivered.
  std::size_t drain_actions(std::int64_t t);

  /// Combined control-network counters (PI inbox + all action channels).
  /// All-zero without a transport.
  bus::ChannelStats bus_stats() const;

  void register_control_agent(ControlAgent* agent);  ///< shard 0
  void register_control_agent(std::size_t shard, ControlAgent* agent);
  ActionChecker& action_checker() { return *shards_[0].checker; }
  ActionChecker& action_checker(std::size_t shard) {
    return *shards_[check_shard(shard)].checker;
  }
  std::size_t num_shards() const { return shards_.size(); }

  std::uint64_t status_messages() const { return status_messages_; }
  std::uint64_t decode_errors() const { return decode_errors_; }
  std::uint64_t actions_broadcast() const { return actions_broadcast_; }

  /// Flight recorder (nullable; must outlive the daemon while set). All
  /// three daemon-boundary hops — PI status, suggested/recorded actions,
  /// checked-action broadcasts — are written through it. Every capture
  /// point runs on the control thread, matching the writer's
  /// single-producer contract.
  void set_capture(capture::WireLogWriter* writer) { capture_ = writer; }

 private:
  /// Routing state for one domain's slice of the action namespace (node
  /// routing needs no per-shard state: decoders_ is indexed by the global
  /// node id directly).
  struct Shard {
    ControlDomain* domain = nullptr;  ///< null for the single-shard ctor
    const rl::ActionSpace* space = nullptr;
    std::unique_ptr<ActionChecker> checker;
    std::size_t action_offset = 1;  ///< global index of local action 1
    std::vector<ControlAgent*> control_agents;
    /// Control-network broadcast channel (null = direct calls).
    std::unique_ptr<ActionChannel> actions;
    /// Recycled action-broadcast payloads: publish pops one (capacity
    /// reused for the parameter copy), drain_actions pushes the drained
    /// buffer back. Both run on the control thread.
    std::vector<std::vector<double>> action_pool;
  };

  /// Validated shard index; throws std::out_of_range (with the shard
  /// count in the message) on a bad one — indexing another domain's
  /// checker or agent list would silently corrupt cross-domain state.
  std::size_t check_shard(std::size_t shard) const;

  std::size_t apply_checked_action(std::int64_t t, Shard& shard,
                                   std::size_t local_action,
                                   std::size_t global_action,
                                   std::vector<double>& parameter_values);

  rl::ReplayDb& replay_;
  std::vector<Shard> shards_;
  std::vector<PiDecoder> decoders_;  // one per global node
  std::unique_ptr<PiChannel> inbox_;
  PayloadRecycler payload_recycler_;
  PiMessage decode_scratch_;  ///< reused across on_status_message calls
  capture::WireLogWriter* capture_ = nullptr;

  /// Pooled-drain scratch (drain_status with a pool): one decode result
  /// + outcome slot per due message (workers write disjoint slots), and
  /// per-node message-index runs so exactly one worker owns each node's
  /// stateful decoder. All vectors grow once and are reused, keeping the
  /// steady-state drain allocation-free like the serial path.
  enum : std::uint8_t { kDecodeBadNode = 0, kDecodeBadMsg = 1, kDecodeOk = 2 };
  std::vector<PiMessage> batch_decoded_;
  std::vector<std::uint8_t> batch_outcome_;
  std::vector<std::uint64_t> batch_node_;
  std::vector<std::vector<std::uint32_t>> node_batch_index_;
  std::vector<std::uint32_t> touched_nodes_;

  std::uint64_t status_messages_ = 0;
  std::uint64_t decode_errors_ = 0;
  std::uint64_t actions_broadcast_ = 0;
};

}  // namespace capes::core
