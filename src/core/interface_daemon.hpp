#pragma once
// Interface Daemon (§3.3): the hub between Monitoring Agents, the Replay
// DB, the DRL Engine and the Control Agents. It is the only component
// that writes to the Replay DB; it decodes incoming PI messages, stores
// them, relays rewards, and broadcasts checked actions.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/action_checker.hpp"
#include "core/control_agent.hpp"
#include "core/pi_codec.hpp"
#include "rl/action_space.hpp"
#include "rl/replay_db.hpp"

namespace capes::core {

class InterfaceDaemon {
 public:
  InterfaceDaemon(rl::ReplayDb& replay, const rl::ActionSpace& space,
                  std::size_t num_nodes, std::size_t pis_per_node);

  /// Incoming PI message from a Monitoring Agent; decoded and written to
  /// the replay DB.
  void on_status_message(const std::vector<std::uint8_t>& msg);

  /// Record the objective-function output for tick t.
  void on_reward(std::int64_t t, double reward);

  /// An action suggested by the DRL Engine for tick t. Runs the action
  /// checker; if it passes, records the action and broadcasts the
  /// resulting parameter values to all Control Agents. Returns the action
  /// actually recorded (vetoed actions degrade to the NULL action, which
  /// is what reaches the replay DB — the system did nothing that tick).
  std::size_t on_suggested_action(std::int64_t t, std::size_t action_index,
                                  std::vector<double>& parameter_values);

  void register_control_agent(ControlAgent* agent);
  ActionChecker& action_checker() { return *checker_; }

  std::uint64_t status_messages() const { return status_messages_; }
  std::uint64_t decode_errors() const { return decode_errors_; }
  std::uint64_t actions_broadcast() const { return actions_broadcast_; }

 private:
  rl::ReplayDb& replay_;
  const rl::ActionSpace& space_;
  std::unique_ptr<ActionChecker> checker_;
  std::vector<PiDecoder> decoders_;  // one per node
  std::vector<ControlAgent*> control_agents_;

  std::uint64_t status_messages_ = 0;
  std::uint64_t decode_errors_ = 0;
  std::uint64_t actions_broadcast_ = 0;
};

}  // namespace capes::core
