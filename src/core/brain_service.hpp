#pragma once
// The daemon-side half of the distributed control plane: one BrainService
// session hosts the Replay DB + Interface Daemon (ingest-only) + DRL
// Engine for one connected capes_agentd and speaks the remote_brain
// protocol over a net::Endpoint.
//
// The session is built entirely from the client's Hello — the same
// TraceMeta snapshot a capture file leads with, plus the per-domain
// action-space layout — exactly the way TraceReplayer rebuilds a run
// from a capture. Every tick the service ingests the client's status and
// reward frames in FIFO order, then on kFrameTickDone computes, checks,
// applies (to its parameter mirrors) and records the action with the
// same deterministic logic as the in-process path, streaming the checked
// broadcasts back. A loopback session with zero loss therefore trains
// the engine to a weights fingerprint bit-identical to the `sync`
// transport's.
//
// Lifecycle: serve() returns when the client says Bye (clean_shutdown),
// when the link dies (EOF / error / idle timeout — a killed agent never
// hangs the daemon), or on a protocol error. One endpoint, one session:
// capes_daemond accepts, serves, reports.

#include <cstdint>
#include <string>

#include "net/endpoint.hpp"

namespace capes::core {

struct BrainServiceReport {
  bool hello_ok = false;        ///< handshake completed
  bool clean_shutdown = false;  ///< client said Bye (vs. link death)
  std::int64_t ticks = 0;       ///< kFrameTickDone barriers served
  std::size_t num_domains = 0;
  std::uint64_t status_records = 0;
  std::uint64_t reward_records = 0;
  std::uint64_t decode_errors = 0;      ///< malformed PI payloads
  std::uint64_t actions_broadcast = 0;  ///< checked actions that applied
  std::uint64_t actions_vetoed = 0;     ///< checker rejections -> NULL
  std::size_t train_steps = 0;          ///< minibatch steps run
  std::uint32_t fingerprint = 0;        ///< final online-weights CRC32
  std::string error;                    ///< non-empty on protocol failure
};

class BrainService {
 public:
  /// Serve one session on a connected endpoint until Bye, link death, or
  /// a protocol error. Blocking; run it on the accept thread (or a test
  /// thread). The endpoint outlives the call.
  BrainServiceReport serve(net::Endpoint& endpoint);
};

}  // namespace capes::core
