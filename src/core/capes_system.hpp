#pragma once
// CapesSystem: wires the whole Figure 1 architecture onto one or more
// target systems and a shared simulator — Monitoring Agents on every
// node, the sharded Interface Daemon with per-domain Action Checkers,
// the Replay DB (optionally WAL-durable), the DRL Engine, and Control
// Agents. One DRL brain tunes N control domains: observations
// concatenate every domain's nodes, the action space is the
// concatenation of every domain's parameter adjustments (plus the shared
// NULL action), and a single unified tick loop drives all domains. With
// one domain this is exactly the original single-cluster system.
// Drives sampling/action/training ticks and exposes the evaluation
// workflow of Appendix A.4: run_training / run_baseline / run_tuned.
//
// Control network: every agent <-> daemon hop rides a bus::Channel whose
// bus::Transport CapesOptions::transport selects. The default
// SyncTransport delivers within the tick (bit-identical to the direct
// calls it replaced); SimTransport adds seeded latency / jitter / drop,
// with late PI messages surfacing on arrival and dropped ones absorbed
// by the Replay DB's missing-entry tolerance.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bus/transport.hpp"
#include "capture/wire_log_writer.hpp"
#include "core/adapter.hpp"
#include "core/control_domain.hpp"
#include "core/drl_engine.hpp"
#include "core/interface_daemon.hpp"
#include "core/monitoring_agent.hpp"
#include "core/objective.hpp"
#include "rl/action_space.hpp"
#include "rl/replay_db.hpp"
#include "sim/fault.hpp"
#include "sim/shard_planner.hpp"
#include "sim/simulator.hpp"
#include "stats/measurement.hpp"
#include "waldb/database.hpp"

namespace capes::util {
class ThreadPool;
}

namespace capes::core {

class BrainClient;

struct CapesOptions {
  /// Table 1: sampling tick length (1 s) and action tick length (1 action
  /// per second).
  double sampling_tick_s = 1.0;
  std::size_t action_ticks_per_sample = 1;
  rl::ReplayDbOptions replay;  ///< num_nodes/pis_per_node filled from adapters
  DrlEngineOptions engine;
  /// Objective normalization scale (MB/s mapped to O(1) rewards).
  double reward_scale_mbs = 200.0;
  /// Durable replay DB directory ("" = memory only).
  std::string replay_db_dir;
  /// Worker threads for the per-tick hot path (monitoring-agent fan-out,
  /// minibatch assembly, DQN GEMM panels). 0 keeps the single-threaded
  /// deterministic path; the threaded path is engineered to produce the
  /// same results (parallel collect-and-publish, order-independent
  /// drain), just faster.
  std::size_t worker_threads = 0;
  /// Control-network model for the agent <-> daemon hops (sync = direct
  /// delivery, the default). When the sim transport's seed is not
  /// explicitly set, it derives from the engine seed so one experiment
  /// seed also fixes the network realization.
  bus::TransportOptions transport;
  /// Simulator event-loop shards: how many per-domain event queues the
  /// hosting simulator is partitioned into. 1 (the default) keeps the
  /// serial single-queue loop; 0 means "auto" — one shard per control
  /// domain; N caps the shard count (domains map to shard d % N). Between
  /// sampling ticks domains only interact through bus channel publishes,
  /// so shards advance independently — concurrently when worker_threads
  /// gives them a pool — and rejoin at a time-synced barrier every tick,
  /// bit-identical to the serial loop for a fixed seed. ExperimentBuilder
  /// resolves this against the domain count and configures the simulator;
  /// callers wiring CapesSystem onto their own Simulator shard it
  /// themselves (sim::Simulator::configure_shards / bind_shard).
  std::size_t sim_shards = 1;
  /// How domains map onto those shards. kStatic keeps the historical
  /// round-robin (domain d on shard d % sim_shards, fixed for the run);
  /// kRate re-packs domains onto shards at every phase boundary by
  /// last-phase observed event counts (LPT bin-packing, deterministic
  /// tie-breaks), migrating each moved domain's pending events to its new
  /// queue. Placement only changes which thread advances a domain —
  /// never its event order — so any plan stays bit-identical to serial.
  sim::ShardPlanKind shard_plan = sim::ShardPlanKind::kStatic;
  /// Deterministic fault injection (sim/fault.hpp): OST crashes with
  /// timed restarts, straggler disks, and control-network partition
  /// windows. The default (every rate zero) injects nothing and keeps
  /// the run bit-identical to a build without fault support. When the
  /// plan's seed is not explicitly set, it derives from the engine seed
  /// so one experiment seed also fixes the fault realization. Rejected
  /// under the tcp transport (the brain is remote; fault state could not
  /// be replayed bit-identically).
  sim::FaultPlan faults;
  /// Flight recorder: when non-empty, every daemon-boundary message (PI
  /// status, suggested/recorded actions, checked-action broadcasts) plus
  /// per-tick rewards and phase markers is written to this capture file
  /// for offline replay (`capes_replay`). "" (the default) disables
  /// capture and keeps the tick path allocation-free.
  std::string capture_path;
  /// Capture-ring slots between the control thread and the file sink.
  std::size_t capture_ring = 8192;
};

/// The §A.4 run phases. kIdle only ever appears as "no phase running".
enum class RunPhase { kIdle, kTraining, kBaseline, kTuned };

/// Lower-case phase label ("training", "baseline", "tuned", "idle").
const char* phase_name(RunPhase phase);

/// Result of one run phase (training, baseline, or tuned measurement).
/// Throughput aggregates (sums) across domains; latency and reward are
/// cross-domain means, so their scale is independent of the domain count.
struct RunResult {
  stats::MeasurementSession throughput;  ///< one MB/s sample per tick
  stats::MeasurementSession latency_ms;  ///< one mean-latency sample per tick
  std::vector<double> rewards;           ///< objective outputs per tick
  std::int64_t start_tick = 0;
  std::int64_t end_tick = 0;
  std::size_t train_steps = 0;
  /// Control-network accounting over this phase (PI + action channels):
  /// messages the transport dropped, and messages delivered at least one
  /// tick after they were sent. Both zero under the sync transport.
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_late = 0;
  /// Sharded-loop observability (empty / zero when the simulator has one
  /// shard): events each shard executed over the phase, and wall-clock
  /// nanoseconds each shard spent idle at tick barriers while the slowest
  /// shard finished (wall time is reporting-only, never fed back into
  /// placement).
  std::vector<std::uint64_t> shard_events;
  std::vector<std::uint64_t> shard_barrier_wait_ns;
  /// Deterministic imbalance counter: summed over ticks, the events the
  /// busiest shard ran that tick minus each other shard's events — the
  /// work the barrier serialized. A better-balanced plan strictly lowers
  /// it on a skewed workload, and it is reproducible run to run.
  std::uint64_t barrier_wait_events = 0;
  /// Fault-injection accounting over this phase, summed across domains
  /// (all zero when CapesOptions::faults is disabled): fault starts by
  /// kind, their total, and (domain, tick) pairs with any fault active.
  std::uint64_t faults_injected = 0;
  std::uint64_t ost_crashes = 0;
  std::uint64_t stragglers = 0;
  std::uint64_t partitions = 0;
  std::uint64_t ticks_degraded = 0;
  /// Regime shifts the phase's per-tick throughput series shows
  /// (stats::pelt_mean_shift change points) — how much churn, injected
  /// or organic, the tuner was exposed to.
  std::size_t regime_shifts = 0;

  stats::MeasurementResult analyze() const { return throughput.analyze(); }
  stats::MeasurementResult analyze_latency() const { return latency_ms.analyze(); }
  /// Max/mean of shard_events (1.0 when unsharded or eventless).
  double shard_imbalance() const;
};

/// Per-tick sample snapshot delivered to tick listeners. Aggregated like
/// RunResult; per-domain detail is available via CapesSystem::domain(i)'s
/// last_perf()/last_reward() from inside the listener.
struct TickEvent {
  RunPhase phase = RunPhase::kIdle;
  std::int64_t tick = 0;
  double throughput_mbs = 0.0;
  double latency_ms = 0.0;
  double reward = 0.0;
};

/// Delivered to train-step listeners after each training tick that ran at
/// least one minibatch step.
struct TrainStepEvent {
  std::int64_t tick = 0;
  std::size_t steps = 0;        ///< minibatch steps this tick
  std::size_t total_steps = 0;  ///< cumulative over the system's lifetime
};

class CapesSystem {
 public:
  /// Single-cluster convenience: one control domain over `adapter`. The
  /// adapter must outlive the system. The objective defaults to aggregate
  /// throughput.
  CapesSystem(sim::Simulator& sim, TargetSystemAdapter& adapter,
              CapesOptions opts, ObjectiveFunction objective = nullptr);

  /// Multi-cluster form: one control domain per spec, all sharing this
  /// system's DRL Engine, Replay DB and tick loop on `sim`. Adapters must
  /// outlive the system and agree on pis_per_node (observation rows are
  /// uniform). `default_objective` applies to every spec without its own.
  CapesSystem(sim::Simulator& sim, const std::vector<ControlDomainSpec>& specs,
              CapesOptions opts, ObjectiveFunction default_objective = nullptr);
  ~CapesSystem();

  /// Train for `ticks` sampling ticks (control on, epsilon annealing,
  /// training steps running). Continues from the current tick count, so
  /// consecutive calls extend one training session.
  RunResult run_training(std::int64_t ticks);

  /// Measure with default parameter values and no CAPES control.
  RunResult run_baseline(std::int64_t ticks);

  /// Measure with CAPES steering at eval epsilon, training frozen.
  RunResult run_tuned(std::int64_t ticks);

  /// §3.6: tell CAPES a new workload just started (bumps epsilon).
  void notify_workload_change();

  /// Observer hooks. Listeners fire inside the sampling loop in
  /// registration order; they must not re-enter run_*().
  void add_tick_listener(std::function<void(const TickEvent&)> listener);
  void add_train_step_listener(std::function<void(const TrainStepEvent&)> listener);

  /// Reset every domain's tuned parameters to their initial values.
  void reset_parameters();

  /// In-process components. Under the `tcp:` transport these live in the
  /// remote capes_daemond, and calling the accessors aborts with a
  /// message — use the remote-safe training_fingerprint() /
  /// total_train_steps() (or brain_client()) instead.
  DrlEngine& engine();
  rl::ReplayDb& replay();
  InterfaceDaemon& interface_daemon();

  /// True when the transport is `tcp:`: the Monitoring/Control Agents and
  /// the simulated cluster run here while the Replay DB + DRL Engine live
  /// in a capes_daemond this system holds a connection to.
  bool remote_brain() const { return client_ != nullptr; }
  /// The connection to that daemon (null in-process).
  BrainClient* brain_client() { return client_.get(); }

  /// CRC32 of the online-network weights after all in-flight training,
  /// and cumulative minibatch steps — engine-backed in process, cached
  /// from the latest daemon ack under `tcp:`.
  std::uint32_t training_fingerprint() const;
  std::size_t total_train_steps() const;
  /// The control-network transport every hop rides on.
  const bus::Transport& transport() const { return *transport_; }
  /// The composite action space: the shared NULL action plus every
  /// domain's parameter adjustments, domain-namespaced names when there
  /// is more than one domain.
  const rl::ActionSpace& action_space() const { return *space_; }
  /// Every domain's parameter values, concatenated in domain order (the
  /// composite space's parameter order). A snapshot by value: domain
  /// parameter vectors mutate every action tick, so hold the result, not
  /// a reference into the system.
  std::vector<double> parameter_values() const;
  std::int64_t current_tick() const { return tick_; }

  // ---- control domains ---------------------------------------------------
  std::size_t num_domains() const { return domains_.size(); }
  ControlDomain& domain(std::size_t i) { return *domains_[i]; }
  const ControlDomain& domain(std::size_t i) const { return *domains_[i]; }
  const std::vector<std::unique_ptr<ControlDomain>>& domains() const {
    return domains_;
  }
  /// Monitored nodes across all domains (the replay DB's node count).
  std::size_t total_nodes() const { return total_nodes_; }
  /// The hot-path worker pool (null when worker_threads == 0).
  util::ThreadPool* worker_pool() { return pool_.get(); }

  // ---- shard placement ---------------------------------------------------
  /// The placement policy this system was built with.
  sim::ShardPlanKind shard_plan_kind() const { return planner_.kind(); }
  /// The live plan: current shard per domain plus the loads it was packed
  /// from (domain counts until the first rate re-pack).
  const sim::ShardPlan& shard_plan() const { return shard_plan_; }
  /// Times a phase-boundary re-pack actually moved at least one domain.
  std::size_t shard_replans() const { return shard_replans_; }

  // ---- fault injection ---------------------------------------------------
  /// The fault plan in effect (seed already derived; disabled when
  /// CapesOptions::faults was not enabled).
  const sim::FaultPlan& fault_plan() const { return fault_plan_; }
  /// Lifetime fault counters summed across every domain's injector.
  sim::FaultCounters fault_counters() const;

  /// Domain 0's Monitoring Agents (single-cluster accessor, kept for
  /// call sites predating control domains).
  const std::vector<std::unique_ptr<MonitoringAgent>>& monitoring_agents() const {
    return domains_[0]->monitoring_agents();
  }

  /// Total bytes sent by all Monitoring Agents of all domains (Table 2).
  std::uint64_t monitoring_bytes_sent() const;

  /// Checkpoint the trained model (§A.4). Returns false on I/O error.
  bool save_model(const std::string& path) const;
  bool load_model(const std::string& path);

  /// The durable replay database, when configured (else nullptr).
  waldb::Database* database() { return db_.get(); }

  /// The flight recorder, when capture_path was set (else nullptr).
  /// Callers may close() it early (idempotent, control thread only) to
  /// read final byte counts before the system is destroyed.
  capture::WireLogWriter* capture_writer() { return capture_.get(); }

  /// Heap allocations observed on the per-tick CAPES control path
  /// (status sample/encode/decode/record, reward record, action
  /// select/check/publish, minibatch assembly + inline training).
  /// Excluded by design: action delivery to the target system (applying
  /// parameters may schedule events), simulator event execution,
  /// durable-DB writes,
  /// result/log appends, listener callbacks, and learner-thread work.
  /// Zero once warm in the audited configuration (sync learner, no
  /// worker pool, memory-only DB, bounded replay retention); always 0
  /// when the counting allocator hook is not linked in.
  std::uint64_t hot_path_allocations() const;

 private:
  RunResult run_phase(std::int64_t ticks, RunPhase mode);
  void on_sampling_tick(RunResult& result, RunPhase mode);
  void sample_all_agents(std::int64_t t);
  /// Advance every domain's fault schedule to the current tick (under
  /// that domain's shard binding) and capture the observed fault events.
  /// Runs at the sampling-tick barrier, before the simulator advance.
  void inject_faults();
  /// Phase-boundary re-pack: plan from the per-domain event counts of the
  /// window since the last plan and migrate + re-attach moved domains.
  /// No-op for static plans, single-shard simulators, or before any
  /// events exist (the deterministic round-robin fallback).
  void replan_shards();
  /// Fold the simulator's last-advance per-shard stats into `result`.
  void accumulate_shard_stats(RunResult& result);

  sim::Simulator& sim_;
  CapesOptions opts_;
  ObjectiveFunction objective_;

  std::vector<std::unique_ptr<ControlDomain>> domains_;
  std::size_t total_nodes_ = 0;
  std::unique_ptr<rl::ActionSpace> space_;  ///< composite
  std::unique_ptr<waldb::Database> db_;
  std::unique_ptr<rl::ReplayDb> replay_;
  /// Declared before the daemon: the daemon's channels reference it.
  std::unique_ptr<bus::Transport> transport_;
  /// Declared before the daemon: the daemon holds a raw capture pointer.
  std::unique_ptr<capture::WireLogWriter> capture_;
  std::unique_ptr<InterfaceDaemon> daemon_;
  std::unique_ptr<DrlEngine> engine_;
  /// The distributed control plane's agent-side half (tcp transport
  /// only; then daemon_/engine_/replay_/db_ stay null). Declared after
  /// transport_ and capture_ — it references both.
  std::unique_ptr<BrainClient> client_;
  std::unique_ptr<util::ThreadPool> pool_;

  /// All domains' Monitoring Agents in fan-in order (domain-major, then
  /// node): the unit of the per-tick sampling fan-out.
  std::vector<MonitoringAgent*> agents_flat_;
  /// Same agents indexed by global node id (payload recycling).
  std::vector<MonitoringAgent*> agent_by_node_;
  /// Control-path allocation count (see hot_path_allocations()).
  std::uint64_t hot_path_allocs_ = 0;

  /// Shard placement state: the planner, the live plan, the per-domain
  /// executed-count snapshot at the last plan (so each re-pack sees only
  /// the window since then), and reusable count scratch.
  sim::ShardPlanner planner_{sim::ShardPlanKind::kStatic, 0, 1};
  sim::ShardPlan shard_plan_;
  std::vector<std::uint64_t> domain_events_baseline_;
  std::vector<std::uint64_t> domain_events_scratch_;
  std::size_t shard_replans_ = 0;
  /// Fault injection: the seeded plan and one injector per domain (empty
  /// when the plan is disabled — the tick loop then never touches fault
  /// state, keeping faults-off runs bit-identical to pre-fault builds).
  sim::FaultPlan fault_plan_;
  std::vector<std::unique_ptr<sim::FaultInjector>> injectors_;
  /// Per-domain scratch for the pooled reward-sampling fan-out (results
  /// are reduced serially in domain order, so the pooled path matches the
  /// serial one bit for bit).
  std::vector<PerfSample> domain_perf_scratch_;
  std::vector<double> domain_reward_scratch_;

  std::int64_t tick_ = 0;
  std::size_t total_train_steps_ = 0;
  std::vector<std::function<void(const TickEvent&)>> tick_listeners_;
  std::vector<std::function<void(const TrainStepEvent&)>> train_step_listeners_;
};

}  // namespace capes::core
