#pragma once
// CapesSystem: wires the whole Figure 1 architecture onto a target system
// and a simulator — Monitoring Agents on every node, the Interface Daemon
// with its Action Checker, the Replay DB (optionally WAL-durable), the
// DRL Engine, and Control Agents. Drives sampling/action/training ticks
// and exposes the evaluation workflow of Appendix A.4:
// run_training / run_baseline / run_tuned.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/adapter.hpp"
#include "core/drl_engine.hpp"
#include "core/interface_daemon.hpp"
#include "core/monitoring_agent.hpp"
#include "core/objective.hpp"
#include "rl/action_space.hpp"
#include "rl/replay_db.hpp"
#include "sim/simulator.hpp"
#include "stats/measurement.hpp"
#include "waldb/database.hpp"

namespace capes::core {

struct CapesOptions {
  /// Table 1: sampling tick length (1 s) and action tick length (1 action
  /// per second).
  double sampling_tick_s = 1.0;
  std::size_t action_ticks_per_sample = 1;
  rl::ReplayDbOptions replay;  ///< num_nodes/pis_per_node filled from adapter
  DrlEngineOptions engine;
  /// Objective normalization scale (MB/s mapped to O(1) rewards).
  double reward_scale_mbs = 200.0;
  /// Durable replay DB directory ("" = memory only).
  std::string replay_db_dir;
};

/// The §A.4 run phases. kIdle only ever appears as "no phase running".
enum class RunPhase { kIdle, kTraining, kBaseline, kTuned };

/// Lower-case phase label ("training", "baseline", "tuned", "idle").
const char* phase_name(RunPhase phase);

/// Result of one run phase (training, baseline, or tuned measurement).
struct RunResult {
  stats::MeasurementSession throughput;  ///< one MB/s sample per tick
  stats::MeasurementSession latency_ms;  ///< one mean-latency sample per tick
  std::vector<double> rewards;           ///< objective outputs per tick
  std::int64_t start_tick = 0;
  std::int64_t end_tick = 0;
  std::size_t train_steps = 0;

  stats::MeasurementResult analyze() const { return throughput.analyze(); }
  stats::MeasurementResult analyze_latency() const { return latency_ms.analyze(); }
};

/// Per-tick sample snapshot delivered to tick listeners.
struct TickEvent {
  RunPhase phase = RunPhase::kIdle;
  std::int64_t tick = 0;
  double throughput_mbs = 0.0;
  double latency_ms = 0.0;
  double reward = 0.0;
};

/// Delivered to train-step listeners after each training tick that ran at
/// least one minibatch step.
struct TrainStepEvent {
  std::int64_t tick = 0;
  std::size_t steps = 0;        ///< minibatch steps this tick
  std::size_t total_steps = 0;  ///< cumulative over the system's lifetime
};

class CapesSystem {
 public:
  /// The adapter must outlive the system. The objective defaults to
  /// aggregate throughput.
  CapesSystem(sim::Simulator& sim, TargetSystemAdapter& adapter,
              CapesOptions opts, ObjectiveFunction objective = nullptr);
  ~CapesSystem();

  /// Train for `ticks` sampling ticks (control on, epsilon annealing,
  /// training steps running). Continues from the current tick count, so
  /// consecutive calls extend one training session.
  RunResult run_training(std::int64_t ticks);

  /// Measure with default parameter values and no CAPES control.
  RunResult run_baseline(std::int64_t ticks);

  /// Measure with CAPES steering at eval epsilon, training frozen.
  RunResult run_tuned(std::int64_t ticks);

  /// §3.6: tell CAPES a new workload just started (bumps epsilon).
  void notify_workload_change();

  /// Observer hooks. Listeners fire inside the sampling loop in
  /// registration order; they must not re-enter run_*().
  void add_tick_listener(std::function<void(const TickEvent&)> listener);
  void add_train_step_listener(std::function<void(const TrainStepEvent&)> listener);

  /// Reset tuned parameters to their initial (default) values.
  void reset_parameters();

  DrlEngine& engine() { return *engine_; }
  rl::ReplayDb& replay() { return *replay_; }
  InterfaceDaemon& interface_daemon() { return *daemon_; }
  const rl::ActionSpace& action_space() const { return *space_; }
  const std::vector<double>& parameter_values() const { return param_values_; }
  std::int64_t current_tick() const { return tick_; }

  const std::vector<std::unique_ptr<MonitoringAgent>>& monitoring_agents() const {
    return monitoring_agents_;
  }

  /// Total bytes sent by all Monitoring Agents (Table 2).
  std::uint64_t monitoring_bytes_sent() const;

  /// Checkpoint the trained model (§A.4). Returns false on I/O error.
  bool save_model(const std::string& path) const;
  bool load_model(const std::string& path);

  /// The durable replay database, when configured (else nullptr).
  waldb::Database* database() { return db_.get(); }

 private:
  RunResult run_phase(std::int64_t ticks, RunPhase mode);
  void on_sampling_tick(RunResult& result, RunPhase mode);

  sim::Simulator& sim_;
  TargetSystemAdapter& adapter_;
  CapesOptions opts_;
  ObjectiveFunction objective_;

  std::unique_ptr<rl::ActionSpace> space_;
  std::unique_ptr<waldb::Database> db_;
  std::unique_ptr<rl::ReplayDb> replay_;
  std::unique_ptr<InterfaceDaemon> daemon_;
  std::unique_ptr<DrlEngine> engine_;
  std::vector<std::unique_ptr<MonitoringAgent>> monitoring_agents_;
  std::vector<std::unique_ptr<ControlAgent>> control_agents_;

  std::vector<double> param_values_;
  std::int64_t tick_ = 0;
  std::size_t total_train_steps_ = 0;
  std::vector<std::function<void(const TickEvent&)>> tick_listeners_;
  std::vector<std::function<void(const TrainStepEvent&)>> train_step_listeners_;
};

}  // namespace capes::core
