#include "core/config_io.hpp"

#include <algorithm>

namespace capes::core {

CapesOptions capes_options_from_config(const util::Config& cfg,
                                       CapesOptions base) {
  CapesOptions o = base;
  o.sampling_tick_s = cfg.get_double("capes.sampling_tick_s", o.sampling_tick_s);
  o.reward_scale_mbs = cfg.get_double("capes.reward_scale_mbs", o.reward_scale_mbs);
  o.replay_db_dir = cfg.get("capes.replay_db_dir", o.replay_db_dir);
  // Flight recorder: a capture file path turns recording on; the ring
  // size bounds how far the file sink may fall behind before records are
  // shed (counted, never blocking the control thread).
  o.capture_path = cfg.get("capes.capture.path", o.capture_path);
  o.capture_ring = static_cast<std::size_t>(std::max<std::int64_t>(
      2, cfg.get_int("capes.capture.ring",
                     static_cast<std::int64_t>(o.capture_ring))));
  // Clamp negatives to "no pool" rather than wrapping through size_t.
  o.worker_threads = static_cast<std::size_t>(std::max<std::int64_t>(
      0, cfg.get_int("capes.worker_threads",
                     static_cast<std::int64_t>(o.worker_threads))));
  // Simulator event-loop sharding: "auto" (or 0) = one event queue per
  // control domain; N >= 1 caps the queue count (1 = the serial loop).
  // Negatives clamp to the serial loop, like every other overlay key.
  if (const auto shards = cfg.get("capes.sim.shards")) {
    if (*shards == "auto") {
      o.sim_shards = 0;
    } else {
      const std::int64_t n = cfg.get_int(
          "capes.sim.shards", static_cast<std::int64_t>(o.sim_shards));
      o.sim_shards = n < 0 ? 1 : static_cast<std::size_t>(n);
    }
  }
  // Domain-to-shard placement: "static" round-robin or "rate" (re-pack by
  // observed event rate at phase boundaries). Unknown values keep the
  // base, overlay-style; the builder's config_file path validates first.
  const std::string plan = cfg.get("capes.sim.shard_plan",
                                   sim::shard_plan_name(o.shard_plan));
  o.shard_plan = plan == "rate" ? sim::ShardPlanKind::kRate
                                : sim::ShardPlanKind::kStatic;

  // Control-network transport. "capes.transport" names the scheme; the
  // sim knobs mirror the CLI spec options. Out-of-range values clamp to
  // the nearest valid one (config files are overlays, not validators —
  // the CLI/spec path rejects instead).
  const std::string scheme =
      cfg.get("capes.transport",
              o.transport.kind == bus::TransportKind::kSim   ? "sim"
              : o.transport.kind == bus::TransportKind::kTcp ? "tcp"
                                                             : "sync");
  o.transport.kind = scheme == "sim"   ? bus::TransportKind::kSim
                     : scheme == "tcp" ? bus::TransportKind::kTcp
                                       : bus::TransportKind::kSync;
  o.transport.latency_ticks = std::max<std::int64_t>(
      0, cfg.get_int("capes.transport.latency_ticks", o.transport.latency_ticks));
  o.transport.jitter =
      std::max(0.0, cfg.get_double("capes.transport.jitter", o.transport.jitter));
  o.transport.drop = std::clamp(
      cfg.get_double("capes.transport.drop", o.transport.drop), 0.0, 0.999);
  if (cfg.has("capes.transport.seed")) {
    o.transport.seed = static_cast<std::uint64_t>(
        cfg.get_int("capes.transport.seed",
                    static_cast<std::int64_t>(o.transport.seed)));
    o.transport.seed_explicit = true;
  }
  // The tcp endpoint: where capes_daemond listens. The port clamps into
  // the valid range like the other numeric overlays; the strict
  // CLI/spec path rejects instead.
  o.transport.tcp_host = cfg.get("capes.transport.tcp.host", o.transport.tcp_host);
  o.transport.tcp_port = std::clamp<std::int64_t>(
      cfg.get_int("capes.transport.tcp.port", o.transport.tcp_port), 0, 65535);
  o.transport.connect_timeout_ms = std::max<std::int64_t>(
      0, cfg.get_int("capes.transport.tcp.connect_timeout_ms",
                     o.transport.connect_timeout_ms));
  o.transport.io_threads = std::clamp<std::int64_t>(
      cfg.get_int("capes.transport.tcp.io_threads", o.transport.io_threads), 1,
      64);

  // Deterministic fault injection. Rates clamp into [0, 0.999] and
  // windows to >= 1 like the other numeric overlays (the --faults= spec
  // path rejects instead); slow_factor clamps to >= 1 so a typo can
  // never make a straggler faster than healthy.
  auto& f = o.faults;
  f.ost_crash = std::clamp(
      cfg.get_double("capes.sim.faults.ost_crash", f.ost_crash), 0.0, 0.999);
  f.restart_ticks = std::max<std::int64_t>(
      1, cfg.get_int("capes.sim.faults.restart_ticks", f.restart_ticks));
  f.straggler = std::clamp(
      cfg.get_double("capes.sim.faults.straggler", f.straggler), 0.0, 0.999);
  f.slow_factor = std::max(
      1.0, cfg.get_double("capes.sim.faults.slow_factor", f.slow_factor));
  f.straggler_ticks = std::max<std::int64_t>(
      1, cfg.get_int("capes.sim.faults.straggler_ticks", f.straggler_ticks));
  f.partition = std::clamp(
      cfg.get_double("capes.sim.faults.partition", f.partition), 0.0, 0.999);
  f.partition_ticks = std::max<std::int64_t>(
      1, cfg.get_int("capes.sim.faults.partition_ticks", f.partition_ticks));
  if (cfg.has("capes.sim.faults.seed")) {
    f.seed = static_cast<std::uint64_t>(cfg.get_int(
        "capes.sim.faults.seed", static_cast<std::int64_t>(f.seed)));
    f.seed_explicit = true;
  }

  auto& e = o.engine;
  // Learner mode reads like the transport scheme: config files are
  // overlays, so an unknown value keeps the base rather than failing
  // here — the CLI/builder path validates strictly instead.
  const std::string learner_mode = cfg.get(
      "capes.learner.mode",
      e.learner_mode == LearnerMode::kAsync ? "async" : "sync");
  e.learner_mode =
      learner_mode == "async" ? LearnerMode::kAsync : LearnerMode::kSync;
  e.checkpoint_ticks = static_cast<std::size_t>(std::max<std::int64_t>(
      0, cfg.get_int("capes.learner.checkpoint_ticks",
                     static_cast<std::int64_t>(e.checkpoint_ticks))));
  e.minibatch_size = static_cast<std::size_t>(
      cfg.get_int("drl.minibatch_size", static_cast<std::int64_t>(e.minibatch_size)));
  e.train_steps_per_tick = static_cast<std::size_t>(cfg.get_int(
      "drl.train_steps_per_tick", static_cast<std::int64_t>(e.train_steps_per_tick)));
  e.eval_epsilon = cfg.get_double("drl.eval_epsilon", e.eval_epsilon);
  e.dqn.gamma = static_cast<float>(cfg.get_double("drl.gamma", e.dqn.gamma));
  e.dqn.learning_rate =
      static_cast<float>(cfg.get_double("drl.learning_rate", e.dqn.learning_rate));
  e.dqn.target_update_alpha = static_cast<float>(
      cfg.get_double("drl.target_update_alpha", e.dqn.target_update_alpha));
  e.dqn.num_hidden_layers = static_cast<std::size_t>(cfg.get_int(
      "drl.num_hidden_layers", static_cast<std::int64_t>(e.dqn.num_hidden_layers)));
  e.dqn.hidden_size = static_cast<std::size_t>(
      cfg.get_int("drl.hidden_size", static_cast<std::int64_t>(e.dqn.hidden_size)));
  e.dqn.use_target_network =
      cfg.get_bool("drl.use_target_network", e.dqn.use_target_network);
  e.epsilon.initial = cfg.get_double("drl.epsilon_initial", e.epsilon.initial);
  e.epsilon.final_value = cfg.get_double("drl.epsilon_final", e.epsilon.final_value);
  e.epsilon.anneal_ticks =
      cfg.get_int("drl.epsilon_anneal_ticks", e.epsilon.anneal_ticks);
  e.epsilon.bump_value = cfg.get_double("drl.epsilon_bump", e.epsilon.bump_value);

  auto& r = o.replay;
  r.ticks_per_observation = static_cast<std::size_t>(cfg.get_int(
      "replay.ticks_per_observation",
      static_cast<std::int64_t>(r.ticks_per_observation)));
  r.missing_tolerance =
      cfg.get_double("replay.missing_tolerance", r.missing_tolerance);
  r.max_ticks_retained = static_cast<std::size_t>(cfg.get_int(
      "replay.max_ticks_retained", static_cast<std::int64_t>(r.max_ticks_retained)));
  return o;
}

lustre::ClusterOptions cluster_options_from_config(const util::Config& cfg,
                                                   lustre::ClusterOptions base) {
  lustre::ClusterOptions o = base;
  o.num_clients = static_cast<std::size_t>(
      cfg.get_int("lustre.num_clients", static_cast<std::int64_t>(o.num_clients)));
  o.num_servers = static_cast<std::size_t>(
      cfg.get_int("lustre.num_servers", static_cast<std::int64_t>(o.num_servers)));
  o.default_cwnd = cfg.get_double("lustre.default_cwnd", o.default_cwnd);
  o.cwnd_min = cfg.get_double("lustre.cwnd_min", o.cwnd_min);
  o.cwnd_max = cfg.get_double("lustre.cwnd_max", o.cwnd_max);
  o.cwnd_step = cfg.get_double("lustre.cwnd_step", o.cwnd_step);
  o.default_rate_limit =
      cfg.get_double("lustre.default_rate_limit", o.default_rate_limit);
  o.rate_limit_min = cfg.get_double("lustre.rate_limit_min", o.rate_limit_min);
  o.rate_limit_max = cfg.get_double("lustre.rate_limit_max", o.rate_limit_max);
  o.rate_limit_step = cfg.get_double("lustre.rate_limit_step", o.rate_limit_step);
  o.max_dirty_bytes = static_cast<std::uint64_t>(cfg.get_int(
      "lustre.max_dirty_bytes", static_cast<std::int64_t>(o.max_dirty_bytes)));
  o.rpc_timeout = cfg.get_int("lustre.rpc_timeout_us", o.rpc_timeout);
  o.fragmentation = cfg.get_double("lustre.fragmentation", o.fragmentation);
  o.disk_fullness = cfg.get_double("lustre.disk_fullness", o.disk_fullness);
  o.seed = static_cast<std::uint64_t>(
      cfg.get_int("lustre.seed", static_cast<std::int64_t>(o.seed)));

  o.disk.seq_read_mbs = cfg.get_double("disk.seq_read_mbs", o.disk.seq_read_mbs);
  o.disk.seq_write_mbs = cfg.get_double("disk.seq_write_mbs", o.disk.seq_write_mbs);
  o.disk.read_positioning_us =
      cfg.get_int("disk.read_positioning_us", o.disk.read_positioning_us);
  o.disk.write_positioning_us =
      cfg.get_int("disk.write_positioning_us", o.disk.write_positioning_us);
  o.disk.write_queue_gain =
      cfg.get_double("disk.write_queue_gain", o.disk.write_queue_gain);
  o.disk.write_queue_scale =
      cfg.get_double("disk.write_queue_scale", o.disk.write_queue_scale);
  o.disk.read_queue_gain =
      cfg.get_double("disk.read_queue_gain", o.disk.read_queue_gain);
  o.disk.read_queue_scale =
      cfg.get_double("disk.read_queue_scale", o.disk.read_queue_scale);
  o.disk.service_noise = cfg.get_double("disk.service_noise", o.disk.service_noise);

  o.network.link_bandwidth_mbs =
      cfg.get_double("network.link_bandwidth_mbs", o.network.link_bandwidth_mbs);
  o.network.fabric_bandwidth_mbs = cfg.get_double("network.fabric_bandwidth_mbs",
                                                  o.network.fabric_bandwidth_mbs);
  o.network.base_latency =
      cfg.get_int("network.base_latency_us", o.network.base_latency);
  o.network.jitter_fraction =
      cfg.get_double("network.jitter_fraction", o.network.jitter_fraction);
  return o;
}

util::Config config_from_options(const CapesOptions& capes,
                                 const lustre::ClusterOptions& cluster) {
  util::Config cfg;
  cfg.set_double("capes.sampling_tick_s", capes.sampling_tick_s);
  cfg.set_double("capes.reward_scale_mbs", capes.reward_scale_mbs);
  cfg.set("capes.replay_db_dir", capes.replay_db_dir);
  cfg.set("capes.capture.path", capes.capture_path);
  cfg.set_int("capes.capture.ring",
              static_cast<std::int64_t>(capes.capture_ring));
  cfg.set_int("capes.worker_threads",
              static_cast<std::int64_t>(capes.worker_threads));
  if (capes.sim_shards == 0) {
    cfg.set("capes.sim.shards", "auto");
  } else {
    cfg.set_int("capes.sim.shards",
                static_cast<std::int64_t>(capes.sim_shards));
  }
  cfg.set("capes.sim.shard_plan", sim::shard_plan_name(capes.shard_plan));
  cfg.set("capes.transport",
          capes.transport.kind == bus::TransportKind::kSim   ? "sim"
          : capes.transport.kind == bus::TransportKind::kTcp ? "tcp"
                                                             : "sync");
  cfg.set_int("capes.transport.latency_ticks", capes.transport.latency_ticks);
  cfg.set_double("capes.transport.jitter", capes.transport.jitter);
  cfg.set_double("capes.transport.drop", capes.transport.drop);
  if (capes.transport.seed_explicit) {
    cfg.set_int("capes.transport.seed",
                static_cast<std::int64_t>(capes.transport.seed));
  }
  if (capes.transport.kind == bus::TransportKind::kTcp) {
    cfg.set("capes.transport.tcp.host", capes.transport.tcp_host);
    cfg.set_int("capes.transport.tcp.port", capes.transport.tcp_port);
    cfg.set_int("capes.transport.tcp.connect_timeout_ms",
                capes.transport.connect_timeout_ms);
    cfg.set_int("capes.transport.tcp.io_threads", capes.transport.io_threads);
  }
  // Emitted only when a fault plan is active, so faultless configs stay
  // byte-identical to pre-fault builds.
  if (capes.faults.enabled()) {
    cfg.set_double("capes.sim.faults.ost_crash", capes.faults.ost_crash);
    cfg.set_int("capes.sim.faults.restart_ticks", capes.faults.restart_ticks);
    cfg.set_double("capes.sim.faults.straggler", capes.faults.straggler);
    cfg.set_double("capes.sim.faults.slow_factor", capes.faults.slow_factor);
    cfg.set_int("capes.sim.faults.straggler_ticks",
                capes.faults.straggler_ticks);
    cfg.set_double("capes.sim.faults.partition", capes.faults.partition);
    cfg.set_int("capes.sim.faults.partition_ticks",
                capes.faults.partition_ticks);
  }
  if (capes.faults.seed_explicit) {
    cfg.set_int("capes.sim.faults.seed",
                static_cast<std::int64_t>(capes.faults.seed));
  }
  cfg.set("capes.learner.mode",
          capes.engine.learner_mode == LearnerMode::kAsync ? "async" : "sync");
  cfg.set_int("capes.learner.checkpoint_ticks",
              static_cast<std::int64_t>(capes.engine.checkpoint_ticks));
  cfg.set_int("drl.minibatch_size",
              static_cast<std::int64_t>(capes.engine.minibatch_size));
  cfg.set_int("drl.train_steps_per_tick",
              static_cast<std::int64_t>(capes.engine.train_steps_per_tick));
  cfg.set_double("drl.eval_epsilon", capes.engine.eval_epsilon);
  cfg.set_double("drl.gamma", capes.engine.dqn.gamma);
  cfg.set_double("drl.learning_rate", capes.engine.dqn.learning_rate);
  cfg.set_double("drl.target_update_alpha", capes.engine.dqn.target_update_alpha);
  cfg.set_int("drl.num_hidden_layers",
              static_cast<std::int64_t>(capes.engine.dqn.num_hidden_layers));
  cfg.set_int("drl.hidden_size",
              static_cast<std::int64_t>(capes.engine.dqn.hidden_size));
  cfg.set_bool("drl.use_target_network", capes.engine.dqn.use_target_network);
  cfg.set_double("drl.epsilon_initial", capes.engine.epsilon.initial);
  cfg.set_double("drl.epsilon_final", capes.engine.epsilon.final_value);
  cfg.set_int("drl.epsilon_anneal_ticks", capes.engine.epsilon.anneal_ticks);
  cfg.set_int("replay.ticks_per_observation",
              static_cast<std::int64_t>(capes.replay.ticks_per_observation));
  cfg.set_double("replay.missing_tolerance", capes.replay.missing_tolerance);

  cfg.set_int("lustre.num_clients", static_cast<std::int64_t>(cluster.num_clients));
  cfg.set_int("lustre.num_servers", static_cast<std::int64_t>(cluster.num_servers));
  cfg.set_double("lustre.default_cwnd", cluster.default_cwnd);
  cfg.set_double("lustre.cwnd_max", cluster.cwnd_max);
  cfg.set_double("lustre.default_rate_limit", cluster.default_rate_limit);
  cfg.set_double("disk.seq_read_mbs", cluster.disk.seq_read_mbs);
  cfg.set_double("disk.seq_write_mbs", cluster.disk.seq_write_mbs);
  cfg.set_double("network.fabric_bandwidth_mbs",
                 cluster.network.fabric_bandwidth_mbs);
  return cfg;
}

}  // namespace capes::core
