#include "core/drl_engine.hpp"

#include <algorithm>
#include <cassert>

#include "util/alloc_hook.hpp"
#include "util/serialize.hpp"
#include "waldb/database.hpp"

namespace capes::core {

namespace {
/// waldb location of the learner checkpoint.
constexpr const char* kCheckpointTable = "learner";
constexpr std::int64_t kCheckpointKey = 0;
constexpr std::uint32_t kCheckpointMagic = 0x4c43504bu;  // "LCPK"
constexpr std::uint32_t kCheckpointVersion = 1;
}  // namespace

DrlEngine::DrlEngine(DrlEngineOptions opts, rl::ReplayDb& replay)
    : opts_(opts), replay_(replay), epsilon_(opts.epsilon), rng_(opts.seed) {
  opts_.dqn.observation_size = replay_.observation_size();
  dqn_ = std::make_unique<rl::Dqn>(opts_.dqn);
  obs_buffer_.resize(replay_.observation_size());
  if (opts_.learner_mode == LearnerMode::kAsync) {
    // One tick's train jobs plus a checkpoint job must always fit, so the
    // producer never deadlocks waiting for its own consumer.
    const std::size_t depth = std::max(opts_.learner_queue_depth,
                                       opts_.train_steps_per_tick + 1);
    work_ring_ = std::make_unique<util::SpscRing<TrainJob*>>(depth);
    free_ring_ = std::make_unique<util::SpscRing<TrainJob*>>(depth + 1);
    for (std::size_t i = 0; i < depth; ++i) {
      jobs_.push_back(std::make_unique<TrainJob>());
      free_ring_->push(jobs_.back().get());
    }
  }
}

DrlEngine::~DrlEngine() { stop_learner(); }

double DrlEngine::current_epsilon(std::int64_t t, bool training) const {
  return training ? epsilon_.value(t) : opts_.eval_epsilon;
}

std::size_t DrlEngine::compute_action(std::int64_t t, bool training,
                                      util::ThreadPool* pool) {
  // Async: act only on fully published weights. After this wait the
  // acting snapshot equals the online network sync mode would read, so
  // the chosen action is bit-identical.
  sync_with_learner();
  const double eps = current_epsilon(training ? training_ticks_ : t, training);
  if (training) ++training_ticks_;
  // Without a complete observation we can still explore randomly (early
  // training); otherwise fall back to the NULL action.
  if (!replay_.build_observation(t, obs_buffer_.data())) {
    if (training && rng_.chance(eps)) {
      return rng_.pick_index(opts_.dqn.num_actions);
    }
    return 0;
  }
  return dqn_->select_action(obs_buffer_, eps, rng_, pool);
}

std::size_t DrlEngine::train_tick(util::ThreadPool* pool) {
  return opts_.learner_mode == LearnerMode::kAsync ? train_tick_async(pool)
                                                   : train_tick_sync(pool);
}

std::size_t DrlEngine::train_tick_sync(util::ThreadPool* pool) {
  std::size_t ran = 0;
  for (std::size_t i = 0; i < opts_.train_steps_per_tick; ++i) {
    // The tally brackets minibatch assembly + the training step — the
    // per-tick hot region. The (amortized, bounded) log appends below
    // stay outside it by design.
    util::AllocTally tally;
    if (!replay_.construct_minibatch_into(sync_batch_, opts_.minibatch_size,
                                          rng_, /*max_rounds=*/64, pool)) {
      break;
    }
    const rl::TrainStepResult r = dqn_->train_step(sync_batch_, pool);
    hot_path_allocs_ += tally.delta();
    prediction_errors_.emplace_back(dqn_->train_steps(), r.prediction_error);
    losses_.emplace_back(dqn_->train_steps(), r.loss);
    ++ran;
  }
  if (ran > 0) maybe_checkpoint_sync();
  return ran;
}

std::size_t DrlEngine::train_tick_async(util::ThreadPool* pool) {
  start_learner();
  std::size_t ran = 0;
  for (std::size_t i = 0; i < opts_.train_steps_per_tick; ++i) {
    TrainJob* job = acquire_job();
    // Sampling happens here, on the control thread, with the same rng_
    // stream position sync mode would have — the learner only trains.
    util::AllocTally tally;
    if (!replay_.construct_minibatch_into(job->batch, opts_.minibatch_size,
                                          rng_, /*max_rounds=*/64, pool)) {
      spare_job_ = job;
      break;
    }
    hot_path_allocs_ += tally.delta();
    job->kind = TrainJob::Kind::kTrain;
    work_ring_->push(job);
    enqueued_.fetch_add(1, std::memory_order_relaxed);
    ++ran;
  }
  if (ran > 0 && opts_.checkpoint_ticks > 0 &&
      ++ticks_since_checkpoint_ >= opts_.checkpoint_ticks &&
      checkpoint_db_ != nullptr) {
    ticks_since_checkpoint_ = 0;
    TrainJob* job = acquire_job();
    job->kind = TrainJob::Kind::kCheckpoint;
    job->training_ticks = training_ticks_;
    work_ring_->push(job);
    enqueued_.fetch_add(1, std::memory_order_relaxed);
  }
  return ran;
}

DrlEngine::TrainJob* DrlEngine::acquire_job() {
  if (spare_job_ != nullptr) {
    TrainJob* job = spare_job_;
    spare_job_ = nullptr;
    return job;
  }
  TrainJob* job = nullptr;
  if (free_ring_->try_pop(job)) return job;
  // Every slot is in flight; the ring is sized so this only happens under
  // sustained enqueue without an intervening compute_action. Wait for the
  // learner to recycle one.
  free_ring_->pop(job);
  return job;
}

void DrlEngine::sync_with_learner() const {
  if (!learner_.joinable()) return;
  const std::uint64_t target = enqueued_.load(std::memory_order_relaxed);
  std::uint64_t done = completed_.load(std::memory_order_acquire);
  while (done < target) {
    completed_.wait(done, std::memory_order_acquire);
    done = completed_.load(std::memory_order_acquire);
  }
}

void DrlEngine::start_learner() {
  if (learner_.joinable()) return;
  // Publish the initial acting snapshot before the thread exists, so the
  // acting path never reads the online network once the learner may be
  // mutating it.
  dqn_->publish_acting();
  learner_ = std::thread([this] { learner_loop(); });
}

void DrlEngine::stop_learner() {
  if (!learner_.joinable()) return;
  sync_with_learner();
  work_ring_->close();
  learner_.join();
  // Quiescent again: fold the snapshot away so sync-mode reads (tests,
  // reports) see the online network directly.
  dqn_->clear_acting();
}

void DrlEngine::learner_loop() {
  TrainJob* job = nullptr;
  while (work_ring_->pop(job)) {
    if (job->kind == TrainJob::Kind::kTrain) {
      // Pool-less on purpose: training weights are pool-independent, and
      // a private thread must not contend for the control-path pool.
      const rl::TrainStepResult r = dqn_->train_step(job->batch, nullptr);
      prediction_errors_.emplace_back(dqn_->train_steps(), r.prediction_error);
      losses_.emplace_back(dqn_->train_steps(), r.loss);
    } else {
      write_checkpoint(job->training_ticks);
    }
    // Publish before signalling completion: whoever observes completed_
    // caught up (acquire) is guaranteed the snapshot that includes this
    // step.
    dqn_->publish_acting();
    free_ring_->push(job);
    completed_.fetch_add(1, std::memory_order_release);
    completed_.notify_all();
  }
}

void DrlEngine::notify_workload_change() {
  epsilon_.notify_workload_change(training_ticks_);
}

void DrlEngine::set_checkpoint_store(waldb::Database* db) {
  checkpoint_db_ = db;
}

void DrlEngine::maybe_checkpoint_sync() {
  if (opts_.checkpoint_ticks == 0 || checkpoint_db_ == nullptr) return;
  if (++ticks_since_checkpoint_ < opts_.checkpoint_ticks) return;
  ticks_since_checkpoint_ = 0;
  write_checkpoint(training_ticks_);
}

void DrlEngine::write_checkpoint(std::int64_t ticks_at_capture) {
  if (checkpoint_db_ == nullptr) return;
  util::BinaryWriter w;
  w.put_u32(kCheckpointMagic);
  w.put_u32(kCheckpointVersion);
  w.put_i64(ticks_at_capture);
  dqn_->save_state(w);
  checkpoint_db_->put(kCheckpointTable, kCheckpointKey, w.take());
  checkpoint_db_->flush();
  checkpoints_written_.fetch_add(1, std::memory_order_release);
}

bool DrlEngine::restore_checkpoint(waldb::Database& db) {
  const auto blob = db.get(kCheckpointTable, kCheckpointKey);
  if (!blob) return false;
  util::BinaryReader r(*blob);
  auto magic = r.get_u32();
  auto version = r.get_u32();
  if (!magic || *magic != kCheckpointMagic || !version ||
      *version != kCheckpointVersion) {
    return false;
  }
  auto ticks = r.get_i64();
  if (!ticks) return false;
  if (!dqn_->load_state(r)) return false;
  training_ticks_ = *ticks;
  return true;
}

}  // namespace capes::core
