#include "core/drl_engine.hpp"

namespace capes::core {

DrlEngine::DrlEngine(DrlEngineOptions opts, rl::ReplayDb& replay)
    : opts_(opts), replay_(replay), epsilon_(opts.epsilon), rng_(opts.seed) {
  opts_.dqn.observation_size = replay_.observation_size();
  dqn_ = std::make_unique<rl::Dqn>(opts_.dqn);
  obs_buffer_.resize(replay_.observation_size());
}

double DrlEngine::current_epsilon(std::int64_t t, bool training) const {
  return training ? epsilon_.value(t) : opts_.eval_epsilon;
}

std::size_t DrlEngine::compute_action(std::int64_t t, bool training,
                                      util::ThreadPool* pool) {
  const double eps = current_epsilon(training ? training_ticks_ : t, training);
  if (training) ++training_ticks_;
  // Without a complete observation we can still explore randomly (early
  // training); otherwise fall back to the NULL action.
  if (!replay_.build_observation(t, obs_buffer_.data())) {
    if (training && rng_.chance(eps)) {
      return rng_.pick_index(opts_.dqn.num_actions);
    }
    return 0;
  }
  return dqn_->select_action(obs_buffer_, eps, rng_, pool);
}

std::size_t DrlEngine::train_tick(util::ThreadPool* pool) {
  std::size_t ran = 0;
  for (std::size_t i = 0; i < opts_.train_steps_per_tick; ++i) {
    auto batch = replay_.construct_minibatch(opts_.minibatch_size, rng_,
                                             /*max_rounds=*/64, pool);
    if (!batch) break;
    const rl::TrainStepResult r = dqn_->train_step(*batch, pool);
    prediction_errors_.emplace_back(dqn_->train_steps(), r.prediction_error);
    losses_.emplace_back(dqn_->train_steps(), r.loss);
    ++ran;
  }
  return ran;
}

void DrlEngine::notify_workload_change() {
  epsilon_.notify_workload_change(training_ticks_);
}

}  // namespace capes::core
