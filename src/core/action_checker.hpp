#pragma once
// Action checker (§3.7, Figure 1): an optional guard between the DRL
// Engine and the Control Agents that rules out egregiously bad actions
// (e.g. a congestion window of zero) before they reach the target system.
// Bounds are always enforced; users can add domain rules.

#include <functional>
#include <string>
#include <vector>

#include "rl/action_space.hpp"

namespace capes::core {

class ActionChecker {
 public:
  explicit ActionChecker(const rl::ActionSpace& space) : space_(space) {}

  /// A rule inspects the *post-action* parameter values; returning false
  /// vetoes the action.
  using Rule = std::function<bool(const std::vector<double>&)>;

  void add_rule(std::string name, Rule rule);

  /// Validate applying `action` on top of `current_values`. Returns true
  /// if the resulting values are inside every parameter's range and pass
  /// all rules. Vetoed actions are counted.
  bool check(const rl::DecodedAction& action,
             const std::vector<double>& current_values);

  std::uint64_t vetoed_actions() const { return vetoed_; }
  std::size_t num_rules() const { return rules_.size(); }

 private:
  const rl::ActionSpace& space_;
  std::vector<std::pair<std::string, Rule>> rules_;
  std::uint64_t vetoed_ = 0;
  /// Post-action values handed to rules; reused across checks so the
  /// per-tick action path stays allocation-free once warm.
  std::vector<double> next_scratch_;
};

}  // namespace capes::core
