#pragma once
// The front door to CAPES: Experiment owns the whole object graph the
// paper's evaluation needs — simulated clock, target systems, workloads,
// and the CapesSystem control loop — and runs the Appendix A.4 workflow
// (train -> baseline -> tuned) as structured phases. Construction goes
// through a fluent builder:
//
//   auto exp = core::Experiment::builder()
//                  .workload("fileserver")
//                  .seed(42)
//                  .tune_write_cache()
//                  .on_phase_end(core::csv_phase_sink("out"))
//                  .build(&error);
//   auto report = exp->run();
//
// Workload specs resolve through workload::Registry, so new workloads
// plug in without touching this facade. Custom target systems skip the
// bundled Lustre cluster entirely: pass .adapter(my_system) instead of
// .workload(...) (see examples/quickstart.cpp).
//
// Multi-cluster experiments add control domains with .add_cluster():
//
//   auto exp = core::Experiment::builder()
//                  .workload("random:0.1")       // domain 0
//                  .add_cluster("seqwrite")      // domain 1, own cluster
//                  .add_cluster(my_adapter)      // domain 2, custom system
//                  .worker_threads(4)            // parallel sampling fan-in
//                  .build(&error);
//
// Every domain gets its own simulated cluster (bundled ones) or adapter,
// all driven by one simulator and tuned by one shared DRL brain (see
// core/control_domain.hpp). A single-cluster build through the old API
// is bit-identical to the pre-domain facade at the same seed.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/capes_system.hpp"
#include "core/objective.hpp"
#include "core/presets.hpp"
#include "lustre/cluster.hpp"
#include "sim/simulator.hpp"
#include "workload/workload.hpp"

namespace capes::core {

class Experiment;

/// One completed phase: the raw per-tick data plus its Pilot-style
/// analysis, ready for printing or sinking.
struct PhaseReport {
  RunPhase phase = RunPhase::kIdle;
  std::string label;     ///< phase_name(phase)
  /// Active workload names, "+"-joined across domains; "custom" stands in
  /// for adapter domains in a mix ("" for a single custom adapter).
  std::string workload;
  /// Per-tick data plus the phase's control-network accounting
  /// (result.messages_dropped / result.messages_late — zero under the
  /// default sync transport).
  RunResult result;
  stats::MeasurementResult throughput;
  stats::MeasurementResult latency;
};

/// Everything an Experiment has run so far, in order.
struct ExperimentReport {
  std::vector<PhaseReport> phases;
  std::vector<std::string> parameter_names;
  std::vector<double> final_parameters;

  /// Latest report for `phase`, or nullptr if that phase never ran. The
  /// pointer is into `phases` and is invalidated by the next run_*() call
  /// (which appends to the vector) — consume it before running more.
  const PhaseReport* find(RunPhase phase) const;

  /// Tuned-vs-baseline throughput gain in percent (0 when either phase is
  /// missing or the baseline mean is non-positive).
  double tuned_gain_percent() const;
};

using TickObserver = std::function<void(const TickEvent&)>;
using TrainStepObserver = std::function<void(const TrainStepEvent&)>;
using PhaseObserver = std::function<void(const PhaseReport&)>;

/// One CSV row per tick: tick,throughput_mbs,latency_ms,reward. (The
/// composable replacement for the old RunResult::to_csv member.)
std::string run_result_csv(const RunResult& result);

/// Phase observer that writes `<prefix>_<phase>.csv` after every phase.
/// Re-running a phase overwrites its file.
PhaseObserver csv_phase_sink(std::string prefix);

class ExperimentBuilder {
 public:
  /// Start from an explicit preset instead of fast_preset(seed).
  ExperimentBuilder& preset(EvaluationPreset p);
  /// Seed for the preset's RNGs (cluster, DQN, exploration). Applies on
  /// top of an explicit preset too.
  ExperimentBuilder& seed(std::uint64_t s);
  /// Overlay a conf file (core/config_io.hpp keys) onto the preset.
  ExperimentBuilder& config_file(std::string path);
  /// Workload spec resolved through workload::Registry ("random:0.1", ...).
  /// Defines domain 0 on a bundled Lustre cluster.
  ExperimentBuilder& workload(std::string spec);
  /// Tune a custom target system instead of the bundled Lustre cluster
  /// (domain 0). The adapter must outlive the experiment. Mutually
  /// exclusive with workload()/monitor_servers()/tune_write_cache().
  ExperimentBuilder& adapter(TargetSystemAdapter& a);
  /// Add one more control domain on its own bundled Lustre cluster
  /// running `workload_spec`. Repeatable; domains are tuned together by
  /// one shared DRL brain. Each added cluster derives its own seed from
  /// the preset's so replicated specs still diverge.
  ExperimentBuilder& add_cluster(std::string workload_spec);
  /// Add one more control domain over a custom adapter (must outlive the
  /// experiment, and agree with every other domain on pis_per_node).
  ExperimentBuilder& add_cluster(TargetSystemAdapter& a);
  /// Worker threads for the hot per-tick path (0 = single-threaded;
  /// see CapesOptions::worker_threads).
  ExperimentBuilder& worker_threads(std::size_t threads);
  /// Simulator event-loop shards: 1 (the default) is the serial
  /// single-queue loop, 0 means "auto" (one event queue per control
  /// domain), N caps the queue count (domains map to shard d % N; the
  /// request also caps at the domain count). Shards advance concurrently
  /// on the worker_threads() pool between sampling ticks and meet a
  /// time-synced barrier at every tick — bit-identical to the serial
  /// loop for a fixed seed (see CapesOptions::sim_shards). Conf key:
  /// capes.sim.shards.
  ExperimentBuilder& sim_shards(std::size_t shards);
  /// How control domains map onto those event-loop shards, as a spec
  /// string: "static" (round-robin d % shards, fixed for the run — the
  /// default) or "rate" (re-pack domains by last-phase observed event
  /// counts at every phase boundary, LPT bin-packing with deterministic
  /// tie-breaks). Placement never changes physics, so either plan is
  /// bit-identical to the serial loop for a fixed seed. A malformed spec
  /// fails build(). Conf key: capes.sim.shard_plan.
  ExperimentBuilder& shard_plan(std::string spec);
  /// Same, from the already-parsed kind.
  ExperimentBuilder& shard_plan(sim::ShardPlanKind kind);
  /// Control-network transport for the agent <-> daemon hops, as a spec
  /// string: "sync" (immediate delivery, the default — bit-identical to
  /// builds that never call transport()) or
  /// "sim[:latency_ticks=N,jitter=X,drop=P,seed=N]" (seeded, simulated
  /// latency / jitter / drop). A malformed spec fails build(). Wins over
  /// capes_options()/config-file transport settings.
  ExperimentBuilder& transport(std::string spec);
  /// Same, from already-parsed options.
  ExperimentBuilder& transport(bus::TransportOptions opts);
  /// Deterministic fault injection, as a spec string: "off" (the default
  /// — bit-identical to builds that never call faults()) or
  /// "faults[:ost_crash=P,restart_ticks=N,straggler=P,slow_factor=X,
  /// straggler_ticks=N,partition=P,partition_ticks=N,seed=N]". Every
  /// fault fate is a pure hash of (seed, kind, node, tick), so a seeded
  /// faulted run is bit-identical at any shard/thread count. A malformed
  /// spec fails build(), as does combining faults with the tcp transport
  /// (a real control network cannot replay deterministic fates). Conf
  /// keys: capes.sim.faults.*; CLI: --faults=. Wins over
  /// capes_options()/config-file fault settings.
  ExperimentBuilder& faults(std::string spec);
  /// Same, from an already-parsed plan.
  ExperimentBuilder& faults(sim::FaultPlan plan);
  /// Where DRL training steps run: LearnerMode::kSync trains inline on
  /// the control thread (bit-identical to builds that never call this),
  /// kAsync moves training to a dedicated learner thread that overlaps
  /// the next tick's simulation — same weights, same actions, by the
  /// engine's sampling-on-the-control-thread protocol. Conf key:
  /// capes.learner.mode. Wins over capes_options()/config-file settings.
  ExperimentBuilder& learner(LearnerMode mode);
  /// Same, from a spec string: "sync" or "async". Anything else fails
  /// build() (no silent fallback).
  ExperimentBuilder& learner(std::string spec);
  /// Persist the learner's full state (weights, optimizer moments, step
  /// counters) through the durable replay DB every N training ticks
  /// (0 = off, the default). Takes effect when replay_db_dir() is set.
  /// Conf key: capes.learner.checkpoint_ticks.
  ExperimentBuilder& learner_checkpoint_ticks(std::size_t ticks);
  /// Override CapesOptions wholesale (mainly for custom adapters; in
  /// Lustre mode the preset's options are usually right).
  ExperimentBuilder& capes_options(CapesOptions opts);
  /// Reward function (§3.2); defaults to aggregate throughput. Applies to
  /// every domain.
  ExperimentBuilder& objective(ObjectiveFunction f);
  ExperimentBuilder& monitor_servers(bool on = true);   ///< §6 extension
  ExperimentBuilder& tune_write_cache(bool on = true);  ///< §6 extension
  /// Default tick counts for run()/run_training()/run_baseline()/
  /// run_tuned() calls that don't pass explicit counts.
  ExperimentBuilder& train_ticks(std::int64_t ticks);
  ExperimentBuilder& eval_ticks(std::int64_t ticks);
  /// Simulated warm-up before the first phase (default 5 s).
  ExperimentBuilder& warmup_seconds(double s);
  /// Durable replay DB directory ("" = memory only).
  ExperimentBuilder& replay_db_dir(std::string dir);
  /// Flight recorder: capture every daemon-boundary message (PI status,
  /// actions, broadcasts) plus rewards and phase markers to `path` for
  /// offline replay with `capes_replay` ("" = off, the default). Conf
  /// keys: capes.capture.path / capes.capture.ring; CLI: --capture=.
  /// Wins over capes_options()/config-file capture settings.
  ExperimentBuilder& capture(std::string path);

  ExperimentBuilder& on_tick(TickObserver f);
  ExperimentBuilder& on_train_step(TrainStepObserver f);
  ExperimentBuilder& on_phase_end(PhaseObserver f);

  /// Validates the configuration and assembles the object graph. Returns
  /// nullptr and sets *error (if non-null) on an unknown workload, a bad
  /// spec, an unreadable config file, or a missing workload/adapter.
  /// The builder is left intact either way and can build again.
  std::unique_ptr<Experiment> build(std::string* error = nullptr);

 private:
  friend class Experiment;
  /// One domain past domain 0: either a workload spec on a bundled
  /// cluster or a caller-owned adapter.
  struct ExtraDomain {
    std::string workload_spec;
    TargetSystemAdapter* adapter = nullptr;
  };

  std::optional<EvaluationPreset> preset_;
  std::optional<std::uint64_t> seed_;
  std::string config_file_;
  std::string workload_spec_;
  TargetSystemAdapter* adapter_ = nullptr;
  std::vector<ExtraDomain> extra_domains_;
  std::optional<std::size_t> worker_threads_;
  std::optional<std::size_t> sim_shards_;
  std::optional<std::string> shard_plan_spec_;
  std::optional<sim::ShardPlanKind> shard_plan_kind_;
  std::optional<std::string> transport_spec_;
  std::optional<bus::TransportOptions> transport_options_;
  std::optional<std::string> faults_spec_;
  std::optional<sim::FaultPlan> faults_plan_;
  std::optional<LearnerMode> learner_mode_;
  std::optional<std::string> learner_spec_;
  std::optional<std::size_t> learner_checkpoint_ticks_;
  std::optional<CapesOptions> capes_options_;
  ObjectiveFunction objective_;
  bool monitor_servers_ = false;
  bool tune_write_cache_ = false;
  std::int64_t train_ticks_ = -1;
  std::int64_t eval_ticks_ = -1;
  double warmup_seconds_ = 5.0;
  std::optional<std::string> replay_db_dir_;
  std::optional<std::string> capture_path_;
  std::vector<TickObserver> tick_observers_;
  std::vector<TrainStepObserver> train_step_observers_;
  std::vector<PhaseObserver> phase_observers_;
};

class Experiment {
 public:
  static ExperimentBuilder builder() { return {}; }

  ~Experiment();
  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// The full §A.4 workflow: one training session, then a baseline and a
  /// tuned measurement, with phase observers firing after each phase.
  /// Negative tick counts use the builder/preset defaults.
  ExperimentReport run(std::int64_t train_ticks = -1,
                       std::int64_t eval_ticks = -1);

  /// Individual phases, for call sites that interleave them (epsilon
  /// checks, repeated tuned windows, model checkpointing between phases).
  PhaseReport run_training(std::int64_t ticks = -1);
  PhaseReport run_baseline(std::int64_t ticks = -1);
  PhaseReport run_tuned(std::int64_t ticks = -1);

  /// Swap domain 0's workload for `spec` (resolved via the registry):
  /// stops the old generator, starts the new one, and tells CAPES about
  /// the change so epsilon re-explores (§3.6). Bundled clusters only.
  bool switch_workload(const std::string& spec, std::string* error = nullptr);

  /// Swap a specific domain's workload (bundled-cluster domains only).
  bool switch_workload(std::size_t domain, const std::string& spec,
                       std::string* error = nullptr);

  /// §3.6 epsilon bump without a workload swap.
  void notify_workload_change();

  bool save_model(const std::string& path) const;
  bool load_model(const std::string& path);

  /// Everything run so far plus the current parameter state. The report
  /// keeps every phase's raw per-tick samples, so a long-lived Experiment
  /// that loops phases indefinitely grows it without bound; snapshot and
  /// clear via take_report() in continuous operation.
  const ExperimentReport& report() const { return report_; }

  /// Moves the accumulated report out, leaving an empty history (the
  /// parameter state stays current).
  ExperimentReport take_report();

  // Escape hatches to the owned graph, for benches and tests that poke
  // below the facade (prediction-error logs, direct parameter sweeps).
  sim::Simulator& simulator() { return *sim_; }
  CapesSystem& system() { return *system_; }
  std::size_t num_domains() const { return domain_runtimes_.size(); }
  lustre::Cluster* cluster() { return cluster_at(0); }  ///< null in adapter mode
  /// Domain `domain`'s bundled cluster; null for custom-adapter domains
  /// and out-of-range indices.
  lustre::Cluster* cluster_at(std::size_t domain) {
    return domain < domain_runtimes_.size()
               ? domain_runtimes_[domain].cluster.get()
               : nullptr;
  }
  workload::Workload* active_workload() { return workload_at(0); }  ///< null in adapter mode
  /// Domain `domain`'s bundled workload; null for custom-adapter domains
  /// and out-of-range indices.
  workload::Workload* workload_at(std::size_t domain) {
    return domain < domain_runtimes_.size()
               ? domain_runtimes_[domain].workload.get()
               : nullptr;
  }
  const EvaluationPreset& preset() const { return preset_; }
  /// Tick counts used when run_*() gets no explicit count (builder
  /// override if given, else the preset's).
  std::int64_t default_train_ticks() const { return default_train_ticks_; }
  std::int64_t default_eval_ticks() const { return default_eval_ticks_; }
  /// Active workload names, "+"-joined across domains with "custom" for
  /// adapter domains ("" for a single custom adapter; a single bundled
  /// domain reads as before).
  std::string workload_name() const;
  /// Snapshot of every domain's parameter values in composite order.
  std::vector<double> parameter_values() const {
    return system_->parameter_values();
  }

  /// Runs the configured warm-up if it hasn't happened yet. Phases do
  /// this on demand; call it directly only to warm up without measuring.
  void ensure_warmed_up();

 private:
  friend class ExperimentBuilder;
  Experiment() = default;

  PhaseReport run_phase(RunPhase phase, std::int64_t ticks);

  EvaluationPreset preset_;
  double warmup_seconds_ = 5.0;
  bool warmed_up_ = false;
  std::int64_t default_train_ticks_ = 0;
  std::int64_t default_eval_ticks_ = 0;

  std::unique_ptr<sim::Simulator> sim_;
  /// Per-domain ownership: bundled domains own a cluster + workload;
  /// custom-adapter domains own neither (the caller does).
  struct DomainRuntime {
    std::unique_ptr<lustre::Cluster> cluster;
    std::unique_ptr<workload::Workload> workload;
    TargetSystemAdapter* adapter = nullptr;
    // No shard field on purpose: CapesSystem's planner is the single
    // source of placement. Workload restarts query the domain's live
    // shard through ControlDomain::bind_sim_shard(), so a rate re-pack
    // can never drift from a second cached copy here.
  };
  std::vector<DomainRuntime> domain_runtimes_;
  /// Generators replaced by switch_workload, kept alive until their
  /// in-flight operations have certainly drained (see reap in
  /// switch_workload) so completion callbacks never dangle.
  struct RetiredWorkload {
    std::unique_ptr<workload::Workload> workload;
    sim::TimeUs retired_at = 0;
  };
  std::vector<RetiredWorkload> retired_workloads_;
  std::unique_ptr<CapesSystem> system_;

  std::vector<PhaseObserver> phase_observers_;
  ExperimentReport report_;
};

}  // namespace capes::core
