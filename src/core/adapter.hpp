#pragma once
// The target-system adapter: CAPES "assumes little of the target system
// and only requires an interface to periodically extract states of the
// system and a way to change parameter values" (§3). This interface is the
// C++ analogue of the prototype's collector/controller functions
// (Appendix A.3.3). Implement it to tune any system; the bundled
// implementation is lustre::Cluster.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "rl/action_space.hpp"

namespace capes::sim {
class FaultTarget;
}  // namespace capes::sim

namespace capes::core {

/// Performance metrics over one sampling tick, used by the objective
/// function to compute the reward.
struct PerfSample {
  double read_mbs = 0.0;       ///< aggregate read throughput, MB/s
  double write_mbs = 0.0;      ///< aggregate write throughput, MB/s
  double avg_latency_ms = 0.0; ///< mean I/O completion latency, ms
  double throughput_mbs() const { return read_mbs + write_mbs; }
};

/// Adapter between CAPES and a target system.
class TargetSystemAdapter {
 public:
  virtual ~TargetSystemAdapter() = default;

  /// Number of monitored nodes (each runs a Monitoring Agent).
  virtual std::size_t num_nodes() const = 0;

  /// Number of performance indicators collected per node per tick.
  virtual std::size_t pis_per_node() const = 0;

  /// Collector function: the PI vector of `node` for the current sampling
  /// tick, already normalized to roughly [-1, 1] floats (§3.1).
  /// Concurrency contract: when the system runs with worker threads
  /// (CapesOptions::worker_threads > 0), this may be called concurrently
  /// for *distinct* nodes of one adapter — implementations must confine
  /// mutable sampling state per node (or synchronize shared state). The
  /// other adapter methods are always called serially.
  virtual std::vector<float> collect_observation(std::size_t node) = 0;

  /// Allocation-free collector: write exactly pis_per_node() floats for
  /// `node` into `out`. The default bridges to collect_observation()
  /// (allocating); hot-path adapters override it so the steady-state
  /// sampling tick touches no heap. Same concurrency contract as
  /// collect_observation().
  virtual void collect_observation_into(std::size_t node, float* out) {
    const std::vector<float> pis = collect_observation(node);
    std::copy(pis.begin(), pis.end(), out);
  }

  /// The tunable parameters (valid range, step, initial value) — drives
  /// the action space (§3.7).
  virtual std::vector<rl::TunableParameter> tunable_parameters() const = 0;

  /// Controller function: apply a full parameter-value vector (one entry
  /// per tunable parameter; all nodes use the same values, §4.1).
  virtual void set_parameters(const std::vector<double>& values) = 0;

  /// Current parameter values.
  virtual std::vector<double> current_parameters() const = 0;

  /// Performance since the previous call (one sampling tick's worth).
  virtual PerfSample sample_performance() = 0;

  /// Fault-injection surface (sim/fault.hpp), when this target supports
  /// node faults (the lustre adapter exposes its OST servers). Null (the
  /// default) means only control-network partition faults apply.
  virtual sim::FaultTarget* fault_target() { return nullptr; }
};

}  // namespace capes::core
