#pragma once
// Objective functions (§3.2): the reward is the output of an objective
// function over the target system's performance, which makes single- and
// multi-objective tuning uniform. Values are normalized by `scale` so the
// Q-network trains on O(1) rewards.

#include <functional>

#include "core/adapter.hpp"

namespace capes::core {

using ObjectiveFunction = std::function<double(const PerfSample&)>;

/// Single objective: aggregate throughput / scale_mbs.
inline ObjectiveFunction throughput_objective(double scale_mbs = 100.0) {
  return [scale_mbs](const PerfSample& s) {
    return s.throughput_mbs() / scale_mbs;
  };
}

/// Multi-objective: throughput reward minus a latency penalty, the
/// "tuning for throughput and latency at the same time" combination the
/// paper describes (§2, §6).
inline ObjectiveFunction throughput_latency_objective(
    double scale_mbs = 100.0, double latency_weight = 0.1,
    double latency_scale_ms = 10.0) {
  return [=](const PerfSample& s) {
    return s.throughput_mbs() / scale_mbs -
           latency_weight * (s.avg_latency_ms / latency_scale_ms);
  };
}

/// Write-throughput-only objective (useful for write-dominated tuning).
inline ObjectiveFunction write_throughput_objective(double scale_mbs = 100.0) {
  return [scale_mbs](const PerfSample& s) { return s.write_mbs / scale_mbs; };
}

}  // namespace capes::core
