#include "core/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/config_io.hpp"
#include "util/config.hpp"
#include "util/parse.hpp"
#include "workload/registry.hpp"

namespace capes::core {

// ---------------------------------------------------------------------------
// Reports and sinks
// ---------------------------------------------------------------------------

const PhaseReport* ExperimentReport::find(RunPhase phase) const {
  for (auto it = phases.rbegin(); it != phases.rend(); ++it) {
    if (it->phase == phase) return &*it;
  }
  return nullptr;
}

double ExperimentReport::tuned_gain_percent() const {
  const PhaseReport* baseline = find(RunPhase::kBaseline);
  const PhaseReport* tuned = find(RunPhase::kTuned);
  if (!baseline || !tuned || baseline->throughput.mean <= 0.0) return 0.0;
  return (tuned->throughput.mean / baseline->throughput.mean - 1.0) * 100.0;
}

std::string run_result_csv(const RunResult& result) {
  std::ostringstream out;
  out << "tick,throughput_mbs,latency_ms,reward\n";
  const auto& tput = result.throughput.samples();
  const auto& lat = result.latency_ms.samples();
  for (std::size_t i = 0; i < tput.size(); ++i) {
    out << (result.start_tick + static_cast<std::int64_t>(i)) << ',' << tput[i]
        << ',' << (i < lat.size() ? lat[i] : 0.0) << ','
        << (i < result.rewards.size() ? result.rewards[i] : 0.0) << '\n';
  }
  return out.str();
}

PhaseObserver csv_phase_sink(std::string prefix) {
  return [prefix = std::move(prefix)](const PhaseReport& report) {
    const std::string path = prefix + "_" + report.label + ".csv";
    std::ofstream out(path);
    out << run_result_csv(report.result);
    // Observers have no error channel back to the phase runner; an
    // unwritable sink must at least say so instead of dropping data.
    if (!out) std::fprintf(stderr, "csv_phase_sink: cannot write %s\n",
                           path.c_str());
  };
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

ExperimentBuilder& ExperimentBuilder::preset(EvaluationPreset p) {
  preset_ = std::move(p);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::seed(std::uint64_t s) {
  seed_ = s;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::config_file(std::string path) {
  config_file_ = std::move(path);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::workload(std::string spec) {
  workload_spec_ = std::move(spec);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::adapter(TargetSystemAdapter& a) {
  adapter_ = &a;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::add_cluster(std::string workload_spec) {
  ExtraDomain extra;
  extra.workload_spec = std::move(workload_spec);
  extra_domains_.push_back(std::move(extra));
  return *this;
}

ExperimentBuilder& ExperimentBuilder::add_cluster(TargetSystemAdapter& a) {
  ExtraDomain extra;
  extra.adapter = &a;
  extra_domains_.push_back(std::move(extra));
  return *this;
}

ExperimentBuilder& ExperimentBuilder::worker_threads(std::size_t threads) {
  worker_threads_ = threads;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::sim_shards(std::size_t shards) {
  sim_shards_ = shards;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::shard_plan(std::string spec) {
  shard_plan_spec_ = std::move(spec);
  shard_plan_kind_.reset();
  return *this;
}

ExperimentBuilder& ExperimentBuilder::shard_plan(sim::ShardPlanKind kind) {
  shard_plan_kind_ = kind;
  shard_plan_spec_.reset();
  return *this;
}

ExperimentBuilder& ExperimentBuilder::transport(std::string spec) {
  transport_spec_ = std::move(spec);
  transport_options_.reset();
  return *this;
}

ExperimentBuilder& ExperimentBuilder::transport(bus::TransportOptions opts) {
  transport_options_ = opts;
  transport_spec_.reset();
  return *this;
}

ExperimentBuilder& ExperimentBuilder::faults(std::string spec) {
  faults_spec_ = std::move(spec);
  faults_plan_.reset();
  return *this;
}

ExperimentBuilder& ExperimentBuilder::faults(sim::FaultPlan plan) {
  faults_plan_ = plan;
  faults_spec_.reset();
  return *this;
}

ExperimentBuilder& ExperimentBuilder::learner(LearnerMode mode) {
  learner_mode_ = mode;
  learner_spec_.reset();
  return *this;
}

ExperimentBuilder& ExperimentBuilder::learner(std::string spec) {
  learner_spec_ = std::move(spec);
  learner_mode_.reset();
  return *this;
}

ExperimentBuilder& ExperimentBuilder::learner_checkpoint_ticks(
    std::size_t ticks) {
  learner_checkpoint_ticks_ = ticks;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::capes_options(CapesOptions opts) {
  capes_options_ = std::move(opts);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::objective(ObjectiveFunction f) {
  objective_ = std::move(f);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::monitor_servers(bool on) {
  monitor_servers_ = on;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::tune_write_cache(bool on) {
  tune_write_cache_ = on;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::train_ticks(std::int64_t ticks) {
  train_ticks_ = ticks;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::eval_ticks(std::int64_t ticks) {
  eval_ticks_ = ticks;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::warmup_seconds(double s) {
  warmup_seconds_ = s;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::replay_db_dir(std::string dir) {
  replay_db_dir_ = std::move(dir);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::capture(std::string path) {
  capture_path_ = std::move(path);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::on_tick(TickObserver f) {
  if (f) tick_observers_.push_back(std::move(f));
  return *this;
}

ExperimentBuilder& ExperimentBuilder::on_train_step(TrainStepObserver f) {
  if (f) train_step_observers_.push_back(std::move(f));
  return *this;
}

ExperimentBuilder& ExperimentBuilder::on_phase_end(PhaseObserver f) {
  if (f) phase_observers_.push_back(std::move(f));
  return *this;
}

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

/// Per-domain cluster seed: domain 0 keeps the preset's seed verbatim
/// (single-cluster builds stay bit-identical); later domains mix in
/// their index so replicated workload specs still diverge.
std::uint64_t domain_cluster_seed(std::uint64_t base, std::size_t domain) {
  return base ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(domain));
}

}  // namespace

std::unique_ptr<Experiment> ExperimentBuilder::build(std::string* error) {
  if (adapter_ && !workload_spec_.empty()) {
    fail(error,
         "workload() requires the bundled Lustre cluster; a custom adapter() "
         "brings its own load generator");
    return nullptr;
  }
  if (adapter_ && (monitor_servers_ || tune_write_cache_)) {
    fail(error,
         "monitor_servers()/tune_write_cache() are Lustre-cluster options and "
         "do not apply to a custom adapter()");
    return nullptr;
  }
  if (!adapter_ && workload_spec_.empty() && extra_domains_.empty()) {
    fail(error,
         "no target system: pick a workload() for the bundled Lustre cluster "
         "or pass a custom adapter()");
    return nullptr;
  }

  EvaluationPreset preset =
      preset_ ? *preset_ : fast_preset(seed_.value_or(42));

  if (!config_file_.empty()) {
    util::Config cfg;
    if (!cfg.parse_file(config_file_)) {
      fail(error, "cannot parse config file '" + config_file_ + "'");
      return nullptr;
    }
    // Misspelling a transport scheme must not silently fall back to a
    // perfect network (the same strictness as the --transport/spec
    // path); the numeric keys merely clamp, like every other conf key.
    if (const auto scheme = cfg.get("capes.transport");
        scheme && *scheme != "sync" && *scheme != "sim" && *scheme != "tcp") {
      fail(error, "config file '" + config_file_ +
                      "': unknown capes.transport '" + *scheme +
                      "' (expected sync, sim, or tcp)");
      return nullptr;
    }
    // Same strictness for the shard count: a typo'd "auto" must not
    // silently fall back to the serial loop.
    if (const auto shards = cfg.get("capes.sim.shards");
        shards && *shards != "auto") {
      std::int64_t parsed = 0;
      if (!util::parse_i64(*shards, &parsed)) {
        fail(error, "config file '" + config_file_ +
                        "': invalid capes.sim.shards '" + *shards +
                        "' (expected auto or an integer)");
        return nullptr;
      }
    }
    // And for the learner mode: a misspelled "async" silently training
    // inline would hide the one behavioural knob this key exists for.
    if (const auto mode = cfg.get("capes.learner.mode");
        mode && *mode != "sync" && *mode != "async") {
      fail(error, "config file '" + config_file_ +
                      "': unknown capes.learner.mode '" + *mode +
                      "' (expected sync or async)");
      return nullptr;
    }
    // And the shard plan: a misspelled "rate" silently keeping the static
    // round-robin would hide the load balancing this key selects.
    if (const auto plan = cfg.get("capes.sim.shard_plan");
        plan && *plan != "static" && *plan != "rate") {
      fail(error, "config file '" + config_file_ +
                      "': unknown capes.sim.shard_plan '" + *plan +
                      "' (expected static or rate)");
      return nullptr;
    }
    preset.capes = capes_options_from_config(cfg, preset.capes);
    preset.cluster = cluster_options_from_config(cfg, preset.cluster);
  }
  // Opt-in only: a preset or config file that already enables the §6
  // extensions keeps them.
  if (monitor_servers_) preset.cluster.monitor_servers = true;
  if (tune_write_cache_) preset.cluster.tune_write_cache = true;
  if (capes_options_) preset.capes = *capes_options_;
  // An explicit transport() wins over the preset, config file, and
  // capes_options(). The spec-string form validates here so a typo is a
  // build() error, not a silent sync fallback.
  if (transport_spec_) {
    std::string transport_error;
    if (!bus::parse_transport_spec(*transport_spec_, &preset.capes.transport,
                                   &transport_error)) {
      fail(error, "invalid transport spec '" + *transport_spec_ +
                      "': " + transport_error);
      return nullptr;
    }
  } else if (transport_options_) {
    preset.capes.transport = *transport_options_;
  }
  // Learner mode mirrors the transport precedence: the spec-string form
  // validates here so a typo is a build() error.
  if (learner_spec_) {
    if (*learner_spec_ == "sync") {
      preset.capes.engine.learner_mode = LearnerMode::kSync;
    } else if (*learner_spec_ == "async") {
      preset.capes.engine.learner_mode = LearnerMode::kAsync;
    } else {
      fail(error, "invalid learner spec '" + *learner_spec_ +
                      "' (expected sync or async)");
      return nullptr;
    }
  } else if (learner_mode_) {
    preset.capes.engine.learner_mode = *learner_mode_;
  }
  if (learner_checkpoint_ticks_) {
    preset.capes.engine.checkpoint_ticks = *learner_checkpoint_ticks_;
  }
  // Shard plan mirrors the transport/learner precedence: the spec-string
  // form validates here so a typo is a build() error.
  if (shard_plan_spec_) {
    std::string plan_error;
    if (!sim::parse_shard_plan_spec(*shard_plan_spec_,
                                    &preset.capes.shard_plan, &plan_error)) {
      fail(error,
           "invalid shard plan spec '" + *shard_plan_spec_ + "': " + plan_error);
      return nullptr;
    }
  } else if (shard_plan_kind_) {
    preset.capes.shard_plan = *shard_plan_kind_;
  }
  // Fault injection mirrors the same precedence: the spec-string form
  // validates here so a typo is a build() error, not a silent faults-off
  // run.
  if (faults_spec_) {
    std::string fault_error;
    if (!sim::parse_fault_spec(*faults_spec_, &preset.capes.faults,
                               &fault_error)) {
      fail(error, "invalid fault spec '" + *faults_spec_ + "': " + fault_error);
      return nullptr;
    }
  } else if (faults_plan_) {
    preset.capes.faults = *faults_plan_;
  }
  // Fault fates are pure functions of the simulated tick clock; a real
  // control network has no such clock to share, so the combination is a
  // configuration error, not a degraded mode.
  if (preset.capes.faults.enabled() &&
      preset.capes.transport.kind == bus::TransportKind::kTcp) {
    fail(error,
         "fault injection requires a simulated control network (sync or sim "
         "transport); tcp cannot replay deterministic fault fates");
    return nullptr;
  }
  // An explicit seed() wins over whatever seeds the preset, config file,
  // or capes_options() carried.
  if (seed_) apply_seed(&preset, *seed_);
  if (replay_db_dir_) preset.capes.replay_db_dir = *replay_db_dir_;
  if (capture_path_) preset.capes.capture_path = *capture_path_;
  if (worker_threads_) preset.capes.worker_threads = *worker_threads_;
  if (sim_shards_) preset.capes.sim_shards = *sim_shards_;

  // Domain plan: domain 0 from workload()/adapter(), then every
  // add_cluster() in call order (add_cluster() alone starts at domain 0).
  struct DomainPlan {
    std::string spec;
    TargetSystemAdapter* adapter = nullptr;
  };
  std::vector<DomainPlan> plan;
  if (adapter_ != nullptr) {
    plan.push_back({"", adapter_});
  } else if (!workload_spec_.empty()) {
    plan.push_back({workload_spec_, nullptr});
  }
  for (const ExtraDomain& extra : extra_domains_) {
    plan.push_back({extra.workload_spec, extra.adapter});
  }

  // Resolve the event-loop shard count against the domain count: "auto"
  // (0) means one queue per domain, and no request can exceed the domain
  // count (an idle extra queue would only add barrier work). The preset
  // records the resolved count so Experiment::preset() reports what
  // actually runs.
  preset.capes.sim_shards =
      preset.capes.sim_shards == 0
          ? plan.size()
          : std::min(preset.capes.sim_shards, plan.size());
  if (preset.capes.sim_shards < 1) preset.capes.sim_shards = 1;

  std::unique_ptr<Experiment> exp(new Experiment());
  exp->preset_ = preset;
  exp->warmup_seconds_ = warmup_seconds_;
  exp->default_train_ticks_ =
      train_ticks_ >= 0 ? train_ticks_ : preset.train_ticks_long;
  exp->default_eval_ticks_ =
      eval_ticks_ >= 0 ? eval_ticks_ : preset.eval_ticks;

  exp->sim_ = std::make_unique<sim::Simulator>();
  exp->sim_->configure_shards(preset.capes.sim_shards);

  // Startup placement comes from the planner's static plan — the same
  // single source CapesSystem's constructor uses — so cluster-construction
  // scheduling and the system's attach agree domain by domain.
  const sim::ShardPlan initial_plan =
      sim::ShardPlanner(preset.capes.shard_plan, plan.size(),
                        preset.capes.sim_shards)
          .static_plan();
  std::vector<ControlDomainSpec> specs;
  specs.reserve(plan.size());
  for (std::size_t d = 0; d < plan.size(); ++d) {
    Experiment::DomainRuntime runtime;
    if (plan[d].adapter != nullptr) {
      runtime.adapter = plan[d].adapter;
    } else {
      // Bind this domain's shard (tagged with the domain) while the
      // cluster wires itself up and the generator starts: every event
      // they schedule from outside the event loop lands in the domain's
      // own queue under the domain's tag (follow-ups scheduled by running
      // events inherit both automatically).
      const auto binding = exp->sim_->bind_shard(
          initial_plan.shard_of_domain[d], static_cast<std::uint32_t>(d));
      lustre::ClusterOptions cluster_opts = preset.cluster;
      cluster_opts.seed = domain_cluster_seed(cluster_opts.seed, d);
      runtime.cluster =
          std::make_unique<lustre::Cluster>(*exp->sim_, cluster_opts);
      runtime.workload = workload::Registry::instance().create(
          plan[d].spec, *runtime.cluster, error);
      if (!runtime.workload) return nullptr;  // builder state untouched so far
      runtime.workload->start();
      runtime.adapter = runtime.cluster.get();
    }
    // Mirror CapesSystem's constructor preconditions with proper error
    // reporting (the constructor itself aborts on misuse): uniform PI
    // width across the shared replay DB, and one target system per
    // domain — a shared adapter would double-read per-tick deltas and
    // break the distinct-node concurrency contract.
    for (const ControlDomainSpec& existing : specs) {
      if (existing.adapter == runtime.adapter) {
        std::string message = "domain ";
        message += std::to_string(d);
        message += " reuses another domain's adapter; each control domain "
                   "needs its own target system";
        fail(error, message);
        return nullptr;
      }
    }
    if (!specs.empty() &&
        runtime.adapter->pis_per_node() != specs[0].adapter->pis_per_node()) {
      std::string message = "all control domains must agree on pis_per_node: domain ";
      message += std::to_string(d);
      message += " has ";
      message += std::to_string(runtime.adapter->pis_per_node());
      message += ", domain 0 has ";
      message += std::to_string(specs[0].adapter->pis_per_node());
      fail(error, message);
      return nullptr;
    }
    ControlDomainSpec spec;
    spec.adapter = runtime.adapter;
    specs.push_back(std::move(spec));
    exp->domain_runtimes_.push_back(std::move(runtime));
  }

  // Observers and the objective are copied, not moved: the builder stays
  // fully intact, so it can build again (e.g. A/B runs varying one knob).
  exp->phase_observers_ = phase_observers_;
  exp->system_ = std::make_unique<CapesSystem>(*exp->sim_, specs,
                                               preset.capes, objective_);
  for (const auto& observer : tick_observers_) {
    exp->system_->add_tick_listener(observer);
  }
  for (const auto& observer : train_step_observers_) {
    exp->system_->add_train_step_listener(observer);
  }
  for (const auto& parameter : exp->system_->action_space().parameters()) {
    exp->report_.parameter_names.push_back(parameter.name);
  }
  exp->report_.final_parameters = exp->system_->parameter_values();
  return exp;
}

// ---------------------------------------------------------------------------
// Experiment
// ---------------------------------------------------------------------------

Experiment::~Experiment() = default;

void Experiment::ensure_warmed_up() {
  if (warmed_up_) return;
  warmed_up_ = true;
  if (warmup_seconds_ > 0.0) {
    sim_->run_for(sim::seconds(warmup_seconds_), system_->worker_pool());
  }
}

std::string Experiment::workload_name() const {
  // Single custom-adapter experiments keep the historical "" label; in a
  // multi-domain mix every domain appears positionally, with "custom"
  // standing in for adapter domains so the joined label stays truthful.
  if (domain_runtimes_.size() == 1 && !domain_runtimes_[0].workload) {
    return "";
  }
  std::string joined;
  for (const DomainRuntime& runtime : domain_runtimes_) {
    if (!joined.empty()) joined += '+';
    joined += runtime.workload ? runtime.workload->name() : "custom";
  }
  return joined;
}

PhaseReport Experiment::run_phase(RunPhase phase, std::int64_t ticks) {
  ensure_warmed_up();
  PhaseReport report;
  report.phase = phase;
  report.label = phase_name(phase);
  report.workload = workload_name();
  switch (phase) {
    case RunPhase::kTraining:
      report.result = system_->run_training(ticks);
      break;
    case RunPhase::kBaseline:
      report.result = system_->run_baseline(ticks);
      break;
    case RunPhase::kTuned:
    case RunPhase::kIdle:
      report.result = system_->run_tuned(ticks);
      break;
  }
  report.throughput = report.result.analyze();
  report.latency = report.result.analyze_latency();
  report_.phases.push_back(std::move(report));
  report_.final_parameters = system_->parameter_values();
  const PhaseReport& stored = report_.phases.back();
  for (const auto& observer : phase_observers_) observer(stored);
  return stored;
}

PhaseReport Experiment::run_training(std::int64_t ticks) {
  return run_phase(RunPhase::kTraining,
                   ticks >= 0 ? ticks : default_train_ticks_);
}

PhaseReport Experiment::run_baseline(std::int64_t ticks) {
  return run_phase(RunPhase::kBaseline,
                   ticks >= 0 ? ticks : default_eval_ticks_);
}

PhaseReport Experiment::run_tuned(std::int64_t ticks) {
  return run_phase(RunPhase::kTuned, ticks >= 0 ? ticks : default_eval_ticks_);
}

ExperimentReport Experiment::run(std::int64_t train_ticks,
                                 std::int64_t eval_ticks) {
  if (train_ticks < 0) train_ticks = default_train_ticks_;
  if (eval_ticks < 0) eval_ticks = default_eval_ticks_;
  if (train_ticks > 0) run_training(train_ticks);
  run_baseline(eval_ticks);
  run_tuned(eval_ticks);
  return report();
}

ExperimentReport Experiment::take_report() {
  ExperimentReport out = std::move(report_);
  report_ = ExperimentReport();
  report_.parameter_names = out.parameter_names;
  report_.final_parameters = out.final_parameters;
  return out;
}

bool Experiment::switch_workload(const std::string& spec, std::string* error) {
  return switch_workload(0, spec, error);
}

bool Experiment::switch_workload(std::size_t domain, const std::string& spec,
                                 std::string* error) {
  if (domain >= domain_runtimes_.size() ||
      !domain_runtimes_[domain].cluster) {
    if (error) *error = "switch_workload requires the bundled Lustre cluster";
    return false;
  }
  DomainRuntime& runtime = domain_runtimes_[domain];
  // Bind this domain's *live* shard across create+start, like build()
  // does at startup: a generator that schedules from its constructor must
  // land in the domain's queue too. The binding comes from the control
  // domain itself — the planner may have migrated it since startup, and a
  // cached copy here would silently re-bind the old queue.
  const auto binding = system_->domain(domain).bind_sim_shard();
  auto next =
      workload::Registry::instance().create(spec, *runtime.cluster, error);
  if (!next) return false;
  // Reap earlier retirees whose in-flight ops have certainly completed:
  // a stopped generator schedules nothing new, and single operations
  // finish in well under a simulated minute, so anything retired 60+
  // sim-seconds ago holds no pending callbacks. Keeps continuous
  // switch-train loops from growing this list without bound.
  const sim::TimeUs now = sim_->now();
  std::erase_if(retired_workloads_, [now](const RetiredWorkload& r) {
    return now - r.retired_at > sim::seconds(60);
  });
  if (runtime.workload) runtime.workload->request_stop();
  // The stopped generator stays alive so its in-flight ops drain naturally.
  retired_workloads_.push_back({std::move(runtime.workload), now});
  runtime.workload = std::move(next);
  runtime.workload->start();
  system_->notify_workload_change();
  return true;
}

void Experiment::notify_workload_change() { system_->notify_workload_change(); }

bool Experiment::save_model(const std::string& path) const {
  return system_->save_model(path);
}

bool Experiment::load_model(const std::string& path) {
  return system_->load_model(path);
}

}  // namespace capes::core
