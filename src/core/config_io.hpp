#pragma once
// Bridge between util::Config (the conf.py analogue) and the typed option
// structs. Every key is optional; absent keys keep the struct's defaults,
// so a config file only needs to list overrides.

#include "core/capes_system.hpp"
#include "lustre/types.hpp"
#include "util/config.hpp"

namespace capes::core {

/// Read "capes.*", "drl.*", "replay.*" keys into CapesOptions.
CapesOptions capes_options_from_config(const util::Config& cfg,
                                       CapesOptions base = {});

/// Read "lustre.*", "disk.*", "network.*" keys into ClusterOptions.
lustre::ClusterOptions cluster_options_from_config(
    const util::Config& cfg, lustre::ClusterOptions base = {});

/// Serialize the effective options back to a Config (for dumping the
/// configuration a run actually used).
util::Config config_from_options(const CapesOptions& capes,
                                 const lustre::ClusterOptions& cluster);

}  // namespace capes::core
