#include "core/presets.hpp"

namespace capes::core {

EvaluationPreset paper_preset() {
  EvaluationPreset p;

  // --- Table 1, row by row -------------------------------------------------
  p.capes.sampling_tick_s = 1.0;          // sampling tick length: 1 s
  p.capes.action_ticks_per_sample = 1;    // action tick length: 1 s
  p.capes.engine.epsilon.initial = 1.0;   // epsilon initial value
  p.capes.engine.epsilon.final_value = 0.05;  // epsilon final value
  p.capes.engine.epsilon.anneal_ticks = 2 * 3600;  // initial exploration: 2 h
  p.capes.engine.epsilon.bump_value = 0.2;         // §3.6 workload bump
  p.capes.engine.dqn.gamma = 0.99f;       // discount rate
  p.capes.engine.dqn.num_hidden_layers = 2;   // number of hidden layers
  p.capes.engine.dqn.hidden_size = 0;     // hidden layers sized like input
  p.capes.engine.dqn.learning_rate = 1e-4f;   // Adam learning rate
  p.capes.engine.dqn.target_update_alpha = 0.01f;  // target update rate
  p.capes.engine.minibatch_size = 32;     // minibatch size
  p.capes.replay.ticks_per_observation = 10;  // sampling ticks per obs.
  p.capes.replay.missing_tolerance = 0.2;     // missing entry tolerance
  p.capes.engine.train_steps_per_tick = 1;
  p.capes.reward_scale_mbs = 200.0;

  // --- §4.2 testbed ----------------------------------------------------------
  p.cluster = lustre::ClusterOptions{};  // defaults mirror the testbed

  p.train_ticks_short = 12 * 3600;  // 12 hours at 1 Hz
  p.train_ticks_long = 24 * 3600;   // 24 hours
  p.eval_ticks = 2 * 3600;          // 2-hour measurement phases (Fig. 4)
  return p;
}

EvaluationPreset fast_preset(std::uint64_t seed) {
  EvaluationPreset p = paper_preset();

  // Scale the time axis ~18x: one "paper hour" becomes 200 ticks. The
  // decisions-per-phase structure is preserved (exploration anneals over
  // the same fraction of the short training session).
  p.capes.engine.epsilon.anneal_ticks = 400;   // "2 h" exploration
  p.capes.engine.epsilon.bump_ticks = 120;
  p.capes.replay.ticks_per_observation = 5;    // smaller observation stack
  // The paper's DRL Engine trains continuously in a separate process;
  // two minibatch steps per sampling tick approximates that on one core.
  p.capes.engine.train_steps_per_tick = 2;
  // A fixed 128-wide hidden layer (instead of input-sized), a shorter
  // reward horizon, and a proportionally larger learning rate: with the
  // time axis compressed ~18x and ~20x fewer total SGD steps than a
  // 24-hour session, gamma and the learning rate must rescale so the
  // discounted horizon and the total weight movement stay comparable.
  p.capes.engine.dqn.hidden_size = 128;
  p.capes.engine.dqn.gamma = 0.95f;
  p.capes.engine.dqn.learning_rate = 1e-3f;
  // With ~20x fewer samples, vanilla DQN's max-operator bias inflates the
  // noisy congestion-collapse region's value; Double DQN corrects it
  // (see DqnOptions::use_double_dqn and bench/ablation_dqn).
  p.capes.engine.dqn.use_double_dqn = true;

  p.train_ticks_short = 2400;  // "12 hours"
  p.train_ticks_long = 4800;   // "24 hours"
  p.eval_ticks = 400;          // "2 hour" measurement phases

  // Keep per-run noise bounded so scaled-down sessions stay measurable.
  p.cluster.network.jitter_fraction = 0.05;
  apply_seed(&p, seed);
  return p;
}

void apply_seed(EvaluationPreset* preset, std::uint64_t seed) {
  preset->capes.engine.dqn.seed = seed;
  preset->capes.engine.seed = seed ^ 0x5eedf00d;
  preset->cluster.seed = seed * 2654435761u + 1;
}

}  // namespace capes::core
