#include "core/monitoring_agent.hpp"

namespace capes::core {

MonitoringAgent::MonitoringAgent(std::size_t node, TargetSystemAdapter& adapter,
                                 Deliver deliver)
    : MonitoringAgent(node, node, adapter, std::move(deliver)) {}

MonitoringAgent::MonitoringAgent(std::size_t local_node, std::size_t global_node,
                                 TargetSystemAdapter& adapter, Deliver deliver)
    : adapter_(adapter),
      local_node_(local_node),
      encoder_(global_node, adapter.pis_per_node()),
      deliver_(std::move(deliver)) {}

MonitoringAgent::MonitoringAgent(std::size_t local_node, std::size_t global_node,
                                 TargetSystemAdapter& adapter, PiChannel& channel)
    : adapter_(adapter),
      local_node_(local_node),
      encoder_(global_node, adapter.pis_per_node()),
      channel_(&channel) {}

void MonitoringAgent::sample(std::int64_t t) {
  publish(t, collect_and_encode(t));
}

std::vector<std::uint8_t> MonitoringAgent::collect_and_encode(std::int64_t t) {
  // Collection is local to the node and happens every tick — only the
  // send can be lost. Skipping the encode on a to-be-dropped tick keeps
  // the encoder state equal to the last delivered message, so the
  // daemon's differential decoder stays in sync (the next successful
  // message carries the accumulated delta).
  const std::vector<float> pis = adapter_.collect_observation(local_node_);
  if (channel_ != nullptr && channel_->will_drop(node(), t)) return {};
  return encoder_.encode(t, pis);
}

void MonitoringAgent::publish(std::int64_t t, std::vector<std::uint8_t> msg) {
  if (channel_ != nullptr) {
    // An empty msg means collect_and_encode already saw the drop verdict;
    // publish recomputes the same pure fate and counts it as dropped.
    channel_->publish(node(), t, std::move(msg));
    return;
  }
  if (deliver_) deliver_(msg);
}

void MonitoringAgent::deliver(const std::vector<std::uint8_t>& msg) {
  if (deliver_) deliver_(msg);
}

}  // namespace capes::core
