#include "core/monitoring_agent.hpp"

namespace capes::core {

MonitoringAgent::MonitoringAgent(std::size_t node, TargetSystemAdapter& adapter,
                                 Deliver deliver)
    : MonitoringAgent(node, node, adapter, std::move(deliver)) {}

MonitoringAgent::MonitoringAgent(std::size_t local_node, std::size_t global_node,
                                 TargetSystemAdapter& adapter, Deliver deliver)
    : adapter_(adapter),
      local_node_(local_node),
      encoder_(global_node, adapter.pis_per_node()),
      deliver_(std::move(deliver)) {}

void MonitoringAgent::sample(std::int64_t t) {
  deliver(collect_and_encode(t));
}

std::vector<std::uint8_t> MonitoringAgent::collect_and_encode(std::int64_t t) {
  const std::vector<float> pis = adapter_.collect_observation(local_node_);
  return encoder_.encode(t, pis);
}

void MonitoringAgent::deliver(const std::vector<std::uint8_t>& msg) {
  if (deliver_) deliver_(msg);
}

}  // namespace capes::core
