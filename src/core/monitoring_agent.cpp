#include "core/monitoring_agent.hpp"

namespace capes::core {

MonitoringAgent::MonitoringAgent(std::size_t node, TargetSystemAdapter& adapter,
                                 Deliver deliver)
    : adapter_(adapter),
      encoder_(node, adapter.pis_per_node()),
      deliver_(std::move(deliver)) {}

void MonitoringAgent::sample(std::int64_t t) {
  const std::vector<float> pis = adapter_.collect_observation(encoder_.node());
  const std::vector<std::uint8_t> msg = encoder_.encode(t, pis);
  if (deliver_) deliver_(msg);
}

}  // namespace capes::core
