#include "core/monitoring_agent.hpp"

namespace capes::core {

MonitoringAgent::MonitoringAgent(std::size_t node, TargetSystemAdapter& adapter,
                                 Deliver deliver)
    : MonitoringAgent(node, node, adapter, std::move(deliver)) {}

MonitoringAgent::MonitoringAgent(std::size_t local_node, std::size_t global_node,
                                 TargetSystemAdapter& adapter, Deliver deliver)
    : adapter_(adapter),
      local_node_(local_node),
      encoder_(global_node, adapter.pis_per_node()),
      deliver_(std::move(deliver)) {}

MonitoringAgent::MonitoringAgent(std::size_t local_node, std::size_t global_node,
                                 TargetSystemAdapter& adapter, PiChannel& channel)
    : adapter_(adapter),
      local_node_(local_node),
      encoder_(global_node, adapter.pis_per_node()),
      channel_(&channel) {}

void MonitoringAgent::sample(std::int64_t t) {
  publish(t, collect_and_encode(t));
}

std::vector<std::uint8_t> MonitoringAgent::collect_and_encode(std::int64_t t) {
  // Collection is local to the node and happens every tick — only the
  // send can be lost. Skipping the encode on a to-be-dropped tick keeps
  // the encoder state equal to the last delivered message, so the
  // daemon's differential decoder stays in sync (the next successful
  // message carries the accumulated delta).
  //
  // Scratch discipline: the PI vector lives in the per-tick arena (a
  // pointer bump once warm) and the encoded message goes into a recycled
  // payload buffer, so the steady-state sample path allocates nothing.
  arena_.reset();
  float* pis = arena_.alloc_array<float>(encoder_.num_pis());
  adapter_.collect_observation_into(local_node_, pis);
  if (channel_ != nullptr && channel_->will_drop(node(), t)) return {};
  std::vector<std::uint8_t> msg = acquire_payload();
  encoder_.encode_into(t, pis, encoder_.num_pis(), msg);
  return msg;
}

void MonitoringAgent::publish(std::int64_t t, std::vector<std::uint8_t> msg) {
  if (channel_ != nullptr) {
    // An empty msg means collect_and_encode already saw the drop verdict;
    // publish recomputes the same pure fate and counts it as dropped.
    // A payload the transport drops here is simply destroyed — drops are
    // off the steady-state path, so losing the buffer only means the pool
    // refills on a later tick.
    channel_->publish(node(), t, std::move(msg));
    return;
  }
  if (deliver_) {
    deliver_(msg);
    recycle_payload(std::move(msg));
  }
}

void MonitoringAgent::deliver(const std::vector<std::uint8_t>& msg) {
  if (deliver_) deliver_(msg);
}

std::vector<std::uint8_t> MonitoringAgent::acquire_payload() {
  if (free_payloads_.empty()) return {};
  std::vector<std::uint8_t> buf = std::move(free_payloads_.back());
  free_payloads_.pop_back();
  return buf;
}

void MonitoringAgent::recycle_payload(std::vector<std::uint8_t>&& buf) {
  // A small cap bounds the pool to the in-flight message count (one or
  // two under delayed transports); excess buffers just free.
  constexpr std::size_t kMaxFreePayloads = 4;
  if (free_payloads_.size() >= kMaxFreePayloads) return;
  buf.clear();
  free_payloads_.push_back(std::move(buf));
}

}  // namespace capes::core
