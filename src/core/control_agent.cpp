#include "core/control_agent.hpp"

namespace capes::core {

void ControlAgent::on_action_message(const std::vector<double>& values) {
  adapter_.set_parameters(values);
  ++applied_;
}

}  // namespace capes::core
