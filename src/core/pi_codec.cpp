#include "core/pi_codec.hpp"

#include <cassert>
#include <cmath>

#include "util/varint.hpp"

namespace capes::core {

namespace {

std::int64_t quantize(float v) {
  return static_cast<std::int64_t>(
      std::llround(static_cast<double>(v) * kPiQuantScale));
}

float dequantize(std::int64_t q) {
  return static_cast<float>(static_cast<double>(q) / kPiQuantScale);
}

}  // namespace

PiEncoder::PiEncoder(std::size_t node, std::size_t num_pis)
    : node_(node), prev_quantized_(num_pis, 0) {}

std::vector<std::uint8_t> PiEncoder::encode(std::int64_t t,
                                            const std::vector<float>& pis) {
  std::vector<std::uint8_t> msg;
  encode_into(t, pis.data(), pis.size(), msg);
  return msg;
}

void PiEncoder::encode_into(std::int64_t t, const float* pis, std::size_t n,
                            std::vector<std::uint8_t>& out) {
  assert(n == prev_quantized_.size());
  staging_.clear();
  std::size_t count = 0;
  std::size_t last_index = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t q = quantize(pis[i]);
    if (!first_ && q == prev_quantized_[i]) continue;
    util::put_varint(staging_, i - last_index);
    util::put_svarint(staging_, q - (first_ ? 0 : prev_quantized_[i]));
    prev_quantized_[i] = q;
    last_index = i;
    ++count;
  }
  first_ = false;

  out.clear();
  util::put_varint(out, node_);
  util::put_varint(out, static_cast<std::uint64_t>(t));
  util::put_varint(out, count);
  out.insert(out.end(), staging_.begin(), staging_.end());
  total_bytes_ += out.size();
  ++messages_;
}

PiDecoder::PiDecoder(std::size_t num_pis) : quantized_(num_pis, 0) {}

std::optional<PiMessage> PiDecoder::decode(const std::vector<std::uint8_t>& msg) {
  PiMessage out;
  if (!decode_into(msg, out)) return std::nullopt;
  return out;
}

bool PiDecoder::decode_into(const std::vector<std::uint8_t>& msg,
                            PiMessage& out) {
  util::VarintReader r(msg);
  auto node = r.read_varint();
  auto tick = r.read_varint();
  auto count = r.read_varint();
  if (!node || !tick || !count || *count > quantized_.size()) return false;

  std::size_t index = 0;
  bool first_entry = true;
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto gap = r.read_varint();
    auto delta = r.read_svarint();
    if (!gap || !delta) return false;
    index = first_entry ? static_cast<std::size_t>(*gap)
                        : index + static_cast<std::size_t>(*gap);
    first_entry = false;
    if (index >= quantized_.size()) return false;
    quantized_[index] += *delta;
  }

  out.node = static_cast<std::size_t>(*node);
  out.tick = static_cast<std::int64_t>(*tick);
  out.pis.resize(quantized_.size());
  for (std::size_t i = 0; i < quantized_.size(); ++i) {
    out.pis[i] = dequantize(quantized_[i]);
  }
  return true;
}

}  // namespace capes::core
