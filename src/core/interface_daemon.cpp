#include "core/interface_daemon.hpp"

#include "util/logging.hpp"
#include "util/varint.hpp"

namespace capes::core {

InterfaceDaemon::InterfaceDaemon(rl::ReplayDb& replay,
                                 const rl::ActionSpace& space,
                                 std::size_t num_nodes,
                                 std::size_t pis_per_node)
    : replay_(replay), space_(space) {
  checker_ = std::make_unique<ActionChecker>(space_);
  decoders_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    decoders_.emplace_back(pis_per_node);
  }
}

void InterfaceDaemon::on_status_message(const std::vector<std::uint8_t>& msg) {
  ++status_messages_;
  // Peek the node id (first varint) to pick the right stateful decoder.
  util::VarintReader peek(msg);
  auto node = peek.read_varint();
  if (!node || *node >= decoders_.size()) {
    ++decode_errors_;
    return;
  }
  auto decoded = decoders_[*node].decode(msg);
  if (!decoded) {
    ++decode_errors_;
    CAPES_LOG_WARN("intfd") << "malformed PI message from node " << *node;
    return;
  }
  replay_.record_status(decoded->tick, decoded->node, decoded->pis);
}

void InterfaceDaemon::on_reward(std::int64_t t, double reward) {
  replay_.record_reward(t, reward);
}

std::size_t InterfaceDaemon::on_suggested_action(
    std::int64_t t, std::size_t action_index,
    std::vector<double>& parameter_values) {
  const rl::DecodedAction decoded = space_.decode(action_index);
  std::size_t recorded = action_index;
  if (!checker_->check(decoded, parameter_values)) {
    recorded = 0;  // vetoed -> NULL action
  } else if (!decoded.null_action) {
    space_.apply(decoded, parameter_values);
    for (ControlAgent* agent : control_agents_) {
      agent->on_action_message(parameter_values);
    }
    ++actions_broadcast_;
  }
  replay_.record_action(t, recorded);
  return recorded;
}

void InterfaceDaemon::register_control_agent(ControlAgent* agent) {
  control_agents_.push_back(agent);
}

}  // namespace capes::core
