#include "core/interface_daemon.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "capture/wire_log_writer.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"

namespace capes::core {

namespace {

/// Applying a checked action runs the target system's parameter setters,
/// which may schedule follow-up events (e.g. a cluster re-arming its
/// send loop); binding the owning domain's simulator shard keeps them in
/// its queue, not shard 0. Domain-less shards (the legacy single-shard
/// constructor) have nothing to bind.
sim::Simulator::ShardBinding bind_domain_shard(const ControlDomain* domain) {
  return domain != nullptr ? domain->bind_sim_shard()
                           : sim::Simulator::no_binding();
}

}  // namespace

InterfaceDaemon::InterfaceDaemon(rl::ReplayDb& replay,
                                 const rl::ActionSpace& space,
                                 std::size_t num_nodes,
                                 std::size_t pis_per_node)
    : replay_(replay) {
  Shard shard;
  shard.space = &space;
  shard.checker = std::make_unique<ActionChecker>(space);
  shard.action_offset = 1;
  shards_.push_back(std::move(shard));
  decoders_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    decoders_.emplace_back(pis_per_node);
  }
}

InterfaceDaemon::InterfaceDaemon(rl::ReplayDb& replay,
                                 std::vector<ControlDomain*> domains,
                                 std::size_t pis_per_node,
                                 bus::Transport* transport)
    : replay_(replay) {
  assert(!domains.empty());
  if (transport != nullptr) {
    inbox_ = std::make_unique<PiChannel>(*transport, kStatusTopic);
  }
  shards_.reserve(domains.size());
  for (ControlDomain* domain : domains) {
    Shard shard;
    shard.domain = domain;
    shard.space = &domain->space();
    shard.checker = std::make_unique<ActionChecker>(domain->space());
    shard.action_offset = domain->action_offset();
    if (transport != nullptr) {
      shard.actions = std::make_unique<ActionChannel>(
          *transport, kActionTopicBase + domain->index(),
          kActionChannelCapacity);
    }
    shards_.push_back(std::move(shard));
    for (std::size_t i = 0; i < domain->num_nodes(); ++i) {
      decoders_.emplace_back(pis_per_node);
    }
  }
}

std::size_t InterfaceDaemon::check_shard(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("InterfaceDaemon: shard " + std::to_string(shard) +
                            " out of range (daemon has " +
                            std::to_string(shards_.size()) + " shard" +
                            (shards_.size() == 1 ? "" : "s") + ")");
  }
  return shard;
}

void InterfaceDaemon::on_status_message(const std::vector<std::uint8_t>& msg) {
  ++status_messages_;
  // Peek the global node id (first varint) to pick the right stateful
  // decoder; messages for nodes outside every shard count as errors.
  util::VarintReader peek(msg);
  auto node = peek.read_varint();
  if (!node || *node >= decoders_.size()) {
    ++decode_errors_;
    return;
  }
  if (!decoders_[*node].decode_into(msg, decode_scratch_)) {
    ++decode_errors_;
    CAPES_LOG_WARN("intfd") << "malformed PI message from node " << *node;
    return;
  }
  replay_.record_status(decode_scratch_.tick, decode_scratch_.node,
                        decode_scratch_.pis);
}

void InterfaceDaemon::on_reward(std::int64_t t, double reward) {
  replay_.record_reward(t, reward);
}

std::size_t InterfaceDaemon::drain_status(std::int64_t t,
                                          util::ThreadPool* pool) {
  if (!inbox_) return 0;
  if (pool == nullptr) {
    return inbox_->drain(
        t, [this, t](bus::Message<std::vector<std::uint8_t>>& msg) {
          // Capture the raw wire bytes exactly as delivered, before the
          // stateful decoder consumes them — replay re-feeds the same bytes
          // to fresh decoders in the same order.
          if (capture_ != nullptr) {
            capture_->record(capture::RecordType::kStatus, t, kStatusTopic,
                             msg.sender, msg.payload.data(),
                             msg.payload.size());
          }
          on_status_message(msg.payload);
          if (payload_recycler_) {
            payload_recycler_(msg.sender, std::move(msg.payload));
          }
        });
  }
  // Pooled drain: a serial pre-pass in delivery order (capture + node
  // routing + per-node grouping), a parallel decode keyed by node — each
  // worker owns one node's stateful decoder and that node's messages in
  // order, writing disjoint result slots — then a serial commit pass
  // reproducing the serial path's replay writes, counters, warnings, and
  // payload recycling, in the same delivery order.
  return inbox_->drain_batch(
      t, [this, t, pool](std::vector<bus::Message<std::vector<std::uint8_t>>>& due) {
        if (batch_decoded_.size() < due.size()) batch_decoded_.resize(due.size());
        batch_outcome_.assign(due.size(), kDecodeBadNode);
        batch_node_.assign(due.size(), 0);
        if (node_batch_index_.size() < decoders_.size()) {
          node_batch_index_.resize(decoders_.size());
        }
        touched_nodes_.clear();
        for (std::size_t i = 0; i < due.size(); ++i) {
          bus::Message<std::vector<std::uint8_t>>& msg = due[i];
          ++status_messages_;
          if (capture_ != nullptr) {
            capture_->record(capture::RecordType::kStatus, t, kStatusTopic,
                             msg.sender, msg.payload.data(),
                             msg.payload.size());
          }
          util::VarintReader peek(msg.payload);
          const auto node = peek.read_varint();
          if (!node || *node >= decoders_.size()) continue;  // kDecodeBadNode
          batch_node_[i] = *node;
          if (node_batch_index_[*node].empty()) {
            touched_nodes_.push_back(static_cast<std::uint32_t>(*node));
          }
          node_batch_index_[*node].push_back(static_cast<std::uint32_t>(i));
        }
        pool->parallel_for(touched_nodes_.size(), [&](std::size_t k) {
          const std::uint32_t node = touched_nodes_[k];
          for (const std::uint32_t i : node_batch_index_[node]) {
            batch_outcome_[i] =
                decoders_[node].decode_into(due[i].payload, batch_decoded_[i])
                    ? kDecodeOk
                    : kDecodeBadMsg;
          }
        });
        for (std::size_t i = 0; i < due.size(); ++i) {
          if (batch_outcome_[i] == kDecodeOk) {
            replay_.record_status(batch_decoded_[i].tick, batch_decoded_[i].node,
                                  batch_decoded_[i].pis);
          } else {
            ++decode_errors_;
            if (batch_outcome_[i] == kDecodeBadMsg) {
              CAPES_LOG_WARN("intfd")
                  << "malformed PI message from node " << batch_node_[i];
            }
          }
          if (payload_recycler_) {
            payload_recycler_(due[i].sender, std::move(due[i].payload));
          }
        }
        for (const std::uint32_t node : touched_nodes_) {
          node_batch_index_[node].clear();
        }
      });
}

void InterfaceDaemon::set_payload_recycler(PayloadRecycler recycler) {
  payload_recycler_ = std::move(recycler);
}

std::size_t InterfaceDaemon::drain_actions(std::int64_t t) {
  std::size_t delivered = 0;
  for (Shard& shard : shards_) {
    if (!shard.actions) continue;
    const auto binding = bind_domain_shard(shard.domain);
    delivered += shard.actions->drain(
        t, [this, t, &shard](bus::Message<std::vector<double>>& msg) {
          if (capture_ != nullptr) {
            capture_->record_f64s(
                capture::RecordType::kBroadcast, t,
                kActionTopicBase +
                    (shard.domain != nullptr ? shard.domain->index() : 0),
                msg.sender, msg.payload.data(), msg.payload.size());
          }
          for (ControlAgent* agent : shard.control_agents) {
            agent->on_action_message(msg.payload);
          }
          // Recycle the broadcast buffer for the next publish.
          if (shard.action_pool.size() < 4) {
            shard.action_pool.push_back(std::move(msg.payload));
          }
        });
  }
  return delivered;
}

bus::ChannelStats InterfaceDaemon::bus_stats() const {
  bus::ChannelStats stats;
  if (inbox_) stats += inbox_->stats();
  for (const Shard& shard : shards_) {
    if (shard.actions) stats += shard.actions->stats();
  }
  return stats;
}

std::size_t InterfaceDaemon::apply_checked_action(
    std::int64_t t, Shard& shard, std::size_t local_action,
    std::size_t global_action, std::vector<double>& parameter_values) {
  const rl::DecodedAction decoded = shard.space->decode(local_action);
  std::size_t recorded = global_action;
  if (!shard.checker->check(decoded, parameter_values)) {
    recorded = 0;  // vetoed -> NULL action
  } else if (!decoded.null_action) {
    shard.space->apply(decoded, parameter_values);
    if (shard.actions) {
      // Control-network broadcast: the daemon's view of the parameters
      // updates now; the target system applies them when the message
      // lands (possibly ticks later, possibly never if dropped — the
      // next delivered broadcast carries absolute values and heals it).
      // The copy goes into a recycled buffer so steady-state broadcasts
      // do not allocate.
      std::vector<double> payload;
      if (!shard.action_pool.empty()) {
        payload = std::move(shard.action_pool.back());
        shard.action_pool.pop_back();
      }
      payload.assign(parameter_values.begin(), parameter_values.end());
      shard.actions->publish(shard.domain ? shard.domain->index() : 0, t,
                             std::move(payload));
    } else {
      const auto binding = bind_domain_shard(shard.domain);
      for (ControlAgent* agent : shard.control_agents) {
        agent->on_action_message(parameter_values);
      }
    }
    ++actions_broadcast_;
  }
  replay_.record_action(t, recorded);
  if (capture_ != nullptr) {
    // Both the engine's suggestion and the post-veto outcome, so replay
    // can detect divergence and diff tools can report veto behavior.
    std::uint8_t payload[8];
    for (int i = 0; i < 4; ++i) {
      payload[i] = static_cast<std::uint8_t>(global_action >> (8 * i));
      payload[4 + i] = static_cast<std::uint8_t>(recorded >> (8 * i));
    }
    capture_->record(
        capture::RecordType::kAction, t,
        kActionTopicBase + (shard.domain != nullptr ? shard.domain->index() : 0),
        static_cast<std::uint64_t>(&shard - shards_.data()), payload,
        sizeof(payload));
  }
  return recorded;
}

std::size_t InterfaceDaemon::on_suggested_action(
    std::int64_t t, std::size_t action_index,
    std::vector<double>& parameter_values) {
  assert(shards_.size() == 1);
  return apply_checked_action(t, shards_[0], action_index, action_index,
                              parameter_values);
}

std::size_t InterfaceDaemon::route_suggested_action(std::int64_t t,
                                                    std::size_t action_index) {
  // The NULL action belongs to no slice; hand it to shard 0 so checker
  // rules still see it (a rule can veto NULL too, as in the single-shard
  // path — the recorded action is 0 either way).
  std::size_t shard_index = 0;
  std::size_t local = 0;
  if (action_index != 0) {
    while (shard_index + 1 < shards_.size() &&
           action_index >= shards_[shard_index + 1].action_offset) {
      ++shard_index;
    }
    local = action_index - shards_[shard_index].action_offset + 1;
    assert(local < shards_[shard_index].space->num_actions());
  }
  Shard& shard = shards_[shard_index];
  // Routed dispatch needs a domain-backed parameter vector; a daemon
  // built through the legacy single-shard constructor must use
  // on_suggested_action instead. Degrade to a recorded NULL action
  // rather than dereferencing null in Release builds.
  assert(shard.domain != nullptr);
  if (shard.domain == nullptr) {
    replay_.record_action(t, 0);
    return 0;
  }
  return apply_checked_action(t, shard, local, action_index,
                              shard.domain->param_values());
}

void InterfaceDaemon::register_control_agent(ControlAgent* agent) {
  shards_[0].control_agents.push_back(agent);
}

void InterfaceDaemon::register_control_agent(std::size_t shard,
                                             ControlAgent* agent) {
  shards_[check_shard(shard)].control_agents.push_back(agent);
}

}  // namespace capes::core
