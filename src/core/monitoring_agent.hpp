#pragma once
// Monitoring Agent (§3.3): one per monitored node. At every sampling tick
// it collects the node's performance indicators through the adapter's
// collector function, encodes them with the differential protocol, and
// publishes the message onto the control network (a bus::Channel feeding
// the Interface Daemon's inbox). Depending on the transport behind the
// channel the message arrives the same tick (SyncTransport — identical
// to a direct call), some ticks late, or never.
//
// Drop handling and the differential codec: collection is local, so the
// agent samples its node every tick regardless. When the transport will
// drop this tick's send, the agent skips encoding — the encoder's state
// then still mirrors the last message that actually reached the wire, so
// the next successful send carries the accumulated delta and the
// daemon-side decoder never desynchronizes. The dropped tick is simply
// absent from the Replay DB, which is what its missing-entry tolerance
// (§3.5) exists to absorb.
//
// Under multi-cluster control the agent carries two node ids: the local
// node inside its own cluster (what the adapter's collector understands)
// and the global, domain-namespaced node id it stamps on the wire — also
// its sender id on the channel — so the sharded Interface Daemon can
// route the message.

#include <cstdint>
#include <functional>
#include <vector>

#include "bus/channel.hpp"
#include "core/adapter.hpp"
#include "core/pi_codec.hpp"
#include "util/arena.hpp"

namespace capes::core {

/// The monitoring hop's channel: encoded PI messages, sender = global
/// node id. Unbounded — see the drop-handling note above; capacity drops
/// would desynchronize the differential codec, transport drops cannot.
using PiChannel = bus::Channel<std::vector<std::uint8_t>>;

class MonitoringAgent {
 public:
  /// Direct delivery to the Interface Daemon, bypassing the control
  /// network (agent-level tests and hop-free wiring).
  using Deliver = std::function<void(const std::vector<std::uint8_t>&)>;

  /// Single-domain direct form: the wire node id equals the local node id.
  MonitoringAgent(std::size_t node, TargetSystemAdapter& adapter, Deliver deliver);

  /// Multi-domain direct form: collect as `local_node`, send as
  /// `global_node`.
  MonitoringAgent(std::size_t local_node, std::size_t global_node,
                  TargetSystemAdapter& adapter, Deliver deliver);

  /// Control-network form: publish onto `channel` as sender
  /// `global_node`. The channel must outlive the agent.
  MonitoringAgent(std::size_t local_node, std::size_t global_node,
                  TargetSystemAdapter& adapter, PiChannel& channel);

  /// Collect + encode + publish the PIs for sampling tick `t`. In
  /// channel mode this is thread-safe for distinct nodes of one adapter
  /// (collectors touch per-node state only; the channel serializes
  /// internally and drain order is publish-order-independent), so the
  /// per-tick fan-out may run it from worker threads directly.
  void sample(std::int64_t t);

  /// The collect + encode half of sample(), without the send. Returns an
  /// empty message when the transport will drop this tick's send (the
  /// encode is skipped; see the header comment). Safe to run concurrently
  /// for distinct nodes of one adapter.
  std::vector<std::uint8_t> collect_and_encode(std::int64_t t);

  /// The send half: publish `msg` (encoded at tick `t`) onto the channel,
  /// or hand it to the direct Deliver callback. An empty `msg` stands for
  /// "transport-dropped" and only bumps the channel's drop counter.
  void publish(std::int64_t t, std::vector<std::uint8_t> msg);

  /// Direct-delivery escape hatch (Deliver mode only; ignores channels).
  void deliver(const std::vector<std::uint8_t>& msg);

  /// Return a drained payload buffer to this agent's free list so the
  /// next encode reuses its capacity instead of allocating. The daemon's
  /// drain (serial, on the control thread) calls this; it never overlaps
  /// the sampling fan-out, so no lock is needed.
  void recycle_payload(std::vector<std::uint8_t>&& buf);

  std::size_t node() const { return encoder_.node(); }
  std::size_t local_node() const { return local_node_; }
  std::uint64_t bytes_sent() const { return encoder_.total_bytes(); }
  std::uint64_t messages_sent() const { return encoder_.messages(); }

 private:
  std::vector<std::uint8_t> acquire_payload();

  TargetSystemAdapter& adapter_;
  std::size_t local_node_;
  PiEncoder encoder_;
  Deliver deliver_;
  PiChannel* channel_ = nullptr;
  /// Per-tick scratch for the collected PI vector; reset each sample().
  util::Arena arena_;
  /// Recycled encode buffers (see recycle_payload).
  std::vector<std::vector<std::uint8_t>> free_payloads_;
};

}  // namespace capes::core
