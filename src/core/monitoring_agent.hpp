#pragma once
// Monitoring Agent (§3.3): one per monitored node. At every sampling tick
// it collects the node's performance indicators through the adapter's
// collector function, encodes them with the differential protocol, and
// ships the message to the Interface Daemon.
//
// Under multi-cluster control the agent carries two node ids: the local
// node inside its own cluster (what the adapter's collector understands)
// and the global, domain-namespaced node id it stamps on the wire so the
// sharded Interface Daemon can route the message.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/adapter.hpp"
#include "core/pi_codec.hpp"

namespace capes::core {

class MonitoringAgent {
 public:
  /// `deliver` carries an encoded message to the Interface Daemon (the
  /// control-network hop).
  using Deliver = std::function<void(const std::vector<std::uint8_t>&)>;

  /// Single-domain form: the wire node id equals the local node id.
  MonitoringAgent(std::size_t node, TargetSystemAdapter& adapter, Deliver deliver);

  /// Multi-domain form: collect as `local_node`, send as `global_node`.
  MonitoringAgent(std::size_t local_node, std::size_t global_node,
                  TargetSystemAdapter& adapter, Deliver deliver);

  /// Collect + encode + send the PIs for sampling tick `t`.
  void sample(std::int64_t t);

  /// The collect + encode half of sample(), without the delivery. Safe to
  /// run concurrently for distinct nodes of one adapter (collectors touch
  /// per-node state only); the caller then delivers the returned messages
  /// serially, in node order, so the fan-in stays deterministic.
  std::vector<std::uint8_t> collect_and_encode(std::int64_t t);

  /// Hand a previously encoded message to the Interface Daemon.
  void deliver(const std::vector<std::uint8_t>& msg);

  std::size_t node() const { return encoder_.node(); }
  std::size_t local_node() const { return local_node_; }
  std::uint64_t bytes_sent() const { return encoder_.total_bytes(); }
  std::uint64_t messages_sent() const { return encoder_.messages(); }

 private:
  TargetSystemAdapter& adapter_;
  std::size_t local_node_;
  PiEncoder encoder_;
  Deliver deliver_;
};

}  // namespace capes::core
