#pragma once
// Monitoring Agent (§3.3): one per monitored node. At every sampling tick
// it collects the node's performance indicators through the adapter's
// collector function, encodes them with the differential protocol, and
// ships the message to the Interface Daemon.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/adapter.hpp"
#include "core/pi_codec.hpp"

namespace capes::core {

class MonitoringAgent {
 public:
  /// `deliver` carries an encoded message to the Interface Daemon (the
  /// control-network hop).
  using Deliver = std::function<void(const std::vector<std::uint8_t>&)>;

  MonitoringAgent(std::size_t node, TargetSystemAdapter& adapter, Deliver deliver);

  /// Collect + encode + send the PIs for sampling tick `t`.
  void sample(std::int64_t t);

  std::size_t node() const { return encoder_.node(); }
  std::uint64_t bytes_sent() const { return encoder_.total_bytes(); }
  std::uint64_t messages_sent() const { return encoder_.messages(); }

 private:
  TargetSystemAdapter& adapter_;
  PiEncoder encoder_;
  Deliver deliver_;
};

}  // namespace capes::core
