#pragma once
// Evaluation presets.
//
//  * paper_preset(): every hyperparameter from Table 1 verbatim, plus the
//    §4.2 testbed configuration. Training durations are the paper's 12/24
//    hour sessions at 1 Hz. Running this on one CPU core takes days — it
//    exists for fidelity and for scaled-down derivation.
//  * fast_preset(): the same system proportionally scaled so the full
//    evaluation suite completes on a laptop core: shorter exploration,
//    fewer ticks per observation, smaller fileserver files. EXPERIMENTS.md
//    records results from this preset.

#include <cstdint>

#include "core/capes_system.hpp"
#include "lustre/types.hpp"

namespace capes::core {

struct EvaluationPreset {
  CapesOptions capes;
  lustre::ClusterOptions cluster;
  /// Simulated sampling ticks standing in for the paper's 12 h / 24 h
  /// training sessions and the measurement windows.
  std::int64_t train_ticks_short = 0;   ///< "12 hours"
  std::int64_t train_ticks_long = 0;    ///< "24 hours"
  std::int64_t eval_ticks = 0;          ///< per measurement phase
};

/// Table 1 / §4.2 values, verbatim.
EvaluationPreset paper_preset();

/// Laptop-scale evaluation preset (see header comment).
EvaluationPreset fast_preset(std::uint64_t seed = 42);

/// Re-derive every seed-dependent knob of `preset` from `seed`, exactly
/// as fast_preset(seed) would. Used by ExperimentBuilder::seed() so
/// .preset(p).seed(s) equals constructing the preset with s.
void apply_seed(EvaluationPreset* preset, std::uint64_t seed);

}  // namespace capes::core
