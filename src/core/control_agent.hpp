#pragma once
// Control Agent (§3.7): listens for Action Messages broadcast by the
// Interface Daemon and applies the new parameter values to its node
// through the adapter's controller function. In the evaluation all
// clients share the same values, so applications are idempotent.

#include <cstdint>
#include <vector>

#include "core/adapter.hpp"

namespace capes::core {

class ControlAgent {
 public:
  ControlAgent(std::size_t node, TargetSystemAdapter& adapter)
      : node_(node), adapter_(adapter) {}

  /// Apply a full parameter-value vector to the target system.
  void on_action_message(const std::vector<double>& values);

  std::size_t node() const { return node_; }
  std::uint64_t actions_applied() const { return applied_; }

 private:
  std::size_t node_;
  TargetSystemAdapter& adapter_;
  std::uint64_t applied_ = 0;
};

}  // namespace capes::core
