#include "core/brain_service.hpp"

#include <memory>
#include <vector>

#include "core/action_checker.hpp"
#include "core/drl_engine.hpp"
#include "core/interface_daemon.hpp"
#include "core/remote_brain.hpp"
#include "core/trace_replay.hpp"
#include "rl/action_space.hpp"
#include "rl/replay_db.hpp"
#include "util/frame.hpp"
#include "util/logging.hpp"

namespace capes::core {

namespace {

/// One control domain's service-side stand-in: the action decoder, the
/// Action Checker, and the parameter mirror vetoes are checked against.
/// Both sides apply the same deterministic broadcast logic, so the
/// mirror tracks the agent-side parameter vector exactly.
struct DomainMirror {
  std::unique_ptr<rl::ActionSpace> space;  ///< stable address for checker
  std::unique_ptr<ActionChecker> checker;
  std::vector<double> params;
  std::size_t action_offset = 1;
};

struct Session {
  capture::TraceMeta meta;
  std::unique_ptr<rl::ReplayDb> replay;
  /// The daemon is ingest-only (status routing + replay writes); action
  /// decoding lives in the mirrors, so an empty space satisfies the
  /// legacy single-shard constructor — exactly as TraceReplayer does.
  std::unique_ptr<rl::ActionSpace> ingest_space;
  std::unique_ptr<InterfaceDaemon> daemon;
  std::unique_ptr<DrlEngine> engine;
  std::vector<DomainMirror> mirrors;
  std::size_t total_train_steps = 0;
  std::vector<std::uint8_t> broadcast_scratch;
};

std::unique_ptr<Session> build_session(const HelloPayload& hello,
                                       std::string* error) {
  const capture::TraceMeta& meta = hello.meta;
  if (meta.num_nodes == 0 || meta.pis_per_node == 0 || meta.num_actions == 0 ||
      hello.domains.empty()) {
    *error = "Hello describes an empty topology";
    return nullptr;
  }
  std::size_t slice_actions = 0;
  for (const RemoteDomain& d : hello.domains) {
    slice_actions += 2 * d.params.size();
  }
  if (slice_actions + 1 != meta.num_actions) {
    *error = "Hello action-space layout disagrees with its meta";
    return nullptr;
  }

  auto session = std::make_unique<Session>();
  session->meta = meta;

  rl::ReplayDbOptions replay_opts;
  replay_opts.num_nodes = meta.num_nodes;
  replay_opts.pis_per_node = meta.pis_per_node;
  replay_opts.ticks_per_observation = meta.ticks_per_observation;
  replay_opts.missing_tolerance = meta.missing_tolerance;
  replay_opts.max_ticks_retained = meta.max_ticks_retained;
  session->replay = std::make_unique<rl::ReplayDb>(replay_opts);

  session->ingest_space =
      std::make_unique<rl::ActionSpace>(std::vector<rl::TunableParameter>{});
  session->daemon = std::make_unique<InterfaceDaemon>(
      *session->replay, *session->ingest_space, meta.num_nodes,
      meta.pis_per_node);

  DrlEngineOptions engine_opts = engine_options_from_meta(meta);
  engine_opts.seed = meta.engine_seed;
  engine_opts.dqn.seed = meta.dqn_seed;
  session->engine = std::make_unique<DrlEngine>(engine_opts, *session->replay);

  session->mirrors.reserve(hello.domains.size());
  for (const RemoteDomain& d : hello.domains) {
    DomainMirror mirror;
    mirror.space = std::make_unique<rl::ActionSpace>(d.params);
    mirror.checker = std::make_unique<ActionChecker>(*mirror.space);
    mirror.params = mirror.space->initial_values();
    mirror.action_offset = static_cast<std::size_t>(d.action_offset);
    session->mirrors.push_back(std::move(mirror));
  }
  return session;
}

/// The remote mirror of route_suggested_action + apply_checked_action +
/// the training step, closing one tick barrier.
void handle_tick_done(Session& session, net::Endpoint& endpoint,
                      std::int64_t t, std::uint8_t mode,
                      BrainServiceReport& report) {
  const bool training = mode == kPhaseTraining;
  std::size_t suggested = 0;
  if (training || mode == kPhaseTuned) {
    suggested = session.engine->compute_action(t, training);
  }

  // Route the composite index to the owning mirror (NULL -> mirror 0, so
  // checker rules still see it — same as the in-process daemon).
  std::size_t shard = 0;
  std::size_t local = 0;
  if (suggested != 0) {
    while (shard + 1 < session.mirrors.size() &&
           suggested >= session.mirrors[shard + 1].action_offset) {
      ++shard;
    }
    local = suggested - session.mirrors[shard].action_offset + 1;
  }
  DomainMirror& mirror = session.mirrors[shard];
  std::size_t recorded = suggested;
  if (local >= mirror.space->num_actions()) {
    // A suggestion outside every slice can only come from a client/meta
    // mismatch that slipped past the Hello check; degrade to NULL.
    recorded = 0;
    ++report.actions_vetoed;
  } else {
    const rl::DecodedAction decoded = mirror.space->decode(local);
    if (!mirror.checker->check(decoded, mirror.params)) {
      recorded = 0;  // vetoed -> NULL action
      ++report.actions_vetoed;
    } else if (!decoded.null_action) {
      mirror.space->apply(decoded, mirror.params);
      session.broadcast_scratch.resize(mirror.params.size() * 8);
      for (std::size_t i = 0; i < mirror.params.size(); ++i) {
        util::put_le_f64(session.broadcast_scratch.data() + 8 * i,
                         mirror.params[i]);
      }
      endpoint.send(frame_type(capture::RecordType::kBroadcast), t,
                    kActionTopicBase + shard, shard,
                    session.broadcast_scratch.data(),
                    session.broadcast_scratch.size());
      ++report.actions_broadcast;
    }
  }
  session.replay->record_action(t, recorded);

  std::size_t steps = 0;
  if (training) {
    steps = session.engine->train_tick();
    session.total_train_steps += steps;
    report.train_steps += steps;
  }

  std::uint8_t done[20];
  util::put_le32(done, static_cast<std::uint32_t>(suggested));
  util::put_le32(done + 4, static_cast<std::uint32_t>(recorded));
  util::put_le32(done + 8, static_cast<std::uint32_t>(steps));
  util::put_le64(done + 12,
                 static_cast<std::uint64_t>(session.total_train_steps));
  endpoint.send(kFrameActionsDone, t, 0, 0, done, sizeof(done));
}

}  // namespace

BrainServiceReport BrainService::serve(net::Endpoint& endpoint) {
  BrainServiceReport report;
  std::unique_ptr<Session> session;
  bool stop = false;
  while (!stop) {
    net::InSlot* slot = endpoint.recv();
    if (slot == nullptr) break;  // EOF / error / idle timeout: client gone
    const net::Frame& frame = slot->frame;
    switch (frame.type) {
      case kFrameHello: {
        const auto hello = decode_hello(frame.payload);
        if (!hello) {
          report.error = "undecodable Hello (protocol-version mismatch?)";
          stop = true;
          break;
        }
        std::string error;
        session = build_session(*hello, &error);
        if (session == nullptr) {
          report.error = error;
          stop = true;
          break;
        }
        report.hello_ok = true;
        report.num_domains = session->mirrors.size();
        std::uint8_t ack[8];
        util::put_le32(ack, kWireProtoVersion);
        util::put_le32(ack + 4, session->engine->weights_fingerprint());
        endpoint.send(kFrameHelloAck, 0, 0, 0, ack, sizeof(ack));
        break;
      }
      case kFrameTickDone:
        if (session != nullptr && !frame.payload.empty()) {
          handle_tick_done(*session, endpoint, frame.tick, frame.payload[0],
                           report);
          ++report.ticks;
        }
        break;
      case kFrameParamsReset:
        if (session != nullptr) {
          for (DomainMirror& mirror : session->mirrors) {
            mirror.params = mirror.space->initial_values();
          }
        }
        break;
      case kFrameBye:
        report.clean_shutdown = true;
        stop = true;
        break;
      default:
        if (frame.type == frame_type(capture::RecordType::kStatus)) {
          if (session != nullptr) {
            ++report.status_records;
            session->daemon->on_status_message(frame.payload);
          }
        } else if (frame.type == frame_type(capture::RecordType::kReward)) {
          if (session != nullptr && frame.payload.size() >= 8) {
            ++report.reward_records;
            session->daemon->on_reward(frame.tick,
                                       util::get_le_f64(frame.payload.data()));
          }
        } else if (frame.type ==
                   frame_type(capture::RecordType::kWorkloadChange)) {
          if (session != nullptr) session->engine->notify_workload_change();
        } else if (frame.type == frame_type(capture::RecordType::kPhaseEnd)) {
          if (session != nullptr) {
            // The remote drain_learner(): everything the phase trained is
            // visible in the fingerprint the ack carries.
            session->engine->drain_learner();
            std::uint8_t ack[12];
            util::put_le32(ack, session->engine->weights_fingerprint());
            util::put_le64(
                ack + 4,
                static_cast<std::uint64_t>(session->total_train_steps));
            endpoint.send(kFramePhaseEndAck, frame.tick, 0, 0, ack,
                          sizeof(ack));
          }
        }
        // kPhaseBegin and unknown types: no service-side state to touch.
        break;
    }
    endpoint.recycle(slot);
  }
  if (session != nullptr) {
    report.fingerprint = session->engine->weights_fingerprint();
    report.decode_errors = session->daemon->decode_errors();
  }
  if (!report.error.empty()) {
    CAPES_LOG_WARN("braind") << "session aborted: " << report.error;
  }
  return report;
}

}  // namespace capes::core
