#pragma once
// Train-from-trace: feed a flight-recorder capture back into a fresh
// InterfaceDaemon + DrlEngine, reproducing the live run's Replay DB
// writes and training schedule without a simulator or target system. The
// replayed PI bytes hit fresh stateful decoders in delivery order, the
// traced rewards and recorded actions land in the Replay DB exactly as
// they did live, and training-phase action records drive real
// compute_action / train_tick calls — so a seeded capture replayed at
// `max` speed ends with a training fingerprint bit-identical to the
// original run (the round-trip guarantee pinned by
// tests/integration/test_capture.cpp).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "capture/trace_meta.hpp"
#include "capture/wire_log_reader.hpp"
#include "core/capes_system.hpp"
#include "core/interface_daemon.hpp"
#include "rl/action_space.hpp"
#include "rl/replay_db.hpp"

namespace capes::core {

enum class ReplaySpeed {
  kRealtime,  ///< one sampling_tick_s wall-clock pause per trace tick
  kFast,      ///< realtime / 20
  kMax,       ///< no pacing (the determinism-check mode)
};

/// Parse "realtime" | "fast" | "max"; false leaves `out` untouched.
bool parse_replay_speed(const std::string& text, ReplaySpeed* out);

/// Rebuild a live run's engine configuration from capture meta: always
/// the sync learner, checkpointing off. Shared by the trace replayer and
/// the remote brain service (capes_daemond), which must both reconstruct
/// the exact engine a capture/Hello describes. Seeds are NOT set here —
/// callers assign engine_seed/dqn_seed from the meta explicitly.
DrlEngineOptions engine_options_from_meta(const capture::TraceMeta& m);

struct TraceReplayOptions {
  ReplaySpeed speed = ReplaySpeed::kMax;
  /// Optional engine/replay hyperparameter overlay (diff mode: same
  /// traffic, different tuner configuration). Topology and both seeds
  /// always come from the capture meta so a diff isolates the overlay.
  const CapesOptions* config_overlay = nullptr;
};

/// Per-phase replay outcome, the PhaseReport analogue diff mode compares.
struct ReplayPhaseSummary {
  RunPhase phase = RunPhase::kIdle;
  std::int64_t begin_tick = 0;
  std::int64_t end_tick = 0;
  std::int64_t ticks = 0;  ///< reward records inside the phase
  double mean_reward = 0.0;
  double mean_throughput_mbs = 0.0;
  double mean_latency_ms = 0.0;
  std::size_t train_steps = 0;
  std::uint64_t action_records = 0;
  /// Replayed engine suggestions that differ from the traced ones. Zero
  /// on a faithful round trip; nonzero under a config overlay is the
  /// diff-mode signal, not an error.
  std::uint64_t action_mismatches = 0;
  /// Fault-injection accounting rebuilt from kFault records (all zero on
  /// a faultless capture) — matches the live run's RunResult counters.
  std::uint64_t faults_injected = 0;
  std::uint64_t ost_crashes = 0;
  std::uint64_t stragglers = 0;
  std::uint64_t partitions = 0;
  std::uint64_t ticks_degraded = 0;
  /// PELT mean-shift changepoints over the phase's traced per-tick
  /// throughput series — the same statistic the live run computes, so a
  /// faithful replay reproduces it exactly.
  std::size_t regime_shifts = 0;
};

struct TraceReplayReport {
  std::vector<ReplayPhaseSummary> phases;
  capture::ReadStats read_stats;
  std::uint64_t status_records = 0;
  std::uint64_t reward_records = 0;
  std::uint64_t action_records = 0;
  std::uint64_t broadcast_records = 0;
  std::uint64_t workload_changes = 0;
  std::uint64_t fault_records = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t action_mismatches = 0;
  std::size_t total_train_steps = 0;
  std::uint32_t weights_fingerprint = 0;
  bool tail_truncated = false;
};

class TraceReplayer {
 public:
  TraceReplayer();
  ~TraceReplayer();

  /// Load + validate the capture and construct the fresh replay pipeline
  /// (Replay DB, daemon decoders, DRL engine). False + `*error` on a
  /// missing/corrupt file, undecodable meta, or zero valid records.
  bool open(const std::string& path, TraceReplayOptions opts,
            std::string* error);

  const capture::TraceMeta& meta() const { return meta_; }

  /// True when the replayed engine's fresh weights match the fingerprint
  /// the capture recorded at start — i.e. the live run did NOT resume
  /// from a checkpoint and the round-trip guarantee applies.
  bool fresh_weights_match() const { return fresh_weights_match_; }

  /// Consume the whole capture. Call once.
  TraceReplayReport run();

 private:
  TraceReplayOptions opts_;
  capture::WireLogReader reader_;
  capture::TraceMeta meta_;
  bool fresh_weights_match_ = true;

  // Destruction order mirrors CapesSystem: the daemon references the
  // replay DB and the action space; the engine references the replay DB.
  std::unique_ptr<rl::ReplayDb> replay_;
  std::unique_ptr<rl::ActionSpace> space_;  ///< empty dummy (ingest only)
  std::unique_ptr<InterfaceDaemon> daemon_;
  std::unique_ptr<DrlEngine> engine_;
};

}  // namespace capes::core
