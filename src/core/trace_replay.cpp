#include "core/trace_replay.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "sim/fault.hpp"
#include "stats/changepoint.hpp"
#include "util/frame.hpp"
#include "util/logging.hpp"

namespace capes::core {

using util::get_le32;
using util::get_le_f64;

/// Rebuild the live run's engine configuration from the capture meta.
/// Always the sync learner (bit-identical weights by the engine's
/// sync==async guarantee) with checkpointing off.
DrlEngineOptions engine_options_from_meta(const capture::TraceMeta& m) {
  DrlEngineOptions e;
  e.dqn.num_actions = m.num_actions;
  e.dqn.num_hidden_layers = m.num_hidden_layers;
  e.dqn.hidden_size = m.hidden_size;
  e.dqn.gamma = m.gamma;
  e.dqn.learning_rate = m.learning_rate;
  e.dqn.target_update_alpha = m.target_update_alpha;
  e.dqn.loss = static_cast<rl::LossKind>(m.loss_kind);
  e.dqn.use_target_network = m.use_target_network;
  e.dqn.use_double_dqn = m.use_double_dqn;
  e.dqn.activation = static_cast<nn::Activation>(m.activation);
  e.epsilon.initial = m.epsilon_initial;
  e.epsilon.final_value = m.epsilon_final;
  e.epsilon.anneal_ticks = m.epsilon_anneal_ticks;
  e.epsilon.bump_value = m.epsilon_bump_value;
  e.epsilon.bump_ticks = m.epsilon_bump_ticks;
  e.minibatch_size = m.minibatch_size;
  e.train_steps_per_tick = m.train_steps_per_tick;
  e.eval_epsilon = m.eval_epsilon;
  return e;
}

bool parse_replay_speed(const std::string& text, ReplaySpeed* out) {
  if (text == "realtime") {
    *out = ReplaySpeed::kRealtime;
  } else if (text == "fast") {
    *out = ReplaySpeed::kFast;
  } else if (text == "max") {
    *out = ReplaySpeed::kMax;
  } else {
    return false;
  }
  return true;
}

TraceReplayer::TraceReplayer() = default;
TraceReplayer::~TraceReplayer() = default;

bool TraceReplayer::open(const std::string& path, TraceReplayOptions opts,
                         std::string* error) {
  opts_ = opts;
  if (!reader_.open(path, error)) return false;
  auto meta = capture::TraceMeta::decode(reader_.meta());
  if (!meta) {
    if (error) *error = "capture meta is missing or undecodable: " + path;
    return false;
  }
  meta_ = *meta;
  if (meta_.num_nodes == 0 || meta_.pis_per_node == 0 ||
      meta_.num_actions == 0) {
    if (error) *error = "capture meta describes an empty topology: " + path;
    return false;
  }

  rl::ReplayDbOptions replay_opts;
  replay_opts.num_nodes = meta_.num_nodes;
  replay_opts.pis_per_node = meta_.pis_per_node;
  replay_opts.ticks_per_observation = meta_.ticks_per_observation;
  replay_opts.missing_tolerance = meta_.missing_tolerance;
  replay_opts.max_ticks_retained = meta_.max_ticks_retained;
  DrlEngineOptions engine_opts = engine_options_from_meta(meta_);
  if (opts_.config_overlay != nullptr) {
    const CapesOptions& overlay = *opts_.config_overlay;
    engine_opts = overlay.engine;
    engine_opts.dqn.num_actions = meta_.num_actions;  // topology is traced
    engine_opts.learner_mode = LearnerMode::kSync;
    engine_opts.checkpoint_ticks = 0;
    replay_opts.ticks_per_observation = overlay.replay.ticks_per_observation;
    replay_opts.missing_tolerance = overlay.replay.missing_tolerance;
    replay_opts.max_ticks_retained = overlay.replay.max_ticks_retained;
  }
  // Seeds always come from the capture, overlay or not: a diff should
  // isolate the hyperparameter change, not add seed noise (and the conf
  // scheme has no seed keys anyway — seeds flow through --seed presets).
  engine_opts.seed = meta_.engine_seed;
  engine_opts.dqn.seed = meta_.dqn_seed;

  replay_ = std::make_unique<rl::ReplayDb>(replay_opts);
  // The daemon is ingest-only here (on_status_message / record routing);
  // it never decodes or applies an action, so an empty action space — a
  // lone NULL action — satisfies the legacy single-shard constructor.
  space_ = std::make_unique<rl::ActionSpace>(std::vector<rl::TunableParameter>{});
  daemon_ = std::make_unique<InterfaceDaemon>(*replay_, *space_,
                                              meta_.num_nodes,
                                              meta_.pis_per_node);
  engine_ = std::make_unique<DrlEngine>(engine_opts, *replay_);
  fresh_weights_match_ =
      engine_->weights_fingerprint() == meta_.initial_weights_fingerprint;
  if (!fresh_weights_match_ && opts_.config_overlay == nullptr) {
    CAPES_LOG_WARN("replay")
        << "fresh weights do not match the capture's starting fingerprint "
        << "(the live run likely restored a checkpoint); the round-trip "
        << "guarantee does not apply";
  }
  return true;
}

TraceReplayReport TraceReplayer::run() {
  TraceReplayReport report;
  ReplayPhaseSummary phase;
  bool in_phase = false;
  double reward_sum = 0.0;
  double throughput_sum = 0.0;
  double latency_sum = 0.0;
  // Per-tick throughput inside the current phase: the traced analogue of
  // RunResult::throughput.samples(), so the changepoint count below is
  // computed on exactly the series the live run analyzed.
  std::vector<double> throughput_samples;

  const double tick_seconds =
      opts_.speed == ReplaySpeed::kRealtime ? meta_.sampling_tick_s
      : opts_.speed == ReplaySpeed::kFast   ? meta_.sampling_tick_s / 20.0
                                            : 0.0;

  capture::WireRecord rec;
  while (reader_.next(&rec)) {
    switch (rec.type) {
      case capture::RecordType::kStatus:
        ++report.status_records;
        daemon_->on_status_message(rec.payload);
        break;

      case capture::RecordType::kReward: {
        if (rec.payload.size() < 24) break;  // malformed-but-valid-CRC guard
        ++report.reward_records;
        const double reward = get_le_f64(rec.payload.data());
        replay_->record_reward(rec.tick, reward);
        if (in_phase) {
          ++phase.ticks;
          reward_sum += reward;
          const double throughput = get_le_f64(rec.payload.data() + 8);
          throughput_sum += throughput;
          throughput_samples.push_back(throughput);
          latency_sum += get_le_f64(rec.payload.data() + 16);
        }
        if (tick_seconds > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(tick_seconds));
        }
        break;
      }

      case capture::RecordType::kAction: {
        if (rec.payload.size() < 8) break;
        ++report.action_records;
        if (in_phase) ++phase.action_records;
        const std::size_t traced_suggested = get_le32(rec.payload.data());
        const std::size_t traced_recorded = get_le32(rec.payload.data() + 4);
        const bool training = in_phase && phase.phase == RunPhase::kTraining;
        const bool tuned = in_phase && phase.phase == RunPhase::kTuned;
        if (training || tuned) {
          // Consume the identical RNG stream the live engine did. The
          // *traced* recorded action goes into the replay DB — traffic
          // is fixed by the capture, so divergent suggestions (possible
          // only under a config overlay) are counted, not applied.
          const std::size_t suggested =
              engine_->compute_action(rec.tick, training);
          if (suggested != traced_suggested) {
            ++report.action_mismatches;
            if (in_phase) ++phase.action_mismatches;
          }
        }
        replay_->record_action(rec.tick, traced_recorded);
        if (training) {
          phase.train_steps += engine_->train_tick();
        }
        break;
      }

      case capture::RecordType::kBroadcast:
        ++report.broadcast_records;
        break;

      case capture::RecordType::kPhaseBegin:
        if (in_phase) report.phases.push_back(phase);  // unterminated phase
        phase = ReplayPhaseSummary{};
        phase.phase = rec.payload.empty()
                          ? RunPhase::kIdle
                          : static_cast<RunPhase>(rec.payload[0]);
        phase.begin_tick = rec.tick;
        in_phase = true;
        reward_sum = throughput_sum = latency_sum = 0.0;
        throughput_samples.clear();
        break;

      case capture::RecordType::kPhaseEnd:
        if (!in_phase) break;
        phase.end_tick = rec.tick;
        if (phase.ticks > 0) {
          const double n = static_cast<double>(phase.ticks);
          phase.mean_reward = reward_sum / n;
          phase.mean_throughput_mbs = throughput_sum / n;
          phase.mean_latency_ms = latency_sum / n;
        }
        // Unconditional, like the live run: live and replay must agree on
        // this count whether or not any fault fired.
        phase.regime_shifts =
            stats::pelt_mean_shift(throughput_samples).size();
        report.phases.push_back(phase);
        in_phase = false;
        break;

      case capture::RecordType::kWorkloadChange:
        ++report.workload_changes;
        engine_->notify_workload_change();
        break;

      case capture::RecordType::kFault: {
        ++report.fault_records;
        if (rec.payload.empty() || !in_phase) break;
        switch (static_cast<sim::FaultKind>(rec.payload[0])) {
          case sim::FaultKind::kDegraded:
            ++phase.ticks_degraded;
            break;
          case sim::FaultKind::kOstCrash:
            ++phase.faults_injected;
            ++phase.ost_crashes;
            break;
          case sim::FaultKind::kStraggler:
            ++phase.faults_injected;
            ++phase.stragglers;
            break;
          case sim::FaultKind::kPartition:
            ++phase.faults_injected;
            ++phase.partitions;
            break;
        }
        break;
      }
    }
  }
  if (in_phase) {
    // Torn tail mid-phase: finish the changepoint count on what we have.
    phase.regime_shifts = stats::pelt_mean_shift(throughput_samples).size();
    report.phases.push_back(phase);
  }

  report.read_stats = reader_.stats();
  report.tail_truncated = reader_.tail_truncated();
  report.decode_errors = daemon_->decode_errors();
  report.total_train_steps = engine_->total_train_steps();
  report.weights_fingerprint = engine_->weights_fingerprint();
  return report;
}

}  // namespace capes::core
