#pragma once
// The distributed control plane's wire protocol and its agent-side half.
//
// CAPES §3.3 deploys the Monitoring Agents and Control Agents on the
// storage cluster and the Interface Daemon + DRL Engine on a dedicated
// learner box. This header defines the protocol both processes speak
// over a net::Endpoint, and BrainClient — the piece that lets a
// CapesSystem whose transport is `tcp:` run its cluster locally while
// the brain (Replay DB, DRL Engine, action checking) lives in a remote
// capes_daemond.
//
// Frame types reuse the capture::RecordType values 1..7 for every
// message that mirrors a flight-recorder record (PI status, reward,
// action, broadcast, phase markers, workload change) — the tcp wire
// carries the exact topic/sender/tick framing the capture file does, so
// a capture taken on the agent side of a distributed run replays
// byte-identically through capes_replay. Control frames (handshake,
// tick barriers, acks) live above that range.
//
// Per-tick lock step: the client ships this tick's status + reward
// frames, then kFrameTickDone; the service ingests them in FIFO order,
// computes/checks/records the action exactly as the in-process
// InterfaceDaemon would, streams the resulting kBroadcast frames, and
// closes the tick with kFrameActionsDone. Because the service consumes
// frames in send order and both sides apply the same deterministic
// logic, a loopback run with zero loss is bit-identical to the `sync`
// transport — the equivalence bar tests/integration/test_distributed
// holds it to.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bus/transport.hpp"
#include "capture/trace_meta.hpp"
#include "capture/wire_format.hpp"
#include "core/control_domain.hpp"
#include "core/monitoring_agent.hpp"
#include "net/endpoint.hpp"
#include "rl/action_space.hpp"

namespace capes::capture {
class WireLogWriter;
}  // namespace capes::capture

namespace capes::core {

/// Bumped on any incompatible wire change; both sides echo it in the
/// handshake and a mismatch aborts the session before any state exists.
inline constexpr std::uint32_t kWireProtoVersion = 1;

/// Control frame types, above the capture::RecordType range (1..7) those
/// record-mirroring frames reuse. 255 is the endpoint-internal heartbeat.
inline constexpr std::uint8_t kFrameHello = 16;       ///< client -> service
inline constexpr std::uint8_t kFrameHelloAck = 17;    ///< service -> client
inline constexpr std::uint8_t kFrameTickDone = 18;    ///< client -> service
inline constexpr std::uint8_t kFrameActionsDone = 19; ///< service -> client
inline constexpr std::uint8_t kFrameParamsReset = 20; ///< client -> service
inline constexpr std::uint8_t kFramePhaseEndAck = 21; ///< service -> client
inline constexpr std::uint8_t kFrameBye = 22;         ///< client -> service

/// The record-mirroring frame types, by name.
constexpr std::uint8_t frame_type(capture::RecordType t) {
  return static_cast<std::uint8_t>(t);
}

/// Wire values of the phase byte in kFrameTickDone / kPhaseBegin /
/// kPhaseEnd payloads — the RunPhase enumerators, pinned here so the
/// protocol does not silently shift if that enum is ever reordered
/// (capture files already bake these values into phase records).
inline constexpr std::uint8_t kPhaseIdle = 0;
inline constexpr std::uint8_t kPhaseTraining = 1;
inline constexpr std::uint8_t kPhaseBaseline = 2;
inline constexpr std::uint8_t kPhaseTuned = 3;

/// One control domain as described in the Hello: where its action slice
/// starts in the composite action namespace, and its tunable parameters
/// (enough for the service to rebuild the domain's ActionSpace + Action
/// Checker and mirror its parameter vector).
struct RemoteDomain {
  std::uint64_t action_offset = 1;
  std::vector<rl::TunableParameter> params;
};

/// The kFrameHello payload: the same TraceMeta snapshot a capture file
/// leads with (topology + every engine/DQN/replay hyperparameter and
/// seed), plus the per-domain action-space layout. The service rebuilds
/// its Replay DB and DRL Engine from this exactly as capes_replay does
/// from a capture — which is what makes the two bit-identical.
struct HelloPayload {
  capture::TraceMeta meta;
  std::vector<RemoteDomain> domains;
};

std::vector<std::uint8_t> encode_hello(const HelloPayload& hello);
/// nullopt on a version mismatch or a truncated/garbled payload.
std::optional<HelloPayload> decode_hello(const std::vector<std::uint8_t>& blob);

/// What kFrameActionsDone reports back for one tick.
struct TickOutcome {
  std::size_t suggested = 0;      ///< the engine's composite action index
  std::size_t recorded = 0;       ///< post-veto (0 = NULL action)
  std::size_t train_steps = 0;    ///< minibatch steps this tick
  std::size_t total_train_steps = 0;
  /// False when the service vanished before answering: the tick completes
  /// with no action applied and the loss shows up in stats().dropped.
  bool link_alive = true;
};

/// The agent-side half of the distributed control plane. Owns the tcp
/// connection to capes_daemond and stands in for the in-process
/// InterfaceDaemon + DrlEngine on the CapesSystem tick path:
///
///   sample_all_agents -> inbox() -> flush_status(t)     (kStatus frames)
///   on_reward         -> send_reward(t, ...)            (kReward frame)
///   action + train    -> end_tick(t, mode)              (kFrameTickDone,
///                        blocks for kBroadcast* + kFrameActionsDone)
///
/// The send path rides the endpoint's recycled slots, so the warm tick
/// path stays allocation-free and never blocks on a slow daemon — a full
/// outbound ring sheds frames into stats().dropped, the same surface a
/// lossy SimTransport reports on. A dead peer never hangs the loop:
/// every blocking wait exits when the endpoint marks the link dead.
class BrainClient {
 public:
  using PayloadRecycler =
      std::function<void(std::uint64_t sender, std::vector<std::uint8_t>&& payload)>;

  /// `transport` (a TcpTransport; must outlive the client) backs the
  /// local inbox channel; `opts` supplies host/port/connect_timeout_ms.
  BrainClient(bus::Transport& transport, bus::TransportOptions opts,
              net::EndpointOptions endpoint_opts = {});
  ~BrainClient();

  BrainClient(const BrainClient&) = delete;
  BrainClient& operator=(const BrainClient&) = delete;

  /// Dial the daemon (with the socket layer's capped-backoff retry until
  /// connect_timeout_ms), send kFrameHello, and block for kFrameHelloAck.
  /// `domains` must outlive the client; broadcasts apply to their
  /// parameter vectors and Control Agents. False + `*error` on refused
  /// connection, version mismatch, or a daemon that rejected the Hello.
  bool connect(const capture::TraceMeta& meta,
               std::vector<ControlDomain*> domains, std::string* error);

  /// The PI inbox Monitoring Agents publish into (same role as
  /// InterfaceDaemon::inbox()). Valid for the client's lifetime.
  PiChannel& inbox() { return inbox_; }

  /// Flight recorder for the agent-side mirror of every daemon-boundary
  /// record (nullable; must outlive the client while set).
  void set_capture(capture::WireLogWriter* writer) { capture_ = writer; }

  /// Same contract as InterfaceDaemon::set_payload_recycler: drained PI
  /// payload buffers flow back to the agent that encoded them.
  void set_payload_recycler(PayloadRecycler recycler);

  /// Ship every PI message due by tick `t` as kStatus frames, in the
  /// channel's deterministic (deliver tick, sender, send tick) order —
  /// the order the in-process daemon would have ingested them. Returns
  /// messages shipped.
  std::size_t flush_status(std::int64_t t);

  /// Ship this tick's objective output (kReward; the extra fields mirror
  /// the capture record so agent-side captures replay identically).
  void send_reward(std::int64_t t, double reward, double throughput_sum,
                   double latency_mean);

  /// Close tick `t`: send kFrameTickDone and block until the service's
  /// kFrameActionsDone, applying any kBroadcast frames (parameter vector
  /// + Control Agents of the owning domain) in arrival order on the way.
  TickOutcome end_tick(std::int64_t t, std::uint8_t mode);

  /// Phase markers (kPhaseBegin / kPhaseEnd). end_phase blocks for
  /// kFramePhaseEndAck — the remote analogue of drain_learner() — and
  /// refreshes weights_fingerprint() / total_train_steps(); false when
  /// the link died first.
  void begin_phase(std::int64_t t, std::uint8_t phase);
  bool end_phase(std::int64_t t, std::uint8_t phase);

  /// Reset every service-side parameter mirror to its initial values
  /// (run_baseline's reset, kFrameParamsReset).
  void reset_params(std::int64_t t);

  /// §3.6 workload-change hint (kWorkloadChange -> engine epsilon bump).
  void workload_change(std::int64_t t);

  /// Polite shutdown: kFrameBye, then close the endpoint. The service
  /// reports a clean session. Idempotent; the destructor calls it.
  void bye(std::int64_t t);

  bool alive() const { return endpoint_ != nullptr && endpoint_->alive(); }

  /// Last fingerprint/step count the service reported (HelloAck, then
  /// each PhaseEndAck) — the remote stand-ins for
  /// DrlEngine::weights_fingerprint() / total_train_steps().
  std::uint32_t weights_fingerprint() const { return fingerprint_; }
  std::size_t total_train_steps() const { return total_train_steps_; }

  /// Control-network accounting, shaped like InterfaceDaemon::bus_stats():
  /// the inbox channel's counters with the endpoint's shed/undeliverable
  /// frames folded into `dropped` — so PhaseReport::messages_dropped
  /// surfaces tcp loss exactly as it does sim-transport loss.
  bus::ChannelStats stats() const;

  /// The wire endpoint (null before connect); byte counters feed
  /// bench/ext_net.
  const net::Endpoint* endpoint() const { return endpoint_.get(); }

 private:
  bool send_frame(std::uint8_t type, std::int64_t tick, std::uint64_t topic,
                  std::uint64_t sender, const std::uint8_t* payload,
                  std::size_t payload_size);
  /// Stash one received kBroadcast for end-of-tick application.
  void stash_broadcast(const net::Frame& frame);
  void apply_broadcasts(std::int64_t t);

  bus::TransportOptions opts_;
  net::EndpointOptions endpoint_opts_;
  PiChannel inbox_;
  std::vector<ControlDomain*> domains_;
  capture::WireLogWriter* capture_ = nullptr;
  PayloadRecycler payload_recycler_;
  std::unique_ptr<net::Endpoint> endpoint_;

  std::uint32_t fingerprint_ = 0;
  std::size_t total_train_steps_ = 0;
  /// Frames that could not even be queued because the link was already
  /// dead (the endpoint's own counter covers shed-while-alive).
  std::uint64_t dead_drops_ = 0;

  /// Recycled broadcast stash: slots grow once, values keep capacity.
  struct PendingBroadcast {
    std::size_t domain = 0;
    std::vector<double> values;
  };
  std::vector<PendingBroadcast> stash_;
  std::size_t stash_count_ = 0;
  std::vector<std::uint8_t> payload_scratch_;
};

}  // namespace capes::core
