#pragma once
// Network model for the simulated cluster: per-node full-duplex NIC links
// plus a shared switch fabric with a finite aggregate bandwidth (the
// evaluation testbed's gigabit ethernet measured ~500 MB/s aggregate).
// Transfers serialize on the sender's uplink, the fabric, and the
// receiver's downlink; a base propagation/processing latency is added.
// Optional jitter models the "not isolated network" noise the paper
// deliberately kept in its evaluation (§4.2).

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace capes::sim {

using NodeId = std::size_t;

struct NetworkOptions {
  double link_bandwidth_mbs = 118.0;   ///< per-NIC MB/s (gigabit ethernet)
  double fabric_bandwidth_mbs = 500.0; ///< aggregate switch MB/s
  TimeUs base_latency = 200;           ///< one-way propagation+stack, us
  double jitter_fraction = 0.0;        ///< +- uniform jitter on latency
};

/// Bandwidth-limited cluster network.
class Network {
 public:
  Network(Simulator& sim, std::size_t num_nodes, NetworkOptions opts,
          util::Rng rng);

  std::size_t num_nodes() const { return node_up_busy_until_.size(); }
  const NetworkOptions& options() const { return opts_; }

  /// Send `bytes` from `src` to `dst`; `on_delivered` fires at the
  /// receiver when the last byte arrives.
  void send(NodeId src, NodeId dst, std::uint64_t bytes,
            std::function<void()> on_delivered);

  /// Estimated current one-way latency to `dst` for a small message —
  /// base latency plus the receiver downlink's queuing backlog. This is
  /// what the Monitoring Agent reports as the "ping latency" PI.
  TimeUs estimate_latency(NodeId src, NodeId dst) const;

  std::uint64_t total_bytes_sent() const { return total_bytes_; }

 private:
  TimeUs transfer_time(double bandwidth_mbs, std::uint64_t bytes) const;

  Simulator& sim_;
  NetworkOptions opts_;
  util::Rng rng_;
  std::vector<TimeUs> node_up_busy_until_;
  std::vector<TimeUs> node_down_busy_until_;
  TimeUs fabric_busy_until_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace capes::sim
