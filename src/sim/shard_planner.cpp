#include "sim/shard_planner.hpp"

#include <algorithm>
#include <numeric>

namespace capes::sim {

const char* shard_plan_name(ShardPlanKind kind) {
  return kind == ShardPlanKind::kRate ? "rate" : "static";
}

bool parse_shard_plan_spec(const std::string& spec, ShardPlanKind* out,
                           std::string* error) {
  if (spec == "static") {
    *out = ShardPlanKind::kStatic;
    return true;
  }
  if (spec == "rate") {
    *out = ShardPlanKind::kRate;
    return true;
  }
  if (error != nullptr) {
    *error = "unknown shard plan '" + spec + "' (expected static or rate)";
  }
  return false;
}

double ShardPlan::max_over_mean() const {
  if (shard_load.empty()) return 1.0;
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (const std::uint64_t load : shard_load) {
    total += load;
    max = std::max(max, load);
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(shard_load.size());
  return static_cast<double>(max) / mean;
}

ShardPlanner::ShardPlanner(ShardPlanKind kind, std::size_t num_domains,
                           std::size_t num_shards)
    : kind_(kind),
      num_domains_(num_domains),
      num_shards_(num_shards == 0 ? 1 : num_shards) {}

ShardPlan ShardPlanner::static_plan() const {
  ShardPlan plan;
  plan.shard_of_domain.resize(num_domains_);
  plan.shard_load.assign(num_shards_, 0);
  for (std::size_t d = 0; d < num_domains_; ++d) {
    plan.shard_of_domain[d] = d % num_shards_;
    ++plan.shard_load[d % num_shards_];
  }
  return plan;
}

ShardPlan ShardPlanner::plan(
    const std::vector<std::uint64_t>& domain_events) const {
  if (kind_ == ShardPlanKind::kStatic) return static_plan();
  const bool any = std::any_of(domain_events.begin(), domain_events.end(),
                               [](std::uint64_t e) { return e > 0; });
  if (!any) return static_plan();

  // LPT: heaviest domain first, each onto the least-loaded shard. A
  // domain weighs its event count plus one, so domains that were idle
  // last phase still spread across shards instead of piling onto
  // whichever shard happens to be lightest.
  std::vector<std::size_t> order(num_domains_);
  std::iota(order.begin(), order.end(), 0);
  auto weight = [&domain_events](std::size_t d) -> std::uint64_t {
    return (d < domain_events.size() ? domain_events[d] : 0) + 1;
  };
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (weight(a) != weight(b)) return weight(a) > weight(b);
    return a < b;
  });

  ShardPlan plan;
  plan.shard_of_domain.resize(num_domains_);
  plan.shard_load.assign(num_shards_, 0);
  for (const std::size_t d : order) {
    std::size_t target = 0;
    for (std::size_t s = 1; s < num_shards_; ++s) {
      if (plan.shard_load[s] < plan.shard_load[target]) target = s;
    }
    plan.shard_of_domain[d] = target;
    plan.shard_load[target] += weight(d);
  }
  return plan;
}

}  // namespace capes::sim
