#pragma once
// Discrete-event simulation engine. Time is an int64 count of microseconds
// since simulation start. Events fire in (time, insertion order); handlers
// may schedule further events. This engine hosts the simulated Lustre
// cluster that substitutes for the paper's physical testbed.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace capes::sim {

using TimeUs = std::int64_t;

constexpr TimeUs kUsPerMs = 1000;
constexpr TimeUs kUsPerSec = 1000 * 1000;

/// Convert seconds (double) to simulation microseconds.
inline TimeUs seconds(double s) {
  return static_cast<TimeUs>(s * static_cast<double>(kUsPerSec));
}

/// Event-queue simulator.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeUs now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now, else it fires "now").
  void schedule_at(TimeUs t, std::function<void()> fn);

  /// Schedule `fn` after `delay` microseconds.
  void schedule_in(TimeUs delay, std::function<void()> fn);

  /// Run until the queue is empty or simulated time would pass `t_end`.
  /// Events exactly at t_end are executed. Returns the number of events run.
  std::size_t run_until(TimeUs t_end);

  /// Advance the clock by `duration` from now (the unified sampling-tick
  /// step: one call drives every hosted cluster's events for one tick).
  std::size_t run_for(TimeUs duration) { return run_until(now_ + duration); }

  /// Run a single event; returns false when the queue is empty.
  bool step();

  std::size_t pending_events() const { return queue_.size(); }
  std::size_t executed_events() const { return executed_; }

  /// Register a callback invoked every `period` starting at `start`
  /// (inclusive) until the simulation stops being run. Useful for sampling
  /// ticks. The callback receives the tick index (0-based).
  void every(TimeUs start, TimeUs period, std::function<void(std::int64_t)> fn);

 private:
  struct Event {
    TimeUs time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void schedule_periodic(TimeUs t, TimeUs period, std::int64_t index,
                         std::shared_ptr<std::function<void(std::int64_t)>> fn);

  TimeUs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace capes::sim
