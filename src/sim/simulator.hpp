#pragma once
// Discrete-event simulation engine, sharded per control domain. This
// engine hosts the simulated Lustre clusters that substitute for the
// paper's physical testbed.
//
// A Simulator owns one or more sim::EventQueue shards. With one shard
// (the default) it is exactly the original monolithic event loop. With
// N shards, independent control domains schedule onto their own queues
// and run_until()/run_for() advance every shard to the same target time
// — concurrently on a util::ThreadPool when one is passed — meeting a
// time-synced barrier at each sampling tick. Domains only interact
// through bus channel publishes between ticks, so per-domain event
// streams are identical to the serial interleaving and a sharded run is
// bit-identical to the single-queue one for a fixed seed.
//
// Scheduling routes to the right shard without the lustre/workload
// layers knowing shards exist:
//  * an event's follow-up schedules land in the shard executing it
//    (EventQueue::current(), a thread-local set while a queue runs);
//  * setup code outside event execution (cluster construction, workload
//    start) schedules into the shard bound via bind_shard(), shard 0
//    when nothing is bound.
// now() follows the same rule, so an executing event reads its shard's
// clock and barrier-time code reads the common tick boundary.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"

namespace capes::util {
class ThreadPool;
}

namespace capes::sim {

/// Event-queue simulator (a host of one or more EventQueue shards).
class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // ---- sharding ----------------------------------------------------------

  /// Repartition the event space into `n` queues (n < 1 reads as 1).
  /// Only legal on a pristine simulator — before any event has been
  /// scheduled or the clock moved — because existing events cannot be
  /// reassigned to shards; misuse aborts (this codebase is
  /// exception-free).
  void configure_shards(std::size_t n);

  std::size_t num_shards() const { return shards_.size(); }
  EventQueue& shard(std::size_t i) { return *shards_[i]; }
  const EventQueue& shard(std::size_t i) const { return *shards_[i]; }

  /// Scoped default-shard binding for scheduling done outside event
  /// execution (cluster construction, workload start/switch, barrier-time
  /// parameter application). The binding is thread-local, so barrier code
  /// running on worker threads can bind without racing other threads;
  /// destruction restores the previous binding.
  class [[nodiscard]] ShardBinding {
   public:
    ~ShardBinding();
    ShardBinding(ShardBinding&& other) noexcept
        : active_(other.active_),
          previous_sim_(other.previous_sim_),
          previous_shard_(other.previous_shard_),
          previous_domain_(other.previous_domain_) {
      other.active_ = false;
    }
    ShardBinding(const ShardBinding&) = delete;
    ShardBinding& operator=(const ShardBinding&) = delete;
    ShardBinding& operator=(ShardBinding&&) = delete;

   private:
    friend class Simulator;
    ShardBinding() = default;  ///< inactive: destruction restores nothing
    ShardBinding(const Simulator* previous_sim, std::size_t previous_shard,
                 std::uint32_t previous_domain)
        : active_(true),
          previous_sim_(previous_sim),
          previous_shard_(previous_shard),
          previous_domain_(previous_domain) {}
    bool active_ = false;
    const Simulator* previous_sim_ = nullptr;
    std::size_t previous_shard_ = 0;
    std::uint32_t previous_domain_ = 0;
  };

  /// Bind `shard` as the target of out-of-event schedule_*() calls from
  /// this thread for the returned binding's lifetime; events scheduled
  /// through the binding carry `domain` as their tag (the control domain
  /// they belong to, for rate counting and shard migration). Aborts on
  /// an out-of-range shard.
  ShardBinding bind_shard(std::size_t shard, std::uint32_t domain = 0) const;

  /// An inactive binding (destruction restores nothing) for call sites
  /// that bind conditionally.
  static ShardBinding no_binding() { return {}; }

  // ---- the original single-queue API -------------------------------------

  /// The executing shard's clock inside an event; outside, the bound
  /// shard's clock when a binding is active, else the latest shard
  /// clock. At a barrier every shard sits on the same t_end, so all
  /// three reads agree; after a bare step() on a sharded simulator the
  /// latest-clock rule keeps now() monotonic (lagging shards catch up
  /// on the next run_until). Inline: this is the simulator's hottest
  /// read (every RPC in the cluster model calls it several times).
  TimeUs now() const {
    EventQueue* executing = EventQueue::current();
    if (executing != nullptr && executing->owner() == this) {
      return executing->now();
    }
    if (bound_sim_ == this) return shards_[bound_shard_]->now();
    TimeUs latest = shards_[0]->now();
    for (std::size_t i = 1; i < shards_.size(); ++i) {
      latest = std::max(latest, shards_[i]->now());
    }
    return latest;
  }

  /// Schedule `fn` at absolute time `t` (>= now, else it fires "now").
  /// From inside an event the follow-up inherits the event's shard and
  /// domain tag; outside, it lands in the bound shard tagged with the
  /// binding's domain (shard 0 / domain 0 when nothing is bound).
  void schedule_at(TimeUs t, std::function<void()> fn) {
    EventQueue* executing = EventQueue::current();
    if (executing != nullptr && executing->owner() == this) {
      executing->schedule_at(t, std::move(fn));
      return;
    }
    route().schedule_at_tagged(t, std::move(fn), route_domain());
  }

  /// Schedule `fn` after `delay` microseconds.
  void schedule_in(TimeUs delay, std::function<void()> fn) {
    EventQueue* executing = EventQueue::current();
    if (executing != nullptr && executing->owner() == this) {
      executing->schedule_in(delay, std::move(fn));
      return;
    }
    route().schedule_in_tagged(delay, std::move(fn), route_domain());
  }

  /// Advance every shard until its queue is empty or simulated time
  /// would pass `t_end`; events exactly at t_end are executed and every
  /// shard's clock lands on t_end (the barrier). With a pool and more
  /// than one shard, shards advance concurrently and this call is the
  /// barrier wait. Returns the number of events run across all shards.
  std::size_t run_until(TimeUs t_end, util::ThreadPool* pool = nullptr);

  /// Advance the clock by `duration` from now (the unified sampling-tick
  /// step: one call drives every hosted cluster's events for one tick).
  std::size_t run_for(TimeUs duration, util::ThreadPool* pool = nullptr) {
    return run_until(now() + duration, pool);
  }

  /// Run the globally earliest pending event (ties break toward the
  /// lowest shard index); returns false when every queue is empty. Only
  /// the chosen shard's clock advances; sibling shards catch up on the
  /// next run_until (now() reports the latest clock meanwhile).
  bool step();

  std::size_t pending_events() const;
  std::size_t executed_events() const;

  /// Register a callback invoked every `period` starting at `start`
  /// (inclusive) until the simulation stops being run. Useful for sampling
  /// ticks. The callback receives the tick index (0-based). Routed like
  /// schedule_at: the periodic chain lives in one shard and carries the
  /// routing domain tag.
  void every(TimeUs start, TimeUs period, std::function<void(std::int64_t)> fn) {
    route().every(start, period, std::move(fn), route_domain());
  }

  // ---- rate-aware placement support --------------------------------------

  /// Move every pending event tagged `domain` from shard `from` to shard
  /// `to`, preserving the domain's relative event order (the shard
  /// planner re-attaching a domain at a phase boundary). Must be called
  /// between advances — aborts if any queue is executing an event on
  /// this thread — and with in-range shard indices.
  void migrate_domain(std::uint32_t domain, std::size_t from, std::size_t to);

  /// Sum per-domain executed-event counts across shards into `out`
  /// (resized to `num_domains`; counts for higher tags are dropped).
  /// Deterministic — derived from event execution only — so it is safe
  /// input for placement decisions.
  void domain_executed(std::vector<std::uint64_t>& out,
                       std::size_t num_domains) const;

  /// Per-shard events executed by the last multi-shard run_until()
  /// (empty before the first one, or on a single-shard simulator whose
  /// advances skip the bookkeeping).
  const std::vector<std::size_t>& last_advance_events() const {
    return last_advance_events_;
  }

  /// Per-shard wall-clock busy nanoseconds for the last multi-shard
  /// run_until(); max(busy) - busy[i] is shard i's barrier wait.
  /// Observability only — never feed wall clock into placement.
  const std::vector<std::uint64_t>& last_advance_busy_ns() const {
    return last_advance_busy_ns_;
  }

 private:
  /// The queue schedule_*() targets right now: the executing queue when
  /// inside an event — but only one of ours: an event in simulator A's
  /// shard calling into simulator B must reach B's queues, not push into
  /// A's — else this thread's bound shard (shard 0 when nothing is bound
  /// or the binding belongs to another Simulator).
  EventQueue& route() const {
    EventQueue* executing = EventQueue::current();
    if (executing != nullptr && executing->owner() == this) return *executing;
    return *shards_[bound_sim_ == this ? bound_shard_ : 0];
  }

  /// Domain tag for out-of-event schedules: the binding's domain when
  /// this thread's binding belongs to this simulator, else 0.
  std::uint32_t route_domain() const {
    return bound_sim_ == this ? bound_domain_ : 0;
  }

  /// This thread's active binding (see bind_shard). Tagged with the
  /// owning Simulator so bindings never leak across instances.
  static thread_local const Simulator* bound_sim_;
  static thread_local std::size_t bound_shard_;
  static thread_local std::uint32_t bound_domain_;

  std::vector<std::unique_ptr<EventQueue>> shards_;

  // Filled by multi-shard run_until() for barrier observability; reused
  // across ticks so steady-state advances stay allocation-free.
  std::vector<std::size_t> last_advance_events_;
  std::vector<std::uint64_t> last_advance_busy_ns_;
};

}  // namespace capes::sim
