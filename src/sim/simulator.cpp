#include "sim/simulator.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "util/thread_pool.hpp"

namespace capes::sim {

thread_local const Simulator* Simulator::bound_sim_ = nullptr;
thread_local std::size_t Simulator::bound_shard_ = 0;

Simulator::Simulator() {
  shards_.push_back(std::make_unique<EventQueue>());
  shards_[0]->set_owner(this);
}

void Simulator::configure_shards(std::size_t n) {
  if (n < 1) n = 1;
  if (pending_events() != 0 || executed_events() != 0 || now() != 0) {
    std::fprintf(stderr,
                 "Simulator::configure_shards: shards must be configured "
                 "before any event is scheduled or the clock moves\n");
    std::abort();
  }
  shards_.clear();
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<EventQueue>());
    shards_.back()->set_owner(this);
  }
}

Simulator::ShardBinding::~ShardBinding() {
  if (active_) {
    bound_sim_ = previous_sim_;
    bound_shard_ = previous_shard_;
  }
}

Simulator::ShardBinding Simulator::bind_shard(std::size_t shard) const {
  if (shard >= shards_.size()) {
    std::fprintf(stderr, "Simulator::bind_shard: shard %zu out of range (%zu)\n",
                 shard, shards_.size());
    std::abort();
  }
  ShardBinding binding(bound_sim_, bound_shard_);
  bound_sim_ = this;
  bound_shard_ = shard;
  return binding;
}

std::size_t Simulator::run_until(TimeUs t_end, util::ThreadPool* pool) {
  if (shards_.size() == 1) return shards_[0]->run_until(t_end);
  // Per-slot tallies instead of an atomic sum: parallel_for hands each
  // index to exactly one worker, so the writes never alias.
  std::vector<std::size_t> ran(shards_.size(), 0);
  if (pool != nullptr) {
    pool->parallel_for(shards_.size(), [&](std::size_t i) {
      ran[i] = shards_[i]->run_until(t_end);
    });
  } else {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      ran[i] = shards_[i]->run_until(t_end);
    }
  }
  std::size_t total = 0;
  for (std::size_t n : ran) total += n;
  return total;
}

bool Simulator::step() {
  EventQueue* next = nullptr;
  for (auto& shard : shards_) {
    if (shard->next_event_time() == EventQueue::kNoEvent) continue;
    if (next == nullptr || shard->next_event_time() < next->next_event_time()) {
      next = shard.get();
    }
  }
  return next != nullptr && next->step();
}

std::size_t Simulator::pending_events() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->pending_events();
  return total;
}

std::size_t Simulator::executed_events() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->executed_events();
  return total;
}

}  // namespace capes::sim
