#include "sim/simulator.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "util/thread_pool.hpp"

namespace capes::sim {

thread_local const Simulator* Simulator::bound_sim_ = nullptr;
thread_local std::size_t Simulator::bound_shard_ = 0;
thread_local std::uint32_t Simulator::bound_domain_ = 0;

Simulator::Simulator() {
  shards_.push_back(std::make_unique<EventQueue>());
  shards_[0]->set_owner(this);
}

void Simulator::configure_shards(std::size_t n) {
  if (n < 1) n = 1;
  if (pending_events() != 0 || executed_events() != 0 || now() != 0) {
    std::fprintf(stderr,
                 "Simulator::configure_shards: shards must be configured "
                 "before any event is scheduled or the clock moves\n");
    std::abort();
  }
  shards_.clear();
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<EventQueue>());
    shards_.back()->set_owner(this);
  }
}

Simulator::ShardBinding::~ShardBinding() {
  if (active_) {
    bound_sim_ = previous_sim_;
    bound_shard_ = previous_shard_;
    bound_domain_ = previous_domain_;
  }
}

Simulator::ShardBinding Simulator::bind_shard(std::size_t shard,
                                              std::uint32_t domain) const {
  if (shard >= shards_.size()) {
    std::fprintf(stderr, "Simulator::bind_shard: shard %zu out of range (%zu)\n",
                 shard, shards_.size());
    std::abort();
  }
  ShardBinding binding(bound_sim_, bound_shard_, bound_domain_);
  bound_sim_ = this;
  bound_shard_ = shard;
  bound_domain_ = domain;
  return binding;
}

std::size_t Simulator::run_until(TimeUs t_end, util::ThreadPool* pool) {
  if (shards_.size() == 1) return shards_[0]->run_until(t_end);
  // Per-slot tallies instead of an atomic sum: parallel_for hands each
  // index to exactly one worker, so the writes never alias. The slots
  // double as the per-shard barrier stats (events + wall busy time) the
  // phase reports surface; assign() reuses capacity after the first tick.
  last_advance_events_.assign(shards_.size(), 0);
  last_advance_busy_ns_.assign(shards_.size(), 0);
  auto advance = [&](std::size_t i) {
    const auto start = std::chrono::steady_clock::now();
    last_advance_events_[i] = shards_[i]->run_until(t_end);
    last_advance_busy_ns_[i] = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };
  if (pool != nullptr) {
    pool->parallel_for(shards_.size(), advance);
  } else {
    for (std::size_t i = 0; i < shards_.size(); ++i) advance(i);
  }
  std::size_t total = 0;
  for (std::size_t n : last_advance_events_) total += n;
  return total;
}

void Simulator::migrate_domain(std::uint32_t domain, std::size_t from,
                               std::size_t to) {
  if (from >= shards_.size() || to >= shards_.size()) {
    std::fprintf(stderr,
                 "Simulator::migrate_domain: shard %zu -> %zu out of range "
                 "(%zu)\n",
                 from, to, shards_.size());
    std::abort();
  }
  if (EventQueue::current() != nullptr) {
    std::fprintf(stderr,
                 "Simulator::migrate_domain: must run between advances, not "
                 "from inside an event\n");
    std::abort();
  }
  if (from == to) return;
  shards_[to]->absorb(shards_[from]->extract_domain(domain));
}

void Simulator::domain_executed(std::vector<std::uint64_t>& out,
                                std::size_t num_domains) const {
  out.assign(num_domains, 0);
  for (const auto& shard : shards_) {
    const auto& counts = shard->executed_by_domain();
    const std::size_t n = std::min(num_domains, counts.size());
    for (std::size_t d = 0; d < n; ++d) out[d] += counts[d];
  }
}

bool Simulator::step() {
  EventQueue* next = nullptr;
  for (auto& shard : shards_) {
    if (shard->next_event_time() == EventQueue::kNoEvent) continue;
    if (next == nullptr || shard->next_event_time() < next->next_event_time()) {
      next = shard.get();
    }
  }
  return next != nullptr && next->step();
}

std::size_t Simulator::pending_events() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->pending_events();
  return total;
}

std::size_t Simulator::executed_events() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->executed_events();
  return total;
}

}  // namespace capes::sim
