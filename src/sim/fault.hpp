#pragma once
// Deterministic fault injection (ROADMAP item 2(b)): OST crashes with
// timed restarts, straggler disks, and control-network partition windows,
// all driven by a FaultPlan parsed from a strict spec grammar.
//
// Determinism contract (the SimTransport house pattern): every fate is a
// pure splitmix64 hash of (seed, kind, node, tick) — never a draw from a
// shared RNG stream — so a seeded faulted run is bit-identical at any
// shard/thread count, under any shard plan, and through capture/replay.
// A fault *window* is pure too: node n is degraded at tick T iff some
// start tick s in (T - window, T] has the start fate, which is exactly
// the union of the per-start windows (overlapping starts extend).
//
// The FaultInjector turns those pure fates into state transitions: it
// runs once per sampling tick at the barrier (serially, on the control
// thread, under the owning domain's shard binding) and schedules the
// apply/restore calls as events at the current time into the domain's
// tagged event queue — so they execute first in the next advance, count
// against the domain, and migrate with it under the rate shard plan.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"

namespace capes::sim {

/// Parsed form of a fault spec. The CLI / config grammar:
///   off
///   faults[:ost_crash=P,restart_ticks=N,straggler=P,slow_factor=X,
///          straggler_ticks=N,partition=P,partition_ticks=N,seed=N]
/// All rates are per-tick start probabilities in [0, 1); a plan with
/// every rate zero is a no-op object (enabled() == false).
struct FaultPlan {
  /// Per-server per-tick probability that an OST crash starts.
  double ost_crash = 0.0;
  /// Ticks a crashed server stays down; the restart lands exactly this
  /// many ticks after the crash start.
  std::int64_t restart_ticks = 10;
  /// Per-disk per-tick probability that a straggle window starts.
  double straggler = 0.0;
  /// Service-time multiplier while a disk straggles (>= 1).
  double slow_factor = 8.0;
  /// Ticks a straggle window lasts.
  std::int64_t straggler_ticks = 20;
  /// Per-domain per-tick probability that a control-network partition
  /// window starts (the domain's agent/broadcast messages are silently
  /// dropped, surfacing as messages_dropped).
  double partition = 0.0;
  /// Ticks a partition window lasts.
  std::int64_t partition_ticks = 5;
  /// Seed for the per-fate hash. When not explicitly set, CapesSystem
  /// derives one from the experiment seed so a seeded run fixes its
  /// fault realization too.
  std::uint64_t seed = 0;
  bool seed_explicit = false;

  bool enabled() const {
    return ost_crash > 0.0 || straggler > 0.0 || partition > 0.0;
  }
};

/// Fault record kinds. Values are the capture wire encoding of the
/// kFault record payload — append only.
enum class FaultKind : std::uint8_t {
  kDegraded = 0,  ///< per-(domain, tick) marker: some fault was active
  kOstCrash = 1,
  kStraggler = 2,
  kPartition = 3,
};

/// The hash key for a (domain, local node) pair. Domain indices and node
/// counts both fit 32 bits by construction.
constexpr std::uint64_t fault_node_key(std::uint32_t domain,
                                       std::uint32_t node) {
  return (static_cast<std::uint64_t>(domain) << 32) | node;
}

// ---- pure fates -----------------------------------------------------------
// Order- and thread-count-independent by construction; callable from
// anywhere (the partition predicate is evaluated inside concurrent
// transport plan() calls).

/// Does an OST crash start on `node_key` at `tick`?
bool crash_starts(const FaultPlan& plan, std::uint64_t node_key,
                  std::int64_t tick);
/// Is `node_key` down at `tick` (some crash start within restart_ticks)?
bool ost_down(const FaultPlan& plan, std::uint64_t node_key,
              std::int64_t tick);

/// Does a straggle window start on `node_key` at `tick`?
bool straggle_starts(const FaultPlan& plan, std::uint64_t node_key,
                     std::int64_t tick);
/// Is `node_key`'s disk straggling at `tick`?
bool disk_straggling(const FaultPlan& plan, std::uint64_t node_key,
                     std::int64_t tick);

/// Does a partition window start for `domain` at `tick`?
bool partition_starts(const FaultPlan& plan, std::uint32_t domain,
                      std::int64_t tick);
/// Is `domain`'s control network partitioned at `tick`?
bool domain_partitioned(const FaultPlan& plan, std::uint32_t domain,
                        std::int64_t tick);

/// Parse "off" / "faults[:k=v,...]" into *out. Returns false (with a
/// human-readable *error echoing the offending key or token, if non-null)
/// on an unknown scheme, an unknown option key, a malformed value, or an
/// out-of-range value (rates outside [0, 1), window tick counts < 1,
/// slow_factor < 1).
bool parse_fault_spec(std::string_view spec, FaultPlan* out,
                      std::string* error = nullptr);

/// Canonical spec string for `plan` ("off" when no rate is set, else
/// "faults:ost_crash=..." listing every knob with seed only when
/// explicitly set). Round-trips through parse_fault_spec.
std::string fault_spec_string(const FaultPlan& plan);

/// What a target system exposes to the injector: a dense index of
/// fault-capable nodes (the lustre adapter's OST servers) plus the
/// down/slow actuators. Implemented by lustre::Cluster; adapters without
/// fault support return null from fault_target() and only partition
/// faults apply.
class FaultTarget {
 public:
  virtual ~FaultTarget() = default;

  /// Fault-capable nodes, indexed 0..n-1 (servers, for the lustre
  /// adapter — each owns the disk the straggler fault slows).
  virtual std::size_t num_fault_nodes() const = 0;

  /// Take `node` down (stop serving, reject queued I/O) or bring it back.
  virtual void apply_node_down(std::size_t node, bool down) = 0;

  /// Set `node`'s disk service-time multiplier (1.0 restores normal).
  virtual void apply_node_slow(std::size_t node, double factor) = 0;
};

/// One fault observation from the latest on_tick (the capture record
/// unit): a start of one of the three kinds, or the per-tick kDegraded
/// marker. `node_key` is fault_node_key(domain, node) for node faults
/// and the domain index for partition/degraded records.
struct FaultEvent {
  FaultKind kind = FaultKind::kDegraded;
  std::uint64_t node_key = 0;
};

/// Per-injector (per-domain) counters; RunResult aggregates the deltas
/// across domains over a phase.
struct FaultCounters {
  std::uint64_t faults_injected = 0;  ///< starts of any kind
  std::uint64_t ost_crashes = 0;
  std::uint64_t stragglers = 0;
  std::uint64_t partitions = 0;
  std::uint64_t ticks_degraded = 0;  ///< ticks with any fault active
};

/// Drives one domain's fault schedule. on_tick(t) must be called once
/// per sampling tick, for consecutive ticks, serially on the control
/// thread, under the domain's shard binding (CapesSystem binds before
/// calling) — transitions are scheduled as events at the current
/// simulator time into the bound (domain-tagged) queue.
class FaultInjector {
 public:
  /// `target` may be null (no fault-capable nodes; only the partition
  /// fate and counters apply). The plan and target must outlive the
  /// injector and every event it schedules.
  FaultInjector(Simulator& sim, const FaultPlan& plan, std::uint32_t domain,
                FaultTarget* target);

  /// Advance the fault schedule to `tick`: evaluate start fates, schedule
  /// down/restart and slow/restore transitions, update counters, and
  /// refill last_events(). A restart lands on exactly the on_tick call
  /// restart_ticks after its crash start (later overlapping starts
  /// extend the window, as in the pure ost_down predicate).
  void on_tick(std::int64_t tick);

  /// Is this domain's control network partitioned at `tick`? Pure
  /// (delegates to domain_partitioned), so the transport-side predicate
  /// and the injector always agree.
  bool partitioned(std::int64_t tick) const;

  const FaultCounters& counters() const { return counters_; }

  /// The fault starts (plus the kDegraded marker, last) observed by the
  /// latest on_tick, in deterministic (node-index) order. Valid until
  /// the next on_tick.
  const std::vector<FaultEvent>& last_events() const { return last_events_; }

  std::uint32_t domain() const { return domain_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  Simulator& sim_;
  FaultPlan plan_;
  std::uint32_t domain_;
  FaultTarget* target_;
  /// Per-node window state applied to the target (first on_tick sizes
  /// them): the tick each window ends, and whether the actuator is
  /// currently engaged.
  std::vector<std::int64_t> down_until_;
  std::vector<std::int64_t> slow_until_;
  std::vector<char> down_applied_;
  std::vector<char> slow_applied_;
  FaultCounters counters_;
  std::vector<FaultEvent> last_events_;
};

}  // namespace capes::sim
