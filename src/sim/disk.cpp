#include "sim/disk.hpp"

#include <algorithm>
#include <cmath>

namespace capes::sim {

Disk::Disk(Simulator& sim, DiskOptions opts, util::Rng rng)
    : sim_(sim), opts_(opts), rng_(rng) {}

void Disk::enqueue(DiskRequest req) {
  auto& q = req.is_write ? write_queue_ : read_queue_;
  q.push_back(Pending{std::move(req), sim_.now()});
  maybe_dispatch();
}

TimeUs Disk::service_time(const DiskRequest& req) {
  const bool sequential =
      req.object_id == last_object_ && req.offset >= last_end_offset_ &&
      req.offset - last_end_offset_ <= opts_.sequential_gap;

  double positioning = 0.0;
  if (!sequential) {
    if (req.is_write) {
      // Deep write queues let the drive/IO-scheduler merge and reorder
      // aggressively; effective positioning cost drops accordingly.
      const double depth = static_cast<double>(queued_writes() + 1);
      const double factor = 1.0 + opts_.write_queue_gain *
                                      (1.0 - std::exp(-depth / opts_.write_queue_scale));
      positioning = static_cast<double>(opts_.write_positioning_us) / factor;
    } else {
      const double depth = static_cast<double>(queued_reads() + 1);
      const double factor = 1.0 + opts_.read_queue_gain *
                                      (1.0 - std::exp(-depth / opts_.read_queue_scale));
      positioning = static_cast<double>(opts_.read_positioning_us) / factor;
    }
  }

  const double bw = req.is_write ? opts_.seq_write_mbs : opts_.seq_read_mbs;
  const double transfer = static_cast<double>(req.bytes) / (bw * 1e6) * 1e6;

  double total = positioning + transfer;
  if (opts_.service_noise > 0.0) {
    total *= 1.0 + rng_.uniform(-opts_.service_noise, opts_.service_noise);
  }
  // Straggler fault: the multiplier sits outside the noise draw, so the
  // rng_ stream advances identically whether or not a fault plan is
  // active (faults off stays bit-identical).
  if (slow_factor_ != 1.0) total *= slow_factor_;
  return std::max<TimeUs>(1, static_cast<TimeUs>(total));
}

std::size_t Disk::drop_pending() {
  const std::size_t dropped = read_queue_.size() + write_queue_.size();
  read_queue_.clear();
  write_queue_.clear();
  consecutive_reads_ = 0;
  return dropped;
}

void Disk::maybe_dispatch() {
  if (busy_ || (read_queue_.empty() && write_queue_.empty())) return;
  busy_ = true;
  // Read-preferring dispatch with a starvation bound.
  const bool take_read =
      !read_queue_.empty() &&
      (write_queue_.empty() || consecutive_reads_ < opts_.max_consecutive_reads);
  consecutive_reads_ = take_read ? consecutive_reads_ + 1 : 0;
  auto& q = take_read ? read_queue_ : write_queue_;
  Pending p = std::move(q.front());
  q.pop_front();

  const TimeUs service = service_time(p.req);
  last_object_ = p.req.object_id;
  last_end_offset_ = p.req.offset + p.req.bytes;

  sim_.schedule_in(service, [this, p = std::move(p), service]() mutable {
    busy_ = false;
    busy_us_ += service;
    ++completed_ops_;
    if (p.req.is_write) {
      bytes_written_ += p.req.bytes;
    } else {
      bytes_read_ += p.req.bytes;
    }
    const TimeUs pt = sim_.now() - p.enqueue_time;
    last_pt_ = pt;
    if (min_pt_ == 0 || pt < min_pt_) min_pt_ = pt;
    if (p.req.done) p.req.done(pt);
    maybe_dispatch();
  });
}

}  // namespace capes::sim
