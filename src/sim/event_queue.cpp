#include "sim/event_queue.hpp"

#include <memory>

namespace capes::sim {

thread_local EventQueue* EventQueue::current_ = nullptr;

void EventQueue::schedule_at(TimeUs t, std::function<void()> fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(TimeUs delay, std::function<void()> fn) {
  schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

std::size_t EventQueue::run_until(TimeUs t_end) {
  const ScopedCurrent scope(this);
  std::size_t ran = 0;
  while (!queue_.empty() && queue_.top().time <= t_end) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++ran;
  }
  executed_ += ran;
  if (now_ < t_end) now_ = t_end;
  return ran;
}

bool EventQueue::step() {
  if (queue_.empty()) return false;
  const ScopedCurrent scope(this);
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ev.fn();
  ++executed_;
  return true;
}

void EventQueue::schedule_periodic(
    TimeUs t, TimeUs period, std::int64_t index,
    std::shared_ptr<std::function<void(std::int64_t)>> fn) {
  schedule_at(t, [this, t, period, index, fn] {
    (*fn)(index);
    schedule_periodic(t + period, period, index + 1, fn);
  });
}

void EventQueue::every(TimeUs start, TimeUs period,
                       std::function<void(std::int64_t)> fn) {
  auto shared = std::make_shared<std::function<void(std::int64_t)>>(std::move(fn));
  schedule_periodic(start, period, 0, shared);
}

}  // namespace capes::sim
