#include "sim/event_queue.hpp"

#include <memory>

namespace capes::sim {

thread_local EventQueue* EventQueue::current_ = nullptr;

void EventQueue::schedule_at(TimeUs t, std::function<void()> fn) {
  schedule_at_tagged(t, std::move(fn), resolve_tag(0));
}

void EventQueue::schedule_in(TimeUs delay, std::function<void()> fn) {
  schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

void EventQueue::schedule_at_tagged(TimeUs t, std::function<void()> fn,
                                    std::uint32_t domain) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, domain, std::move(fn)});
}

void EventQueue::schedule_in_tagged(TimeUs delay, std::function<void()> fn,
                                    std::uint32_t domain) {
  schedule_at_tagged(now_ + (delay < 0 ? 0 : delay), std::move(fn), domain);
}

std::size_t EventQueue::run_until(TimeUs t_end) {
  const ScopedCurrent scope(this);
  std::size_t ran = 0;
  while (!queue_.empty() && queue_.top().time <= t_end) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    executing_domain_ = ev.domain;
    count_executed(ev.domain);
    ev.fn();
    ++ran;
  }
  executed_ += ran;
  if (now_ < t_end) now_ = t_end;
  return ran;
}

bool EventQueue::step() {
  if (queue_.empty()) return false;
  const ScopedCurrent scope(this);
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  executing_domain_ = ev.domain;
  count_executed(ev.domain);
  ev.fn();
  ++executed_;
  return true;
}

std::vector<EventQueue::ExtractedEvent> EventQueue::extract_domain(
    std::uint32_t domain) {
  std::vector<ExtractedEvent> out;
  std::vector<Event> kept;
  kept.reserve(queue_.size());
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (ev.domain == domain) {
      out.push_back(ExtractedEvent{ev.time, ev.domain, std::move(ev.fn)});
    } else {
      kept.push_back(std::move(ev));
    }
  }
  // Popping gave us (time, seq) order; fresh sequence numbers in that
  // order preserve the survivors' relative firing order exactly.
  for (Event& ev : kept) {
    queue_.push(Event{ev.time, next_seq_++, ev.domain, std::move(ev.fn)});
  }
  return out;
}

void EventQueue::absorb(std::vector<ExtractedEvent> events) {
  for (ExtractedEvent& ev : events) {
    schedule_at_tagged(ev.time, std::move(ev.fn), ev.domain);
  }
}

void EventQueue::schedule_periodic(
    TimeUs t, TimeUs period, std::int64_t index,
    std::shared_ptr<std::function<void(std::int64_t)>> fn,
    std::uint32_t domain) {
  schedule_at_tagged(
      t,
      [this, t, period, index, fn, domain] {
        (*fn)(index);
        schedule_periodic(t + period, period, index + 1, fn, domain);
      },
      domain);
}

void EventQueue::every(TimeUs start, TimeUs period,
                       std::function<void(std::int64_t)> fn,
                       std::uint32_t domain) {
  auto shared = std::make_shared<std::function<void(std::int64_t)>>(std::move(fn));
  schedule_periodic(start, period, 0, shared, resolve_tag(domain));
}

}  // namespace capes::sim
