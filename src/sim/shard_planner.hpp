#pragma once
// Rate-aware placement of control domains onto simulator shards.
//
// The sharded event loop (sim/simulator.hpp) advances one EventQueue per
// shard to a time-synced barrier every sampling tick, so the loop runs at
// the pace of its busiest shard. The planner decides which domain lives
// on which shard:
//
//   - kStatic: domain d on shard d % num_shards, fixed for the run (the
//     historical layout).
//   - kRate: at every phase boundary, greedily bin-pack domains onto
//     shards by last-phase observed event counts (LPT — sort by weight
//     descending, assign each to the least-loaded shard), so one hot
//     domain no longer serializes the barrier while other shards idle.
//
// Inputs are deterministic per-domain executed-event counts (never wall
// clock) and every tie breaks on the lower domain / shard index, so a
// plan is a pure function of the simulated history: sharded == serial
// and static == rate stay bit-identical — placement only changes which
// thread runs a domain's events, never their order within the domain.

#include <cstdint>
#include <string>
#include <vector>

namespace capes::sim {

enum class ShardPlanKind {
  kStatic,  ///< round-robin d % num_shards, fixed for the run
  kRate,    ///< LPT bin-packing by last-phase event counts, per phase
};

/// Canonical spec string for a plan kind ("static" / "rate").
const char* shard_plan_name(ShardPlanKind kind);

/// Parse a plan spec ("static" or "rate"). Returns false and fills
/// `error` on anything else.
bool parse_shard_plan_spec(const std::string& spec, ShardPlanKind* out,
                           std::string* error);

/// One placement decision: shard per domain plus the per-shard load the
/// plan was packed from (domain count for a static plan, summed event
/// weights for a rate plan).
struct ShardPlan {
  std::vector<std::size_t> shard_of_domain;
  std::vector<std::uint64_t> shard_load;

  /// Max/mean of shard_load: 1.0 is perfectly balanced. Returns 1.0 for
  /// an empty or zero-load plan.
  double max_over_mean() const;
};

class ShardPlanner {
 public:
  ShardPlanner(ShardPlanKind kind, std::size_t num_domains,
               std::size_t num_shards);

  ShardPlanKind kind() const { return kind_; }
  std::size_t num_domains() const { return num_domains_; }
  std::size_t num_shards() const { return num_shards_; }

  /// The round-robin layout (domain d on shard d % num_shards). Also the
  /// deterministic fallback whenever there is no rate signal yet.
  ShardPlan static_plan() const;

  /// Pack domains onto shards from per-domain executed-event counts
  /// (`domain_events[d]` = events domain d ran since the last plan). A
  /// kStatic planner — or an all-zero count vector — returns
  /// static_plan(). Ties break on the lower domain index (sort) and the
  /// lower shard index (target choice), so equal weights reproduce the
  /// static round-robin exactly.
  ShardPlan plan(const std::vector<std::uint64_t>& domain_events) const;

 private:
  ShardPlanKind kind_;
  std::size_t num_domains_;
  std::size_t num_shards_;
};

}  // namespace capes::sim
