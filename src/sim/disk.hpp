#pragma once
// Rotational disk model (the evaluation testbed used 7200 RPM HGST drives:
// ~113 MB/s sequential read, ~106 MB/s sequential write). The model
// reproduces the queue-depth behaviour that makes congestion-window tuning
// matter (paper §4.3):
//
//  * Random requests pay a positioning (seek + rotation) cost.
//  * Outstanding WRITES merge/coalesce in the queue: effective positioning
//    cost shrinks substantially as the write queue deepens (the paper's
//    explanation for why tuning helps write-heavy workloads most).
//  * Outstanding READS benefit only mildly from queue depth (elevator
//    reordering); they remain seek-bound, so read throughput is largely
//    insensitive to the congestion window — as observed in Figure 2.
//  * Sequential streams (offset continuing the previous request on the
//    same object) pay no positioning cost.

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace capes::sim {

struct DiskOptions {
  double seq_read_mbs = 113.0;
  double seq_write_mbs = 106.0;
  TimeUs read_positioning_us = 12000;   ///< avg seek + rotational latency
  TimeUs write_positioning_us = 12000;
  /// Queue-depth efficiency: factor = 1 + gain * (1 - exp(-queue/scale)).
  double read_queue_gain = 0.35;
  double read_queue_scale = 16.0;
  double write_queue_gain = 2.0;
  double write_queue_scale = 120.0;
  /// Multiplicative service-time noise amplitude (uniform +-).
  double service_noise = 0.08;
  /// Offset gap (bytes) still considered "sequential" on the same object.
  std::uint64_t sequential_gap = 1 << 18;
  /// Reads are dispatched ahead of queued writes (deadline/CFQ-style read
  /// preference), but at most this many in a row so writes cannot starve.
  std::size_t max_consecutive_reads = 8;
};

/// One I/O request handed to the disk.
struct DiskRequest {
  bool is_write = false;
  std::uint64_t object_id = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  /// Invoked at completion with the total process time (queue wait +
  /// service) in microseconds.
  std::function<void(TimeUs process_time)> done;
};

/// Single-spindle disk with read-preferring dispatch and *service times*
/// that embed elevator/merging efficiency as a function of queue depth.
class Disk {
 public:
  Disk(Simulator& sim, DiskOptions opts, util::Rng rng);

  void enqueue(DiskRequest req);

  std::size_t queue_depth() const {
    return read_queue_.size() + write_queue_.size() + (busy_ ? 1 : 0);
  }
  std::size_t queued_writes() const { return write_queue_.size(); }
  std::size_t queued_reads() const { return read_queue_.size(); }

  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t completed_ops() const { return completed_ops_; }
  TimeUs busy_time() const { return busy_us_; }

  /// Shortest process time observed so far (0 before any completion); the
  /// denominator of the PT-ratio performance indicator (§4.1).
  TimeUs min_process_time() const { return min_pt_; }
  /// Most recent process time.
  TimeUs last_process_time() const { return last_pt_; }

  /// Fault hook (straggler disks): multiply every subsequent service time
  /// by `factor` (>= 1; 1.0 restores normal service). The in-flight
  /// request keeps the service time it was dispatched with.
  void set_slow_factor(double factor) { slow_factor_ = factor; }
  double slow_factor() const { return slow_factor_; }

  /// Fault hook (OST crash): discard every queued request without
  /// completing it (the owner rejects the I/O; clients recover via their
  /// own retransmit machinery). The in-flight request, if any, still
  /// fires its completion. Returns the number of requests dropped.
  std::size_t drop_pending();

  const DiskOptions& options() const { return opts_; }

 private:
  struct Pending {
    DiskRequest req;
    TimeUs enqueue_time;
  };

  void maybe_dispatch();
  TimeUs service_time(const DiskRequest& req);

  Simulator& sim_;
  DiskOptions opts_;
  util::Rng rng_;
  std::deque<Pending> read_queue_;
  std::deque<Pending> write_queue_;
  std::size_t consecutive_reads_ = 0;
  bool busy_ = false;
  double slow_factor_ = 1.0;

  std::uint64_t last_object_ = ~0ULL;
  std::uint64_t last_end_offset_ = 0;

  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t completed_ops_ = 0;
  TimeUs busy_us_ = 0;
  TimeUs min_pt_ = 0;
  TimeUs last_pt_ = 0;
};

}  // namespace capes::sim
