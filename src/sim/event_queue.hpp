#pragma once
// One discrete-event queue: the unit the sharded simulator schedules on.
// Time is an int64 count of microseconds since simulation start. Events
// fire in (time, insertion order); handlers may schedule further events.
//
// Extracted from the original monolithic Simulator so that independent
// control domains can each own a queue and advance concurrently between
// sampling ticks (see sim/simulator.hpp for the shard host and the
// barrier protocol). A queue is single-threaded by construction: exactly
// one thread runs run_until()/step() at a time, and every event executed
// by a queue schedules follow-ups into that same queue via the
// thread-local current() pointer the Simulator routes through.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace capes::sim {

using TimeUs = std::int64_t;

constexpr TimeUs kUsPerMs = 1000;
constexpr TimeUs kUsPerSec = 1000 * 1000;

/// Convert seconds (double) to simulation microseconds.
inline TimeUs seconds(double s) {
  return static_cast<TimeUs>(s * static_cast<double>(kUsPerSec));
}

class EventQueue {
 public:
  /// next_event_time() when the queue is empty.
  static constexpr TimeUs kNoEvent = INT64_MAX;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  TimeUs now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now, else it fires "now").
  /// The event inherits the executing event's domain tag when called from
  /// inside an event on this queue, and tag 0 otherwise.
  void schedule_at(TimeUs t, std::function<void()> fn);

  /// Schedule `fn` after `delay` microseconds.
  void schedule_in(TimeUs delay, std::function<void()> fn);

  /// schedule_at with an explicit domain tag. Tags group events by the
  /// control domain that owns them so the shard planner can count per-
  /// domain rates and migrate a domain's pending events between queues;
  /// they have no effect on execution order.
  void schedule_at_tagged(TimeUs t, std::function<void()> fn,
                          std::uint32_t domain);

  /// schedule_in with an explicit domain tag.
  void schedule_in_tagged(TimeUs delay, std::function<void()> fn,
                          std::uint32_t domain);

  /// Run until the queue is empty or simulated time would pass `t_end`.
  /// Events exactly at t_end are executed, and the clock lands on t_end
  /// even when the queue drains early (the time-synced barrier every
  /// shard meets at a sampling tick). Returns the number of events run.
  std::size_t run_until(TimeUs t_end);

  /// Advance the clock by `duration` from now.
  std::size_t run_for(TimeUs duration) { return run_until(now_ + duration); }

  /// Run a single event; returns false when the queue is empty.
  bool step();

  /// Timestamp of the next pending event, kNoEvent when empty.
  TimeUs next_event_time() const {
    return queue_.empty() ? kNoEvent : queue_.top().time;
  }

  std::size_t pending_events() const { return queue_.size(); }
  std::size_t executed_events() const { return executed_; }

  /// Events executed so far bucketed by domain tag (index == tag; tags
  /// past the end have executed nothing). Plain counters — a queue is
  /// single-threaded by construction, so no atomics on the hot path.
  const std::vector<std::uint64_t>& executed_by_domain() const {
    return executed_by_domain_;
  }

  /// Register a callback invoked every `period` starting at `start`
  /// (inclusive) until the simulation stops being run. Useful for sampling
  /// ticks. The callback receives the tick index (0-based). The periodic
  /// chain carries `domain` as its tag (the executing event's tag wins
  /// when registered from inside an event on this queue).
  void every(TimeUs start, TimeUs period, std::function<void(std::int64_t)> fn,
             std::uint32_t domain = 0);

  /// One pending event lifted out of a queue for migration: absolute
  /// firing time, domain tag, and the handler. Relative order within the
  /// vector is the order the events would have fired in.
  struct ExtractedEvent {
    TimeUs time;
    std::uint32_t domain;
    std::function<void()> fn;
  };

  /// Remove every pending event tagged `domain`, in firing order, so the
  /// shard planner can move the domain to another queue. The remaining
  /// events are renumbered but keep their relative order. Must not be
  /// called while an event is executing.
  std::vector<ExtractedEvent> extract_domain(std::uint32_t domain);

  /// Schedule previously extracted events into this queue, preserving
  /// their relative order (times earlier than now() clamp to now()).
  void absorb(std::vector<ExtractedEvent> events);

  /// The queue currently executing an event on this thread (null outside
  /// run_until()/step()). Simulator::schedule_* routes through this so an
  /// event's follow-ups always land in the shard that ran it, regardless
  /// of which worker thread is advancing the shard.
  static EventQueue* current() { return current_; }

  /// Owner tag (the hosting Simulator). Routing checks it so that a call
  /// into simulator B from an event executing in simulator A's shard
  /// never lands in A's queue. Null for standalone queues.
  void set_owner(const void* owner) { owner_ = owner; }
  const void* owner() const { return owner_; }

 private:
  struct Event {
    TimeUs time;
    std::uint64_t seq;
    std::uint32_t domain;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Marks this queue as the thread's executing queue for a scope.
  class ScopedCurrent {
   public:
    explicit ScopedCurrent(EventQueue* q) : previous_(current_) {
      current_ = q;
    }
    ~ScopedCurrent() { current_ = previous_; }
    ScopedCurrent(const ScopedCurrent&) = delete;
    ScopedCurrent& operator=(const ScopedCurrent&) = delete;

   private:
    EventQueue* previous_;
  };

  void schedule_periodic(TimeUs t, TimeUs period, std::int64_t index,
                         std::shared_ptr<std::function<void(std::int64_t)>> fn,
                         std::uint32_t domain);

  /// Tag for an event scheduled without an explicit tag: the executing
  /// event's tag when this queue is running an event on this thread,
  /// else `fallback`.
  std::uint32_t resolve_tag(std::uint32_t fallback) const {
    return current_ == this ? executing_domain_ : fallback;
  }

  void count_executed(std::uint32_t domain) {
    if (domain >= executed_by_domain_.size()) {
      executed_by_domain_.resize(domain + 1, 0);
    }
    ++executed_by_domain_[domain];
  }

  static thread_local EventQueue* current_;

  const void* owner_ = nullptr;
  TimeUs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::uint32_t executing_domain_ = 0;
  std::vector<std::uint64_t> executed_by_domain_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace capes::sim
