#include "sim/network.hpp"

#include <algorithm>
#include <cassert>

namespace capes::sim {

Network::Network(Simulator& sim, std::size_t num_nodes, NetworkOptions opts,
                 util::Rng rng)
    : sim_(sim),
      opts_(opts),
      rng_(rng),
      node_up_busy_until_(num_nodes, 0),
      node_down_busy_until_(num_nodes, 0) {}

TimeUs Network::transfer_time(double bandwidth_mbs, std::uint64_t bytes) const {
  const double us =
      static_cast<double>(bytes) / (bandwidth_mbs * 1e6) * 1e6;
  return static_cast<TimeUs>(us) + 1;
}

void Network::send(NodeId src, NodeId dst, std::uint64_t bytes,
                   std::function<void()> on_delivered) {
  assert(src < num_nodes() && dst < num_nodes());
  total_bytes_ += bytes;
  const TimeUs now = sim_.now();

  // Serialize on the sender uplink.
  const TimeUs up_start = std::max(now, node_up_busy_until_[src]);
  const TimeUs up_done = up_start + transfer_time(opts_.link_bandwidth_mbs, bytes);
  node_up_busy_until_[src] = up_done;

  // Then on the shared fabric.
  const TimeUs fab_start = std::max(up_done, fabric_busy_until_);
  const TimeUs fab_done =
      fab_start + transfer_time(opts_.fabric_bandwidth_mbs, bytes);
  fabric_busy_until_ = fab_done;

  // Then on the receiver downlink.
  const TimeUs down_start = std::max(fab_done, node_down_busy_until_[dst]);
  const TimeUs down_done =
      down_start + transfer_time(opts_.link_bandwidth_mbs, bytes);
  node_down_busy_until_[dst] = down_done;

  TimeUs latency = opts_.base_latency;
  if (opts_.jitter_fraction > 0.0) {
    const double j = rng_.uniform(-opts_.jitter_fraction, opts_.jitter_fraction);
    latency += static_cast<TimeUs>(static_cast<double>(latency) * j);
  }
  sim_.schedule_at(down_done + latency, std::move(on_delivered));
}

TimeUs Network::estimate_latency(NodeId src, NodeId dst) const {
  (void)src;
  const TimeUs now = sim_.now();
  const TimeUs backlog = std::max<TimeUs>(0, node_down_busy_until_[dst] - now);
  return opts_.base_latency + backlog;
}

}  // namespace capes::sim
