#include "sim/fault.hpp"

#include <algorithm>
#include <cstdio>

#include "util/parse.hpp"

namespace capes::sim {

namespace {

/// splitmix64 finalizer — the per-fate hash (the SimTransport pattern).
/// Statistically strong enough for a rate model and, unlike a shared RNG
/// stream, order-independent: the fate of (kind, node, tick) never
/// depends on which other fates were evaluated before it.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Map a 64-bit hash to a uniform double in [0, 1).
double to_unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Independent per-(kind, node, tick) draw: chain the key through the
/// mixer once per field (counter mode), tagged so distinct kinds see
/// independent realizations even on one node.
bool fate_starts(const FaultPlan& plan, double rate, std::uint64_t kind_tag,
                 std::uint64_t node_key, std::int64_t tick) {
  if (rate <= 0.0 || tick < 0) return false;
  std::uint64_t key = plan.seed;
  key = mix64(key ^ mix64(kind_tag));
  key = mix64(key ^ mix64(node_key ^ 0x6e6f6465ULL));  // "node"
  key = mix64(key ^ static_cast<std::uint64_t>(tick));
  return to_unit(mix64(key)) < rate;
}

/// Window membership: active at `tick` iff some start within the last
/// `window` ticks — exactly the union of per-start windows, so the pure
/// predicate and the injector's until-extension state always agree.
template <typename Starts>
bool active_in_window(std::int64_t tick, std::int64_t window, Starts starts) {
  const std::int64_t first = std::max<std::int64_t>(0, tick - window + 1);
  for (std::int64_t s = tick; s >= first; --s) {
    if (starts(s)) return true;
  }
  return false;
}

constexpr std::uint64_t kCrashTag = 0x6372617368ULL;      // "crash"
constexpr std::uint64_t kStragglerTag = 0x736c6f77ULL;    // "slow"
constexpr std::uint64_t kPartitionTag = 0x70617274ULL;    // "part"

}  // namespace

bool crash_starts(const FaultPlan& plan, std::uint64_t node_key,
                  std::int64_t tick) {
  return fate_starts(plan, plan.ost_crash, kCrashTag, node_key, tick);
}

bool ost_down(const FaultPlan& plan, std::uint64_t node_key,
              std::int64_t tick) {
  return active_in_window(tick, plan.restart_ticks, [&](std::int64_t s) {
    return crash_starts(plan, node_key, s);
  });
}

bool straggle_starts(const FaultPlan& plan, std::uint64_t node_key,
                     std::int64_t tick) {
  return fate_starts(plan, plan.straggler, kStragglerTag, node_key, tick);
}

bool disk_straggling(const FaultPlan& plan, std::uint64_t node_key,
                     std::int64_t tick) {
  return active_in_window(tick, plan.straggler_ticks, [&](std::int64_t s) {
    return straggle_starts(plan, node_key, s);
  });
}

bool partition_starts(const FaultPlan& plan, std::uint32_t domain,
                      std::int64_t tick) {
  return fate_starts(plan, plan.partition, kPartitionTag, domain, tick);
}

bool domain_partitioned(const FaultPlan& plan, std::uint32_t domain,
                        std::int64_t tick) {
  return active_in_window(tick, plan.partition_ticks, [&](std::int64_t s) {
    return partition_starts(plan, domain, s);
  });
}

namespace {

bool spec_fail(std::string* error, std::string message) {
  if (error) *error = std::move(message);
  return false;
}

}  // namespace

bool parse_fault_spec(std::string_view spec, FaultPlan* out,
                      std::string* error) {
  FaultPlan parsed;
  std::string_view scheme = spec;
  std::string_view opts_part;
  const std::size_t colon = spec.find(':');
  if (colon != std::string_view::npos) {
    scheme = spec.substr(0, colon);
    opts_part = spec.substr(colon + 1);
  }

  if (scheme == "off") {
    if (colon != std::string_view::npos) {
      return spec_fail(error, "fault spec 'off' takes no options");
    }
    *out = parsed;
    return true;
  }
  if (scheme != "faults") {
    return spec_fail(error, "unknown fault spec '" + std::string(scheme) +
                                "' (expected off or faults)");
  }

  auto parse_rate = [&](std::string_view key, std::string_view value,
                        double* slot) {
    if (!util::parse_double(value, slot) || *slot < 0.0 || *slot >= 1.0) {
      return spec_fail(error, std::string(key) +
                                  " must be a probability in [0, 1), got '" +
                                  std::string(value) + "'");
    }
    return true;
  };
  auto parse_window = [&](std::string_view key, std::string_view value,
                          std::int64_t* slot) {
    if (!util::parse_i64(value, slot) || *slot < 1) {
      return spec_fail(error, std::string(key) +
                                  " must be an integer >= 1, got '" +
                                  std::string(value) + "'");
    }
    return true;
  };

  while (!opts_part.empty()) {
    const std::size_t comma = opts_part.find(',');
    std::string_view item = opts_part.substr(0, comma);
    opts_part = comma == std::string_view::npos
                    ? std::string_view{}
                    : opts_part.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return spec_fail(error, "malformed fault option '" + std::string(item) +
                                  "' (expected key=value)");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "ost_crash") {
      if (!parse_rate(key, value, &parsed.ost_crash)) return false;
    } else if (key == "restart_ticks") {
      if (!parse_window(key, value, &parsed.restart_ticks)) return false;
    } else if (key == "straggler") {
      if (!parse_rate(key, value, &parsed.straggler)) return false;
    } else if (key == "slow_factor") {
      if (!util::parse_double(value, &parsed.slow_factor) ||
          parsed.slow_factor < 1.0) {
        return spec_fail(error, "slow_factor must be a number >= 1, got '" +
                                    std::string(value) + "'");
      }
    } else if (key == "straggler_ticks") {
      if (!parse_window(key, value, &parsed.straggler_ticks)) return false;
    } else if (key == "partition") {
      if (!parse_rate(key, value, &parsed.partition)) return false;
    } else if (key == "partition_ticks") {
      if (!parse_window(key, value, &parsed.partition_ticks)) return false;
    } else if (key == "seed") {
      if (!util::parse_u64(value, &parsed.seed)) {
        return spec_fail(error, "seed must be an unsigned integer, got '" +
                                    std::string(value) + "'");
      }
      parsed.seed_explicit = true;
    } else {
      return spec_fail(error, "unknown fault kind or option '" +
                                  std::string(key) +
                                  "' (expected ost_crash, restart_ticks, "
                                  "straggler, slow_factor, straggler_ticks, "
                                  "partition, partition_ticks, or seed)");
    }
  }
  *out = parsed;
  return true;
}

std::string fault_spec_string(const FaultPlan& plan) {
  if (!plan.enabled() && !plan.seed_explicit) return "off";
  // %.17g is the shortest printf precision that reproduces any double
  // exactly, keeping the documented round-trip value-lossless.
  char buffer[224];
  std::snprintf(buffer, sizeof(buffer),
                "faults:ost_crash=%.17g,restart_ticks=%lld,straggler=%.17g,"
                "slow_factor=%.17g,straggler_ticks=%lld,partition=%.17g,"
                "partition_ticks=%lld",
                plan.ost_crash, static_cast<long long>(plan.restart_ticks),
                plan.straggler, plan.slow_factor,
                static_cast<long long>(plan.straggler_ticks), plan.partition,
                static_cast<long long>(plan.partition_ticks));
  std::string spec = buffer;
  if (plan.seed_explicit) spec += ",seed=" + std::to_string(plan.seed);
  return spec;
}

FaultInjector::FaultInjector(Simulator& sim, const FaultPlan& plan,
                             std::uint32_t domain, FaultTarget* target)
    : sim_(sim), plan_(plan), domain_(domain), target_(target) {
  const std::size_t nodes = target_ != nullptr ? target_->num_fault_nodes() : 0;
  down_until_.assign(nodes, 0);
  slow_until_.assign(nodes, 0);
  down_applied_.assign(nodes, 0);
  slow_applied_.assign(nodes, 0);
  last_events_.reserve(nodes + 2);
}

bool FaultInjector::partitioned(std::int64_t tick) const {
  return domain_partitioned(plan_, domain_, tick);
}

void FaultInjector::on_tick(std::int64_t tick) {
  last_events_.clear();
  bool degraded = false;
  const TimeUs now = sim_.now();
  for (std::size_t n = 0; n < down_until_.size(); ++n) {
    const std::uint64_t key =
        fault_node_key(domain_, static_cast<std::uint32_t>(n));
    if (plan_.ost_crash > 0.0) {
      if (crash_starts(plan_, key, tick)) {
        // Overlapping starts extend the window (union semantics, exactly
        // the pure ost_down predicate).
        down_until_[n] = tick + plan_.restart_ticks;
        ++counters_.faults_injected;
        ++counters_.ost_crashes;
        last_events_.push_back({FaultKind::kOstCrash, key});
      }
      const bool down_now = tick < down_until_[n];
      if (down_now != (down_applied_[n] != 0)) {
        down_applied_[n] = down_now ? 1 : 0;
        FaultTarget* target = target_;
        sim_.schedule_at(now,
                         [target, n, down_now] { target->apply_node_down(n, down_now); });
      }
      degraded = degraded || down_now;
    }
    if (plan_.straggler > 0.0) {
      if (straggle_starts(plan_, key, tick)) {
        slow_until_[n] = tick + plan_.straggler_ticks;
        ++counters_.faults_injected;
        ++counters_.stragglers;
        last_events_.push_back({FaultKind::kStraggler, key});
      }
      const bool slow_now = tick < slow_until_[n];
      if (slow_now != (slow_applied_[n] != 0)) {
        slow_applied_[n] = slow_now ? 1 : 0;
        FaultTarget* target = target_;
        const double factor = slow_now ? plan_.slow_factor : 1.0;
        sim_.schedule_at(now,
                         [target, n, factor] { target->apply_node_slow(n, factor); });
      }
      degraded = degraded || slow_now;
    }
  }
  if (plan_.partition > 0.0) {
    if (partition_starts(plan_, domain_, tick)) {
      ++counters_.faults_injected;
      ++counters_.partitions;
      last_events_.push_back({FaultKind::kPartition, domain_});
    }
    degraded = degraded || domain_partitioned(plan_, domain_, tick);
  }
  if (degraded) {
    ++counters_.ticks_degraded;
    last_events_.push_back({FaultKind::kDegraded, domain_});
  }
}

}  // namespace capes::sim
