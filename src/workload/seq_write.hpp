#pragma once
// Concurrent sequential-write workload (§4.3): N streams per client, each
// appending with a fixed write size — "simulates both HPC checkpoint and
// video surveillance workloads". The paper ran five 1 MB-write streams per
// client.

#include <cstdint>
#include <string>

#include "lustre/cluster.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace capes::workload {

class Registry;

struct SeqWriteOptions {
  std::size_t streams_per_client = 5;
  std::uint64_t write_size = 1 << 20;
  std::int64_t op_overhead_us = 100;
  std::uint64_t seed = 13;
};

class SeqWrite : public Workload {
 public:
  SeqWrite(lustre::Cluster& cluster, SeqWriteOptions opts);

  void start() override;
  void request_stop() override { running_ = false; }
  std::string name() const override { return "seq_write"; }
  std::uint64_t ops_completed() const override { return ops_; }

 private:
  void stream_loop(std::size_t client, std::uint64_t file_id,
                   std::uint64_t offset);

  lustre::Cluster& cluster_;
  SeqWriteOptions opts_;
  bool running_ = true;
  std::uint64_t ops_ = 0;
};

/// Registers "seqwrite[:streams=N][,seed=N]".
void register_seq_write(Registry& registry);

}  // namespace capes::workload
