#pragma once
// Workload generators: closed-loop synthetic I/O drivers equivalent to
// the Filebench personalities used in the evaluation (§4.3). Every
// generator runs a fixed number of "instances" (threads) per client; each
// instance issues its next operation as soon as the previous one
// completes, which saturates the cluster the way the paper's workloads do.

#include <cstdint>
#include <string>

namespace capes::workload {

/// Common interface so benches can swap workloads uniformly.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Begin issuing I/O (schedules the first operation of every instance).
  virtual void start() = 0;

  /// Stop issuing new operations (in-flight ones drain naturally).
  virtual void request_stop() = 0;

  virtual std::string name() const = 0;

  /// Operations completed since start (for sanity checks).
  virtual std::uint64_t ops_completed() const = 0;
};

/// Globally unique file id: clients own disjoint id ranges.
inline std::uint64_t make_file_id(std::size_t client, std::uint64_t local_id) {
  return (static_cast<std::uint64_t>(client) << 24) | local_id;
}

}  // namespace capes::workload
