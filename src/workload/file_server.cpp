#include "workload/file_server.hpp"

#include <algorithm>
#include <memory>

#include "workload/registry.hpp"

namespace capes::workload {

FileServer::FileServer(lustre::Cluster& cluster, FileServerOptions opts)
    : cluster_(cluster), opts_(opts), rng_(opts.seed) {}

std::uint64_t FileServer::sample_file_size(util::Rng& rng) {
  // Exponential-ish distribution around the mean, floored at 1 MB so
  // every file exercises striping.
  const double size =
      rng.exponential(1.0 / static_cast<double>(opts_.mean_file_bytes));
  return std::max<std::uint64_t>(1 << 20, static_cast<std::uint64_t>(size));
}

void FileServer::start() {
  const std::size_t total = cluster_.num_clients() * opts_.instances_per_client;
  instances_.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    Instance& inst = instances_[i];
    inst.client = i / opts_.instances_per_client;
    inst.rng = rng_.split();
    // Prepopulate the file set (sizes only; content writes are implied to
    // have happened before the measurement starts, as Filebench does).
    const std::uint64_t base = (static_cast<std::uint64_t>(i) << 12);
    for (std::size_t f = 0; f < opts_.files_per_instance; ++f) {
      inst.files.push_back(make_file_id(inst.client, base + inst.next_local_id++));
      inst.file_sizes.push_back(sample_file_size(inst.rng));
    }
    instance_loop(i, 0);
  }
}

void FileServer::instance_loop(std::size_t idx, int op) {
  if (!running_) return;
  Instance& inst = instances_[idx];
  auto& sim = cluster_.simulator();
  auto& client = cluster_.client(inst.client);

  auto next = [this, idx, op] {
    ++ops_;
    const int next_op = (op + 1) % 5;
    cluster_.simulator().schedule_in(
        opts_.op_overhead_us, [this, idx, next_op] { instance_loop(idx, next_op); });
  };

  switch (op) {
    case 0: {  // create a file and write it out
      const std::uint64_t base = static_cast<std::uint64_t>(idx) << 12;
      const std::uint64_t file = make_file_id(inst.client, base + inst.next_local_id++);
      const std::uint64_t size = sample_file_size(inst.rng);
      inst.files.push_back(file);
      inst.file_sizes.push_back(size);
      client.metadata_op([&client, file, size, next] {
        client.write(file, 0, size, next);
      });
      break;
    }
    case 1: {  // append a random-sized amount to an existing file
      const std::size_t f = inst.rng.pick_index(inst.files.size());
      const std::uint64_t append = sample_file_size(inst.rng);
      const std::uint64_t file = inst.files[f];
      const std::uint64_t offset = inst.file_sizes[f];
      inst.file_sizes[f] += append;
      client.metadata_op([&client, file, offset, append, next] {
        client.write(file, offset, append, next);
      });
      break;
    }
    case 2: {  // read a whole random file
      const std::size_t f = inst.rng.pick_index(inst.files.size());
      client.read(inst.files[f], 0, inst.file_sizes[f], next);
      break;
    }
    case 3: {  // delete a random file (keep the set from emptying)
      if (inst.files.size() > 1) {
        const std::size_t f = inst.rng.pick_index(inst.files.size());
        inst.files.erase(inst.files.begin() + static_cast<std::ptrdiff_t>(f));
        inst.file_sizes.erase(inst.file_sizes.begin() +
                              static_cast<std::ptrdiff_t>(f));
      }
      client.metadata_op(next);
      break;
    }
    default: {  // stat a random file
      client.metadata_op(next);
      break;
    }
  }
  (void)sim;
}

void register_file_server(Registry& registry) {
  registry.add(
      "fileserver",
      "fileserver[:seed=N][,instances=N][,files=N] — Filebench-style "
      "create/append/read/delete/stat mix (§4.3, Fig. 3)",
      [](lustre::Cluster& cluster, const SpecArgs& raw, std::string* error)
          -> std::unique_ptr<Workload> {
        SpecArgs args = raw;
        FileServerOptions opts;
        if (!spec::take_u64(args, "seed", &opts.seed, error) ||
            !spec::take_size(args, "instances", &opts.instances_per_client,
                             error) ||
            !spec::take_size(args, "files", &opts.files_per_instance, error) ||
            !spec::reject_unknown(args, 0, error)) {
          return nullptr;
        }
        return std::make_unique<FileServer>(cluster, opts);
      });
}

}  // namespace capes::workload
