#pragma once
// Filebench "fileserver"-style workload (§4.3): each instance loops over
//   (1) create a file and write it out,
//   (2) open another file and append a random-sized amount,
//   (3) open a random file and read it,
//   (4) delete a random file,
//   (5) stat a random file,
// against a prepopulated per-instance file set. Mixes bulk reads, bulk
// writes and metadata traffic — the workload that needed the longer (24 h)
// training in Figure 3.

#include <cstdint>
#include <string>
#include <vector>

#include "lustre/cluster.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace capes::workload {

class Registry;

struct FileServerOptions {
  std::size_t instances_per_client = 32;  ///< paper: 32 (160 total)
  /// Mean file size for create/append/read; the paper used 100 MB, the
  /// fast preset scales this down proportionally with training length.
  std::uint64_t mean_file_bytes = 10ull << 20;
  std::size_t files_per_instance = 8;  ///< prepopulated set size
  std::int64_t op_overhead_us = 200;
  std::uint64_t seed = 11;
};

class FileServer : public Workload {
 public:
  FileServer(lustre::Cluster& cluster, FileServerOptions opts);

  void start() override;
  void request_stop() override { running_ = false; }
  std::string name() const override { return "fileserver"; }
  std::uint64_t ops_completed() const override { return ops_; }

 private:
  struct Instance {
    std::size_t client = 0;
    std::vector<std::uint64_t> files;      // current file set
    std::vector<std::uint64_t> file_sizes; // matching sizes
    std::uint64_t next_local_id = 0;
    util::Rng rng{0};
  };

  void instance_loop(std::size_t idx, int op);
  std::uint64_t sample_file_size(util::Rng& rng);

  lustre::Cluster& cluster_;
  FileServerOptions opts_;
  util::Rng rng_;
  std::vector<Instance> instances_;
  bool running_ = true;
  std::uint64_t ops_ = 0;
};

/// Registers "fileserver[:seed=N][,instances=N][,files=N]".
void register_file_server(Registry& registry);

}  // namespace capes::workload
