#pragma once
// String-keyed workload registry: the front door through which CLI flags,
// config files, and the core::Experiment builder resolve workload specs
// like "random:0.3" or "fileserver:seed=7" into running generators. Each
// bundled workload registers itself together with its spec parser, so
// adding a workload is one self-contained file plus a registration line —
// no CLI or facade changes.
//
// Spec grammar:  <name>[:<arg>[,<arg>...]]
// where each <arg> is either positional (meaning defined by the workload,
// e.g. the random read fraction) or a <key>=<value> pair. The registered
// factory owns parsing and validation of its own args.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hpp"

namespace capes::lustre {
class Cluster;
}

namespace capes::workload {

class Registry;

/// Pre-split spec arguments handed to a workload factory.
struct SpecArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> named;
};

/// Split the comma-separated argument list of a spec. Returns false (with
/// *error set) on malformed input such as an empty "key=" value.
bool parse_spec_args(const std::string& args, SpecArgs* out, std::string* error);

class Registry {
 public:
  /// Builds a workload on `cluster` from the (already name-stripped) spec
  /// args. Returns nullptr and sets *error on invalid args.
  using Factory = std::function<std::unique_ptr<Workload>(
      lustre::Cluster& cluster, const SpecArgs& args, std::string* error)>;

  /// The process-wide registry, with the bundled workloads registered.
  static Registry& instance();

  /// Register `name`. `spec_help` is the one-line usage string surfaced by
  /// `capes_run --list-workloads`. Returns false if the name is taken.
  bool add(std::string name, std::string spec_help, Factory factory);

  /// Resolve a full spec ("name" or "name:args") into a workload bound to
  /// `cluster`. Returns nullptr and sets *error (if non-null) on an
  /// unknown name or a spec the workload's parser rejects.
  std::unique_ptr<Workload> create(const std::string& spec,
                                   lustre::Cluster& cluster,
                                   std::string* error = nullptr) const;

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;  ///< sorted
  std::string spec_help(const std::string& name) const;  ///< "" if unknown

 private:
  struct Entry {
    std::string help;
    Factory factory;
  };
  std::map<std::string, Entry> entries_;
};

namespace spec {

// Small helpers for workload spec parsers. "take_*" consume a named key
// (so unknown leftovers can be rejected) and fail on unparsable values;
// reject_unknown() is the parser's closing check.

bool take_u64(SpecArgs& args, const std::string& key, std::uint64_t* out,
              std::string* error);
/// Like take_u64 but additionally rejects 0 (size-like knobs).
bool take_size(SpecArgs& args, const std::string& key, std::size_t* out,
               std::string* error);

/// True iff no named keys remain and at most `max_positional` positional
/// args were supplied; otherwise sets *error naming the offender.
bool reject_unknown(const SpecArgs& args, std::size_t max_positional,
                    std::string* error);

}  // namespace spec

/// Self-registration hook for workloads defined outside this library (the
/// registrar runs at static-init time of the defining translation unit).
/// Usage, in the workload's own file:
///   CAPES_REGISTER_WORKLOAD(my_load, "myload", "myload[:args]", factory_fn)
#define CAPES_REGISTER_WORKLOAD(tag, name, spec_help, factory)            \
  namespace {                                                             \
  [[maybe_unused]] const bool capes_workload_registered_##tag =           \
      ::capes::workload::Registry::instance().add((name), (spec_help),    \
                                                  (factory));             \
  }

}  // namespace capes::workload
