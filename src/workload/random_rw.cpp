#include "workload/random_rw.hpp"

#include <sstream>

namespace capes::workload {

RandomRw::RandomRw(lustre::Cluster& cluster, RandomRwOptions opts)
    : cluster_(cluster), opts_(opts), rng_(opts.seed) {}

std::string RandomRw::name() const {
  std::ostringstream ss;
  ss << "random_rw(r=" << opts_.read_fraction << ")";
  return ss.str();
}

void RandomRw::start() {
  for (std::size_t c = 0; c < cluster_.num_clients(); ++c) {
    for (std::size_t t = 0; t < opts_.threads_per_client; ++t) {
      thread_loop(c, make_file_id(c, t), rng_.split());
    }
  }
}

void RandomRw::thread_loop(std::size_t client, std::uint64_t file_id,
                           util::Rng rng) {
  if (!running_) return;
  // Uniform random offset, aligned to the I/O size.
  const std::uint64_t slots = opts_.file_size / opts_.io_size;
  const std::uint64_t offset = rng.uniform_u64(slots) * opts_.io_size;
  const bool is_read = rng.chance(opts_.read_fraction);

  auto next = [this, client, file_id, rng]() mutable {
    ++ops_;
    cluster_.simulator().schedule_in(
        opts_.op_overhead_us,
        [this, client, file_id, rng] { thread_loop(client, file_id, rng); });
  };
  if (is_read) {
    cluster_.client(client).read(file_id, offset, opts_.io_size, next);
  } else {
    cluster_.client(client).write(file_id, offset, opts_.io_size, next);
  }
}

}  // namespace capes::workload
