#include "workload/random_rw.hpp"

#include <memory>
#include <sstream>

#include "util/parse.hpp"
#include "workload/registry.hpp"

namespace capes::workload {

RandomRw::RandomRw(lustre::Cluster& cluster, RandomRwOptions opts)
    : cluster_(cluster), opts_(opts), rng_(opts.seed) {}

std::string RandomRw::name() const {
  std::ostringstream ss;
  ss << "random_rw(r=" << opts_.read_fraction << ")";
  return ss.str();
}

void RandomRw::start() {
  for (std::size_t c = 0; c < cluster_.num_clients(); ++c) {
    for (std::size_t t = 0; t < opts_.threads_per_client; ++t) {
      thread_loop(c, make_file_id(c, t), rng_.split());
    }
  }
}

void RandomRw::thread_loop(std::size_t client, std::uint64_t file_id,
                           util::Rng rng) {
  if (!running_) return;
  // Uniform random offset, aligned to the I/O size.
  const std::uint64_t slots = opts_.file_size / opts_.io_size;
  const std::uint64_t offset = rng.uniform_u64(slots) * opts_.io_size;
  const bool is_read = rng.chance(opts_.read_fraction);

  auto next = [this, client, file_id, rng]() mutable {
    ++ops_;
    cluster_.simulator().schedule_in(
        opts_.op_overhead_us,
        [this, client, file_id, rng] { thread_loop(client, file_id, rng); });
  };
  if (is_read) {
    cluster_.client(client).read(file_id, offset, opts_.io_size, next);
  } else {
    cluster_.client(client).write(file_id, offset, opts_.io_size, next);
  }
}

void register_random_rw(Registry& registry) {
  registry.add(
      "random",
      "random[:<read_frac>][,seed=N][,threads=N] — fixed-ratio random R/W "
      "mix (§4.3, Fig. 2); read_frac in [0, 1]",
      [](lustre::Cluster& cluster, const SpecArgs& raw, std::string* error)
          -> std::unique_ptr<Workload> {
        SpecArgs args = raw;
        RandomRwOptions opts;
        if (!args.positional.empty()) {
          if (!util::parse_double(args.positional[0], &opts.read_fraction) ||
              opts.read_fraction < 0.0 || opts.read_fraction > 1.0) {
            if (error) {
              *error = "read fraction must be a number in [0, 1], got '" +
                       args.positional[0] + "'";
            }
            return nullptr;
          }
        }
        if (!spec::take_u64(args, "seed", &opts.seed, error) ||
            !spec::take_size(args, "threads", &opts.threads_per_client, error) ||
            !spec::reject_unknown(args, 1, error)) {
          return nullptr;
        }
        return std::make_unique<RandomRw>(cluster, opts);
      });
}

}  // namespace capes::workload
