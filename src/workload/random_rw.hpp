#pragma once
// Random read/write workload with a configurable read:write ratio — the
// Figure 2 workload family (ratios 9:1, 4:1, 1:1, 1:4, 1:9). Each client
// runs `threads_per_client` instances doing fixed-size random I/O against
// a private file (§4.3: "each client has five threads doing the same
// random read and write with a fixed ratio").

#include <cstdint>
#include <string>

#include "lustre/cluster.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace capes::workload {

class Registry;

struct RandomRwOptions {
  double read_fraction = 0.5;      ///< probability an op is a read
  std::uint64_t io_size = 64 << 10;
  std::size_t threads_per_client = 5;
  std::uint64_t file_size = 8ull << 30;  ///< random-offset range per thread
  /// Per-op client CPU/think time before issuing the next op, us.
  std::int64_t op_overhead_us = 100;
  std::uint64_t seed = 7;
};

class RandomRw : public Workload {
 public:
  RandomRw(lustre::Cluster& cluster, RandomRwOptions opts);

  void start() override;
  void request_stop() override { running_ = false; }
  std::string name() const override;
  std::uint64_t ops_completed() const override { return ops_; }

 private:
  void thread_loop(std::size_t client, std::uint64_t file_id, util::Rng rng);

  lustre::Cluster& cluster_;
  RandomRwOptions opts_;
  util::Rng rng_;
  bool running_ = true;
  std::uint64_t ops_ = 0;
};

/// Registers "random[:<read_frac>][,seed=N][,threads=N]" (see registry.hpp).
void register_random_rw(Registry& registry);

}  // namespace capes::workload
