#include "workload/seq_write.hpp"

namespace capes::workload {

SeqWrite::SeqWrite(lustre::Cluster& cluster, SeqWriteOptions opts)
    : cluster_(cluster), opts_(opts) {}

void SeqWrite::start() {
  for (std::size_t c = 0; c < cluster_.num_clients(); ++c) {
    for (std::size_t s = 0; s < opts_.streams_per_client; ++s) {
      stream_loop(c, make_file_id(c, 0x100000 + s), 0);
    }
  }
}

void SeqWrite::stream_loop(std::size_t client, std::uint64_t file_id,
                           std::uint64_t offset) {
  if (!running_) return;
  cluster_.client(client).write(
      file_id, offset, opts_.write_size,
      [this, client, file_id, offset] {
        ++ops_;
        cluster_.simulator().schedule_in(
            opts_.op_overhead_us, [this, client, file_id, offset] {
              stream_loop(client, file_id, offset + opts_.write_size);
            });
      });
}

}  // namespace capes::workload
