#include "workload/seq_write.hpp"

#include <memory>

#include "workload/registry.hpp"

namespace capes::workload {

SeqWrite::SeqWrite(lustre::Cluster& cluster, SeqWriteOptions opts)
    : cluster_(cluster), opts_(opts) {}

void SeqWrite::start() {
  for (std::size_t c = 0; c < cluster_.num_clients(); ++c) {
    for (std::size_t s = 0; s < opts_.streams_per_client; ++s) {
      stream_loop(c, make_file_id(c, 0x100000 + s), 0);
    }
  }
}

void SeqWrite::stream_loop(std::size_t client, std::uint64_t file_id,
                           std::uint64_t offset) {
  if (!running_) return;
  cluster_.client(client).write(
      file_id, offset, opts_.write_size,
      [this, client, file_id, offset] {
        ++ops_;
        cluster_.simulator().schedule_in(
            opts_.op_overhead_us, [this, client, file_id, offset] {
              stream_loop(client, file_id, offset + opts_.write_size);
            });
      });
}

void register_seq_write(Registry& registry) {
  registry.add(
      "seqwrite",
      "seqwrite[:streams=N][,seed=N] — concurrent sequential append "
      "streams (HPC checkpoint / surveillance, §4.3)",
      [](lustre::Cluster& cluster, const SpecArgs& raw, std::string* error)
          -> std::unique_ptr<Workload> {
        SpecArgs args = raw;
        SeqWriteOptions opts;
        if (!spec::take_u64(args, "seed", &opts.seed, error) ||
            !spec::take_size(args, "streams", &opts.streams_per_client, error) ||
            !spec::reject_unknown(args, 0, error)) {
          return nullptr;
        }
        return std::make_unique<SeqWrite>(cluster, opts);
      });
}

}  // namespace capes::workload
