#include "workload/registry.hpp"

#include <algorithm>

#include "util/parse.hpp"
#include "workload/file_server.hpp"
#include "workload/random_rw.hpp"
#include "workload/seq_write.hpp"

namespace capes::workload {

namespace spec {

namespace {

/// Looks up `key`, erases it, and hands the raw value to `convert`.
template <typename T, typename Convert>
bool take(SpecArgs& args, const std::string& key, T* out, std::string* error,
          Convert convert) {
  const auto it = args.named.find(key);
  if (it == args.named.end()) return true;  // absent keeps the default
  if (!convert(it->second, out)) {
    if (error) *error = "invalid value for '" + key + "': " + it->second;
    return false;
  }
  args.named.erase(it);
  return true;
}

}  // namespace

bool take_u64(SpecArgs& args, const std::string& key, std::uint64_t* out,
              std::string* error) {
  return take(args, key, out, error, [](const std::string& s, std::uint64_t* v) {
    return util::parse_u64(s, v);
  });
}

bool take_size(SpecArgs& args, const std::string& key, std::size_t* out,
               std::string* error) {
  // Size-like knobs (threads, instances, streams) must also be non-zero.
  return take(args, key, out, error, [](const std::string& s, std::size_t* v) {
    std::uint64_t u = 0;
    if (!util::parse_u64(s, &u) || u == 0) return false;
    *v = static_cast<std::size_t>(u);
    return true;
  });
}

bool reject_unknown(const SpecArgs& args, std::size_t max_positional,
                    std::string* error) {
  if (!args.named.empty()) {
    if (error) *error = "unknown spec key '" + args.named.begin()->first + "'";
    return false;
  }
  if (args.positional.size() > max_positional) {
    if (error) {
      *error = "unexpected argument '" + args.positional[max_positional] + "'";
    }
    return false;
  }
  return true;
}

}  // namespace spec

bool parse_spec_args(const std::string& args, SpecArgs* out, std::string* error) {
  std::size_t pos = 0;
  while (pos <= args.size()) {
    const std::size_t comma = std::min(args.find(',', pos), args.size());
    const std::string token = args.substr(pos, comma - pos);
    if (token.empty()) {
      if (error) *error = "empty spec argument";
      return false;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      out->positional.push_back(token);
    } else {
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key.empty() || value.empty()) {
        if (error) *error = "malformed spec argument '" + token + "'";
        return false;
      }
      out->named[key] = value;
    }
    pos = comma + 1;
  }
  return true;
}

Registry& Registry::instance() {
  // The bundled workloads live in this static library; a pure
  // static-initializer registration in their translation units would be
  // dropped by the linker whenever a binary only talks to the registry,
  // so the built-ins are registered explicitly on first use. Workloads in
  // executables can rely on CAPES_REGISTER_WORKLOAD alone.
  static Registry* registry = [] {
    auto* r = new Registry();
    register_random_rw(*r);
    register_file_server(*r);
    register_seq_write(*r);
    return r;
  }();
  return *registry;
}

bool Registry::add(std::string name, std::string spec_help, Factory factory) {
  if (name.empty() || !factory) return false;
  return entries_.emplace(std::move(name),
                          Entry{std::move(spec_help), std::move(factory)})
      .second;
}

std::unique_ptr<Workload> Registry::create(const std::string& spec,
                                           lustre::Cluster& cluster,
                                           std::string* error) const {
  const std::size_t colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    if (error) *error = "unknown workload '" + name + "'";
    return nullptr;
  }
  SpecArgs args;
  if (colon != std::string::npos &&
      !parse_spec_args(spec.substr(colon + 1), &args, error)) {
    return nullptr;
  }
  std::string local_error;
  auto workload = it->second.factory(cluster, args, &local_error);
  if (!workload && error) {
    *error = name + ": " + (local_error.empty() ? "invalid spec" : local_error);
  }
  return workload;
}

bool Registry::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

std::string Registry::spec_help(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? std::string() : it->second.help;
}

}  // namespace capes::workload
