#include "util/varint.hpp"

#include <cstring>

namespace capes::util {

std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_svarint(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_varint(out, zigzag_encode(v));
}

std::optional<std::uint64_t> VarintReader::read_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (pos_ < size_) {
    const std::uint8_t b = data_[pos_++];
    if (shift >= 64 || (shift == 63 && (b & 0x7e))) return std::nullopt;
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
  return std::nullopt;
}

std::optional<std::int64_t> VarintReader::read_svarint() {
  auto v = read_varint();
  if (!v) return std::nullopt;
  return zigzag_decode(*v);
}

bool VarintReader::read_bytes(std::uint8_t* dst, std::size_t n) {
  if (size_ - pos_ < n) return false;
  std::memcpy(dst, data_ + pos_, n);
  pos_ += n;
  return true;
}

}  // namespace capes::util
