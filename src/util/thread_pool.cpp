#include "util/thread_pool.hpp"

#include <algorithm>

namespace capes::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t nthreads = workers_.size() + 1;  // workers + caller
  const std::size_t chunk = (n + nthreads - 1) / nthreads;
  // Every chunk — including the caller's — runs under first-exception
  // capture, and the caller always waits for all submitted chunks before
  // rethrowing at this synchronization point. (Previously a throwing
  // caller chunk unwound past the futures while workers still held the
  // dangling `fn` reference, and a throwing worker chunk could abandon
  // later futures the same way.)
  std::exception_ptr first_error;
  std::mutex err_mu;
  const auto run_chunk = [&fn, &first_error, &err_mu](std::size_t begin,
                                                      std::size_t end) {
    try {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (!first_error) first_error = std::current_exception();
    }
  };
  std::vector<std::future<void>> futs;
  std::size_t begin = chunk;  // caller handles [0, chunk)
  while (begin < n) {
    const std::size_t end = std::min(n, begin + chunk);
    futs.push_back(submit([begin, end, &run_chunk] { run_chunk(begin, end); }));
    begin = end;
  }
  run_chunk(0, std::min(chunk, n));
  for (auto& f : futs) f.get();  // never throws: chunks capture internally
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace capes::util
