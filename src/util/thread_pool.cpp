#include "util/thread_pool.hpp"

#include <algorithm>

namespace capes::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t nthreads = workers_.size() + 1;  // workers + caller
  const std::size_t chunk = (n + nthreads - 1) / nthreads;
  std::vector<std::future<void>> futs;
  std::size_t begin = chunk;  // caller handles [0, chunk)
  while (begin < n) {
    const std::size_t end = std::min(n, begin + chunk);
    futs.push_back(submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
    begin = end;
  }
  for (std::size_t i = 0; i < std::min(chunk, n); ++i) fn(i);
  for (auto& f : futs) f.get();
}

}  // namespace capes::util
