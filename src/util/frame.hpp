#pragma once
// Little-endian frame field helpers shared by every length-prefixed wire
// format in the tree (the capture log and the tcp control-network frames
// use the same [u32 len][u32 crc][fixed][payload] framing). One encoding
// implementation, not one per subsystem.

#include <cstdint>

namespace capes::util {

void put_le32(std::uint8_t* out, std::uint32_t v);
void put_le64(std::uint8_t* out, std::uint64_t v);
void put_le_f64(std::uint8_t* out, double v);

std::uint32_t get_le32(const std::uint8_t* p);
std::uint64_t get_le64(const std::uint8_t* p);
double get_le_f64(const std::uint8_t* p);

}  // namespace capes::util
