#include "util/alloc_hook.hpp"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

// Replacement global allocation functions ([new.delete.single]): count,
// then forward to malloc/free. Defined here (not weak) so they replace
// the libstdc++ defaults in any binary that links this object file;
// sanitizer runtimes still interpose below malloc, so ASan/TSan remain
// fully effective. All variants forward to one counted core so the
// counts agree regardless of which overload the compiler selects.

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size);
  while (p == nullptr) {
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
    p = align > alignof(std::max_align_t)
            ? std::aligned_alloc(align, (size + align - 1) / align * align)
            : std::malloc(size);
  }
  return p;
}

void counted_free(void* p) noexcept {
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

namespace capes::util {

std::uint64_t allocation_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t deallocation_count() {
  return g_frees.load(std::memory_order_relaxed);
}

bool allocation_hook_active() { return true; }

}  // namespace capes::util

void* operator new(std::size_t size) { return counted_alloc(size, 0); }
void* operator new[](std::size_t size) { return counted_alloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size, 0);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size, 0);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}