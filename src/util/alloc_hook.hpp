#pragma once
// Process-wide heap-allocation counting hook. Linking any translation
// unit that references these symbols pulls in replacement global
// operator new/delete (alloc_hook.cpp) that count every allocation, so
// tests and benches can assert the steady-state hot path allocates
// nothing (the "allocation-free tick" guarantee) and report
// allocations/tick. Counting is a relaxed atomic increment — cheap
// enough to stay on in every build; the zero-allocation *assertions*
// live in Debug-built tests.

#include <cstdint>

namespace capes::util {

/// Total operator-new calls observed process-wide since start. Monotonic;
/// meaningful as deltas around a scope.
std::uint64_t allocation_count();

/// Total operator-delete calls observed process-wide.
std::uint64_t deallocation_count();

/// True when the counting operator new/delete replacements are linked
/// into this binary (they are whenever this header's symbols are used).
bool allocation_hook_active();

/// RAII delta counter: allocations (process-wide, all threads) between
/// construction and delta()/stop().
class AllocTally {
 public:
  AllocTally() : start_(allocation_count()) {}
  /// Allocations since construction (or the last restart()).
  std::uint64_t delta() const { return allocation_count() - start_; }
  void restart() { start_ = allocation_count(); }

 private:
  std::uint64_t start_;
};

}  // namespace capes::util
