#pragma once
// Minimal leveled, thread-safe logger used by all CAPES daemons.
//
// The Python prototype routed debug output through conf.py-controlled log
// files; here a process-wide singleton with a runtime level serves the same
// purpose without pulling in a dependency.

#include <mutex>
#include <sstream>
#include <string>

namespace capes::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide logger. Thread-safe; writes to stderr by default.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Emit one log line if `level` passes the filter.
  void log(LogLevel level, const std::string& component, const std::string& msg);

 private:
  Logger() = default;
  mutable std::mutex mu_;
  LogLevel level_ = LogLevel::kWarn;
};

/// Convenience helpers: CAPES_LOG_INFO("drl") << "loss=" << loss;
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { Logger::instance().log(level_, component_, ss_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream ss_;
};

}  // namespace capes::util

#define CAPES_LOG_DEBUG(component) \
  ::capes::util::LogStream(::capes::util::LogLevel::kDebug, component)
#define CAPES_LOG_INFO(component) \
  ::capes::util::LogStream(::capes::util::LogLevel::kInfo, component)
#define CAPES_LOG_WARN(component) \
  ::capes::util::LogStream(::capes::util::LogLevel::kWarn, component)
#define CAPES_LOG_ERROR(component) \
  ::capes::util::LogStream(::capes::util::LogLevel::kError, component)
